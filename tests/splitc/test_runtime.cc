#include <gtest/gtest.h>

#include "cluster/cluster.hh"
#include "obs/digest.hh"
#include "sim/perturb.hh"

using namespace unet;
using namespace unet::cluster;
using namespace unet::sim::literals;
using splitc::GlobalPtr;
using splitc::HeapAddr;
using splitc::Runtime;

namespace {

/** Run an SPMD body on a small FE cluster and return elapsed time. */
sim::Tick
runFe(int nodes, std::function<void(Runtime &, sim::Process &)> body,
      NetKind net = NetKind::FeBay28115)
{
    sim::Simulation s;
    Cluster c(s, Config::feCluster(nodes, net, false));
    return c.run(std::move(body));
}

} // namespace

TEST(SplitC, SymmetricAllocationAgrees)
{
    std::vector<HeapAddr> addrs(4, 0);
    runFe(4, [&](Runtime &rt, sim::Process &proc) {
        HeapAddr a = rt.allocBytes(128);
        HeapAddr b = rt.alloc<double>(64);
        (void)a;
        addrs[rt.self()] = b;
        rt.barrier(proc);
    });
    EXPECT_EQ(addrs[0], addrs[1]);
    EXPECT_EQ(addrs[0], addrs[2]);
    EXPECT_EQ(addrs[0], addrs[3]);
}

TEST(SplitC, RemoteReadSeesRemoteData)
{
    runFe(2, [&](Runtime &rt, sim::Process &proc) {
        HeapAddr cell = rt.alloc<std::uint64_t>(1);
        *rt.localPtr<std::uint64_t>(cell) =
            1000 + static_cast<std::uint64_t>(rt.self());
        rt.barrier(proc);

        int peer = 1 - rt.self();
        auto v = rt.read(proc,
                         GlobalPtr<std::uint64_t>(peer, cell));
        EXPECT_EQ(v, 1000 + static_cast<std::uint64_t>(peer));
        rt.barrier(proc);
    });
}

TEST(SplitC, RemoteWriteLands)
{
    runFe(2, [&](Runtime &rt, sim::Process &proc) {
        HeapAddr cell = rt.alloc<std::uint32_t>(2);
        rt.barrier(proc);

        int peer = 1 - rt.self();
        // Write into slot[self] on the peer.
        GlobalPtr<std::uint32_t> dst(
            peer,
            cell + static_cast<HeapAddr>(4 * rt.self()));
        rt.write(proc, dst, static_cast<std::uint32_t>(7 + rt.self()));
        rt.barrier(proc);

        auto *local = rt.localPtr<std::uint32_t>(cell);
        EXPECT_EQ(local[peer], 7u + static_cast<std::uint32_t>(peer));
    });
}

TEST(SplitC, SplitPhaseGetOverlapsAndSyncs)
{
    runFe(2, [&](Runtime &rt, sim::Process &proc) {
        const std::size_t n = 4096;
        HeapAddr src = rt.allocBytes(n);
        HeapAddr dst = rt.allocBytes(n);
        auto *sp = rt.heapPtr(src);
        for (std::size_t i = 0; i < n; ++i)
            sp[i] = static_cast<std::uint8_t>(rt.self() * 31 + i);
        rt.barrier(proc);

        int peer = 1 - rt.self();
        rt.get(proc, peer, src, dst, n);
        // Computation between issue and sync (split-phase).
        rt.chargeIntOps(proc, 1000);
        rt.sync(proc);

        auto *dp = rt.heapPtr(dst);
        for (std::size_t i = 0; i < n; i += 97)
            EXPECT_EQ(dp[i], static_cast<std::uint8_t>(peer * 31 + i));
        rt.barrier(proc);
    });
}

TEST(SplitC, StoreWithAllStoreSync)
{
    const std::size_t n = 10000;
    runFe(4, [&](Runtime &rt, sim::Process &proc) {
        // Everyone stores a slice into everyone's inbox.
        HeapAddr inbox = rt.allocBytes(
            n * static_cast<std::size_t>(rt.procs()));
        rt.barrier(proc);

        std::vector<std::uint8_t> mine(
            n, static_cast<std::uint8_t>(0x40 + rt.self()));
        for (int peer = 0; peer < rt.procs(); ++peer)
            rt.storeTo(proc, peer,
                       inbox + static_cast<HeapAddr>(
                                   n * static_cast<std::size_t>(
                                           rt.self())),
                       mine);
        rt.allStoreSync(proc);

        for (int p = 0; p < rt.procs(); ++p) {
            auto *slot = rt.heapPtr(
                inbox + static_cast<HeapAddr>(
                            n * static_cast<std::size_t>(p)));
            EXPECT_EQ(slot[0], 0x40 + p);
            EXPECT_EQ(slot[n - 1], 0x40 + p);
        }
    });
}

TEST(SplitC, BarrierActuallySynchronizes)
{
    std::vector<sim::Tick> after(4, 0);
    sim::Tick slow_arrival = 0;
    sim::Simulation s;
    Cluster c(s, Config::feCluster(4, NetKind::FeBay28115, false));
    c.run([&](Runtime &rt, sim::Process &proc) {
        if (rt.self() == 2) {
            rt.chargeTime(proc, 3_ms); // straggler
            slow_arrival = s.now();
        }
        rt.barrier(proc);
        after[rt.self()] = s.now();
    });
    for (int i = 0; i < 4; ++i)
        EXPECT_GE(after[i], slow_arrival) << "node " << i;
}

TEST(SplitC, AllReduceSumAndMax)
{
    runFe(4, [&](Runtime &rt, sim::Process &proc) {
        auto self = static_cast<std::uint64_t>(rt.self());
        EXPECT_EQ(rt.allReduceSum(proc, self + 1), 1u + 2 + 3 + 4);
        EXPECT_EQ(rt.allReduceMax(proc, self * 10), 30u);
    });
}

TEST(SplitC, VectorAllReduce)
{
    runFe(4, [&](Runtime &rt, sim::Process &proc) {
        std::vector<std::uint64_t> hist(16);
        for (std::size_t i = 0; i < hist.size(); ++i)
            hist[i] = static_cast<std::uint64_t>(rt.self()) * 100 + i;
        rt.allReduceSumVec(proc, hist.data(), hist.size());
        // Sum over nodes p of (p*100 + i) = 600 + 4i.
        for (std::size_t i = 0; i < hist.size(); ++i)
            EXPECT_EQ(hist[i], 600 + 4 * i);
    });
}

TEST(SplitC, BroadcastFromRoot)
{
    runFe(3, [&](Runtime &rt, sim::Process &proc) {
        HeapAddr buf = rt.allocBytes(256);
        if (rt.self() == 1) {
            auto *p = rt.heapPtr(buf);
            for (int i = 0; i < 256; ++i)
                p[i] = static_cast<std::uint8_t>(255 - i);
        }
        rt.barrier(proc);
        rt.broadcastBytes(proc, 1, buf, 256);
        auto *p = rt.heapPtr(buf);
        EXPECT_EQ(p[0], 255);
        EXPECT_EQ(p[10], 245);
    });
}

TEST(SplitC, SelfOpsStayLocal)
{
    sim::Simulation s;
    Cluster c(s, Config::feCluster(2, NetKind::FeBay28115, false));
    c.run([&](Runtime &rt, sim::Process &proc) {
        HeapAddr a = rt.allocBytes(64);
        std::vector<std::uint8_t> data(64, 9);
        rt.writeBytes(proc, rt.self(), a, data);
        std::vector<std::uint8_t> out(64, 0);
        rt.readBytes(proc, rt.self(), a, out);
        EXPECT_EQ(out, data);
        rt.barrier(proc);
    });
    // No AM traffic should have been needed for the self ops
    // (the barrier uses some).
    EXPECT_LE(c.runtime(0).am().sent(), 12u);
}

TEST(SplitC, ProfileSeparatesComputeAndComm)
{
    sim::Simulation s;
    Cluster c(s, Config::feCluster(2, NetKind::FeBay28115, false));
    c.run([&](Runtime &rt, sim::Process &proc) {
        rt.chargeFlops(proc, 100000); // 3.5 ms on the Pentium-120
        rt.barrier(proc);
        HeapAddr a = rt.allocBytes(8192);
        rt.barrier(proc);
        if (rt.self() == 0) {
            std::vector<std::uint8_t> big(8192, 1);
            rt.writeBytes(proc, 1, a, big);
        }
        rt.barrier(proc);
    });
    auto &p0 = c.runtime(0).profile();
    EXPECT_NEAR(sim::toMilliseconds(p0.compute), 3.5, 0.1);
    EXPECT_GT(p0.comm, 0);
}

TEST(SplitC, WorksOverAtmCluster)
{
    sim::Simulation s;
    Cluster c(s, Config::atmSplitC(4));
    sim::Tick elapsed = c.run([&](Runtime &rt, sim::Process &proc) {
        HeapAddr cell = rt.alloc<std::uint64_t>(
            static_cast<std::size_t>(rt.procs()));
        *rt.localPtr<std::uint64_t>(
            cell + static_cast<HeapAddr>(8 * rt.self())) =
            static_cast<std::uint64_t>(rt.self());
        rt.barrier(proc);
        // Ring read: everyone reads its right neighbour's slot.
        int peer = (rt.self() + 1) % rt.procs();
        auto v = rt.read(
            proc, GlobalPtr<std::uint64_t>(
                      peer, cell + static_cast<HeapAddr>(8 * peer)));
        EXPECT_EQ(v, static_cast<std::uint64_t>(peer));
        EXPECT_EQ(rt.allReduceSum(proc, v), 0u + 1 + 2 + 3);
    });
    EXPECT_GT(elapsed, 0);
}

TEST(SplitC, HubClusterAlsoWorks)
{
    runFe(3, [&](Runtime &rt, sim::Process &proc) {
        auto total = rt.allReduceSum(
            proc, static_cast<std::uint64_t>(rt.self() + 1));
        EXPECT_EQ(total, 6u);
    }, NetKind::FeHub);
}

/**
 * 4-node contention is *accepted profile variation* (DESIGN.md §13):
 * when several nodes' requests collide at the same tick — barrier
 * fan-in at node 0, all-to-all read bursts — the perturbation salt
 * changes the service order and with it the elapsed-time profile, but
 * never any program-visible result. Program data must be bit-identical
 * across salts; elapsed time is allowed (and observed) to differ.
 */
TEST(SplitC, FourNodeContentionDataIsSaltInvariant)
{
    auto runOnce = [](std::uint64_t salt, sim::Tick &elapsed) {
        sim::perturb::ScopedSalt scoped(salt);
        sim::Simulation s;
        Cluster c(s, Config::feCluster(4, NetKind::FeBay28115, false));
        std::vector<std::uint64_t> cells(4, 0);
        std::vector<std::uint64_t> sums(4, 0);
        elapsed = c.run([&](Runtime &rt, sim::Process &proc) {
            const int n = rt.procs();
            HeapAddr cell = rt.alloc<std::uint64_t>(1);
            *rt.localPtr<std::uint64_t>(cell) =
                100 + static_cast<std::uint64_t>(rt.self());
            rt.barrier(proc);
            // All-to-all read burst: n simultaneous requests per
            // target, the densest same-tick contention a 4-node
            // cluster produces.
            std::uint64_t sum = 0;
            for (int p = 0; p < n; ++p)
                sum += rt.read(proc,
                               GlobalPtr<std::uint64_t>(p, cell));
            rt.barrier(proc);
            rt.write(proc,
                     GlobalPtr<std::uint64_t>((rt.self() + 1) % n,
                                              cell),
                     sum + static_cast<std::uint64_t>(rt.self()));
            rt.barrier(proc);
            sums[static_cast<std::size_t>(rt.self())] = sum;
            cells[static_cast<std::size_t>(rt.self())] =
                *rt.localPtr<std::uint64_t>(cell);
        });
        obs::Digest d;
        for (auto v : sums)
            d.mix(v);
        for (auto v : cells)
            d.mix(v);
        return d.value();
    };

    sim::Tick elapsed0 = 0;
    std::uint64_t base = runOnce(0, elapsed0);
    bool elapsed_varied = false;
    for (std::uint64_t salt : {3u, 5u, 7u}) {
        sim::Tick elapsed = 0;
        EXPECT_EQ(runOnce(salt, elapsed), base)
            << "program data diverged under salt " << salt;
        elapsed_varied |= elapsed != elapsed0;
    }
    // The profile variation is real: at least one salt lands the
    // contended requests in a different service order. If this ever
    // stops holding, §13's accepted-variation note should be revisited
    // (the contention may have been serialized away).
    EXPECT_TRUE(elapsed_varied);
}
