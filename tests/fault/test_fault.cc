/**
 * @file
 * Unit tests for the fault-injection plane: scenario-string grammar,
 * pattern matching / arming semantics, and the deterministic decision
 * streams of the individual fault models.
 */

#include <gtest/gtest.h>

#include <vector>

#include "fault/fault.hh"

using namespace unet;
using namespace unet::fault;

namespace {

/** Collect @p n decisions from a fresh injector. */
std::vector<Decision>
stream(const ModelSpec &spec, std::uint64_t seed, int n,
       std::size_t unit_bits = 12000, const char *site = "test.site")
{
    sim::Simulation s;
    Injector inj(s, site, spec, seed);
    std::vector<Decision> out;
    for (int i = 0; i < n; ++i)
        out.push_back(inj.decide(unit_bits));
    return out;
}

bool
sameStream(const std::vector<Decision> &a,
           const std::vector<Decision> &b)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t i = 0; i < a.size(); ++i)
        if (a[i].drop != b[i].drop || a[i].corrupt != b[i].corrupt ||
            a[i].corruptBit != b[i].corruptBit ||
            a[i].duplicate != b[i].duplicate || a[i].delay != b[i].delay)
            return false;
    return true;
}

} // namespace

TEST(FaultModel, InertByDefault)
{
    ModelSpec m;
    EXPECT_TRUE(m.inert());
    m.drop = 0.1;
    EXPECT_FALSE(m.inert());
    m = {};
    m.dropUnits = {3};
    EXPECT_FALSE(m.inert());
    m = {};
    m.gilbert = true;
    EXPECT_FALSE(m.inert());
}

TEST(FaultModel, DropUnitsAreExact)
{
    ModelSpec m;
    m.dropUnits = {5, 0, 2}; // unsorted on purpose
    auto s = stream(m, 1, 8);
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(s[i].drop, i == 0 || i == 2 || i == 5) << "unit " << i;
}

TEST(FaultModel, DropEveryNth)
{
    ModelSpec m;
    m.dropEvery = 5; // drops 0-based units 4, 9, 14, ...
    auto s = stream(m, 1, 15);
    for (int i = 0; i < 15; ++i)
        EXPECT_EQ(s[i].drop, (i + 1) % 5 == 0) << "unit " << i;
}

TEST(FaultModel, DeterministicDropsConsumeNoRandomness)
{
    // A Bernoulli stream must be unchanged by adding dropUnits on top:
    // surgical drops may not shift the random draws of everything else.
    ModelSpec bern;
    bern.drop = 0.3;
    ModelSpec both = bern;
    both.dropUnits = {2, 7};
    auto a = stream(bern, 9, 50);
    auto b = stream(both, 9, 50);
    for (int i = 0; i < 50; ++i)
        if (i != 2 && i != 7)
            EXPECT_EQ(a[i].drop, b[i].drop) << "unit " << i;
    EXPECT_TRUE(b[2].drop);
    EXPECT_TRUE(b[7].drop);
}

TEST(FaultModel, BernoulliRateIsRoughlyHonored)
{
    ModelSpec m;
    m.drop = 0.2;
    sim::Simulation s;
    Injector inj(s, "test.site", m, 7);
    const int n = 10000;
    for (int i = 0; i < n; ++i)
        inj.decide(8000);
    EXPECT_EQ(inj.units(), static_cast<std::uint64_t>(n));
    EXPECT_GT(inj.dropped(), n * 0.15);
    EXPECT_LT(inj.dropped(), n * 0.25);
}

TEST(FaultModel, GilbertElliottLossIsBursty)
{
    // Stationary bad fraction = gtb/(gtb+btg) = 0.2; mean drop-run
    // length ~ 1/btg = 5, far above the ~1.25 an independent Bernoulli
    // process of equal rate would show.
    ModelSpec m;
    m.gilbert = true;
    m.goodToBad = 0.05;
    m.badToGood = 0.2;
    m.badLoss = 1.0;
    auto s = stream(m, 3, 20000);
    int drops = 0, runs = 0;
    bool in_run = false;
    for (const auto &d : s) {
        drops += d.drop;
        if (d.drop && !in_run)
            ++runs;
        in_run = d.drop;
    }
    double rate = static_cast<double>(drops) / s.size();
    EXPECT_GT(rate, 0.1);
    EXPECT_LT(rate, 0.35);
    double mean_run = static_cast<double>(drops) / runs;
    EXPECT_GT(mean_run, 2.5);
}

TEST(FaultModel, CorruptBitStaysInsideTheUnit)
{
    ModelSpec m;
    m.corrupt = 1.0;
    auto s = stream(m, 11, 200, 512);
    for (const auto &d : s) {
        EXPECT_TRUE(d.corrupt);
        EXPECT_LT(d.corruptBit, 512u);
    }
}

TEST(FaultModel, DroppedUnitSuffersNothingElse)
{
    ModelSpec m;
    m.drop = 1.0;
    m.corrupt = 1.0;
    m.duplicate = 1.0;
    m.reorder = 1.0;
    auto s = stream(m, 5, 20);
    for (const auto &d : s) {
        EXPECT_TRUE(d.drop);
        EXPECT_FALSE(d.corrupt);
        EXPECT_FALSE(d.duplicate);
        EXPECT_EQ(d.delay, 0);
    }
}

TEST(FaultModel, ReorderAndJitterProduceBoundedDelay)
{
    ModelSpec m;
    m.reorder = 1.0;
    m.reorderDelay = sim::microseconds(250);
    m.jitterMax = sim::microseconds(10);
    auto s = stream(m, 13, 100);
    for (const auto &d : s) {
        EXPECT_GE(d.delay, sim::microseconds(250));
        EXPECT_LE(d.delay,
                  sim::microseconds(250) + sim::microseconds(10));
    }
}

TEST(FaultDeterminism, SameSeedSameStream)
{
    ModelSpec m;
    m.drop = 0.1;
    m.corrupt = 0.05;
    m.duplicate = 0.03;
    m.reorder = 0.07;
    m.jitterMax = sim::microseconds(5);
    EXPECT_TRUE(sameStream(stream(m, 42, 500), stream(m, 42, 500)));
    EXPECT_FALSE(sameStream(stream(m, 42, 500), stream(m, 43, 500)));
}

TEST(FaultDeterminism, StreamDependsOnSiteNotArmOrder)
{
    // Two plans arming the same sites in opposite orders must hand each
    // site the identical decision stream: the injector RNG is seeded
    // from (plan seed, site name) only.
    ModelSpec m;
    m.drop = 0.25;

    auto drops = [&](bool reverse) {
        sim::Simulation s;
        Plan plan;
        plan.setSeed(99);
        plan.model("a.site") = m;
        plan.model("b.site") = m;
        Injector *a, *b;
        if (reverse) {
            b = plan.arm(s, "b.site");
            a = plan.arm(s, "a.site");
        } else {
            a = plan.arm(s, "a.site");
            b = plan.arm(s, "b.site");
        }
        std::vector<bool> out;
        for (int i = 0; i < 200; ++i)
            out.push_back(a->decide(8000).drop);
        for (int i = 0; i < 200; ++i)
            out.push_back(b->decide(8000).drop);
        return out;
    };
    EXPECT_EQ(drops(false), drops(true));
}

TEST(FaultPlan, ArmMatchesExactAndWildcard)
{
    sim::Simulation s;
    Plan plan;
    plan.model("eth.link.0").drop = 0.5;
    plan.model("atm.*").corrupt = 0.01;

    Injector *exact = plan.arm(s, "eth.link.0");
    ASSERT_NE(exact, nullptr);
    EXPECT_EQ(exact->model().drop, 0.5);

    Injector *wild = plan.arm(s, "atm.link.3.1");
    ASSERT_NE(wild, nullptr);
    EXPECT_EQ(wild->model().corrupt, 0.01);

    EXPECT_EQ(plan.arm(s, "eth.link.1"), nullptr);
    EXPECT_EQ(plan.arm(s, "nic.fe.rx"), nullptr);
    EXPECT_EQ(plan.armed().size(), 2u);
}

TEST(FaultPlan, LongestPatternWinsAndExactBeatsWildcard)
{
    sim::Simulation s;
    Plan plan;
    plan.model("*").drop = 0.1;
    plan.model("eth.*").drop = 0.2;
    plan.model("eth.link.*").drop = 0.3;
    plan.model("eth.link.0").drop = 0.4;

    EXPECT_EQ(plan.arm(s, "eth.link.0")->model().drop, 0.4);
    EXPECT_EQ(plan.arm(s, "eth.link.1")->model().drop, 0.3);
    EXPECT_EQ(plan.arm(s, "eth.hub")->model().drop, 0.2);
    EXPECT_EQ(plan.arm(s, "atm.switch")->model().drop, 0.1);
}

TEST(FaultPlan, InertModelArmsNothing)
{
    sim::Simulation s;
    Plan plan;
    EXPECT_TRUE(plan.empty());
    plan.model("eth.link.0"); // created but left inert
    EXPECT_TRUE(plan.empty());
    EXPECT_EQ(plan.arm(s, "eth.link.0"), nullptr);
    plan.model("eth.link.0").drop = 0.1;
    EXPECT_FALSE(plan.empty());
    EXPECT_NE(plan.arm(s, "eth.link.0"), nullptr);
}

TEST(FaultPlan, ParseFullGrammar)
{
    sim::Simulation s; // outlives the plan (armed metrics)
    Plan plan = Plan::parse(
        "seed=9 eth.link.0.drop=0.25, atm.*.corrupt=0.001;\n"
        "eth.hub.ge=0.01/0.2/0.9/0.05\teth.switch.dup=0.5 "
        "nic.fe.rx.drop_every=7 "
        "eth.link.1.reorder=0.1 eth.link.1.reorder_delay_us=250 "
        "eth.link.1.jitter_us=12.5");
    EXPECT_EQ(plan.seed(), 9u);
    EXPECT_EQ(plan.arm(s, "eth.link.0")->model().drop, 0.25);
    EXPECT_EQ(plan.arm(s, "atm.switch")->model().corrupt, 0.001);

    const ModelSpec &hub = plan.arm(s, "eth.hub")->model();
    EXPECT_TRUE(hub.gilbert);
    EXPECT_EQ(hub.goodToBad, 0.01);
    EXPECT_EQ(hub.badToGood, 0.2);
    EXPECT_EQ(hub.badLoss, 0.9);
    EXPECT_EQ(hub.goodLoss, 0.05);

    EXPECT_EQ(plan.arm(s, "eth.switch")->model().duplicate, 0.5);
    EXPECT_EQ(plan.arm(s, "nic.fe.rx")->model().dropEvery, 7u);

    const ModelSpec &l1 = plan.arm(s, "eth.link.1")->model();
    EXPECT_EQ(l1.reorder, 0.1);
    EXPECT_EQ(l1.reorderDelay, sim::microseconds(250));
    EXPECT_EQ(l1.jitterMax, sim::microsecondsF(12.5));
}

TEST(FaultPlan, ParseGeDefaultsGoodLossToZero)
{
    sim::Simulation s; // outlives the plan (armed metrics)
    Plan plan = Plan::parse("x.ge=0.02/0.5/1.0");
    const ModelSpec &m = plan.arm(s, "x")->model();
    EXPECT_TRUE(m.gilbert);
    EXPECT_EQ(m.goodLoss, 0.0);
    EXPECT_EQ(m.badLoss, 1.0);
}

TEST(FaultPlan, ParseEmptyScenarioIsEmptyPlan)
{
    Plan plan = Plan::parse("");
    EXPECT_TRUE(plan.empty());
    Plan ws = Plan::parse("  \n\t, ;");
    EXPECT_TRUE(ws.empty());
}

TEST(FaultPlanDeathTest, MalformedScenariosAreFatal)
{
    EXPECT_EXIT(Plan::parse("bogus"), ::testing::ExitedWithCode(1),
                "fault plan");
    EXPECT_EXIT(Plan::parse("eth.link.0.drop=lots"),
                ::testing::ExitedWithCode(1), "fault plan");
    EXPECT_EXIT(Plan::parse("eth.link.0.frobnicate=1"),
                ::testing::ExitedWithCode(1), "fault plan");
    EXPECT_EXIT(Plan::parse("x.ge=0.1/0.2"),
                ::testing::ExitedWithCode(1), "fault plan");
}

TEST(FaultMetrics, CountersLandInTheRegistry)
{
    sim::Simulation s;
    {
        ModelSpec m;
        m.dropUnits = {0, 1};
        m.corrupt = 1.0;
        Injector inj(s, "eth.link.0", m, 1);
        for (int i = 0; i < 5; ++i)
            inj.decide(8000);
        EXPECT_EQ(inj.units(), 5u);
        EXPECT_EQ(inj.dropped(), 2u);
        EXPECT_EQ(inj.corrupted(), 3u);

        bool found = false;
        for (const auto &[name, value] : s.metrics().dump())
            if (name == "fault.eth.link.0.dropped") {
                found = true;
                EXPECT_EQ(value, 2.0);
            }
        EXPECT_TRUE(found);
    }
}

TEST(FaultMetrics, FlipBitTouchesExactlyOneBit)
{
    std::vector<std::uint8_t> bytes(16, 0);
    flipBit(bytes, 0);
    EXPECT_EQ(bytes[0], 0x01);
    flipBit(bytes, 0);
    EXPECT_EQ(bytes[0], 0x00);
    flipBit(bytes, 8 * 15 + 7);
    EXPECT_EQ(bytes[15], 0x80);
    flipBit(bytes, 8 * 16 + 3); // out of range wraps, never UB
    EXPECT_EQ(bytes[0], 0x08);
}
