/**
 * @file
 * Loss-hardened reliability soak: Active Messages driven across seeded
 * fault matrices (drop, Gilbert-Elliott burst, corruption, reordering,
 * duplication). Every scenario must end with exactly-once in-order
 * delivery, terminated drains, and books that reconcile: wire faults
 * vs. retransmissions, corrupted units vs. FCS/CRC drop counters.
 *
 * These tests carry the `fault-soak` ctest label; the CI fault-soak job
 * runs them across the seed matrix.
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <tuple>

#include "am/active_messages.hh"
#include "fault/attach.hh"
#include "fault/fault.hh"
#include "tests/unet/fixtures.hh"

using namespace unet;
using namespace unet::am;
using namespace unet::test;

namespace {

struct Scenario
{
    const char *name;
    const char *spec; ///< Plan::parse scenario string
};

constexpr Scenario feScenarios[] = {
    {"drop", "eth.link.*.drop=0.15"},
    {"burst", "eth.link.*.ge=0.02/0.25/1.0"},
    {"corrupt", "eth.link.*.corrupt=0.08"},
    {"reorder",
     "eth.link.*.reorder=0.25 eth.link.*.reorder_delay_us=200 "
     "eth.link.*.jitter_us=20"},
    {"mixed",
     "eth.link.*.drop=0.08 eth.link.*.corrupt=0.04 "
     "eth.link.*.dup=0.1 eth.link.*.reorder=0.1 "
     "eth.link.*.reorder_delay_us=150"},
};

} // namespace

class FaultSoak
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>>
{
};

TEST_P(FaultSoak, BidirectionalAmSurvivesScenario)
{
    auto [scenario_index, seed] = GetParam();
    const Scenario &sc = feScenarios[scenario_index];

    sim::Simulation s(seed);
    eth::FullDuplexLink link(s);
    FeNode a(s, link, 0), b(s, link, 1);

    fault::Plan plan = fault::Plan::parse(sc.spec);
    plan.setSeed(seed * 1000 + 7);
    fault::attach(plan, s, link);
    ASSERT_EQ(plan.armed().size(), 2u) << sc.name;

    Endpoint *epA = nullptr, *epB = nullptr;
    ChannelId chanA = invalidChannel, chanB = invalidChannel;
    std::unique_ptr<ActiveMessages> amA, amB;
    const int total = 40;
    int gotA = 0, gotB = 0;
    int nextA = 0, nextB = 0;
    bool orderA = true, orderB = true;
    bool intactA = true, intactB = true;
    int drained = 0;

    auto body = [&](std::unique_ptr<ActiveMessages> &mine,
                    ChannelId &chan, int &got, int &next, bool &order,
                    bool &intact) {
        return [&](sim::Process &proc) {
            mine->setHandler(
                1, [&](sim::Process &, Token, const Args &args,
                       std::span<const std::uint8_t> payload) {
                    if (static_cast<int>(args[0]) != next)
                        order = false;
                    auto want =
                        pattern(64, static_cast<std::uint8_t>(next));
                    if (payload.size() != want.size() ||
                        !std::equal(want.begin(), want.end(),
                                    payload.begin()))
                        intact = false;
                    ++next;
                    ++got;
                });
            for (int i = 0; i < total; ++i) {
                auto payload =
                    pattern(64, static_cast<std::uint8_t>(i));
                ASSERT_TRUE(mine->request(
                    proc, chan, 1, {static_cast<Word>(i), 0, 0, 0},
                    payload));
            }
            EXPECT_TRUE(mine->pollUntil(
                proc, [&] { return got >= total; }, sim::seconds(10)));
            EXPECT_TRUE(mine->drain(proc, sim::seconds(10)));
            // Keep servicing ACKs until the peer drains too.
            ++drained;
            mine->pollUntil(proc, [&] { return drained >= 2; },
                            sim::seconds(10));
            mine->pollUntil(proc, [] { return false; },
                            sim::milliseconds(5));
        };
    };

    sim::Process procA(s, "A",
                       body(amA, chanA, gotA, nextA, orderA, intactA));
    sim::Process procB(s, "B",
                       body(amB, chanB, gotB, nextB, orderB, intactB));

    epA = &a.unet.createEndpoint(&procA, {});
    epB = &b.unet.createEndpoint(&procB, {});
    UNetFe::connect(a.unet, *epA, b.unet, *epB, chanA, chanB);
    amA = std::make_unique<ActiveMessages>(a.unet, *epA);
    amB = std::make_unique<ActiveMessages>(b.unet, *epB);
    amA->openChannel(chanA);
    amB->openChannel(chanB);
    procA.start();
    procB.start();
    s.run();

    // Exactly-once, in-order, intact — no handler re-execution on
    // duplicates, no holes, no reordering leaking through.
    EXPECT_EQ(gotA, total) << sc.name << " seed=" << seed;
    EXPECT_EQ(gotB, total) << sc.name << " seed=" << seed;
    EXPECT_TRUE(orderA);
    EXPECT_TRUE(orderB);
    EXPECT_TRUE(intactA);
    EXPECT_TRUE(intactB);
    EXPECT_EQ(amA->deadChannels(), 0u);
    EXPECT_EQ(amB->deadChannels(), 0u);

    // The books reconcile: every unit the plane destroyed had to be
    // repaired by a retransmission, and every corrupted frame was
    // caught (and counted) by the receive-side FCS check.
    std::uint64_t destroyed = 0, corrupted = 0;
    for (const auto &inj : plan.armed()) {
        destroyed += inj->dropped() + inj->corrupted();
        corrupted += inj->corrupted();
    }
    if (destroyed > 0)
        EXPECT_GT(amA->retransmits() + amB->retransmits(), 0u)
            << sc.name << " seed=" << seed;
    EXPECT_EQ(a.unet.rxBadFrame() + b.unet.rxBadFrame(), corrupted)
        << sc.name << " seed=" << seed;
}

INSTANTIATE_TEST_SUITE_P(
    Scenarios, FaultSoak,
    ::testing::Combine(::testing::Range(0, 5),
                       ::testing::Values(1u, 2u, 3u)),
    [](const auto &info) {
        return std::string(feScenarios[std::get<0>(info.param)].name) +
            "_seed" + std::to_string(std::get<1>(info.param));
    });

class FaultSoakAtm : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(FaultSoakAtm, BulkStoreSurvivesBurstLossAndCorruption)
{
    std::uint64_t seed = GetParam();
    sim::Simulation s(seed);
    AtmStar star(s, 2);

    fault::Plan plan = fault::Plan::parse(
        "atm.link.a.*.ge=0.01/0.3/1.0 atm.link.b.*.corrupt=0.01 "
        "atm.switch.drop=0.005");
    plan.setSeed(seed);
    fault::attach(plan, s, star[0].link, ".a");
    fault::attach(plan, s, star[1].link, ".b");
    fault::attach(plan, s, star.sw);

    Endpoint *epA = nullptr, *epB = nullptr;
    ChannelId chanA = invalidChannel, chanB = invalidChannel;
    std::unique_ptr<ActiveMessages> amA, amB;
    std::vector<std::uint8_t> sink(30000, 0);
    bool done = false;

    sim::Process procB(s, "B", [&](sim::Process &proc) {
        amB->setBulkSink([&](std::uint32_t addr,
                             std::span<const std::uint8_t> d) {
            std::copy(d.begin(), d.end(), sink.begin() + addr);
        });
        amB->setHandler(2, [&](sim::Process &, Token, const Args &,
                               std::span<const std::uint8_t>) {
            done = true;
        });
        amB->pollUntil(proc, [&] { return done; }, sim::seconds(10));
        amB->pollUntil(proc, [] { return false; },
                       sim::milliseconds(5));
    });
    sim::Process procA(s, "A", [&](sim::Process &proc) {
        auto data = pattern(25000, 3);
        ASSERT_TRUE(amA->store(proc, chanA, 500, data, 2));
        EXPECT_TRUE(amA->drain(proc, sim::seconds(10)));
    });

    epA = &star[0].unet.createEndpoint(&procA, {});
    epB = &star[1].unet.createEndpoint(&procB, {});
    UNetAtm::connect(star[0].unet, *epA, star.ports[0], star[1].unet,
                     *epB, star.ports[1], star.signalling, chanA,
                     chanB);
    // A 4 KB bulk fragment spans ~86 cells — with per-cell burst loss
    // nearly every fragment is hit. Tune the MTU down, as a real
    // deployment on a lossy link would.
    AmSpec spec;
    spec.bulkMtu = 1024;
    amA = std::make_unique<ActiveMessages>(star[0].unet, *epA, spec);
    amB = std::make_unique<ActiveMessages>(star[1].unet, *epB, spec);
    amA->openChannel(chanA);
    amB->openChannel(chanB);
    procA.start();
    procB.start();
    s.run();

    ASSERT_TRUE(done) << "seed=" << seed;
    auto want = pattern(25000, 3);
    EXPECT_TRUE(std::equal(want.begin(), want.end(),
                           sink.begin() + 500))
        << "seed=" << seed;
    EXPECT_EQ(amA->deadChannels(), 0u);

    // Reconcile: AAL5 counts one crcDrop per failed PDU, and a PDU can
    // only fail because at least one of its cells was destroyed — so
    // the CRC-drop total is positive when cells were corrupted and
    // never exceeds the number of destroyed cells.
    std::uint64_t corrupted = 0, dropped = 0;
    for (const auto &inj : plan.armed()) {
        corrupted += inj->corrupted();
        dropped += inj->dropped();
    }
    std::uint64_t crc_drops =
        star[0].nic.crcDrops() + star[1].nic.crcDrops();
    if (corrupted > 0)
        EXPECT_GT(crc_drops, 0u) << "seed=" << seed;
    EXPECT_LE(crc_drops, dropped + corrupted);
    if (dropped + corrupted > 0)
        EXPECT_GT(amA->retransmits() + amB->retransmits(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FaultSoakAtm,
                         ::testing::Values(1u, 2u, 3u));
