/**
 * @file
 * Integration tests for the fault sites: each custody boundary must
 * honor its injector, account every fault, and hand the damage to the
 * existing defenses (Ethernet FCS, AAL5 CRC, AM retransmission).
 */

#include <gtest/gtest.h>

#include <memory>

#include "am/active_messages.hh"
#include "eth/hub.hh"
#include "eth/switch.hh"
#include "fault/attach.hh"
#include "fault/fault.hh"
#include "tests/unet/fixtures.hh"

using namespace unet;
using namespace unet::am;
using namespace unet::test;

namespace {

/** Post @p n 2 KB receive buffers. */
void
postBuffers(UNet &un, sim::Process &proc, Endpoint &ep, int n = 8)
{
    for (int i = 0; i < n; ++i)
        un.postFree(proc, ep,
                    {static_cast<std::uint32_t>(i * 2048), 2048});
}

/** One raw buffer-area send (the only U-Net/FE TX path). Rotates the
 *  TX slot: the zero-copy contract forbids re-posting an in-flight
 *  region. */
bool
rawFragSend(UNet &un, sim::Process &proc, Endpoint &ep, ChannelId chan,
            std::uint32_t size, int slot)
{
    SendDescriptor sd;
    sd.channel = chan;
    sd.isInline = false;
    sd.fragmentCount = 1;
    sd.fragments[0] = {16384 + static_cast<std::uint32_t>(slot % 8) *
                           2048,
                       size};
    bool ok = un.send(proc, ep, sd);
    un.flush(proc, ep);
    return ok;
}

/**
 * Raw one-way rig over any eth::Network: A fires @p sends messages at
 * B; returns how many B received. The caller arms injectors between
 * construction and run (via @p arm, called before processes start).
 */
struct RawFeRig
{
    RawFeRig(sim::Simulation &s, eth::Network &net)
        : a(s, net, 0), b(s, net, 1)
    {}

    int
    run(sim::Simulation &s, int sends)
    {
        int got = 0;
        sim::Process rx(s, "rx", [&](sim::Process &proc) {
            postBuffers(b.unet, proc, *epB);
            RecvDescriptor rd;
            while (epB->wait(proc, rd, sim::milliseconds(2)))
                ++got;
        });
        sim::Process tx(s, "tx", [&](sim::Process &proc) {
            for (int i = 0; i < sends; ++i)
                ASSERT_TRUE(
                    rawFragSend(a.unet, proc, *epA, chanA, 256, i));
        });
        epA = &a.unet.createEndpoint(&tx, {});
        epB = &b.unet.createEndpoint(&rx, {});
        UNetFe::connect(a.unet, *epA, b.unet, *epB, chanA, chanB);
        rx.start();
        tx.start(sim::microseconds(5));
        s.run();
        return got;
    }

    FeNode a, b;
    Endpoint *epA = nullptr, *epB = nullptr;
    ChannelId chanA = invalidChannel, chanB = invalidChannel;
};

} // namespace

TEST(FaultSites, EthLinkDropForcesRetransmitAndRecovers)
{
    sim::Simulation s;
    eth::FullDuplexLink link(s);
    FeNode a(s, link, 0), b(s, link, 1);

    fault::ModelSpec m;
    m.dropUnits = {0, 3};
    fault::Injector inj(s, "eth.link.0", m, 1);
    link.setFaultInjector(&inj, 0);

    Endpoint *epA = nullptr, *epB = nullptr;
    ChannelId chanA = invalidChannel, chanB = invalidChannel;
    std::unique_ptr<ActiveMessages> amA, amB;
    const int total = 6;
    int got = 0, next = 0;
    bool in_order = true;

    sim::Process procB(s, "B", [&](sim::Process &proc) {
        amB->setHandler(1, [&](sim::Process &, Token, const Args &args,
                               std::span<const std::uint8_t>) {
            if (static_cast<int>(args[0]) != next)
                in_order = false;
            ++next;
            ++got;
        });
        amB->pollUntil(proc, [&] { return got >= total; },
                       sim::seconds(10));
        amB->pollUntil(proc, [] { return false; },
                       sim::milliseconds(5));
    });
    sim::Process procA(s, "A", [&](sim::Process &proc) {
        for (int i = 0; i < total; ++i)
            ASSERT_TRUE(amA->request(proc, chanA, 1,
                                     {static_cast<Word>(i), 0, 0, 0}));
        EXPECT_TRUE(amA->drain(proc, sim::seconds(10)));
    });

    epA = &a.unet.createEndpoint(&procA, {});
    epB = &b.unet.createEndpoint(&procB, {});
    UNetFe::connect(a.unet, *epA, b.unet, *epB, chanA, chanB);
    amA = std::make_unique<ActiveMessages>(a.unet, *epA);
    amB = std::make_unique<ActiveMessages>(b.unet, *epB);
    amA->openChannel(chanA);
    amB->openChannel(chanB);
    procA.start();
    procB.start();
    s.run();

    EXPECT_EQ(got, total);
    EXPECT_TRUE(in_order);
    EXPECT_EQ(inj.dropped(), 2u);
    // Every wire drop must be repaired by the reliability layer.
    EXPECT_GE(amA->retransmits(), 1u);
    EXPECT_EQ(amA->deadChannels(), 0u);
}

TEST(FaultSites, EthCorruptionIsCaughtByFcsAndCounted)
{
    sim::Simulation s;
    eth::FullDuplexLink link(s);
    RawFeRig rig(s, link);

    fault::ModelSpec m;
    m.corrupt = 1.0;
    fault::Injector inj(s, "eth.link.0", m, 4);
    link.setFaultInjector(&inj, 0);

    int got = rig.run(s, 3);

    // Every frame had one wire bit flipped after the FCS was computed;
    // the receiving kernel's FCS check must reject all of them, and the
    // books must reconcile exactly.
    EXPECT_EQ(got, 0);
    EXPECT_EQ(inj.units(), 3u);
    EXPECT_EQ(inj.corrupted(), 3u);
    EXPECT_EQ(rig.b.unet.rxBadFrame(), inj.corrupted());
}

TEST(FaultSites, EthLinkDuplicateDeliversACleanSecondCopy)
{
    sim::Simulation s;
    eth::FullDuplexLink link(s);
    RawFeRig rig(s, link);

    fault::ModelSpec m;
    m.duplicate = 1.0;
    fault::Injector inj(s, "eth.link.0", m, 4);
    link.setFaultInjector(&inj, 0);

    // Raw U-Net has no sequence numbers: both copies surface.
    int got = rig.run(s, 2);
    EXPECT_EQ(got, 4);
    EXPECT_EQ(inj.duplicated(), 2u);
    EXPECT_EQ(rig.b.unet.rxBadFrame(), 0u);
}

TEST(FaultSites, EthLinkDelayStillDelivers)
{
    sim::Simulation s;
    eth::FullDuplexLink link(s);
    RawFeRig rig(s, link);

    fault::ModelSpec m;
    m.reorder = 1.0;
    m.reorderDelay = sim::microseconds(300);
    fault::Injector inj(s, "eth.link.0", m, 4);
    link.setFaultInjector(&inj, 0);

    int got = rig.run(s, 3);
    EXPECT_EQ(got, 3);
    EXPECT_EQ(inj.delayed(), 3u);
}

TEST(FaultSites, HubDropsTheBroadcastForAllReceivers)
{
    sim::Simulation s;
    eth::Hub hub(s);
    RawFeRig rig(s, hub);

    fault::Plan plan = fault::Plan::parse("eth.hub.drop_every=2");
    fault::attach(plan, s, hub);

    int got = rig.run(s, 4); // units 1 and 3 die in the hub
    EXPECT_EQ(got, 2);
    ASSERT_EQ(plan.armed().size(), 1u);
    EXPECT_EQ(plan.armed()[0]->dropped(), 2u);
}

TEST(FaultSites, SwitchDropsAtEgress)
{
    sim::Simulation s;
    eth::Switch sw(s, eth::SwitchSpec::bay28115());
    RawFeRig rig(s, sw);

    fault::Plan plan = fault::Plan::parse("eth.switch.drop_every=2");
    fault::attach(plan, s, sw);

    int got = rig.run(s, 4);
    EXPECT_EQ(got, 2);
    ASSERT_EQ(plan.armed().size(), 1u);
    EXPECT_EQ(plan.armed()[0]->dropped(), 2u);
}

TEST(FaultSites, NicFeRxDropLosesTheFrameBeforeDma)
{
    sim::Simulation s;
    eth::FullDuplexLink link(s);
    RawFeRig rig(s, link);

    fault::Plan plan;
    plan.model("nic.fe.rx.b").dropEvery = 2;
    fault::attach(plan, s, rig.b.nic, ".b");

    int got = rig.run(s, 4);
    EXPECT_EQ(got, 2);
    ASSERT_EQ(plan.armed().size(), 1u);
    EXPECT_EQ(plan.armed()[0]->dropped(), 2u);
    // Dropped pre-DMA: the kernel never saw a bad frame.
    EXPECT_EQ(rig.b.unet.rxBadFrame(), 0u);
}

namespace {

/** One-way inline (single-cell) sends across an ATM star. */
int
atmOneWay(sim::Simulation &s, AtmStar &star, int sends,
          const std::function<void()> &arm)
{
    Endpoint *epA = nullptr, *epB = nullptr;
    ChannelId chanA = invalidChannel, chanB = invalidChannel;
    int got = 0;

    sim::Process rx(s, "rx", [&](sim::Process &proc) {
        postBuffers(star[1].unet, proc, *epB);
        RecvDescriptor rd;
        while (epB->wait(proc, rd, sim::milliseconds(2)))
            ++got;
    });
    sim::Process tx(s, "tx", [&](sim::Process &proc) {
        auto payload = pattern(32);
        for (int i = 0; i < sends; ++i) {
            SendDescriptor sd = inlineSend(chanA, payload);
            ASSERT_TRUE(star[0].unet.send(proc, *epA, sd));
            star[0].unet.flush(proc, *epA);
        }
    });
    epA = &star[0].unet.createEndpoint(&tx, {});
    epB = &star[1].unet.createEndpoint(&rx, {});
    UNetAtm::connect(star[0].unet, *epA, star.ports[0], star[1].unet,
                     *epB, star.ports[1], star.signalling, chanA,
                     chanB);
    arm();
    rx.start();
    tx.start(sim::microseconds(5));
    s.run();
    return got;
}

} // namespace

TEST(FaultSites, AtmCellCorruptionIsCaughtByAal5Crc)
{
    sim::Simulation s;
    AtmStar star(s, 2);

    fault::ModelSpec m;
    m.corrupt = 1.0;
    fault::Injector inj(s, "atm.link.a.0", m, 2);

    int got = atmOneWay(s, star, 3, [&] {
        star[0].link.setFaultInjector(&inj, 0);
    });

    // A real payload bit was flipped in every cell; AAL5 CRC-32 at
    // reassembly must reject each PDU and count it.
    EXPECT_EQ(got, 0);
    EXPECT_EQ(inj.corrupted(), 3u);
    EXPECT_EQ(star[1].nic.crcDrops(), inj.corrupted());
}

TEST(FaultSites, AtmLinkDropLosesTheCell)
{
    sim::Simulation s;
    AtmStar star(s, 2);

    fault::ModelSpec m;
    m.dropEvery = 2;
    fault::Injector inj(s, "atm.link.a.0", m, 2);

    int got = atmOneWay(s, star, 4, [&] {
        star[0].link.setFaultInjector(&inj, 0);
    });
    EXPECT_EQ(got, 2);
    EXPECT_EQ(inj.dropped(), 2u);
}

TEST(FaultSites, AtmSwitchDropLosesTheCell)
{
    sim::Simulation s;
    AtmStar star(s, 2);

    fault::Plan plan = fault::Plan::parse("atm.switch.drop_every=2");

    int got = atmOneWay(s, star, 4, [&] {
        fault::attach(plan, s, star.sw);
    });
    EXPECT_EQ(got, 2);
    ASSERT_EQ(plan.armed().size(), 1u);
    EXPECT_EQ(plan.armed()[0]->dropped(), 2u);
}

TEST(FaultSites, NicAtmRxCorruptionHitsTheCrc)
{
    sim::Simulation s;
    AtmStar star(s, 2);

    fault::Plan plan;
    plan.model("nic.atm.rx.b").corrupt = 1.0;

    int got = atmOneWay(s, star, 2, [&] {
        fault::attach(plan, s, star[1].nic, ".b");
    });
    EXPECT_EQ(got, 0);
    ASSERT_EQ(plan.armed().size(), 1u);
    EXPECT_EQ(plan.armed()[0]->corrupted(), 2u);
    EXPECT_EQ(star[1].nic.crcDrops(), 2u);
}

namespace {

/** A seeded lossy AM run; returns the full metrics dump. */
std::vector<std::pair<std::string, double>>
lossyAmMetricsDump(std::uint64_t seed)
{
    sim::Simulation s(seed);
    eth::FullDuplexLink link(s);
    FeNode a(s, link, 0), b(s, link, 1);

    fault::Plan plan = fault::Plan::parse(
        "seed=5 eth.link.0.drop=0.2 eth.link.0.corrupt=0.05 "
        "eth.link.1.drop=0.1");
    fault::attach(plan, s, link);

    Endpoint *epA = nullptr, *epB = nullptr;
    ChannelId chanA = invalidChannel, chanB = invalidChannel;
    std::unique_ptr<ActiveMessages> amA, amB;
    int got = 0;
    const int total = 25;

    sim::Process procB(s, "B", [&](sim::Process &proc) {
        amB->setHandler(1, [&](sim::Process &, Token, const Args &,
                               std::span<const std::uint8_t>) {
            ++got;
        });
        amB->pollUntil(proc, [&] { return got >= total; },
                       sim::seconds(10));
        amB->pollUntil(proc, [] { return false; },
                       sim::milliseconds(5));
    });
    sim::Process procA(s, "A", [&](sim::Process &proc) {
        for (int i = 0; i < total; ++i)
            ASSERT_TRUE(amA->request(proc, chanA, 1, {}));
        EXPECT_TRUE(amA->drain(proc, sim::seconds(10)));
    });

    epA = &a.unet.createEndpoint(&procA, {});
    epB = &b.unet.createEndpoint(&procB, {});
    UNetFe::connect(a.unet, *epA, b.unet, *epB, chanA, chanB);
    amA = std::make_unique<ActiveMessages>(a.unet, *epA);
    amB = std::make_unique<ActiveMessages>(b.unet, *epB);
    amA->openChannel(chanA);
    amB->openChannel(chanB);
    procA.start();
    procB.start();
    s.run();

    EXPECT_EQ(got, total);
    return s.metrics().dump();
}

} // namespace

TEST(FaultDeterminism, IdenticalSeedAndPlanGiveIdenticalMetrics)
{
    // The whole point of the plane: a failing soak run can be replayed
    // bit-for-bit. Two runs with the same sim seed and the same plan
    // must produce the same metrics registry down to the last counter.
    auto a = lossyAmMetricsDump(17);
    auto b = lossyAmMetricsDump(17);
    EXPECT_EQ(a, b);
}
