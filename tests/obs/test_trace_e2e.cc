/**
 * @file
 * End-to-end custody tiling: one traced message through the full
 * U-Net/FE stack must produce a hop chain whose spans partition the
 * send-post -> consume interval exactly.
 */

#include <gtest/gtest.h>

#include "tests/unet/fixtures.hh"

using namespace unet;
using namespace unet::test;
using namespace unet::sim::literals;

#if UNET_TRACE

TEST(TraceE2E, CustodySpansTileSendToConsume)
{
    sim::Simulation s;
    s.enableTrace();
    eth::FullDuplexLink link(s);
    FeNode a(s, link, 0), b(s, link, 1);

    Endpoint *epA = nullptr, *epB = nullptr;
    ChannelId chanA = invalidChannel, chanB = invalidChannel;
    auto data = pattern(40);
    bool received = false;
    sim::Tick t_post = -1, t_consume = -1;

    sim::Process rx(s, "rx", [&](sim::Process &self) {
        RecvDescriptor got;
        received = epB->wait(self, got, 10_ms);
        t_consume = s.now();
    });
    sim::Process tx(s, "tx", [&](sim::Process &self) {
        t_post = s.now();
        EXPECT_TRUE(a.unet.send(self, *epA, inlineSend(chanA, data)));
    });

    epA = &a.unet.createEndpoint(&tx, {});
    epB = &b.unet.createEndpoint(&rx, {});
    UNetFe::connect(a.unet, *epA, b.unet, *epB, chanA, chanB);

    rx.start();
    tx.start(1_us);
    s.run();
    ASSERT_TRUE(received);

    auto *tr = s.trace();
    ASSERT_NE(tr, nullptr);
    std::vector<obs::Span> chain;
    tr->forEach([&](const obs::Span &sp) {
        if (obs::isCustody(sp.kind))
            chain.push_back(sp);
    });

    // The FE hop chain for one message.
    ASSERT_EQ(chain.size(), 5u);
    EXPECT_EQ(chain[0].kind, obs::SpanKind::TxPost);
    EXPECT_EQ(chain[1].kind, obs::SpanKind::TxNic);
    EXPECT_EQ(chain[2].kind, obs::SpanKind::Wire);
    EXPECT_EQ(chain[3].kind, obs::SpanKind::RxKernel);
    EXPECT_EQ(chain[4].kind, obs::SpanKind::RxQueue);
    EXPECT_EQ(tr->nameOf(chain[0].track), "node0.cpu");
    EXPECT_EQ(tr->nameOf(chain[2].track), "eth.wire");
    EXPECT_EQ(tr->nameOf(chain[3].track), "node1.cpu");

    // All hops belong to the same (non-zero) message.
    for (const auto &sp : chain)
        EXPECT_EQ(sp.id, chain[0].id);
    EXPECT_NE(chain[0].id, 0u);

    // Custody starts when send() posts and ends when wait() consumes.
    EXPECT_EQ(chain.front().start, t_post);
    EXPECT_EQ(chain.back().end, t_consume);

    // Tiling: contiguous handoffs, durations sum to the full latency.
    sim::Tick total = 0;
    for (std::size_t i = 0; i < chain.size(); ++i) {
        if (i > 0) {
            EXPECT_EQ(chain[i].start, chain[i - 1].end)
                << "gap/overlap before hop " << i;
        }
        total += chain[i].end - chain[i].start;
    }
    EXPECT_EQ(total, t_consume - t_post);
}

TEST(TraceE2E, DisabledTracerRecordsNothing)
{
    sim::Simulation s; // no enableTrace()
    eth::FullDuplexLink link(s);
    FeNode a(s, link, 0), b(s, link, 1);

    Endpoint *epA = nullptr, *epB = nullptr;
    ChannelId chanA = invalidChannel, chanB = invalidChannel;
    auto data = pattern(40);
    bool received = false;

    sim::Process rx(s, "rx", [&](sim::Process &self) {
        RecvDescriptor got;
        received = epB->wait(self, got, 10_ms);
    });
    sim::Process tx(s, "tx", [&](sim::Process &self) {
        EXPECT_TRUE(a.unet.send(self, *epA, inlineSend(chanA, data)));
    });

    epA = &a.unet.createEndpoint(&tx, {});
    epB = &b.unet.createEndpoint(&rx, {});
    UNetFe::connect(a.unet, *epA, b.unet, *epB, chanA, chanB);

    rx.start();
    tx.start(1_us);
    s.run();
    ASSERT_TRUE(received);
    EXPECT_EQ(s.trace(), nullptr);
}

#endif // UNET_TRACE
