#include <gtest/gtest.h>

#include <sstream>

#include "obs/export.hh"
#include "obs/trace.hh"

using namespace unet;
using namespace unet::obs;
using namespace unet::sim::literals;

TEST(TraceSession, RecordsAndInternNames)
{
    TraceSession tr(8);
    std::uint64_t id = tr.newMessageId();
    EXPECT_NE(id, 0u);

    tr.record(id, SpanKind::TxPost, "A.cpu", 0, 1000, "post");
    tr.record(id, SpanKind::Wire, "eth.wire", 1000, 3000);

    ASSERT_EQ(tr.size(), 2u);
    int seen = 0;
    tr.forEach([&](const Span &s) {
        EXPECT_EQ(s.id, id);
        if (seen == 0) {
            EXPECT_EQ(s.kind, SpanKind::TxPost);
            EXPECT_EQ(tr.nameOf(s.track), "A.cpu");
            EXPECT_EQ(tr.nameOf(s.label), "post");
        } else {
            EXPECT_EQ(s.kind, SpanKind::Wire);
            EXPECT_EQ(tr.nameOf(s.track), "eth.wire");
            EXPECT_EQ(tr.nameOf(s.label), ""); // 0 = kind name
        }
        ++seen;
    });
    EXPECT_EQ(seen, 2);

    // Interning is stable: the same string maps to the same index.
    EXPECT_EQ(tr.name("A.cpu"), tr.name("A.cpu"));
}

TEST(TraceSession, RingOverwritesOldestAndCountsDrops)
{
    TraceSession tr(4);
    for (sim::Tick i = 0; i < 10; ++i)
        tr.record(1, SpanKind::Step, "t", i, i + 1);

    EXPECT_EQ(tr.size(), 4u);
    EXPECT_EQ(tr.recorded(), 10u);
    EXPECT_EQ(tr.dropped(), 6u);

    // Oldest-first iteration starts at the oldest retained span.
    std::vector<sim::Tick> starts;
    tr.forEach([&](const Span &s) { starts.push_back(s.start); });
    EXPECT_EQ(starts, (std::vector<sim::Tick>{6, 7, 8, 9}));
}

TEST(TraceSession, KindHistogramTracksDurations)
{
    TraceSession tr(16);
    tr.record(1, SpanKind::Wire, "w", 0, sim::nanoseconds(5));
    tr.record(2, SpanKind::Wire, "w", 0, sim::nanoseconds(7));
    const Histogram &h = tr.kindHistogram(SpanKind::Wire);
    EXPECT_EQ(h.count(), 2u);
    EXPECT_EQ(h.sum(), 12u); // nanoseconds
}

TEST(TraceSession, CustodyTaxonomyPartitionsKinds)
{
    EXPECT_TRUE(isCustody(SpanKind::App));
    EXPECT_TRUE(isCustody(SpanKind::TxPost));
    EXPECT_TRUE(isCustody(SpanKind::TxNic));
    EXPECT_TRUE(isCustody(SpanKind::TxFw));
    EXPECT_TRUE(isCustody(SpanKind::Wire));
    EXPECT_TRUE(isCustody(SpanKind::RxKernel));
    EXPECT_TRUE(isCustody(SpanKind::RxFw));
    EXPECT_TRUE(isCustody(SpanKind::RxQueue));
    EXPECT_FALSE(isCustody(SpanKind::Step));
    EXPECT_FALSE(isCustody(SpanKind::AmHandler));
    EXPECT_STREQ(spanKindName(SpanKind::Wire), "Wire");
}

TEST(TraceSession, PublishesMetricsIntoRegistry)
{
    Registry reg;
    TraceSession tr(8, &reg);
    tr.record(tr.newMessageId(), SpanKind::Wire, "w", 0, 100);
    EXPECT_EQ(reg.value("trace.messages"), 1.0);
    EXPECT_EQ(reg.value("trace.spans"), 1.0);
}

TEST(TraceExport, PerfettoJsonAndCsvContainSpans)
{
    TraceSession tr(8);
    std::uint64_t id = tr.newMessageId();
    tr.record(id, SpanKind::TxPost, "A.cpu", sim::microseconds(1),
              sim::microseconds(3), "post");

    std::ostringstream json;
    writePerfettoJson(json, tr);
    std::string j = json.str();
    EXPECT_NE(j.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(j.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(j.find("\"cat\":\"custody\""), std::string::npos);
    EXPECT_NE(j.find("\"A.cpu\""), std::string::npos);

    std::ostringstream csv;
    writeCsv(csv, tr);
    std::string c = csv.str();
    EXPECT_NE(c.find("msg_id,kind,custody,track"), std::string::npos);
    EXPECT_NE(c.find("TxPost,1,A.cpu,post"), std::string::npos);

    std::ostringstream summary;
    writeSummary(summary, tr);
    EXPECT_NE(summary.str().find("TxPost"), std::string::npos);
}

TEST(TraceSession, ClearDropsSpansKeepsNames)
{
    TraceSession tr(8);
    std::uint16_t track = tr.name("A.cpu");
    tr.record(1, SpanKind::Step, track, 0, 10);
    tr.clear();
    EXPECT_EQ(tr.size(), 0u);
    EXPECT_EQ(tr.nameOf(track), "A.cpu");
}

#if UNET_TRACE
TEST(TraceSession, HopChainTilesTheLifetime)
{
    TraceSession tr(16);
    TraceContext ctx;
    tr.begin(ctx, 100);
    EXPECT_TRUE(static_cast<bool>(ctx));

    tr.hop(ctx, SpanKind::TxPost, "A.cpu", 300);
    tr.hop(ctx, SpanKind::Wire, "eth.wire", 900);
    tr.hop(ctx, SpanKind::RxQueue, "ep", 1000);

    // Custody spans partition [100, 1000] with no gaps or overlaps.
    sim::Tick expect_start = 100, total = 0;
    tr.forEach([&](const Span &s) {
        EXPECT_EQ(s.start, expect_start);
        expect_start = s.end;
        total += s.end - s.start;
    });
    EXPECT_EQ(expect_start, 1000);
    EXPECT_EQ(total, 900);

    // Untraced contexts are no-ops.
    TraceContext idle;
    tr.hop(idle, SpanKind::Wire, "eth.wire", 2000);
    EXPECT_EQ(tr.size(), 3u);
}
#endif // UNET_TRACE
