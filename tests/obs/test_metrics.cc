#include <gtest/gtest.h>

#include <sstream>

#include "obs/metrics.hh"

using namespace unet;
using namespace unet::obs;

TEST(Registry, CountersReadLiveValues)
{
    Registry reg;
    sim::Counter c;
    reg.addCounter("host.a.nic.frames", &c);

    EXPECT_TRUE(reg.has("host.a.nic.frames"));
    EXPECT_EQ(reg.value("host.a.nic.frames"), 0.0);
    ++c;
    ++c;
    EXPECT_EQ(reg.value("host.a.nic.frames"), 2.0);

    reg.remove("host.a.nic.frames");
    EXPECT_FALSE(reg.has("host.a.nic.frames"));
    EXPECT_EQ(reg.value("host.a.nic.frames"), 0.0);
}

TEST(Registry, GaugesEvaluateOnRead)
{
    Registry reg;
    double v = 1.5;
    reg.addGauge("eth.switch.learnedAddresses", [&] { return v; });
    EXPECT_EQ(reg.value("eth.switch.learnedAddresses"), 1.5);
    v = 7.0;
    EXPECT_EQ(reg.value("eth.switch.learnedAddresses"), 7.0);
}

TEST(Registry, UniquePrefixDisambiguatesInstances)
{
    Registry reg;
    EXPECT_EQ(reg.uniquePrefix("eth.hub"), "eth.hub");
    EXPECT_EQ(reg.uniquePrefix("eth.hub"), "eth.hub#2");
    EXPECT_EQ(reg.uniquePrefix("eth.hub"), "eth.hub#3");
    EXPECT_EQ(reg.uniquePrefix("atm.link"), "atm.link");
}

TEST(Registry, HistogramExpandsDerivedStats)
{
    Registry reg;
    Histogram h;
    reg.addHistogram("lat", &h);
    for (std::uint64_t i = 1; i <= 100; ++i)
        h.record(i);

    EXPECT_EQ(reg.value("lat"), 100.0);
    EXPECT_EQ(reg.value("lat.count"), 100.0);
    EXPECT_EQ(reg.value("lat.sum"), 5050.0);
    EXPECT_EQ(reg.value("lat.min"), 1.0);
    EXPECT_EQ(reg.value("lat.max"), 100.0);
    // Log-bucketed: quantiles are approximate but bounded.
    EXPECT_GE(reg.value("lat.p50"), 25.0);
    EXPECT_LE(reg.value("lat.p50"), 100.0);
    EXPECT_LE(reg.value("lat.p99"), 100.0);

    auto flat = reg.dump();
    bool saw_mean = false;
    for (const auto &[path, value] : flat)
        if (path == "lat.mean") {
            saw_mean = true;
            EXPECT_DOUBLE_EQ(value, 50.5);
        }
    EXPECT_TRUE(saw_mean);
}

TEST(Registry, DumpIsSortedAndJsonWellFormed)
{
    Registry reg;
    sim::Counter a, b;
    reg.addCounter("z.last", &a);
    reg.addCounter("a.first", &b);
    ++a;

    auto flat = reg.dump();
    ASSERT_EQ(flat.size(), 2u);
    EXPECT_EQ(flat[0].first, "a.first");
    EXPECT_EQ(flat[1].first, "z.last");

    std::ostringstream os;
    reg.writeJson(os);
    std::string json = os.str();
    EXPECT_NE(json.find("\"a.first\""), std::string::npos);
    EXPECT_NE(json.find("\"z.last\": 1"), std::string::npos);
    EXPECT_EQ(json.front(), '{');
}

TEST(MetricGroup, DeregistersOnDestruction)
{
    Registry reg;
    sim::Counter c;
    {
        MetricGroup g(reg, reg.uniquePrefix("host.a.unet.fe"));
        g.counter("messagesSent", c);
        EXPECT_TRUE(reg.has("host.a.unet.fe.messagesSent"));
        EXPECT_EQ(g.prefix(), "host.a.unet.fe");
    }
    EXPECT_FALSE(reg.has("host.a.unet.fe.messagesSent"));
    EXPECT_EQ(reg.size(), 0u);
}

TEST(HistogramTest, BucketsAndQuantilesBehave)
{
    Histogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.min(), 0u);
    EXPECT_EQ(h.quantile(0.5), 0.0);

    h.record(0);
    h.record(1);
    h.record(1000);
    EXPECT_EQ(h.count(), 3u);
    EXPECT_EQ(h.min(), 0u);
    EXPECT_EQ(h.max(), 1000u);
    EXPECT_DOUBLE_EQ(h.mean(), 1001.0 / 3.0);
    // Quantiles clamp to the observed range.
    EXPECT_LE(h.quantile(0.99), 1000.0);
    EXPECT_GE(h.quantile(0.0), 0.0);

    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.sum(), 0u);
}

TEST(HistogramTest, P999InterpolatesTheTailAccurately)
{
    // Every integer in [1, 16383] once: the top bucket [8192, 16383]
    // is fully dense, so linear interpolation inside it must land
    // within a couple of samples of the true order statistic
    // (0.999 * 16383 = 16366.6).
    Histogram h;
    for (std::uint64_t v = 1; v <= 16383; ++v)
        h.record(v);
    EXPECT_NEAR(h.quantile(0.999), 16367.0, 2.0);

    // Tail quantiles stay monotone and inside the observed range.
    EXPECT_LE(h.quantile(0.99), h.quantile(0.999));
    EXPECT_LE(h.quantile(0.999), static_cast<double>(h.max()));

    // Degenerate tail: one sample pins every quantile to it.
    Histogram one;
    one.record(7);
    EXPECT_DOUBLE_EQ(one.quantile(0.999), 7.0);
}

TEST(Registry, HistogramStatTableExposesP999)
{
    Registry reg;
    Histogram h;
    reg.addHistogram("lat", &h);
    for (std::uint64_t v = 1; v <= 1000; ++v)
        h.record(v);

    EXPECT_GT(reg.value("lat.p999"), 0.0);
    EXPECT_GE(reg.value("lat.p999"), reg.value("lat.p99"));
    EXPECT_LE(reg.value("lat.p999"), reg.value("lat.max"));

    bool in_dump = false;
    for (const auto &[path, value] : reg.dump())
        if (path == "lat.p999")
            in_dump = true;
    EXPECT_TRUE(in_dump);

    std::ostringstream os;
    reg.writeJson(os);
    EXPECT_NE(os.str().find("\"lat.p999\""), std::string::npos);
}
