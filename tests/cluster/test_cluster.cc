#include <gtest/gtest.h>

#include "cluster/cluster.hh"

using namespace unet;
using namespace unet::cluster;
using namespace unet::sim::literals;

TEST(Cluster, FeClusterUsesPaperHosts)
{
    auto cfg = Config::feCluster(8);
    sim::Simulation s;
    Cluster c(s, cfg);
    // "one 90 MHz and seven 120 MHz Pentium workstations"
    EXPECT_EQ(c.hostOf(0).cpu().spec().name, "Pentium-90");
    for (int i = 1; i < 8; ++i)
        EXPECT_EQ(c.hostOf(i).cpu().spec().name, "Pentium-120");
    EXPECT_EQ(c.unetOf(0).name(), "U-Net/FE");
}

TEST(Cluster, AtmClusterUsesPaperHosts)
{
    auto cfg = Config::atmSplitC(8);
    sim::Simulation s;
    Cluster c(s, cfg);
    // "4 SPARCStation 20s and 4 SPARCStation 10s"
    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(c.hostOf(i).cpu().spec().name, "SPARCstation-20");
    for (int i = 4; i < 8; ++i)
        EXPECT_EQ(c.hostOf(i).cpu().spec().name, "SPARCstation-10");
    EXPECT_EQ(c.unetOf(0).name(), "U-Net/ATM");
}

TEST(Cluster, FullMeshChannelsWork)
{
    sim::Simulation s;
    Cluster c(s, Config::feCluster(4, NetKind::FeBay28115, false));
    // Every ordered pair exchanges one value through the mesh.
    std::vector<std::vector<std::uint64_t>> seen(
        4, std::vector<std::uint64_t>(4, 0));
    c.run([&](splitc::Runtime &rt, sim::Process &proc) {
        splitc::HeapAddr slot = rt.alloc<std::uint64_t>(4);
        *rt.localPtr<std::uint64_t>(
            slot + static_cast<splitc::HeapAddr>(8 * rt.self())) =
            100 + static_cast<std::uint64_t>(rt.self());
        rt.barrier(proc);
        for (int peer = 0; peer < rt.procs(); ++peer) {
            auto v = rt.read(
                proc,
                splitc::GlobalPtr<std::uint64_t>(
                    peer,
                    slot + static_cast<splitc::HeapAddr>(8 * peer)));
            seen[static_cast<std::size_t>(rt.self())]
                [static_cast<std::size_t>(peer)] = v;
        }
        rt.barrier(proc);
    });
    for (int i = 0; i < 4; ++i)
        for (int j = 0; j < 4; ++j)
            EXPECT_EQ(seen[static_cast<std::size_t>(i)]
                          [static_cast<std::size_t>(j)],
                      100u + static_cast<std::uint64_t>(j));
}

TEST(Cluster, ElapsedTimeIsLastFinisher)
{
    sim::Simulation s;
    Cluster c(s, Config::feCluster(2, NetKind::FeBay28115, false));
    sim::Tick elapsed = c.run([&](splitc::Runtime &rt,
                                  sim::Process &proc) {
        if (rt.self() == 1)
            rt.chargeTime(proc, 5_ms);
    });
    EXPECT_GE(elapsed, 5_ms);
    EXPECT_LT(elapsed, 6_ms);
}

TEST(ClusterDeathTest, SecondRunRejected)
{
    sim::Simulation s;
    Cluster c(s, Config::feCluster(2, NetKind::FeBay28115, false));
    c.run([](splitc::Runtime &, sim::Process &) {});
    EXPECT_EXIT(c.run([](splitc::Runtime &, sim::Process &) {}),
                ::testing::ExitedWithCode(1), "one SPMD program");
}

TEST(Cluster, HubAndFn100Presets)
{
    for (NetKind kind : {NetKind::FeHub, NetKind::FeFn100}) {
        sim::Simulation s;
        Cluster c(s, Config::feCluster(3, kind, false));
        std::uint64_t sum = 0;
        c.run([&](splitc::Runtime &rt, sim::Process &proc) {
            auto v = rt.allReduceSum(
                proc, static_cast<std::uint64_t>(rt.self()));
            if (rt.self() == 0)
                sum = v;
        });
        EXPECT_EQ(sum, 3u);
    }
}

TEST(Cluster, LatencySensitiveOrdering)
{
    // A barrier-heavy workload should be slowest on the FN100 (highest
    // switch latency) and the hub the fastest among FE fabrics at
    // 2 nodes (no store-and-forward penalty, no contention at n=2).
    auto barrier_time = [](NetKind kind) {
        sim::Simulation s;
        Cluster c(s, Config::feCluster(2, kind, false));
        return c.run([](splitc::Runtime &rt, sim::Process &proc) {
            for (int i = 0; i < 50; ++i)
                rt.barrier(proc);
        });
    };
    sim::Tick hub = barrier_time(NetKind::FeHub);
    sim::Tick bay = barrier_time(NetKind::FeBay28115);
    sim::Tick fn = barrier_time(NetKind::FeFn100);
    EXPECT_LT(hub, bay);
    EXPECT_LT(bay, fn);
}
