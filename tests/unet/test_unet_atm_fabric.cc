#include <gtest/gtest.h>

#include "tests/unet/fixtures.hh"

using namespace unet;
using namespace unet::test;
using namespace unet::sim::literals;

TEST(UNetAtmFabric, EndToEndAcrossTwoSwitches)
{
    sim::Simulation s;
    atm::Fabric fabric(s);
    std::size_t sw0 = fabric.addSwitch();
    std::size_t sw1 = fabric.addSwitch();
    fabric.addTrunk(sw0, sw1);

    host::Host host_a(s, "a", host::CpuSpec::pentium120(),
                      host::BusSpec::pci());
    host::Host host_b(s, "b", host::CpuSpec::pentium120(),
                      host::BusSpec::pci());
    atm::AtmLink link_a(s), link_b(s);
    nic::Pca200 nic_a(host_a, link_a), nic_b(host_b, link_b);
    auto at_a = fabric.attachHost(sw0, link_a);
    auto at_b = fabric.attachHost(sw1, link_b);
    UNetAtm ua(host_a, nic_a), ub(host_b, nic_b);

    Endpoint *epA = nullptr, *epB = nullptr;
    ChannelId chanA = invalidChannel, chanB = invalidChannel;
    RecvDescriptor got;
    bool received = false;
    sim::Tick arrival = 0;

    sim::Process rx(s, "rx", [&](sim::Process &self) {
        received = epB->wait(self, got, 10_ms);
        arrival = s.now();
    });
    sim::Process tx(s, "tx", [&](sim::Process &self) {
        auto data = pattern(32);
        EXPECT_TRUE(ua.send(self, *epA, inlineSend(chanA, data)));
    });

    epA = &ua.createEndpoint(&tx, {});
    epB = &ub.createEndpoint(&rx, {});
    UNetAtm::connectFabric(ua, *epA, at_a, ub, *epB, at_b, fabric,
                           chanA, chanB);

    rx.start();
    tx.start();
    s.run();

    ASSERT_TRUE(received);
    EXPECT_EQ(got.length, 32u);
    auto want = pattern(32);
    EXPECT_TRUE(std::equal(want.begin(), want.end(),
                           got.inlineData.begin()));
    // Two 7-us switch hops in the path.
    EXPECT_GT(arrival, 2 * 7_us);
}

TEST(UNetAtmFabric, ExtraHopsAddForwardingLatency)
{
    auto latency = [](int extra_switches) {
        sim::Simulation s;
        atm::Fabric fabric(s);
        std::vector<std::size_t> sws{fabric.addSwitch()};
        for (int i = 0; i < extra_switches; ++i) {
            sws.push_back(fabric.addSwitch());
            fabric.addTrunk(sws[sws.size() - 2], sws.back());
        }

        host::Host host_a(s, "a", host::CpuSpec::pentium120(),
                          host::BusSpec::pci());
        host::Host host_b(s, "b", host::CpuSpec::pentium120(),
                          host::BusSpec::pci());
        atm::AtmLink link_a(s), link_b(s);
        nic::Pca200 nic_a(host_a, link_a), nic_b(host_b, link_b);
        auto at_a = fabric.attachHost(sws.front(), link_a);
        auto at_b = fabric.attachHost(sws.back(), link_b);
        UNetAtm ua(host_a, nic_a), ub(host_b, nic_b);

        Endpoint *epA = nullptr, *epB = nullptr;
        ChannelId chanA = invalidChannel, chanB = invalidChannel;
        sim::Tick arrival = -1;

        sim::Process rx(s, "rx", [&](sim::Process &self) {
            RecvDescriptor rd;
            if (epB->wait(self, rd, 10_ms))
                arrival = s.now();
        });
        sim::Process tx(s, "tx", [&](sim::Process &self) {
            auto data = pattern(16);
            ua.send(self, *epA, inlineSend(chanA, data));
        });

        epA = &ua.createEndpoint(&tx, {});
        epB = &ub.createEndpoint(&rx, {});
        UNetAtm::connectFabric(ua, *epA, at_a, ub, *epB, at_b, fabric,
                               chanA, chanB);
        rx.start();
        tx.start();
        s.run();
        return arrival;
    };

    sim::Tick one = latency(0);  // single switch
    sim::Tick three = latency(2); // three switches in a line
    // Each extra switch adds its forwarding delay + cell
    // serialization on the trunk.
    EXPECT_GT(three, one + 2 * 7_us);
}
