/**
 * @file
 * Endpoint virtualization: table lifecycle, LRU victim determinism
 * (bit-identical under perturbation salts), pin/custody safety panics,
 * and paging integration on both NIC paths with a hot set smaller than
 * the working set.
 */

#include <gtest/gtest.h>

#include "sim/perturb.hh"
#include "tests/unet/fixtures.hh"
#include "unet/vep/vep.hh"

using namespace unet;
using namespace unet::test;
using namespace unet::sim::literals;

TEST(VepTable, LifecycleColdAndMaterialized)
{
    sim::Simulation s;
    eth::FullDuplexLink link(s);
    FeNode a(s, link, 0), b(s, link, 1);
    vep::EndpointTable &t = a.unet.table();

    sim::Process app(s, "app", [](sim::Process &) {});
    Endpoint &ep = a.unet.createEndpoint(&app, {});
    EXPECT_EQ(t.materialized(), 1u);
    EXPECT_EQ(t.cold(), 0u);
    EXPECT_TRUE(t.known(ep.id()));
    EXPECT_EQ(t.get(ep.id()), &ep);

    // The cold tier: the id exists, no Endpoint object backs it.
    std::size_t cold_id = t.registerCold();
    EXPECT_EQ(t.size(), 2u);
    EXPECT_EQ(t.cold(), 1u);
    EXPECT_TRUE(t.known(cold_id));
    EXPECT_EQ(t.get(cold_id), nullptr);

    // Retiring either kind never reuses the id.
    t.destroy(cold_id);
    EXPECT_EQ(t.cold(), 0u);
    EXPECT_FALSE(t.known(cold_id));
    std::size_t ep_id = ep.id();
    a.unet.destroyEndpoint(ep);
    EXPECT_EQ(t.materialized(), 0u);
    EXPECT_FALSE(t.known(ep_id));
    EXPECT_EQ(t.size(), 2u);
    std::size_t next = t.registerCold();
    EXPECT_NE(next, cold_id);
    EXPECT_NE(next, ep_id);
}

TEST(VepResidency, FaultCostsAndLruVictim)
{
    sim::Simulation s;
    vep::VepSpec spec;
    spec.hotCapacity = 3;
    vep::ResidencyCache c(s, spec, "test.vep");

    // Cold misses with free slots: page-in only, no eviction.
    EXPECT_EQ(c.touch(0), spec.pageInLatency);
    EXPECT_EQ(c.touch(1), spec.pageInLatency);
    EXPECT_EQ(c.touch(2), spec.pageInLatency);
    EXPECT_EQ(c.faults(), 3u);
    EXPECT_EQ(c.evictions(), 0u);

    // A hit is free and refreshes recency.
    EXPECT_EQ(c.touch(0), 0);
    EXPECT_EQ(c.hits(), 1u);

    // Full set: the least-recently-touched (1, not the refreshed 0)
    // pays the way out, and the faulting caller is charged both sides.
    EXPECT_EQ(c.touch(3), spec.pageInLatency + spec.pageOutLatency);
    EXPECT_EQ(c.evictions(), 1u);
    EXPECT_FALSE(c.resident(1));
    EXPECT_TRUE(c.resident(0));
    EXPECT_TRUE(c.resident(2));
    EXPECT_TRUE(c.resident(3));
    EXPECT_EQ(c.residentCount(), 3u);
}

TEST(VepResidency, WarmPreloadsWithoutFault)
{
    sim::Simulation s;
    vep::VepSpec spec;
    spec.hotCapacity = 2;
    vep::ResidencyCache c(s, spec, "test.vep");

    c.warm(7);
    EXPECT_TRUE(c.resident(7));
    EXPECT_EQ(c.faults(), 0u);
    // The subsequent fast-path access is a plain hit.
    EXPECT_EQ(c.touch(7), 0);
    EXPECT_EQ(c.hits(), 1u);
    // Warming over a full set still evicts LRU (and counts it).
    c.warm(8);
    c.warm(9);
    EXPECT_FALSE(c.resident(7));
    EXPECT_EQ(c.evictions(), 1u);
    EXPECT_EQ(c.faults(), 0u);
}

TEST(VepResidency, PinnedEndpointIsNeverTheVictim)
{
    sim::Simulation s;
    vep::VepSpec spec;
    spec.hotCapacity = 2;
    vep::ResidencyCache c(s, spec, "test.vep");

    c.touch(0);
    c.touch(1);
    c.pin(0);
    EXPECT_EQ(c.pinnedCount(), 1u);
    // LRU would pick 0; custody forces the scan past it to 1.
    c.touch(2);
    EXPECT_TRUE(c.resident(0));
    EXPECT_FALSE(c.resident(1));
    c.unpin(0);
    EXPECT_EQ(c.pinnedCount(), 0u);
    // With the pin released, 0 is the oldest touch and goes first.
    c.touch(3);
    EXPECT_FALSE(c.resident(0));
    EXPECT_TRUE(c.resident(2));
    EXPECT_TRUE(c.resident(3));
}

/**
 * Victim choice is a function of the logical touch sequence alone —
 * never an address or clock — so the same access script produces the
 * same hot set, hash, and counters under every perturbation salt.
 */
TEST(VepResidency, VictimChoiceStableAcrossSalts)
{
    auto script = [] {
        sim::Simulation s;
        vep::VepSpec spec;
        spec.hotCapacity = 4;
        vep::ResidencyCache c(s, spec, "test.vep");
        const std::size_t accesses[] = {0, 1, 2, 3, 1, 4, 0,
                                        5, 2, 6, 1, 7, 3};
        for (std::size_t id : accesses) {
            c.touch(id);
            if (id % 3 == 0) {
                c.pin(id);
                c.unpin(id);
            }
        }
        struct
        {
            std::uint64_t hash, faults, evictions, hits;
        } out{c.stateHash(), c.faults(), c.evictions(), c.hits()};
        return out;
    };

    auto baseline = script();
    EXPECT_GT(baseline.evictions, 0u);
    for (std::uint64_t salt = 1; salt <= 5; ++salt) {
        sim::perturb::ScopedSalt scoped(salt);
        auto got = script();
        EXPECT_EQ(got.hash, baseline.hash) << "salt " << salt;
        EXPECT_EQ(got.faults, baseline.faults) << "salt " << salt;
        EXPECT_EQ(got.evictions, baseline.evictions) << "salt " << salt;
        EXPECT_EQ(got.hits, baseline.hits) << "salt " << salt;
    }
}

TEST(VepResidencyDeathTest, EvictingPinnedEndpointPanics)
{
    sim::Simulation s;
    vep::ResidencyCache c(s, {}, "test.vep");
    c.touch(0);
    c.pin(0);
    EXPECT_DEATH(c.evict(0), "in-flight custody");
}

TEST(VepResidencyDeathTest, RemovingPinnedEndpointPanics)
{
    sim::Simulation s;
    vep::ResidencyCache c(s, {}, "test.vep");
    c.touch(0);
    c.pin(0);
    EXPECT_DEATH(c.remove(0), "in-flight custody");
}

TEST(VepResidencyDeathTest, AllResidentsPinnedPanicsOnMiss)
{
    sim::Simulation s;
    vep::VepSpec spec;
    spec.hotCapacity = 1;
    vep::ResidencyCache c(s, spec, "test.vep");
    c.touch(0);
    c.pin(0);
    EXPECT_DEATH(c.touch(1), "full of pinned");
}

namespace {

/**
 * Alternating-traffic script shared by both NIC integration tests:
 * one message to each of the receiver's two endpoints in turn, with
 * gaps long enough that custody windows never overlap. Lengths differ
 * per endpoint so a misrouted demux cannot pass.
 */
constexpr int kRounds = 3;

std::uint32_t
lengthFor(int e)
{
    return 24u + 8u * static_cast<unsigned>(e);
}

} // namespace

TEST(VepFe, ReceiverPagesUnderUndersizedHotSet)
{
    sim::Simulation s;
    eth::FullDuplexLink link(s);
    FeNode a(s, link, 0);

    // Receiver NIC holds one endpoint's state; two are live.
    UNetFeSpec tiny;
    tiny.vep.hotCapacity = 1;
    host::Host host_b(s, "node1", host::CpuSpec::pentium120(),
                      host::BusSpec::pci());
    nic::Dc21140 nic_b(host_b, link, eth::MacAddress::fromIndex(2));
    UNetFe unet_b(host_b, nic_b, tiny);

    Endpoint *eps_a[2] = {}, *eps_b[2] = {};
    ChannelId chans_a[2] = {invalidChannel, invalidChannel};
    std::vector<std::uint32_t> lengths;

    sim::Process rx(s, "rx", [&](sim::Process &self) {
        for (int r = 0; r < kRounds; ++r)
            for (int e = 0; e < 2; ++e) {
                RecvDescriptor got;
                if (!eps_b[e]->wait(self, got, 10_ms))
                    return;
                lengths.push_back(got.length);
            }
    });
    sim::Process tx(s, "tx", [&](sim::Process &self) {
        for (int r = 0; r < kRounds; ++r)
            for (int e = 0; e < 2; ++e) {
                EXPECT_TRUE(a.unet.send(
                    self, *eps_a[e],
                    inlineSend(chans_a[e], pattern(lengthFor(e)))));
                self.delay(300_us);
            }
    });

    for (int e = 0; e < 2; ++e) {
        eps_a[e] = &a.unet.createEndpoint(&tx, {});
        eps_b[e] = &unet_b.createEndpoint(&rx, {});
        ChannelId cb = invalidChannel;
        UNetFe::connect(a.unet, *eps_a[e], unet_b, *eps_b[e],
                        chans_a[e], cb);
    }
    rx.start();
    tx.start(10_us);
    s.run();

    ASSERT_EQ(lengths.size(), 6u);
    for (std::size_t i = 0; i < lengths.size(); ++i)
        EXPECT_EQ(lengths[i], 24u + 8u * (i % 2));
    EXPECT_EQ(unet_b.messagesDelivered(), 6u);
    // Every demux alternation missed the one-slot hot set.
    EXPECT_EQ(unet_b.residency().faults(), 6u);
    EXPECT_GE(unet_b.residency().evictions(), 5u);
    EXPECT_EQ(unet_b.residency().pinnedCount(), 0u);
    // The sender's default-capacity hot set never paged.
    EXPECT_EQ(a.unet.residency().faults(), 0u);
}

TEST(VepAtm, ReceiverPagesUnderUndersizedHotSet)
{
    sim::Simulation s;
    atm::Switch sw(s);
    atm::Signalling signalling(sw);

    AtmNode a(s, 0);
    std::size_t port_a = sw.addPort(a.link);

    // Receiver adapter SRAM holds one endpoint's state; two are live.
    host::Host host_b(s, "node1", host::CpuSpec::pentium120(),
                      host::BusSpec::pci());
    atm::AtmLink link_b(s, atm::LinkSpec::oc3());
    nic::Pca200Spec tiny;
    tiny.vep.hotCapacity = 1;
    nic::Pca200 nic_b(host_b, link_b, tiny);
    UNetAtm unet_b(host_b, nic_b);
    std::size_t port_b = sw.addPort(link_b);

    Endpoint *eps_a[2] = {}, *eps_b[2] = {};
    ChannelId chans_a[2] = {invalidChannel, invalidChannel};
    std::vector<std::uint32_t> lengths;

    sim::Process rx(s, "rx", [&](sim::Process &self) {
        for (int r = 0; r < kRounds; ++r)
            for (int e = 0; e < 2; ++e) {
                RecvDescriptor got;
                if (!eps_b[e]->wait(self, got, 10_ms))
                    return;
                lengths.push_back(got.length);
            }
    });
    sim::Process tx(s, "tx", [&](sim::Process &self) {
        for (int r = 0; r < kRounds; ++r)
            for (int e = 0; e < 2; ++e) {
                EXPECT_TRUE(a.unet.send(
                    self, *eps_a[e],
                    inlineSend(chans_a[e], pattern(lengthFor(e)))));
                self.delay(300_us);
            }
    });

    for (int e = 0; e < 2; ++e) {
        eps_a[e] = &a.unet.createEndpoint(&tx, {});
        eps_b[e] = &unet_b.createEndpoint(&rx, {});
        ChannelId cb = invalidChannel;
        UNetAtm::connect(a.unet, *eps_a[e], port_a, unet_b, *eps_b[e],
                         port_b, signalling, chans_a[e], cb);
    }
    rx.start();
    tx.start(10_us);
    s.run();

    ASSERT_EQ(lengths.size(), 6u);
    for (std::size_t i = 0; i < lengths.size(); ++i)
        EXPECT_EQ(lengths[i], 24u + 8u * (i % 2));
    EXPECT_EQ(nic_b.messagesDelivered(), 6u);
    // Every i960 demux alternation paged endpoint state in.
    EXPECT_EQ(nic_b.residency().faults(), 6u);
    EXPECT_GE(nic_b.residency().evictions(), 5u);
    EXPECT_EQ(nic_b.residency().pinnedCount(), 0u);
    EXPECT_EQ(a.nic.residency().faults(), 0u);
}
