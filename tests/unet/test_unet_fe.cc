#include <gtest/gtest.h>

#include "tests/unet/fixtures.hh"

using namespace unet;
using namespace unet::test;
using namespace unet::sim::literals;

namespace {

/** Two FE nodes on a full-duplex link with a channel between them. */
struct FePair
{
    FePair()
        : link(s), a(s, link, 0), b(s, link, 1),
          sender(s, "sender", [](sim::Process &) {}),
          receiver(s, "receiver", [](sim::Process &) {})
    {
        epA = &a.unet.createEndpoint(&sender, {});
        epB = &b.unet.createEndpoint(&receiver, {});
        UNetFe::connect(a.unet, *epA, b.unet, *epB, chanA, chanB);
    }

    sim::Simulation s;
    eth::FullDuplexLink link;
    FeNode a, b;
    sim::Process sender, receiver;
    Endpoint *epA = nullptr;
    Endpoint *epB = nullptr;
    ChannelId chanA = invalidChannel;
    ChannelId chanB = invalidChannel;
};

[[maybe_unused]] void
epSend(FePair &p, sim::Process &self)
{
    auto data = pattern(40);
    p.a.unet.send(self, *p.epA, inlineSend(p.chanA, data));
}

} // namespace

TEST(UNetFe, SmallMessageEndToEnd)
{
    sim::Simulation s;
    eth::FullDuplexLink link(s);
    FeNode a(s, link, 0), b(s, link, 1);

    Endpoint *epA = nullptr, *epB = nullptr;
    ChannelId chanA = invalidChannel, chanB = invalidChannel;
    auto data = pattern(40);
    RecvDescriptor got;
    bool received = false;

    sim::Process rx(s, "rx", [&](sim::Process &self) {
        received = epB->wait(self, got, 10_ms);
    });
    sim::Process tx(s, "tx", [&](sim::Process &self) {
        EXPECT_TRUE(a.unet.send(self, *epA, inlineSend(chanA, data)));
    });

    epA = &a.unet.createEndpoint(&tx, {});
    epB = &b.unet.createEndpoint(&rx, {});
    UNetFe::connect(a.unet, *epA, b.unet, *epB, chanA, chanB);

    rx.start();
    tx.start(1_us);
    s.run();

    ASSERT_TRUE(received);
    EXPECT_TRUE(got.isSmall);
    EXPECT_EQ(got.length, 40u);
    EXPECT_EQ(got.channel, chanB);
    EXPECT_TRUE(std::equal(data.begin(), data.end(),
                           got.inlineData.begin()));
    EXPECT_EQ(a.unet.messagesSent(), 1u);
    EXPECT_EQ(b.unet.messagesDelivered(), 1u);
}

TEST(UNetFe, LargeMessageUsesFreeBuffers)
{
    sim::Simulation s;
    eth::FullDuplexLink link(s);
    FeNode a(s, link, 0), b(s, link, 1);

    Endpoint *epA = nullptr, *epB = nullptr;
    ChannelId chanA = invalidChannel, chanB = invalidChannel;
    auto data = pattern(1000, 9);
    RecvDescriptor got;
    bool received = false;
    std::vector<std::uint8_t> received_bytes;

    sim::Process rx(s, "rx", [&](sim::Process &self) {
        // Provide receive buffers first.
        b.unet.postFree(self, *epB, {0, 2048});
        received = epB->wait(self, got, 10_ms);
        if (received && !got.isSmall) {
            for (std::uint8_t i = 0; i < got.bufferCount; ++i) {
                auto span = epB->buffers().span(got.buffers[i]);
                received_bytes.insert(received_bytes.end(), span.begin(),
                                      span.end());
            }
        }
    });
    sim::Process tx(s, "tx", [&](sim::Process &self) {
        // Compose in the buffer area, send zero-copy.
        epA->buffers().write({100, 1000}, data);
        EXPECT_TRUE(a.unet.send(self, *epA,
                                fragmentSend(chanA, {100, 1000})));
    });

    epA = &a.unet.createEndpoint(&tx, {});
    epB = &b.unet.createEndpoint(&rx, {});
    UNetFe::connect(a.unet, *epA, b.unet, *epB, chanA, chanB);

    rx.start();
    tx.start(5_us);
    s.run();

    ASSERT_TRUE(received);
    EXPECT_FALSE(got.isSmall);
    EXPECT_EQ(got.length, 1000u);
    EXPECT_EQ(received_bytes, data);
}

TEST(UNetFe, NoFreeBufferDropsLargeMessage)
{
    sim::Simulation s;
    eth::FullDuplexLink link(s);
    FeNode a(s, link, 0), b(s, link, 1);

    Endpoint *epA = nullptr, *epB = nullptr;
    ChannelId chanA = invalidChannel, chanB = invalidChannel;
    bool received = true;

    sim::Process rx(s, "rx", [&](sim::Process &self) {
        RecvDescriptor got;
        received = epB->wait(self, got, 2_ms);
    });
    sim::Process tx(s, "tx", [&](sim::Process &self) {
        epA->buffers().write({0, 500}, pattern(500));
        EXPECT_TRUE(a.unet.send(self, *epA,
                                fragmentSend(chanA, {0, 500})));
    });

    epA = &a.unet.createEndpoint(&tx, {});
    epB = &b.unet.createEndpoint(&rx, {});
    UNetFe::connect(a.unet, *epA, b.unet, *epB, chanA, chanB);

    rx.start();
    tx.start(1_us);
    s.run();

    EXPECT_FALSE(received);
    EXPECT_EQ(b.unet.rxNoFreeBuffer(), 1u);
    EXPECT_EQ(b.unet.messagesDelivered(), 0u);
}

TEST(UNetFe, ProtectionFaultOnForeignEndpoint)
{
    sim::Simulation s;
    eth::FullDuplexLink link(s);
    FeNode a(s, link, 0), b(s, link, 1);

    Endpoint *epA = nullptr;
    ChannelId chanA = invalidChannel, chanB = invalidChannel;

    sim::Process owner(s, "owner", [](sim::Process &) {});
    sim::Process intruder(s, "intruder", [&](sim::Process &self) {
        auto data = pattern(16);
        // A process that does not own the endpoint must be rejected.
        EXPECT_FALSE(a.unet.send(self, *epA, inlineSend(chanA, data)));
    });

    epA = &a.unet.createEndpoint(&owner, {});
    Endpoint *epB = &b.unet.createEndpoint(&owner, {});
    UNetFe::connect(a.unet, *epA, b.unet, *epB, chanA, chanB);

    intruder.start();
    s.run();
    EXPECT_EQ(a.unet.protectionFaults(), 1u);
    EXPECT_EQ(a.unet.messagesSent(), 0u);
}

TEST(UNetFe, SendProcessorOverheadMatchesFig3)
{
    FePair p;
    sim::Tick elapsed = -1;
    sim::Process tx(p.s, "tx", [&](sim::Process &self) {
        auto data = pattern(40);
        sim::Tick t0 = p.s.now();
        p.a.unet.send(self, *p.epA, inlineSend(p.chanA, data));
        elapsed = p.s.now() - t0;
    });
    tx.start();
    // Rebind endpoint ownership to the actual sender.
    p.epA = &p.a.unet.createEndpoint(&tx, {});
    ChannelId ca, cb;
    UNetFe::connect(p.a.unet, *p.epA, p.b.unet, *p.epB, ca, cb);
    p.chanA = ca;
    p.s.run();

    // "processor overhead required to push a message into the network
    // is approximately 4.2 us" (+ the user-level descriptor push and
    // the small inline copy in our accounting).
    EXPECT_GT(sim::toMicroseconds(elapsed), 4.0);
    EXPECT_LT(sim::toMicroseconds(elapsed), 6.5);
}

#if UNET_TRACE
TEST(UNetFe, TxTimelineSumsToFourPointTwo)
{
    FePair p;
    p.s.enableTrace();
    sim::Process tx(p.s, "tx",
                    [&](sim::Process &self) { epSend(p, self); });
    p.epA = &p.a.unet.createEndpoint(&tx, {});
    ChannelId ca, cb;
    UNetFe::connect(p.a.unet, *p.epA, p.b.unet, *p.epB, ca, cb);
    p.chanA = ca;
    tx.start();
    p.s.run();

    // The Fig. 3 timeline is the Step spans on the sender's CPU track.
    auto *tr = p.s.trace();
    std::vector<obs::Span> steps;
    tr->forEach([&](const obs::Span &sp) {
        if (sp.kind == obs::SpanKind::Step &&
            tr->nameOf(sp.track) == "node0.cpu")
            steps.push_back(sp);
    });

    ASSERT_EQ(steps.size(), 8u); // the eight Fig. 3 steps
    sim::Tick total = 0;
    for (const auto &sp : steps)
        total += sp.end - sp.start;
    EXPECT_NEAR(sim::toMicroseconds(total), 4.2, 0.1);
    EXPECT_EQ(tr->nameOf(steps.front().label), "trap entry");
    EXPECT_EQ(tr->nameOf(steps.back().label), "return from trap");

    // "about 20% are consumed by the trap overhead"
    double trap = sim::toMicroseconds(
        (steps.front().end - steps.front().start) +
        (steps.back().end - steps.back().start));
    EXPECT_NEAR(trap / sim::toMicroseconds(total), 0.20, 0.03);
}
#endif // UNET_TRACE

TEST(UNetFe, UnknownPortCounted)
{
    FePair p;
    sim::Process tx(p.s, "tx", [&](sim::Process &self) {
        auto data = pattern(8);
        p.a.unet.send(self, *p.epA, inlineSend(p.chanA, data));
    });
    p.epA = &p.a.unet.createEndpoint(&tx, {});
    // Point the channel at a port that exists on no endpoint at B.
    p.chanA = p.a.unet.addChannelTo(*p.epA, p.b.nic.address(), 199);
    tx.start();
    p.s.run();
    EXPECT_EQ(p.b.unet.rxUnknownPort(), 1u);
}

TEST(UNetFe, UnknownSourceChannelCounted)
{
    sim::Simulation s;
    eth::FullDuplexLink link(s);
    FeNode a(s, link, 0), b(s, link, 1);

    sim::Process tx(s, "tx", [](sim::Process &) {});
    Endpoint *epA = &a.unet.createEndpoint(&tx, {});
    Endpoint *epB = &b.unet.createEndpoint(&tx, {});
    // One-way registration: A knows B, but B has no channel back to A,
    // so B cannot attribute the message to a channel.
    ChannelId chanA =
        a.unet.addChannelTo(*epA, b.nic.address(), b.unet.portOf(*epB));

    sim::Process sender(s, "sender", [&](sim::Process &self) {
        auto data = pattern(8);
        a.unet.send(self, *epA, inlineSend(chanA, data));
    });
    epA = &a.unet.createEndpoint(&sender, {});
    chanA = a.unet.addChannelTo(*epA, b.nic.address(),
                                b.unet.portOf(*epB));
    sender.start();
    s.run();
    EXPECT_EQ(b.unet.rxNoChannel(), 1u);
}
