/**
 * @file
 * Two-node test rigs for the U-Net implementations.
 */

#ifndef UNET_TESTS_UNET_FIXTURES_HH
#define UNET_TESTS_UNET_FIXTURES_HH

#include <memory>
#include <vector>

#include "atm/switch.hh"
#include "eth/link.hh"
#include "unet/unet_atm.hh"
#include "unet/unet_fe.hh"

namespace unet::test {

/** One Fast Ethernet node: host + DC21140 + in-kernel U-Net. */
struct FeNode
{
    FeNode(sim::Simulation &s, eth::Network &net, int index)
        : host(s, "node" + std::to_string(index),
               host::CpuSpec::pentium120(), host::BusSpec::pci()),
          nic(host, net,
              eth::MacAddress::fromIndex(static_cast<std::uint32_t>(
                  index + 1))),
          unet(host, nic)
    {}

    host::Host host;
    nic::Dc21140 nic;
    UNetFe unet;
};

/** One ATM node: host + PCA-200 + U-Net/ATM driver. */
struct AtmNode
{
    AtmNode(sim::Simulation &s, int index,
            host::CpuSpec cpu = host::CpuSpec::pentium120(),
            host::BusSpec bus = host::BusSpec::pci(),
            atm::LinkSpec link_spec = atm::LinkSpec::oc3())
        : host(s, "node" + std::to_string(index), std::move(cpu),
               std::move(bus)),
          link(s, link_spec), nic(host, link), unet(host, nic)
    {}

    host::Host host;
    atm::AtmLink link;
    nic::Pca200 nic;
    UNetAtm unet;
};

/** An ATM star: N nodes around one ASX-200. */
struct AtmStar
{
    AtmStar(sim::Simulation &s, int n,
            host::CpuSpec cpu = host::CpuSpec::pentium120(),
            host::BusSpec bus = host::BusSpec::pci(),
            atm::LinkSpec link_spec = atm::LinkSpec::oc3())
        : sw(s), signalling(sw)
    {
        for (int i = 0; i < n; ++i) {
            nodes.push_back(std::make_unique<AtmNode>(
                s, i, cpu, bus, link_spec));
            ports.push_back(sw.addPort(nodes.back()->link));
        }
    }

    AtmNode &operator[](std::size_t i) { return *nodes[i]; }

    atm::Switch sw;
    atm::Signalling signalling;
    std::vector<std::unique_ptr<AtmNode>> nodes;
    std::vector<std::size_t> ports;
};

/** Build an inline (small) send descriptor. */
inline SendDescriptor
inlineSend(ChannelId chan, std::span<const std::uint8_t> data)
{
    SendDescriptor sd;
    sd.channel = chan;
    sd.isInline = true;
    sd.inlineLength = static_cast<std::uint32_t>(data.size());
    std::copy(data.begin(), data.end(), sd.inlineData.begin());
    return sd;
}

/** Build a single-fragment buffer-area send descriptor. */
inline SendDescriptor
fragmentSend(ChannelId chan, BufferRef frag)
{
    SendDescriptor sd;
    sd.channel = chan;
    sd.isInline = false;
    sd.fragmentCount = 1;
    sd.fragments[0] = frag;
    return sd;
}

/** A recognizable payload. */
inline std::vector<std::uint8_t>
pattern(std::size_t n, std::uint8_t seed = 1)
{
    std::vector<std::uint8_t> v(n);
    for (std::size_t i = 0; i < n; ++i)
        v[i] = static_cast<std::uint8_t>(seed + i * 7);
    return v;
}

} // namespace unet::test

#endif // UNET_TESTS_UNET_FIXTURES_HH
