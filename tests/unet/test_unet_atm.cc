#include <gtest/gtest.h>

#include "tests/unet/fixtures.hh"

using namespace unet;
using namespace unet::test;
using namespace unet::sim::literals;

TEST(UNetAtm, SingleCellMessageEndToEnd)
{
    sim::Simulation s;
    AtmStar star(s, 2);

    Endpoint *epA = nullptr, *epB = nullptr;
    ChannelId chanA = invalidChannel, chanB = invalidChannel;
    auto data = pattern(40);
    RecvDescriptor got;
    bool received = false;

    sim::Process rx(s, "rx", [&](sim::Process &self) {
        received = epB->wait(self, got, 10_ms);
    });
    sim::Process tx(s, "tx", [&](sim::Process &self) {
        EXPECT_TRUE(star[0].unet.send(self, *epA,
                                      inlineSend(chanA, data)));
    });

    epA = &star[0].unet.createEndpoint(&tx, {});
    epB = &star[1].unet.createEndpoint(&rx, {});
    UNetAtm::connect(star[0].unet, *epA, star.ports[0], star[1].unet,
                     *epB, star.ports[1], star.signalling, chanA, chanB);

    rx.start();
    tx.start(1_us);
    s.run();

    ASSERT_TRUE(received);
    EXPECT_TRUE(got.isSmall); // single-cell fast path
    EXPECT_EQ(got.length, 40u);
    EXPECT_EQ(got.channel, chanB);
    EXPECT_TRUE(std::equal(data.begin(), data.end(),
                           got.inlineData.begin()));
    EXPECT_EQ(star[0].nic.cellsSent(), 1u);
    EXPECT_EQ(star[1].nic.messagesDelivered(), 1u);
}

TEST(UNetAtm, MultiCellMessageIntoBuffers)
{
    sim::Simulation s;
    AtmStar star(s, 2);

    Endpoint *epA = nullptr, *epB = nullptr;
    ChannelId chanA = invalidChannel, chanB = invalidChannel;
    auto data = pattern(1500, 3);
    RecvDescriptor got;
    bool received = false;
    std::vector<std::uint8_t> received_bytes;

    sim::Process rx(s, "rx", [&](sim::Process &self) {
        star[1].unet.postFree(self, *epB, {0, 4096});
        received = epB->wait(self, got, 10_ms);
        if (received && !got.isSmall) {
            for (std::uint8_t i = 0; i < got.bufferCount; ++i) {
                auto span = epB->buffers().span(got.buffers[i]);
                received_bytes.insert(received_bytes.end(), span.begin(),
                                      span.end());
            }
        }
    });
    sim::Process tx(s, "tx", [&](sim::Process &self) {
        epA->buffers().write({0, 1500}, data);
        EXPECT_TRUE(star[0].unet.send(self, *epA,
                                      fragmentSend(chanA, {0, 1500})));
    });

    epA = &star[0].unet.createEndpoint(&tx, {});
    epB = &star[1].unet.createEndpoint(&rx, {});
    UNetAtm::connect(star[0].unet, *epA, star.ports[0], star[1].unet,
                     *epB, star.ports[1], star.signalling, chanA, chanB);

    rx.start();
    tx.start(1_us);
    s.run();

    ASSERT_TRUE(received);
    EXPECT_FALSE(got.isSmall);
    EXPECT_EQ(got.length, 1500u);
    EXPECT_EQ(received_bytes, data);
    // 1500 + 8 trailer = 32 cells.
    EXPECT_EQ(star[0].nic.cellsSent(), 32u);
    EXPECT_EQ(star.sw.cellsForwarded(), 32u);
}

TEST(UNetAtm, NoFreeBufferPoisonsPdu)
{
    sim::Simulation s;
    AtmStar star(s, 2);

    Endpoint *epA = nullptr, *epB = nullptr;
    ChannelId chanA = invalidChannel, chanB = invalidChannel;
    bool received = true;

    sim::Process rx(s, "rx", [&](sim::Process &self) {
        RecvDescriptor got;
        received = epB->wait(self, got, 5_ms); // no free buffers posted
    });
    sim::Process tx(s, "tx", [&](sim::Process &self) {
        epA->buffers().write({0, 500}, pattern(500));
        star[0].unet.send(self, *epA, fragmentSend(chanA, {0, 500}));
    });

    epA = &star[0].unet.createEndpoint(&tx, {});
    epB = &star[1].unet.createEndpoint(&rx, {});
    UNetAtm::connect(star[0].unet, *epA, star.ports[0], star[1].unet,
                     *epB, star.ports[1], star.signalling, chanA, chanB);

    rx.start();
    tx.start(1_us);
    s.run();

    EXPECT_FALSE(received);
    EXPECT_EQ(star[1].nic.noBufferDrops(), 1u);
    EXPECT_EQ(star[1].nic.messagesDelivered(), 0u);
}

TEST(UNetAtm, ProtectionFaultOnForeignEndpoint)
{
    sim::Simulation s;
    AtmStar star(s, 2);

    sim::Process owner(s, "owner", [](sim::Process &) {});
    Endpoint *epA = &star[0].unet.createEndpoint(&owner, {});
    Endpoint *epB = &star[1].unet.createEndpoint(&owner, {});
    ChannelId chanA, chanB;
    UNetAtm::connect(star[0].unet, *epA, star.ports[0], star[1].unet,
                     *epB, star.ports[1], star.signalling, chanA, chanB);

    sim::Process intruder(s, "intruder", [&](sim::Process &self) {
        auto data = pattern(8);
        EXPECT_FALSE(star[0].unet.send(self, *epA,
                                       inlineSend(chanA, data)));
    });
    intruder.start();
    s.run();
    EXPECT_EQ(star[0].unet.protectionFaults(), 1u);
}

TEST(UNetAtm, HostSendOverheadIsOnePointFive)
{
    sim::Simulation s;
    AtmStar star(s, 2);

    Endpoint *epA = nullptr;
    ChannelId chanA = invalidChannel, chanB = invalidChannel;
    sim::Tick elapsed = -1;

    sim::Process tx(s, "tx", [&](sim::Process &self) {
        auto data = pattern(40);
        sim::Tick t0 = s.now();
        star[0].unet.send(self, *epA, inlineSend(chanA, data));
        elapsed = s.now() - t0;
    });

    epA = &star[0].unet.createEndpoint(&tx, {});
    Endpoint *epB = &star[1].unet.createEndpoint(&tx, {});
    UNetAtm::connect(star[0].unet, *epA, star.ports[0], star[1].unet,
                     *epB, star.ports[1], star.signalling, chanA, chanB);
    tx.start();
    s.run();

    // "the processor overhead for sending a 40-byte message on
    // U-Net/ATM is about 1.5 usec" — an order less than U-Net/FE.
    EXPECT_NEAR(sim::toMicroseconds(elapsed), 1.5, 0.1);
}

TEST(UNetAtm, I960CarriesTheWork)
{
    sim::Simulation s;
    AtmStar star(s, 2);

    Endpoint *epA = nullptr, *epB = nullptr;
    ChannelId chanA = invalidChannel, chanB = invalidChannel;

    sim::Process rx(s, "rx", [&](sim::Process &self) {
        RecvDescriptor got;
        epB->wait(self, got, 10_ms);
    });
    sim::Process tx(s, "tx", [&](sim::Process &self) {
        auto data = pattern(40);
        star[0].unet.send(self, *epA, inlineSend(chanA, data));
    });

    epA = &star[0].unet.createEndpoint(&tx, {});
    epB = &star[1].unet.createEndpoint(&rx, {});
    UNetAtm::connect(star[0].unet, *epA, star.ports[0], star[1].unet,
                     *epB, star.ports[1], star.signalling, chanA, chanB);
    rx.start();
    tx.start();
    s.run();

    // "the i960 overhead is about 10 usec" on send and ~13 us receive.
    EXPECT_NEAR(sim::toMicroseconds(star[0].nic.i960().busyTime()), 10.0,
                1.0);
    EXPECT_NEAR(sim::toMicroseconds(star[1].nic.i960().busyTime()), 13.0,
                1.0);
}

TEST(UNetAtm, ManyMessagesInterleaveAcrossChannels)
{
    sim::Simulation s;
    AtmStar star(s, 3);

    // Node 0 talks to nodes 1 and 2 from one endpoint via two channels.
    Endpoint *ep0 = nullptr, *ep1 = nullptr, *ep2 = nullptr;
    ChannelId c01 = invalidChannel, c10 = invalidChannel;
    ChannelId c02 = invalidChannel, c20 = invalidChannel;

    int got1 = 0, got2 = 0;
    sim::Process rx1(s, "rx1", [&](sim::Process &self) {
        RecvDescriptor rd;
        while (ep1->wait(self, rd, 2_ms))
            ++got1;
    });
    sim::Process rx2(s, "rx2", [&](sim::Process &self) {
        RecvDescriptor rd;
        while (ep2->wait(self, rd, 2_ms))
            ++got2;
    });
    sim::Process tx(s, "tx", [&](sim::Process &self) {
        auto data = pattern(32);
        for (int i = 0; i < 10; ++i) {
            star[0].unet.send(self, *ep0, inlineSend(c01, data));
            star[0].unet.send(self, *ep0, inlineSend(c02, data));
        }
    });

    ep0 = &star[0].unet.createEndpoint(&tx, {});
    ep1 = &star[1].unet.createEndpoint(&rx1, {});
    ep2 = &star[2].unet.createEndpoint(&rx2, {});
    UNetAtm::connect(star[0].unet, *ep0, star.ports[0], star[1].unet,
                     *ep1, star.ports[1], star.signalling, c01, c10);
    UNetAtm::connect(star[0].unet, *ep0, star.ports[0], star[2].unet,
                     *ep2, star.ports[2], star.signalling, c02, c20);

    rx1.start();
    rx2.start();
    tx.start();
    s.run();
    EXPECT_EQ(got1, 10);
    EXPECT_EQ(got2, 10);
}

TEST(UNetAtm, DirectLinkWithoutSwitch)
{
    // Two adapters sharing one fiber, no switch in between.
    sim::Simulation s;
    host::Host hostA(s, "a", host::CpuSpec::pentium120(),
                     host::BusSpec::pci());
    host::Host hostB(s, "b", host::CpuSpec::pentium120(),
                     host::BusSpec::pci());
    atm::AtmLink link(s, atm::LinkSpec::oc3());
    nic::Pca200 nicA(hostA, link), nicB(hostB, link);
    UNetAtm ua(hostA, nicA), ub(hostB, nicB);

    Endpoint *epA = nullptr, *epB = nullptr;
    ChannelId chanA = invalidChannel, chanB = invalidChannel;
    bool received = false;

    sim::Process rx(s, "rx", [&](sim::Process &self) {
        RecvDescriptor rd;
        received = epB->wait(self, rd, 5_ms);
    });
    sim::Process tx(s, "tx", [&](sim::Process &self) {
        auto data = pattern(20);
        ua.send(self, *epA, inlineSend(chanA, data));
    });

    epA = &ua.createEndpoint(&tx, {});
    epB = &ub.createEndpoint(&rx, {});
    UNetAtm::connectDirect(ua, *epA, ub, *epB, 40, chanA, chanB);

    rx.start();
    tx.start();
    s.run();
    EXPECT_TRUE(received);
}
