#include <gtest/gtest.h>

#include "unet/endpoint.hh"

using namespace unet;
using namespace unet::sim::literals;

namespace {

struct Fixture
{
    Fixture() : memory(1 << 20) {}

    sim::Simulation s;
    host::Memory memory;
};

RecvDescriptor
smallMessage(ChannelId chan, std::uint8_t fill)
{
    RecvDescriptor rd;
    rd.channel = chan;
    rd.length = 8;
    rd.isSmall = true;
    rd.inlineData.fill(fill);
    return rd;
}

} // namespace

TEST(Endpoint, BufferAreaReadWrite)
{
    Fixture f;
    Endpoint ep(f.s, f.memory, {}, nullptr, 0);
    BufferRef ref{128, 16};
    std::vector<std::uint8_t> data(16, 0x3C);
    ep.buffers().write(ref, data);
    auto span = ep.buffers().span(ref);
    EXPECT_TRUE(std::equal(data.begin(), data.end(), span.begin()));
}

TEST(EndpointDeathTest, BufferAreaBoundsChecked)
{
    Fixture f;
    EndpointConfig cfg;
    cfg.bufferAreaBytes = 1024;
    Endpoint ep(f.s, f.memory, cfg, nullptr, 0);
    EXPECT_FALSE(ep.buffers().contains({1000, 100}));
    EXPECT_DEATH(ep.buffers().span(BufferRef{1000, 100}), "outside");
}

TEST(Endpoint, ChannelTable)
{
    Fixture f;
    Endpoint ep(f.s, f.memory, {}, nullptr, 0);
    ChannelInfo info;
    info.vci = 42;
    ChannelId id = ep.addChannel(info);
    EXPECT_TRUE(ep.channelValid(id));
    EXPECT_EQ(ep.channel(id).vci, 42);
    EXPECT_FALSE(ep.channelValid(id + 1));
    EXPECT_FALSE(ep.channelValid(invalidChannel));
}

TEST(Endpoint, ChannelLimitEnforced)
{
    Fixture f;
    EndpointConfig cfg;
    cfg.maxChannels = 2;
    Endpoint ep(f.s, f.memory, cfg, nullptr, 0);
    ep.addChannel({});
    ep.addChannel({});
    EXPECT_EXIT(ep.addChannel({}), ::testing::ExitedWithCode(1),
                "channel limit");
}

TEST(Endpoint, PollReturnsDeliveredMessages)
{
    Fixture f;
    Endpoint ep(f.s, f.memory, {}, nullptr, 0);
    RecvDescriptor out;
    EXPECT_FALSE(ep.poll(out));
    EXPECT_TRUE(ep.deliver(smallMessage(3, 0xAA)));
    ASSERT_TRUE(ep.poll(out));
    EXPECT_EQ(out.channel, 3);
    EXPECT_EQ(out.inlineData[0], 0xAA);
    EXPECT_FALSE(ep.poll(out));
}

TEST(Endpoint, RecvQueueOverflowDropsAndCounts)
{
    Fixture f;
    EndpointConfig cfg;
    cfg.recvQueueDepth = 2;
    Endpoint ep(f.s, f.memory, cfg, nullptr, 0);
    EXPECT_TRUE(ep.deliver(smallMessage(0, 1)));
    EXPECT_TRUE(ep.deliver(smallMessage(0, 2)));
    EXPECT_FALSE(ep.deliver(smallMessage(0, 3)));
    EXPECT_EQ(ep.rxQueueDrops(), 1u);
}

TEST(Endpoint, WaitBlocksUntilDelivery)
{
    Fixture f;
    Endpoint ep(f.s, f.memory, {}, nullptr, 0);
    sim::Tick woke = -1;
    std::uint8_t seen = 0;
    sim::Process app(f.s, "app", [&](sim::Process &self) {
        RecvDescriptor rd;
        EXPECT_TRUE(ep.wait(self, rd));
        woke = f.s.now();
        seen = rd.inlineData[0];
    });
    app.start();
    f.s.schedule(12_us, [&] { ep.deliver(smallMessage(0, 0x7E)); });
    f.s.run();
    EXPECT_EQ(woke, 12_us);
    EXPECT_EQ(seen, 0x7E);
}

TEST(Endpoint, WaitTimesOut)
{
    Fixture f;
    Endpoint ep(f.s, f.memory, {}, nullptr, 0);
    bool got = true;
    sim::Process app(f.s, "app", [&](sim::Process &self) {
        RecvDescriptor rd;
        got = ep.wait(self, rd, 5_us);
    });
    app.start();
    f.s.run();
    EXPECT_FALSE(got);
    EXPECT_EQ(f.s.now(), 5_us);
}

TEST(Endpoint, UpcallConsumesAllPending)
{
    Fixture f;
    Endpoint ep(f.s, f.memory, {}, nullptr, 0);
    std::vector<std::uint8_t> seen;
    ep.setUpcall([&](const RecvDescriptor &rd) {
        seen.push_back(rd.inlineData[0]);
    }, 30_us);

    f.s.schedule(0, [&] {
        // Three deliveries in one tick: one upcall handles all three
        // ("U-Net allows all messages pending in the receive queue to
        // be consumed in a single upcall").
        ep.deliver(smallMessage(0, 1));
        ep.deliver(smallMessage(0, 2));
        ep.deliver(smallMessage(0, 3));
    });
    f.s.run();
    EXPECT_EQ(seen, (std::vector<std::uint8_t>{1, 2, 3}));
    EXPECT_EQ(f.s.now(), 30_us); // one signal latency, not three
}

TEST(Endpoint, UpcallRearmsForLaterMessages)
{
    Fixture f;
    Endpoint ep(f.s, f.memory, {}, nullptr, 0);
    int calls = 0;
    ep.setUpcall([&](const RecvDescriptor &) { ++calls; }, 10_us);
    f.s.schedule(0, [&] { ep.deliver(smallMessage(0, 1)); });
    f.s.schedule(100_us, [&] { ep.deliver(smallMessage(0, 2)); });
    f.s.run();
    EXPECT_EQ(calls, 2);
}
