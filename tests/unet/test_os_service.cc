#include <gtest/gtest.h>

#include "tests/unet/fixtures.hh"
#include "unet/os_service.hh"

using namespace unet;
using namespace unet::test;
using namespace unet::sim::literals;

TEST(OsService, CreateEndpointChargesSyscall)
{
    sim::Simulation s;
    eth::FullDuplexLink link(s);
    FeNode a(s, link, 0), b(s, link, 1);
    OsService os(a.unet);

    sim::Tick elapsed = -1;
    Endpoint *ep = nullptr;
    sim::Process app(s, "app", [&](sim::Process &self) {
        sim::Tick t0 = s.now();
        ep = os.createEndpoint(self);
        elapsed = s.now() - t0;
    });
    app.start();
    s.run();
    ASSERT_NE(ep, nullptr);
    EXPECT_EQ(ep->owner(), &app);
    // A full system call, an order of magnitude above the fast trap.
    EXPECT_GE(elapsed, 10_us);
}

TEST(OsService, EndpointLimitPerProcess)
{
    sim::Simulation s;
    eth::FullDuplexLink link(s);
    FeNode a(s, link, 0), b(s, link, 1);
    OsLimits limits;
    limits.maxEndpointsPerProcess = 2;
    OsService os(a.unet, limits);

    int created = 0;
    sim::Process app(s, "app", [&](sim::Process &self) {
        for (int i = 0; i < 4; ++i)
            if (os.createEndpoint(self))
                ++created;
    });
    app.start();
    s.run();
    EXPECT_EQ(created, 2);
}

TEST(OsService, ChannelLimitClampedByOs)
{
    sim::Simulation s;
    eth::FullDuplexLink link(s);
    FeNode a(s, link, 0), b(s, link, 1);
    OsLimits limits;
    limits.maxChannelsPerEndpoint = 1;
    OsService os(a.unet, limits);

    Endpoint *ep = nullptr;
    sim::Process app(s, "app", [&](sim::Process &self) {
        EndpointConfig cfg;
        cfg.maxChannels = 100; // application asks for more than allowed
        ep = os.createEndpoint(self, cfg);
    });
    app.start();
    s.run();
    ASSERT_NE(ep, nullptr);
    EXPECT_EQ(ep->config().maxChannels, 1u);
}

TEST(OsService, AuthorizerCanDeny)
{
    sim::Simulation s;
    eth::FullDuplexLink link(s);
    FeNode a(s, link, 0), b(s, link, 1);
    OsService os(a.unet);

    sim::Process allowed(s, "allowed", [](sim::Process &) {});
    sim::Process denied(s, "denied", [](sim::Process &) {});
    Endpoint &ep = a.unet.createEndpoint(&allowed, {});

    os.setAuthorizer([&](const sim::Process &proc, const Endpoint &) {
        return &proc != &denied;
    });
    EXPECT_TRUE(os.authorize(allowed, ep));
    EXPECT_FALSE(os.authorize(denied, ep));
}

TEST(OsService, DefaultAuthorizerAllows)
{
    sim::Simulation s;
    eth::FullDuplexLink link(s);
    FeNode a(s, link, 0), b(s, link, 1);
    OsService os(a.unet);
    sim::Process p(s, "p", [](sim::Process &) {});
    Endpoint &ep = a.unet.createEndpoint(&p, {});
    EXPECT_TRUE(os.authorize(p, ep));
}
