#include <gtest/gtest.h>

#include "tests/unet/fixtures.hh"
#include "unet/os_service.hh"

using namespace unet;
using namespace unet::test;
using namespace unet::sim::literals;

TEST(OsService, CreateEndpointChargesSyscall)
{
    sim::Simulation s;
    eth::FullDuplexLink link(s);
    FeNode a(s, link, 0), b(s, link, 1);
    OsService os(a.unet);

    sim::Tick elapsed = -1;
    Endpoint *ep = nullptr;
    sim::Process app(s, "app", [&](sim::Process &self) {
        sim::Tick t0 = s.now();
        ep = os.createEndpoint(self);
        elapsed = s.now() - t0;
    });
    app.start();
    s.run();
    ASSERT_NE(ep, nullptr);
    EXPECT_EQ(ep->owner(), &app);
    // A full system call, an order of magnitude above the fast trap.
    EXPECT_GE(elapsed, 10_us);
}

TEST(OsService, EndpointLimitPerProcess)
{
    sim::Simulation s;
    eth::FullDuplexLink link(s);
    FeNode a(s, link, 0), b(s, link, 1);
    OsLimits limits;
    limits.maxEndpointsPerProcess = 2;
    OsService os(a.unet, limits);

    int created = 0;
    sim::Process app(s, "app", [&](sim::Process &self) {
        for (int i = 0; i < 4; ++i)
            if (os.createEndpoint(self))
                ++created;
    });
    app.start();
    s.run();
    EXPECT_EQ(created, 2);
}

TEST(OsService, ChannelLimitClampedByOs)
{
    sim::Simulation s;
    eth::FullDuplexLink link(s);
    FeNode a(s, link, 0), b(s, link, 1);
    OsLimits limits;
    limits.maxChannelsPerEndpoint = 1;
    OsService os(a.unet, limits);

    Endpoint *ep = nullptr;
    sim::Process app(s, "app", [&](sim::Process &self) {
        EndpointConfig cfg;
        cfg.maxChannels = 100; // application asks for more than allowed
        ep = os.createEndpoint(self, cfg);
    });
    app.start();
    s.run();
    ASSERT_NE(ep, nullptr);
    EXPECT_EQ(ep->config().maxChannels, 1u);
}

TEST(OsService, AuthorizerCanDeny)
{
    sim::Simulation s;
    eth::FullDuplexLink link(s);
    FeNode a(s, link, 0), b(s, link, 1);
    OsService os(a.unet);

    sim::Process allowed(s, "allowed", [](sim::Process &) {});
    sim::Process denied(s, "denied", [](sim::Process &) {});
    Endpoint &ep = a.unet.createEndpoint(&allowed, {});

    os.setAuthorizer([&](const sim::Process &proc, const Endpoint &) {
        return &proc != &denied;
    });
    EXPECT_TRUE(os.authorize(allowed, ep));
    EXPECT_FALSE(os.authorize(denied, ep));
}

TEST(OsService, DefaultAuthorizerAllows)
{
    sim::Simulation s;
    eth::FullDuplexLink link(s);
    FeNode a(s, link, 0), b(s, link, 1);
    OsService os(a.unet);
    sim::Process p(s, "p", [](sim::Process &) {});
    Endpoint &ep = a.unet.createEndpoint(&p, {});
    EXPECT_TRUE(os.authorize(p, ep));
}

TEST(OsService, DestroyReturnsQuota)
{
    sim::Simulation s;
    eth::FullDuplexLink link(s);
    FeNode a(s, link, 0), b(s, link, 1);
    OsLimits limits;
    limits.maxEndpointsPerProcess = 1;
    OsService os(a.unet, limits);

    sim::Process app(s, "app", [&](sim::Process &self) {
        Endpoint *first = os.createEndpoint(self);
        ASSERT_NE(first, nullptr);
        // At the quota ceiling the next create is refused...
        EXPECT_EQ(os.createEndpoint(self), nullptr);
        // ...until the slot is returned, after which the id itself is
        // retired but the quota is free again.
        std::size_t retired = first->id();
        os.destroyEndpoint(self, *first);
        EXPECT_FALSE(a.unet.table().known(retired));
        Endpoint *second = os.createEndpoint(self);
        ASSERT_NE(second, nullptr);
        EXPECT_NE(second->id(), retired);
    });
    app.start();
    s.run();
    ASSERT_TRUE(app.finished());
}

/**
 * The quota table is keyed by process id, not bounded by any dense
 * process registry: a rig with hundreds of processes (the serve rig's
 * wide fan-in) charges and releases quota per process independently.
 */
TEST(OsService, QuotaIsPerProcessAcrossManyProcesses)
{
    sim::Simulation s;
    eth::FullDuplexLink link(s);
    FeNode a(s, link, 0), b(s, link, 1);
    OsLimits limits;
    limits.maxEndpointsPerProcess = 1;
    OsService os(a.unet, limits);

    // Small endpoints: 80 of the default 256KB buffer areas would
    // exhaust the host's 4MB arena.
    EndpointConfig small;
    small.sendQueueDepth = small.recvQueueDepth = 4;
    small.freeQueueDepth = 4;
    small.bufferAreaBytes = 4096;
    small.maxChannels = 2;

    constexpr int n = 80;
    int created = 0;
    std::vector<std::unique_ptr<sim::Process>> procs;
    for (int i = 0; i < n; ++i)
        procs.push_back(std::make_unique<sim::Process>(
            s, "app" + std::to_string(i), [&](sim::Process &self) {
                if (os.createEndpoint(self, small))
                    ++created;
                // The per-process ceiling still binds.
                EXPECT_EQ(os.createEndpoint(self, small), nullptr);
            }));
    // One syscall at a time: single-CPU hosts panic on overlap.
    sim::Tick at = 0;
    for (auto &p : procs) {
        p->start(at);
        at += 100_us;
    }
    s.run();
    EXPECT_EQ(created, n);
}
