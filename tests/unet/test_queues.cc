#include <gtest/gtest.h>

#include "unet/queues.hh"
#include "unet/types.hh"

using namespace unet;

TEST(Ring, FifoOrder)
{
    Ring<int> r(4);
    EXPECT_TRUE(r.empty());
    for (int i = 0; i < 4; ++i)
        EXPECT_TRUE(r.push(i));
    EXPECT_TRUE(r.full());
    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(*r.pop(), i);
    EXPECT_TRUE(r.empty());
    EXPECT_FALSE(r.pop().has_value());
}

TEST(Ring, RejectsWhenFull)
{
    Ring<int> r(2);
    EXPECT_TRUE(r.push(1));
    EXPECT_TRUE(r.push(2));
    EXPECT_FALSE(r.push(3));
    EXPECT_EQ(r.rejected(), 1u);
    EXPECT_EQ(r.pushed(), 2u);
}

TEST(Ring, WrapsAround)
{
    Ring<int> r(3);
    for (int round = 0; round < 10; ++round) {
        EXPECT_TRUE(r.push(round));
        EXPECT_EQ(*r.pop(), round);
    }
    EXPECT_TRUE(r.empty());
}

TEST(Ring, FrontPeeksWithoutPopping)
{
    Ring<int> r(2);
    r.push(7);
    EXPECT_EQ(r.front(), 7);
    EXPECT_EQ(r.size(), 1u);
}

TEST(Ring, InterleavedProducerConsumer)
{
    Ring<int> r(5);
    int produced = 0, consumed = 0;
    for (int step = 0; step < 100; ++step) {
        if (step % 3 != 2) {
            if (r.push(produced))
                ++produced;
        } else {
            if (auto v = r.pop()) {
                EXPECT_EQ(*v, consumed);
                ++consumed;
            }
        }
    }
    while (auto v = r.pop()) {
        EXPECT_EQ(*v, consumed);
        ++consumed;
    }
    EXPECT_EQ(produced, consumed);
}

TEST(SendDescriptor, TotalLength)
{
    SendDescriptor d;
    d.isInline = true;
    d.inlineLength = 40;
    EXPECT_EQ(d.totalLength(), 40u);

    d.isInline = false;
    d.fragmentCount = 2;
    d.fragments[0] = {0, 100};
    d.fragments[1] = {200, 50};
    EXPECT_EQ(d.totalLength(), 150u);
}
