#include <gtest/gtest.h>

#include <memory>

#include "unet/queues.hh"
#include "unet/types.hh"

using namespace unet;

TEST(Ring, FifoOrder)
{
    Ring<int> r(4);
    EXPECT_TRUE(r.empty());
    for (int i = 0; i < 4; ++i)
        EXPECT_TRUE(r.push(i));
    EXPECT_TRUE(r.full());
    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(*r.pop(), i);
    EXPECT_TRUE(r.empty());
    EXPECT_FALSE(r.pop().has_value());
}

TEST(Ring, RejectsWhenFull)
{
    Ring<int> r(2);
    EXPECT_TRUE(r.push(1));
    EXPECT_TRUE(r.push(2));
    EXPECT_FALSE(r.push(3));
    EXPECT_EQ(r.rejected(), 1u);
    EXPECT_EQ(r.pushed(), 2u);
}

TEST(Ring, WrapsAround)
{
    Ring<int> r(3);
    for (int round = 0; round < 10; ++round) {
        EXPECT_TRUE(r.push(round));
        EXPECT_EQ(*r.pop(), round);
    }
    EXPECT_TRUE(r.empty());
}

TEST(Ring, FrontPeeksWithoutPopping)
{
    Ring<int> r(2);
    r.push(7);
    EXPECT_EQ(r.front(), 7);
    EXPECT_EQ(r.size(), 1u);
}

TEST(Ring, InterleavedProducerConsumer)
{
    Ring<int> r(5);
    int produced = 0, consumed = 0;
    for (int step = 0; step < 100; ++step) {
        if (step % 3 != 2) {
            if (r.push(produced))
                ++produced;
        } else {
            if (auto v = r.pop()) {
                EXPECT_EQ(*v, consumed);
                ++consumed;
            }
        }
    }
    while (auto v = r.pop()) {
        EXPECT_EQ(*v, consumed);
        ++consumed;
    }
    EXPECT_EQ(produced, consumed);
}

TEST(Ring, WrapAroundCrossesModuloBoundaryManyTimes)
{
    // Fill ratio 3/4 forces head and tail to cross the modulo
    // boundary at different phases; the invariant audit must hold at
    // every step.
    Ring<int> r(4);
    int produced = 0, consumed = 0;
    for (int round = 0; round < 25; ++round) {
        for (int i = 0; i < 3; ++i)
            ASSERT_TRUE(r.push(produced++));
        r.check();
        for (int i = 0; i < 3; ++i) {
            auto v = r.pop();
            ASSERT_TRUE(v.has_value());
            EXPECT_EQ(*v, consumed++);
        }
        r.check();
    }
    EXPECT_TRUE(r.empty());
    EXPECT_EQ(produced, consumed);
}

TEST(Ring, PoppedCounterMatchesAccounting)
{
    Ring<int> r(4);
    EXPECT_EQ(r.popped(), 0u);
    for (int i = 0; i < 6; ++i)
        r.push(i); // two rejected
    for (int i = 0; i < 3; ++i)
        r.pop();
    EXPECT_EQ(r.pushed(), 4u);
    EXPECT_EQ(r.rejected(), 2u);
    EXPECT_EQ(r.popped(), 3u);
    EXPECT_EQ(r.pushed() - r.popped(), r.size());
    r.check();
}

TEST(Ring, CheckPassesOnFullAndEmptyRings)
{
    Ring<int> r(2);
    r.check();
    r.push(1);
    r.push(2);
    EXPECT_TRUE(r.full());
    r.check();
    r.pop();
    r.pop();
    EXPECT_TRUE(r.empty());
    r.check();
}

TEST(Ring, PopScrubsTheVacatedSlot)
{
    // A popped slot must not keep a stale copy alive: the shared_ptr's
    // use count exposes whether the ring still references it.
    Ring<std::shared_ptr<int>> r(2);
    auto p = std::make_shared<int>(7);
    r.push(p);
    EXPECT_EQ(p.use_count(), 2);
    {
        auto popped = r.pop();
        ASSERT_TRUE(popped.has_value());
        // Only the original and the popped copy remain — the slot
        // was scrubbed, not left holding a third reference.
        EXPECT_EQ(p.use_count(), 2);
    }
    EXPECT_EQ(p.use_count(), 1);
}

TEST(SendDescriptor, TotalLength)
{
    SendDescriptor d;
    d.isInline = true;
    d.inlineLength = 40;
    EXPECT_EQ(d.totalLength(), 40u);

    d.isInline = false;
    d.fragmentCount = 2;
    d.fragments[0] = {0, 100};
    d.fragments[1] = {200, 50};
    EXPECT_EQ(d.totalLength(), 150u);
}
