/**
 * @file
 * Cross-cutting property tests: determinism, conservation laws, and
 * monotonicity invariants the whole stack must satisfy.
 */

#include <gtest/gtest.h>

#include "bench/harness.hh"
#include "cluster/cluster.hh"

using namespace unet;
using namespace unet::bench;

TEST(Properties, RoundTripIsDeterministic)
{
    // Identical seeds and configuration must reproduce bit-identical
    // timing — the foundation for every number this repo reports.
    for (Fabric f : {Fabric::FeBay, Fabric::AtmOc3}) {
        double a = roundTripUs(f, 200);
        double b = roundTripUs(f, 200);
        EXPECT_DOUBLE_EQ(a, b) << fabricName(f);
    }
}

TEST(Properties, SplitCRunIsDeterministic)
{
    auto run = [] {
        sim::Simulation s(99);
        cluster::Cluster c(
            s, cluster::Config::feCluster(
                   3, cluster::NetKind::FeBay28115, false));
        return c.run([](splitc::Runtime &rt, sim::Process &proc) {
            auto v = rt.allReduceSum(
                proc, static_cast<std::uint64_t>(rt.self() + 1));
            rt.barrier(proc);
            (void)v;
        });
    };
    EXPECT_EQ(run(), run());
}

class RttMonotonicity
    : public ::testing::TestWithParam<Fabric>
{
};

TEST_P(RttMonotonicity, LatencyGrowsWithSize)
{
    // Past the small-message knee, latency must grow monotonically
    // with message size on every fabric.
    Fabric f = GetParam();
    double prev = roundTripUs(f, 128);
    for (std::size_t size : {256, 512, 1024, 1400}) {
        double cur = roundTripUs(f, size);
        EXPECT_GT(cur, prev) << fabricName(f) << " @" << size;
        prev = cur;
    }
}

INSTANTIATE_TEST_SUITE_P(Fabrics, RttMonotonicity,
                         ::testing::Values(Fabric::FeHub, Fabric::FeBay,
                                           Fabric::FeFn100,
                                           Fabric::AtmOc3));

class BandwidthCeiling
    : public ::testing::TestWithParam<Fabric>
{
};

TEST_P(BandwidthCeiling, NeverExceedsTheWire)
{
    // Conservation: goodput can never exceed the medium's payload
    // capacity, at any message size.
    Fabric f = GetParam();
    double wire = f == Fabric::AtmOc3 ? 138.0
        : f == Fabric::AtmTaxi       ? 120.0
                                     : 100.0;
    for (std::size_t size : {40, 256, 1024, 1494}) {
        double bw = bandwidthMbps(f, size, 150);
        EXPECT_LE(bw, wire + 0.5) << fabricName(f) << " @" << size;
        EXPECT_GT(bw, 0.0) << fabricName(f) << " @" << size;
    }
}

INSTANTIATE_TEST_SUITE_P(Fabrics, BandwidthCeiling,
                         ::testing::Values(Fabric::FeBay,
                                           Fabric::AtmTaxi));

TEST(Properties, SplitCKeysConservedAcrossClusterSizes)
{
    // Total keys and their checksum survive redistribution for every
    // cluster size and platform — already asserted inside the apps;
    // here we check the cluster-level plumbing hands back verified
    // results for a mixed workload.
    for (int nodes : {2, 3, 5}) {
        sim::Simulation s;
        cluster::Cluster c(
            s, cluster::Config::feCluster(
                   nodes, cluster::NetKind::FeBay28115, false));
        std::vector<std::uint64_t> held(
            static_cast<std::size_t>(nodes), 0);
        c.run([&](splitc::Runtime &rt, sim::Process &proc) {
            // Everyone contributes its rank; the sum must match the
            // closed form on every node.
            auto sum = rt.allReduceSum(
                proc, static_cast<std::uint64_t>(rt.self()));
            EXPECT_EQ(sum, static_cast<std::uint64_t>(
                               nodes * (nodes - 1) / 2));
            held[static_cast<std::size_t>(rt.self())] = sum;
        });
        for (auto v : held)
            EXPECT_EQ(v, static_cast<std::uint64_t>(
                             nodes * (nodes - 1) / 2));
    }
}

TEST(Properties, HostCpuTimeAccountsForWork)
{
    // The CPU occupancy model conserves time: completion of a busy()
    // equals work plus exactly the kernel time injected during it.
    sim::Simulation s;
    host::Cpu cpu(s, host::CpuSpec::pentium120(), "cpu");
    sim::Random rng(3);
    sim::Tick total_kernel = 0;
    sim::Tick end = -1;
    const sim::Tick work = sim::milliseconds(2);

    sim::Process p(s, "p", [&](sim::Process &self) {
        cpu.busy(self, work);
        end = s.now();
    });
    p.start();
    // Sprinkle interrupts inside the busy window only.
    for (int i = 0; i < 10; ++i) {
        sim::Tick at = rng.uniform(1, sim::milliseconds(1));
        sim::Tick cost = rng.uniform(1000, 50000); // 1-50 ns... ticks
        total_kernel += cost;
        s.schedule(at, [&cpu, cost] { cpu.runKernel(cost, nullptr); });
    }
    s.run();
    EXPECT_EQ(end, work + total_kernel);
}
