/**
 * @file
 * The batched submission/completion fast path: sendv/pollv semantics,
 * batch=1 equivalence with the scalar path, and reliability of
 * batched sends under burst loss.
 *
 * The equivalence suite is the contract that lets sendv exist at all:
 * a batch of one must be indistinguishable — every reply-arrival
 * tick, every metric — from the scalar send it replaces, under every
 * perturbation salt. The reliability suite drives batched sends
 * through a go-back-N-lite window over a bursty-lossy forward link
 * and asserts exactly-once in-order delivery with a conserved credit
 * window.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <vector>

#include "bench/harness.hh"
#include "check/credits.hh"
#include "obs/digest.hh"
#include "sim/perturb.hh"
#include "tests/unet/fixtures.hh"

using namespace unet;
using namespace unet::bench;
using namespace unet::test;
using namespace unet::sim::literals;

namespace {

constexpr std::uint64_t kSalts[] = {1, 2, 3, 4, 5};

// --- batch=1 equivalence with the scalar path ------------------------

/**
 * The fig5 golden workload with sends posted either through the
 * scalar send() or through sendv() with n == 1. Returns the
 * reply-arrival tick trace and folds trace + final time + fired-event
 * count + full metrics registry into @p digest.
 */
std::vector<sim::Tick>
runFig5(std::uint64_t salt, Fabric fabric, std::size_t size,
        bool use_sendv, std::uint64_t &digest)
{
    sim::perturb::ScopedSalt scoped(salt);
    sim::Simulation s;
    RawPair rig(s, fabric);
    std::vector<sim::Tick> trace;
    const int rounds = 4;

    auto post = [&](UNet &un, sim::Process &self, Endpoint &ep,
                    ChannelId chan) {
        SendDescriptor sd;
        sd.channel = chan;
        if (size <= un.inlineMax() && rig.isAtm()) {
            sd.isInline = true;
            sd.inlineLength = static_cast<std::uint32_t>(size);
        } else {
            sd.isInline = false;
            sd.fragmentCount = 1;
            sd.fragments[0] = {16384,
                               static_cast<std::uint32_t>(size)};
        }
        if (use_sendv)
            EXPECT_EQ(un.sendv(self, ep, &sd, 1), 1u);
        else
            EXPECT_TRUE(un.send(self, ep, sd));
    };

    sim::Process echo(s, "echo", [&](sim::Process &self) {
        auto &un = rig.unetOf(1);
        auto &ep = rig.ep(1);
        for (int i = 0; i < 8; ++i)
            un.postFree(self, ep,
                        {static_cast<std::uint32_t>(i * 2048), 2048});
        RecvDescriptor rd;
        for (int r = 0; r < rounds; ++r) {
            if (!ep.wait(self, rd, sim::seconds(1)))
                return;
            if (!rd.isSmall)
                for (std::uint8_t i = 0; i < rd.bufferCount; ++i)
                    un.postFree(self, ep,
                                {rd.buffers[i].offset, 2048});
            post(un, self, ep, rig.chan(1));
            un.flush(self, ep);
        }
    });

    sim::Process ping(s, "ping", [&](sim::Process &self) {
        auto &un = rig.unetOf(0);
        auto &ep = rig.ep(0);
        for (int i = 0; i < 8; ++i)
            un.postFree(self, ep,
                        {static_cast<std::uint32_t>(i * 2048), 2048});
        RecvDescriptor rd;
        for (int r = 0; r < rounds; ++r) {
            post(un, self, ep, rig.chan(0));
            un.flush(self, ep);
            if (!ep.wait(self, rd, sim::seconds(1)))
                return;
            trace.push_back(s.now());
            if (!rd.isSmall)
                for (std::uint8_t i = 0; i < rd.bufferCount; ++i)
                    un.postFree(self, ep,
                                {rd.buffers[i].offset, 2048});
        }
    });

    rig.wire(ping, echo);
    echo.start();
    ping.start(sim::microseconds(5));
    s.run();

    obs::Digest d;
    d.mixRange(trace);
    d.mix(static_cast<std::uint64_t>(s.now()));
    d.mix(s.events().firedCount());
    d.mix(obs::digestOf(s.metrics()));
    digest = d.value();
    return trace;
}

} // namespace

TEST(BatchedEquivalence, SendvBatch1MatchesScalarAcrossSalts)
{
    for (Fabric f : {Fabric::FeBay, Fabric::AtmOc3}) {
        for (std::size_t size : {std::size_t{40}, std::size_t{1024}}) {
            std::uint64_t scalar_digest = 0;
            auto scalar_trace =
                runFig5(0, f, size, /*use_sendv=*/false,
                        scalar_digest);
            ASSERT_EQ(scalar_trace.size(), 4u)
                << fabricName(f) << " scalar run stalled";
            for (std::uint64_t salt : kSalts) {
                std::uint64_t sendv_digest = 0;
                auto sendv_trace = runFig5(salt, f, size,
                                           /*use_sendv=*/true,
                                           sendv_digest);
                EXPECT_EQ(sendv_trace, scalar_trace)
                    << fabricName(f) << " size " << size << " salt "
                    << salt
                    << ": sendv batch=1 moved a reply-arrival tick";
                EXPECT_EQ(sendv_digest, scalar_digest)
                    << fabricName(f) << " size " << size << " salt "
                    << salt
                    << ": sendv batch=1 perturbed the metrics digest";
            }
        }
    }
}

// --- sendv/pollv unit semantics --------------------------------------

namespace {

/** Descriptors for @p n seq-stamped inline messages on @p chan. */
std::vector<SendDescriptor>
seqBatch(ChannelId chan, std::size_t n, std::uint32_t length = 40)
{
    std::vector<SendDescriptor> descs(n);
    for (std::size_t k = 0; k < n; ++k) {
        descs[k].channel = chan;
        descs[k].isInline = true;
        descs[k].inlineLength = length;
        descs[k].inlineData[0] = static_cast<std::uint8_t>(k);
    }
    return descs;
}

} // namespace

TEST(UNetSendv, FeBatchDeliversInOrderAndPollvDrains)
{
    sim::Simulation s;
    eth::FullDuplexLink link(s);
    FeNode a(s, link, 0), b(s, link, 1);

    Endpoint *epA = nullptr, *epB = nullptr;
    ChannelId chanA = invalidChannel, chanB = invalidChannel;
    std::size_t accepted = 0;

    sim::Process rx(s, "rx", [](sim::Process &) {});
    sim::Process tx(s, "tx", [&](sim::Process &self) {
        auto descs = seqBatch(chanA, 4);
        accepted = a.unet.sendv(self, *epA, descs.data(), 4);
    });

    epA = &a.unet.createEndpoint(&tx, {});
    epB = &b.unet.createEndpoint(&rx, {});
    UNetFe::connect(a.unet, *epA, b.unet, *epB, chanA, chanB);

    rx.start();
    tx.start(1_us);
    s.run();

    EXPECT_EQ(accepted, 4u);
    EXPECT_EQ(a.unet.messagesSent(), 4u);
    EXPECT_EQ(b.unet.messagesDelivered(), 4u);

    // One pollv drains the whole batch, in posting order.
    RecvDescriptor out[8];
    EXPECT_EQ(b.unet.pollv(*epB, out, 8), 4u);
    for (std::uint32_t k = 0; k < 4; ++k) {
        EXPECT_TRUE(out[k].isSmall);
        EXPECT_EQ(out[k].length, 40u);
        EXPECT_EQ(out[k].inlineData[0], k) << "reordered at " << k;
    }
    EXPECT_EQ(b.unet.pollv(*epB, out, 8), 0u) << "queue not drained";
}

TEST(UNetSendv, AtmBatchDeliversInOrderAndPollvDrains)
{
    // Two adapters on one shared fiber, no switch in between.
    sim::Simulation s;
    host::Host hostA(s, "a", host::CpuSpec::pentium120(),
                     host::BusSpec::pci());
    host::Host hostB(s, "b", host::CpuSpec::pentium120(),
                     host::BusSpec::pci());
    atm::AtmLink link(s, atm::LinkSpec::oc3());
    nic::Pca200 nicA(hostA, link), nicB(hostB, link);
    UNetAtm ua(hostA, nicA), ub(hostB, nicB);

    sim::Process rx(s, "rx", [](sim::Process &) {});
    std::size_t accepted = 0;
    ChannelId chanA = invalidChannel, chanB = invalidChannel;
    Endpoint *epA = nullptr, *epB = nullptr;

    sim::Process tx(s, "tx", [&](sim::Process &self) {
        auto descs = seqBatch(chanA, 4);
        accepted = ua.sendv(self, *epA, descs.data(), 4);
    });

    epA = &ua.createEndpoint(&tx, {});
    epB = &ub.createEndpoint(&rx, {});
    UNetAtm::connectDirect(ua, *epA, ub, *epB, 40, chanA, chanB);

    rx.start(1_us);
    tx.start(1_us);
    s.run();

    EXPECT_EQ(accepted, 4u);
    EXPECT_EQ(nicA.messagesSent(), 4u);
    EXPECT_EQ(nicB.messagesDelivered(), 4u);

    RecvDescriptor out[8];
    EXPECT_EQ(ub.pollv(*epB, out, 8), 4u);
    for (std::uint32_t k = 0; k < 4; ++k) {
        EXPECT_TRUE(out[k].isSmall);
        EXPECT_EQ(out[k].inlineData[0], k) << "reordered at " << k;
    }
    EXPECT_EQ(ub.pollv(*epB, out, 8), 0u);
}

TEST(UNetSendv, PartialAcceptStopsAtFullWindow)
{
    // A half-full 4-deep send queue rejects the tail of a 4-message
    // batch: the accept-in-order / stop-at-first-rejection contract.
    // The firmware's tx poll is slowed to a crawl so the first batch
    // is still queued when the second posts.
    sim::Simulation s;
    host::Host hostA(s, "a", host::CpuSpec::pentium120(),
                     host::BusSpec::pci());
    host::Host hostB(s, "b", host::CpuSpec::pentium120(),
                     host::BusSpec::pci());
    atm::AtmLink link(s, atm::LinkSpec::oc3());
    nic::Pca200Spec slow;
    slow.txPollActive = sim::milliseconds(1);
    slow.txPollIdle = sim::milliseconds(1);
    nic::Pca200 nicA(hostA, link, slow), nicB(hostB, link);
    UNetAtm ua(hostA, nicA), ub(hostB, nicB);

    EndpointConfig cfg;
    cfg.sendQueueDepth = 4;
    std::size_t accepted = 99;
    ChannelId chanA = invalidChannel, chanB = invalidChannel;
    Endpoint *epA = nullptr, *epB = nullptr;

    sim::Process rx(s, "rx", [](sim::Process &) {});
    sim::Process tx(s, "tx", [&](sim::Process &self) {
        auto first = seqBatch(chanA, 2);
        ASSERT_EQ(ua.sendv(self, *epA, first.data(), 2), 2u);
        auto second = seqBatch(chanA, 4);
        for (std::uint8_t k = 0; k < 4; ++k)
            second[k].inlineData[0] = static_cast<std::uint8_t>(2 + k);
        accepted = ua.sendv(self, *epA, second.data(), 4);
    });

    epA = &ua.createEndpoint(&tx, cfg);
    epB = &ub.createEndpoint(&rx, {});
    UNetAtm::connectDirect(ua, *epA, ub, *epB, 40, chanA, chanB);

    rx.start(1_us);
    tx.start(1_us);
    s.run();

    EXPECT_EQ(accepted, 2u);
    // The accepted prefixes still arrive, in posting order: 0,1 from
    // the first batch, 2,3 from the second.
    RecvDescriptor out[8];
    ASSERT_EQ(ub.pollv(*epB, out, 8), 4u);
    for (std::uint32_t k = 0; k < 4; ++k)
        EXPECT_EQ(out[k].inlineData[0], k);
}

namespace {

void
postOversizedBatch()
{
    sim::Simulation s;
    eth::FullDuplexLink link(s);
    FeNode a(s, link, 0), b(s, link, 1);
    ChannelId chanA = invalidChannel, chanB = invalidChannel;
    Endpoint *epA = nullptr, *epB = nullptr;
    sim::Process rx(s, "rx", [](sim::Process &) {});
    sim::Process tx(s, "tx", [&](sim::Process &self) {
        // 65 descriptors against the default 64-entry queue.
        auto descs = seqBatch(chanA, 65);
        a.unet.sendv(self, *epA, descs.data(), descs.size());
    });
    epA = &a.unet.createEndpoint(&tx, {});
    epB = &b.unet.createEndpoint(&rx, {});
    UNetFe::connect(a.unet, *epA, b.unet, *epB, chanA, chanB);
    rx.start();
    tx.start(1_us);
    s.run();
}

} // namespace

TEST(UNetSendvDeathTest, OversizedBatchPanics)
{
    EXPECT_DEATH(postOversizedBatch(), "exceeds the");
}

// --- batched sends under burst loss ----------------------------------

/**
 * Go-back-N-lite over a bursty forward link: the sender window is a
 * test-owned 8-credit CreditWindow, data flows in sendv batches of 4
 * over eth.link direction 0 armed with a Gilbert-Elliott burst
 * dropper, and cumulative acks return on the clean reverse direction
 * via scalar sends. Every sequence number must be delivered to the
 * application exactly once, in order, and every credit must come back.
 */
TEST(BatchedReliability, ExactlyOnceUnderBurstDrop)
{
    sim::Simulation s;
    eth::FullDuplexLink link(s);
    FeNode a(s, link, 0), b(s, link, 1);
    fault::Plan plan =
        fault::Plan::parse("seed=11 eth.link.0.ge=0.3/0.4/1.0");
    // Armed by hand (not fault::attach) to keep the injector handle:
    // the test must prove the run actually lost frames.
    fault::Injector *dropper = plan.arm(s, "eth.link.0");
    link.setFaultInjector(dropper, 0);

    constexpr std::uint8_t kTotal = 24;
    constexpr std::size_t kWindow = 8;
    constexpr std::size_t kBatch = 4;

    check::CreditWindow credits;
    credits.setLimit(kWindow);

    ChannelId chanA = invalidChannel, chanB = invalidChannel;
    Endpoint *epA = nullptr, *epB = nullptr;
    std::vector<std::uint8_t> delivered;
    bool sender_done = false;

    sim::Process rx(s, "rx", [&](sim::Process &self) {
        std::uint8_t expected = 0;
        RecvDescriptor rd[8];
        while (expected < kTotal) {
            RecvDescriptor first;
            if (!epB->wait(self, first, 2_ms))
                return; // stall: the final asserts will report it
            rd[0] = first;
            std::size_t got = 1 + b.unet.pollv(*epB, rd + 1, 7);
            for (std::size_t i = 0; i < got; ++i) {
                // In-order filter: duplicates and go-back-N replays
                // of later sequences are dropped on the floor.
                if (rd[i].inlineData[0] == expected) {
                    delivered.push_back(expected);
                    ++expected;
                }
            }
            // Cumulative ack on the clean reverse path.
            SendDescriptor ack;
            ack.channel = chanB;
            ack.isInline = true;
            ack.inlineLength = 8;
            ack.inlineData[0] = expected;
            b.unet.send(self, *epB, ack);
        }
    });

    sim::Process tx(s, "tx", [&](sim::Process &self) {
        std::uint8_t base = 0;       // first unacked
        std::uint8_t next = 0;       // next to (re)transmit
        std::uint8_t high_water = 0; // credits acquired below this
        int stalls = 0;
        while (base < kTotal && stalls < 400) {
            // Fill the window in batches.
            while (next < kTotal &&
                   static_cast<std::size_t>(next - base) < kWindow) {
                std::size_t room =
                    std::min({kBatch,
                              static_cast<std::size_t>(kTotal - next),
                              kWindow -
                                  static_cast<std::size_t>(next -
                                                           base)});
                auto descs = seqBatch(chanA, room);
                for (std::size_t k = 0; k < room; ++k)
                    descs[k].inlineData[0] =
                        static_cast<std::uint8_t>(next + k);
                for (std::size_t k = 0; k < room; ++k)
                    if (static_cast<std::uint8_t>(next + k) >=
                        high_water)
                        credits.acquire();
                ASSERT_EQ(a.unet.sendv(self, *epA, descs.data(), room),
                          room);
                next = static_cast<std::uint8_t>(next + room);
                if (next > high_water)
                    high_water = next;
            }
            // Wait for a cumulative ack; on timeout, go back to base.
            RecvDescriptor rd;
            if (epA->wait(self, rd, 400_us)) {
                std::uint8_t ack = rd.inlineData[0];
                RecvDescriptor more[8];
                std::size_t extra = a.unet.pollv(*epA, more, 8);
                for (std::size_t i = 0; i < extra; ++i)
                    ack = std::max(ack, more[i].inlineData[0]);
                while (base < ack) {
                    credits.release();
                    ++base;
                }
            } else {
                ++stalls;
                next = base; // go-back-N retransmit
            }
        }
        sender_done = base == kTotal;
    });

    epA = &a.unet.createEndpoint(&tx, {});
    epB = &b.unet.createEndpoint(&rx, {});
    UNetFe::connect(a.unet, *epA, b.unet, *epB, chanA, chanB);

    rx.start();
    tx.start(5_us);
    s.run();

    ASSERT_TRUE(sender_done) << "window never fully acknowledged";
    ASSERT_NE(dropper, nullptr);
    EXPECT_GT(dropper->dropped(), 0u)
        << "burst model never fired; the scenario is vacuous";
    ASSERT_EQ(delivered.size(), static_cast<std::size_t>(kTotal));
    for (std::uint8_t i = 0; i < kTotal; ++i)
        EXPECT_EQ(delivered[i], i) << "out of order at " << unsigned(i);
    // Exactly-once: the in-order filter plus a full count implies no
    // duplicate reached the application; no sequence was lost.
    std::set<std::uint8_t> unique(delivered.begin(), delivered.end());
    EXPECT_EQ(unique.size(), delivered.size());
    // Conservation: every credit returned, every ring clean.
    EXPECT_EQ(credits.held(), 0u);
    EXPECT_EQ(a.unet.txBacklog(*epA), 0u);
    epA->auditRings();
    epB->auditRings();
}
