/**
 * @file
 * The endpoint-virtualization scaling experiment is a determinism
 * surface: its digest folds every round-trip tick and the final
 * residency counters, so any salt-dependent victim choice, fault
 * charge, or schedule drift in the paging machinery shows up as a
 * digest mismatch. One thrashing cell (working set 64 over a 16-slot
 * hot set) and one resident cell run under salts 0..5.
 */

#include <gtest/gtest.h>

#include "bench/ep_scale.hh"
#include "sim/perturb.hh"

using namespace unet;
using namespace unet::bench;

namespace {

EpScaleResult
runUnderSalt(std::uint64_t salt, Fabric fabric, std::size_t total,
             std::size_t hot)
{
    sim::perturb::ScopedSalt scoped(salt);
    return runEpScale(fabric, total, hot, 2);
}

void
expectDigestStable(Fabric fabric, std::size_t total, std::size_t hot)
{
    EpScaleResult base = runUnderSalt(0, fabric, total, hot);
    ASSERT_TRUE(base.ok);
    for (std::uint64_t salt = 1; salt <= 5; ++salt) {
        EpScaleResult got = runUnderSalt(salt, fabric, total, hot);
        ASSERT_TRUE(got.ok) << "salt " << salt;
        EXPECT_EQ(got.digest, base.digest) << "salt " << salt;
        EXPECT_EQ(got.faults, base.faults) << "salt " << salt;
        EXPECT_EQ(got.evictions, base.evictions) << "salt " << salt;
    }
}

} // namespace

TEST(EpScaleDeterminism, FeThrashingCellStableAcrossSalts)
{
    expectDigestStable(Fabric::FeBay, 100, 16);
}

TEST(EpScaleDeterminism, FeResidentCellStableAcrossSalts)
{
    expectDigestStable(Fabric::FeBay, 100, 256);
}

TEST(EpScaleDeterminism, AtmThrashingCellStableAcrossSalts)
{
    expectDigestStable(Fabric::AtmOc3, 100, 16);
}

/** The regimes the curve rests on really are distinct: the thrashing
 *  cell faults on the sender NIC, the resident cell never does and
 *  matches the fixed-endpoint round-trip budget. */
TEST(EpScaleDeterminism, RegimesAreDistinct)
{
    EpScaleResult thrash = runEpScale(Fabric::FeBay, 100, 16, 2);
    EpScaleResult resident = runEpScale(Fabric::FeBay, 100, 256, 2);
    ASSERT_TRUE(thrash.ok);
    ASSERT_TRUE(resident.ok);
    EXPECT_GT(thrash.faults, 0u);
    EXPECT_EQ(resident.faults, 0u);
    EXPECT_GT(thrash.rttUs, resident.rttUs);
    // The cold tail is bookkeeping, not state: both tables carry all
    // 100 ids.
    EXPECT_EQ(thrash.tableSize, 100u);
    EXPECT_EQ(resident.tableSize, 100u);
}
