/**
 * @file
 * Digest-stability under schedule perturbation (determinism audit).
 *
 * The determinism claim these tests enforce: a run is a pure function
 * of its seed. UNET_PERTURB salts (sim/perturb.hh) permute same-tick
 * scheduling of permutable events and salt pool/fiber/arena addresses;
 * if the full U-Net stack — NIC service loops, DMA, links, switches,
 * endpoint queues, fault injectors — is free of hidden order and
 * address dependencies, the *simulated* results (every reply-arrival
 * tick, every metric) are bit-identical under every salt. The digest
 * folds all of that into one word and the suites assert equality
 * across >= 5 salts, for the fig5 golden workload and for an armed
 * fault scenario.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "bench/harness.hh"
#include "obs/digest.hh"
#include "sim/perturb.hh"

using namespace unet;
using namespace unet::bench;

namespace {

constexpr std::uint64_t kSalts[] = {1, 2, 3, 4, 5};

/**
 * A fig5-style seeded ping/echo run (the golden-trace workload),
 * executed under perturbation salt @p salt, folded into a digest of
 * every reply-arrival tick, the final simulated time, the fired-event
 * count, and the full metrics registry.
 */
std::uint64_t
runDigest(std::uint64_t salt, Fabric fabric, std::size_t size,
          int rounds = 4, const char *fault_scenario = nullptr)
{
    sim::perturb::ScopedSalt scoped(salt);
    sim::Simulation s;
    RawPair rig(s, fabric);
    fault::Plan plan; // after the sim: armed metrics must die first
    if (fault_scenario) {
        plan = fault::Plan::parse(fault_scenario);
        rig.attachFaults(plan);
    }
    std::vector<sim::Tick> trace;

    sim::Process echo(s, "echo", [&](sim::Process &self) {
        auto &un = rig.unetOf(1);
        auto &ep = rig.ep(1);
        for (int i = 0; i < 8; ++i)
            un.postFree(self, ep,
                        {static_cast<std::uint32_t>(i * 2048), 2048});
        RecvDescriptor rd;
        for (int r = 0; r < rounds; ++r) {
            if (!ep.wait(self, rd, sim::seconds(1)))
                return;
            if (!rd.isSmall)
                for (std::uint8_t i = 0; i < rd.bufferCount; ++i)
                    un.postFree(self, ep, {rd.buffers[i].offset, 2048});
            rawSend(un, self, ep, rig.chan(1), size, 16384,
                    !rig.isAtm());
            un.flush(self, ep);
        }
    });

    sim::Process ping(s, "ping", [&](sim::Process &self) {
        auto &un = rig.unetOf(0);
        auto &ep = rig.ep(0);
        for (int i = 0; i < 8; ++i)
            un.postFree(self, ep,
                        {static_cast<std::uint32_t>(i * 2048), 2048});
        RecvDescriptor rd;
        for (int r = 0; r < rounds; ++r) {
            rawSend(un, self, ep, rig.chan(0), size, 16384,
                    !rig.isAtm());
            un.flush(self, ep);
            if (!ep.wait(self, rd, sim::seconds(1)))
                return;
            trace.push_back(s.now());
            if (!rd.isSmall)
                for (std::uint8_t i = 0; i < rd.bufferCount; ++i)
                    un.postFree(self, ep, {rd.buffers[i].offset, 2048});
        }
    });

    rig.wire(ping, echo);
    echo.start();
    ping.start(sim::microseconds(5));
    s.run();

    obs::Digest d;
    d.mixRange(trace);
    d.mix(static_cast<std::uint64_t>(s.now()));
    d.mix(s.events().firedCount());
    d.mix(obs::digestOf(s.metrics()));
    return d.value();
}

} // namespace

TEST(DeterminismAudit, Fig5GoldenDigestStableAcrossSalts)
{
    for (Fabric f : {Fabric::FeHub, Fabric::FeBay, Fabric::AtmOc3}) {
        const std::uint64_t baseline = runDigest(0, f, 256);
        for (std::uint64_t salt : kSalts)
            EXPECT_EQ(runDigest(salt, f, 256), baseline)
                << fabricName(f) << " diverges under perturbation salt "
                << salt << ": a same-tick order or address dependence "
                << "leaked into simulated results";
    }
}

TEST(DeterminismAudit, Fig5LargeMessageDigestStableAcrossSalts)
{
    for (Fabric f : {Fabric::FeBay, Fabric::AtmOc3}) {
        const std::uint64_t baseline = runDigest(0, f, 1024);
        for (std::uint64_t salt : kSalts)
            EXPECT_EQ(runDigest(salt, f, 1024), baseline)
                << fabricName(f) << " salt " << salt;
    }
}

TEST(DeterminismAudit, FaultScenarioDigestStableAcrossSalts)
{
    // An armed, actively-firing fault plan: drops force the timeout
    // path and the injectors consume their own seeded streams. All of
    // it must still be a pure function of the seed, salt-invariant.
    const char *scenario = "eth.switch.drop=0.2";
    const std::uint64_t baseline =
        runDigest(0, Fabric::FeBay, 256, 6, scenario);
    for (std::uint64_t salt : kSalts)
        EXPECT_EQ(runDigest(salt, Fabric::FeBay, 256, 6, scenario),
                  baseline)
            << "fault-soak scenario diverges under salt " << salt;
}

TEST(DeterminismAudit, BurstLossScenarioDigestStableAcrossSalts)
{
    const char *scenario = "eth.link.*.ge=0.03/0.3/1.0";
    const std::uint64_t baseline =
        runDigest(0, Fabric::FeBay, 128, 6, scenario);
    for (std::uint64_t salt : kSalts)
        EXPECT_EQ(runDigest(salt, Fabric::FeBay, 128, 6, scenario),
                  baseline)
            << "burst-loss scenario diverges under salt " << salt;
}

TEST(DeterminismAudit, DigestDiscriminatesDifferentRuns)
{
    // Sanity on the instrument itself: the digest must actually see
    // the run — different workloads, different digests.
    EXPECT_NE(runDigest(0, Fabric::FeBay, 40),
              runDigest(0, Fabric::FeBay, 1024));
    EXPECT_NE(runDigest(0, Fabric::FeBay, 256),
              runDigest(0, Fabric::AtmOc3, 256));
}
