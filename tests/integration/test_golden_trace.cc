/**
 * @file
 * Event-trace determinism and golden-timing tests.
 *
 * The event core was rewritten from per-event heap allocations to a
 * pooled slab with batched deliveries; the refactor's contract is that
 * *simulated* results are bit-identical (same-tick FIFO order
 * preserved). These tests pin that contract: a seeded fig5-style run
 * must reproduce the exact same per-round arrival ticks run-over-run,
 * and against the golden trace recorded from the pre-pooling
 * implementation.
 */

#include <gtest/gtest.h>

#include <vector>

#include "bench/harness.hh"

using namespace unet;
using namespace unet::bench;

namespace {

/**
 * A fig5-style seeded ping/echo run of @p rounds round trips,
 * returning the tick of every reply arrival at the ping side — an
 * event trace of the full stack (NIC service loops, DMA, links).
 *
 * When @p fault_scenario is non-null, the parsed fault::Plan is armed
 * on every rig component (an empty scenario exercises the plane's
 * zero-cost idle path).
 */
std::vector<sim::Tick>
replyArrivalTrace(Fabric fabric, std::size_t size, int rounds = 4,
                  const char *fault_scenario = nullptr)
{
    sim::Simulation s;
    RawPair rig(s, fabric);
    fault::Plan plan; // after the sim: armed metrics must die first
    if (fault_scenario) {
        plan = fault::Plan::parse(fault_scenario);
        rig.attachFaults(plan);
    }
    std::vector<sim::Tick> trace;

    sim::Process echo(s, "echo", [&](sim::Process &self) {
        auto &un = rig.unetOf(1);
        auto &ep = rig.ep(1);
        for (int i = 0; i < 8; ++i)
            un.postFree(self, ep,
                        {static_cast<std::uint32_t>(i * 2048), 2048});
        RecvDescriptor rd;
        for (int r = 0; r < rounds; ++r) {
            if (!ep.wait(self, rd, sim::seconds(1)))
                return;
            if (!rd.isSmall)
                for (std::uint8_t i = 0; i < rd.bufferCount; ++i)
                    un.postFree(self, ep, {rd.buffers[i].offset, 2048});
            rawSend(un, self, ep, rig.chan(1), size, 16384,
                    !rig.isAtm());
            un.flush(self, ep);
        }
    });

    sim::Process ping(s, "ping", [&](sim::Process &self) {
        auto &un = rig.unetOf(0);
        auto &ep = rig.ep(0);
        for (int i = 0; i < 8; ++i)
            un.postFree(self, ep,
                        {static_cast<std::uint32_t>(i * 2048), 2048});
        RecvDescriptor rd;
        for (int r = 0; r < rounds; ++r) {
            rawSend(un, self, ep, rig.chan(0), size, 16384,
                    !rig.isAtm());
            un.flush(self, ep);
            if (!ep.wait(self, rd, sim::seconds(1)))
                return;
            trace.push_back(s.now());
            if (!rd.isSmall)
                for (std::uint8_t i = 0; i < rd.bufferCount; ++i)
                    un.postFree(self, ep, {rd.buffers[i].offset, 2048});
        }
    });

    rig.wire(ping, echo);
    echo.start();
    ping.start(sim::microseconds(5));
    s.run();
    return trace;
}

} // namespace

TEST(GoldenTrace, SeededRunIsReproducible)
{
    for (Fabric f : {Fabric::FeHub, Fabric::FeBay, Fabric::AtmOc3}) {
        auto a = replyArrivalTrace(f, 256);
        auto b = replyArrivalTrace(f, 256);
        EXPECT_EQ(a, b) << fabricName(f);
    }
}

TEST(GoldenTrace, MatchesPrePoolingImplementation)
{
    // Reply-arrival ticks recorded from the original
    // shared_ptr/std::function event queue, before the pooled slab,
    // payload rings, and cell-train batching. The rewrite must not
    // move a single event: any same-tick ordering change shows up
    // here as a shifted tick.
    using T = std::vector<sim::Tick>;
    EXPECT_EQ(replyArrivalTrace(Fabric::FeBay, 40),
              (T{60670132, 115140264, 169610396, 224080528}));
    EXPECT_EQ(replyArrivalTrace(Fabric::FeBay, 1024),
              (T{265658052, 525266104, 784874156, 1044482208}));
    EXPECT_EQ(replyArrivalTrace(Fabric::AtmOc3, 40),
              (T{101792244, 184584488, 267376732, 350168976}));
    EXPECT_EQ(replyArrivalTrace(Fabric::AtmOc3, 1024),
              (T{239346790, 460193580, 681040370, 901887160}));
}

TEST(GoldenTrace, EmptyFaultPlanIsInvisible)
{
    // Attaching a fault plan with no active models must leave every
    // site on its null-injector path: the golden ticks cannot move.
    // An armed-but-harmless plan (a model that never fires) may draw
    // from its own RNG but still must not perturb the simulation.
    using T = std::vector<sim::Tick>;
    EXPECT_EQ(replyArrivalTrace(Fabric::FeBay, 40, 4, ""),
              (T{60670132, 115140264, 169610396, 224080528}));
    EXPECT_EQ(replyArrivalTrace(Fabric::AtmOc3, 40, 4, ""),
              (T{101792244, 184584488, 267376732, 350168976}));
    EXPECT_EQ(replyArrivalTrace(Fabric::FeBay, 1024, 4,
                                "eth.switch.drop=0.0"),
              (T{265658052, 525266104, 784874156, 1044482208}));
    EXPECT_EQ(replyArrivalTrace(Fabric::AtmOc3, 1024, 4,
                                "atm.*.drop_every=1000000"),
              (T{239346790, 460193580, 681040370, 901887160}));
}
