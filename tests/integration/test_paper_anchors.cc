/**
 * @file
 * End-to-end regression locks on the paper's headline numbers.
 *
 * These tests run the same harnesses as the Fig. 5 / Fig. 6 benches
 * and assert the measured values stay within a band of the paper's
 * published results, so calibration drift is caught by CI rather than
 * by eyeballing bench output.
 */

#include <gtest/gtest.h>

#include "bench/harness.hh"

using namespace unet;
using namespace unet::bench;

TEST(PaperAnchors, Fig5FortyByteRoundTrips)
{
    // "The round-trip time for a 40-byte message over Fast Ethernet
    // ranges from 57 usec (hub) to 91 usec (FN100), while over ATM it
    // is 89 usec."
    EXPECT_NEAR(roundTripUs(Fabric::FeHub, 40), 57.0, 12.0);
    EXPECT_NEAR(roundTripUs(Fabric::FeFn100, 40), 91.0, 10.0);
    EXPECT_NEAR(roundTripUs(Fabric::AtmOc3, 40), 89.0, 8.0);
}

TEST(PaperAnchors, Fig5Ordering)
{
    // hub < Bay 28115 < FN100 at 40 bytes; FE beats ATM at small
    // sizes on the hub.
    double hub = roundTripUs(Fabric::FeHub, 40);
    double bay = roundTripUs(Fabric::FeBay, 40);
    double fn = roundTripUs(Fabric::FeFn100, 40);
    double atm = roundTripUs(Fabric::AtmOc3, 40);
    EXPECT_LT(hub, bay);
    EXPECT_LT(bay, fn);
    EXPECT_LT(hub, atm);
}

TEST(PaperAnchors, Fig5AtmMultiCellCliff)
{
    // "Longer messages (i.e. those that are larger than a single cell)
    // on ATM start at 130 usec for 44 bytes and increase to 351 usec
    // for 1500 bytes."
    double single = roundTripUs(Fabric::AtmOc3, 40);
    double multi = roundTripUs(Fabric::AtmOc3, 44);
    EXPECT_GT(multi - single, 20.0) << "cliff too small";
    EXPECT_NEAR(roundTripUs(Fabric::AtmOc3, 1494), 351.0, 25.0);
}

TEST(PaperAnchors, Fig5Slopes)
{
    // "~25 usec per 100 bytes" (FE) and "~17 usec per 100 bytes" (ATM).
    double fe = (roundTripUs(Fabric::FeHub, 1000) -
                 roundTripUs(Fabric::FeHub, 200)) / 8.0;
    double atm = (roundTripUs(Fabric::AtmOc3, 1000) -
                  roundTripUs(Fabric::AtmOc3, 200)) / 8.0;
    EXPECT_NEAR(fe, 25.0, 4.0);
    EXPECT_NEAR(atm, 17.0, 4.0);
}

TEST(PaperAnchors, Fig6BandwidthCeilings)
{
    // "the bandwidth approaches the peak of about 97 Mbps" (FE) and
    // ATM "reaches 118 Mbps" against the 120 Mbps TAXI ceiling.
    EXPECT_NEAR(bandwidthMbps(Fabric::FeBay, 1494, 200), 97.0, 3.0);
    EXPECT_NEAR(bandwidthMbps(Fabric::AtmTaxi, 1494, 200), 118.0, 4.0);
}

TEST(PaperAnchors, Fig6SmallMessagesFavorFe)
{
    // At 40 bytes the ATM i960 receive path (13 us/message) caps
    // throughput below U-Net/FE's.
    double fe = bandwidthMbps(Fabric::FeBay, 40, 200);
    double atm = bandwidthMbps(Fabric::AtmTaxi, 40, 200);
    EXPECT_GT(fe, atm);
}

TEST(PaperAnchors, Section44Overheads)
{
    // Host processor time of one 40-byte send.
    sim::Simulation s;
    RawPair rig(s, Fabric::AtmOc3);
    sim::Tick busy = -1;
    sim::Process echo(s, "echo", [](sim::Process &) {});
    sim::Process tx(s, "tx", [&](sim::Process &self) {
        sim::Tick before = rig.hostOf(0).cpu().userTime();
        rawSend(rig.unetOf(0), self, rig.ep(0), rig.chan(0), 40,
                16384);
        busy = rig.hostOf(0).cpu().userTime() - before;
    });
    rig.wire(tx, echo);
    tx.start();
    s.run();
    // "about 1.5 usec" on U-Net/ATM.
    EXPECT_NEAR(sim::toMicroseconds(busy), 1.5, 0.2);
}
