#include <gtest/gtest.h>

#include "eth/switch.hh"
#include "sockets/udp_stack.hh"

using namespace unet;
using namespace unet::sockets;
using namespace unet::sim::literals;

namespace {

struct Rig
{
    Rig()
        : sw(s, eth::SwitchSpec::bay28115()),
          hostA(s, "a", host::CpuSpec::pentium120(),
                host::BusSpec::pci()),
          hostB(s, "b", host::CpuSpec::pentium120(),
                host::BusSpec::pci()),
          nicA(hostA, sw, eth::MacAddress::fromIndex(1)),
          nicB(hostB, sw, eth::MacAddress::fromIndex(2)),
          stackA(hostA, nicA), stackB(hostB, nicB)
    {}

    sim::Simulation s;
    eth::Switch sw;
    host::Host hostA, hostB;
    nic::Dc21140 nicA, nicB;
    UdpStack stackA, stackB;
};

std::vector<std::uint8_t>
pattern(std::size_t n, std::uint8_t seed = 1)
{
    std::vector<std::uint8_t> v(n);
    for (std::size_t i = 0; i < n; ++i)
        v[i] = static_cast<std::uint8_t>(seed + i * 7);
    return v;
}

} // namespace

TEST(UdpSockets, DatagramRoundTripIntact)
{
    Rig rig;
    auto payload = pattern(100, 4);
    bool got = false;

    sim::Process rx(rig.s, "rx", [&](sim::Process &self) {
        auto &sock = rig.stackB.createSocket(&self, 7000);
        auto dg = sock.recvFrom(self, 10_ms);
        ASSERT_TRUE(dg.has_value());
        EXPECT_EQ(dg->data, payload);
        EXPECT_EQ(dg->srcMac, rig.stackA.address());
        EXPECT_EQ(dg->srcPort, 5000);
        got = true;
    });
    sim::Process tx(rig.s, "tx", [&](sim::Process &self) {
        auto &sock = rig.stackA.createSocket(&self, 5000);
        EXPECT_TRUE(sock.sendTo(self, rig.stackB.address(), 7000,
                                payload));
    });

    rx.start();
    tx.start(1_us);
    rig.s.run();
    EXPECT_TRUE(got);
    EXPECT_EQ(rig.stackB.packetsDelivered(), 1u);
}

TEST(UdpSockets, LatencyFarAboveUNet)
{
    // The whole point of the paper: the in-kernel path costs an order
    // of magnitude more than U-Net's ~57-91 us round trips.
    Rig rig;
    sim::Tick rtt = -1;

    sim::Process echo(rig.s, "echo", [&](sim::Process &self) {
        auto &sock = rig.stackB.createSocket(&self, 7000);
        auto dg = sock.recvFrom(self, 50_ms);
        if (dg)
            sock.sendTo(self, dg->srcMac, dg->srcPort, dg->data);
    });
    sim::Process ping(rig.s, "ping", [&](sim::Process &self) {
        auto &sock = rig.stackA.createSocket(&self, 5000);
        auto payload = pattern(40);
        sim::Tick t0 = rig.s.now();
        sock.sendTo(self, rig.stackB.address(), 7000, payload);
        auto dg = sock.recvFrom(self, 50_ms);
        ASSERT_TRUE(dg.has_value());
        rtt = rig.s.now() - t0;
    });

    echo.start();
    ping.start(1_us);
    rig.s.run();
    // Somewhere in the hundreds of microseconds.
    EXPECT_GT(sim::toMicroseconds(rtt), 150.0);
    EXPECT_LT(sim::toMicroseconds(rtt), 600.0);
}

TEST(UdpSockets, SocketBufferOverflowDrops)
{
    Rig rig;
    sim::Process rx(rig.s, "rx", [&](sim::Process &self) {
        auto &sock = rig.stackB.createSocket(&self, 7000);
        // Never read; let the buffer fill.
        self.delay(50_ms);
        EXPECT_GT(sock.drops(), 0u);
    });
    sim::Process tx(rig.s, "tx", [&](sim::Process &self) {
        auto &sock = rig.stackA.createSocket(&self, 5000);
        auto payload = pattern(1400);
        // 64 KB buffer holds ~46 of these.
        for (int i = 0; i < 80; ++i)
            sock.sendTo(self, rig.stackB.address(), 7000, payload);
    });
    rx.start();
    tx.start(1_us);
    rig.s.run();
}

TEST(UdpSockets, UnknownPortCounted)
{
    Rig rig;
    sim::Process tx(rig.s, "tx", [&](sim::Process &self) {
        auto &sock = rig.stackA.createSocket(&self, 5000);
        auto payload = pattern(10);
        sock.sendTo(self, rig.stackB.address(), 9999, payload);
    });
    tx.start();
    rig.s.run();
    EXPECT_EQ(rig.stackB.noPortDrops(), 1u);
}

TEST(UdpSockets, OversizedDatagramRejected)
{
    Rig rig;
    sim::Process tx(rig.s, "tx", [&](sim::Process &self) {
        auto &sock = rig.stackA.createSocket(&self, 5000);
        std::vector<std::uint8_t> big(2000, 1);
        sim::setLogLevel(sim::LogLevel::Silent);
        EXPECT_FALSE(sock.sendTo(self, rig.stackB.address(), 7000,
                                 big));
        sim::setLogLevel(sim::LogLevel::Warnings);
    });
    tx.start();
    rig.s.run();
}

TEST(UdpSockets, EphemeralPortsAreDistinct)
{
    Rig rig;
    sim::Process p(rig.s, "p", [&](sim::Process &self) {
        auto &s1 = rig.stackA.createSocket(&self);
        auto &s2 = rig.stackA.createSocket(&self);
        EXPECT_NE(s1.port(), s2.port());
    });
    p.start();
    rig.s.run();
}

TEST(UdpSockets, TxRingBacklogEnobufs)
{
    // A two-slot TX ring backs up under back-to-back sends: the driver
    // finds the descriptor still device-owned and reports ENOBUFS (the
    // datagram is silently dropped, 90s UDP semantics).
    sim::Simulation s;
    eth::Switch sw(s, eth::SwitchSpec::bay28115());
    host::Host hostA(s, "a", host::CpuSpec::pentium120(),
                     host::BusSpec::pci());
    host::Host hostB(s, "b", host::CpuSpec::pentium120(),
                     host::BusSpec::pci());
    nic::Dc21140Spec tiny;
    tiny.txRingSize = 2;
    nic::Dc21140 nicA(hostA, sw, eth::MacAddress::fromIndex(1), tiny);
    nic::Dc21140 nicB(hostB, sw, eth::MacAddress::fromIndex(2));
    UdpStack stackA(hostA, nicA), stackB(hostB, nicB);

    int ok = 0, enobufs = 0;
    sim::Process rx(s, "rx", [&](sim::Process &self) {
        auto &sock = stackB.createSocket(&self, 7000);
        while (sock.recvFrom(self, 5_ms))
            ;
    });
    sim::Process tx(s, "tx", [&](sim::Process &self) {
        auto &sock = stackA.createSocket(&self, 5000);
        auto payload = pattern(1400);
        for (int i = 0; i < 8; ++i) {
            if (sock.sendTo(self, stackB.address(), 7000, payload))
                ++ok;
            else
                ++enobufs;
        }
    });
    rx.start();
    tx.start(1_us);
    s.run();

    EXPECT_GT(enobufs, 0);
    EXPECT_GT(ok, 0);
    EXPECT_EQ(s.metrics().value("host.a.sockets.udp.packetsSent"),
              static_cast<double>(ok));
    EXPECT_EQ(stackA.packetsSent(), static_cast<std::uint64_t>(ok));
}
