#include <gtest/gtest.h>

#include "am/active_messages.hh"
#include "fault/fault.hh"
#include "tests/unet/fixtures.hh"

using namespace unet;
using namespace unet::am;
using namespace unet::test;
using namespace unet::sim::literals;

namespace {

/** Two FE nodes, one endpoint + AM instance each, channel open. */
struct AmPair
{
    AmPair()
        : link(s), a(s, link, 0), b(s, link, 1),
          procA(s, "A", [this](sim::Process &p) { bodyA(p); }),
          procB(s, "B", [this](sim::Process &p) { bodyB(p); })
    {
        EndpointConfig cfg;
        epA = &a.unet.createEndpoint(&procA, cfg);
        epB = &b.unet.createEndpoint(&procB, cfg);
        UNetFe::connect(a.unet, *epA, b.unet, *epB, chanA, chanB);
        amA = std::make_unique<ActiveMessages>(a.unet, *epA);
        amB = std::make_unique<ActiveMessages>(b.unet, *epB);
        amA->openChannel(chanA);
        amB->openChannel(chanB);
    }

    void
    run()
    {
        procA.start();
        procB.start();
        s.run();
        ASSERT_TRUE(procA.finished()) << "A did not finish";
        ASSERT_TRUE(procB.finished()) << "B did not finish";
    }

    std::function<void(sim::Process &)> bodyA = [](sim::Process &) {};
    std::function<void(sim::Process &)> bodyB = [](sim::Process &) {};

    sim::Simulation s;
    eth::FullDuplexLink link;
    FeNode a, b;
    sim::Process procA, procB;
    Endpoint *epA = nullptr;
    Endpoint *epB = nullptr;
    ChannelId chanA = invalidChannel, chanB = invalidChannel;
    std::unique_ptr<ActiveMessages> amA, amB;
};

} // namespace

TEST(ActiveMessages, RequestReplyRoundTrip)
{
    AmPair p;
    bool replied = false;
    Args seen_args{};

    p.bodyB = [&](sim::Process &proc) {
        p.amB->setHandler(1, [&](sim::Process &inner, Token tok,
                                 const Args &args,
                                 std::span<const std::uint8_t>) {
            // Echo back args, doubled.
            p.amB->reply(inner, tok, 2,
                         {args[0] * 2, args[1] * 2, args[2], args[3]});
        });
        p.amB->pollUntil(proc, [&] { return p.amB->received() >= 1; },
                         10_ms);
        p.amB->drain(proc, 10_ms);
    };
    p.bodyA = [&](sim::Process &proc) {
        p.amA->setHandler(2, [&](sim::Process &, Token, const Args &args,
                                 std::span<const std::uint8_t>) {
            replied = true;
            seen_args = args;
        });
        ASSERT_TRUE(p.amA->request(proc, p.chanA, 1, {21, 50, 3, 4}));
        p.amA->pollUntil(proc, [&] { return replied; }, 10_ms);
    };
    p.run();

    EXPECT_TRUE(replied);
    EXPECT_EQ(seen_args[0], 42u);
    EXPECT_EQ(seen_args[1], 100u);
}

TEST(ActiveMessages, PayloadIntegritySmallAndLarge)
{
    AmPair p;
    std::vector<std::uint8_t> got_small, got_large;

    p.bodyB = [&](sim::Process &proc) {
        p.amB->setHandler(1, [&](sim::Process &, Token, const Args &args,
                                 std::span<const std::uint8_t> data) {
            if (args[0] == 1)
                got_small.assign(data.begin(), data.end());
            else
                got_large.assign(data.begin(), data.end());
        });
        p.amB->pollUntil(proc, [&] { return p.amB->received() >= 2; },
                         10_ms);
        // Let the final ACK flush so A's drain() succeeds.
        p.amB->pollUntil(proc, [] { return false; }, 1_ms);
    };
    p.bodyA = [&](sim::Process &proc) {
        auto small = pattern(16, 5);
        auto large = pattern(1200, 6);
        ASSERT_TRUE(p.amA->request(proc, p.chanA, 1, {1, 0, 0, 0},
                                   small));
        ASSERT_TRUE(p.amA->request(proc, p.chanA, 1, {2, 0, 0, 0},
                                   large));
        EXPECT_TRUE(p.amA->drain(proc, 10_ms));
    };
    p.run();

    EXPECT_EQ(got_small, pattern(16, 5));
    EXPECT_EQ(got_large, pattern(1200, 6));
}

TEST(ActiveMessages, BulkStoreDeliversToSink)
{
    AmPair p;
    std::vector<std::uint8_t> sink(20000, 0);
    bool done = false;
    std::uint32_t done_addr = 0, done_total = 0;

    p.bodyB = [&](sim::Process &proc) {
        p.amB->setBulkSink([&](std::uint32_t addr,
                               std::span<const std::uint8_t> data) {
            std::copy(data.begin(), data.end(), sink.begin() + addr);
        });
        p.amB->setHandler(7, [&](sim::Process &, Token, const Args &args,
                                 std::span<const std::uint8_t>) {
            done = true;
            done_addr = args[0];
            done_total = args[1];
        });
        p.amB->pollUntil(proc, [&] { return done; }, 50_ms);
        p.amB->pollUntil(proc, [] { return false; }, 1_ms);
    };
    p.bodyA = [&](sim::Process &proc) {
        auto data = pattern(10000, 9);
        ASSERT_TRUE(p.amA->store(proc, p.chanA, 4096, data, 7));
        EXPECT_TRUE(p.amA->drain(proc, 50_ms));
    };
    p.run();

    ASSERT_TRUE(done);
    EXPECT_EQ(done_addr, 4096u);
    EXPECT_EQ(done_total, 10000u);
    auto expect = pattern(10000, 9);
    EXPECT_TRUE(std::equal(expect.begin(), expect.end(),
                           sink.begin() + 4096));
}

TEST(ActiveMessages, WindowBlocksSender)
{
    AmPair p;
    // B never polls until late: A's window (8) fills and A must wait
    // for ACKs before message 9 departs.
    sim::Tick ninth_sent = 0;

    p.bodyB = [&](sim::Process &proc) {
        proc.delay(5_ms); // stay silent: no polls, no ACKs
        p.amB->pollUntil(proc, [&] { return p.amB->received() >= 9; },
                         100_ms);
        p.amB->pollUntil(proc, [] { return false; }, 1_ms);
    };
    p.bodyA = [&](sim::Process &proc) {
        for (int i = 0; i < 9; ++i)
            ASSERT_TRUE(p.amA->request(proc, p.chanA, 1, {}));
        ninth_sent = p.s.now();
        p.amA->drain(proc, 100_ms);
    };
    p.amB->setHandler(1, [](sim::Process &, Token, const Args &,
                            std::span<const std::uint8_t>) {});
    p.run();

    // The 9th message could not be posted until B woke at 5 ms.
    EXPECT_GE(ninth_sent, 5_ms);
}

TEST(ActiveMessages, RetransmissionRecoversLoss)
{
    AmPair p;
    int received = 0;
    // Drop the first transmission of sequence 2 on the wire: A sends
    // only data frames (no ACKs flow A->B in this one-way pattern), so
    // the third frame off A's NIC is seq 2's first transmission.
    fault::ModelSpec loss;
    loss.dropUnits = {2};
    fault::Injector inj(p.s, "eth.link.0", loss, 1);
    p.link.setFaultInjector(&inj, 0);

    p.bodyB = [&](sim::Process &proc) {
        p.amB->setHandler(1, [&](sim::Process &, Token, const Args &,
                                 std::span<const std::uint8_t>) {
            ++received;
        });
        p.amB->pollUntil(proc, [&] { return received >= 5; }, 100_ms);
        p.amB->pollUntil(proc, [] { return false; }, 2_ms);
    };
    p.bodyA = [&](sim::Process &proc) {
        for (int i = 0; i < 5; ++i)
            ASSERT_TRUE(p.amA->request(proc, p.chanA, 1, {}));
        EXPECT_TRUE(p.amA->drain(proc, 100_ms));
    };
    p.run();

    EXPECT_EQ(received, 5);
    EXPECT_GT(p.amA->retransmits(), 0u);
    // Go-Back-N: messages 3 and 4 arrived out of order first and were
    // dropped as duplicates at B.
    EXPECT_GT(p.amB->duplicates(), 0u);
}

TEST(ActiveMessages, LossyChannelStressStaysReliable)
{
    AmPair p;
    // Drop ~20% of A's frames at the wire (seeded, so deterministic) —
    // retransmissions are fair game too.
    fault::ModelSpec loss;
    loss.drop = 0.2;
    fault::Injector inj(p.s, "eth.link.0", loss, 42);
    p.link.setFaultInjector(&inj, 0);

    const int total = 100;
    int received = 0;
    std::uint32_t sum = 0;

    p.bodyB = [&](sim::Process &proc) {
        p.amB->setHandler(1, [&](sim::Process &, Token, const Args &a,
                                 std::span<const std::uint8_t>) {
            ++received;
            sum += a[0];
        });
        p.amB->pollUntil(proc, [&] { return received >= total; }, 2_s);
        p.amB->pollUntil(proc, [] { return false; }, 2_ms);
    };
    p.bodyA = [&](sim::Process &proc) {
        for (int i = 0; i < total; ++i)
            ASSERT_TRUE(p.amA->request(proc, p.chanA, 1,
                                       {static_cast<Word>(i), 0, 0, 0}));
        EXPECT_TRUE(p.amA->drain(proc, 2_s));
    };
    p.run();

    EXPECT_EQ(received, total); // exactly once, in order
    EXPECT_EQ(sum, static_cast<std::uint32_t>(total * (total - 1) / 2));
    EXPECT_GT(p.amA->retransmits(), 0u);
}

TEST(ActiveMessages, ChannelDiesAfterMaxRetries)
{
    AmPair p;
    // Sever A's wire direction entirely, retransmits included.
    fault::ModelSpec loss;
    loss.drop = 1.0;
    fault::Injector inj(p.s, "eth.link.0", loss, 1);
    p.link.setFaultInjector(&inj, 0);

    p.bodyA = [&](sim::Process &proc) {
        EXPECT_TRUE(p.amA->request(proc, p.chanA, 1, {}));
        // The message is never delivered; retries exhaust and the
        // channel is declared dead (drain then trivially completes).
        p.amA->pollUntil(proc, [&] { return p.amA->deadChannels() > 0; },
                         1_s);
        EXPECT_GE(p.amA->retransmits(), 16u);
        // Further sends fail fast.
        EXPECT_FALSE(p.amA->request(proc, p.chanA, 1, {}));
    };
    p.run();
    EXPECT_EQ(p.amA->deadChannels(), 1u);
}

TEST(ActiveMessages, OneWayTrafficGetsExplicitAcks)
{
    AmPair p;
    int received = 0;

    p.bodyB = [&](sim::Process &proc) {
        p.amB->setHandler(1, [&](sim::Process &, Token, const Args &,
                                 std::span<const std::uint8_t>) {
            ++received;
        });
        p.amB->pollUntil(proc, [&] { return received >= 12; }, 100_ms);
        p.amB->pollUntil(proc, [] { return false; }, 2_ms);
    };
    p.bodyA = [&](sim::Process &proc) {
        for (int i = 0; i < 12; ++i)
            ASSERT_TRUE(p.amA->request(proc, p.chanA, 1, {}));
        EXPECT_TRUE(p.amA->drain(proc, 100_ms));
    };
    p.run();

    // B never sends data, so its ACKs must have been explicit.
    EXPECT_GT(p.amB->explicitAcks(), 0u);
    EXPECT_EQ(p.amA->retransmits(), 0u) << "ACKs should beat timeouts";
}

TEST(ActiveMessages, WorksOverAtmToo)
{
    sim::Simulation s;
    AtmStar star(s, 2);

    Endpoint *epA = nullptr, *epB = nullptr;
    ChannelId chanA = invalidChannel, chanB = invalidChannel;
    std::unique_ptr<ActiveMessages> amA, amB;
    bool replied = false;

    sim::Process procB(s, "B", [&](sim::Process &proc) {
        amB->setHandler(1, [&](sim::Process &inner, Token tok,
                               const Args &args,
                               std::span<const std::uint8_t> data) {
            EXPECT_EQ(data.size(), 8u);
            amB->reply(inner, tok, 2, {args[0] + 1, 0, 0, 0});
        });
        amB->pollUntil(proc, [&] { return amB->received() >= 1; },
                       10_ms);
        amB->pollUntil(proc, [] { return false; }, 2_ms);
    });
    sim::Process procA(s, "A", [&](sim::Process &proc) {
        amA->setHandler(2, [&](sim::Process &, Token, const Args &args,
                               std::span<const std::uint8_t>) {
            EXPECT_EQ(args[0], 8u);
            replied = true;
        });
        auto payload = pattern(8);
        ASSERT_TRUE(amA->request(proc, chanA, 1, {7, 0, 0, 0}, payload));
        amA->pollUntil(proc, [&] { return replied; }, 10_ms);
    });

    epA = &star[0].unet.createEndpoint(&procA, {});
    epB = &star[1].unet.createEndpoint(&procB, {});
    UNetAtm::connect(star[0].unet, *epA, star.ports[0], star[1].unet,
                     *epB, star.ports[1], star.signalling, chanA, chanB);
    amA = std::make_unique<ActiveMessages>(star[0].unet, *epA);
    amB = std::make_unique<ActiveMessages>(star[1].unet, *epB);
    amA->openChannel(chanA);
    amB->openChannel(chanB);

    procA.start();
    procB.start();
    s.run();
    EXPECT_TRUE(replied);
}
