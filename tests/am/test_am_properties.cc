#include <gtest/gtest.h>

#include "am/active_messages.hh"
#include "fault/fault.hh"
#include "tests/unet/fixtures.hh"

using namespace unet;
using namespace unet::am;
using namespace unet::test;
using namespace unet::sim::literals;

namespace {

/**
 * Property harness: N messages with payloads derived from their index
 * are sent over a channel with deterministic pseudo-random loss; the
 * receiver must see every message exactly once, in order, intact.
 */
struct LossSweepResult
{
    int received = 0;
    bool in_order = true;
    bool intact = true;
    std::uint64_t retransmits = 0;
};

LossSweepResult
runLossSweep(double loss_rate, int total, std::uint64_t seed)
{
    sim::Simulation s(seed);
    eth::FullDuplexLink link(s);
    FeNode a(s, link, 0), b(s, link, 1);

    // Wire-level loss on A's transmit direction (the fault plane
    // replaces the old AM-layer injector: frames vanish after
    // occupying the wire, retransmissions included).
    fault::ModelSpec loss;
    loss.drop = loss_rate;
    fault::Injector inj(s, "eth.link.0", loss, seed * 7 + 1);
    link.setFaultInjector(&inj, 0);

    Endpoint *epA = nullptr, *epB = nullptr;
    ChannelId chanA = invalidChannel, chanB = invalidChannel;
    std::unique_ptr<ActiveMessages> amA, amB;
    LossSweepResult result;
    int expected_index = 0;

    sim::Process procB(s, "B", [&](sim::Process &proc) {
        amB->setHandler(1, [&](sim::Process &, Token, const Args &args,
                               std::span<const std::uint8_t> data) {
            if (static_cast<int>(args[0]) != expected_index)
                result.in_order = false;
            ++expected_index;
            ++result.received;
            auto want = pattern(args[1],
                                static_cast<std::uint8_t>(args[0]));
            if (data.size() != want.size() ||
                !std::equal(want.begin(), want.end(), data.begin()))
                result.intact = false;
        });
        amB->pollUntil(proc, [&] { return result.received >= total; },
                       5_s);
        amB->pollUntil(proc, [] { return false; }, 3_ms);
    });
    sim::Process procA(s, "A", [&](sim::Process &proc) {
        for (int i = 0; i < total; ++i) {
            std::size_t size = (i * 37) % 900;
            auto payload = pattern(size,
                                   static_cast<std::uint8_t>(i));
            Args args = {static_cast<Word>(i),
                         static_cast<Word>(size), 0, 0};
            if (!amA->request(proc, chanA, 1, args, payload))
                return;
        }
        amA->drain(proc, 5_s);
        result.retransmits = amA->retransmits();
    });

    epA = &a.unet.createEndpoint(&procA, {});
    epB = &b.unet.createEndpoint(&procB, {});
    UNetFe::connect(a.unet, *epA, b.unet, *epB, chanA, chanB);
    amA = std::make_unique<ActiveMessages>(a.unet, *epA);
    amB = std::make_unique<ActiveMessages>(b.unet, *epB);
    amA->openChannel(chanA);
    amB->openChannel(chanB);

    procA.start();
    procB.start();
    s.run();
    return result;
}

} // namespace

class AmLossSweep
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>>
{
};

TEST_P(AmLossSweep, ExactlyOnceInOrderDelivery)
{
    auto [loss_pct, seed] = GetParam();
    double rate = loss_pct / 100.0;
    const int total = 60;
    auto result = runLossSweep(rate, total, seed);
    EXPECT_EQ(result.received, total)
        << "loss=" << loss_pct << "% seed=" << seed;
    EXPECT_TRUE(result.in_order);
    EXPECT_TRUE(result.intact);
    if (loss_pct > 0)
        EXPECT_GT(result.retransmits, 0u);
    else
        EXPECT_EQ(result.retransmits, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    LossRatesAndSeeds, AmLossSweep,
    ::testing::Combine(::testing::Values(0, 5, 15, 30),
                       ::testing::Values(1u, 2u, 3u)));

class AmBidirLossSweep : public ::testing::TestWithParam<std::uint64_t>
{
};

/**
 * Regression for the stale-piggybacked-ACK bug: with bidirectional
 * traffic and loss, retransmitted messages carry the ACK byte they
 * were composed with. A receiver must never treat such a stale
 * cumulative ACK as covering its outstanding window (which silently
 * dropped messages and corrupted bulk transfers).
 */
TEST_P(AmBidirLossSweep, BidirectionalLossExactlyOnce)
{
    std::uint64_t seed = GetParam();
    sim::Simulation s(seed);
    eth::FullDuplexLink link(s);
    FeNode a(s, link, 0), b(s, link, 1);

    // 15% wire loss in each direction, independently seeded.
    fault::ModelSpec loss;
    loss.drop = 0.15;
    fault::Injector injA(s, "eth.link.0", loss, seed * 3 + 1);
    fault::Injector injB(s, "eth.link.1", loss, seed * 5 + 2);
    link.setFaultInjector(&injA, 0);
    link.setFaultInjector(&injB, 1);

    Endpoint *epA = nullptr, *epB = nullptr;
    ChannelId chanA = invalidChannel, chanB = invalidChannel;
    std::unique_ptr<ActiveMessages> amA, amB;
    const int total = 50;
    int gotA = 0, gotB = 0;
    std::uint64_t sumA = 0, sumB = 0;
    bool orderA = true, orderB = true;
    int nextA = 0, nextB = 0;
    int drained = 0;

    auto body = [&](std::unique_ptr<ActiveMessages> &mine,
                    ChannelId &chan, int &got,
                    std::uint64_t &sum, int &next, bool &order) {
        return [&](sim::Process &proc) {
            mine->setHandler(
                1, [&](sim::Process &, Token, const Args &args,
                       std::span<const std::uint8_t>) {
                    if (static_cast<int>(args[0]) != next)
                        order = false;
                    ++next;
                    ++got;
                    sum += args[0];
                });
            for (int i = 0; i < total; ++i)
                ASSERT_TRUE(mine->request(
                    proc, chan, 1, {static_cast<Word>(i), 0, 0, 0}));
            mine->pollUntil(proc, [&] { return got >= total; }, 10_s);
            mine->drain(proc, 10_s);
            // Keep servicing ACKs until the peer has drained too — a
            // one-sided exit would strand the peer's lost final ACK.
            ++drained;
            mine->pollUntil(proc, [&] { return drained >= 2; }, 10_s);
            mine->pollUntil(proc, [] { return false; }, 5_ms);
        };
    };

    sim::Process procA(s, "A",
                       body(amA, chanA, gotA, sumA, nextA, orderA));
    sim::Process procB(s, "B",
                       body(amB, chanB, gotB, sumB, nextB, orderB));

    epA = &a.unet.createEndpoint(&procA, {});
    epB = &b.unet.createEndpoint(&procB, {});
    UNetFe::connect(a.unet, *epA, b.unet, *epB, chanA, chanB);
    amA = std::make_unique<ActiveMessages>(a.unet, *epA);
    amB = std::make_unique<ActiveMessages>(b.unet, *epB);
    amA->openChannel(chanA);
    amB->openChannel(chanB);

    procA.start();
    procB.start();
    s.run();

    const std::uint64_t want =
        static_cast<std::uint64_t>(total) * (total - 1) / 2;
    EXPECT_EQ(gotA, total);
    EXPECT_EQ(gotB, total);
    EXPECT_EQ(sumA, want);
    EXPECT_EQ(sumB, want);
    EXPECT_TRUE(orderA);
    EXPECT_TRUE(orderB);
    EXPECT_EQ(amA->deadChannels(), 0u);
    EXPECT_EQ(amB->deadChannels(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AmBidirLossSweep,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

TEST(AmProperty, TxPoolFullyRecoveredAfterLossyTraffic)
{
    // Chunks released through the retransmit quarantine must all come
    // back: after traffic quiesces, the pool is exactly as full as it
    // started.
    sim::Simulation s(21);
    eth::FullDuplexLink link(s);
    FeNode a(s, link, 0), b(s, link, 1);

    // 20% wire loss on A's transmissions.
    fault::ModelSpec loss;
    loss.drop = 0.2;
    fault::Injector inj(s, "eth.link.0", loss, 5);
    link.setFaultInjector(&inj, 0);

    Endpoint *epA = nullptr, *epB = nullptr;
    ChannelId chanA = invalidChannel, chanB = invalidChannel;
    std::unique_ptr<ActiveMessages> amA, amB;
    int received = 0;
    const int total = 40;
    std::size_t initial_free = 0;

    sim::Process procB(s, "B", [&](sim::Process &proc) {
        amB->setHandler(1, [&](sim::Process &, Token, const Args &,
                               std::span<const std::uint8_t>) {
            ++received;
        });
        amB->pollUntil(proc, [&] { return received >= total; }, 10_s);
        amB->pollUntil(proc, [] { return false; }, 5_ms);
    });
    sim::Process procA(s, "A", [&](sim::Process &proc) {
        initial_free = amA->txChunksFree();
        auto payload = pattern(800); // forces chunk (non-inline) sends
        for (int i = 0; i < total; ++i)
            ASSERT_TRUE(amA->request(proc, chanA, 1, {}, payload));
        EXPECT_TRUE(amA->drain(proc, 10_s));
        // Give quarantined chunks a chance to be reclaimed.
        amA->pollUntil(proc, [&] {
            return amA->txChunksQuarantined() == 0;
        }, 100_ms);
    });

    epA = &a.unet.createEndpoint(&procA, {});
    epB = &b.unet.createEndpoint(&procB, {});
    UNetFe::connect(a.unet, *epA, b.unet, *epB, chanA, chanB);
    amA = std::make_unique<ActiveMessages>(a.unet, *epA);
    amB = std::make_unique<ActiveMessages>(b.unet, *epB);
    amA->openChannel(chanA);
    amB->openChannel(chanB);

    procA.start();
    procB.start();
    s.run();

    EXPECT_EQ(received, total);
    EXPECT_GT(amA->retransmits(), 0u);
    if (amA->txChunksFree() != initial_free ||
        amA->deadChannels() != 0) {
        amA->debugDump("A");
        amB->debugDump("B");
    }
    EXPECT_EQ(amA->deadChannels(), 0u);
    EXPECT_EQ(amA->txChunksQuarantined(), 0u);
    EXPECT_EQ(amA->txChunksHeld(), 0u);
    EXPECT_EQ(amA->txChunksFree(), initial_free);
}

TEST(AmProperty, AtmLargeBulkExact)
{
    // Large bulk transfers over U-Net/ATM exercise the multi-fragment,
    // multi-cell, (occasionally) multi-buffer receive path; every byte
    // must land intact even when the receiver polls lazily (forcing
    // window stalls and retransmissions).
    sim::Simulation s(7);
    AtmStar star(s, 2);

    Endpoint *epA = nullptr, *epB = nullptr;
    ChannelId chanA = invalidChannel, chanB = invalidChannel;
    std::unique_ptr<ActiveMessages> amA, amB;
    std::vector<std::uint8_t> sink(300000, 0);
    bool done = false;

    sim::Process procB(s, "B", [&](sim::Process &proc) {
        amB->setBulkSink([&](std::uint32_t addr,
                             std::span<const std::uint8_t> d) {
            std::copy(d.begin(), d.end(), sink.begin() + addr);
        });
        amB->setHandler(2, [&](sim::Process &, Token, const Args &,
                               std::span<const std::uint8_t>) {
            done = true;
        });
        // Lazy receiver: compute 3 ms between polls, so the sender's
        // window stalls and its retransmit timer fires with stale ACK
        // bytes in flight.
        while (!done) {
            star[1].host.cpu().busy(proc, sim::milliseconds(3));
            amB->poll(proc);
        }
        amB->pollUntil(proc, [] { return false; }, 3_ms);
    });
    sim::Process procA(s, "A", [&](sim::Process &proc) {
        auto data = pattern(250000, 5);
        ASSERT_TRUE(amA->store(proc, chanA, 1234, data, 2));
        EXPECT_TRUE(amA->drain(proc, 10_s));
    });

    epA = &star[0].unet.createEndpoint(&procA, {});
    epB = &star[1].unet.createEndpoint(&procB, {});
    UNetAtm::connect(star[0].unet, *epA, star.ports[0], star[1].unet,
                     *epB, star.ports[1], star.signalling, chanA,
                     chanB);
    amA = std::make_unique<ActiveMessages>(star[0].unet, *epA);
    amB = std::make_unique<ActiveMessages>(star[1].unet, *epB);
    amA->openChannel(chanA);
    amB->openChannel(chanB);

    procA.start();
    procB.start();
    s.run();

    ASSERT_TRUE(done);
    auto want = pattern(250000, 5);
    std::size_t mismatches = 0;
    for (std::size_t i = 0; i < want.size(); ++i)
        if (sink[1234 + i] != want[i])
            ++mismatches;
    EXPECT_EQ(mismatches, 0u)
        << "retransmits=" << amA->retransmits()
        << " duplicates=" << amB->duplicates();
}

TEST(AmProperty, BulkStoreSurvivesLoss)
{
    sim::Simulation s(11);
    eth::FullDuplexLink link(s);
    FeNode a(s, link, 0), b(s, link, 1);

    // 10% wire loss under the bulk transfer.
    fault::ModelSpec loss;
    loss.drop = 0.1;
    fault::Injector inj(s, "eth.link.0", loss, 99);
    link.setFaultInjector(&inj, 0);

    Endpoint *epA = nullptr, *epB = nullptr;
    ChannelId chanA = invalidChannel, chanB = invalidChannel;
    std::unique_ptr<ActiveMessages> amA, amB;
    std::vector<std::uint8_t> sink(40000, 0);
    bool done = false;

    sim::Process procB(s, "B", [&](sim::Process &proc) {
        amB->setBulkSink([&](std::uint32_t addr,
                             std::span<const std::uint8_t> d) {
            std::copy(d.begin(), d.end(), sink.begin() + addr);
        });
        amB->setHandler(2, [&](sim::Process &, Token, const Args &,
                               std::span<const std::uint8_t>) {
            done = true;
        });
        amB->pollUntil(proc, [&] { return done; }, 5_s);
        amB->pollUntil(proc, [] { return false; }, 3_ms);
    });
    sim::Process procA(s, "A", [&](sim::Process &proc) {
        auto data = pattern(30000, 3);
        ASSERT_TRUE(amA->store(proc, chanA, 1000, data, 2));
        EXPECT_TRUE(amA->drain(proc, 5_s));
    });

    epA = &a.unet.createEndpoint(&procA, {});
    epB = &b.unet.createEndpoint(&procB, {});
    UNetFe::connect(a.unet, *epA, b.unet, *epB, chanA, chanB);
    amA = std::make_unique<ActiveMessages>(a.unet, *epA);
    amB = std::make_unique<ActiveMessages>(b.unet, *epB);
    amA->openChannel(chanA);
    amB->openChannel(chanB);

    procA.start();
    procB.start();
    s.run();

    ASSERT_TRUE(done);
    auto want = pattern(30000, 3);
    EXPECT_TRUE(std::equal(want.begin(), want.end(),
                           sink.begin() + 1000));
}
