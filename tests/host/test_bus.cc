#include <gtest/gtest.h>

#include "host/bus.hh"

using namespace unet;
using namespace unet::sim::literals;

TEST(Bus, TransferTimeScalesWithSize)
{
    sim::Simulation s;
    host::Bus bus(s, host::BusSpec::pci());
    EXPECT_GT(bus.transferTime(2000), bus.transferTime(1000));
    // Setup cost dominates tiny transfers.
    EXPECT_GT(bus.transferTime(4), bus.spec().transactionSetup - 1);
}

TEST(Bus, StreamingRateApproachesSpec)
{
    sim::Simulation s;
    host::Bus bus(s, host::BusSpec::pci());
    const std::size_t big = 1 << 20;
    double secs = sim::toSeconds(bus.transferTime(big));
    double rate = static_cast<double>(big) / secs;
    // Within 20% of peak once setup is amortized.
    EXPECT_GT(rate, bus.spec().bytesPerSec * 0.8);
    EXPECT_LE(rate, bus.spec().bytesPerSec);
}

TEST(Bus, DmaCompletionCallback)
{
    sim::Simulation s;
    host::Bus bus(s, host::BusSpec::pci());
    sim::Tick done = -1;
    bus.dma(1500, [&] { done = s.now(); });
    s.run();
    EXPECT_EQ(done, bus.transferTime(1500));
}

TEST(Bus, TransactionsQueue)
{
    sim::Simulation s;
    host::Bus bus(s, host::BusSpec::pci());
    std::vector<sim::Tick> done;
    bus.dma(1000, [&] { done.push_back(s.now()); });
    bus.dma(1000, [&] { done.push_back(s.now()); });
    s.run();
    ASSERT_EQ(done.size(), 2u);
    EXPECT_EQ(done[1], 2 * done[0]); // second waits for the first
    EXPECT_EQ(bus.transactions().value(), 2u);
    EXPECT_EQ(bus.bytesMoved(), 2000u);
}

TEST(Bus, SbusSlowerThanPci)
{
    sim::Simulation s;
    host::Bus pci(s, host::BusSpec::pci());
    host::Bus sbus(s, host::BusSpec::sbus());
    EXPECT_GT(sbus.transferTime(4096), pci.transferTime(4096));
}

TEST(Bus, BurstGranularityMatchesPaper)
{
    // "the DMA occurs in 32-byte bursts on the Sbus and 96-byte bursts
    // on the PCI bus"
    EXPECT_EQ(host::BusSpec::pci().burstBytes, 96u);
    EXPECT_EQ(host::BusSpec::sbus().burstBytes, 32u);
}

TEST(Bus, EstimateMatchesIdleDma)
{
    sim::Simulation s;
    host::Bus bus(s, host::BusSpec::sbus());
    sim::Tick estimate = bus.estimateCompletion(512);
    sim::Tick done = -1;
    bus.dma(512, [&] { done = s.now(); });
    s.run();
    EXPECT_EQ(done, estimate);
}
