#include <gtest/gtest.h>

#include "host/cpu.hh"
#include "host/host.hh"

using namespace unet;
using namespace unet::sim::literals;

TEST(CpuSpec, PaperCalibrations)
{
    auto p120 = host::CpuSpec::pentium120();
    // "under 1 us for a null trap on a 120 MHz Pentium"
    EXPECT_LT(p120.nullTrapCost(), 1_us);
    EXPECT_GT(p120.nullTrapCost(), 0.5_us);
    // "roughly 2 us" interrupt dispatch
    EXPECT_EQ(p120.interruptDispatch, 2_us);
    // "about 70 Mbytes/sec" memcpy
    EXPECT_DOUBLE_EQ(p120.memcpyBytesPerSec, 70e6);
}

TEST(CpuSpec, MemcpySlopeMatchesFig4)
{
    auto p120 = host::CpuSpec::pentium120();
    // Fig. 4: "the copy time increases by 1.42 us for every additional
    // 100 bytes" => 100 bytes / 70 MB/s = 1.43 us.
    sim::Tick slope = p120.memcpyTime(200) - p120.memcpyTime(100);
    EXPECT_NEAR(sim::toMicroseconds(slope), 1.42, 0.05);
}

TEST(CpuSpec, RelativeThroughputMatchesPaper)
{
    auto p120 = host::CpuSpec::pentium120();
    auto ss20 = host::CpuSpec::sparc20();
    // "Pentium integer operations outperform those of the SPARC."
    EXPECT_LT(p120.intOpCost, ss20.intOpCost);
    // "SPARC floating-point operations outperform those of the Pentium."
    EXPECT_LT(ss20.flopCost, p120.flopCost);
}

TEST(CpuSpec, SlowerVariantsAreSlower)
{
    EXPECT_GT(host::CpuSpec::pentium90().intOpCost,
              host::CpuSpec::pentium120().intOpCost);
    EXPECT_GT(host::CpuSpec::sparc10().flopCost,
              host::CpuSpec::sparc20().flopCost);
}

TEST(Cpu, BusyChargesTime)
{
    sim::Simulation s;
    host::Cpu cpu(s, host::CpuSpec::pentium120(), "cpu");
    sim::Tick end = -1;
    sim::Process p(s, "p", [&](sim::Process &self) {
        cpu.busy(self, 10_us);
        end = s.now();
    });
    p.start();
    s.run();
    EXPECT_EQ(end, 10_us);
    EXPECT_EQ(cpu.userTime(), 10_us);
}

TEST(Cpu, ZeroBusyIsFree)
{
    sim::Simulation s;
    host::Cpu cpu(s, host::CpuSpec::pentium120(), "cpu");
    sim::Process p(s, "p", [&](sim::Process &self) {
        cpu.busy(self, 0);
        EXPECT_EQ(s.now(), 0);
    });
    p.start();
    s.run();
}

TEST(Cpu, KernelWorkSerializes)
{
    sim::Simulation s;
    host::Cpu cpu(s, host::CpuSpec::pentium120(), "cpu");
    std::vector<sim::Tick> done;
    s.scheduleIn(0, [&] {
        cpu.runKernel(5_us, [&] { done.push_back(s.now()); });
        cpu.runKernel(3_us, [&] { done.push_back(s.now()); });
    });
    s.run();
    ASSERT_EQ(done.size(), 2u);
    EXPECT_EQ(done[0], 5_us);
    EXPECT_EQ(done[1], 8_us); // queued behind the first
    EXPECT_EQ(cpu.kernelTime(), 8_us);
}

TEST(Cpu, InterruptStealsCyclesFromCompute)
{
    sim::Simulation s;
    host::Cpu cpu(s, host::CpuSpec::pentium120(), "cpu");
    sim::Tick end = -1;
    sim::Process p(s, "p", [&](sim::Process &self) {
        cpu.busy(self, 100_us);
        end = s.now();
    });
    p.start();
    // A 7 us interrupt handler at t=40 us extends the compute.
    s.schedule(40_us, [&] { cpu.runKernel(7_us, nullptr); });
    s.run();
    EXPECT_EQ(end, 107_us);
}

TEST(Cpu, MultipleInterruptsAccumulate)
{
    sim::Simulation s;
    host::Cpu cpu(s, host::CpuSpec::pentium120(), "cpu");
    sim::Tick end = -1;
    sim::Process p(s, "p", [&](sim::Process &self) {
        cpu.busy(self, 50_us);
        end = s.now();
    });
    p.start();
    s.schedule(10_us, [&] { cpu.runKernel(2_us, nullptr); });
    s.schedule(20_us, [&] { cpu.runKernel(3_us, nullptr); });
    s.run();
    EXPECT_EQ(end, 55_us);
}

TEST(Cpu, ComputeUnaffectedByLaterKernelWork)
{
    sim::Simulation s;
    host::Cpu cpu(s, host::CpuSpec::pentium120(), "cpu");
    sim::Tick end = -1;
    sim::Process p(s, "p", [&](sim::Process &self) {
        cpu.busy(self, 10_us);
        end = s.now();
    });
    p.start();
    s.schedule(30_us, [&] { cpu.runKernel(5_us, nullptr); });
    s.run();
    EXPECT_EQ(end, 10_us);
}

TEST(Host, TrapCosts)
{
    sim::Simulation s;
    host::Host h(s, "node0", host::CpuSpec::pentium120(),
                 host::BusSpec::pci());
    sim::Tick end = -1;
    sim::Process p(s, "p", [&](sim::Process &self) {
        h.trapEnter(self);
        h.trapExit(self);
        end = s.now();
    });
    p.start();
    s.run();
    EXPECT_EQ(end, h.cpu().spec().nullTrapCost());
}
