#include <gtest/gtest.h>

#include "host/interrupts.hh"
#include "host/memory.hh"
#include "sim/simulation.hh"

using namespace unet;
using namespace unet::sim::literals;

TEST(Memory, AllocAdvances)
{
    host::Memory m(1024);
    std::size_t a = m.alloc(100);
    std::size_t b = m.alloc(100);
    EXPECT_GE(b, a + 100);
    EXPECT_LE(m.remaining(), 1024 - 200);
}

TEST(Memory, AllocRespectsAlignment)
{
    host::Memory m(1024);
    m.alloc(3);
    std::size_t a = m.alloc(8, 64);
    EXPECT_EQ(a % 64, 0u);
}

TEST(Memory, WriteReadRoundTrip)
{
    host::Memory m(256);
    std::vector<std::uint8_t> data{1, 2, 3, 4, 5};
    std::size_t off = m.alloc(5);
    m.write(off, data);
    EXPECT_EQ(m.read(off, 5), data);
}

TEST(Memory, RegionIsLive)
{
    host::Memory m(256);
    std::size_t off = m.alloc(4);
    auto span = m.region(off, 4);
    span[0] = 0xAB;
    EXPECT_EQ(m.read(off, 1)[0], 0xAB);
}

TEST(MemoryDeathTest, OutOfBoundsPanics)
{
    host::Memory m(16);
    EXPECT_DEATH(m.region(12, 8), "out of bounds");
}

TEST(InterruptLine, DeliversAfterDispatchLatency)
{
    sim::Simulation s;
    host::Cpu cpu(s, host::CpuSpec::pentium120(), "cpu");
    host::InterruptLine irq(s, cpu, "nic");
    sim::Tick fired = -1;
    irq.connect([&] { fired = s.now(); });
    s.schedule(10_us, [&] { irq.assertLine(); });
    s.run();
    EXPECT_EQ(fired, 10_us + cpu.spec().interruptDispatch);
}

TEST(InterruptLine, CoalescesWhilePending)
{
    sim::Simulation s;
    host::Cpu cpu(s, host::CpuSpec::pentium120(), "cpu");
    host::InterruptLine irq(s, cpu, "nic");
    int delivered = 0;
    irq.connect([&] { ++delivered; });
    s.schedule(0, [&] {
        irq.assertLine();
        irq.assertLine(); // while pending: coalesce
    });
    s.run();
    EXPECT_EQ(delivered, 1);
    EXPECT_EQ(irq.asserted(), 2u);
    EXPECT_EQ(irq.delivered(), 1u);
}

TEST(InterruptLine, RearmsAfterDelivery)
{
    sim::Simulation s;
    host::Cpu cpu(s, host::CpuSpec::pentium120(), "cpu");
    host::InterruptLine irq(s, cpu, "nic");
    int delivered = 0;
    irq.connect([&] { ++delivered; });
    s.schedule(0, [&] { irq.assertLine(); });
    s.schedule(100_us, [&] { irq.assertLine(); });
    s.run();
    EXPECT_EQ(delivered, 2);
}
