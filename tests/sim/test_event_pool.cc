/**
 * @file
 * Tests of the pooled event core: slab reuse, small-buffer-optimized
 * callable storage, generation-tagged handles, heap compaction, and
 * the reusable MemberEvent.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <vector>

#include "sim/event.hh"

using namespace unet::sim;

TEST(EventPool, SlotsAreReusedAfterFiring)
{
    EventQueue q;
    int n = 0;
    // Warm the pool past its first chunk, then drain.
    for (int i = 0; i < 100; ++i)
        q.scheduleIn(1, [&n] { ++n; });
    q.run();
    std::size_t capacity = q.poolCapacity();
    ASSERT_GT(capacity, 0u);

    // Steady-state schedule/fire cycles must recycle freed slots: the
    // slab never grows again.
    for (int i = 0; i < 10000; ++i) {
        q.scheduleIn(1, [&n] { ++n; });
        q.step();
    }
    EXPECT_EQ(q.poolCapacity(), capacity);
    EXPECT_EQ(n, 10100);
}

TEST(EventPool, SlotsAreReusedAfterCancel)
{
    EventQueue q;
    int n = 0;
    for (int i = 0; i < 100; ++i)
        q.scheduleIn(1, [&n] { ++n; }).cancel();
    std::size_t capacity = q.poolCapacity();

    for (int i = 0; i < 10000; ++i)
        q.scheduleIn(1, [&n] { ++n; }).cancel();
    EXPECT_EQ(q.poolCapacity(), capacity);
    EXPECT_EQ(q.pendingCount(), 0u);
    EXPECT_EQ(n, 0);
}

TEST(EventPool, SmallCapturesNeedNoHeapAllocation)
{
    EventQueue q;
    std::int64_t n = 0;
    for (int i = 0; i < 100; ++i) {
        q.scheduleIn(1, [&n] { ++n; });
        q.step();
    }
    EXPECT_EQ(q.heapCallableAllocs(), 0u);
}

TEST(EventPool, LargeCapturesFallBackToTheHeap)
{
    EventQueue q;
    std::int64_t n = 0;
    struct Big
    {
        std::int64_t *target;
        char pad[96]; // past the SBO threshold
    };
    Big big{&n, {}};
    q.scheduleIn(1, [big] { ++*big.target; });
    EXPECT_EQ(q.heapCallableAllocs(), 1u);
    q.run();
    EXPECT_EQ(n, 1);
}

TEST(EventPool, StaleHandleCancelIsNoopAfterFire)
{
    EventQueue q;
    int n = 0;
    EventHandle h = q.scheduleIn(1, [&n] { ++n; });
    q.run();
    EXPECT_EQ(n, 1);
    EXPECT_FALSE(h.pending());
    h.cancel(); // must not disturb anything
    q.scheduleIn(1, [&n] { ++n; });
    q.run();
    EXPECT_EQ(n, 2);
}

TEST(EventPool, StaleHandleCannotCancelSlotReuser)
{
    EventQueue q;
    int first = 0;
    int second = 0;
    EventHandle h = q.scheduleIn(1, [&first] { ++first; });
    q.run();

    // The fired event's slot is on the free list; the next schedule
    // reuses it with a bumped generation. The old handle must see a
    // stale generation, not the new occupant.
    EventHandle h2 = q.scheduleIn(1, [&second] { ++second; });
    h.cancel();
    EXPECT_TRUE(h2.pending());
    q.run();
    EXPECT_EQ(first, 1);
    EXPECT_EQ(second, 1);
}

TEST(EventPool, SameTickFifoSurvivesChurnAndCancels)
{
    // Property test: schedule batches at the same tick interleaved with
    // random cancellations; surviving events must still fire in their
    // original scheduling order.
    std::mt19937 rng(12345);
    for (int round = 0; round < 20; ++round) {
        EventQueue q;
        // Pins the unperturbed FIFO contract: hold salt 0 even when
        // the suite itself runs under UNET_PERTURB.
        q.setPerturbSalt(0);
        std::vector<int> fired;
        std::vector<EventHandle> handles;
        std::vector<int> expect;
        std::vector<bool> cancelled(200, false);
        for (int i = 0; i < 200; ++i)
            handles.push_back(
                q.schedule(50, [&fired, i] { fired.push_back(i); }));
        // Cancel a random half, some twice (double-cancel is a no-op).
        for (int c = 0; c < 150; ++c) {
            auto victim =
                static_cast<std::size_t>(rng() % handles.size());
            handles[victim].cancel();
            cancelled[victim] = true;
        }
        for (int i = 0; i < 200; ++i)
            if (!cancelled[static_cast<std::size_t>(i)])
                expect.push_back(i);
        EXPECT_EQ(q.pendingCount(), expect.size());
        q.run();
        EXPECT_EQ(fired, expect);
    }
}

TEST(EventPool, PendingCountExcludesCancelledHeapEntries)
{
    EventQueue q;
    int n = 0;
    std::vector<EventHandle> handles;
    for (int i = 0; i < 10; ++i)
        handles.push_back(q.scheduleIn(100, [&n] { ++n; }));
    EXPECT_EQ(q.pendingCount(), 10u);
    // Cancelled entries stay in the heap lazily but must not count.
    for (int i = 0; i < 5; ++i)
        handles[static_cast<std::size_t>(i)].cancel();
    EXPECT_EQ(q.pendingCount(), 5u);
    q.run();
    EXPECT_EQ(q.pendingCount(), 0u);
    EXPECT_EQ(n, 5);
}

TEST(EventPool, MassCancelTriggersHeapCompaction)
{
    EventQueue q;
    int n = 0;
    std::vector<EventHandle> handles;
    for (int i = 0; i < 1000; ++i)
        handles.push_back(q.scheduleIn(100 + i, [&n] { ++n; }));
    // Cancel far more than half: the heap must rebuild rather than
    // carry the dead entries to the next pop.
    for (int i = 0; i < 900; ++i)
        handles[static_cast<std::size_t>(i)].cancel();
    EXPECT_GE(q.compactions(), 1u);
    EXPECT_EQ(q.pendingCount(), 100u);
    q.run();
    EXPECT_EQ(n, 100);
}

TEST(EventPool, SelfReschedulingEventIsSafe)
{
    // The record being fired is off the free list while its callable
    // runs: a callback that immediately schedules again must not
    // clobber its own executing storage.
    EventQueue q;
    int n = 0;
    std::function<void()> hop = [&] {
        if (++n < 100)
            q.scheduleIn(1, [&] { hop(); });
    };
    q.scheduleIn(1, [&] { hop(); });
    q.run();
    EXPECT_EQ(n, 100);
}

TEST(MemberEvent, FiresAndRearms)
{
    EventQueue q;
    int n = 0;
    MemberEvent ev(q, [&n] { ++n; });
    EXPECT_FALSE(ev.pending());
    for (int i = 0; i < 5; ++i) {
        ev.scheduleIn(10);
        EXPECT_TRUE(ev.pending());
        q.run();
        EXPECT_FALSE(ev.pending());
    }
    EXPECT_EQ(n, 5);
    EXPECT_EQ(q.now(), 50);
}

TEST(MemberEvent, RescheduleSupersedesPriorArm)
{
    EventQueue q;
    int n = 0;
    MemberEvent ev(q, [&n] { ++n; });
    ev.scheduleIn(10);
    ev.scheduleIn(20); // re-arm: the 10-tick occurrence is cancelled
    q.run();
    EXPECT_EQ(n, 1);
    EXPECT_EQ(q.now(), 20);
}

TEST(MemberEvent, CancelDisarms)
{
    EventQueue q;
    int n = 0;
    MemberEvent ev(q, [&n] { ++n; });
    ev.scheduleIn(10);
    ev.cancel();
    EXPECT_FALSE(ev.pending());
    q.run();
    EXPECT_EQ(n, 0);
}

TEST(MemberEvent, ReschedulingNeedsNoHeapAllocation)
{
    EventQueue q;
    int n = 0;
    MemberEvent ev(q, [&n] { ++n; });
    for (int i = 0; i < 100; ++i) {
        ev.scheduleIn(1);
        q.step();
    }
    // The trampoline capture is one pointer — always inline storage.
    EXPECT_EQ(q.heapCallableAllocs(), 0u);
    EXPECT_EQ(n, 100);
}
