#include <gtest/gtest.h>

#include "sim/time.hh"

using namespace unet::sim;
using namespace unet::sim::literals;

TEST(Time, UnitConversions)
{
    EXPECT_EQ(nanoseconds(1), 1000);
    EXPECT_EQ(microseconds(1), 1000 * 1000);
    EXPECT_EQ(milliseconds(1), 1000LL * 1000 * 1000);
    EXPECT_EQ(seconds(1), 1000LL * 1000 * 1000 * 1000);
    EXPECT_EQ(seconds(2), 2 * seconds(1));
}

TEST(Time, Literals)
{
    EXPECT_EQ(5_us, microseconds(5));
    EXPECT_EQ(3_ns, nanoseconds(3));
    EXPECT_EQ(7_ms, milliseconds(7));
    EXPECT_EQ(2_s, seconds(2));
    EXPECT_EQ(1.5_us, microseconds(1) + nanoseconds(500));
    EXPECT_EQ(0.5_ns, picoseconds(500));
}

TEST(Time, FractionalConstructors)
{
    EXPECT_EQ(microsecondsF(4.2), 4200000);
    EXPECT_EQ(nanosecondsF(0.74), 740);
}

TEST(Time, ReportingConversions)
{
    EXPECT_DOUBLE_EQ(toMicroseconds(microseconds(57)), 57.0);
    EXPECT_DOUBLE_EQ(toMilliseconds(milliseconds(3)), 3.0);
    EXPECT_DOUBLE_EQ(toSeconds(seconds(2)), 2.0);
    EXPECT_DOUBLE_EQ(toMicroseconds(nanoseconds(500)), 0.5);
}

TEST(Time, SerializationTime)
{
    // 1500 bytes at 100 Mbps is exactly 120 us.
    EXPECT_EQ(serializationTime(1500, 100e6), microseconds(120));
    // One bit time at 100 Mbps is 10 ns.
    EXPECT_EQ(serializationTime(1, 100e6), nanoseconds(80));
    // 53-byte ATM cell at 155.52 Mbps is ~2.726 us.
    Tick cell = serializationTime(53, 155.52e6);
    EXPECT_NEAR(toMicroseconds(cell), 2.726, 0.01);
}

TEST(Time, SerializationRoundsToNearest)
{
    // 1 byte at 3 bits/sec = 2.666... s; rounds to nearest tick.
    Tick t = serializationTime(1, 3.0);
    EXPECT_NEAR(toSeconds(t), 8.0 / 3.0, 1e-9);
}
