/**
 * @file
 * Schedule-perturbation mode: the determinism auditor's race detector.
 *
 * Two halves to pin down:
 *  - detection power: a deliberately order-dependent same-tick event
 *    pair produces *different* results under perturbation salts — the
 *    auditor catches the dependence instead of silently reproducing
 *    insertion order;
 *  - annotation contract: events marked Order::dependent keep exact
 *    scheduling order under every salt, and a salt of zero is exact
 *    FIFO for everything.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/event.hh"
#include "sim/perturb.hh"
#include "sim/pool.hh"

using namespace unet::sim;

namespace {

/** Fire @p n same-tick events appending their index; return the order. */
std::string
sameTickOrder(std::uint64_t salt, int n, Order order = Order::permutable)
{
    EventQueue q;
    q.setPerturbSalt(salt);
    std::string fired;
    for (int i = 0; i < n; ++i)
        q.schedule(100, [&fired, i] {
            fired.push_back(static_cast<char>('A' + i));
        }, order);
    q.run();
    return fired;
}

} // namespace

TEST(Perturb, SaltZeroIsExactFifo)
{
    EXPECT_EQ(sameTickOrder(0, 8), "ABCDEFGH");
}

TEST(Perturb, OrderDependentToyPairIsCaught)
{
    // The canonical latent race: two same-tick events whose combined
    // effect depends on which fires first. Unperturbed they always run
    // in insertion order and every test passes; the auditor must
    // surface the dependence as a changed schedule under some salt.
    const std::string baseline = sameTickOrder(0, 2);
    ASSERT_EQ(baseline, "AB");
    bool caught = false;
    for (std::uint64_t salt = 1; salt <= 16 && !caught; ++salt)
        caught = sameTickOrder(salt, 2) != baseline;
    EXPECT_TRUE(caught)
        << "no salt in 1..16 permuted a same-tick pair; the "
           "perturbation plumbing is dead";
}

TEST(Perturb, PermutationIsDeterministicPerSalt)
{
    for (std::uint64_t salt : {1ULL, 7ULL, 42ULL, 0xdeadbeefULL}) {
        auto a = sameTickOrder(salt, 12);
        auto b = sameTickOrder(salt, 12);
        EXPECT_EQ(a, b) << "salt " << salt;
    }
}

TEST(Perturb, SaltsActuallyPermuteLargerTicks)
{
    // With 12 same-tick events, at least one of a handful of salts must
    // produce a non-FIFO order (all-FIFO across all salts would mean
    // the key is being ignored).
    int permuted = 0;
    for (std::uint64_t salt : {1ULL, 2ULL, 3ULL, 4ULL, 5ULL})
        permuted += sameTickOrder(salt, 12) != "ABCDEFGHIJKL";
    EXPECT_GE(permuted, 1);
}

TEST(Perturb, OrderDependentEventsKeepFifoUnderEverySalt)
{
    for (std::uint64_t salt : {1ULL, 7ULL, 42ULL, 0xdeadbeefULL})
        EXPECT_EQ(sameTickOrder(salt, 8, Order::dependent), "ABCDEFGH")
            << "salt " << salt;
}

TEST(Perturb, DependentAndPermutableCoexistWithinATick)
{
    // The dependent subset must preserve its internal order under any
    // salt, wherever the permutable events land around it.
    for (std::uint64_t salt : {3ULL, 11ULL, 99ULL}) {
        EventQueue q;
        q.setPerturbSalt(salt);
        std::string fired;
        for (int i = 0; i < 4; ++i)
            q.schedule(10, [&fired, i] {
                fired.push_back(static_cast<char>('0' + i));
            }, Order::dependent);
        for (int i = 0; i < 4; ++i)
            q.schedule(10, [&fired, i] {
                fired.push_back(static_cast<char>('a' + i));
            });
        q.run();
        std::string dependent;
        for (char c : fired)
            if (c >= '0' && c <= '9')
                dependent.push_back(c);
        EXPECT_EQ(dependent, "0123") << "salt " << salt;
        EXPECT_EQ(fired.size(), 8u);
    }
}

TEST(Perturb, TimeOrderIsNeverViolated)
{
    // Perturbation only reorders *within* a tick: across ticks the
    // schedule stays causal.
    EventQueue q;
    q.setPerturbSalt(12345);
    std::vector<Tick> fireTicks;
    for (Tick t : {30, 10, 20, 10, 30, 20, 10})
        q.schedule(t, [&fireTicks, &q] { fireTicks.push_back(q.now()); });
    q.run();
    ASSERT_EQ(fireTicks.size(), 7u);
    for (std::size_t i = 1; i < fireTicks.size(); ++i)
        EXPECT_LE(fireTicks[i - 1], fireTicks[i]);
}

TEST(Perturb, MemberEventHonoursOrderAnnotation)
{
    for (std::uint64_t salt : {5ULL, 17ULL}) {
        EventQueue q;
        q.setPerturbSalt(salt);
        std::string fired;
        MemberEvent first(q, [&fired] { fired.push_back('1'); },
                          Order::dependent);
        MemberEvent second(q, [&fired] { fired.push_back('2'); },
                           Order::dependent);
        first.scheduleAt(50);
        second.scheduleAt(50);
        q.run();
        EXPECT_EQ(fired, "12") << "salt " << salt;
    }
}

TEST(Perturb, CancellationWorksUnderPerturbation)
{
    EventQueue q;
    q.setPerturbSalt(777);
    std::string fired;
    std::vector<EventHandle> handles;
    for (int i = 0; i < 8; ++i)
        handles.push_back(q.schedule(10, [&fired, i] {
            fired.push_back(static_cast<char>('A' + i));
        }));
    handles[2].cancel();
    handles[5].cancel();
    q.run();
    EXPECT_EQ(fired.size(), 6u);
    EXPECT_EQ(fired.find('C'), std::string::npos);
    EXPECT_EQ(fired.find('F'), std::string::npos);
}

TEST(Perturb, SetSaltOnNonIdleQueueDies)
{
    EXPECT_DEATH({
        EventQueue q;
        q.schedule(10, [] {});
        q.setPerturbSalt(1);
    }, "non-idle");
}

TEST(Perturb, ScopedSaltSetsAndRestores)
{
    const std::uint64_t before = perturb::salt();
    {
        perturb::ScopedSalt s(0xabcdef);
        EXPECT_EQ(perturb::salt(), 0xabcdefu);
        // A queue constructed inside the scope latches the salt.
        EventQueue q;
        EXPECT_EQ(q.perturbSalt(), 0xabcdefu);
    }
    EXPECT_EQ(perturb::salt(), before);
}

TEST(Perturb, MixIsDeterministicAndSaltSensitive)
{
    EXPECT_EQ(perturb::mix(1, 42), perturb::mix(1, 42));
    EXPECT_NE(perturb::mix(1, 42), perturb::mix(2, 42));
    EXPECT_NE(perturb::mix(1, 42), perturb::mix(1, 43));
}

TEST(Perturb, RecycledBuffersStayUsableUnderSalt)
{
    // Address salting must not change the usable-size contract: every
    // byte of data()..data()+size() is writable, across pool churn.
    perturb::ScopedSalt s(31337);
    for (int round = 0; round < 4; ++round) {
        RecycledBuffer a(4096), b(4096), c(16384);
        a.data()[0] = 1;
        a.data()[a.size() - 1] = 2;
        b.data()[0] = 3;
        b.data()[b.size() - 1] = 4;
        c.data()[0] = 5;
        c.data()[c.size() - 1] = 6;
        EXPECT_EQ(a.size(), 4096u);
        EXPECT_EQ(c.size(), 16384u);
    }
}
