#include <gtest/gtest.h>

#include <vector>

#include "sim/process.hh"

using namespace unet::sim;
using namespace unet::sim::literals;

TEST(Process, DelayAdvancesTime)
{
    Simulation sim;
    std::vector<Tick> stamps;
    Process p(sim, "p", [&](Process &self) {
        stamps.push_back(sim.now());
        self.delay(10_us);
        stamps.push_back(sim.now());
        self.delay(5_us);
        stamps.push_back(sim.now());
    });
    p.start();
    sim.run();
    EXPECT_TRUE(p.finished());
    EXPECT_EQ(stamps, (std::vector<Tick>{0, 10_us, 15_us}));
}

TEST(Process, StartDelay)
{
    Simulation sim;
    Tick started = -1;
    Process p(sim, "p", [&](Process &) { started = sim.now(); });
    p.start(3_us);
    sim.run();
    EXPECT_EQ(started, 3_us);
}

TEST(Process, TwoProcessesInterleave)
{
    Simulation sim;
    std::vector<std::pair<char, Tick>> trace;
    Process a(sim, "a", [&](Process &self) {
        for (int i = 0; i < 3; ++i) {
            trace.push_back({'a', sim.now()});
            self.delay(10_us);
        }
    });
    Process b(sim, "b", [&](Process &self) {
        for (int i = 0; i < 3; ++i) {
            trace.push_back({'b', sim.now()});
            self.delay(15_us);
        }
    });
    a.start();
    b.start();
    sim.run();
    // a at 0,10,20; b at 0,15,30.
    std::vector<std::pair<char, Tick>> expect = {
        {'a', 0}, {'b', 0}, {'a', 10_us}, {'b', 15_us},
        {'a', 20_us}, {'b', 30_us},
    };
    EXPECT_EQ(trace, expect);
}

TEST(Process, WaitOnBlocksUntilNotify)
{
    Simulation sim;
    WaitChannel ch;
    Tick woke = -1;
    Process waiter(sim, "waiter", [&](Process &self) {
        self.waitOn(ch);
        woke = sim.now();
    });
    Process notifier(sim, "notifier", [&](Process &self) {
        self.delay(25_us);
        ch.notifyAll();
    });
    waiter.start();
    notifier.start();
    sim.run();
    EXPECT_EQ(woke, 25_us);
}

TEST(Process, NotifyWakesAllWaiters)
{
    Simulation sim;
    WaitChannel ch;
    int woken = 0;
    std::vector<std::unique_ptr<Process>> procs;
    for (int i = 0; i < 4; ++i) {
        procs.push_back(std::make_unique<Process>(
            sim, "w", [&](Process &self) {
                self.waitOn(ch);
                ++woken;
            }));
        procs.back()->start();
    }
    Process notifier(sim, "n", [&](Process &self) {
        self.delay(1_us);
        EXPECT_EQ(ch.waiterCount(), 4u);
        ch.notifyAll();
    });
    notifier.start();
    sim.run();
    EXPECT_EQ(woken, 4);
    EXPECT_EQ(ch.waiterCount(), 0u);
}

TEST(Process, NotifyWithoutWaitersIsLost)
{
    Simulation sim;
    WaitChannel ch;
    bool woke = false;
    Process notifier(sim, "n", [&](Process &) { ch.notifyAll(); });
    Process waiter(sim, "w", [&](Process &self) {
        self.delay(10_us); // miss the notify
        woke = self.waitOn(ch, 5_us);
    });
    notifier.start();
    waiter.start();
    sim.run();
    EXPECT_FALSE(woke); // timed out; the early notify was not stored
}

TEST(Process, WaitTimeoutFires)
{
    Simulation sim;
    WaitChannel ch;
    bool notified = true;
    Tick woke = -1;
    Process p(sim, "p", [&](Process &self) {
        notified = self.waitOn(ch, 7_us);
        woke = sim.now();
    });
    p.start();
    sim.run();
    EXPECT_FALSE(notified);
    EXPECT_EQ(woke, 7_us);
    EXPECT_EQ(ch.waiterCount(), 0u);
}

TEST(Process, WaitTimeoutCancelledByNotify)
{
    Simulation sim;
    WaitChannel ch;
    bool notified = false;
    Process p(sim, "p", [&](Process &self) {
        notified = self.waitOn(ch, 100_us);
    });
    Process n(sim, "n", [&](Process &self) {
        self.delay(2_us);
        ch.notifyAll();
    });
    p.start();
    n.start();
    sim.run();
    EXPECT_TRUE(notified);
    EXPECT_EQ(sim.now(), 2_us); // no stray timeout event at 100 us
}

TEST(Process, CurrentIsSetInsideBody)
{
    Simulation sim;
    Process *seen = nullptr;
    Process p(sim, "p", [&](Process &self) {
        seen = Process::current();
        self.delay(1_us);
        EXPECT_EQ(Process::current(), &self);
    });
    p.start();
    EXPECT_EQ(Process::current(), nullptr);
    sim.run();
    EXPECT_EQ(seen, &p);
    EXPECT_EQ(Process::current(), nullptr);
}

TEST(Process, PingPongViaTwoChannels)
{
    Simulation sim;
    WaitChannel ping, pong;
    std::vector<int> trace;
    Process a(sim, "a", [&](Process &self) {
        for (int i = 0; i < 3; ++i) {
            trace.push_back(1);
            pong.notifyAll();
            self.waitOn(ping);
        }
        pong.notifyAll();
    });
    Process b(sim, "b", [&](Process &self) {
        for (int i = 0; i < 3; ++i) {
            self.waitOn(pong);
            trace.push_back(2);
            ping.notifyAll();
        }
    });
    // Start the waiter first: notifies are not stored, so b must be
    // blocked on `pong` before a's first notify fires.
    b.start();
    a.start(1_us);
    sim.run();
    EXPECT_EQ(trace, (std::vector<int>{1, 2, 1, 2, 1, 2}));
    EXPECT_TRUE(a.finished());
    EXPECT_TRUE(b.finished());
}
