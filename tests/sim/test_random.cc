#include <gtest/gtest.h>

#include <vector>

#include "sim/perturb.hh"
#include "sim/random.hh"
#include "sim/time.hh"

using namespace unet::sim;

TEST(Random, DeterministicForSeed)
{
    Random a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.u64(), b.u64());
}

TEST(Random, DifferentSeedsDiffer)
{
    Random a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        if (a.u64() == b.u64())
            ++same;
    EXPECT_LT(same, 2);
}

TEST(Random, UniformRespectsBounds)
{
    Random r(7);
    for (int i = 0; i < 10000; ++i) {
        auto v = r.uniform(-5, 5);
        EXPECT_GE(v, -5);
        EXPECT_LE(v, 5);
    }
}

TEST(Random, UniformCoversRange)
{
    Random r(7);
    bool seen[11] = {};
    for (int i = 0; i < 10000; ++i)
        seen[r.uniform(0, 10)] = true;
    for (bool s : seen)
        EXPECT_TRUE(s);
}

TEST(Random, Uniform01InRange)
{
    Random r(9);
    for (int i = 0; i < 10000; ++i) {
        double v = r.uniform01();
        EXPECT_GE(v, 0.0);
        EXPECT_LT(v, 1.0);
    }
}

TEST(Random, ChanceExtremes)
{
    Random r(11);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(r.chance(0.0));
        EXPECT_TRUE(r.chance(1.0));
    }
}

TEST(Random, ChanceApproximatesProbability)
{
    Random r(13);
    int hits = 0;
    const int trials = 100000;
    for (int i = 0; i < trials; ++i)
        if (r.chance(0.3))
            ++hits;
    EXPECT_NEAR(static_cast<double>(hits) / trials, 0.3, 0.01);
}

TEST(Random, ExponentialMean)
{
    Random r(17);
    double sum = 0;
    const int trials = 100000;
    for (int i = 0; i < trials; ++i)
        sum += r.exponential(50.0);
    EXPECT_NEAR(sum / trials, 50.0, 1.0);
}

TEST(Random, ReseedRestartsSequence)
{
    Random r(21);
    auto first = r.u64();
    r.u64();
    r.seed(21);
    EXPECT_EQ(r.u64(), first);
}

TEST(Random, ExponentialTicksStableAcrossPerturbSalts)
{
    // The draw stream is a pure function of the seed: the schedule
    // perturbation salt must not reach it (UNET_PERTURB reorders
    // same-tick events, never the measured randomness).
    std::vector<Tick> base;
    {
        perturb::ScopedSalt salt(0);
        Random r(42);
        for (int i = 0; i < 256; ++i)
            base.push_back(r.exponentialTicks(microseconds(1)));
    }
    for (std::uint64_t s : {1ull, 5ull, 123457ull}) {
        perturb::ScopedSalt salt(s);
        Random r(42);
        for (int i = 0; i < 256; ++i)
            EXPECT_EQ(r.exponentialTicks(microseconds(1)), base[i])
                << "salt " << s << " draw " << i;
    }
}

TEST(Random, ExponentialTicksMeanAndBounds)
{
    Random r(9);
    const Tick mean = 250000; // 250 ns
    const Tick cap = mean * 37; // 53 * ln 2 ~= 36.7 doublings
    double sum = 0;
    const int trials = 20000;
    for (int i = 0; i < trials; ++i) {
        Tick g = r.exponentialTicks(mean);
        ASSERT_GE(g, 1);
        ASSERT_LE(g, cap);
        sum += static_cast<double>(g);
    }
    EXPECT_NEAR(sum / trials, static_cast<double>(mean),
                0.05 * static_cast<double>(mean));
}
