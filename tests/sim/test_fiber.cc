#include <gtest/gtest.h>

#include <vector>

#include "sim/fiber.hh"

using namespace unet::sim;

TEST(Fiber, RunsToCompletion)
{
    int x = 0;
    Fiber f([&] { x = 42; });
    EXPECT_FALSE(f.finished());
    f.run();
    EXPECT_TRUE(f.finished());
    EXPECT_EQ(x, 42);
}

TEST(Fiber, YieldSuspendsAndResumes)
{
    std::vector<int> trace;
    Fiber f([&] {
        trace.push_back(1);
        Fiber::yield();
        trace.push_back(3);
        Fiber::yield();
        trace.push_back(5);
    });
    f.run();
    trace.push_back(2);
    f.run();
    trace.push_back(4);
    f.run();
    EXPECT_TRUE(f.finished());
    EXPECT_EQ(trace, (std::vector<int>{1, 2, 3, 4, 5}));
}

TEST(Fiber, CurrentTracksExecution)
{
    EXPECT_EQ(Fiber::current(), nullptr);
    Fiber *seen = nullptr;
    Fiber f([&] {
        seen = Fiber::current();
        Fiber::yield();
        EXPECT_EQ(Fiber::current(), seen);
    });
    f.run();
    EXPECT_EQ(seen, &f);
    EXPECT_EQ(Fiber::current(), nullptr);
    f.run();
    EXPECT_EQ(Fiber::current(), nullptr);
}

TEST(Fiber, InterleavingTwoFibers)
{
    std::vector<int> trace;
    Fiber a([&] {
        trace.push_back(1);
        Fiber::yield();
        trace.push_back(3);
    });
    Fiber b([&] {
        trace.push_back(2);
        Fiber::yield();
        trace.push_back(4);
    });
    a.run();
    b.run();
    a.run();
    b.run();
    EXPECT_EQ(trace, (std::vector<int>{1, 2, 3, 4}));
    EXPECT_TRUE(a.finished());
    EXPECT_TRUE(b.finished());
}

TEST(Fiber, LocalStateSurvivesYield)
{
    long total = 0;
    Fiber f([&] {
        long acc = 0;
        for (int i = 1; i <= 100; ++i) {
            acc += i;
            if (i % 10 == 0)
                Fiber::yield();
        }
        total = acc;
    });
    while (!f.finished())
        f.run();
    EXPECT_EQ(total, 5050);
}

TEST(Fiber, DeepStackUsage)
{
    // Recursion that needs a healthy chunk of the 256 KiB stack.
    std::function<long(int)> fib = [&](int n) -> long {
        volatile char pad[512];
        pad[0] = static_cast<char>(n);
        (void)pad;
        return n < 2 ? n : fib(n - 1) + fib(n - 2);
    };
    long result = 0;
    Fiber f([&] { result = fib(18); });
    f.run();
    EXPECT_EQ(result, 2584);
}

TEST(FiberDeathTest, RunOnFinishedFiberPanics)
{
    Fiber f([] {});
    f.run();
    ASSERT_TRUE(f.finished());
    EXPECT_DEATH(f.run(), "finished fiber");
}

TEST(FiberDeathTest, NestedRunPanics)
{
    Fiber inner([] {});
    Fiber outer([&] { inner.run(); });
    EXPECT_DEATH(outer.run(), "nested Fiber::run");
}

TEST(FiberDeathTest, YieldOutsideAnyFiberPanics)
{
    EXPECT_DEATH(Fiber::yield(), "outside any fiber");
}

TEST(Fiber, DestroyUnfinishedFiberIsSafe)
{
    auto *f = new Fiber([] {
        Fiber::yield();
        FAIL() << "body must not resume after destruction";
    });
    f->run();
    delete f; // must not crash or resume the body
    SUCCEED();
}
