#include <gtest/gtest.h>

#include <vector>

#include "sim/event.hh"
#include "sim/simulation.hh"

using namespace unet::sim;
using namespace unet::sim::literals;

TEST(EventQueue, FiresInTimeOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(30, [&] { order.push_back(3); });
    q.schedule(10, [&] { order.push_back(1); });
    q.schedule(20, [&] { order.push_back(2); });
    q.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(q.now(), 30);
}

TEST(EventQueue, SameTickIsFifo)
{
    EventQueue q;
    // This test pins the *unperturbed* FIFO contract; force salt 0 so
    // it also holds when the suite runs under UNET_PERTURB.
    q.setPerturbSalt(0);
    std::vector<int> order;
    for (int i = 0; i < 8; ++i)
        q.schedule(100, [&order, i] { order.push_back(i); });
    q.run();
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(EventQueue, ClockAdvancesOnlyWithEvents)
{
    EventQueue q;
    EXPECT_EQ(q.now(), 0);
    q.schedule(5_us, [] {});
    EXPECT_EQ(q.now(), 0);
    q.run();
    EXPECT_EQ(q.now(), 5_us);
}

TEST(EventQueue, CancelPreventsFiring)
{
    EventQueue q;
    int fired = 0;
    EventHandle h = q.schedule(10, [&] { ++fired; });
    EXPECT_TRUE(h.pending());
    h.cancel();
    EXPECT_FALSE(h.pending());
    q.run();
    EXPECT_EQ(fired, 0);
}

TEST(EventQueue, CancelAfterFireIsNoop)
{
    EventQueue q;
    int fired = 0;
    EventHandle h = q.schedule(10, [&] { ++fired; });
    q.run();
    EXPECT_FALSE(h.pending());
    h.cancel();
    EXPECT_EQ(fired, 1);
}

TEST(EventQueue, DefaultHandleIsInert)
{
    EventHandle h;
    EXPECT_FALSE(h.pending());
    h.cancel(); // must not crash
}

TEST(EventQueue, EventsCanScheduleEvents)
{
    EventQueue q;
    int depth = 0;
    std::function<void()> chain = [&] {
        if (++depth < 5)
            q.scheduleIn(10, chain);
    };
    q.schedule(0, chain);
    q.run();
    EXPECT_EQ(depth, 5);
    EXPECT_EQ(q.now(), 40);
}

TEST(EventQueue, RunUntilStopsAtLimit)
{
    EventQueue q;
    int fired = 0;
    q.schedule(10, [&] { ++fired; });
    q.schedule(20, [&] { ++fired; });
    q.schedule(30, [&] { ++fired; });
    q.runUntil(20);
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(q.now(), 20);
    q.run();
    EXPECT_EQ(fired, 3);
}

TEST(EventQueue, RunUntilAdvancesClockToLimit)
{
    EventQueue q;
    q.schedule(100, [] {});
    q.runUntil(50);
    EXPECT_EQ(q.now(), 50);
}

TEST(EventQueue, StepReturnsFalseWhenEmpty)
{
    EventQueue q;
    EXPECT_FALSE(q.step());
    q.schedule(1, [] {});
    EXPECT_TRUE(q.step());
    EXPECT_FALSE(q.step());
}

TEST(EventQueue, FiredCountSkipsCancelled)
{
    EventQueue q;
    auto h1 = q.schedule(1, [] {});
    q.schedule(2, [] {});
    h1.cancel();
    q.run();
    EXPECT_EQ(q.firedCount(), 1u);
}

TEST(Simulation, SharedContext)
{
    Simulation sim(42);
    int fired = 0;
    sim.scheduleIn(3_us, [&] { ++fired; });
    sim.run();
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(sim.now(), 3_us);
    // PRNG is live and deterministic for a fixed seed.
    Simulation sim2(42);
    EXPECT_EQ(sim.random().u64(), sim2.random().u64());
}

TEST(EventQueue, ManyEventsStress)
{
    EventQueue q;
    Random rng(7);
    std::int64_t sum = 0;
    Tick last = 0;
    bool monotone = true;
    for (int i = 0; i < 10000; ++i) {
        Tick t = rng.uniform(0, 1'000'000);
        q.schedule(t, [&, t] {
            sum += 1;
            if (q.now() < last)
                monotone = false;
            last = q.now();
            if (q.now() != t)
                monotone = false;
        });
    }
    q.run();
    EXPECT_EQ(sum, 10000);
    EXPECT_TRUE(monotone);
}
