#include <gtest/gtest.h>

#include "sim/stats.hh"

using namespace unet::sim;

TEST(Counter, IncrementAndAdd)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    ++c;
    c += 5;
    EXPECT_EQ(c.value(), 6u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Accumulator, EmptyIsZero)
{
    Accumulator a;
    EXPECT_EQ(a.count(), 0u);
    EXPECT_DOUBLE_EQ(a.mean(), 0.0);
    EXPECT_DOUBLE_EQ(a.min(), 0.0);
    EXPECT_DOUBLE_EQ(a.max(), 0.0);
    EXPECT_DOUBLE_EQ(a.variance(), 0.0);
}

TEST(Accumulator, BasicMoments)
{
    Accumulator a;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        a.sample(x);
    EXPECT_EQ(a.count(), 8u);
    EXPECT_DOUBLE_EQ(a.mean(), 5.0);
    EXPECT_DOUBLE_EQ(a.min(), 2.0);
    EXPECT_DOUBLE_EQ(a.max(), 9.0);
    EXPECT_DOUBLE_EQ(a.sum(), 40.0);
    // Population variance is 4; sample variance is 32/7.
    EXPECT_NEAR(a.variance(), 32.0 / 7.0, 1e-12);
}

TEST(Accumulator, SingleSample)
{
    Accumulator a;
    a.sample(3.5);
    EXPECT_DOUBLE_EQ(a.mean(), 3.5);
    EXPECT_DOUBLE_EQ(a.min(), 3.5);
    EXPECT_DOUBLE_EQ(a.max(), 3.5);
    EXPECT_DOUBLE_EQ(a.variance(), 0.0);
}

TEST(Accumulator, Reset)
{
    Accumulator a;
    a.sample(1.0);
    a.sample(2.0);
    a.reset();
    EXPECT_EQ(a.count(), 0u);
    a.sample(10.0);
    EXPECT_DOUBLE_EQ(a.mean(), 10.0);
    EXPECT_DOUBLE_EQ(a.min(), 10.0);
}

TEST(Histogram, BucketsAndOverflow)
{
    Histogram h(0.0, 100.0, 10);
    h.sample(-1.0);   // underflow
    h.sample(0.0);    // bucket 0
    h.sample(9.99);   // bucket 0
    h.sample(55.0);   // bucket 5
    h.sample(99.99);  // bucket 9
    h.sample(100.0);  // overflow
    h.sample(1e9);    // overflow
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 2u);
    EXPECT_EQ(h.bucket(0), 2u);
    EXPECT_EQ(h.bucket(5), 1u);
    EXPECT_EQ(h.bucket(9), 1u);
    EXPECT_EQ(h.buckets(), 10u);
    EXPECT_EQ(h.summary().count(), 7u);
}

TEST(StatGroup, SetGetMissing)
{
    StatGroup g;
    g.set("tx.frames", 42);
    EXPECT_DOUBLE_EQ(g.get("tx.frames"), 42.0);
    EXPECT_DOUBLE_EQ(g.get("missing"), 0.0);
    EXPECT_EQ(g.all().size(), 1u);
}
