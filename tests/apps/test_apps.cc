#include <gtest/gtest.h>

#include "apps/matmul.hh"
#include "apps/radix_sort.hh"
#include "apps/sample_sort.hh"
#include "cluster/cluster.hh"

using namespace unet;
using namespace unet::apps;
using namespace unet::cluster;

namespace {

Config
smallFe(int nodes)
{
    auto c = Config::feCluster(nodes, NetKind::FeBay28115, false);
    return c;
}

} // namespace

TEST(Matmul, TinyProductVerifies)
{
    sim::Simulation s;
    Cluster c(s, smallFe(2));
    MatmulConfig cfg;
    cfg.blocksPerSide = 4;
    cfg.blockSize = 8;
    std::vector<MatmulStats> stats(2);
    c.run([&](splitc::Runtime &rt, sim::Process &proc) {
        stats[rt.self()] = runMatmul(rt, proc, cfg);
    });
    EXPECT_TRUE(stats[0].verified);
    EXPECT_TRUE(stats[1].verified);
    EXPECT_EQ(stats[0].checksum, stats[1].checksum);
    EXPECT_EQ(stats[0].blocksComputed + stats[1].blocksComputed, 16u);
}

TEST(Matmul, FourNodesAtm)
{
    sim::Simulation s;
    Cluster c(s, Config::atmSplitC(4));
    MatmulConfig cfg;
    cfg.blocksPerSide = 4;
    cfg.blockSize = 8;
    std::vector<MatmulStats> stats(4);
    c.run([&](splitc::Runtime &rt, sim::Process &proc) {
        stats[rt.self()] = runMatmul(rt, proc, cfg);
    });
    for (auto &st : stats)
        EXPECT_TRUE(st.verified);
}

TEST(Matmul, MoreNodesRunFaster)
{
    MatmulConfig cfg;
    cfg.blocksPerSide = 4;
    cfg.blockSize = 16;
    auto time_for = [&](int nodes) {
        sim::Simulation s;
        Cluster c(s, smallFe(nodes));
        return c.run([&](splitc::Runtime &rt, sim::Process &proc) {
            auto st = runMatmul(rt, proc, cfg);
            EXPECT_TRUE(st.verified);
        });
    };
    sim::Tick t2 = time_for(2);
    sim::Tick t4 = time_for(4);
    EXPECT_LT(t4, t2);
}

class RadixVariants
    : public ::testing::TestWithParam<std::tuple<bool, int>>
{
};

TEST_P(RadixVariants, SortsCorrectly)
{
    auto [large, nodes] = GetParam();
    sim::Simulation s;
    Cluster c(s, smallFe(nodes));
    RadixConfig cfg;
    cfg.keysPerNode = 2048;
    cfg.largeMessages = large;
    std::vector<RadixStats> stats(static_cast<std::size_t>(nodes));
    c.run([&](splitc::Runtime &rt, sim::Process &proc) {
        stats[static_cast<std::size_t>(rt.self())] =
            runRadixSort(rt, proc, cfg);
    });
    for (auto &st : stats)
        EXPECT_TRUE(st.verified);
}

INSTANTIATE_TEST_SUITE_P(
    SmallLargeByNodes, RadixVariants,
    ::testing::Combine(::testing::Bool(), ::testing::Values(2, 4)));

TEST(RadixSort, WorksOnAtm)
{
    sim::Simulation s;
    Cluster c(s, Config::atmSplitC(2));
    RadixConfig cfg;
    cfg.keysPerNode = 1024;
    cfg.largeMessages = true;
    c.run([&](splitc::Runtime &rt, sim::Process &proc) {
        EXPECT_TRUE(runRadixSort(rt, proc, cfg).verified);
    });
}

TEST(RadixSort, SmallVariantSendsManyMoreMessages)
{
    RadixConfig cfg;
    cfg.keysPerNode = 1024;
    auto messages = [&](bool large) {
        cfg.largeMessages = large;
        sim::Simulation s;
        Cluster c(s, smallFe(2));
        std::uint64_t msgs = 0;
        c.run([&](splitc::Runtime &rt, sim::Process &proc) {
            auto st = runRadixSort(rt, proc, cfg);
            EXPECT_TRUE(st.verified);
            if (rt.self() == 0)
                msgs = st.messages;
        });
        return msgs;
    };
    EXPECT_GT(messages(false), 20 * messages(true));
}

class SampleVariants
    : public ::testing::TestWithParam<std::tuple<bool, int>>
{
};

TEST_P(SampleVariants, SortsCorrectly)
{
    auto [large, nodes] = GetParam();
    sim::Simulation s;
    Cluster c(s, smallFe(nodes));
    SampleConfig cfg;
    cfg.keysPerNode = 2048;
    cfg.largeMessages = large;
    std::vector<SampleStats> stats(static_cast<std::size_t>(nodes));
    c.run([&](splitc::Runtime &rt, sim::Process &proc) {
        stats[static_cast<std::size_t>(rt.self())] =
            runSampleSort(rt, proc, cfg);
    });
    std::uint64_t held = 0;
    for (auto &st : stats) {
        EXPECT_TRUE(st.verified);
        held += st.keysHeld;
    }
    EXPECT_EQ(held, 2048u * static_cast<std::uint64_t>(nodes));
}

INSTANTIATE_TEST_SUITE_P(
    SmallLargeByNodes, SampleVariants,
    ::testing::Combine(::testing::Bool(), ::testing::Values(2, 4)));

TEST(SampleSort, WorksOnAtm)
{
    sim::Simulation s;
    Cluster c(s, Config::atmSplitC(2));
    SampleConfig cfg;
    cfg.keysPerNode = 1024;
    cfg.largeMessages = false;
    c.run([&](splitc::Runtime &rt, sim::Process &proc) {
        EXPECT_TRUE(runSampleSort(rt, proc, cfg).verified);
    });
}

TEST(SampleSort, SingleNodeDegeneratesToLocalSort)
{
    sim::Simulation s;
    Cluster c(s, smallFe(1));
    SampleConfig cfg;
    cfg.keysPerNode = 512;
    c.run([&](splitc::Runtime &rt, sim::Process &proc) {
        auto st = runSampleSort(rt, proc, cfg);
        EXPECT_TRUE(st.verified);
        EXPECT_EQ(st.keysHeld, 512u);
        EXPECT_EQ(st.keysSentRemote, 0u);
    });
}
