#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "net/crc32.hh"
#include "sim/random.hh"

using namespace unet;

namespace {

std::vector<std::uint8_t>
bytesOf(const std::string &s)
{
    return {s.begin(), s.end()};
}

} // namespace

TEST(Crc32, KnownVectors)
{
    // Standard CRC-32 check value.
    EXPECT_EQ(net::crc32(bytesOf("123456789")), 0xCBF43926u);
    EXPECT_EQ(net::crc32(bytesOf("")), 0x00000000u);
    EXPECT_EQ(net::crc32(bytesOf("a")), 0xE8B7BE43u);
    EXPECT_EQ(net::crc32(bytesOf("abc")), 0x352441C2u);
    EXPECT_EQ(net::crc32(bytesOf("The quick brown fox jumps over the "
                                 "lazy dog")),
              0x414FA339u);
}

TEST(Crc32, TableMatchesBitwiseReference)
{
    sim::Random rng(99);
    for (int trial = 0; trial < 50; ++trial) {
        std::vector<std::uint8_t> data(rng.uniform(0, 300));
        for (auto &b : data)
            b = static_cast<std::uint8_t>(rng.u32());
        EXPECT_EQ(net::crc32(data), net::crc32Reference(data));
    }
}

TEST(Crc32, IncrementalMatchesOneShot)
{
    auto data = bytesOf("hello, incremental crc world");
    for (std::size_t split = 0; split <= data.size(); ++split) {
        std::uint32_t state = 0xFFFFFFFFu;
        state = net::crc32Update(
            state, std::span(data.data(), split));
        state = net::crc32Update(
            state, std::span(data.data() + split, data.size() - split));
        EXPECT_EQ(net::crc32Finish(state), net::crc32(data));
    }
}

TEST(Crc32, DetectsSingleBitFlips)
{
    auto data = bytesOf("payload under test 0123456789");
    std::uint32_t good = net::crc32(data);
    for (std::size_t byte = 0; byte < data.size(); ++byte) {
        for (int bit = 0; bit < 8; ++bit) {
            auto corrupted = data;
            corrupted[byte] ^= static_cast<std::uint8_t>(1 << bit);
            EXPECT_NE(net::crc32(corrupted), good);
        }
    }
}

TEST(Crc32, DetectsSwappedBytes)
{
    auto data = bytesOf("ABCDEFGH");
    std::uint32_t good = net::crc32(data);
    auto swapped = data;
    std::swap(swapped[2], swapped[5]);
    EXPECT_NE(net::crc32(swapped), good);
}
