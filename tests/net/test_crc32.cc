#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "net/crc32.hh"
#include "sim/random.hh"

using namespace unet;

namespace {

std::vector<std::uint8_t>
bytesOf(const std::string &s)
{
    return {s.begin(), s.end()};
}

} // namespace

TEST(Crc32, KnownVectors)
{
    // Standard CRC-32 check value.
    EXPECT_EQ(net::crc32(bytesOf("123456789")), 0xCBF43926u);
    EXPECT_EQ(net::crc32(bytesOf("")), 0x00000000u);
    EXPECT_EQ(net::crc32(bytesOf("a")), 0xE8B7BE43u);
    EXPECT_EQ(net::crc32(bytesOf("abc")), 0x352441C2u);
    EXPECT_EQ(net::crc32(bytesOf("The quick brown fox jumps over the "
                                 "lazy dog")),
              0x414FA339u);
}

TEST(Crc32, TableMatchesBitwiseReference)
{
    sim::Random rng(99);
    for (int trial = 0; trial < 50; ++trial) {
        std::vector<std::uint8_t> data(rng.uniform(0, 300));
        for (auto &b : data)
            b = static_cast<std::uint8_t>(rng.u32());
        EXPECT_EQ(net::crc32(data), net::crc32Reference(data));
    }
}

TEST(Crc32, IncrementalMatchesOneShot)
{
    auto data = bytesOf("hello, incremental crc world");
    for (std::size_t split = 0; split <= data.size(); ++split) {
        std::uint32_t state = 0xFFFFFFFFu;
        state = net::crc32Update(
            state, std::span(data.data(), split));
        state = net::crc32Update(
            state, std::span(data.data() + split, data.size() - split));
        EXPECT_EQ(net::crc32Finish(state), net::crc32(data));
    }
}

TEST(Crc32, DetectsSingleBitFlips)
{
    auto data = bytesOf("payload under test 0123456789");
    std::uint32_t good = net::crc32(data);
    for (std::size_t byte = 0; byte < data.size(); ++byte) {
        for (int bit = 0; bit < 8; ++bit) {
            auto corrupted = data;
            corrupted[byte] ^= static_cast<std::uint8_t>(1 << bit);
            EXPECT_NE(net::crc32(corrupted), good);
        }
    }
}

TEST(Crc32, DetectsSwappedBytes)
{
    auto data = bytesOf("ABCDEFGH");
    std::uint32_t good = net::crc32(data);
    auto swapped = data;
    std::swap(swapped[2], swapped[5]);
    EXPECT_NE(net::crc32(swapped), good);
}

TEST(Crc32, BackendNameMatchesEnum)
{
    if (net::crc32Backend() == net::Crc32Backend::pclmul)
        EXPECT_STREQ(net::crc32BackendName(), "pclmul");
    else
        EXPECT_STREQ(net::crc32BackendName(), "software");
}

/** The hardware folding path must be bit-identical to the tables for
 *  every length class: sub-threshold, fold-boundary (64, 128), every
 *  tail residue 0..63 around them, and long buffers that exercise the
 *  fold-by-4 main loop. Wrong folding constants fail every case. */
TEST(Crc32, PclmulMatchesSoftwareAcrossLengths)
{
    if (net::crc32Backend() != net::Crc32Backend::pclmul)
        GTEST_SKIP() << "no pclmul on this host/build";

    sim::Random rng(1234);
    std::vector<std::uint8_t> data(70000);
    for (auto &b : data)
        b = static_cast<std::uint8_t>(rng.u32());

    std::vector<std::size_t> lengths;
    for (std::size_t n = 0; n <= 300; ++n)
        lengths.push_back(n);
    for (std::size_t n : {4096ul, 65536ul, 65543ul, 69999ul})
        lengths.push_back(n);

    for (std::size_t n : lengths) {
        std::span<const std::uint8_t> view(data.data(), n);
        std::uint32_t soft = net::crc32UpdateWith(
            net::Crc32Backend::software, 0xFFFFFFFFu, view);
        std::uint32_t hw = net::crc32UpdateWith(
            net::Crc32Backend::pclmul, 0xFFFFFFFFu, view);
        ASSERT_EQ(hw, soft) << "length " << n;
    }
}

/** Chunked hardware updates must compose exactly like the software
 *  incremental form (the AAL5 per-cell accumulation pattern). */
TEST(Crc32, PclmulIncrementalComposition)
{
    if (net::crc32Backend() != net::Crc32Backend::pclmul)
        GTEST_SKIP() << "no pclmul on this host/build";

    sim::Random rng(77);
    std::vector<std::uint8_t> data(9001);
    for (auto &b : data)
        b = static_cast<std::uint8_t>(rng.u32());

    std::uint32_t whole = net::crc32(data);
    for (std::size_t chunk : {48ul, 64ul, 100ul, 4096ul}) {
        std::uint32_t st = 0xFFFFFFFFu;
        for (std::size_t off = 0; off < data.size(); off += chunk) {
            std::size_t n =
                std::min(chunk, data.size() - off);
            st = net::crc32UpdateWith(
                net::Crc32Backend::pclmul, st,
                std::span(data.data() + off, n));
        }
        EXPECT_EQ(net::crc32Finish(st), whole) << "chunk " << chunk;
    }
}
