#include <gtest/gtest.h>

#include "eth/frame.hh"
#include "eth/mac_address.hh"
#include "sim/random.hh"

using namespace unet;
using eth::Frame;
using eth::MacAddress;

TEST(MacAddress, StringRoundTrip)
{
    auto mac = MacAddress::fromString("02:00:00:00:00:2a");
    EXPECT_EQ(mac.toString(), "02:00:00:00:00:2a");
    EXPECT_EQ(mac, MacAddress::fromIndex(42));
}

TEST(MacAddress, BroadcastAndMulticast)
{
    EXPECT_TRUE(MacAddress::broadcast().isBroadcast());
    EXPECT_TRUE(MacAddress::broadcast().isMulticast());
    EXPECT_FALSE(MacAddress::fromIndex(1).isBroadcast());
    EXPECT_FALSE(MacAddress::fromIndex(1).isMulticast());
    auto mcast = MacAddress::fromString("01:00:5e:00:00:01");
    EXPECT_TRUE(mcast.isMulticast());
    EXPECT_FALSE(mcast.isBroadcast());
}

TEST(MacAddress, OrderingAndPacking)
{
    auto a = MacAddress::fromIndex(1);
    auto b = MacAddress::fromIndex(2);
    EXPECT_LT(a, b);
    EXPECT_NE(a.toU64(), b.toU64());
    EXPECT_EQ(MacAddress().toU64(), 0u);
}

TEST(Frame, SizesMatch8023)
{
    Frame f;
    f.payload.assign(46, 0);
    EXPECT_EQ(f.frameBytes(), 64u);          // minimum legal frame
    EXPECT_EQ(f.wireBytes(), 64u + 8 + 12);  // + preamble + IFG

    f.payload.assign(1500, 0);
    EXPECT_EQ(f.frameBytes(), 1518u);        // maximum legal frame
}

TEST(Frame, ShortPayloadIsPaddedOnWire)
{
    Frame f;
    f.payload.assign(10, 0xAA);
    EXPECT_EQ(f.frameBytes(), 64u);
    auto raw = f.serialize();
    EXPECT_EQ(raw.size(), 64u);
}

TEST(Frame, SerializeParseRoundTrip)
{
    Frame f;
    f.dst = MacAddress::fromIndex(7);
    f.src = MacAddress::fromIndex(3);
    f.etherType = 0x88B5;
    f.payload = {1, 2, 3, 4, 5, 6, 7, 8};
    auto raw = f.serialize();

    auto parsed = Frame::parse(raw);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->dst, f.dst);
    EXPECT_EQ(parsed->src, f.src);
    EXPECT_EQ(parsed->etherType, f.etherType);
    // Padded payload: original bytes first, zeros after.
    ASSERT_GE(parsed->payload.size(), f.payload.size());
    for (std::size_t i = 0; i < f.payload.size(); ++i)
        EXPECT_EQ(parsed->payload[i], f.payload[i]);
    for (std::size_t i = f.payload.size(); i < parsed->payload.size(); ++i)
        EXPECT_EQ(parsed->payload[i], 0);
}

TEST(Frame, CorruptedFcsRejected)
{
    Frame f;
    f.dst = MacAddress::fromIndex(1);
    f.src = MacAddress::fromIndex(2);
    f.payload.assign(100, 0x55);
    auto raw = f.serialize();
    raw[20] ^= 0x01;
    EXPECT_FALSE(Frame::parse(raw).has_value());
}

TEST(Frame, TruncatedFrameRejected)
{
    Frame f;
    f.payload.assign(100, 0x55);
    auto raw = f.serialize();
    raw.resize(32);
    EXPECT_FALSE(Frame::parse(raw).has_value());
}

class FrameSizeSweep : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(FrameSizeSweep, RoundTripAtSize)
{
    sim::Random rng(GetParam());
    Frame f;
    f.dst = MacAddress::fromIndex(1);
    f.src = MacAddress::fromIndex(2);
    f.etherType = 0x88B5;
    f.payload.resize(GetParam());
    for (auto &b : f.payload)
        b = static_cast<std::uint8_t>(rng.u32());

    auto parsed = Frame::parse(f.serialize());
    ASSERT_TRUE(parsed.has_value());
    for (std::size_t i = 0; i < f.payload.size(); ++i)
        EXPECT_EQ(parsed->payload[i], f.payload[i]);
}

INSTANTIATE_TEST_SUITE_P(PayloadSizes, FrameSizeSweep,
                         ::testing::Values(0, 1, 45, 46, 47, 64, 100, 256,
                                           512, 1024, 1499, 1500));
