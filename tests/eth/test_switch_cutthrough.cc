#include <gtest/gtest.h>

#include "eth/switch.hh"
#include "sim/simulation.hh"

using namespace unet;
using namespace unet::sim::literals;

namespace {

class Sink : public eth::Station
{
  public:
    explicit Sink(sim::Simulation &s) : s(s) {}

    void
    frameArrived(const eth::Frame &f) override
    {
        ++count;
        stamps.push_back(s.now());
        (void)f;
    }

    sim::Simulation &s;
    int count = 0;
    std::vector<sim::Tick> stamps;
};

eth::Frame
makeFrame(int src, int dst, std::size_t payload = 1400)
{
    eth::Frame f;
    f.src = eth::MacAddress::fromIndex(static_cast<std::uint32_t>(src));
    f.dst = eth::MacAddress::fromIndex(static_cast<std::uint32_t>(dst));
    f.payload.assign(payload, 0x22);
    return f;
}

/** One-way latency through a switch for a given spec. */
sim::Tick
latency(eth::SwitchSpec spec, std::size_t payload)
{
    sim::Simulation s;
    eth::Switch sw(s, spec);
    Sink a(s), b(s);
    auto &tapA = sw.attach(a);
    auto &tapB = sw.attach(b);
    // Teach both addresses.
    tapA.transmit(makeFrame(1, 2, 46), {});
    tapB.transmit(makeFrame(2, 1, 46), {});
    s.run();
    b.stamps.clear();
    sim::Tick t0 = s.now();
    tapA.transmit(makeFrame(1, 2, payload), {});
    s.run();
    return b.stamps.at(0) - t0;
}

} // namespace

TEST(SwitchCutThrough, AvoidsReserialization)
{
    // For a large frame, a cut-through switch adds only its lag; a
    // store-and-forward switch pays a second full serialization.
    auto cut = eth::SwitchSpec::bay28115();
    auto saf = cut;
    saf.cutThrough = false;

    sim::Tick big_cut = latency(cut, 1400);
    sim::Tick big_saf = latency(saf, 1400);
    sim::Tick ser = sim::serializationTime(1400 + 38, 100e6);
    EXPECT_NEAR(static_cast<double>(big_saf - big_cut),
                static_cast<double>(ser - cut.cutThroughLag),
                static_cast<double>(1_us));
}

TEST(SwitchCutThrough, LatencyIndependentOfSizeBeyondWire)
{
    // Cut-through: switch-added latency is constant, so total latency
    // grows only with the (single) wire serialization.
    auto spec = eth::SwitchSpec::bay28115();
    sim::Tick small = latency(spec, 100);
    sim::Tick big = latency(spec, 1100);
    sim::Tick wire_delta = sim::serializationTime(1000, 100e6);
    EXPECT_NEAR(static_cast<double>(big - small),
                static_cast<double>(wire_delta),
                static_cast<double>(1_us));
}

TEST(SwitchCutThrough, FallsBackUnderContention)
{
    // Two senders to one output: the second frame must buffer and gets
    // store-and-forward treatment; it cannot overtake or interleave.
    sim::Simulation s;
    eth::Switch sw(s, eth::SwitchSpec::bay28115());
    Sink a(s), b(s), c(s);
    auto &tapA = sw.attach(a);
    auto &tapB = sw.attach(b);
    auto &tapC = sw.attach(c);
    tapA.transmit(makeFrame(1, 3, 46), {});
    tapB.transmit(makeFrame(2, 3, 46), {});
    tapC.transmit(makeFrame(3, 1, 46), {});
    s.run();
    c.stamps.clear();
    c.count = 0;

    for (int i = 0; i < 4; ++i) {
        tapA.transmit(makeFrame(1, 3, 1400), {});
        tapB.transmit(makeFrame(2, 3, 1400), {});
    }
    s.run();
    EXPECT_EQ(c.count, 8);
    // Arrivals must be spaced at least a serialization apart once the
    // output saturates.
    sim::Tick ser = sim::serializationTime(1438, 100e6);
    for (std::size_t i = 2; i < c.stamps.size(); ++i)
        EXPECT_GE(c.stamps[i] - c.stamps[i - 1], ser - 1_us);
}
