#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "eth/switch.hh"
#include "sim/simulation.hh"

using namespace unet;
using namespace unet::sim::literals;

namespace {

class Sink : public eth::Station
{
  public:
    void
    frameArrived(const eth::Frame &f) override
    {
        ++count;
        last = f;
        if (when)
            stamps.push_back(when());
    }

    int count = 0;
    eth::Frame last;
    std::function<sim::Tick()> when;
    std::vector<sim::Tick> stamps;
};

eth::Frame
makeFrame(int src, int dst, std::size_t payload_size = 46)
{
    eth::Frame f;
    f.src = eth::MacAddress::fromIndex(static_cast<std::uint32_t>(src));
    f.dst = eth::MacAddress::fromIndex(static_cast<std::uint32_t>(dst));
    f.payload.assign(payload_size, 0x5A);
    return f;
}

} // namespace

TEST(Switch, FloodsUnknownThenForwardsLearned)
{
    sim::Simulation s;
    eth::Switch sw(s);
    Sink a, b, c;
    auto &tapA = sw.attach(a);
    auto &tapB = sw.attach(b);
    sw.attach(c);

    // First frame: destination 2 unknown -> flooded to b and c.
    tapA.transmit(makeFrame(1, 2), {});
    s.run();
    EXPECT_EQ(b.count, 1);
    EXPECT_EQ(c.count, 1);
    EXPECT_EQ(sw.framesFlooded(), 1u);
    EXPECT_EQ(sw.learnedAddresses(), 1u); // learned station 1

    // Reply: destination 1 is now known -> forwarded only to a.
    tapB.transmit(makeFrame(2, 1), {});
    s.run();
    EXPECT_EQ(a.count, 1);
    EXPECT_EQ(c.count, 1); // unchanged
    EXPECT_EQ(sw.framesForwarded(), 1u);

    // Now 1 -> 2 goes only to b.
    tapA.transmit(makeFrame(1, 2), {});
    s.run();
    EXPECT_EQ(b.count, 2);
    EXPECT_EQ(c.count, 1);
}

TEST(Switch, BroadcastAlwaysFloods)
{
    sim::Simulation s;
    eth::Switch sw(s);
    Sink a, b, c;
    auto &tapA = sw.attach(a);
    sw.attach(b);
    sw.attach(c);

    eth::Frame f = makeFrame(1, 0);
    f.dst = eth::MacAddress::broadcast();
    tapA.transmit(f, {});
    s.run();
    EXPECT_EQ(a.count, 0);
    EXPECT_EQ(b.count, 1);
    EXPECT_EQ(c.count, 1);
}

TEST(Switch, StoreAndForwardAddsLatencyVersusDirectLink)
{
    sim::Simulation s;
    eth::Switch sw(s, eth::SwitchSpec::fn100());
    Sink a, b;
    auto &tapA = sw.attach(a);
    sw.attach(b);
    b.when = [&] { return s.now(); };

    tapA.transmit(makeFrame(1, 2, 46), {});
    s.run();
    ASSERT_EQ(b.stamps.size(), 1u);
    sim::Tick ser = sim::serializationTime(84, 100e6);
    // Two serializations (in + out), the fabric latency, two hops of
    // propagation.
    sim::Tick expect = 2 * ser + sw.spec().forwardLatency +
        2 * sw.spec().propDelay;
    EXPECT_EQ(b.stamps[0], expect);
}

TEST(Switch, Fn100SlowerThanBay28115)
{
    auto latency = [](eth::SwitchSpec spec) {
        sim::Simulation s;
        eth::Switch sw(s, spec);
        Sink a, b;
        auto &tapA = sw.attach(a);
        sw.attach(b);
        b.when = [&] { return s.now(); };
        tapA.transmit(makeFrame(1, 2), {});
        s.run();
        return b.stamps.at(0);
    };
    EXPECT_GT(latency(eth::SwitchSpec::fn100()),
              latency(eth::SwitchSpec::bay28115()));
}

TEST(Switch, ConcurrentPairsDoNotContend)
{
    // Two disjoint flows through the switch proceed in parallel —
    // the advantage over the shared hub.
    sim::Simulation s;
    eth::Switch sw(s);
    Sink a, b, c, d;
    auto &tapA = sw.attach(a);
    auto &tapB = sw.attach(b);
    auto &tapC = sw.attach(c);
    auto &tapD = sw.attach(d);

    // Teach the switch all four source addresses.
    tapA.transmit(makeFrame(1, 2), {});
    tapB.transmit(makeFrame(2, 1), {});
    tapC.transmit(makeFrame(3, 4), {});
    tapD.transmit(makeFrame(4, 3), {});
    s.run();
    EXPECT_EQ(sw.learnedAddresses(), 4u);
    a.count = b.count = c.count = d.count = 0;

    // Queue all frames up front; per-direction links serialize.
    const int frames = 20;
    sim::Tick t0 = s.now();
    for (int i = 0; i < frames; ++i) {
        tapA.transmit(makeFrame(1, 2, 1500), {});
        tapC.transmit(makeFrame(3, 4, 1500), {});
    }
    s.run();
    sim::Tick elapsed = s.now() - t0;
    // Each flow alone needs frames * 123.04 us; in parallel the total
    // should be close to one flow's time, not two.
    double one_flow = frames * sim::toMicroseconds(
        sim::serializationTime(1538, 100e6));
    EXPECT_LT(sim::toMicroseconds(elapsed), one_flow * 1.3);
    EXPECT_EQ(b.count, frames);
    EXPECT_EQ(d.count, frames);
}

TEST(Switch, OutputQueueOverflowDrops)
{
    sim::Simulation s;
    eth::SwitchSpec spec;
    spec.queueFrames = 4;
    eth::Switch sw(s, spec);
    Sink a, b, c;
    auto &tapA = sw.attach(a);
    auto &tapB = sw.attach(b);
    Sink dst;
    auto &tapD = sw.attach(dst);

    // Teach addresses.
    tapD.transmit(makeFrame(9, 1), {});
    s.run();

    // Two senders flood one output port faster than it drains.
    for (int i = 0; i < 40; ++i) {
        tapA.transmit(makeFrame(1, 9, 1500), {});
        tapB.transmit(makeFrame(2, 9, 1500), {});
    }
    s.run();
    EXPECT_GT(s.metrics().value("eth.switch.framesDropped"), 0.0);
    EXPECT_LT(dst.count, 80);
    (void)c;
}

TEST(Switch, HalfDuplexSharesSegment)
{
    sim::Simulation s;
    eth::SwitchSpec spec;
    spec.fullDuplex = false;
    eth::Switch half(s, spec);
    Sink a, b;
    auto &tapA = half.attach(a);
    auto &tapB = half.attach(b);

    // Teach addresses.
    tapA.transmit(makeFrame(1, 2), {});
    tapB.transmit(makeFrame(2, 1), {});
    s.run();
    a.count = b.count = 0;

    // Simultaneous bidirectional bulk: on half duplex each segment
    // carries both directions, roughly doubling the finish time
    // relative to full duplex.
    auto run_bulk = [&](eth::Switch &sw_ref, eth::Tap &ta, eth::Tap &tb) {
        sim::Tick t0 = s.now();
        for (int i = 0; i < 20; ++i) {
            ta.transmit(makeFrame(1, 2, 1500), {});
            tb.transmit(makeFrame(2, 1, 1500), {});
        }
        s.run();
        (void)sw_ref;
        return s.now() - t0;
    };
    sim::Tick half_time = run_bulk(half, tapA, tapB);

    sim::Simulation s2;
    eth::Switch full(s2);
    Sink a2, b2;
    auto &tapA2 = full.attach(a2);
    auto &tapB2 = full.attach(b2);
    tapA2.transmit(makeFrame(1, 2), {});
    tapB2.transmit(makeFrame(2, 1), {});
    s2.run();
    sim::Tick t0 = s2.now();
    for (int i = 0; i < 20; ++i) {
        tapA2.transmit(makeFrame(1, 2, 1500), {});
        tapB2.transmit(makeFrame(2, 1, 1500), {});
    }
    s2.run();
    sim::Tick full_time = s2.now() - t0;

    EXPECT_GT(half_time, full_time * 17 / 10);
}

TEST(Switch, PortLimitEnforced)
{
    sim::Simulation s;
    eth::Switch sw(s, eth::SwitchSpec::fn100()); // 8 ports
    std::vector<std::unique_ptr<Sink>> sinks;
    for (int i = 0; i < 8; ++i) {
        sinks.push_back(std::make_unique<Sink>());
        sw.attach(*sinks.back());
    }
    Sink extra;
    EXPECT_EXIT(sw.attach(extra), ::testing::ExitedWithCode(1),
                "ports");
}
