#include <gtest/gtest.h>

#include <vector>

#include "eth/hub.hh"
#include "sim/simulation.hh"

using namespace unet;
using namespace unet::sim::literals;

namespace {

class Sink : public eth::Station
{
  public:
    void
    frameArrived(const eth::Frame &f) override
    {
        ++count;
        last = f;
    }

    int count = 0;
    eth::Frame last;
};

eth::Frame
makeFrame(int src, int dst, std::size_t payload_size = 46)
{
    eth::Frame f;
    f.src = eth::MacAddress::fromIndex(static_cast<std::uint32_t>(src));
    f.dst = eth::MacAddress::fromIndex(static_cast<std::uint32_t>(dst));
    f.payload.assign(payload_size, 0x5A);
    return f;
}

} // namespace

TEST(Hub, BroadcastsToAllOtherStations)
{
    sim::Simulation s;
    eth::Hub hub(s);
    Sink a, b, c;
    auto &tapA = hub.attach(a);
    hub.attach(b);
    hub.attach(c);

    tapA.transmit(makeFrame(1, 2), {});
    s.run();
    // A repeater regenerates the signal on every port but the origin;
    // MAC filtering happens in the NIC, not the hub.
    EXPECT_EQ(a.count, 0);
    EXPECT_EQ(b.count, 1);
    EXPECT_EQ(c.count, 1);
}

TEST(Hub, SecondSenderDefersWhileBusy)
{
    sim::Simulation s;
    eth::Hub hub(s);
    Sink a, b;
    auto &tapA = hub.attach(a);
    auto &tapB = hub.attach(b);

    std::vector<sim::Tick> done;
    tapA.transmit(makeFrame(1, 2, 1500), [&](bool ok) {
        EXPECT_TRUE(ok);
        done.push_back(s.now());
    });
    // B starts well after A is on the wire: it senses carrier and defers.
    s.schedule(50_us, [&] {
        tapB.transmit(makeFrame(2, 1, 46), [&](bool ok) {
            EXPECT_TRUE(ok);
            done.push_back(s.now());
        });
    });
    s.run();
    ASSERT_EQ(done.size(), 2u);
    sim::Tick a_end = sim::serializationTime(1538, 100e6);
    EXPECT_EQ(done[0], a_end);
    EXPECT_GE(done[1], a_end + hub.collisions() * 0); // after A finishes
    EXPECT_GT(hub.deferrals(), 0u);
    EXPECT_EQ(hub.collisions(), 0u);
}

TEST(Hub, SimultaneousStartsCollideThenResolve)
{
    sim::Simulation s;
    eth::Hub hub(s);
    Sink a, b;
    auto &tapA = hub.attach(a);
    auto &tapB = hub.attach(b);

    int succeeded = 0;
    s.schedule(0, [&] {
        tapA.transmit(makeFrame(1, 2), [&](bool ok) { succeeded += ok; });
        tapB.transmit(makeFrame(2, 1), [&](bool ok) { succeeded += ok; });
    });
    s.run();
    EXPECT_EQ(succeeded, 2);
    EXPECT_GE(hub.collisions(), 1u);
    EXPECT_EQ(a.count, 1);
    EXPECT_EQ(b.count, 1);
}

TEST(Hub, ManyContendersAllEventuallySucceed)
{
    sim::Simulation s;
    eth::Hub hub(s);
    const int n = 8;
    std::vector<std::unique_ptr<Sink>> sinks;
    std::vector<eth::Tap *> taps;
    for (int i = 0; i < n; ++i) {
        sinks.push_back(std::make_unique<Sink>());
        taps.push_back(&hub.attach(*sinks.back()));
    }
    int succeeded = 0, failed = 0;
    s.schedule(0, [&] {
        for (int i = 0; i < n; ++i)
            taps[i]->transmit(makeFrame(i, (i + 1) % n, 256),
                              [&](bool ok) { ok ? ++succeeded : ++failed; });
    });
    s.run();
    EXPECT_EQ(succeeded + failed, n);
    EXPECT_EQ(failed, 0) << "backoff should resolve 8 contenders";
    EXPECT_GE(hub.collisions(), 1u);
    // Every successful frame reached the other n-1 stations.
    int total = 0;
    for (auto &sink : sinks)
        total += sink->count;
    EXPECT_EQ(total, succeeded * (n - 1));
}

TEST(Hub, SharedMediumHalvesPingPongThroughput)
{
    // Two stations alternating large frames share one 100 Mbps channel.
    sim::Simulation s;
    eth::Hub hub(s);
    Sink a, b;
    auto &tapA = hub.attach(a);
    auto &tapB = hub.attach(b);

    const int rounds = 50;
    std::function<void(int)> sendA, sendB;
    sendA = [&](int i) {
        if (i >= rounds)
            return;
        tapA.transmit(makeFrame(1, 2, 1500),
                      [&, i](bool) { sendB(i); });
    };
    sendB = [&](int i) {
        tapB.transmit(makeFrame(2, 1, 1500),
                      [&, i](bool) { sendA(i + 1); });
    };
    s.schedule(0, [&] { sendA(0); });
    sim::Tick end = s.run();

    double total_payload_bits = 2.0 * rounds * 1500 * 8;
    double rate = total_payload_bits / sim::toSeconds(end);
    // Both directions share ~97.5 Mbps of goodput.
    EXPECT_LT(rate / 1e6, 98.0);
    EXPECT_GT(rate / 1e6, 85.0);
}

TEST(Hub, BackoffIsDeterministicPerSeed)
{
    auto run = [](std::uint64_t seed) {
        sim::Simulation s(seed);
        eth::Hub hub(s);
        Sink a, b, c;
        auto &tapA = hub.attach(a);
        auto &tapB = hub.attach(b);
        hub.attach(c);
        s.schedule(0, [&] {
            tapA.transmit(makeFrame(1, 3), {});
            tapB.transmit(makeFrame(2, 3), {});
        });
        return s.run();
    };
    EXPECT_EQ(run(5), run(5));
}

TEST(Hub, BackoffCapDropsAndCounts)
{
    sim::Simulation s;
    eth::HubSpec spec;
    spec.maxAttempts = 1;
    eth::Hub hub(s, spec);
    Sink a, b, c;
    auto &tapA = hub.attach(a);
    auto &tapB = hub.attach(b);
    hub.attach(c);

    int failures = 0;
    s.schedule(0, [&] {
        tapA.transmit(makeFrame(1, 3),
                      [&](bool sent) { failures += !sent; });
        tapB.transmit(makeFrame(2, 3),
                      [&](bool sent) { failures += !sent; });
    });
    s.run();

    // Same-tick starts collide; with a single permitted attempt both
    // frames are abandoned and the failure is reported to the senders.
    EXPECT_EQ(failures, 2);
    EXPECT_EQ(c.count, 0);
    EXPECT_EQ(hub.collisions(), 1u);
    EXPECT_EQ(s.metrics().value("eth.hub.framesDropped"), 2.0);
    EXPECT_EQ(s.metrics().value("eth.hub.collisions"), 1.0);
}
