#include <gtest/gtest.h>

#include <vector>

#include "eth/link.hh"
#include "sim/simulation.hh"

using namespace unet;
using namespace unet::sim::literals;

namespace {

/** Test station that records arrivals. */
class Sink : public eth::Station
{
  public:
    void
    frameArrived(const eth::Frame &f) override
    {
        arrivals.push_back({f, 0});
        arrivals.back().second = when ? when() : 0;
    }

    std::function<sim::Tick()> when;
    std::vector<std::pair<eth::Frame, sim::Tick>> arrivals;
};

eth::Frame
makeFrame(std::size_t payload_size)
{
    eth::Frame f;
    f.dst = eth::MacAddress::fromIndex(2);
    f.src = eth::MacAddress::fromIndex(1);
    f.payload.assign(payload_size, 0xA5);
    return f;
}

} // namespace

TEST(FullDuplexLink, DeliversAfterSerializationAndPropagation)
{
    sim::Simulation s;
    eth::FullDuplexLink link(s, 100e6, 500_ns);
    Sink a, b;
    a.when = b.when = [&] { return s.now(); };
    auto &tapA = link.attach(a);
    link.attach(b);

    auto f = makeFrame(46); // 64-byte frame, 84 bytes on the wire
    sim::Tick tx_done = -1;
    tapA.transmit(f, [&](bool ok) {
        EXPECT_TRUE(ok);
        tx_done = s.now();
    });
    s.run();

    // 84 bytes at 100 Mbps = 6.72 us serialization.
    EXPECT_EQ(tx_done, sim::serializationTime(84, 100e6));
    ASSERT_EQ(b.arrivals.size(), 1u);
    EXPECT_EQ(b.arrivals[0].second, tx_done + 500_ns);
    EXPECT_TRUE(a.arrivals.empty()); // no loopback
}

TEST(FullDuplexLink, DirectionsDoNotContend)
{
    sim::Simulation s;
    eth::FullDuplexLink link(s, 100e6, 0);
    Sink a, b;
    a.when = b.when = [&] { return s.now(); };
    auto &tapA = link.attach(a);
    auto &tapB = link.attach(b);

    sim::Tick doneA = -1, doneB = -1;
    tapA.transmit(makeFrame(1500), [&](bool) { doneA = s.now(); });
    tapB.transmit(makeFrame(1500), [&](bool) { doneB = s.now(); });
    s.run();
    // Full duplex: both complete at the same time.
    EXPECT_EQ(doneA, doneB);
    EXPECT_EQ(link.framesDelivered(), 2u);
}

TEST(FullDuplexLink, BackToBackFramesQueue)
{
    sim::Simulation s;
    eth::FullDuplexLink link(s, 100e6, 0);
    Sink a, b;
    b.when = [&] { return s.now(); };
    auto &tapA = link.attach(a);
    link.attach(b);

    std::vector<sim::Tick> done;
    tapA.transmit(makeFrame(1500), [&](bool) { done.push_back(s.now()); });
    tapA.transmit(makeFrame(1500), [&](bool) { done.push_back(s.now()); });
    s.run();
    ASSERT_EQ(done.size(), 2u);
    EXPECT_EQ(done[1], 2 * done[0]); // serialized one after the other
}

TEST(FullDuplexLink, ThroughputMatchesLineRateMinusFraming)
{
    sim::Simulation s;
    eth::FullDuplexLink link(s, 100e6, 0);
    Sink a, b;
    auto &tapA = link.attach(a);
    link.attach(b);

    const int frames = 100;
    const std::size_t payload = 1500;
    for (int i = 0; i < frames; ++i)
        tapA.transmit(makeFrame(payload), {});
    sim::Tick end = s.run();

    double goodput = frames * payload * 8.0 / sim::toSeconds(end);
    // 1500/1538 of 100 Mbps = 97.5 Mbps.
    EXPECT_NEAR(goodput / 1e6, 97.5, 0.5);
}

TEST(FullDuplexLink, PayloadIntegrity)
{
    sim::Simulation s;
    eth::FullDuplexLink link(s, 100e6, 0);
    Sink a, b;
    auto &tapA = link.attach(a);
    link.attach(b);

    auto f = makeFrame(200);
    for (std::size_t i = 0; i < f.payload.size(); ++i)
        f.payload[i] = static_cast<std::uint8_t>(i);
    tapA.transmit(f, {});
    s.run();
    ASSERT_EQ(b.arrivals.size(), 1u);
    EXPECT_EQ(b.arrivals[0].first.payload, f.payload);
}
