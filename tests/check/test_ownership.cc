/**
 * @file
 * Unit and death tests for the buffer-ownership state machine and the
 * credit-window auditor, plus an end-to-end proof that a double-posted
 * send buffer is caught at the U-Net API boundary.
 */

#include <gtest/gtest.h>

#include "check/credits.hh"
#include "check/ownership.hh"
#include "tests/unet/fixtures.hh"

using namespace unet;
using namespace unet::check;
using namespace unet::test;
using namespace unet::sim::literals;

TEST(BufStateName, AllStatesNamed)
{
    EXPECT_STREQ(name(BufState::TxPosted), "posted-to-send");
    EXPECT_STREQ(name(BufState::TxAgent), "agent-owned (tx gather)");
    EXPECT_STREQ(name(BufState::RxPosted), "rx-posted (free queue)");
    EXPECT_STREQ(name(BufState::RxAgent), "agent-owned (rx fill)");
    EXPECT_STREQ(name(BufState::Delivered), "delivered");
}

#if defined(UNET_CHECK) && UNET_CHECK

TEST(Ownership, SendLifecycle)
{
    OwnershipTracker t(4096);
    t.postSend({0, 512});
    EXPECT_EQ(t.tracked(), 1u);
    EXPECT_EQ(t.bytesIn(BufState::TxPosted), 512u);

    t.claimSend({0, 512});
    EXPECT_EQ(t.bytesIn(BufState::TxAgent), 512u);

    t.releaseSend({0, 512});
    EXPECT_EQ(t.tracked(), 0u);
}

TEST(Ownership, ReceiveLifecycle)
{
    OwnershipTracker t(4096);
    t.postFree({1024, 2048});
    EXPECT_EQ(t.bytesIn(BufState::RxPosted), 2048u);

    t.claimRecv({1024, 2048});
    EXPECT_EQ(t.bytesIn(BufState::RxAgent), 2048u);

    // The message fills only part of the buffer; the descriptor and
    // the writes reference the truncated range.
    t.rxWrite({1024, 300});
    t.deliver({1024, 300});
    EXPECT_EQ(t.bytesIn(BufState::Delivered), 2048u);

    // Consuming the descriptor returns the whole region to the app.
    t.consume({1024, 300});
    EXPECT_EQ(t.tracked(), 0u);
}

TEST(Ownership, DropPathReturnsBufferToFreeQueue)
{
    OwnershipTracker t(4096);
    t.postFree({0, 2048});
    t.claimRecv({0, 2048});
    t.unclaimRecv({0, 2048});
    EXPECT_EQ(t.bytesIn(BufState::RxPosted), 2048u);

    // Re-claim, then lose it to a full free queue: the region leaves
    // the tracker entirely.
    t.claimRecv({0, 2048});
    t.releaseRecv({0, 2048});
    EXPECT_EQ(t.tracked(), 0u);
}

TEST(Ownership, AgentOpsAreLenientAboutUntrackedRegions)
{
    // Boot-time code and test harnesses push rings directly without
    // the tracked API; the agent-side hooks must tolerate that.
    OwnershipTracker t(4096);
    t.claimSend({0, 64});
    t.releaseSend({0, 64});
    t.claimRecv({128, 64});
    t.unclaimRecv({128, 64});
    t.rxWrite({256, 64});
    t.deliver({256, 64});
    t.consume({256, 64});
    EXPECT_EQ(t.tracked(), 0u);
}

TEST(Ownership, ZeroLengthPostsAreIgnored)
{
    OwnershipTracker t(4096);
    t.postSend({0, 0});
    t.postFree({64, 0});
    EXPECT_EQ(t.tracked(), 0u);
}

TEST(Ownership, DisjointRegionsTrackIndependently)
{
    OwnershipTracker t(8192);
    t.postSend({0, 1024});
    t.postFree({1024, 1024});
    t.postSend({4096, 512});
    EXPECT_EQ(t.tracked(), 3u);
    EXPECT_EQ(t.bytesIn(BufState::TxPosted), 1536u);
    EXPECT_EQ(t.bytesIn(BufState::RxPosted), 1024u);

    // Adjacent (touching, non-overlapping) regions are legal.
    t.releaseSend({0, 1024});
    t.postSend({0, 1024});
    EXPECT_EQ(t.tracked(), 3u);
}

TEST(OwnershipDeathTest, DoublePostSendPanics)
{
    OwnershipTracker t(4096);
    t.postSend({0, 512});
    EXPECT_DEATH(t.postSend({0, 512}), "overlaps region");
}

TEST(OwnershipDeathTest, OverlappingPostPanics)
{
    OwnershipTracker t(4096);
    t.postSend({256, 512});
    // Overlap from below, from above, and containment all panic.
    EXPECT_DEATH(t.postSend({0, 300}), "overlaps region");
    EXPECT_DEATH(t.postFree({700, 512}), "overlaps region");
    EXPECT_DEATH(t.postFree({300, 64}), "overlaps region");
}

TEST(OwnershipDeathTest, FreeWhilePostedToSendPanics)
{
    OwnershipTracker t(4096);
    t.postSend({0, 512});
    EXPECT_DEATH(t.postFree({0, 512}), "posted-to-send");
}

TEST(OwnershipDeathTest, OutOfBoundsDescriptorPanics)
{
    OwnershipTracker t(4096);
    EXPECT_DEATH(t.postSend({4000, 200}), "outside the");
    EXPECT_DEATH(t.postFree({0, 8192}), "outside the");
}

TEST(OwnershipDeathTest, WrongStateTransitionsPanic)
{
    OwnershipTracker t(4096);
    t.postFree({0, 1024});
    // A free-queue buffer gathered as send payload is corruption.
    EXPECT_DEATH(t.claimSend({0, 1024}), "rx-posted");
    // Delivering a buffer the agent never claimed is corruption.
    EXPECT_DEATH(t.deliver({0, 1024}), "rx-posted");

    t.claimRecv({0, 1024});
    t.deliver({0, 1024});
    // Receive data landing in an already-delivered buffer would
    // corrupt a message the application may be reading.
    EXPECT_DEATH(t.rxWrite({0, 100}), "delivered");
}

TEST(OwnershipDeathTest, ConsumeUndeliveredPanics)
{
    OwnershipTracker t(4096);
    t.postFree({0, 1024});
    EXPECT_DEATH(t.consume({0, 1024}), "expected delivered");
}

TEST(OwnershipDeathTest, ReferenceLargerThanRegionPanics)
{
    OwnershipTracker t(4096);
    t.postSend({0, 256});
    EXPECT_DEATH(t.claimSend({0, 512}), "exceeds the");
}

TEST(Credits, AcquireReleaseTracksInFlight)
{
    CreditWindow w;
    w.setLimit(4);
    EXPECT_EQ(w.held(), 0u);
    w.acquire();
    w.acquire();
    EXPECT_EQ(w.held(), 2u);
    w.release();
    EXPECT_EQ(w.held(), 1u);
    // Re-stating the same limit is fine (channels re-open lazily).
    w.setLimit(4);
}

TEST(CreditsDeathTest, OverflowAndUnderflowPanic)
{
    CreditWindow w;
    w.setLimit(2);
    w.acquire();
    w.acquire();
    EXPECT_DEATH(w.acquire(), "credit overflow");
    w.release();
    w.release();
    EXPECT_DEATH(w.release(), "credit underflow");
}

TEST(CreditsDeathTest, UnsizedWindowPanics)
{
    CreditWindow w;
    EXPECT_DEATH(w.acquire(), "before the window was sized");
}

TEST(CreditsDeathTest, ResizingTheWindowPanics)
{
    CreditWindow w;
    w.setLimit(4);
    EXPECT_DEATH(w.setLimit(8), "re-limited");
}

namespace {

/** Drive a U-Net/FE pair where the sender double-posts one buffer. */
void
doublePostScenario()
{
    sim::Simulation s;
    eth::FullDuplexLink link(s);
    FeNode a(s, link, 0), b(s, link, 1);

    Endpoint *ep_a = nullptr, *ep_b = nullptr;
    ChannelId chan_a = invalidChannel, chan_b = invalidChannel;

    sim::Process rx(s, "rx", [](sim::Process &) {});
    sim::Process tx(s, "tx", [&](sim::Process &self) {
        // Post the same 512-byte buffer twice back-to-back. The first
        // descriptor is still in flight (send queue or device ring)
        // when the second post lands: a zero-copy violation — the
        // second message could transmit bytes the first is reading.
        a.unet.send(self, *ep_a, fragmentSend(chan_a, {0, 512}));
        a.unet.send(self, *ep_a, fragmentSend(chan_a, {0, 512}));
    });

    ep_a = &a.unet.createEndpoint(&tx, {});
    ep_b = &b.unet.createEndpoint(&rx, {});
    UNetFe::connect(a.unet, *ep_a, b.unet, *ep_b, chan_a, chan_b);

    rx.start();
    tx.start(1_us);
    s.run();
}

} // namespace

TEST(OwnershipDeathTest, EndToEndDoublePostedSendBufferIsCaught)
{
    EXPECT_DEATH(doublePostScenario(), "postSend.*overlaps region");
}

TEST(Ownership, EndpointTracksPostedFreeBuffers)
{
    sim::Simulation s;
    eth::FullDuplexLink link(s);
    FeNode a(s, link, 0), b(s, link, 1);

    Endpoint *ep_a = nullptr, *ep_b = nullptr;
    ChannelId chan_a = invalidChannel, chan_b = invalidChannel;
    bool received = false;
    RecvDescriptor got;

    sim::Process rx(s, "rx", [&](sim::Process &self) {
        b.unet.postFree(self, *ep_b, {0, 2048});
        EXPECT_EQ(ep_b->ownership().bytesIn(BufState::RxPosted), 2048u);
        received = ep_b->wait(self, got, 10_ms);
    });
    sim::Process tx(s, "tx", [&](sim::Process &self) {
        auto data = pattern(400);
        ep_a->buffers().write({0, 400}, data);
        a.unet.send(self, *ep_a, fragmentSend(chan_a, {0, 400}));
    });

    ep_a = &a.unet.createEndpoint(&tx, {});
    ep_b = &b.unet.createEndpoint(&rx, {});
    UNetFe::connect(a.unet, *ep_a, b.unet, *ep_b, chan_a, chan_b);

    rx.start();
    tx.start(1_us);
    s.run();

    ASSERT_TRUE(received);
    ASSERT_FALSE(got.isSmall);
    // poll()/wait() consumed the receive descriptor: the buffer is
    // back in application hands and untracked.
    EXPECT_EQ(ep_b->ownership().tracked(), 0u);
    // The ring invariants hold after real traffic.
    ep_a->auditRings();
    ep_b->auditRings();
}

#else // !UNET_CHECK

TEST(Ownership, NoOpTrackerCompilesAndTracksNothing)
{
    OwnershipTracker t(4096);
    t.postSend({0, 512});
    t.postFree({1024, 512});
    EXPECT_EQ(t.tracked(), 0u);
    EXPECT_EQ(t.bytesIn(BufState::TxPosted), 0u);

    CreditWindow w;
    w.setLimit(1);
    w.acquire();
    w.acquire(); // no-op variant never panics
    EXPECT_EQ(w.held(), 0u);
}

#endif // UNET_CHECK
