/**
 * @file
 * Tests of the schedule-space model checker: exhaustive exploration
 * finds the planted order-dependence bug that a hundred perturbation
 * salts miss, and a serialized counterexample replays bit-for-bit.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "check/explore/explore.hh"
#include "check/explore/replay.hh"

namespace explore = unet::check::explore;

namespace {

const explore::Config &
config(const char *name)
{
    const explore::Config *c = explore::findConfig(name);
    if (!c)
        throw std::runtime_error(std::string("unknown config ") +
                                 name);
    return *c;
}

// --- the seeded interleaving bug -------------------------------------

/** Perturbation salts 0..100 — the whole range a CI matrix plausibly
 *  sweeps — all miss the planted credit double-return. */
TEST(ExploreSeededBug, SaltsMissIt)
{
    const explore::Config &c = config("seeded-credit-bug");
    for (std::uint64_t salt = 0; salt <= 100; ++salt) {
        explore::RunOutcome out = explore::runSalted(c, salt);
        EXPECT_FALSE(out.violated)
            << "salt " << salt << " unexpectedly hit the planted "
            << "bug: " << out.message;
        EXPECT_EQ(out.steps, 6u) << "salt " << salt;
    }
}

/** Exhaustive exploration finds it, with the full 6-event permutation
 *  space enumerated when the search is not stopped early. */
TEST(ExploreSeededBug, ExplorationFindsIt)
{
    const explore::Config &c = config("seeded-credit-bug");
    explore::Result res = explore::explore(c);
    ASSERT_EQ(res.violations.size(), 1u);
    EXPECT_NE(res.violations[0].message.find("credit underflow"),
              std::string::npos)
        << res.violations[0].message;
    EXPECT_FALSE(res.complete); // stopped at the violation
    EXPECT_EQ(res.maxEligible, 6u);
    EXPECT_FALSE(res.violations[0].schedule.empty());
}

/** With keep-going and no pruning the space is exactly 6! = 720
 *  schedules, of which exactly one is the planted violation. */
TEST(ExploreSeededBug, FullSpaceIs720Schedules)
{
    const explore::Config &c = config("seeded-credit-bug");
    explore::Options opts;
    opts.prune = false; // every permutation is a distinct end state
    opts.stopAtFirstViolation = false;
    explore::Result res = explore::explore(c, opts);
    EXPECT_EQ(res.runs, 720u);
    EXPECT_EQ(res.prunedRuns, 0u);
    EXPECT_EQ(res.violations.size(), 1u);
    // complete stays false on any violation: a violated run aborts
    // mid-schedule, so in general its suffix subtree was not covered.
    EXPECT_FALSE(res.complete);
}

/** The recorded counterexample re-executes to the same violation. */
TEST(ExploreSeededBug, CounterexampleReplays)
{
    const explore::Config &c = config("seeded-credit-bug");
    explore::Result res = explore::explore(c);
    ASSERT_EQ(res.violations.size(), 1u);
    const explore::Violation &v = res.violations[0];

    explore::RunOutcome out = explore::runSchedule(c, v.schedule);
    EXPECT_TRUE(out.violated);
    EXPECT_EQ(out.message, v.message);

    // Replay is deterministic: run it twice, get the identical
    // decision trace and end-state digest.
    explore::RunOutcome again = explore::runSchedule(c, v.schedule);
    EXPECT_EQ(again.violated, out.violated);
    EXPECT_EQ(again.message, out.message);
    EXPECT_EQ(again.digest, out.digest);
    ASSERT_EQ(again.schedule.size(), out.schedule.size());
    for (std::size_t i = 0; i < out.schedule.size(); ++i) {
        EXPECT_EQ(again.schedule[i].index, out.schedule[i].index);
        EXPECT_EQ(again.schedule[i].seq, out.schedule[i].seq);
    }
}

// --- replay file round-trip ------------------------------------------

TEST(ExploreReplayFile, RoundTrip)
{
    const explore::Config &c = config("seeded-credit-bug");
    explore::Result res = explore::explore(c);
    ASSERT_EQ(res.violations.size(), 1u);
    const explore::Violation &v = res.violations[0];

    std::ostringstream os;
    explore::writeReplay(os, c.name(), 0, v.message, v.schedule);
    std::istringstream is(os.str());
    auto replay = explore::readReplay(is);
    ASSERT_TRUE(replay.has_value());
    EXPECT_EQ(replay->config, c.name());
    EXPECT_EQ(replay->configSalt, 0u);
    ASSERT_EQ(replay->schedule.size(), v.schedule.size());
    for (std::size_t i = 0; i < v.schedule.size(); ++i) {
        EXPECT_EQ(replay->schedule[i].step, v.schedule[i].step);
        EXPECT_EQ(replay->schedule[i].when, v.schedule[i].when);
        EXPECT_EQ(replay->schedule[i].width, v.schedule[i].width);
        EXPECT_EQ(replay->schedule[i].index, v.schedule[i].index);
        EXPECT_EQ(replay->schedule[i].seq, v.schedule[i].seq);
    }

    // The deserialized schedule still reproduces the violation.
    explore::RunOutcome out =
        explore::runSchedule(c, replay->schedule, replay->configSalt);
    EXPECT_TRUE(out.violated);
    EXPECT_EQ(out.message, v.message);
}

TEST(ExploreReplayFile, RejectsMalformedInput)
{
    std::istringstream bad_magic("not-a-replay\nconfig x\n");
    EXPECT_FALSE(explore::readReplay(bad_magic).has_value());

    std::istringstream no_config(
        "unet-explore-replay v1\ndecisions 0\n");
    EXPECT_FALSE(explore::readReplay(no_config).has_value());

    std::istringstream truncated(
        "unet-explore-replay v1\nconfig fig5\nsalt 0\n"
        "decisions 2\n0 10 2 1 5\n");
    EXPECT_FALSE(explore::readReplay(truncated).has_value());

    std::istringstream unknown_key(
        "unet-explore-replay v1\nconfig fig5\nbogus 1\n"
        "decisions 0\n");
    EXPECT_FALSE(explore::readReplay(unknown_key).has_value());
}

// --- closed configs --------------------------------------------------

/** The Figure 5 ping-pong is schedule-closed: its event chain is
 *  fully serialized, so exploration exhausts in one schedule with no
 *  choice points — the strongest determinism statement the explorer
 *  can make about the latency rig. */
TEST(ExploreConfigs, Fig5Exhausts)
{
    explore::Result res = explore::explore(config("fig5"));
    EXPECT_TRUE(res.complete);
    EXPECT_TRUE(res.violations.empty());
    EXPECT_EQ(res.runs, 1u);
    EXPECT_EQ(res.choicePoints, 0u);
}

/** The demux race has real same-tick width (three senders) and still
 *  exhausts under digest pruning, violation-free. */
TEST(ExploreConfigs, DemuxExhausts)
{
    explore::Result res = explore::explore(config("demux"));
    EXPECT_TRUE(res.complete);
    EXPECT_TRUE(res.violations.empty());
    EXPECT_EQ(res.maxEligible, 3u);
    EXPECT_GT(res.runs, 1u);
    EXPECT_GT(res.prunedRuns, 0u) << "pruning should be doing work";
}

/** The batched-submission race — three fibers posting overlapping
 *  sendv trains against the i960's tx polls — exhausts under digest
 *  pruning with no violation: exactly-once, in-order, and credit
 *  conservation hold on every schedule, not just the FIFO one. */
TEST(ExploreConfigs, SendvRaceExhausts)
{
    explore::Result res = explore::explore(config("sendv-race"));
    EXPECT_TRUE(res.complete);
    EXPECT_TRUE(res.violations.empty());
    EXPECT_GT(res.runs, 1u) << "the race should have real width";
    EXPECT_GT(res.prunedRuns, 0u) << "pruning should be doing work";
    EXPECT_GE(res.maxEligible, 2u);
}

/** Pruning soundness with the fiber-progress digest token: the
 *  retransmit config (timer-driven go-back-N) must still exhaust
 *  violation-free, and pruning must prune *something* — i.e. the new
 *  token discriminates states without collapsing the search into
 *  never-pruning (which would show up as a run-count blowup here). */
TEST(ExploreConfigs, RetransmitExhaustsWithPruning)
{
    explore::Result res = explore::explore(config("retransmit"));
    EXPECT_TRUE(res.complete);
    EXPECT_TRUE(res.violations.empty());
    EXPECT_GT(res.runs, 0u);
}

/** Salted runs of a violation-free config are one path each through
 *  the same space the explorer covers. */
TEST(ExploreConfigs, DemuxSaltedRunsAreClean)
{
    const explore::Config &c = config("demux");
    for (std::uint64_t salt = 0; salt < 5; ++salt) {
        explore::RunOutcome out = explore::runSalted(c, salt);
        EXPECT_FALSE(out.violated) << "salt " << salt << ": "
                                   << out.message;
    }
}

/** Exploration is itself deterministic: two explorations of the same
 *  config report identical statistics. */
TEST(ExploreConfigs, ExplorationIsDeterministic)
{
    explore::Result first = explore::explore(config("demux"));
    explore::Result second = explore::explore(config("demux"));
    EXPECT_EQ(first.runs, second.runs);
    EXPECT_EQ(first.prunedRuns, second.prunedRuns);
    EXPECT_EQ(first.choicePoints, second.choicePoints);
}

// --- bounds ----------------------------------------------------------

TEST(ExploreBounds, RunBoundStopsEarly)
{
    const explore::Config &c = config("seeded-credit-bug");
    explore::Options opts;
    opts.prune = false;
    opts.stopAtFirstViolation = false;
    opts.bounds.maxRuns = 10;
    explore::Result res = explore::explore(c, opts);
    EXPECT_EQ(res.runs, 10u);
    EXPECT_FALSE(res.complete);
}

TEST(ExploreBounds, DepthBoundDefersBranches)
{
    const explore::Config &c = config("seeded-credit-bug");
    explore::Options opts;
    opts.prune = false;
    opts.stopAtFirstViolation = false;
    opts.bounds.maxChoiceDepth = 1;
    explore::Result res = explore::explore(c, opts);
    // Only the first choice point branches: the root run spawns 5
    // alternatives, each exploring defaults from there.
    EXPECT_EQ(res.runs, 6u);
    EXPECT_GT(res.deferredBranches, 0u);
    EXPECT_FALSE(res.complete) << "deferred branches bar completeness";
}

TEST(ExploreBounds, WidthBoundSamplesFrontier)
{
    const explore::Config &c = config("seeded-credit-bug");
    explore::Options opts;
    opts.prune = false;
    opts.stopAtFirstViolation = false;
    opts.bounds.maxBranchWidth = 2;
    explore::Result res = explore::explore(c, opts);
    EXPECT_GT(res.deferredBranches, 0u);
    EXPECT_FALSE(res.complete);

    // Deterministic sampling: same salt, same subset; different
    // salts may cover different subsets but equal-sized searches.
    explore::Result again = explore::explore(c, opts);
    EXPECT_EQ(res.runs, again.runs);
    EXPECT_EQ(res.deferredBranches, again.deferredBranches);
}

} // namespace
