/**
 * @file
 * Tests for the happens-before race auditor: planted cross-shard races
 * are detected with both access sites attributed and a replayable
 * salt, the clean reference topologies audit race-free, the canonical
 * shardability report is byte-stable across perturbation salts, and
 * the fiber suspension-point digest distinguishes states the explorer
 * would otherwise over-prune together.
 */

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "check/hb/report.hh"
#include "check/hb/topos.hh"
#include "sim/perturb.hh"
#include "sim/process.hh"
#include "sim/simulation.hh"

using namespace unet;
using namespace unet::check;

#if defined(UNET_CHECK) && UNET_CHECK

TEST(HbPlanted, WriteWriteRaceOnResidencyCache)
{
    hb::TopoResult r = hb::runTopo("planted-ww");
    ASSERT_FALSE(r.races.empty())
        << "the planted W/W race was not detected";

    bool found = false;
    for (const hb::RaceRecord &race : r.races) {
        if (std::string(race.kind) != "write/write")
            continue;
        found = true;
        // Both shard domains of the planted fibers, in either order.
        std::set<std::string> domains{race.firstDomain,
                                      race.secondDomain};
        EXPECT_EQ(domains,
                  (std::set<std::string>{"shardA", "shardB"}));
        // Both access sites must carry a real file:line (the
        // std::source_location of the touch() caller).
        EXPECT_STRNE(race.first.file, "");
        EXPECT_STRNE(race.second.file, "");
        EXPECT_GT(race.first.line, 0u);
        EXPECT_GT(race.second.line, 0u);
        EXPECT_STREQ(race.first.op, "touch");
        EXPECT_STREQ(race.second.op, "touch");
        // The record carries the active salt for replay.
        EXPECT_EQ(race.salt, sim::perturb::salt());
    }
    EXPECT_TRUE(found) << "no write/write race among "
                       << r.races.size() << " records";

    // The raced object is classified cross-shard in the report.
    EXPECT_NE(r.report.find("\"cross-shard\""), std::string::npos);
    EXPECT_NE(r.report.find("\"races\""), std::string::npos);
}

TEST(HbPlanted, ReadWriteRaceOnSendRing)
{
    hb::TopoResult r = hb::runTopo("planted-rw");
    ASSERT_FALSE(r.races.empty())
        << "the planted R/W race was not detected";

    bool found = false;
    for (const hb::RaceRecord &race : r.races) {
        if (std::string(race.kind) != "read/write")
            continue;
        found = true;
        EXPECT_NE(race.object.find("sendq"), std::string::npos)
            << race.object;
        // One side is the foreign monitor fiber's peek, the other the
        // owning node's ring write.
        std::set<std::string> domains{race.firstDomain,
                                      race.secondDomain};
        EXPECT_TRUE(domains.count("monitor")) << race.firstDomain
                                              << " vs "
                                              << race.secondDomain;
        EXPECT_TRUE(domains.count("node0"));
        EXPECT_TRUE(std::string(race.first.op) == "spy ring peek" ||
                    std::string(race.second.op) == "spy ring peek");
        EXPECT_STRNE(race.first.file, "");
        EXPECT_STRNE(race.second.file, "");
        EXPECT_EQ(race.salt, sim::perturb::salt());
    }
    EXPECT_TRUE(found) << "no read/write race among "
                       << r.races.size() << " records";
}

TEST(HbPlanted, DetectionHoldsUnderPerturbation)
{
    // The planted races are ordering *structure*, not schedule
    // accidents: every perturbation salt must find them.
    for (std::uint64_t salt = 1; salt <= 3; ++salt) {
        sim::perturb::ScopedSalt scoped(salt);
        hb::TopoResult r = hb::runTopo("planted-ww");
        ASSERT_FALSE(r.races.empty()) << "salt " << salt;
        EXPECT_EQ(r.races.front().salt, salt);
    }
}

TEST(HbClean, Fig5IsRaceFree)
{
    hb::TopoResult r = hb::runTopo("fig5");
    EXPECT_TRUE(r.races.empty())
        << r.races.size() << " race(s); first on '"
        << r.races.front().object << "'";
    EXPECT_FALSE(r.objects.empty());
    EXPECT_GT(r.chains, 0u);
    // The endpoint rings were exercised and stayed shard-local.
    EXPECT_NE(r.report.find("\"shard-local\""), std::string::npos);
    EXPECT_NE(r.report.find("unet-hb-shardability-v1"),
              std::string::npos);
}

TEST(HbClean, FaultScenarioIsRaceFree)
{
    hb::TopoResult r = hb::runTopo("fault");
    EXPECT_TRUE(r.races.empty())
        << r.races.size() << " race(s); first on '"
        << r.races.front().object << "'";
}

TEST(HbClean, ServeRigIsRaceFree)
{
    hb::TopoResult r = hb::runTopo("serve");
    EXPECT_TRUE(r.races.empty())
        << r.races.size() << " race(s); first on '"
        << r.races.front().object << "'";
    // The RPC dispatch table is the server's alone.
    EXPECT_NE(r.report.find(".rpc.dispatch"), std::string::npos);
}

TEST(HbReport, CanonicalReportStableAcrossSalts)
{
    // The canonical report reflects happens-before structure; the
    // perturbation salts change same-tick schedules and addresses,
    // neither of which may leak into the report bytes.
    hb::TopoResult base = hb::runTopo("fig5");
    for (std::uint64_t salt = 1; salt <= 5; ++salt) {
        sim::perturb::ScopedSalt scoped(salt);
        hb::TopoResult r = hb::runTopo("fig5");
        EXPECT_EQ(base.report, r.report)
            << "fig5 report diverges under salt " << salt;
    }
}

TEST(HbReport, VerboseSectionIsSupplemental)
{
    hb::TopoResult r = hb::runTopo("planted-ww");
    // The verbose form strictly extends the canonical form.
    EXPECT_NE(r.reportVerbose, r.report);
    EXPECT_NE(r.reportVerbose.find("\"verbose\""), std::string::npos);
    EXPECT_EQ(r.report.find("\"verbose\""), std::string::npos);
}

TEST(HbTopos, RegistryIsConsistent)
{
    EXPECT_GE(hb::topologies().size(), 5u);
    for (const hb::Topo &t : hb::topologies()) {
        EXPECT_NE(hb::findTopo(t.name), nullptr) << t.name;
        EXPECT_FALSE(t.summary.empty()) << t.name;
    }
    EXPECT_EQ(hb::findTopo("no-such-topo"), nullptr);
}

#endif // UNET_CHECK

// ---------------------------------------------------------------------
// Satellite: the fiber suspension-point token in the explorer digest.
// Two simulations reach the same point of progress — same simulated
// time, same fiber-progress counter, one fiber suspended — but one
// fiber sits in delay() and the other in waitOn(timeout). Without the
// suspension digest these states hash identically and the explorer
// would prune one as a duplicate of the other, even though only the
// waitOn state can be short-circuited by a notify. (This runs with
// UNET_CHECK both on and off: the digest is core sim state.)

namespace {

struct Probe
{
    sim::Tick now = 0;
    std::uint64_t fiberProgress = 0;
    std::uint64_t suspension = 0;
};

template <typename Body>
Probe
probeAt5us(Body body)
{
    sim::Simulation s;
    sim::WaitChannel ch;
    sim::Process p(s, "suspender",
                   [&](sim::Process &self) { body(self, ch); });
    Probe out;
    sim::Process probe(s, "probe", [&](sim::Process &self) {
        self.delay(sim::microseconds(5));
        out.now = s.now();
        out.fiberProgress = s.fiberProgress();
        out.suspension = s.suspensionDigest();
    });
    p.start();
    probe.start();
    s.run();
    return out;
}

} // namespace

TEST(SuspensionDigest, DistinguishesSuspensionReasonAtSameProgress)
{
    Probe delayed = probeAt5us([](sim::Process &self, sim::WaitChannel &) {
        self.delay(sim::microseconds(10));
    });
    Probe waiting = probeAt5us([](sim::Process &self, sim::WaitChannel &ch) {
        self.waitOn(ch, sim::microseconds(10));
    });

    // Identical by every pre-existing digest ingredient...
    EXPECT_EQ(delayed.now, waiting.now);
    EXPECT_EQ(delayed.fiberProgress, waiting.fiberProgress);
    // ...yet the states are NOT interchangeable, and the suspension
    // digest is what tells them apart.
    EXPECT_NE(delayed.suspension, 0u);
    EXPECT_NE(waiting.suspension, 0u);
    EXPECT_NE(delayed.suspension, waiting.suspension)
        << "explorer would over-prune: delay() and waitOn(timeout) "
           "states digest identically";
}

TEST(SuspensionDigest, ClearsOnResume)
{
    sim::Simulation s;
    sim::Process p(s, "p", [](sim::Process &self) {
        self.delay(sim::microseconds(1));
    });
    p.start();
    s.run();
    EXPECT_EQ(s.suspensionDigest(), 0u)
        << "suspension tokens must clear when fibers resume";
}
