/**
 * @file
 * Tests for the cross-fiber access checker: ContextGuard custody and
 * interleave detection, assertCaller impersonation checks, and
 * end-to-end proofs that the guards wired into Endpoint and the U-Net
 * drivers catch foreign-fiber access at the API boundary.
 */

#include <gtest/gtest.h>

#include "check/access.hh"
#include "sim/process.hh"
#include "sim/simulation.hh"
#include "tests/unet/fixtures.hh"
#include "unet/endpoint.hh"

using namespace unet;
using namespace unet::check;
using namespace unet::test;

#if defined(UNET_CHECK) && UNET_CHECK

namespace {

/** Run @p body inside a process fiber named @p name and drive the
 *  simulation to completion. */
void
runAs(sim::Simulation &s, const char *name,
      std::function<void(sim::Process &)> body)
{
    sim::Process p(s, name, std::move(body));
    p.start();
    s.run();
}

} // namespace

TEST(ContextGuard, MainContextAlwaysHoldsCustody)
{
    ContextGuard g("test structure");
    g.mutate("poke");                  // unbound, main context
    ContextGuard::Scope scope(g, "poke");
}

TEST(ContextGuard, OwnerFiberPasses)
{
    sim::Simulation s;
    ContextGuard g("test structure");
    runAs(s, "owner", [&](sim::Process &p) {
        g.bindOwner(&p);
        g.mutate("poke");
        ContextGuard::Scope scope(g, "poke");
    });
}

TEST(ContextGuard, UnboundGuardIsLenientForAnyFiber)
{
    sim::Simulation s;
    ContextGuard g("test structure");
    runAs(s, "anyone", [&](sim::Process &p) {
        (void)p;
        g.mutate("poke");
    });
}

TEST(ContextGuardDeath, ForeignFiberMutationDies)
{
    sim::Simulation s;
    ContextGuard g("test structure");
    sim::Process owner(s, "owner", [&](sim::Process &p) {
        g.bindOwner(&p);
    });
    owner.start();
    s.run();
    EXPECT_DEATH(
        {
            runAs(s, "intruder",
                  [&](sim::Process &) { g.mutate("poke"); });
        },
        "cross-fiber access");
}

TEST(ContextGuardDeath, InterleavedScopesAcrossYieldDie)
{
    // Fiber A enters a Scope and yields mid-update; fiber B then
    // enters a Scope on the same guard — the cooperative analogue of
    // a data race.
    EXPECT_DEATH(
        {
            sim::Simulation s;
            ContextGuard g("test structure");
            sim::WaitChannel never;
            sim::Process a(s, "a", [&](sim::Process &p) {
                ContextGuard::Scope scope(g, "update from a");
                p.waitOn(never, sim::microseconds(10));
            });
            sim::Process b(s, "b", [&](sim::Process &) {
                ContextGuard::Scope scope(g, "update from b");
            });
            a.start();
            b.start(sim::microseconds(1));
            s.run();
        },
        "interleaved access");
}

TEST(ContextGuard, SameContextScopeNestingIsFine)
{
    ContextGuard g("test structure");
    ContextGuard::Scope outer(g, "outer");
    ContextGuard::Scope inner(g, "inner");
}

TEST(AssertCaller, TruthfulCallerPasses)
{
    sim::Simulation s;
    runAs(s, "honest",
          [&](sim::Process &p) { assertCaller(p, "api entry"); });
}

TEST(AssertCaller, MainContextMayActForAnyProcess)
{
    sim::Simulation s;
    sim::Process idle(s, "idle", [](sim::Process &) {});
    assertCaller(idle, "harness acting on idle's behalf");
}

TEST(AssertCallerDeath, ImpersonationDies)
{
    EXPECT_DEATH(
        {
            sim::Simulation s;
            sim::Process victim(s, "victim", [](sim::Process &) {});
            runAs(s, "impostor", [&](sim::Process &) {
                assertCaller(victim, "api entry");
            });
        },
        "caller impersonation");
}

// --- End-to-end: the wired guards police the real API surface. ---

TEST(AccessWiringDeath, ForeignFiberEndpointWaitDies)
{
    EXPECT_DEATH(
        {
            sim::Simulation s;
            host::Memory memory(1 << 20);
            sim::Process owner(s, "owner", [](sim::Process &) {});
            Endpoint ep(s, memory, {}, &owner, 0);
            runAs(s, "intruder", [&](sim::Process &p) {
                RecvDescriptor rd;
                ep.wait(p, rd, sim::microseconds(1));
            });
        },
        "cross-fiber access|caller impersonation");
}

TEST(AccessWiringDeath, ForeignFiberEndpointPollDies)
{
    EXPECT_DEATH(
        {
            sim::Simulation s;
            host::Memory memory(1 << 20);
            sim::Process owner(s, "owner", [](sim::Process &) {});
            Endpoint ep(s, memory, {}, &owner, 0);
            runAs(s, "intruder", [&](sim::Process &) {
                RecvDescriptor rd;
                ep.poll(rd);
            });
        },
        "cross-fiber access");
}

TEST(AccessWiringDeath, ImpersonatedFeSendDies)
{
    EXPECT_DEATH(
        {
            sim::Simulation s;
            eth::FullDuplexLink link(s);
            FeNode node(s, link, 0);
            sim::Process owner(s, "owner", [](sim::Process &) {});
            Endpoint &ep = node.unet.createEndpoint(&owner, {});
            runAs(s, "impostor", [&](sim::Process &) {
                std::uint8_t byte = 0;
                node.unet.send(owner, ep, inlineSend(0, {&byte, 1}));
            });
        },
        "caller impersonation");
}

TEST(AccessWiring, OwnerRoundTripStaysClean)
{
    // The guards must not fire on the legitimate single-owner path:
    // run a normal FE ping and let every wired scope execute.
    sim::Simulation s;
    eth::FullDuplexLink link(s);
    FeNode a(s, link, 0);
    FeNode b(s, link, 1);
    sim::Process sender(s, "sender", [&](sim::Process &p) {
        Endpoint &ea = a.unet.createEndpoint(&p, {});
        Endpoint &eb = b.unet.createEndpoint(nullptr, {});
        ChannelId ca = invalidChannel, cb = invalidChannel;
        UNetFe::connect(a.unet, ea, b.unet, eb, ca, cb);
        std::array<std::uint8_t, 8> payload{};
        ASSERT_TRUE(a.unet.send(p, ea, inlineSend(ca, payload)));
        RecvDescriptor rd;
        ASSERT_TRUE(eb.wait(p, rd, sim::milliseconds(5)));
        EXPECT_EQ(rd.length, payload.size());
    });
    sender.start();
    s.run();
}

#else // !UNET_CHECK

TEST(ContextGuard, CompilesToNoOpWithoutUnetCheck)
{
    static_assert(sizeof(ContextGuard) == 1,
                  "ContextGuard must be empty when UNET_CHECK is OFF");
    ContextGuard g("test structure");
    g.mutate("poke");
    ContextGuard::Scope scope(g, "poke");
    sim::Simulation s;
    sim::Process idle(s, "idle", [](sim::Process &) {});
    assertCaller(idle, "noop");
}

#endif // UNET_CHECK
