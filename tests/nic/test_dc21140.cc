#include <gtest/gtest.h>

#include "eth/link.hh"
#include "nic/dc21140.hh"
#include "nic/i960.hh"

using namespace unet;
using namespace unet::sim::literals;

namespace {

struct Rig
{
    Rig()
        : link(s),
          hostA(s, "a", host::CpuSpec::pentium120(),
                host::BusSpec::pci()),
          hostB(s, "b", host::CpuSpec::pentium120(),
                host::BusSpec::pci()),
          nicA(hostA, link, eth::MacAddress::fromIndex(1)),
          nicB(hostB, link, eth::MacAddress::fromIndex(2))
    {
        // Post B's receive ring.
        for (std::size_t i = 0; i < nicB.rxRingSize(); ++i) {
            auto &d = nicB.rxDesc(i);
            d.bufOffset = static_cast<std::uint32_t>(
                hostB.memory().alloc(1536));
            d.bufLength = 1536;
            d.own = true;
        }
        nicB.interrupt().connect([this] { ++interrupts; });
    }

    /** Queue a frame on A's TX ring pointing at real host memory. */
    void
    queueFrame(std::size_t payload_len, std::uint8_t fill = 0x42)
    {
        eth::Frame f;
        f.dst = nicB.address();
        f.src = nicA.address();
        f.etherType = 0x88B5;
        f.payload.assign(payload_len, fill);
        auto raw = f.serialize();
        // Strip the FCS: the NIC generates it.
        raw.resize(raw.size() - eth::Frame::fcsBytes);

        std::size_t off = hostA.memory().alloc(raw.size());
        hostA.memory().write(off, raw);

        auto &d = nicA.txDesc(nicA.txTail());
        d.buf1Offset = static_cast<std::uint32_t>(off);
        d.buf1Length = static_cast<std::uint32_t>(raw.size());
        d.buf2Length = 0;
        d.own = true;
        nicA.bumpTxTail();
    }

    sim::Simulation s;
    eth::FullDuplexLink link;
    host::Host hostA, hostB;
    nic::Dc21140 nicA, nicB;
    int interrupts = 0;
};

} // namespace

TEST(Dc21140, TransmitsQueuedDescriptor)
{
    Rig rig;
    rig.queueFrame(100);
    rig.nicA.pollDemand();
    rig.s.run();

    EXPECT_EQ(rig.nicA.framesSent(), 1u);
    EXPECT_FALSE(rig.nicA.txDesc(0).own); // ownership returned
    EXPECT_TRUE(rig.nicA.txDesc(0).transmitted);
    EXPECT_EQ(rig.nicB.framesReceived(), 1u);
    EXPECT_EQ(rig.interrupts, 1);
}

TEST(Dc21140, ReceivedBytesLandInHostMemory)
{
    Rig rig;
    rig.queueFrame(64, 0x5C);
    rig.nicA.pollDemand();
    rig.s.run();

    auto &rx = rig.nicB.rxDesc(0);
    EXPECT_TRUE(rx.complete);
    auto raw = rig.hostB.memory().read(rx.bufOffset, rx.frameLength);
    auto frame = eth::Frame::parse(raw);
    ASSERT_TRUE(frame.has_value());
    EXPECT_EQ(frame->src, rig.nicA.address());
    EXPECT_EQ(frame->payload[0], 0x5C);
}

TEST(Dc21140, ProcessesRingUntilOwnershipStops)
{
    Rig rig;
    for (int i = 0; i < 5; ++i)
        rig.queueFrame(100);
    rig.nicA.pollDemand(); // one kick services all five
    rig.s.run();
    EXPECT_EQ(rig.nicA.framesSent(), 5u);
    EXPECT_EQ(rig.nicB.framesReceived(), 5u);
}

TEST(Dc21140, MissedFrameWhenNoRxDescriptor)
{
    Rig rig;
    // Take away B's buffers.
    for (std::size_t i = 0; i < rig.nicB.rxRingSize(); ++i)
        rig.nicB.rxDesc(i).own = false;
    rig.queueFrame(100);
    rig.nicA.pollDemand();
    rig.s.run();
    EXPECT_EQ(rig.nicB.framesReceived(), 0u);
    EXPECT_EQ(rig.nicB.rxMissed(), 1u);
    EXPECT_EQ(rig.interrupts, 0);
}

TEST(Dc21140, IgnoresFramesForOtherStations)
{
    Rig rig;
    eth::Frame f;
    f.dst = eth::MacAddress::fromIndex(99); // neither A nor B
    f.src = rig.nicA.address();
    f.payload.assign(60, 1);
    auto raw = f.serialize();
    raw.resize(raw.size() - eth::Frame::fcsBytes);
    std::size_t off = rig.hostA.memory().alloc(raw.size());
    rig.hostA.memory().write(off, raw);
    auto &d = rig.nicA.txDesc(0);
    d.buf1Offset = static_cast<std::uint32_t>(off);
    d.buf1Length = static_cast<std::uint32_t>(raw.size());
    d.own = true;
    rig.nicA.pollDemand();
    rig.s.run();
    EXPECT_EQ(rig.nicB.framesReceived(), 0u);
    EXPECT_EQ(rig.nicB.rxMissed(), 0u);
}

TEST(Dc21140, TwoBufferGather)
{
    Rig rig;
    // Header in one buffer, payload in another (the U-Net/FE layout).
    eth::Frame f;
    f.dst = rig.nicB.address();
    f.src = rig.nicA.address();
    f.etherType = 0x88B5;
    std::vector<std::uint8_t> hdr_bytes;
    const auto &dst = f.dst.raw();
    const auto &src = f.src.raw();
    hdr_bytes.insert(hdr_bytes.end(), dst.begin(), dst.end());
    hdr_bytes.insert(hdr_bytes.end(), src.begin(), src.end());
    hdr_bytes.push_back(0x88);
    hdr_bytes.push_back(0xB5);
    auto payload = std::vector<std::uint8_t>(100, 0x77);

    std::size_t hoff = rig.hostA.memory().alloc(hdr_bytes.size());
    rig.hostA.memory().write(hoff, hdr_bytes);
    std::size_t poff = rig.hostA.memory().alloc(payload.size());
    rig.hostA.memory().write(poff, payload);

    auto &d = rig.nicA.txDesc(0);
    d.buf1Offset = static_cast<std::uint32_t>(hoff);
    d.buf1Length = static_cast<std::uint32_t>(hdr_bytes.size());
    d.buf2Offset = static_cast<std::uint32_t>(poff);
    d.buf2Length = static_cast<std::uint32_t>(payload.size());
    d.own = true;
    rig.nicA.pollDemand();
    rig.s.run();

    auto &rx = rig.nicB.rxDesc(0);
    ASSERT_TRUE(rx.complete);
    auto raw = rig.hostB.memory().read(rx.bufOffset, rx.frameLength);
    auto frame = eth::Frame::parse(raw);
    ASSERT_TRUE(frame.has_value());
    EXPECT_EQ(frame->payload.size(), 100u);
    EXPECT_EQ(frame->payload[50], 0x77);
}

TEST(I960, SerializesWork)
{
    sim::Simulation s;
    nic::I960 cpu(s);
    std::vector<sim::Tick> done;
    cpu.run(10_us, [&] { done.push_back(s.now()); });
    cpu.run(5_us, [&] { done.push_back(s.now()); });
    s.run();
    ASSERT_EQ(done.size(), 2u);
    EXPECT_EQ(done[0], 10_us);
    EXPECT_EQ(done[1], 15_us);
    EXPECT_EQ(cpu.busyTime(), 15_us);
    EXPECT_EQ(cpu.workItems(), 2u);
}

TEST(I960, IdleGapsDoNotAccumulate)
{
    sim::Simulation s;
    nic::I960 cpu(s);
    sim::Tick done = -1;
    s.schedule(100_us, [&] { cpu.run(3_us, [&] { done = s.now(); }); });
    s.run();
    EXPECT_EQ(done, 103_us);
}
