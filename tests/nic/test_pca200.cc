#include <gtest/gtest.h>

#include "tests/unet/fixtures.hh"

using namespace unet;
using namespace unet::test;
using namespace unet::sim::literals;

namespace {

/** Send one inline message from star node 0 to node 1. */
void
sendOne(sim::Simulation &s, AtmStar &star, Endpoint *epA,
        ChannelId chanA, sim::Process &tx, std::size_t size = 20)
{
    auto data = pattern(size);
    star[0].unet.send(tx, *epA, inlineSend(chanA, data));
    (void)s;
}

} // namespace

TEST(Pca200, WeightedPollingFavorsActiveEndpoints)
{
    // The second of two back-to-back sends sees the short "active"
    // poll latency; a long-idle endpoint pays the idle latency again.
    sim::Simulation s;
    AtmStar star(s, 2);

    Endpoint *epA = nullptr, *epB = nullptr;
    ChannelId chanA = invalidChannel, chanB = invalidChannel;
    std::vector<sim::Tick> arrivals;

    sim::Process rx(s, "rx", [&](sim::Process &self) {
        RecvDescriptor rd;
        while (epB->wait(self, rd, sim::seconds(3)))
            arrivals.push_back(s.now());
    });
    std::vector<sim::Tick> sends;
    sim::Process tx(s, "tx", [&](sim::Process &self) {
        sends.push_back(s.now());
        sendOne(s, star, epA, chanA, tx);
        // Queue drains; endpoint is now "active".
        self.delay(100_us);
        sends.push_back(s.now());
        sendOne(s, star, epA, chanA, tx);
        // Wait past the activity window; endpoint is idle again.
        self.delay(star[0].nic.spec().activityWindow + 1_ms);
        sends.push_back(s.now());
        sendOne(s, star, epA, chanA, tx);
    });

    epA = &star[0].unet.createEndpoint(&tx, {});
    epB = &star[1].unet.createEndpoint(&rx, {});
    UNetAtm::connect(star[0].unet, *epA, star.ports[0], star[1].unet,
                     *epB, star.ports[1], star.signalling, chanA, chanB);
    rx.start();
    tx.start();
    s.run();

    ASSERT_EQ(arrivals.size(), 3u);
    ASSERT_EQ(sends.size(), 3u);
    // Path latency of message 2 (active poll) is shorter than message 1
    // and message 3 (idle poll).
    sim::Tick lat1 = arrivals[0] - sends[0];
    sim::Tick lat2 = arrivals[1] - sends[1];
    sim::Tick lat3 = arrivals[2] - sends[2];
    EXPECT_LT(lat2, lat1);
    EXPECT_GT(lat3, lat2);
    sim::Tick poll_gap = star[0].nic.spec().txPollIdle -
        star[0].nic.spec().txPollActive;
    EXPECT_NEAR(static_cast<double>(lat1 - lat2),
                static_cast<double>(poll_gap),
                static_cast<double>(1_us));
}

TEST(Pca200, FifoOverflowCounts)
{
    sim::Simulation s;
    nic::Pca200Spec spec;
    spec.rxFifoCells = 4;
    // Make the i960 glacial so the FIFO backs up.
    spec.rxSingleCell = sim::milliseconds(1);

    host::Host hostA(s, "a", host::CpuSpec::pentium120(),
                     host::BusSpec::pci());
    host::Host hostB(s, "b", host::CpuSpec::pentium120(),
                     host::BusSpec::pci());
    atm::AtmLink link(s, atm::LinkSpec::oc3());
    nic::Pca200 nicA(hostA, link);
    nic::Pca200 nicB(hostB, link, spec);
    UNetAtm ua(hostA, nicA), ub(hostB, nicB);

    Endpoint *epA = nullptr, *epB = nullptr;
    ChannelId chanA = invalidChannel, chanB = invalidChannel;

    sim::Process rx(s, "rx", [](sim::Process &) {});
    sim::Process tx(s, "tx", [&](sim::Process &self) {
        auto data = pattern(20);
        for (int i = 0; i < 32; ++i)
            ua.send(self, *epA, inlineSend(chanA, data));
    });

    epA = &ua.createEndpoint(&tx, {});
    epB = &ub.createEndpoint(&rx, {});
    UNetAtm::connectDirect(ua, *epA, ub, *epB, 40, chanA, chanB);
    tx.start();
    s.runUntil(sim::milliseconds(10));

    EXPECT_GT(nicB.fifoOverflows(), 0u);
}

TEST(Pca200, RemoveVciStopsDelivery)
{
    sim::Simulation s;
    AtmStar star(s, 2);

    Endpoint *epA = nullptr, *epB = nullptr;
    ChannelId chanA = invalidChannel, chanB = invalidChannel;
    bool got = false;

    sim::Process rx(s, "rx", [&](sim::Process &self) {
        RecvDescriptor rd;
        got = epB->wait(self, rd, 5_ms);
    });
    sim::Process tx(s, "tx", [&](sim::Process &self) {
        auto data = pattern(20);
        star[0].unet.send(self, *epA, inlineSend(chanA, data));
    });

    epA = &star[0].unet.createEndpoint(&tx, {});
    epB = &star[1].unet.createEndpoint(&rx, {});
    UNetAtm::connect(star[0].unet, *epA, star.ports[0], star[1].unet,
                     *epB, star.ports[1], star.signalling, chanA, chanB);

    // Tear down the receive demux before the cell lands.
    star[1].nic.removeVci(epB->channel(chanB).vci);

    rx.start();
    tx.start();
    s.run();
    EXPECT_FALSE(got);
    EXPECT_EQ(star[1].nic.badVciCells(), 1u);
}

TEST(Pca200, CellAndMessageStats)
{
    sim::Simulation s;
    AtmStar star(s, 2);

    Endpoint *epA = nullptr, *epB = nullptr;
    ChannelId chanA = invalidChannel, chanB = invalidChannel;

    sim::Process rx(s, "rx", [&](sim::Process &self) {
        // Only the owner may post buffers (protection).
        star[1].unet.postFree(self, *epB, {0, 1024});
        RecvDescriptor rd;
        int n = 0;
        while (n < 3 && epB->wait(self, rd, 5_ms))
            ++n;
    });
    sim::Process tx(s, "tx", [&](sim::Process &self) {
        auto small = pattern(20);
        star[0].unet.send(self, *epA, inlineSend(chanA, small));
        star[0].unet.send(self, *epA, inlineSend(chanA, small));
        epA->buffers().write({0, 200}, pattern(200));
        star[0].unet.send(self, *epA, fragmentSend(chanA, {0, 200}));
    });

    epA = &star[0].unet.createEndpoint(&tx, {});
    epB = &star[1].unet.createEndpoint(&rx, {});
    UNetAtm::connect(star[0].unet, *epA, star.ports[0], star[1].unet,
                     *epB, star.ports[1], star.signalling, chanA, chanB);

    rx.start();
    tx.start(1_us);
    s.run();

    // 1 + 1 + ceil((200+8)/48)=5 cells.
    EXPECT_EQ(star[0].nic.cellsSent(), 7u);
    EXPECT_EQ(star[0].nic.messagesSent(), 3u);
    EXPECT_EQ(star[1].nic.cellsReceived(), 7u);
    EXPECT_EQ(star[1].nic.messagesDelivered(), 3u);
}
