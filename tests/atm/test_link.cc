#include <gtest/gtest.h>

#include <vector>

#include "atm/link.hh"
#include "sim/simulation.hh"

using namespace unet;
using namespace unet::atm;
using namespace unet::sim::literals;

namespace {

class Sink : public CellSink
{
  public:
    explicit Sink(sim::Simulation &s) : s(s) {}

    void
    cellArrived(const Cell &cell) override
    {
        cells.push_back(cell);
        stamps.push_back(s.now());
    }

    sim::Simulation &s;
    std::vector<Cell> cells;
    std::vector<sim::Tick> stamps;
};

Cell
makeCell(Vci vci, std::uint8_t fill = 0xAB, bool last = false)
{
    Cell c;
    c.vci = vci;
    c.endOfPdu = last;
    c.payload.fill(fill);
    return c;
}

} // namespace

TEST(LinkSpec, PayloadCeilingsMatchPaper)
{
    // "the maximum bandwidth of the link is not 155 Mbps, but rather
    // 138 Mbps" (OC-3c) and 120 Mbps for the TAXI link.
    EXPECT_NEAR(LinkSpec::oc3().payloadCeilingBps() / 1e6, 138.0, 0.5);
    EXPECT_NEAR(LinkSpec::taxi140().payloadCeilingBps() / 1e6, 120.0, 0.5);
}

TEST(AtmLink, CellDeliveryTiming)
{
    sim::Simulation s;
    AtmLink link(s, LinkSpec::oc3());
    Sink a(s), b(s);
    auto &tapA = link.attach(a);
    link.attach(b);

    tapA.send(makeCell(5));
    s.run();
    ASSERT_EQ(b.cells.size(), 1u);
    EXPECT_EQ(b.cells[0].vci, 5);
    EXPECT_EQ(b.stamps[0],
              link.spec().cellTime() + link.spec().propDelay);
}

TEST(AtmLink, CellsSerializeBackToBack)
{
    sim::Simulation s;
    AtmLink link(s, LinkSpec::oc3());
    Sink a(s), b(s);
    auto &tapA = link.attach(a);
    link.attach(b);

    for (int i = 0; i < 3; ++i)
        tapA.send(makeCell(static_cast<Vci>(i)));
    s.run();
    ASSERT_EQ(b.stamps.size(), 3u);
    EXPECT_EQ(b.stamps[1] - b.stamps[0], link.spec().cellTime());
    EXPECT_EQ(b.stamps[2] - b.stamps[1], link.spec().cellTime());
}

TEST(AtmLink, FullDuplexDirectionsIndependent)
{
    sim::Simulation s;
    AtmLink link(s, LinkSpec::taxi140());
    Sink a(s), b(s);
    auto &tapA = link.attach(a);
    auto &tapB = link.attach(b);

    tapA.send(makeCell(1));
    tapB.send(makeCell(2));
    s.run();
    ASSERT_EQ(a.stamps.size(), 1u);
    ASSERT_EQ(b.stamps.size(), 1u);
    EXPECT_EQ(a.stamps[0], b.stamps[0]); // no contention
}

TEST(AtmLink, PayloadThroughputHitsCeiling)
{
    sim::Simulation s;
    AtmLink link(s, LinkSpec::taxi140());
    Sink a(s), b(s);
    auto &tapA = link.attach(a);
    link.attach(b);

    const int cells = 1000;
    for (int i = 0; i < cells; ++i)
        tapA.send(makeCell(1));
    sim::Tick end = s.run();
    double payload_bps =
        cells * Cell::payloadBytes * 8.0 / sim::toSeconds(end);
    EXPECT_NEAR(payload_bps / 1e6, 120.0, 1.0);
}

TEST(AtmLink, PayloadIntegrity)
{
    sim::Simulation s;
    AtmLink link(s, LinkSpec::oc3());
    Sink a(s), b(s);
    auto &tapA = link.attach(a);
    link.attach(b);

    Cell c = makeCell(7, 0, true);
    for (std::size_t i = 0; i < c.payload.size(); ++i)
        c.payload[i] = static_cast<std::uint8_t>(i * 3);
    tapA.send(c);
    s.run();
    ASSERT_EQ(b.cells.size(), 1u);
    EXPECT_EQ(b.cells[0].payload, c.payload);
    EXPECT_TRUE(b.cells[0].endOfPdu);
}

TEST(AtmLink, NextFreeAtTracksQueue)
{
    sim::Simulation s;
    AtmLink link(s, LinkSpec::oc3());
    Sink a(s), b(s);
    auto &tapA = link.attach(a);
    link.attach(b);

    sim::Tick t1 = tapA.nextFreeAt();
    EXPECT_EQ(t1, link.spec().cellTime());
    tapA.send(makeCell(1));
    EXPECT_EQ(tapA.nextFreeAt(), 2 * link.spec().cellTime());
}

TEST(AtmLink, SendTrainMatchesPerCellTiming)
{
    // A train must be timing-equivalent to send() per cell at the same
    // tick: each cell serializes at its own boundary and arrives
    // separately.
    sim::Simulation s1;
    AtmLink loop(s1, LinkSpec::oc3());
    Sink la(s1), lb(s1);
    auto &loopTap = loop.attach(la);
    loop.attach(lb);
    for (int i = 0; i < 5; ++i)
        loopTap.send(makeCell(static_cast<Vci>(i)));
    s1.run();

    sim::Simulation s2;
    AtmLink train(s2, LinkSpec::oc3());
    Sink ta(s2), tb(s2);
    auto &trainTap = train.attach(ta);
    train.attach(tb);
    std::vector<Cell> cells;
    for (int i = 0; i < 5; ++i)
        cells.push_back(makeCell(static_cast<Vci>(i)));
    trainTap.sendTrain(cells);
    s2.run();

    ASSERT_EQ(tb.stamps.size(), lb.stamps.size());
    for (std::size_t i = 0; i < lb.stamps.size(); ++i) {
        EXPECT_EQ(tb.stamps[i], lb.stamps[i]) << "cell " << i;
        EXPECT_EQ(tb.cells[i].vci, lb.cells[i].vci) << "cell " << i;
    }
}

TEST(AtmLink, SendTrainIsOnePendingEvent)
{
    // The batching point: N back-to-back cells in flight are covered by
    // one pending delivery event (plus nothing else), not N.
    sim::Simulation s;
    AtmLink link(s, LinkSpec::oc3());
    Sink a(s), b(s);
    auto &tapA = link.attach(a);
    link.attach(b);

    std::vector<Cell> cells(16, makeCell(3));
    tapA.sendTrain(cells);
    EXPECT_EQ(s.events().pendingCount(), 1u);
    s.run();
    EXPECT_EQ(b.cells.size(), 16u);
}

TEST(AtmLink, SendTrainCompletionFiresAtLastBoundary)
{
    sim::Simulation s;
    AtmLink link(s, LinkSpec::oc3());
    Sink a(s), b(s);
    auto &tapA = link.attach(a);
    link.attach(b);

    std::vector<Cell> cells(4, makeCell(9));
    sim::Tick done_at = -1;
    tapA.sendTrain(cells, [&] { done_at = s.now(); });
    s.run();
    EXPECT_EQ(done_at, 4 * link.spec().cellTime());
}
