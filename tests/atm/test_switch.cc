#include <gtest/gtest.h>

#include <vector>

#include "atm/switch.hh"
#include "sim/logging.hh"
#include "sim/simulation.hh"

using namespace unet;
using namespace unet::atm;
using namespace unet::sim::literals;

namespace {

class Sink : public CellSink
{
  public:
    explicit Sink(sim::Simulation &s) : s(s) {}

    void
    cellArrived(const Cell &cell) override
    {
        cells.push_back(cell);
        stamps.push_back(s.now());
    }

    sim::Simulation &s;
    std::vector<Cell> cells;
    std::vector<sim::Tick> stamps;
};

Cell
makeCell(Vci vci, std::uint8_t fill = 0x11)
{
    Cell c;
    c.vci = vci;
    c.payload.fill(fill);
    return c;
}

struct Star
{
    explicit Star(sim::Simulation &s, int hosts,
                  LinkSpec link_spec = LinkSpec::oc3())
        : sw(s, SwitchSpec::asx200())
    {
        for (int i = 0; i < hosts; ++i) {
            links.push_back(std::make_unique<AtmLink>(s, link_spec));
            sinks.push_back(std::make_unique<Sink>(s));
            taps.push_back(&links.back()->attach(*sinks.back()));
            ports.push_back(sw.addPort(*links.back()));
        }
    }

    Switch sw;
    std::vector<std::unique_ptr<AtmLink>> links;
    std::vector<std::unique_ptr<Sink>> sinks;
    std::vector<CellTap *> taps;
    std::vector<std::size_t> ports;
};

} // namespace

TEST(AtmSwitch, RoutesAndRewritesVci)
{
    sim::Simulation s;
    Star star(s, 2);
    star.sw.addRoute(star.ports[0], 40, star.ports[1], 50);

    star.taps[0]->send(makeCell(40));
    s.run();
    ASSERT_EQ(star.sinks[1]->cells.size(), 1u);
    EXPECT_EQ(star.sinks[1]->cells[0].vci, 50);
    EXPECT_EQ(star.sw.cellsForwarded(), 1u);
}

TEST(AtmSwitch, ForwardDelayIsSevenMicroseconds)
{
    sim::Simulation s;
    Star star(s, 2);
    star.sw.addRoute(star.ports[0], 40, star.ports[1], 50);

    star.taps[0]->send(makeCell(40));
    s.run();
    ASSERT_EQ(star.sinks[1]->stamps.size(), 1u);
    sim::Tick cell = star.links[0]->spec().cellTime();
    sim::Tick prop = star.links[0]->spec().propDelay;
    // in-serialization + prop + 7 us + out-serialization + prop.
    EXPECT_EQ(star.sinks[1]->stamps[0], 2 * cell + 2 * prop + 7_us);
}

TEST(AtmSwitch, UnroutedCellsDropAndCount)
{
    sim::Simulation s;
    Star star(s, 2);
    sim::setLogLevel(sim::LogLevel::Silent);
    star.taps[0]->send(makeCell(99));
    s.run();
    sim::setLogLevel(sim::LogLevel::Warnings);
    EXPECT_TRUE(star.sinks[1]->cells.empty());
    EXPECT_EQ(star.sw.cellsUnroutable(), 1u);
}

TEST(AtmSwitch, CellsPipelineThroughFabric)
{
    sim::Simulation s;
    Star star(s, 2);
    star.sw.addRoute(star.ports[0], 40, star.ports[1], 50);

    const int n = 10;
    for (int i = 0; i < n; ++i)
        star.taps[0]->send(makeCell(40));
    s.run();
    ASSERT_EQ(star.sinks[1]->stamps.size(), static_cast<std::size_t>(n));
    // Pipelined: consecutive arrivals one cell time apart, not 7 us.
    sim::Tick gap = star.sinks[1]->stamps[1] - star.sinks[1]->stamps[0];
    EXPECT_EQ(gap, star.links[0]->spec().cellTime());
}

TEST(AtmSwitch, OutputContentionSharesLink)
{
    sim::Simulation s;
    Star star(s, 3);
    star.sw.addRoute(star.ports[0], 40, star.ports[2], 60);
    star.sw.addRoute(star.ports[1], 40, star.ports[2], 61);

    const int n = 100;
    for (int i = 0; i < n; ++i) {
        star.taps[0]->send(makeCell(40));
        star.taps[1]->send(makeCell(40));
    }
    s.run();
    EXPECT_EQ(star.sinks[2]->cells.size(), static_cast<std::size_t>(2 * n));
    // Output link is the bottleneck: total time ~ 2n cell times.
    sim::Tick span = star.sinks[2]->stamps.back();
    sim::Tick cell = star.links[0]->spec().cellTime();
    EXPECT_GE(span, 2 * n * cell);
}

TEST(AtmSwitch, QueueOverflowDrops)
{
    sim::Simulation s;
    SwitchSpec spec = SwitchSpec::asx200();
    spec.queueCells = 8;
    Switch sw(s, spec);
    AtmLink la(s), lb(s), lc(s);
    Sink a(s), b(s), c(s);
    auto &ta = la.attach(a);
    auto &tb = lb.attach(b);
    lc.attach(c);
    std::size_t pa = sw.addPort(la);
    std::size_t pb = sw.addPort(lb);
    std::size_t pc = sw.addPort(lc);
    sw.addRoute(pa, 40, pc, 60);
    sw.addRoute(pb, 40, pc, 61);

    for (int i = 0; i < 200; ++i) {
        ta.send(makeCell(40));
        tb.send(makeCell(40));
    }
    s.run();
    EXPECT_GT(sw.cellsDropped(), 0u);
    EXPECT_LT(c.cells.size(), 400u);
}

TEST(Signalling, FullDuplexVcRoundTrip)
{
    sim::Simulation s;
    Star star(s, 2);
    Signalling sig(star.sw);
    auto vc = sig.connect(star.ports[0], star.ports[1]);

    // A sends on its VCI; B receives carrying B's VCI, and vice versa.
    star.taps[0]->send(makeCell(vc.vciAtA, 0xAA));
    star.taps[1]->send(makeCell(vc.vciAtB, 0xBB));
    s.run();
    ASSERT_EQ(star.sinks[1]->cells.size(), 1u);
    EXPECT_EQ(star.sinks[1]->cells[0].vci, vc.vciAtB);
    EXPECT_EQ(star.sinks[1]->cells[0].payload[0], 0xAA);
    ASSERT_EQ(star.sinks[0]->cells.size(), 1u);
    EXPECT_EQ(star.sinks[0]->cells[0].vci, vc.vciAtA);
    EXPECT_EQ(star.sinks[0]->cells[0].payload[0], 0xBB);
}

TEST(Signalling, DistinctVcsPerChannel)
{
    sim::Simulation s;
    Star star(s, 3);
    Signalling sig(star.sw);
    auto vc01 = sig.connect(star.ports[0], star.ports[1]);
    auto vc02 = sig.connect(star.ports[0], star.ports[2]);
    auto vc12 = sig.connect(star.ports[1], star.ports[2]);
    // Port 0's two channels use different local VCIs.
    EXPECT_NE(vc01.vciAtA, vc02.vciAtA);
    // Reserved range is respected.
    EXPECT_GE(vc01.vciAtA, 32);
    EXPECT_GE(vc12.vciAtA, 32);
}

TEST(Signalling, DisconnectRemovesRoutes)
{
    sim::Simulation s;
    Star star(s, 2);
    Signalling sig(star.sw);
    auto vc = sig.connect(star.ports[0], star.ports[1]);
    sig.disconnect(star.ports[0], star.ports[1], vc);

    sim::setLogLevel(sim::LogLevel::Silent);
    star.taps[0]->send(makeCell(vc.vciAtA));
    s.run();
    sim::setLogLevel(sim::LogLevel::Warnings);
    EXPECT_TRUE(star.sinks[1]->cells.empty());
    EXPECT_EQ(star.sw.cellsUnroutable(), 1u);
}
