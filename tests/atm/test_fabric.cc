#include <gtest/gtest.h>

#include "atm/aal5.hh"
#include "atm/fabric.hh"
#include "sim/logging.hh"
#include "sim/simulation.hh"

using namespace unet;
using namespace unet::atm;
using namespace unet::sim::literals;

namespace {

class Sink : public CellSink
{
  public:
    explicit Sink(sim::Simulation &s) : s(s) {}

    void
    cellArrived(const Cell &cell) override
    {
        cells.push_back(cell);
        stamps.push_back(s.now());
    }

    sim::Simulation &s;
    std::vector<Cell> cells;
    std::vector<sim::Tick> stamps;
};

Cell
makeCell(Vci vci, std::uint8_t fill = 0x11)
{
    Cell c;
    c.vci = vci;
    c.payload.fill(fill);
    return c;
}

/** N hosts, each with a link; attachment done by the test. */
struct Hosts
{
    Hosts(sim::Simulation &s, int n)
    {
        for (int i = 0; i < n; ++i) {
            links.push_back(std::make_unique<AtmLink>(s));
            sinks.push_back(std::make_unique<Sink>(s));
            taps.push_back(&links.back()->attach(*sinks.back()));
        }
    }

    std::vector<std::unique_ptr<AtmLink>> links;
    std::vector<std::unique_ptr<Sink>> sinks;
    std::vector<CellTap *> taps;
};

} // namespace

TEST(Fabric, SingleSwitchBehavesLikeSignalling)
{
    sim::Simulation s;
    Fabric fabric(s);
    std::size_t sw = fabric.addSwitch();
    Hosts hosts(s, 2);
    auto at_a = fabric.attachHost(sw, *hosts.links[0]);
    auto at_b = fabric.attachHost(sw, *hosts.links[1]);
    auto vc = fabric.connect(at_a, at_b);

    hosts.taps[0]->send(makeCell(vc.vciAtA, 0xAA));
    hosts.taps[1]->send(makeCell(vc.vciAtB, 0xBB));
    s.run();
    ASSERT_EQ(hosts.sinks[1]->cells.size(), 1u);
    EXPECT_EQ(hosts.sinks[1]->cells[0].vci, vc.vciAtB);
    EXPECT_EQ(hosts.sinks[1]->cells[0].payload[0], 0xAA);
    ASSERT_EQ(hosts.sinks[0]->cells.size(), 1u);
    EXPECT_EQ(hosts.sinks[0]->cells[0].payload[0], 0xBB);
}

TEST(Fabric, TwoSwitchesOverTrunk)
{
    sim::Simulation s;
    Fabric fabric(s);
    std::size_t sw0 = fabric.addSwitch();
    std::size_t sw1 = fabric.addSwitch();
    fabric.addTrunk(sw0, sw1);

    Hosts hosts(s, 2);
    auto at_a = fabric.attachHost(sw0, *hosts.links[0]);
    auto at_b = fabric.attachHost(sw1, *hosts.links[1]);
    auto vc = fabric.connect(at_a, at_b);

    hosts.taps[0]->send(makeCell(vc.vciAtA, 0x77));
    s.run();
    ASSERT_EQ(hosts.sinks[1]->cells.size(), 1u);
    EXPECT_EQ(hosts.sinks[1]->cells[0].vci, vc.vciAtB);
    EXPECT_EQ(hosts.sinks[1]->cells[0].payload[0], 0x77);
    // Two switches forwarded the cell.
    EXPECT_EQ(fabric.switchAt(sw0).cellsForwarded(), 1u);
    EXPECT_EQ(fabric.switchAt(sw1).cellsForwarded(), 1u);
}

TEST(Fabric, ThreeSwitchLinePdusSurvive)
{
    sim::Simulation s;
    Fabric fabric(s);
    std::size_t sw0 = fabric.addSwitch();
    std::size_t sw1 = fabric.addSwitch();
    std::size_t sw2 = fabric.addSwitch();
    fabric.addTrunk(sw0, sw1);
    fabric.addTrunk(sw1, sw2);

    Hosts hosts(s, 2);
    auto at_a = fabric.attachHost(sw0, *hosts.links[0]);
    auto at_b = fabric.attachHost(sw2, *hosts.links[1]);
    auto vc = fabric.connect(at_a, at_b);

    // Ship a whole AAL5 PDU across the line and reassemble it.
    std::vector<std::uint8_t> pdu(500);
    for (std::size_t i = 0; i < pdu.size(); ++i)
        pdu[i] = static_cast<std::uint8_t>(i * 3);
    for (const auto &cell : aal5::segment(pdu, vc.vciAtA))
        hosts.taps[0]->send(cell);
    s.run();

    aal5::Reassembler reasm;
    std::optional<std::vector<std::uint8_t>> out;
    for (const auto &cell : hosts.sinks[1]->cells) {
        EXPECT_EQ(cell.vci, vc.vciAtB);
        if (auto v = reasm.addCell(cell))
            out = v;
    }
    ASSERT_TRUE(out.has_value());
    EXPECT_EQ(*out, pdu);
    // Each extra switch hop adds its 7 us forwarding latency.
    EXPECT_GT(hosts.sinks[1]->stamps.front(), 21_us);
}

TEST(Fabric, ManyVcsShareTrunkWithoutCollision)
{
    sim::Simulation s;
    Fabric fabric(s);
    std::size_t sw0 = fabric.addSwitch();
    std::size_t sw1 = fabric.addSwitch();
    fabric.addTrunk(sw0, sw1);

    Hosts hosts(s, 4);
    auto a0 = fabric.attachHost(sw0, *hosts.links[0]);
    auto a1 = fabric.attachHost(sw0, *hosts.links[1]);
    auto b0 = fabric.attachHost(sw1, *hosts.links[2]);
    auto b1 = fabric.attachHost(sw1, *hosts.links[3]);

    auto vc0 = fabric.connect(a0, b0);
    auto vc1 = fabric.connect(a1, b1);
    auto vc2 = fabric.connect(a0, b1); // second VC from host 0

    // Distinct local VCIs on shared attachment points.
    EXPECT_NE(vc0.vciAtA, vc2.vciAtA);

    hosts.taps[0]->send(makeCell(vc0.vciAtA, 1));
    hosts.taps[1]->send(makeCell(vc1.vciAtA, 2));
    hosts.taps[0]->send(makeCell(vc2.vciAtA, 3));
    s.run();

    ASSERT_EQ(hosts.sinks[2]->cells.size(), 1u);
    EXPECT_EQ(hosts.sinks[2]->cells[0].payload[0], 1);
    ASSERT_EQ(hosts.sinks[3]->cells.size(), 2u);
    // Host 3 got one cell on each of its two VCs.
    std::uint8_t p0 = hosts.sinks[3]->cells[0].payload[0];
    std::uint8_t p1 = hosts.sinks[3]->cells[1].payload[0];
    EXPECT_TRUE((p0 == 2 && p1 == 3) || (p0 == 3 && p1 == 2));
}

TEST(FabricDeathTest, NoPathIsFatal)
{
    sim::Simulation s;
    Fabric fabric(s);
    std::size_t sw0 = fabric.addSwitch();
    std::size_t sw1 = fabric.addSwitch(); // not trunked
    Hosts hosts(s, 2);
    auto at_a = fabric.attachHost(sw0, *hosts.links[0]);
    auto at_b = fabric.attachHost(sw1, *hosts.links[1]);
    EXPECT_EXIT(fabric.connect(at_a, at_b),
                ::testing::ExitedWithCode(1), "no trunk path");
}
