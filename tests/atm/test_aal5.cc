#include <gtest/gtest.h>

#include "atm/aal5.hh"
#include "sim/random.hh"

using namespace unet;
using namespace unet::atm;

namespace {

std::vector<std::uint8_t>
randomPdu(std::size_t size, std::uint64_t seed)
{
    sim::Random rng(seed);
    std::vector<std::uint8_t> pdu(size);
    for (auto &b : pdu)
        b = static_cast<std::uint8_t>(rng.u32());
    return pdu;
}

} // namespace

TEST(Aal5, CellCountArithmetic)
{
    // payload + 8-byte trailer packed into 48-byte cells.
    EXPECT_EQ(aal5::cellCount(0), 1u);
    EXPECT_EQ(aal5::cellCount(40), 1u);  // exactly fills one cell
    EXPECT_EQ(aal5::cellCount(41), 2u);  // trailer spills
    EXPECT_EQ(aal5::cellCount(88), 2u);
    EXPECT_EQ(aal5::cellCount(89), 3u);
    EXPECT_EQ(aal5::cellCount(1500), 32u);
    EXPECT_EQ(aal5::wireBytes(40), 53u);
    EXPECT_EQ(aal5::wireBytes(1500), 32u * 53);
}

TEST(Aal5, SingleCellMessage)
{
    // 40 bytes is the largest single-cell payload — the size class the
    // paper's single-cell optimization targets.
    auto pdu = randomPdu(40, 1);
    auto cells = aal5::segment(pdu, 77);
    ASSERT_EQ(cells.size(), 1u);
    EXPECT_TRUE(cells[0].endOfPdu);
    EXPECT_EQ(cells[0].vci, 77);

    aal5::Reassembler r;
    auto out = r.addCell(cells[0]);
    ASSERT_TRUE(out.has_value());
    EXPECT_EQ(*out, pdu);
}

TEST(Aal5, LastCellFlagOnlyOnFinal)
{
    auto cells = aal5::segment(randomPdu(200, 2), 5);
    ASSERT_EQ(cells.size(), 5u); // 200+8 = 208 -> 5 cells
    for (std::size_t i = 0; i < cells.size(); ++i)
        EXPECT_EQ(cells[i].endOfPdu, i == cells.size() - 1);
}

TEST(Aal5, ReassemblyInterleavesAcrossReassemblers)
{
    // Two VCs each get their own reassembler; cells interleave on the
    // wire but VCI demux keeps the PDUs intact.
    auto pdu_a = randomPdu(100, 3);
    auto pdu_b = randomPdu(150, 4);
    auto cells_a = aal5::segment(pdu_a, 1);
    auto cells_b = aal5::segment(pdu_b, 2);

    aal5::Reassembler ra, rb;
    std::optional<std::vector<std::uint8_t>> out_a, out_b;
    std::size_t ia = 0, ib = 0;
    while (ia < cells_a.size() || ib < cells_b.size()) {
        if (ia < cells_a.size()) {
            if (auto v = ra.addCell(cells_a[ia++]))
                out_a = v;
        }
        if (ib < cells_b.size()) {
            if (auto v = rb.addCell(cells_b[ib++]))
                out_b = v;
        }
    }
    ASSERT_TRUE(out_a && out_b);
    EXPECT_EQ(*out_a, pdu_a);
    EXPECT_EQ(*out_b, pdu_b);
}

TEST(Aal5, CorruptedCellKillsPdu)
{
    auto pdu = randomPdu(300, 5);
    auto cells = aal5::segment(pdu, 9);
    cells[2].payload[17] ^= 0x40;

    aal5::Reassembler r;
    std::optional<std::vector<std::uint8_t>> out;
    for (const auto &c : cells)
        if (auto v = r.addCell(c))
            out = v;
    EXPECT_FALSE(out.has_value());
    EXPECT_EQ(r.crcErrors(), 1u);
}

TEST(Aal5, LostCellDetectedByLength)
{
    auto pdu = randomPdu(300, 6);
    auto cells = aal5::segment(pdu, 9);
    cells.erase(cells.begin() + 1); // drop a middle cell

    aal5::Reassembler r;
    std::optional<std::vector<std::uint8_t>> out;
    for (const auto &c : cells)
        if (auto v = r.addCell(c))
            out = v;
    EXPECT_FALSE(out.has_value());
    EXPECT_EQ(r.crcErrors(), 1u);
}

TEST(Aal5, ReassemblerRecoversAfterError)
{
    auto bad = aal5::segment(randomPdu(100, 7), 3);
    bad[0].payload[0] ^= 1;
    auto good_pdu = randomPdu(100, 8);
    auto good = aal5::segment(good_pdu, 3);

    aal5::Reassembler r;
    for (const auto &c : bad)
        r.addCell(c);
    std::optional<std::vector<std::uint8_t>> out;
    for (const auto &c : good)
        if (auto v = r.addCell(c))
            out = v;
    ASSERT_TRUE(out.has_value());
    EXPECT_EQ(*out, good_pdu);
}

TEST(Aal5, MaxPduRoundTrips)
{
    auto pdu = randomPdu(aal5::maxPdu, 9);
    auto cells = aal5::segment(pdu, 1);
    EXPECT_EQ(cells.size(), aal5::cellCount(aal5::maxPdu));
    aal5::Reassembler r;
    std::optional<std::vector<std::uint8_t>> out;
    for (const auto &c : cells)
        if (auto v = r.addCell(c))
            out = v;
    ASSERT_TRUE(out.has_value());
    EXPECT_EQ(*out, pdu);
}

class Aal5SizeSweep : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(Aal5SizeSweep, RoundTripAtSize)
{
    auto pdu = randomPdu(GetParam(), GetParam() * 31 + 7);
    auto cells = aal5::segment(pdu, 42);
    EXPECT_EQ(cells.size(), aal5::cellCount(GetParam()));

    aal5::Reassembler r;
    std::optional<std::vector<std::uint8_t>> out;
    for (const auto &c : cells) {
        auto v = r.addCell(c);
        if (&c != &cells.back())
            EXPECT_FALSE(v.has_value());
        else
            out = v;
    }
    ASSERT_TRUE(out.has_value());
    EXPECT_EQ(*out, pdu);
}

INSTANTIATE_TEST_SUITE_P(PduSizes, Aal5SizeSweep,
                         ::testing::Values(0, 1, 39, 40, 41, 44, 47, 48,
                                           87, 88, 89, 96, 256, 1024,
                                           1500, 4096, 9180, 65535));
