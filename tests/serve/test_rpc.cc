/**
 * @file
 * RPC serving-plane semantics: exactly-once completion per request id,
 * duplicate-response suppression, retransmit/histogram reconciliation
 * under seeded burst loss, and custody-span validation of the reported
 * end-to-end latency.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "serve/rig.hh"
#include "tests/unet/fixtures.hh"

using namespace unet;
using namespace unet::test;

namespace {

serve::RigSpec
feSpec(int clients)
{
    serve::RigSpec spec;
    spec.nic = serve::NicKind::Fe;
    spec.clients = clients;
    spec.seed = 1;
    return spec;
}

} // namespace

TEST(RpcServe, OpenLoopEchoCompletesExactlyOnce)
{
    serve::ServeRig rig(feSpec(4));
    serve::Workload w;
    w.requestsPerClient = 10;
    w.meanGap = sim::microseconds(300);
    serve::RunResult r = rig.run(w);

    ASSERT_TRUE(r.finished);
    EXPECT_EQ(r.issued, 40u);
    EXPECT_EQ(r.completed, 40u);
    EXPECT_EQ(r.giveUps, 0u);
    EXPECT_EQ(r.dupResponses, 0u);
    EXPECT_EQ(r.served, 40u);
    EXPECT_EQ(r.serverRxQueueDrops, 0u);

    // Every completion landed in the latency histogram exactly once.
    EXPECT_EQ(rig.stats().latencyNs().count(), 40u);
    EXPECT_EQ(rig.stats().methodLatencyNs(0).count(), 40u);
    EXPECT_GT(r.p50Us, 0.0);
    EXPECT_GE(r.p999Us, r.p99Us);
    EXPECT_GE(r.p99Us, r.p50Us);
}

TEST(RpcServe, ClosedLoopWindowCompletes)
{
    serve::RigSpec spec = feSpec(2);
    serve::ServeRig rig(spec);
    serve::Workload w;
    w.closedLoop = true;
    w.requestsPerClient = 12;
    w.window = 2;
    w.meanThink = sim::microseconds(50);
    serve::RunResult r = rig.run(w);

    ASSERT_TRUE(r.finished);
    EXPECT_EQ(r.issued, 24u);
    EXPECT_EQ(r.completed, 24u);
    EXPECT_EQ(r.giveUps, 0u);
    EXPECT_EQ(rig.stats().latencyNs().count(), 24u);
}

/**
 * A request at a method id outside the dispatch table is counted and
 * dropped — never answered — so the client's only exit is the
 * give-up path at its completion timeout.
 */
TEST(RpcServe, UnknownMethodNeverCompletes)
{
    sim::Simulation s(1);
    eth::FullDuplexLink link(s);
    FeNode a(s, link, 0), b(s, link, 1);

    obs::Registry reg;
    serve::ServeStats stats(reg, 1, sim::microseconds(400));

    std::unique_ptr<serve::RpcClient> client;
    std::unique_ptr<serve::RpcServer> server;

    sim::Process serverProc(s, "server", [&](sim::Process &p) {
        // Exit once the hostile request has been counted; serve()
        // drains the (empty) reply window on the way out.
        EXPECT_TRUE(server->serve(
            p, [&] { return server->unknownMethods() >= 1; },
            sim::milliseconds(100)));
        server->am().pollUntil(p, [] { return false; },
                               sim::milliseconds(30));
    });
    sim::Process clientProc(s, "client", [&](sim::Process &p) {
        ASSERT_TRUE(client->issue(p, 99, s.now()));
        EXPECT_FALSE(client->awaitAll(p, sim::milliseconds(20)));
        client->am().drain(p, sim::seconds(1));
        client->am().pollUntil(p, [] { return false; },
                               sim::milliseconds(5));
    });

    Endpoint &epServer = b.unet.createEndpoint(&serverProc, {});
    Endpoint &epClient = a.unet.createEndpoint(&clientProc, {});
    ChannelId chanC = invalidChannel, chanS = invalidChannel;
    UNetFe::connect(a.unet, epClient, b.unet, epServer, chanC, chanS);

    server = std::make_unique<serve::RpcServer>(b.unet, epServer);
    server->addMethod({});
    server->openChannel(chanS);
    client = std::make_unique<serve::RpcClient>(a.unet, epClient,
                                                chanC, 0, stats);

    serverProc.start();
    clientProc.start(sim::microseconds(5));
    s.run();

    ASSERT_TRUE(clientProc.finished());
    ASSERT_TRUE(serverProc.finished());
    EXPECT_EQ(server->unknownMethods(), 1u);
    EXPECT_EQ(server->served(), 0u);
    EXPECT_EQ(stats.issued(), 1u);
    EXPECT_EQ(stats.completed(), 0u);
    EXPECT_EQ(stats.giveUps(), 1u);
    EXPECT_EQ(stats.latencyNs().count(), 0u);
}

/**
 * A hand-rolled double-replying server: every request gets two
 * responses with the same request id. The client must complete the
 * request once and count the second response as a suppressed
 * duplicate.
 */
TEST(RpcServe, DuplicateResponsesAreSuppressed)
{
    constexpr int requests = 3;

    sim::Simulation s(1);
    eth::FullDuplexLink link(s);
    FeNode a(s, link, 0), b(s, link, 1);

    obs::Registry reg;
    serve::ServeStats stats(reg, 1, sim::microseconds(400));

    Endpoint *epClient = nullptr, *epServer = nullptr;
    ChannelId chanC = invalidChannel, chanS = invalidChannel;
    std::unique_ptr<serve::RpcClient> client;
    std::unique_ptr<am::ActiveMessages> serverAm;
    int served = 0;

    sim::Process serverProc(s, "server", [&](sim::Process &p) {
        serverAm->pollUntil(p, [&] { return served >= requests; },
                            sim::seconds(1));
        serverAm->drain(p, sim::seconds(1));
        serverAm->pollUntil(p, [] { return false; },
                            sim::milliseconds(2));
    });
    sim::Process clientProc(s, "client", [&](sim::Process &p) {
        for (int i = 0; i < requests; ++i) {
            ASSERT_TRUE(client->issue(p, 0, s.now()));
            ASSERT_TRUE(client->awaitAll(p, sim::milliseconds(50)));
        }
        client->am().drain(p, sim::seconds(1));
        client->am().pollUntil(p, [] { return false; },
                               sim::milliseconds(5));
    });

    epServer = &b.unet.createEndpoint(&serverProc, {});
    epClient = &a.unet.createEndpoint(&clientProc, {});
    UNetFe::connect(a.unet, *epClient, b.unet, *epServer, chanC,
                    chanS);

    serverAm = std::make_unique<am::ActiveMessages>(b.unet, *epServer);
    serverAm->openChannel(chanS);
    serverAm->setHandler(
        serve::requestHandler,
        [&](sim::Process &p, am::Token token, const am::Args &args,
            std::span<const std::uint8_t>) {
            ++served;
            // The at-least-once failure mode: the same response id
            // goes out twice.
            serverAm->reply(p, token, serve::responseHandler,
                            {args[0], args[1], args[2], 0}, {});
            serverAm->reply(p, token, serve::responseHandler,
                            {args[0], args[1], args[2], 0}, {});
        });
    client = std::make_unique<serve::RpcClient>(a.unet, *epClient,
                                                chanC, 0, stats);

    serverProc.start();
    clientProc.start(sim::microseconds(5));
    s.run();

    ASSERT_TRUE(clientProc.finished());
    ASSERT_TRUE(serverProc.finished());
    EXPECT_EQ(stats.issued(), static_cast<std::uint64_t>(requests));
    EXPECT_EQ(stats.completed(), static_cast<std::uint64_t>(requests));
    EXPECT_EQ(stats.dupResponses(),
              static_cast<std::uint64_t>(requests));
    EXPECT_EQ(stats.latencyNs().count(),
              static_cast<std::uint64_t>(requests));
}

/**
 * Seeded Gilbert-Elliott burst loss at the switch: the AM layer must
 * retransmit through the bursts, and however many wire-level replays
 * that takes, the serving plane's exactly-once accounting has to
 * reconcile — per-method completions equal the aggregate histogram,
 * nothing is double-counted, and the losses really happened.
 */
TEST(RpcServe, ExactlyOnceUnderBurstLoss)
{
    serve::RigSpec spec = feSpec(8);
    spec.faults = "seed=11 eth.switch.ge=0.02/0.2/0.8";
    serve::ServeRig rig(spec);

    serve::Workload w;
    w.requestsPerClient = 25;
    w.meanGap = sim::microseconds(250);
    serve::RunResult r = rig.run(w);

    ASSERT_TRUE(r.finished);
    EXPECT_EQ(r.completed + r.giveUps, r.issued);
    EXPECT_EQ(r.issued, 200u);

    // The loss plan was exercised: the reliability layer retransmitted,
    // yet no retransmit leaked into the completion accounting.
    EXPECT_GT(r.clientRetransmits + r.serverRetransmits, 0u);
    EXPECT_EQ(rig.stats().latencyNs().count(), r.completed);
    EXPECT_EQ(rig.stats().methodLatencyNs(0).count(), r.completed);

    // am.retransmits reconciliation through the metrics registry: the
    // server handled every client wire-level delivery exactly once per
    // surviving request (duplicates are dropped below the AM handler),
    // so served == completions + responses the clients gave up on.
    EXPECT_GE(r.served, r.completed);
    EXPECT_LE(r.served, r.issued);

    // Every duplicate the clients suppressed is a real wire replay:
    // it cannot exceed the retransmits that could have caused it.
    EXPECT_LE(r.dupResponses, r.serverRetransmits);
}

#if UNET_TRACE

/**
 * The reported end-to-end latency (issue epoch to response consume)
 * must be validated by the custody trace: each message's custody
 * spans tile contiguously, and the request-post -> response-consume
 * interval they delimit fits inside the measured latency (the epoch
 * precedes the post by at most the generator's poll quantum).
 */
TEST(RpcServe, CustodySpansTileReportedLatency)
{
    serve::RigSpec spec = feSpec(1);
    serve::ServeRig rig(spec);
    rig.simulation().enableTrace();

    serve::Workload w;
    w.requestsPerClient = 1;
    w.meanGap = sim::microseconds(200);
    serve::RunResult r = rig.run(w);
    ASSERT_TRUE(r.finished);
    ASSERT_EQ(r.completed, 1u);

    auto *tr = rig.simulation().trace();
    ASSERT_NE(tr, nullptr);

    // Group custody spans per message id.
    std::map<std::uint64_t, std::vector<obs::Span>> chains;
    tr->forEach([&](const obs::Span &sp) {
        if (obs::isCustody(sp.kind) && sp.id != 0)
            chains[sp.id].push_back(sp);
    });
    ASSERT_GE(chains.size(), 2u); // request + response (+ late ACKs)

    // Tiling within every chain: contiguous custody, no gap, no
    // overlap, start-to-end sum equals the chain extent.
    for (auto &[id, chain] : chains) {
        std::sort(chain.begin(), chain.end(),
                  [](const obs::Span &x, const obs::Span &y) {
                      return x.start < y.start;
                  });
        sim::Tick total = 0;
        for (std::size_t i = 0; i < chain.size(); ++i) {
            if (i > 0) {
                EXPECT_EQ(chain[i].start, chain[i - 1].end)
                    << "custody gap in message " << id << " hop " << i;
            }
            total += chain[i].end - chain[i].start;
        }
        EXPECT_EQ(total, chain.back().end - chain.front().start);
    }

    // The request chain starts on the client; the response chain's
    // custody ends when the client consumes it from the endpoint
    // queue, after which only the AM dispatch cost separates it from
    // the completion tick ServeStats recorded.
    sim::Tick firstPost = sim::maxTick, lastConsume = 0;
    for (auto &[id, chain] : chains) {
        firstPost = std::min(firstPost, chain.front().start);
        // ACK chains flushed after the completion are excluded by
        // taking the consume that matches the recorded completion.
        if (chain.back().end <= rig.stats().lastCompletion())
            lastConsume = std::max(lastConsume, chain.back().end);
    }
    ASSERT_LT(firstPost, lastConsume);
    EXPECT_LE(lastConsume, rig.stats().lastCompletion());
    EXPECT_LE(rig.stats().lastCompletion() - lastConsume,
              sim::microseconds(1));

    // The histogram's single sample is the epoch->consume interval;
    // custody covers post->consume, so it can undercut the reported
    // latency only by the sub-poll-quantum epoch-to-post offset.
    sim::Tick span = lastConsume - firstPost;
    auto latencyTicks =
        static_cast<sim::Tick>(rig.stats().latencyNs().sum()) * 1000;
    EXPECT_LE(span, latencyTicks + sim::microseconds(1));
    EXPECT_GE(span, latencyTicks - sim::microseconds(2));
}

#endif // UNET_TRACE

/**
 * Fan-in wider than the old fixed-endpoint ceiling: 72 clients is more
 * channels than one paper-era NIC table (64) could hold. The OS
 * service's id-keyed quota table and the rig's boot-time channel
 * ceiling admit the whole fleet, and the virtualized endpoint layer
 * keeps the traffic exactly-once.
 */
TEST(RpcServe, FanInBeyondSixtyFourClients)
{
    serve::RigSpec spec = feSpec(72);
    serve::ServeRig rig(spec);
    serve::Workload w;
    w.closedLoop = true;
    w.requestsPerClient = 2;
    w.window = 1;
    w.meanThink = sim::microseconds(100);
    serve::RunResult r = rig.run(w);

    ASSERT_TRUE(r.finished);
    EXPECT_EQ(r.issued, 144u);
    EXPECT_EQ(r.completed, 144u);
    EXPECT_EQ(r.giveUps, 0u);
    EXPECT_EQ(r.dupResponses, 0u);
    EXPECT_EQ(rig.stats().latencyNs().count(), 144u);
}
