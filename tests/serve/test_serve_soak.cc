/**
 * @file
 * Bounded serving-plane soaks (ctest label: serve-soak).
 *
 * Incast at fan-in 64 through each fabric, clean and under seeded
 * Gilbert-Elliott burst loss, plus the determinism contract the SLO
 * curves depend on: every rig metric — and therefore every published
 * curve point — must be byte-stable across UNET_PERTURB salts.
 */

#include <gtest/gtest.h>

#include "obs/digest.hh"
#include "serve/rig.hh"
#include "sim/perturb.hh"

using namespace unet;

namespace {

serve::RigSpec
incastSpec(serve::NicKind nic, bool loss)
{
    serve::RigSpec spec;
    spec.nic = nic;
    spec.clients = 64;
    spec.seed = 1;
    if (loss)
        spec.faults = nic == serve::NicKind::Fe
                          ? "seed=11 eth.switch.ge=0.005/0.2/0.8"
                          : "seed=11 atm.switch.ge=0.005/0.2/0.8";
    return spec;
}

serve::Workload
incastLoad(serve::NicKind nic)
{
    // ~half the calibrated per-NIC serving capacity (see
    // bench/serve_slo.cc): enough pressure for real fan-in contention,
    // below the Go-Back-N congestion knee.
    double offered = nic == serve::NicKind::Fe ? 27500.0 : 14000.0;
    serve::Workload w;
    w.requestsPerClient = 16;
    w.meanGap = static_cast<sim::Tick>(64.0 * 1e12 / offered);
    return w;
}

void
expectSound(const serve::RunResult &r)
{
    ASSERT_TRUE(r.finished);
    EXPECT_EQ(r.completed + r.giveUps, r.issued);
    EXPECT_GT(r.completed, 0u);
    EXPECT_GT(r.p50Us, 0.0);
    EXPECT_GE(r.p999Us, r.p99Us);
}

} // namespace

TEST(ServeSoak, FeIncastClean)
{
    serve::ServeRig rig(incastSpec(serve::NicKind::Fe, false));
    serve::RunResult r = rig.run(incastLoad(serve::NicKind::Fe));
    expectSound(r);
    EXPECT_EQ(r.giveUps, 0u);
    EXPECT_EQ(r.serverRxQueueDrops, 0u);
}

TEST(ServeSoak, AtmIncastClean)
{
    serve::ServeRig rig(incastSpec(serve::NicKind::Atm, false));
    serve::RunResult r = rig.run(incastLoad(serve::NicKind::Atm));
    expectSound(r);
    EXPECT_EQ(r.giveUps, 0u);
    EXPECT_EQ(r.serverRxQueueDrops, 0u);
}

TEST(ServeSoak, FeIncastBurstLossRecovers)
{
    serve::ServeRig rig(incastSpec(serve::NicKind::Fe, true));
    serve::RunResult r = rig.run(incastLoad(serve::NicKind::Fe));
    expectSound(r);
    EXPECT_GT(r.clientRetransmits + r.serverRetransmits, 0u);
}

TEST(ServeSoak, AtmIncastBurstLossRecovers)
{
    serve::ServeRig rig(incastSpec(serve::NicKind::Atm, true));
    serve::RunResult r = rig.run(incastLoad(serve::NicKind::Atm));
    expectSound(r);
    EXPECT_GT(r.clientRetransmits + r.serverRetransmits, 0u);
}

/**
 * The acceptance contract behind the published curves: one incast
 * experiment, re-run under perturbation salts 1..5, must reproduce
 * the salt-0 metrics registry bit for bit (digest equality covers
 * every counter and histogram bucket in the run).
 */
TEST(ServeSoak, MetricsDigestStableAcrossPerturbSalts)
{
    auto runDigest = [](std::uint64_t salt) {
        sim::perturb::ScopedSalt scoped(salt);
        serve::RigSpec spec;
        spec.nic = serve::NicKind::Fe;
        spec.clients = 16;
        spec.seed = 1;
        spec.faults = "seed=11 eth.switch.ge=0.005/0.2/0.8";
        serve::ServeRig rig(spec);
        serve::Workload w;
        w.requestsPerClient = 12;
        w.meanGap = static_cast<sim::Tick>(16.0 * 1e12 / 27500.0);
        serve::RunResult r = rig.run(w);
        EXPECT_TRUE(r.finished) << "salt " << salt;
        return obs::digestOf(rig.metrics());
    };

    std::uint64_t base = runDigest(0);
    for (std::uint64_t salt = 1; salt <= 5; ++salt)
        EXPECT_EQ(runDigest(salt), base) << "salt " << salt;
}

TEST(ServeSoak, AtmMetricsDigestStableAcrossPerturbSalts)
{
    auto runDigest = [](std::uint64_t salt) {
        sim::perturb::ScopedSalt scoped(salt);
        serve::RigSpec spec;
        spec.nic = serve::NicKind::Atm;
        spec.clients = 16;
        spec.seed = 1;
        serve::ServeRig rig(spec);
        serve::Workload w;
        w.requestsPerClient = 12;
        w.meanGap = static_cast<sim::Tick>(16.0 * 1e12 / 14000.0);
        serve::RunResult r = rig.run(w);
        EXPECT_TRUE(r.finished) << "salt " << salt;
        return obs::digestOf(rig.metrics());
    };

    std::uint64_t base = runDigest(0);
    for (std::uint64_t salt = 1; salt <= 5; ++salt)
        EXPECT_EQ(runDigest(salt), base) << "salt " << salt;
}
