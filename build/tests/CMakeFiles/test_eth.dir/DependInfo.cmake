
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/eth/test_frame.cc" "tests/CMakeFiles/test_eth.dir/eth/test_frame.cc.o" "gcc" "tests/CMakeFiles/test_eth.dir/eth/test_frame.cc.o.d"
  "/root/repo/tests/eth/test_hub.cc" "tests/CMakeFiles/test_eth.dir/eth/test_hub.cc.o" "gcc" "tests/CMakeFiles/test_eth.dir/eth/test_hub.cc.o.d"
  "/root/repo/tests/eth/test_link.cc" "tests/CMakeFiles/test_eth.dir/eth/test_link.cc.o" "gcc" "tests/CMakeFiles/test_eth.dir/eth/test_link.cc.o.d"
  "/root/repo/tests/eth/test_switch.cc" "tests/CMakeFiles/test_eth.dir/eth/test_switch.cc.o" "gcc" "tests/CMakeFiles/test_eth.dir/eth/test_switch.cc.o.d"
  "/root/repo/tests/eth/test_switch_cutthrough.cc" "tests/CMakeFiles/test_eth.dir/eth/test_switch_cutthrough.cc.o" "gcc" "tests/CMakeFiles/test_eth.dir/eth/test_switch_cutthrough.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/eth/CMakeFiles/unet_eth.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/unet_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/unet_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
