file(REMOVE_RECURSE
  "CMakeFiles/test_eth.dir/eth/test_frame.cc.o"
  "CMakeFiles/test_eth.dir/eth/test_frame.cc.o.d"
  "CMakeFiles/test_eth.dir/eth/test_hub.cc.o"
  "CMakeFiles/test_eth.dir/eth/test_hub.cc.o.d"
  "CMakeFiles/test_eth.dir/eth/test_link.cc.o"
  "CMakeFiles/test_eth.dir/eth/test_link.cc.o.d"
  "CMakeFiles/test_eth.dir/eth/test_switch.cc.o"
  "CMakeFiles/test_eth.dir/eth/test_switch.cc.o.d"
  "CMakeFiles/test_eth.dir/eth/test_switch_cutthrough.cc.o"
  "CMakeFiles/test_eth.dir/eth/test_switch_cutthrough.cc.o.d"
  "test_eth"
  "test_eth.pdb"
  "test_eth[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_eth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
