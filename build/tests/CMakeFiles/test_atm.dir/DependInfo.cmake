
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/atm/test_aal5.cc" "tests/CMakeFiles/test_atm.dir/atm/test_aal5.cc.o" "gcc" "tests/CMakeFiles/test_atm.dir/atm/test_aal5.cc.o.d"
  "/root/repo/tests/atm/test_fabric.cc" "tests/CMakeFiles/test_atm.dir/atm/test_fabric.cc.o" "gcc" "tests/CMakeFiles/test_atm.dir/atm/test_fabric.cc.o.d"
  "/root/repo/tests/atm/test_link.cc" "tests/CMakeFiles/test_atm.dir/atm/test_link.cc.o" "gcc" "tests/CMakeFiles/test_atm.dir/atm/test_link.cc.o.d"
  "/root/repo/tests/atm/test_switch.cc" "tests/CMakeFiles/test_atm.dir/atm/test_switch.cc.o" "gcc" "tests/CMakeFiles/test_atm.dir/atm/test_switch.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/atm/CMakeFiles/unet_atm.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/unet_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/unet_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
