file(REMOVE_RECURSE
  "CMakeFiles/test_atm.dir/atm/test_aal5.cc.o"
  "CMakeFiles/test_atm.dir/atm/test_aal5.cc.o.d"
  "CMakeFiles/test_atm.dir/atm/test_fabric.cc.o"
  "CMakeFiles/test_atm.dir/atm/test_fabric.cc.o.d"
  "CMakeFiles/test_atm.dir/atm/test_link.cc.o"
  "CMakeFiles/test_atm.dir/atm/test_link.cc.o.d"
  "CMakeFiles/test_atm.dir/atm/test_switch.cc.o"
  "CMakeFiles/test_atm.dir/atm/test_switch.cc.o.d"
  "test_atm"
  "test_atm.pdb"
  "test_atm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_atm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
