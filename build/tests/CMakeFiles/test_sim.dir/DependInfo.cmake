
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sim/test_event.cc" "tests/CMakeFiles/test_sim.dir/sim/test_event.cc.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/test_event.cc.o.d"
  "/root/repo/tests/sim/test_fiber.cc" "tests/CMakeFiles/test_sim.dir/sim/test_fiber.cc.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/test_fiber.cc.o.d"
  "/root/repo/tests/sim/test_process.cc" "tests/CMakeFiles/test_sim.dir/sim/test_process.cc.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/test_process.cc.o.d"
  "/root/repo/tests/sim/test_random.cc" "tests/CMakeFiles/test_sim.dir/sim/test_random.cc.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/test_random.cc.o.d"
  "/root/repo/tests/sim/test_stats.cc" "tests/CMakeFiles/test_sim.dir/sim/test_stats.cc.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/test_stats.cc.o.d"
  "/root/repo/tests/sim/test_time.cc" "tests/CMakeFiles/test_sim.dir/sim/test_time.cc.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/test_time.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/unet_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
