file(REMOVE_RECURSE
  "CMakeFiles/test_sockets.dir/sockets/test_udp.cc.o"
  "CMakeFiles/test_sockets.dir/sockets/test_udp.cc.o.d"
  "test_sockets"
  "test_sockets.pdb"
  "test_sockets[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sockets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
