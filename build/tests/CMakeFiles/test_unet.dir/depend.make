# Empty dependencies file for test_unet.
# This may be replaced when dependencies are built.
