
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/unet/test_endpoint.cc" "tests/CMakeFiles/test_unet.dir/unet/test_endpoint.cc.o" "gcc" "tests/CMakeFiles/test_unet.dir/unet/test_endpoint.cc.o.d"
  "/root/repo/tests/unet/test_os_service.cc" "tests/CMakeFiles/test_unet.dir/unet/test_os_service.cc.o" "gcc" "tests/CMakeFiles/test_unet.dir/unet/test_os_service.cc.o.d"
  "/root/repo/tests/unet/test_queues.cc" "tests/CMakeFiles/test_unet.dir/unet/test_queues.cc.o" "gcc" "tests/CMakeFiles/test_unet.dir/unet/test_queues.cc.o.d"
  "/root/repo/tests/unet/test_unet_atm.cc" "tests/CMakeFiles/test_unet.dir/unet/test_unet_atm.cc.o" "gcc" "tests/CMakeFiles/test_unet.dir/unet/test_unet_atm.cc.o.d"
  "/root/repo/tests/unet/test_unet_atm_fabric.cc" "tests/CMakeFiles/test_unet.dir/unet/test_unet_atm_fabric.cc.o" "gcc" "tests/CMakeFiles/test_unet.dir/unet/test_unet_atm_fabric.cc.o.d"
  "/root/repo/tests/unet/test_unet_fe.cc" "tests/CMakeFiles/test_unet.dir/unet/test_unet_fe.cc.o" "gcc" "tests/CMakeFiles/test_unet.dir/unet/test_unet_fe.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/unet/CMakeFiles/unet_unet.dir/DependInfo.cmake"
  "/root/repo/build/src/nic/CMakeFiles/unet_nic.dir/DependInfo.cmake"
  "/root/repo/build/src/unet/CMakeFiles/unet_core.dir/DependInfo.cmake"
  "/root/repo/build/src/host/CMakeFiles/unet_host.dir/DependInfo.cmake"
  "/root/repo/build/src/eth/CMakeFiles/unet_eth.dir/DependInfo.cmake"
  "/root/repo/build/src/atm/CMakeFiles/unet_atm.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/unet_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/unet_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
