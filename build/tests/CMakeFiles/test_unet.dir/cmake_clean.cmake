file(REMOVE_RECURSE
  "CMakeFiles/test_unet.dir/unet/test_endpoint.cc.o"
  "CMakeFiles/test_unet.dir/unet/test_endpoint.cc.o.d"
  "CMakeFiles/test_unet.dir/unet/test_os_service.cc.o"
  "CMakeFiles/test_unet.dir/unet/test_os_service.cc.o.d"
  "CMakeFiles/test_unet.dir/unet/test_queues.cc.o"
  "CMakeFiles/test_unet.dir/unet/test_queues.cc.o.d"
  "CMakeFiles/test_unet.dir/unet/test_unet_atm.cc.o"
  "CMakeFiles/test_unet.dir/unet/test_unet_atm.cc.o.d"
  "CMakeFiles/test_unet.dir/unet/test_unet_atm_fabric.cc.o"
  "CMakeFiles/test_unet.dir/unet/test_unet_atm_fabric.cc.o.d"
  "CMakeFiles/test_unet.dir/unet/test_unet_fe.cc.o"
  "CMakeFiles/test_unet.dir/unet/test_unet_fe.cc.o.d"
  "test_unet"
  "test_unet.pdb"
  "test_unet[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_unet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
