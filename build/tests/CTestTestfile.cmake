# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_host[1]_include.cmake")
include("/root/repo/build/tests/test_net[1]_include.cmake")
include("/root/repo/build/tests/test_eth[1]_include.cmake")
include("/root/repo/build/tests/test_atm[1]_include.cmake")
include("/root/repo/build/tests/test_nic[1]_include.cmake")
include("/root/repo/build/tests/test_unet[1]_include.cmake")
include("/root/repo/build/tests/test_am[1]_include.cmake")
include("/root/repo/build/tests/test_splitc[1]_include.cmake")
include("/root/repo/build/tests/test_apps[1]_include.cmake")
include("/root/repo/build/tests/test_cluster[1]_include.cmake")
include("/root/repo/build/tests/test_sockets[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
