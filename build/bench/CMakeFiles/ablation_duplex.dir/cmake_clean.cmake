file(REMOVE_RECURSE
  "CMakeFiles/ablation_duplex.dir/ablation_duplex.cc.o"
  "CMakeFiles/ablation_duplex.dir/ablation_duplex.cc.o.d"
  "ablation_duplex"
  "ablation_duplex.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_duplex.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
