# Empty compiler generated dependencies file for ablation_duplex.
# This may be replaced when dependencies are built.
