# Empty compiler generated dependencies file for ablation_i960_poll.
# This may be replaced when dependencies are built.
