file(REMOVE_RECURSE
  "CMakeFiles/ablation_i960_poll.dir/ablation_i960_poll.cc.o"
  "CMakeFiles/ablation_i960_poll.dir/ablation_i960_poll.cc.o.d"
  "ablation_i960_poll"
  "ablation_i960_poll.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_i960_poll.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
