# Empty dependencies file for table1_splitc.
# This may be replaced when dependencies are built.
