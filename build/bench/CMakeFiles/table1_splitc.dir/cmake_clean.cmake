file(REMOVE_RECURSE
  "CMakeFiles/table1_splitc.dir/table1_splitc.cc.o"
  "CMakeFiles/table1_splitc.dir/table1_splitc.cc.o.d"
  "table1_splitc"
  "table1_splitc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_splitc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
