file(REMOVE_RECURSE
  "CMakeFiles/baseline_sockets.dir/baseline_sockets.cc.o"
  "CMakeFiles/baseline_sockets.dir/baseline_sockets.cc.o.d"
  "baseline_sockets"
  "baseline_sockets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baseline_sockets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
