# Empty compiler generated dependencies file for baseline_sockets.
# This may be replaced when dependencies are built.
