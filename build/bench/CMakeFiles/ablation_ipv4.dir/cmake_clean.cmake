file(REMOVE_RECURSE
  "CMakeFiles/ablation_ipv4.dir/ablation_ipv4.cc.o"
  "CMakeFiles/ablation_ipv4.dir/ablation_ipv4.cc.o.d"
  "ablation_ipv4"
  "ablation_ipv4.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_ipv4.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
