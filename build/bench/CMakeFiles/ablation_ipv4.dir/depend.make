# Empty dependencies file for ablation_ipv4.
# This may be replaced when dependencies are built.
