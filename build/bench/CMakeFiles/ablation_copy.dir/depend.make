# Empty dependencies file for ablation_copy.
# This may be replaced when dependencies are built.
