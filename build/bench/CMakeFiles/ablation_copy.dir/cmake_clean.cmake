file(REMOVE_RECURSE
  "CMakeFiles/ablation_copy.dir/ablation_copy.cc.o"
  "CMakeFiles/ablation_copy.dir/ablation_copy.cc.o.d"
  "ablation_copy"
  "ablation_copy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_copy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
