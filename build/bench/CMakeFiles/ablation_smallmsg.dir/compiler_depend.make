# Empty compiler generated dependencies file for ablation_smallmsg.
# This may be replaced when dependencies are built.
