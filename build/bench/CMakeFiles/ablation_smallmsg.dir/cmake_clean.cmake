file(REMOVE_RECURSE
  "CMakeFiles/ablation_smallmsg.dir/ablation_smallmsg.cc.o"
  "CMakeFiles/ablation_smallmsg.dir/ablation_smallmsg.cc.o.d"
  "ablation_smallmsg"
  "ablation_smallmsg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_smallmsg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
