
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablation_smallmsg.cc" "bench/CMakeFiles/ablation_smallmsg.dir/ablation_smallmsg.cc.o" "gcc" "bench/CMakeFiles/ablation_smallmsg.dir/ablation_smallmsg.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/unet/CMakeFiles/unet_unet.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/unet_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/unet_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/splitc/CMakeFiles/unet_splitc.dir/DependInfo.cmake"
  "/root/repo/build/src/am/CMakeFiles/unet_am.dir/DependInfo.cmake"
  "/root/repo/build/src/nic/CMakeFiles/unet_nic.dir/DependInfo.cmake"
  "/root/repo/build/src/unet/CMakeFiles/unet_core.dir/DependInfo.cmake"
  "/root/repo/build/src/host/CMakeFiles/unet_host.dir/DependInfo.cmake"
  "/root/repo/build/src/eth/CMakeFiles/unet_eth.dir/DependInfo.cmake"
  "/root/repo/build/src/atm/CMakeFiles/unet_atm.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/unet_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/unet_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
