file(REMOVE_RECURSE
  "CMakeFiles/table2_speedup.dir/table2_speedup.cc.o"
  "CMakeFiles/table2_speedup.dir/table2_speedup.cc.o.d"
  "table2_speedup"
  "table2_speedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
