file(REMOVE_RECURSE
  "CMakeFiles/micro_crc.dir/micro_crc.cc.o"
  "CMakeFiles/micro_crc.dir/micro_crc.cc.o.d"
  "micro_crc"
  "micro_crc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_crc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
