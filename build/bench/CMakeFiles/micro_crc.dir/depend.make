# Empty dependencies file for micro_crc.
# This may be replaced when dependencies are built.
