file(REMOVE_RECURSE
  "CMakeFiles/fig6_bandwidth.dir/fig6_bandwidth.cc.o"
  "CMakeFiles/fig6_bandwidth.dir/fig6_bandwidth.cc.o.d"
  "fig6_bandwidth"
  "fig6_bandwidth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_bandwidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
