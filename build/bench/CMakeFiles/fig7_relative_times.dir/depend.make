# Empty dependencies file for fig7_relative_times.
# This may be replaced when dependencies are built.
