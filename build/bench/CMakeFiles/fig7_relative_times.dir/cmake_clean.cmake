file(REMOVE_RECURSE
  "CMakeFiles/fig7_relative_times.dir/fig7_relative_times.cc.o"
  "CMakeFiles/fig7_relative_times.dir/fig7_relative_times.cc.o.d"
  "fig7_relative_times"
  "fig7_relative_times.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_relative_times.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
