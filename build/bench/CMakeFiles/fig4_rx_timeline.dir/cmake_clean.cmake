file(REMOVE_RECURSE
  "CMakeFiles/fig4_rx_timeline.dir/fig4_rx_timeline.cc.o"
  "CMakeFiles/fig4_rx_timeline.dir/fig4_rx_timeline.cc.o.d"
  "fig4_rx_timeline"
  "fig4_rx_timeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_rx_timeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
