file(REMOVE_RECURSE
  "CMakeFiles/fig5_roundtrip_latency.dir/fig5_roundtrip_latency.cc.o"
  "CMakeFiles/fig5_roundtrip_latency.dir/fig5_roundtrip_latency.cc.o.d"
  "fig5_roundtrip_latency"
  "fig5_roundtrip_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_roundtrip_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
