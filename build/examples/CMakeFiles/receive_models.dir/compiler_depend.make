# Empty compiler generated dependencies file for receive_models.
# This may be replaced when dependencies are built.
