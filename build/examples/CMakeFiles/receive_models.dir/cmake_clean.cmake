file(REMOVE_RECURSE
  "CMakeFiles/receive_models.dir/receive_models.cc.o"
  "CMakeFiles/receive_models.dir/receive_models.cc.o.d"
  "receive_models"
  "receive_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/receive_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
