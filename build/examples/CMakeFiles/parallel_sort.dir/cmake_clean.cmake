file(REMOVE_RECURSE
  "CMakeFiles/parallel_sort.dir/parallel_sort.cc.o"
  "CMakeFiles/parallel_sort.dir/parallel_sort.cc.o.d"
  "parallel_sort"
  "parallel_sort.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parallel_sort.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
