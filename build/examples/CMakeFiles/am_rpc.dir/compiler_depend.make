# Empty compiler generated dependencies file for am_rpc.
# This may be replaced when dependencies are built.
