file(REMOVE_RECURSE
  "CMakeFiles/am_rpc.dir/am_rpc.cc.o"
  "CMakeFiles/am_rpc.dir/am_rpc.cc.o.d"
  "am_rpc"
  "am_rpc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/am_rpc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
