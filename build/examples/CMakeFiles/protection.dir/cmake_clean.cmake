file(REMOVE_RECURSE
  "CMakeFiles/protection.dir/protection.cc.o"
  "CMakeFiles/protection.dir/protection.cc.o.d"
  "protection"
  "protection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/protection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
