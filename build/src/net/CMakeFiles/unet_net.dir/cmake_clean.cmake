file(REMOVE_RECURSE
  "CMakeFiles/unet_net.dir/crc32.cc.o"
  "CMakeFiles/unet_net.dir/crc32.cc.o.d"
  "libunet_net.a"
  "libunet_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unet_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
