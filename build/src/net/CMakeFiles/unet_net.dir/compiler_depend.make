# Empty compiler generated dependencies file for unet_net.
# This may be replaced when dependencies are built.
