file(REMOVE_RECURSE
  "libunet_net.a"
)
