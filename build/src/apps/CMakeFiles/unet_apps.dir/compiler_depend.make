# Empty compiler generated dependencies file for unet_apps.
# This may be replaced when dependencies are built.
