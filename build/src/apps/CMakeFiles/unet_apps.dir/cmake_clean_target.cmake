file(REMOVE_RECURSE
  "libunet_apps.a"
)
