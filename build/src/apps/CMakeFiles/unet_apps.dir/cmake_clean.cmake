file(REMOVE_RECURSE
  "CMakeFiles/unet_apps.dir/matmul.cc.o"
  "CMakeFiles/unet_apps.dir/matmul.cc.o.d"
  "CMakeFiles/unet_apps.dir/radix_sort.cc.o"
  "CMakeFiles/unet_apps.dir/radix_sort.cc.o.d"
  "CMakeFiles/unet_apps.dir/sample_sort.cc.o"
  "CMakeFiles/unet_apps.dir/sample_sort.cc.o.d"
  "libunet_apps.a"
  "libunet_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unet_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
