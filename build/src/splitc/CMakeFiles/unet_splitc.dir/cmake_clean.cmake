file(REMOVE_RECURSE
  "CMakeFiles/unet_splitc.dir/runtime.cc.o"
  "CMakeFiles/unet_splitc.dir/runtime.cc.o.d"
  "libunet_splitc.a"
  "libunet_splitc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unet_splitc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
