file(REMOVE_RECURSE
  "libunet_splitc.a"
)
