# Empty dependencies file for unet_splitc.
# This may be replaced when dependencies are built.
