file(REMOVE_RECURSE
  "CMakeFiles/unet_atm.dir/aal5.cc.o"
  "CMakeFiles/unet_atm.dir/aal5.cc.o.d"
  "CMakeFiles/unet_atm.dir/fabric.cc.o"
  "CMakeFiles/unet_atm.dir/fabric.cc.o.d"
  "CMakeFiles/unet_atm.dir/link.cc.o"
  "CMakeFiles/unet_atm.dir/link.cc.o.d"
  "CMakeFiles/unet_atm.dir/switch.cc.o"
  "CMakeFiles/unet_atm.dir/switch.cc.o.d"
  "libunet_atm.a"
  "libunet_atm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unet_atm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
