file(REMOVE_RECURSE
  "libunet_atm.a"
)
