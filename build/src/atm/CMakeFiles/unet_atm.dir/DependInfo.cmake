
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/atm/aal5.cc" "src/atm/CMakeFiles/unet_atm.dir/aal5.cc.o" "gcc" "src/atm/CMakeFiles/unet_atm.dir/aal5.cc.o.d"
  "/root/repo/src/atm/fabric.cc" "src/atm/CMakeFiles/unet_atm.dir/fabric.cc.o" "gcc" "src/atm/CMakeFiles/unet_atm.dir/fabric.cc.o.d"
  "/root/repo/src/atm/link.cc" "src/atm/CMakeFiles/unet_atm.dir/link.cc.o" "gcc" "src/atm/CMakeFiles/unet_atm.dir/link.cc.o.d"
  "/root/repo/src/atm/switch.cc" "src/atm/CMakeFiles/unet_atm.dir/switch.cc.o" "gcc" "src/atm/CMakeFiles/unet_atm.dir/switch.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/unet_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/unet_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
