# Empty dependencies file for unet_atm.
# This may be replaced when dependencies are built.
