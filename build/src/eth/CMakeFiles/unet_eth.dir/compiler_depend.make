# Empty compiler generated dependencies file for unet_eth.
# This may be replaced when dependencies are built.
