file(REMOVE_RECURSE
  "CMakeFiles/unet_eth.dir/frame.cc.o"
  "CMakeFiles/unet_eth.dir/frame.cc.o.d"
  "CMakeFiles/unet_eth.dir/hub.cc.o"
  "CMakeFiles/unet_eth.dir/hub.cc.o.d"
  "CMakeFiles/unet_eth.dir/link.cc.o"
  "CMakeFiles/unet_eth.dir/link.cc.o.d"
  "CMakeFiles/unet_eth.dir/mac_address.cc.o"
  "CMakeFiles/unet_eth.dir/mac_address.cc.o.d"
  "CMakeFiles/unet_eth.dir/switch.cc.o"
  "CMakeFiles/unet_eth.dir/switch.cc.o.d"
  "libunet_eth.a"
  "libunet_eth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unet_eth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
