
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/eth/frame.cc" "src/eth/CMakeFiles/unet_eth.dir/frame.cc.o" "gcc" "src/eth/CMakeFiles/unet_eth.dir/frame.cc.o.d"
  "/root/repo/src/eth/hub.cc" "src/eth/CMakeFiles/unet_eth.dir/hub.cc.o" "gcc" "src/eth/CMakeFiles/unet_eth.dir/hub.cc.o.d"
  "/root/repo/src/eth/link.cc" "src/eth/CMakeFiles/unet_eth.dir/link.cc.o" "gcc" "src/eth/CMakeFiles/unet_eth.dir/link.cc.o.d"
  "/root/repo/src/eth/mac_address.cc" "src/eth/CMakeFiles/unet_eth.dir/mac_address.cc.o" "gcc" "src/eth/CMakeFiles/unet_eth.dir/mac_address.cc.o.d"
  "/root/repo/src/eth/switch.cc" "src/eth/CMakeFiles/unet_eth.dir/switch.cc.o" "gcc" "src/eth/CMakeFiles/unet_eth.dir/switch.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/unet_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/unet_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
