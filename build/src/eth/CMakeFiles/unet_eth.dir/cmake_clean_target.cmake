file(REMOVE_RECURSE
  "libunet_eth.a"
)
