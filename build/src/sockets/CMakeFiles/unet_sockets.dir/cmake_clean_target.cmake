file(REMOVE_RECURSE
  "libunet_sockets.a"
)
