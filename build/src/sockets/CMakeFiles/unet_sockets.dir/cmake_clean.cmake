file(REMOVE_RECURSE
  "CMakeFiles/unet_sockets.dir/udp_stack.cc.o"
  "CMakeFiles/unet_sockets.dir/udp_stack.cc.o.d"
  "libunet_sockets.a"
  "libunet_sockets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unet_sockets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
