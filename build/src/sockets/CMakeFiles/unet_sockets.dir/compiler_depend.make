# Empty compiler generated dependencies file for unet_sockets.
# This may be replaced when dependencies are built.
