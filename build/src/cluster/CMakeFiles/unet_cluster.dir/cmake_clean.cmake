file(REMOVE_RECURSE
  "CMakeFiles/unet_cluster.dir/cluster.cc.o"
  "CMakeFiles/unet_cluster.dir/cluster.cc.o.d"
  "libunet_cluster.a"
  "libunet_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unet_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
