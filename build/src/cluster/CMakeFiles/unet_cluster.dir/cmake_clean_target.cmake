file(REMOVE_RECURSE
  "libunet_cluster.a"
)
