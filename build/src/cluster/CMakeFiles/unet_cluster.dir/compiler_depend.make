# Empty compiler generated dependencies file for unet_cluster.
# This may be replaced when dependencies are built.
