file(REMOVE_RECURSE
  "libunet_sim.a"
)
