file(REMOVE_RECURSE
  "CMakeFiles/unet_sim.dir/event.cc.o"
  "CMakeFiles/unet_sim.dir/event.cc.o.d"
  "CMakeFiles/unet_sim.dir/fiber.cc.o"
  "CMakeFiles/unet_sim.dir/fiber.cc.o.d"
  "CMakeFiles/unet_sim.dir/logging.cc.o"
  "CMakeFiles/unet_sim.dir/logging.cc.o.d"
  "CMakeFiles/unet_sim.dir/process.cc.o"
  "CMakeFiles/unet_sim.dir/process.cc.o.d"
  "libunet_sim.a"
  "libunet_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unet_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
