# Empty compiler generated dependencies file for unet_sim.
# This may be replaced when dependencies are built.
