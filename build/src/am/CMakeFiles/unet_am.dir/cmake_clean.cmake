file(REMOVE_RECURSE
  "CMakeFiles/unet_am.dir/active_messages.cc.o"
  "CMakeFiles/unet_am.dir/active_messages.cc.o.d"
  "libunet_am.a"
  "libunet_am.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unet_am.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
