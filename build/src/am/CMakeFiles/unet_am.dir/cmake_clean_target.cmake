file(REMOVE_RECURSE
  "libunet_am.a"
)
