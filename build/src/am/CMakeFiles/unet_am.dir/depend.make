# Empty dependencies file for unet_am.
# This may be replaced when dependencies are built.
