file(REMOVE_RECURSE
  "libunet_unet.a"
)
