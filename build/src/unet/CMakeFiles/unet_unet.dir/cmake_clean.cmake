file(REMOVE_RECURSE
  "CMakeFiles/unet_unet.dir/unet_atm.cc.o"
  "CMakeFiles/unet_unet.dir/unet_atm.cc.o.d"
  "CMakeFiles/unet_unet.dir/unet_fe.cc.o"
  "CMakeFiles/unet_unet.dir/unet_fe.cc.o.d"
  "libunet_unet.a"
  "libunet_unet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unet_unet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
