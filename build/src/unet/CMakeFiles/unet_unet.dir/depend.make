# Empty dependencies file for unet_unet.
# This may be replaced when dependencies are built.
