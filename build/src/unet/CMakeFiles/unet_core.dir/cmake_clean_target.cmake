file(REMOVE_RECURSE
  "libunet_core.a"
)
