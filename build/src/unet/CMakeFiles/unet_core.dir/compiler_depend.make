# Empty compiler generated dependencies file for unet_core.
# This may be replaced when dependencies are built.
