file(REMOVE_RECURSE
  "CMakeFiles/unet_core.dir/endpoint.cc.o"
  "CMakeFiles/unet_core.dir/endpoint.cc.o.d"
  "libunet_core.a"
  "libunet_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unet_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
