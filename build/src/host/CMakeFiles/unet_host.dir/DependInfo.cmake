
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/host/bus.cc" "src/host/CMakeFiles/unet_host.dir/bus.cc.o" "gcc" "src/host/CMakeFiles/unet_host.dir/bus.cc.o.d"
  "/root/repo/src/host/cpu.cc" "src/host/CMakeFiles/unet_host.dir/cpu.cc.o" "gcc" "src/host/CMakeFiles/unet_host.dir/cpu.cc.o.d"
  "/root/repo/src/host/cpu_spec.cc" "src/host/CMakeFiles/unet_host.dir/cpu_spec.cc.o" "gcc" "src/host/CMakeFiles/unet_host.dir/cpu_spec.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/unet_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
