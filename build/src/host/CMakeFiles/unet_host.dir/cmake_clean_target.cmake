file(REMOVE_RECURSE
  "libunet_host.a"
)
