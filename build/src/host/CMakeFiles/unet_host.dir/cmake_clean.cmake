file(REMOVE_RECURSE
  "CMakeFiles/unet_host.dir/bus.cc.o"
  "CMakeFiles/unet_host.dir/bus.cc.o.d"
  "CMakeFiles/unet_host.dir/cpu.cc.o"
  "CMakeFiles/unet_host.dir/cpu.cc.o.d"
  "CMakeFiles/unet_host.dir/cpu_spec.cc.o"
  "CMakeFiles/unet_host.dir/cpu_spec.cc.o.d"
  "libunet_host.a"
  "libunet_host.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unet_host.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
