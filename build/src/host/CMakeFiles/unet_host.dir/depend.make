# Empty dependencies file for unet_host.
# This may be replaced when dependencies are built.
