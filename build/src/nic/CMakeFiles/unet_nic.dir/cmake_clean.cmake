file(REMOVE_RECURSE
  "CMakeFiles/unet_nic.dir/dc21140.cc.o"
  "CMakeFiles/unet_nic.dir/dc21140.cc.o.d"
  "CMakeFiles/unet_nic.dir/pca200.cc.o"
  "CMakeFiles/unet_nic.dir/pca200.cc.o.d"
  "libunet_nic.a"
  "libunet_nic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unet_nic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
