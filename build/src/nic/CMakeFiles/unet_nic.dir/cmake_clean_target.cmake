file(REMOVE_RECURSE
  "libunet_nic.a"
)
