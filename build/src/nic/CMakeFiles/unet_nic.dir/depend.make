# Empty dependencies file for unet_nic.
# This may be replaced when dependencies are built.
