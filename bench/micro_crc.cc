/**
 * @file
 * google-benchmark micro-benchmarks of the CRC-32 implementations
 * (host wall-clock): the table-driven fast path used by the Ethernet
 * FCS and AAL5 trailer versus the bitwise reference.
 */

#include <benchmark/benchmark.h>

#include <vector>

#include "net/crc32.hh"
#include "sim/random.hh"

using namespace unet;

namespace {

std::vector<std::uint8_t>
buffer(std::size_t n)
{
    sim::Random rng(42);
    std::vector<std::uint8_t> data(n);
    for (auto &b : data)
        b = static_cast<std::uint8_t>(rng.u32());
    return data;
}

void
BM_Crc32Table(benchmark::State &state)
{
    auto data = buffer(static_cast<std::size_t>(state.range(0)));
    for (auto _ : state)
        benchmark::DoNotOptimize(net::crc32(data));
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        state.range(0));
}
BENCHMARK(BM_Crc32Table)->Arg(64)->Arg(1500)->Arg(65536);

void
BM_Crc32Reference(benchmark::State &state)
{
    auto data = buffer(static_cast<std::size_t>(state.range(0)));
    for (auto _ : state)
        benchmark::DoNotOptimize(net::crc32Reference(data));
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        state.range(0));
}
BENCHMARK(BM_Crc32Reference)->Arg(64)->Arg(1500);

void
BM_Crc32Pclmul(benchmark::State &state)
{
    if (net::crc32Backend() != net::Crc32Backend::pclmul) {
        state.SkipWithError("no pclmul on this host/build");
        return;
    }
    auto data = buffer(static_cast<std::size_t>(state.range(0)));
    for (auto _ : state) {
        std::uint32_t st = net::crc32UpdateWith(
            net::Crc32Backend::pclmul, 0xFFFFFFFFu, data);
        benchmark::DoNotOptimize(net::crc32Finish(st));
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        state.range(0));
}
BENCHMARK(BM_Crc32Pclmul)->Arg(64)->Arg(1500)->Arg(65536);

void
BM_Crc32Incremental(benchmark::State &state)
{
    auto data = buffer(1500);
    for (auto _ : state) {
        std::uint32_t st = 0xFFFFFFFFu;
        // 48-byte chunks, like per-cell AAL5 accumulation.
        for (std::size_t off = 0; off < data.size(); off += 48) {
            std::size_t n = std::min<std::size_t>(48,
                                                  data.size() - off);
            st = net::crc32Update(st,
                                  std::span(data.data() + off, n));
        }
        benchmark::DoNotOptimize(net::crc32Finish(st));
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations()) * 1500);
}
BENCHMARK(BM_Crc32Incremental);

} // namespace

BENCHMARK_MAIN();
