/**
 * @file
 * SLO-vs-load curves for the AM serving plane.
 *
 * Sweeps offered load (as a fraction of the server's mean service
 * capacity) across fan-in levels for both NICs, open- and closed-loop,
 * clean and under Gilbert-Elliott burst loss at the switch, and
 * publishes p50/p99/p999 end-to-end latency, goodput, and
 * SLO-violation rate per point.
 *
 *   serve_slo [BENCH_JSON] [--full] [--curves FILE]
 *
 * BENCH_JSON (default BENCH_serve_slo.json) gets the unet-bench-v1
 * gate rows; --curves writes the full curve set (every point, plus its
 * metrics digest) for artifact upload and cross-salt byte comparison;
 * --full widens the sweep to paper-size fan-in and load grids.
 *
 * Everything is simulated time: the numbers are deterministic
 * functions of the seed and must be byte-identical across
 * UNET_PERTURB salts.
 */

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "obs/digest.hh"
#include "serve/rig.hh"

using namespace unet;

namespace {

/**
 * Measured single-server saturation throughput (requests/s), which the
 * NIC message path sets, not the 6us CPU service time: each request
 * costs the server NIC one inbound request, one outbound reply, and
 * (~once per request at serving rates) an inbound delayed ACK. The
 * PCA-200's i960 reassembles/delivers one message per ~10-13us, capping
 * ATM near 28k req/s; the FE kernel path is leaner and saturates near
 * 55k. The load axis is expressed as utilization of these calibrated
 * capacities so "u80" sits at the same queueing intensity on both NICs.
 */
constexpr double kCapacityFeRps = 55000.0;
constexpr double kCapacityAtmRps = 28000.0;

double
capacityRps(serve::NicKind nic)
{
    return nic == serve::NicKind::Fe ? kCapacityFeRps
                                     : kCapacityAtmRps;
}

/** One measured point of the curve set. */
struct Point
{
    std::string name;     ///< bench-row stem, e.g. "fe_c64_u50"
    const char *nic;      ///< "FE" / "ATM"
    int clients;
    const char *mode;     ///< "open" / "closed"
    const char *scenario; ///< "clean" / "burst-loss"
    double offeredRps;    ///< 0 for closed loop
    serve::RunResult r;
    std::uint64_t digest; ///< metrics digest of the whole run
};

serve::RigSpec
rigFor(serve::NicKind nic, int clients, bool loss)
{
    serve::RigSpec spec;
    spec.nic = nic;
    spec.clients = clients;
    spec.seed = 1;
    spec.slo = sim::microseconds(400);
    if (loss) {
        // Bursty two-state loss at the switch: ~2.4% steady-state in
        // the bad state, bursts a few units long, both directions.
        spec.faults = nic == serve::NicKind::Fe
                          ? "seed=11 eth.switch.ge=0.005/0.2/0.8"
                          : "seed=11 atm.switch.ge=0.005/0.2/0.8";
    }
    return spec;
}

Point
runOpen(serve::NicKind nic, int clients, double utilization, bool loss,
        int totalRequests)
{
    double offered = utilization * capacityRps(nic);
    serve::Workload w;
    w.requestsPerClient =
        std::max(8, totalRequests / std::max(clients, 1));
    w.meanGap = static_cast<sim::Tick>(
        static_cast<double>(clients) * 1e12 / offered);

    serve::ServeRig rig(rigFor(nic, clients, loss));
    Point p;
    p.nic = serve::nicName(nic);
    p.clients = clients;
    p.mode = "open";
    p.scenario = loss ? "burst-loss" : "clean";
    p.offeredRps = offered;
    p.name = std::string(nic == serve::NicKind::Fe ? "fe" : "atm") +
             "_c" + std::to_string(clients) + "_u" +
             std::to_string(static_cast<int>(utilization * 100)) +
             (loss ? "_loss" : "");
    p.r = rig.run(w);
    p.digest = obs::digestOf(rig.metrics());
    return p;
}

Point
runClosed(serve::NicKind nic, int clients, int window,
          sim::Tick meanThink, bool loss, int totalRequests)
{
    serve::Workload w;
    w.closedLoop = true;
    w.window = window;
    w.meanThink = meanThink;
    w.requestsPerClient =
        std::max(8, totalRequests / std::max(clients, 1));

    serve::ServeRig rig(rigFor(nic, clients, loss));
    Point p;
    p.nic = serve::nicName(nic);
    p.clients = clients;
    p.mode = "closed";
    p.scenario = loss ? "burst-loss" : "clean";
    p.offeredRps = 0.0;
    p.name = std::string(nic == serve::NicKind::Fe ? "fe" : "atm") +
             "_c" + std::to_string(clients) + "_closed_w" +
             std::to_string(window) + (loss ? "_loss" : "");
    p.r = rig.run(w);
    p.digest = obs::digestOf(rig.metrics());
    return p;
}

void
printPoint(const Point &p)
{
    std::printf("%-18s %-4s %5d %-7s %-10s %9.0f %9.0f %8.1f %8.1f "
                "%8.1f %6.3f %5llu %5llu\n",
                p.name.c_str(), p.nic, p.clients, p.mode, p.scenario,
                p.offeredRps, p.r.goodputRps, p.r.p50Us, p.r.p99Us,
                p.r.p999Us, p.r.sloViolationRate,
                static_cast<unsigned long long>(p.r.clientRetransmits +
                                                p.r.serverRetransmits),
                static_cast<unsigned long long>(
                    p.r.serverRxQueueDrops));
}

} // namespace

int
main(int argc, char **argv)
{
    const char *out_path = "BENCH_serve_slo.json";
    const char *curves_path = nullptr;
    bool full = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--full") == 0)
            full = true;
        else if (std::strcmp(argv[i], "--curves") == 0 && i + 1 < argc)
            curves_path = argv[++i];
        else
            out_path = argv[i];
    }

    const int total = full ? 4000 : 1200;
    const std::vector<int> fanins =
        full ? std::vector<int>{4, 16, 64, 128}
             : std::vector<int>{4, 16, 64};
    const std::vector<double> utils =
        full ? std::vector<double>{0.1, 0.2, 0.35, 0.5, 0.65, 0.8,
                                   0.95}
             : std::vector<double>{0.2, 0.5, 0.8};

    std::printf("%-18s %-4s %5s %-7s %-10s %9s %9s %8s %8s %8s %6s "
                "%5s %5s\n",
                "point", "nic", "cli", "mode", "scenario", "offered",
                "goodput", "p50us", "p99us", "p999us", "sloV", "retx",
                "drops");

    std::vector<Point> points;
    for (serve::NicKind nic :
         {serve::NicKind::Fe, serve::NicKind::Atm}) {
        for (int clients : fanins)
            for (double u : utils) {
                points.push_back(runOpen(nic, clients, u, false,
                                         total));
                printPoint(points.back());
            }
        // Closed loop: self-throttling fan-in at zero think and a
        // moderate window approximates peak sustainable load.
        points.push_back(runClosed(nic, 16, 2,
                                   sim::microseconds(50), false,
                                   total));
        printPoint(points.back());
        // Incast under burst loss: the retransmit path shapes the
        // tail.
        points.push_back(runOpen(nic, 64, 0.5, true, total));
        printPoint(points.back());
    }

    bool sound = true;
    for (const Point &p : points) {
        if (!p.r.finished) {
            std::fprintf(stderr, "point %s did not quiesce\n",
                         p.name.c_str());
            sound = false;
        }
        if (p.r.completed + p.r.giveUps != p.r.issued) {
            std::fprintf(stderr,
                         "point %s: issued %llu != completed %llu + "
                         "giveUps %llu\n",
                         p.name.c_str(),
                         static_cast<unsigned long long>(p.r.issued),
                         static_cast<unsigned long long>(
                             p.r.completed),
                         static_cast<unsigned long long>(p.r.giveUps));
            sound = false;
        }
    }
    if (!sound)
        return 1;

    // Gate rows: every point's latency quantiles (lower is better)
    // and goodput (higher is better).
    std::FILE *out = std::fopen(out_path, "w");
    if (!out) {
        std::fprintf(stderr, "cannot write %s\n", out_path);
        return 1;
    }
    std::fprintf(out, "{\n  \"format\": \"unet-bench-v1\",\n"
                      "  \"benchmarks\": [\n");
    for (std::size_t i = 0; i < points.size(); ++i) {
        const Point &p = points[i];
        std::fprintf(out,
                     "    {\"name\": \"%s_p50_us\", \"value\": %.1f, "
                     "\"unit\": \"us\", \"lower_is_better\": true},\n",
                     p.name.c_str(), p.r.p50Us);
        std::fprintf(out,
                     "    {\"name\": \"%s_p99_us\", \"value\": %.1f, "
                     "\"unit\": \"us\", \"lower_is_better\": true},\n",
                     p.name.c_str(), p.r.p99Us);
        std::fprintf(out,
                     "    {\"name\": \"%s_p999_us\", \"value\": %.1f, "
                     "\"unit\": \"us\", \"lower_is_better\": true},\n",
                     p.name.c_str(), p.r.p999Us);
        std::fprintf(
            out,
            "    {\"name\": \"%s_goodput_rps\", \"value\": %.0f, "
            "\"unit\": \"rps\", \"lower_is_better\": false}%s\n",
            p.name.c_str(), p.r.goodputRps,
            i + 1 < points.size() ? "," : "");
    }
    std::fprintf(out, "  ]\n}\n");
    std::fclose(out);
    std::printf("wrote %s\n", out_path);

    if (curves_path) {
        std::FILE *cf = std::fopen(curves_path, "w");
        if (!cf) {
            std::fprintf(stderr, "cannot write %s\n", curves_path);
            return 1;
        }
        std::fprintf(cf, "{\n  \"format\": \"unet-serve-curves-v1\",\n"
                         "  \"points\": [\n");
        for (std::size_t i = 0; i < points.size(); ++i) {
            const Point &p = points[i];
            std::fprintf(
                cf,
                "    {\"name\": \"%s\", \"nic\": \"%s\", "
                "\"clients\": %d, \"mode\": \"%s\", "
                "\"scenario\": \"%s\", \"offered_rps\": %.0f, "
                "\"goodput_rps\": %.1f, \"p50_us\": %.2f, "
                "\"p99_us\": %.2f, \"p999_us\": %.2f, "
                "\"slo_violation_rate\": %.5f, \"issued\": %" PRIu64
                ", \"completed\": %" PRIu64 ", \"issued_late\": %" PRIu64
                ", \"dup_responses\": %" PRIu64 ", \"give_ups\": %" PRIu64
                ", \"retransmits\": %" PRIu64 ", \"rx_drops\": %" PRIu64
                ", \"metrics_digest\": \"%016" PRIx64 "\"}%s\n",
                p.name.c_str(), p.nic, p.clients, p.mode, p.scenario,
                p.offeredRps, p.r.goodputRps, p.r.p50Us, p.r.p99Us,
                p.r.p999Us, p.r.sloViolationRate, p.r.issued,
                p.r.completed, p.r.issuedLate, p.r.dupResponses,
                p.r.giveUps,
                p.r.clientRetransmits + p.r.serverRetransmits,
                p.r.serverRxQueueDrops, p.digest,
                i + 1 < points.size() ? "," : "");
        }
        std::fprintf(cf, "  ]\n}\n");
        std::fclose(cf);
        std::printf("wrote %s\n", curves_path);
    }
    return 0;
}
