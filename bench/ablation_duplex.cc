/**
 * @file
 * Ablation: full- vs half-duplex switched Fast Ethernet.
 *
 * "Such a private link can be a full-duplex link which allows a host
 * to simultaneously send and receive messages (as opposed to a shared
 * half-duplex link) and thus doubles the aggregate network bandwidth."
 * This bench runs simultaneous bidirectional bulk traffic through the
 * switch in both modes and reports the aggregate goodput.
 */

#include "bench/harness.hh"

using namespace unet;
using namespace unet::bench;

namespace {

constexpr std::size_t msgBytes = 1400;
constexpr int messages = 200;

double
bidirectionalMbps(bool full_duplex)
{
    RigOptions opts;
    opts.overrideSwitch = true;
    opts.switchSpec = eth::SwitchSpec::bay28115();
    opts.switchSpec.fullDuplex = full_duplex;

    sim::Simulation s;
    RawPair rig(s, Fabric::FeBay, opts);

    int delivered = 0;
    sim::Tick first = -1, last = -1;

    auto consume = [&](UNet &un, sim::Process &self, Endpoint &ep,
                       const RecvDescriptor &rd) {
        if (first < 0)
            first = s.now();
        last = s.now();
        ++delivered;
        if (!rd.isSmall)
            for (std::uint8_t i = 0; i < rd.bufferCount; ++i)
                un.postFree(self, ep, {rd.buffers[i].offset, 2048});
    };

    auto node = [&](int side) {
        return [&, side](sim::Process &self) {
            auto &un = rig.unetOf(side);
            auto &ep = rig.ep(side);
            for (int i = 0; i < 16; ++i)
                un.postFree(self, ep,
                            {static_cast<std::uint32_t>(i * 2048),
                             2048});
            int sent = 0, got = 0;
            RecvDescriptor rd;
            while (sent < messages || got < messages) {
                // Drain anything pending.
                while (ep.poll(rd)) {
                    ++got;
                    consume(un, self, ep, rd);
                }
                if (sent < messages) {
                    if (rawSend(un, self, ep, rig.chan(side), msgBytes,
                                40000)) {
                        ++sent;
                    } else {
                        self.delay(sim::microseconds(20));
                        un.flush(self, ep);
                    }
                } else {
                    un.flush(self, ep);
                    if (!ep.wait(self, rd, sim::milliseconds(20)))
                        break; // peer stalled out; report what we saw
                    ++got;
                    consume(un, self, ep, rd);
                }
            }
        };
    };

    sim::Process a(s, "a", node(0));
    sim::Process b(s, "b", node(1));
    rig.wire(a, b);
    a.start();
    b.start();
    s.run();

    if (delivered < 2 || last <= first)
        return 0;
    return (delivered - 1) * msgBytes * 8.0 /
        sim::toSeconds(last - first) / 1e6;
}

} // namespace

int
main()
{
    double full = bidirectionalMbps(true);
    double half = bidirectionalMbps(false);
    std::printf("Ablation: switched FE duplex mode "
                "(bidirectional 1400-byte stream)\n\n");
    std::printf("full duplex aggregate: %6.1f Mbit/s\n", full);
    std::printf("half duplex aggregate: %6.1f Mbit/s\n", half);
    std::printf("ratio:                 %6.2fx   (paper: full duplex "
                "\"doubles the aggregate network bandwidth\")\n",
                half > 0 ? full / half : 0.0);
    return 0;
}
