/**
 * @file
 * google-benchmark micro-benchmarks of the simulation substrate
 * itself (host wall-clock, not simulated time): event queue throughput
 * and fiber context-switch cost.
 *
 * This translation unit overrides global operator new/delete to count
 * heap allocations, so every benchmark can report allocs_per_op and
 * the steady-state benchmarks can demonstrate the zero-allocation
 * event hot path (pooled records + small-buffer-optimized callables).
 */

#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstdlib>
#include <new>

#include "sim/event.hh"
#include "sim/fiber.hh"
#include "sim/process.hh"

using namespace unet::sim;

namespace {

/** Global heap-allocation counter (single-threaded benchmarks). */
std::uint64_t allocCount = 0;

} // namespace

void *
operator new(std::size_t size)
{
    ++allocCount;
    if (void *p = std::malloc(size))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](std::size_t size)
{
    ++allocCount;
    if (void *p = std::malloc(size))
        return p;
    throw std::bad_alloc();
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

namespace {

/** Report events/sec and the per-iteration allocation count measured
 *  across the timed loop. */
void
finishEventBench(benchmark::State &state, std::uint64_t allocs_before)
{
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()));
    state.counters["allocs_per_op"] = benchmark::Counter(
        static_cast<double>(allocCount - allocs_before) /
        static_cast<double>(state.iterations()));
}

void
BM_EventScheduleFire(benchmark::State &state)
{
    EventQueue q;
    std::int64_t n = 0;
    // Steady state: warm the record pool and the heap vector so the
    // timed loop exercises the zero-allocation path.
    for (int i = 0; i < 1024; ++i) {
        q.scheduleIn(1, [&n] { ++n; });
        q.step();
    }
    std::uint64_t allocs = allocCount;
    for (auto _ : state) {
        q.scheduleIn(1, [&n] { ++n; });
        q.step();
    }
    benchmark::DoNotOptimize(n);
    finishEventBench(state, allocs);
}
BENCHMARK(BM_EventScheduleFire);

void
BM_EventScheduleFireLargeCapture(benchmark::State &state)
{
    // A capture beyond the SBO threshold: every schedule pays one heap
    // allocation for the callable (reported via allocs_per_op).
    EventQueue q;
    std::int64_t n = 0;
    struct Big
    {
        std::int64_t *target;
        char pad[96];
    };
    Big big{&n, {}};
    for (int i = 0; i < 1024; ++i) {
        q.scheduleIn(1, [big] { ++*big.target; });
        q.step();
    }
    std::uint64_t allocs = allocCount;
    for (auto _ : state) {
        q.scheduleIn(1, [big] { ++*big.target; });
        q.step();
    }
    benchmark::DoNotOptimize(n);
    finishEventBench(state, allocs);
}
BENCHMARK(BM_EventScheduleFireLargeCapture);

void
BM_EventCancelReuse(benchmark::State &state)
{
    // Schedule + cancel: the record returns to the free list without
    // ever reaching the heap top.
    EventQueue q;
    std::int64_t n = 0;
    for (int i = 0; i < 1024; ++i) {
        auto h = q.scheduleIn(1000, [&n] { ++n; });
        h.cancel();
    }
    std::uint64_t allocs = allocCount;
    for (auto _ : state) {
        auto h = q.scheduleIn(1000, [&n] { ++n; });
        h.cancel();
    }
    benchmark::DoNotOptimize(n);
    finishEventBench(state, allocs);
}
BENCHMARK(BM_EventCancelReuse);

void
BM_MemberEventRearm(benchmark::State &state)
{
    // The hoisted-closure pattern used by the NIC/link pumps: one
    // std::function fixed at construction, re-armed each firing.
    EventQueue q;
    std::int64_t n = 0;
    MemberEvent ev(q, [&n] { ++n; });
    for (int i = 0; i < 1024; ++i) {
        ev.scheduleIn(1);
        q.step();
    }
    std::uint64_t allocs = allocCount;
    for (auto _ : state) {
        ev.scheduleIn(1);
        q.step();
    }
    benchmark::DoNotOptimize(n);
    finishEventBench(state, allocs);
}
BENCHMARK(BM_MemberEventRearm);

void
BM_EventQueueDepth(benchmark::State &state)
{
    const auto depth = static_cast<std::size_t>(state.range(0));
    for (auto _ : state) {
        state.PauseTiming();
        EventQueue q;
        std::int64_t n = 0;
        for (std::size_t i = 0; i < depth; ++i)
            q.schedule(static_cast<Tick>(i * 7 % 1000),
                       [&n] { ++n; });
        state.ResumeTiming();
        q.run();
        benchmark::DoNotOptimize(n);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(depth));
}
BENCHMARK(BM_EventQueueDepth)->Arg(64)->Arg(1024)->Arg(16384);

void
BM_FiberSwitch(benchmark::State &state)
{
    Fiber f([] {
        while (true)
            Fiber::yield();
    });
    for (auto _ : state)
        f.run();
}
BENCHMARK(BM_FiberSwitch);

void
BM_ProcessDelay(benchmark::State &state)
{
    // Cost of one delay()/resume round trip through the event loop.
    Simulation s;
    std::int64_t rounds = 0;
    Process p(s, "bench", [&](Process &self) {
        while (true) {
            self.delay(1);
            ++rounds;
        }
    });
    p.start();
    for (int i = 0; i < 1024; ++i)
        s.events().step();
    std::uint64_t allocs = allocCount;
    for (auto _ : state)
        s.events().step();
    benchmark::DoNotOptimize(rounds);
    finishEventBench(state, allocs);
}
BENCHMARK(BM_ProcessDelay);

} // namespace

BENCHMARK_MAIN();
