/**
 * @file
 * google-benchmark micro-benchmarks of the simulation substrate
 * itself (host wall-clock, not simulated time): event queue throughput
 * and fiber context-switch cost.
 */

#include <benchmark/benchmark.h>

#include "sim/event.hh"
#include "sim/fiber.hh"
#include "sim/process.hh"

using namespace unet::sim;

namespace {

void
BM_EventScheduleFire(benchmark::State &state)
{
    EventQueue q;
    std::int64_t n = 0;
    for (auto _ : state) {
        q.scheduleIn(1, [&n] { ++n; });
        q.step();
    }
    benchmark::DoNotOptimize(n);
}
BENCHMARK(BM_EventScheduleFire);

void
BM_EventQueueDepth(benchmark::State &state)
{
    const auto depth = static_cast<std::size_t>(state.range(0));
    for (auto _ : state) {
        state.PauseTiming();
        EventQueue q;
        std::int64_t n = 0;
        for (std::size_t i = 0; i < depth; ++i)
            q.schedule(static_cast<Tick>(i * 7 % 1000),
                       [&n] { ++n; });
        state.ResumeTiming();
        q.run();
        benchmark::DoNotOptimize(n);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(depth));
}
BENCHMARK(BM_EventQueueDepth)->Arg(64)->Arg(1024)->Arg(16384);

void
BM_FiberSwitch(benchmark::State &state)
{
    Fiber f([] {
        while (true)
            Fiber::yield();
    });
    for (auto _ : state)
        f.run();
}
BENCHMARK(BM_FiberSwitch);

void
BM_ProcessDelay(benchmark::State &state)
{
    // Cost of one delay()/resume round trip through the event loop.
    Simulation s;
    std::int64_t rounds = 0;
    Process p(s, "bench", [&](Process &self) {
        while (true) {
            self.delay(1);
            ++rounds;
        }
    });
    p.start();
    for (auto _ : state)
        s.events().step();
    benchmark::DoNotOptimize(rounds);
}
BENCHMARK(BM_ProcessDelay);

} // namespace

BENCHMARK_MAIN();
