/**
 * @file
 * Figure 6: one-way bandwidth vs message size for U-Net/FE (hub and
 * Bay 28115 switch) and U-Net/ATM (140 Mbps TAXI).
 *
 * Paper anchors: Fast Ethernet saturates around 96-97 Mbps for
 * messages of 1 KB and up; ATM reaches ~118 Mbps against the 120 Mbps
 * effective ceiling of the TAXI link; the ATM curve is jagged because
 * payloads are quantized into 48-byte cells.
 */

#include <vector>

#include "bench/harness.hh"

using namespace unet;
using namespace unet::bench;

int
main()
{
    std::vector<std::size_t> sizes = {8,    16,   32,   40,  48,  64,
                                      88,   96,   128,  136, 192, 256,
                                      344,  384,  512,  680, 768, 1024,
                                      1200, 1344, 1494};

    const Fabric fabrics[] = {Fabric::FeHub, Fabric::FeBay,
                              Fabric::AtmTaxi};

    std::printf("Figure 6: bandwidth (Mbit/s) vs message size\n");
    std::printf("%8s", "bytes");
    for (Fabric f : fabrics)
        std::printf(" %14s", fabricName(f));
    std::printf("\n");

    Sweep sweep;
    sweep.begin(std::size(fabrics), sizes.size());
    for (std::size_t size : sizes) {
        sweep.addPoint(size);
        for (std::size_t fi = 0; fi < std::size(fabrics); ++fi)
            sweep.add(fi, bandwidthMbps(fabrics[fi], size));
    }

    for (std::size_t i = 0; i < sweep.points(); ++i) {
        std::printf("%8zu", sweep.x(i));
        for (std::size_t fi = 0; fi < std::size(fabrics); ++fi)
            std::printf(" %14.1f", sweep.value(fi, i));
        std::printf("\n");
    }

    std::printf("\nanchors (paper -> measured):\n");
    std::printf("  FE @1KB+   ~96-97 Mbps -> %6.1f\n",
                bandwidthMbps(Fabric::FeBay, 1494));
    std::printf("  ATM @1.5KB ~118 Mbps   -> %6.1f  (120 Mbps TAXI "
                "ceiling)\n",
                bandwidthMbps(Fabric::AtmTaxi, 1494));
    return 0;
}
