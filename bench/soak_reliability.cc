/**
 * @file
 * Loss-hardened reliability soak harness.
 *
 * Drives Active-Message request/reply and bulk-store traffic across
 * seeded fault matrices — Bernoulli drop, Gilbert-Elliott burst loss,
 * FCS/CRC-caught corruption, bounded reordering — and checks the
 * reliability layer's contract end to end: exactly-once in-order
 * delivery, window-stall recovery, drain() termination, and books that
 * reconcile (fault.* counters vs. am retransmits vs. FCS/CRC drops).
 *
 * Modes:
 *   (none)              seeded matrix: scenarios x seeds, FE + ATM
 *   --seeds N           widen the seed matrix (CI fault-soak uses 5)
 *   --fault SCENARIO    one run under a custom fault::Plan scenario
 *                       string (same grammar as the tests; DESIGN.md
 *                       §12)
 *   --sweep             RTT vs. loss-rate sweep (EXPERIMENTS.md fig5
 *                       extension)
 *   --metrics FILE      flat JSON metrics snapshot of the last run
 *                       (includes every fault.<site>.* counter)
 */

#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "am/active_messages.hh"
#include "bench/harness.hh"
#include "tests/unet/fixtures.hh"

using namespace unet;
using namespace unet::am;
using namespace unet::bench;
using namespace unet::test;

namespace {

struct SoakResult
{
    bool ok = true;
    std::uint64_t sent = 0;
    std::uint64_t retransmits = 0;
    std::uint64_t dropped = 0;   ///< units the plane destroyed outright
    std::uint64_t corrupted = 0; ///< units the plane bit-flipped
    std::uint64_t checksumDrops = 0; ///< FCS/CRC rejects at the hosts

    void
    fail(const char *what)
    {
        ok = false;
        std::printf("    FAIL: %s\n", what);
    }
};

/** Tally plane-side counters from every armed injector. */
void
tallyPlan(const fault::Plan &plan, SoakResult &r)
{
    for (const auto &inj : plan.armed()) {
        r.dropped += inj->dropped();
        r.corrupted += inj->corrupted();
    }
}

/**
 * Bidirectional AM soak over a full-duplex FE link: both sides fire
 * @p total sequenced, patterned requests, then drain. The send window
 * (8) is a fraction of @p total, so loss repeatedly stalls the window
 * and recovery is exercised on every run.
 */
SoakResult
feSoak(std::uint64_t seed, const std::string &scenario, int total,
       const ObsOutputs *outs)
{
    sim::Simulation s(seed);
    eth::FullDuplexLink link(s);
    FeNode a(s, link, 0), b(s, link, 1);

    fault::Plan plan = fault::Plan::parse(scenario);
    if (plan.seed() == 1) // scenario didn't pin one
        plan.setSeed(seed * 1000 + 7);
    fault::attach(plan, s, link);

    Endpoint *epA = nullptr, *epB = nullptr;
    ChannelId chanA = invalidChannel, chanB = invalidChannel;
    std::unique_ptr<ActiveMessages> amA, amB;
    SoakResult r;
    int gotA = 0, gotB = 0, nextA = 0, nextB = 0, drained = 0;
    bool orderA = true, orderB = true, intactA = true, intactB = true;
    bool drainedA = false, drainedB = false;

    auto body = [&](std::unique_ptr<ActiveMessages> &mine,
                    ChannelId &chan, int &got, int &next, bool &order,
                    bool &intact, bool &drain_ok) {
        return [&](sim::Process &proc) {
            mine->setHandler(
                1, [&](sim::Process &, Token, const Args &args,
                       std::span<const std::uint8_t> payload) {
                    if (static_cast<int>(args[0]) != next)
                        order = false;
                    auto want =
                        pattern(64, static_cast<std::uint8_t>(next));
                    if (payload.size() != want.size() ||
                        !std::equal(want.begin(), want.end(),
                                    payload.begin()))
                        intact = false;
                    ++next;
                    ++got;
                });
            for (int i = 0; i < total; ++i) {
                auto payload =
                    pattern(64, static_cast<std::uint8_t>(i));
                if (!mine->request(proc, chan, 1,
                                   {static_cast<Word>(i), 0, 0, 0},
                                   payload))
                    return;
            }
            mine->pollUntil(proc, [&] { return got >= total; },
                            sim::seconds(10));
            drain_ok = mine->drain(proc, sim::seconds(10));
            ++drained;
            mine->pollUntil(proc, [&] { return drained >= 2; },
                            sim::seconds(10));
            mine->pollUntil(proc, [] { return false; },
                            sim::milliseconds(5));
        };
    };

    sim::Process procA(s, "A",
                       body(amA, chanA, gotA, nextA, orderA, intactA,
                            drainedA));
    sim::Process procB(s, "B",
                       body(amB, chanB, gotB, nextB, orderB, intactB,
                            drainedB));

    epA = &a.unet.createEndpoint(&procA, {});
    epB = &b.unet.createEndpoint(&procB, {});
    UNetFe::connect(a.unet, *epA, b.unet, *epB, chanA, chanB);
    amA = std::make_unique<ActiveMessages>(a.unet, *epA);
    amB = std::make_unique<ActiveMessages>(b.unet, *epB);
    amA->openChannel(chanA);
    amB->openChannel(chanB);
    procA.start();
    procB.start();
    s.run();

    if (gotA != total || gotB != total)
        r.fail("delivery incomplete (or duplicated)");
    if (!orderA || !orderB)
        r.fail("out-of-order delivery");
    if (!intactA || !intactB)
        r.fail("payload damage leaked past the checksums");
    if (!drainedA || !drainedB)
        r.fail("drain() did not terminate");
    if (amA->deadChannels() + amB->deadChannels() > 0)
        r.fail("channel died");

    r.sent = amA->sent() + amB->sent();
    r.retransmits = amA->retransmits() + amB->retransmits();
    r.checksumDrops = a.unet.rxBadFrame() + b.unet.rxBadFrame();
    tallyPlan(plan, r);
    // Reconcile: destroyed units force retransmissions; every frame
    // the plane corrupted must be caught (and counted) by the FCS.
    if (r.dropped + r.corrupted > 0 && r.retransmits == 0)
        r.fail("wire faults but no retransmissions");
    if (r.checksumDrops != r.corrupted)
        r.fail("rxBadFrame does not reconcile with fault.corrupted");
    if (outs)
        outs->write(s);
    return r;
}

/**
 * Bulk-store soak across an ATM star: a 25 KB store()'s fragment train
 * must land byte-exact through cell-level faults, with the done
 * handler firing exactly once.
 */
SoakResult
atmSoak(std::uint64_t seed, const std::string &scenario,
        const ObsOutputs *outs)
{
    sim::Simulation s(seed);
    AtmStar star(s, 2);

    fault::Plan plan = fault::Plan::parse(scenario);
    if (plan.seed() == 1)
        plan.setSeed(seed);
    fault::attach(plan, s, star[0].link, ".a");
    fault::attach(plan, s, star[1].link, ".b");
    fault::attach(plan, s, star.sw);

    Endpoint *epA = nullptr, *epB = nullptr;
    ChannelId chanA = invalidChannel, chanB = invalidChannel;
    std::unique_ptr<ActiveMessages> amA, amB;
    std::vector<std::uint8_t> sink(30000, 0);
    SoakResult r;
    int done = 0;
    bool drain_ok = false;

    sim::Process procB(s, "B", [&](sim::Process &proc) {
        amB->setBulkSink([&](std::uint32_t addr,
                             std::span<const std::uint8_t> d) {
            std::copy(d.begin(), d.end(), sink.begin() + addr);
        });
        amB->setHandler(2, [&](sim::Process &, Token, const Args &,
                               std::span<const std::uint8_t>) {
            ++done;
        });
        amB->pollUntil(proc, [&] { return done > 0; },
                       sim::seconds(10));
        amB->pollUntil(proc, [] { return false; },
                       sim::milliseconds(5));
    });
    sim::Process procA(s, "A", [&](sim::Process &proc) {
        auto data = pattern(25000, 3);
        if (!amA->store(proc, chanA, 500, data, 2))
            return;
        drain_ok = amA->drain(proc, sim::seconds(10));
    });

    epA = &star[0].unet.createEndpoint(&procA, {});
    epB = &star[1].unet.createEndpoint(&procB, {});
    UNetAtm::connect(star[0].unet, *epA, star.ports[0], star[1].unet,
                     *epB, star.ports[1], star.signalling, chanA,
                     chanB);
    AmSpec spec;
    spec.bulkMtu = 1024; // ~22 cells/fragment: survivable under bursts
    amA = std::make_unique<ActiveMessages>(star[0].unet, *epA, spec);
    amB = std::make_unique<ActiveMessages>(star[1].unet, *epB, spec);
    amA->openChannel(chanA);
    amB->openChannel(chanB);
    procA.start();
    procB.start();
    s.run();

    if (done != 1)
        r.fail("bulk done handler fired != once");
    auto want = pattern(25000, 3);
    if (!std::equal(want.begin(), want.end(), sink.begin() + 500))
        r.fail("bulk payload not byte-exact");
    if (!drain_ok)
        r.fail("drain() did not terminate");
    if (amA->deadChannels() > 0)
        r.fail("channel died");

    r.sent = amA->sent() + amB->sent();
    r.retransmits = amA->retransmits() + amB->retransmits();
    r.checksumDrops =
        star[0].nic.crcDrops() + star[1].nic.crcDrops();
    tallyPlan(plan, r);
    // AAL5 counts one drop per failed PDU; each failed PDU implies at
    // least one destroyed cell.
    if (r.corrupted > 0 && r.checksumDrops == 0)
        r.fail("corrupted cells but no CRC drops");
    if (r.checksumDrops > r.dropped + r.corrupted)
        r.fail("more CRC drops than destroyed cells");
    if (r.dropped + r.corrupted > 0 && r.retransmits == 0)
        r.fail("wire faults but no retransmissions");
    if (outs)
        outs->write(s);
    return r;
}

/**
 * Mean AM request/reply round-trip (us) under symmetric Bernoulli
 * wire loss — the fig5 measurement repeated on a faulty network.
 */
double
rttUnderLossUs(double loss_rate, int rounds, std::uint64_t seed)
{
    sim::Simulation s(seed);
    eth::FullDuplexLink link(s);
    FeNode a(s, link, 0), b(s, link, 1);

    fault::Plan plan;
    plan.setSeed(seed * 31 + 5);
    plan.model("eth.link.*").drop = loss_rate;
    fault::attach(plan, s, link);

    Endpoint *epA = nullptr, *epB = nullptr;
    ChannelId chanA = invalidChannel, chanB = invalidChannel;
    std::unique_ptr<ActiveMessages> amA, amB;
    int replies = 0;
    double total_us = 0;
    int measured = 0;

    sim::Process procB(s, "B", [&](sim::Process &proc) {
        amB->setHandler(1, [&](sim::Process &inner, Token tok,
                               const Args &args,
                               std::span<const std::uint8_t>) {
            amB->reply(inner, tok, 2, args);
        });
        amB->pollUntil(proc, [&] { return replies >= rounds; },
                       sim::seconds(30));
        amB->pollUntil(proc, [] { return false; },
                       sim::milliseconds(5));
    });
    sim::Process procA(s, "A", [&](sim::Process &proc) {
        amA->setHandler(2, [&](sim::Process &, Token, const Args &,
                               std::span<const std::uint8_t>) {
            ++replies;
        });
        auto payload = pattern(40);
        for (int r = 0; r < rounds; ++r) {
            sim::Tick t0 = s.now();
            if (!amA->request(proc, chanA, 1,
                              {static_cast<Word>(r), 0, 0, 0},
                              payload))
                return;
            if (!amA->pollUntil(proc, [&] { return replies > r; },
                                sim::seconds(1)))
                return;
            total_us += sim::toMicroseconds(s.now() - t0);
            ++measured;
        }
        amA->drain(proc, sim::seconds(10));
    });

    epA = &a.unet.createEndpoint(&procA, {});
    epB = &b.unet.createEndpoint(&procB, {});
    UNetFe::connect(a.unet, *epA, b.unet, *epB, chanA, chanB);
    amA = std::make_unique<ActiveMessages>(a.unet, *epA);
    amB = std::make_unique<ActiveMessages>(b.unet, *epB);
    amA->openChannel(chanA);
    amB->openChannel(chanB);
    procA.start();
    procB.start();
    s.run();

    return measured == rounds ? total_us / measured : -1.0;
}

struct Scenario
{
    const char *name;
    const char *fe;
    const char *atm;
};

constexpr Scenario scenarios[] = {
    {"drop", "eth.link.*.drop=0.15",
     "atm.link.*.drop=0.01 atm.switch.drop=0.005"},
    {"burst", "eth.link.*.ge=0.02/0.25/1.0",
     "atm.link.a.*.ge=0.01/0.3/1.0"},
    {"corrupt", "eth.link.*.corrupt=0.08", "atm.link.*.corrupt=0.01"},
    // ATM guarantees cell-sequence integrity on a VC, so reordering is
    // an FE-only fault; the ATM column exercises drops instead.
    {"reorder",
     "eth.link.*.reorder=0.25 eth.link.*.reorder_delay_us=200 "
     "eth.link.*.jitter_us=20",
     "atm.link.*.drop=0.008 atm.switch.drop=0.002"},
};

void
printResult(const char *rig, const SoakResult &r)
{
    row("    %-3s %-4s  sent=%-5llu retx=%-4llu wireDrop=%-4llu "
        "wireCorrupt=%-4llu checksumDrop=%-4llu",
        rig, r.ok ? "ok" : "FAIL",
        static_cast<unsigned long long>(r.sent),
        static_cast<unsigned long long>(r.retransmits),
        static_cast<unsigned long long>(r.dropped),
        static_cast<unsigned long long>(r.corrupted),
        static_cast<unsigned long long>(r.checksumDrops));
}

} // namespace

int
main(int argc, char **argv)
{
    const char *fault_arg = nullptr;
    bool sweep = false;
    int seeds = 3;
    for (int i = 1; i < argc; ++i) {
        if (!std::strncmp(argv[i], "--fault=", 8))
            fault_arg = argv[i] + 8;
        else if (!std::strcmp(argv[i], "--fault") && i + 1 < argc)
            fault_arg = argv[++i];
        else if (!std::strcmp(argv[i], "--sweep"))
            sweep = true;
        else if (!std::strcmp(argv[i], "--seeds") && i + 1 < argc)
            seeds = std::atoi(argv[++i]);
    }
    ObsOutputs outs(argc, argv);
    const ObsOutputs *outsp = outs.requested() ? &outs : nullptr;

    if (sweep) {
        // EXPERIMENTS.md fig5 extension: how the paper's 40-byte AM
        // round trip degrades as the wire loses frames.
        row("AM round-trip latency (40B payload) vs wire loss rate");
        row("%8s %12s %12s", "loss", "mean RTT us", "x no-loss");
        double base = rttUnderLossUs(0.0, 60, 1);
        for (double loss : {0.0, 0.005, 0.01, 0.02, 0.05, 0.10, 0.15,
                            0.20}) {
            double rtt = rttUnderLossUs(loss, 60, 1);
            row("%7.1f%% %12.1f %12.2f", loss * 100, rtt,
                rtt / base);
        }
        return 0;
    }

    if (fault_arg) {
        row("soak under custom plan: %s", fault_arg);
        SoakResult fe = feSoak(1, fault_arg, 60, nullptr);
        printResult("FE", fe);
        SoakResult atm = atmSoak(1, fault_arg, outsp);
        printResult("ATM", atm);
        return fe.ok && atm.ok ? 0 : 1;
    }

    bool all_ok = true;
    row("reliability soak: %d seeds x %zu scenarios "
        "(FE bidir AM + ATM bulk store)",
        seeds, std::size(scenarios));
    for (const Scenario &sc : scenarios) {
        row("  %s", sc.name);
        for (int seed = 1; seed <= seeds; ++seed) {
            bool last = &sc == &scenarios[std::size(scenarios) - 1] &&
                seed == seeds;
            SoakResult fe = feSoak(seed, sc.fe, 60, nullptr);
            SoakResult atm =
                atmSoak(seed, sc.atm, last ? outsp : nullptr);
            if (!fe.ok || !atm.ok)
                row("    seed=%d FAILED", seed);
            all_ok = all_ok && fe.ok && atm.ok;
            if (seed == 1) {
                printResult("FE", fe);
                printResult("ATM", atm);
            }
        }
    }
    row("%s", all_ok ? "\nall scenarios reconciled." : "\nFAILURES.");
    return all_ok ? 0 : 1;
}
