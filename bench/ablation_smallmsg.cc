/**
 * @file
 * Ablation: the small-message optimizations.
 *
 * U-Net/FE copies sub-64-byte messages straight into the receive
 * descriptor; U-Net/ATM special-cases single-cell receives. The paper
 * credits the FE path with ~15% receive-overhead savings and shows the
 * ATM single-cell/multi-cell cliff in Fig. 5. This bench measures
 * round-trip latency with each optimization on and off.
 */

#include "bench/harness.hh"

using namespace unet;
using namespace unet::bench;

int
main()
{
    std::printf("Ablation: small-message receive optimizations "
                "(round-trip us)\n\n");

    RigOptions fe_off;
    fe_off.feSpec.smallMessageOptimization = false;
    std::printf("U-Net/FE (Bay 28115 switch)\n");
    std::printf("%8s %12s %12s %10s\n", "bytes", "opt on", "opt off",
                "delta");
    for (std::size_t size : {8, 16, 24, 32, 40, 48, 56, 63}) {
        double on = roundTripUs(Fabric::FeBay, size);
        double off = roundTripUs(Fabric::FeBay, size, 8, fe_off);
        std::printf("%8zu %12.1f %12.1f %9.1f%%\n", size, on, off,
                    (off - on) / on * 100);
    }

    RigOptions atm_off;
    atm_off.pcaSpec.singleCellOptimization = false;
    std::printf("\nU-Net/ATM (OC-3c, ASX-200)\n");
    std::printf("%8s %12s %12s %10s\n", "bytes", "opt on", "opt off",
                "delta");
    for (std::size_t size : {8, 16, 24, 32, 40}) {
        double on = roundTripUs(Fabric::AtmOc3, size);
        double off = roundTripUs(Fabric::AtmOc3, size, 8, atm_off);
        std::printf("%8zu %12.1f %12.1f %9.1f%%\n", size, on, off,
                    (off - on) / on * 100);
    }

    std::printf("\n(the paper's Fig. 5 cliff: the 44-byte ATM message "
                "pays the unoptimized path: %.1f us)\n",
                roundTripUs(Fabric::AtmOc3, 44));
    return 0;
}
