/**
 * @file
 * Shared driver for the Split-C benchmark suite (Table 1, Table 2,
 * Figure 7).
 *
 * The paper's six benchmarks — two matrix-multiply shapes and the
 * small/large-message variants of sample and radix sort — run on the
 * two platforms: the Pentium/Fast-Ethernet cluster (Bay 28115 switch)
 * and the SPARC/ATM cluster (SBA-200 on 140 Mbps TAXI through an
 * ASX-200).
 *
 * Default problem sizes are scaled down so the whole harness finishes
 * in minutes of host time; pass --full for the paper's 512 K keys per
 * node and 1024x1024 matrices.
 */

#ifndef UNET_BENCH_SPLITC_SUITE_HH
#define UNET_BENCH_SPLITC_SUITE_HH

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "apps/matmul.hh"
#include "apps/radix_sort.hh"
#include "apps/sample_sort.hh"
#include "cluster/cluster.hh"

namespace unet::bench {

/** The six Table-1 rows. */
inline const std::vector<std::string> &
suiteBenchmarks()
{
    static const std::vector<std::string> names = {
        "mm 128x128", "mm 16x16",   "ssort sm", "ssort lg",
        "rsort sm",   "rsort lg",
    };
    return names;
}

/** Result of one (benchmark, platform, nodes) cell. */
struct SuiteResult
{
    double seconds = 0;  ///< execution time (simulated)
    double cpuSeconds = 0; ///< mean per-node computation time
    double netSeconds = 0; ///< mean per-node communication time
    bool verified = false;
    std::uint64_t eventsFired = 0; ///< DES work (diagnostics)
};

/** Problem sizes. */
struct SuiteScale
{
    std::size_t keysPerNode = 4096;
    std::size_t mm128Block = 16; ///< paper: 128
    std::size_t heapBytes = 24u * 1024 * 1024;

    static SuiteScale
    full()
    {
        SuiteScale s;
        s.keysPerNode = 512 * 1024;
        s.mm128Block = 128;
        s.heapBytes = 96u * 1024 * 1024;
        return s;
    }
};

/** Run one cell of Table 1. @p atm selects the platform. */
inline SuiteResult
runSuiteCell(const std::string &name, bool atm, int nodes,
             const SuiteScale &scale)
{
    sim::Simulation s;
    cluster::Config cfg =
        atm ? cluster::Config::atmSplitC(nodes)
            : cluster::Config::feCluster(nodes);
    cfg.heapBytes = scale.heapBytes;
    // Watchdog: no scaled cell should take minutes of simulated time;
    // full-size problems get a generous ceiling.
    cfg.simTimeLimit = scale.keysPerNode > 100000
        ? sim::seconds(600) : sim::seconds(60);
    cluster::Cluster c(s, cfg);

    std::vector<bool> ok(static_cast<std::size_t>(nodes), false);

    auto body = [&](splitc::Runtime &rt, sim::Process &proc) {
        bool verified = false;
        if (name == "mm 128x128") {
            apps::MatmulConfig mc;
            mc.blocksPerSide = 8;
            mc.blockSize = scale.mm128Block;
            verified = apps::runMatmul(rt, proc, mc).verified;
        } else if (name == "mm 16x16") {
            verified = apps::runMatmul(rt, proc,
                                       apps::MatmulConfig::paper16())
                           .verified;
        } else if (name == "ssort sm" || name == "ssort lg") {
            apps::SampleConfig sc;
            sc.keysPerNode = scale.keysPerNode;
            sc.largeMessages = name == "ssort lg";
            verified = apps::runSampleSort(rt, proc, sc).verified;
        } else if (name == "rsort sm" || name == "rsort lg") {
            apps::RadixConfig rc;
            rc.keysPerNode = scale.keysPerNode;
            rc.largeMessages = name == "rsort lg";
            verified = apps::runRadixSort(rt, proc, rc).verified;
        }
        ok[static_cast<std::size_t>(rt.self())] = verified;
    };

    SuiteResult result;
    result.seconds = sim::toSeconds(c.run(body));
    result.eventsFired = s.events().firedCount();
    result.verified = true;
    double cpu = 0, net = 0;
    for (int i = 0; i < nodes; ++i) {
        if (!ok[static_cast<std::size_t>(i)])
            result.verified = false;
        cpu += sim::toSeconds(c.runtime(i).profile().compute);
        net += sim::toSeconds(c.runtime(i).profile().comm);
    }
    result.cpuSeconds = cpu / nodes;
    result.netSeconds = net / nodes;
    return result;
}

} // namespace unet::bench

#endif // UNET_BENCH_SPLITC_SUITE_HH
