/**
 * @file
 * Figure 3: Fast Ethernet transmission timeline for a 40-byte message.
 *
 * Regenerates the paper's step-by-step breakdown of the U-Net/FE send
 * trap: eight labelled steps summing to ~4.2 us of processor overhead,
 * of which ~20% is the trap itself.
 */

#include "bench/harness.hh"

using namespace unet;
using namespace unet::bench;

int
main()
{
    sim::Simulation s;
    RawPair rig(s, Fabric::FeBay);

    UNetFe::StepTrace trace;
    sim::Process echo(s, "echo", [](sim::Process &) {});
    sim::Process tx(s, "tx", [&](sim::Process &self) {
        auto &fe = static_cast<UNetFe &>(rig.unetOf(0));
        fe.setTxTrace(&trace);
        rawSend(fe, self, rig.ep(0), rig.chan(0), 40, 16384);
        fe.setTxTrace(nullptr);
    });
    rig.wire(tx, echo);
    tx.start();
    s.run();

    std::printf("Figure 3: U-Net/FE transmission timeline, 40-byte "
                "message (60-byte frame)\n");
    std::printf("%-52s %10s %10s\n", "step", "cost (us)", "cum (us)");
    double cum = 0;
    for (std::size_t i = 0; i < trace.size(); ++i) {
        double us = sim::toMicroseconds(trace[i].second);
        cum += us;
        std::printf("%2zu. %-48s %10.2f %10.2f\n", i + 1,
                    trace[i].first.c_str(), us, cum);
    }
    double trap_frac =
        trace.empty() ? 0.0
                      : sim::toMicroseconds(trace.front().second +
                                            trace.back().second) / cum;
    std::printf("\ntotal processor overhead: %.2f us  (paper: ~4.2 us)\n",
                cum);
    std::printf("trap entry+exit share:    %.0f%%    (paper: ~20%%)\n",
                trap_frac * 100);
    return 0;
}
