/**
 * @file
 * Figure 3: Fast Ethernet transmission timeline for a 40-byte message.
 *
 * Regenerates the paper's step-by-step breakdown of the U-Net/FE send
 * trap: eight labelled steps summing to ~4.2 us of processor overhead,
 * of which ~20% is the trap itself. The rows are the Step spans the
 * kernel agent records into the simulation's TraceSession; pass
 * `--trace FILE` / `--metrics FILE` to also export the raw artifacts.
 */

#include "bench/harness.hh"

using namespace unet;
using namespace unet::bench;

int
main(int argc, char **argv)
{
    ObsOutputs outs(argc, argv);

    sim::Simulation s;
    s.enableTrace();
    RawPair rig(s, Fabric::FeBay);

    sim::Process echo(s, "echo", [](sim::Process &) {});
    sim::Process tx(s, "tx", [&](sim::Process &self) {
        rawSend(rig.unetOf(0), self, rig.ep(0), rig.chan(0), 40, 16384);
    });
    rig.wire(tx, echo);
    tx.start();
    s.run();

    std::printf("Figure 3: U-Net/FE transmission timeline, 40-byte "
                "message (60-byte frame)\n");
    std::printf("%-52s %10s %10s\n", "step", "cost (us)", "cum (us)");
#if UNET_TRACE
    // One message: the sender's Step spans come out in timeline order.
    auto *tr = s.trace();
    double cum = 0, trap = 0;
    std::size_t i = 0;
    tr->forEach([&](const obs::Span &sp) {
        if (sp.kind != obs::SpanKind::Step ||
            tr->nameOf(sp.track) != "A.cpu")
            return;
        double us = sim::toMicroseconds(sp.end - sp.start);
        cum += us;
        const std::string &label = tr->nameOf(sp.label);
        if (label == "trap entry" || label == "return from trap")
            trap += us;
        std::printf("%2zu. %-48s %10.2f %10.2f\n", ++i, label.c_str(),
                    us, cum);
    });
    std::printf("\ntotal processor overhead: %.2f us  (paper: ~4.2 us)\n",
                cum);
    std::printf("trap entry+exit share:    %.0f%%    (paper: ~20%%)\n",
                cum > 0 ? trap / cum * 100 : 0.0);
#else
    std::printf("(tracing compiled out; rebuild with -DUNET_TRACE=ON "
                "to regenerate the timeline)\n");
#endif
    outs.write(s);
    return 0;
}
