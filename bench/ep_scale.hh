/**
 * @file
 * Measurement core for the endpoint-virtualization scaling curve.
 *
 * One sender host drives a round-robin ping-pong over W materialized
 * endpoints (W = min(N, 64): the FE port byte and the host memory
 * arena bound the live working set) against a single echo endpoint on
 * a second host; the remaining N - W endpoints are registered cold in
 * the sender's EndpointTable — ids the OS service tracks whose NIC
 * state notionally lives paged out in host memory. The sender NIC's
 * ResidencyCache is clamped to the hot-set capacity under test, so
 * round-robin traffic over W > H endpoints is the LRU worst case:
 * every doorbell faults, and the measured round-trip inflates by
 * exactly the modeled page-in/page-out costs.
 *
 * Shared by bench/ep_scale (the published curve) and the perturbation
 * stability test (digests must be bit-identical across salts 1-5).
 */

#ifndef UNET_BENCH_EP_SCALE_HH
#define UNET_BENCH_EP_SCALE_HH

#include <cstdint>
#include <vector>

#include "bench/harness.hh"

namespace unet::bench {

/** One (fabric, N, H) cell of the scaling curve. */
struct EpScaleResult
{
    bool ok = false;

    /** Mean measured round-trip, microseconds. */
    double rttUs = 0.0;

    /** Sender-NIC residency faults per simulated second of the
     *  measured window (0 when the working set fits the hot set). */
    double faultsPerSec = 0.0;

    std::uint64_t faults = 0;
    std::uint64_t evictions = 0;
    std::uint64_t hits = 0;

    /** Ids the sender's endpoint table carries (cold tail included). */
    std::size_t tableSize = 0;

    /** Order-sensitive digest of every measured round-trip in ticks
     *  plus the final residency counters: bit-identical across
     *  perturbation salts or the determinism gate fails. */
    std::uint64_t digest = 0;
};

namespace detail {

inline std::uint64_t
mix64(std::uint64_t h, std::uint64_t v)
{
    h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
    h *= 0xff51afd7ed558ccdull;
    return h ^ (h >> 33);
}

} // namespace detail

/**
 * Run one scaling-curve cell: @p total endpoint ids on the sender
 * (min(total, 64) materialized, the rest cold), sender hot-set
 * capacity @p hot_capacity, @p rounds measured ping-pong sweeps after
 * one warmup sweep.
 */
inline EpScaleResult
runEpScale(Fabric fabric, std::size_t total, std::size_t hot_capacity,
           int rounds = 3)
{
    constexpr std::size_t kMessageBytes = 40;
    constexpr std::uint32_t kSenderTxOffset = 4096;
    const std::size_t working = total < 64 ? total : 64;

    RigOptions opts;
    opts.feSpec.vep.hotCapacity = hot_capacity;
    opts.pcaSpec.vep.hotCapacity = hot_capacity;

    sim::Simulation s;
    RawPair rig(s, fabric, opts);
    const bool atm = rig.isAtm();

    EpScaleResult res;
    std::vector<sim::Tick> rtts;
    rtts.reserve(static_cast<std::size_t>(rounds) * working);
    sim::Tick meas_start = -1, meas_end = -1;
    std::uint64_t faults_at_start = 0;
    int delivered = 0;
    const int expected =
        (rounds + 1) * static_cast<int>(working);
    Endpoint *echo_ep = nullptr;

    // Echo fiber: every request bounces straight back on its arrival
    // channel. The single server-side endpoint stays hot; all the
    // residency churn under study happens on the sender NIC.
    sim::Process echo(s, "echo", [&](sim::Process &self) {
        auto &un = rig.unetOf(1);
        auto &ep = *echo_ep;
        for (int i = 0; i < 8; ++i)
            un.postFree(self, ep,
                        {static_cast<std::uint32_t>(i * 2048), 2048});
        RecvDescriptor rd;
        while (delivered < expected) {
            if (!ep.wait(self, rd, sim::seconds(1)))
                return;
            ++delivered;
            ChannelId back = rd.channel;
            if (!rd.isSmall)
                for (std::uint8_t b = 0; b < rd.bufferCount; ++b)
                    un.postFree(self, ep,
                                {rd.buffers[b].offset, 2048});
            rawSend(un, self, ep, back, kMessageBytes, 16384, !atm);
            un.flush(self, ep);
        }
    });

    std::vector<Endpoint *> eps(working, nullptr);
    std::vector<ChannelId> chans(working, invalidChannel);

    sim::Process sender(s, "sender", [&](sim::Process &self) {
        auto &un = rig.unetOf(0);
        for (std::size_t i = 0; i < working; ++i)
            for (int b = 0; b < 2; ++b)
                un.postFree(self, *eps[i],
                            {static_cast<std::uint32_t>(b * 2048),
                             2048});
        RecvDescriptor rd;
        for (int r = 0; r < rounds + 1; ++r) {
            if (r == 1) {
                meas_start = s.now();
                faults_at_start = rig.residency(0).faults();
            }
            for (std::size_t i = 0; i < working; ++i) {
                sim::Tick t0 = s.now();
                rawSend(un, self, *eps[i], chans[i], kMessageBytes,
                        kSenderTxOffset, !atm);
                un.flush(self, *eps[i]);
                if (!eps[i]->wait(self, rd, sim::seconds(1)))
                    return;
                if (!rd.isSmall)
                    for (std::uint8_t b = 0; b < rd.bufferCount; ++b)
                        un.postFree(self, *eps[i],
                                    {rd.buffers[b].offset, 2048});
                if (r > 0)
                    rtts.push_back(s.now() - t0);
            }
        }
        meas_end = s.now();
        res.ok = true;
    });

    // Materialize the working set: small rings, an 8 KB buffer area
    // (two 2 KB receive slots + one TX slot), W of them per 4 MB host
    // arena. The echo endpoint keeps stock queue depths but needs a
    // channel per sender.
    EndpointConfig sender_cfg;
    sender_cfg.sendQueueDepth = 8;
    sender_cfg.recvQueueDepth = 8;
    sender_cfg.freeQueueDepth = 8;
    sender_cfg.bufferAreaBytes = 8 * 1024;
    sender_cfg.maxChannels = 2;

    EndpointConfig echo_cfg;
    echo_cfg.bufferAreaBytes = 32 * 1024;
    echo_cfg.maxChannels = working + 4;

    auto &un_a = rig.unetOf(0);
    auto &un_b = rig.unetOf(1);
    echo_ep = &un_b.createEndpoint(&echo, echo_cfg);
    for (std::size_t i = 0; i < working; ++i)
        eps[i] = &un_a.createEndpoint(&sender, sender_cfg);

    // The cold tail: ids N = W..total-1 exist (the table knows them,
    // the OS accounts for them) but own no rings and no buffer area.
    un_a.table().reserve(total);
    for (std::size_t i = working; i < total; ++i)
        un_a.table().registerCold();

    for (std::size_t i = 0; i < working; ++i) {
        ChannelId at_b = invalidChannel;
        rig.connectExtra(*eps[i], *echo_ep, chans[i], at_b);
    }

    echo.start();
    sender.start(sim::microseconds(5));
    s.run();

    if (!res.ok || rtts.empty())
        return res;

    const vep::ResidencyCache &cache = rig.residency(0);
    res.faults = cache.faults();
    res.evictions = cache.evictions();
    res.hits = cache.hits();
    res.tableSize = un_a.table().size();

    sim::Tick sum = 0;
    std::uint64_t digest = 0x243f6a8885a308d3ull;
    for (sim::Tick t : rtts) {
        sum += t;
        digest = detail::mix64(digest,
                               static_cast<std::uint64_t>(t));
    }
    digest = detail::mix64(digest, res.faults);
    digest = detail::mix64(digest, res.evictions);
    digest = detail::mix64(digest, res.hits);
    res.digest = digest;
    res.rttUs = sim::toMicroseconds(sum) /
        static_cast<double>(rtts.size());
    if (meas_end > meas_start) {
        double secs = sim::toSeconds(meas_end - meas_start);
        res.faultsPerSec =
            static_cast<double>(res.faults - faults_at_start) / secs;
    }
    return res;
}

} // namespace unet::bench

#endif // UNET_BENCH_EP_SCALE_HH
