/**
 * @file
 * Endpoint-virtualization scaling curve, 1 -> 10^6 endpoints.
 *
 * For each NIC and each hot-set capacity, sweep the total endpoint
 * count N over six decades and report the mean ping-pong round-trip
 * and the sender-NIC residency fault rate. min(N, 64) endpoints are
 * materialized and driven round-robin; the rest are cold
 * registrations in the sender's endpoint table. Two regimes anchor
 * the curve:
 *
 *  - working set <= hot set (H=256 column, or N <= H): fully
 *    resident, zero faults, and the round-trip must match today's
 *    fixed-endpoint fast path — the virtualization layer is free when
 *    a real NIC could have held the state;
 *
 *  - working set > hot set (H=16 column past N=16): round-robin is
 *    the LRU adversary, so every doorbell pages in and the round-trip
 *    carries the page-in/page-out costs.
 *
 * Emits unet-bench-v1 JSON for tools/bench_compare.py: CI fails if
 * the resident-path latency regresses or the fault accounting drifts.
 *
 * Usage: ep_scale [output.json]   (default BENCH_ep_scale.json)
 */

#include <cstdio>
#include <string>
#include <vector>

#include "bench/ep_scale.hh"

using namespace unet;
using namespace unet::bench;

int
main(int argc, char **argv)
{
    const char *out_path = argc > 1 ? argv[1] : "BENCH_ep_scale.json";

    const std::size_t counts[] = {1,      10,      100,    1000,
                                  10000, 100000, 1000000};
    const std::size_t hots[] = {16, 256};

    struct Row
    {
        std::string name;
        double value;
        const char *unit;
    };
    std::vector<Row> rows;

    for (Fabric fabric : {Fabric::FeBay, Fabric::AtmOc3}) {
        const char *nic = fabric == Fabric::FeBay ? "fe" : "atm";
        for (std::size_t hot : hots) {
            std::printf("%s hot-set %zu: endpoints, RTT us, "
                        "faults/s, evictions\n",
                        fabric == Fabric::FeBay ? "U-Net/FE"
                                                : "U-Net/ATM",
                        hot);
            for (std::size_t n : counts) {
                EpScaleResult r = runEpScale(fabric, n, hot);
                if (!r.ok) {
                    std::fprintf(stderr,
                                 "%s n=%zu h=%zu: measurement "
                                 "stalled\n",
                                 nic, n, hot);
                    return 1;
                }
                std::printf("%10zu %10.1f %12.0f %10llu\n", n,
                            r.rttUs, r.faultsPerSec,
                            static_cast<unsigned long long>(
                                r.evictions));
                std::string base = std::string(nic) + "_h" +
                    std::to_string(hot) + "_n" + std::to_string(n);
                rows.push_back({base + "_rtt_us", r.rttUs, "us"});
                rows.push_back({base + "_faults_per_sec",
                                r.faultsPerSec, "1/s"});
            }
        }
    }

    std::FILE *out = std::fopen(out_path, "w");
    if (!out) {
        std::fprintf(stderr, "cannot write %s\n", out_path);
        return 1;
    }
    std::fprintf(out, "{\n  \"format\": \"unet-bench-v1\",\n"
                      "  \"benchmarks\": [\n");
    for (std::size_t i = 0; i < rows.size(); ++i)
        std::fprintf(out,
                     "    {\"name\": \"%s\", \"value\": %.1f, "
                     "\"unit\": \"%s\", \"lower_is_better\": true}%s\n",
                     rows[i].name.c_str(), rows[i].value,
                     rows[i].unit, i + 1 < rows.size() ? "," : "");
    std::fprintf(out, "  ]\n}\n");
    std::fclose(out);
    std::printf("wrote %s\n", out_path);
    return 0;
}
