/**
 * @file
 * Ablation: i960 transmit-queue polling policy.
 *
 * The PCA-200 firmware polls each endpoint's transmit queue;
 * "endpoints with recent activity are polled more frequently given
 * that they are most likely to correspond to a running process." This
 * bench sweeps the active/idle poll latencies and shows their effect
 * on the single-cell round trip.
 */

#include "bench/harness.hh"

using namespace unet;
using namespace unet::bench;

int
main()
{
    std::printf("Ablation: i960 TX poll latency vs 40-byte ATM round "
                "trip\n\n");
    std::printf("%14s %14s %12s\n", "active poll", "idle poll",
                "RTT (us)");
    const double actives[] = {0.5, 1.0, 2.0, 4.0};
    const double idles[] = {2.0, 6.0, 12.0, 24.0};
    for (double active : actives) {
        for (double idle : idles) {
            if (idle < active)
                continue;
            RigOptions opts;
            opts.pcaSpec.txPollActive = sim::microsecondsF(active);
            opts.pcaSpec.txPollIdle = sim::microsecondsF(idle);
            std::printf("%12.1fus %12.1fus %12.1f\n", active, idle,
                        roundTripUs(Fabric::AtmOc3, 40, 8, opts));
        }
    }
    std::printf("\n(weighted polling keeps the *idle* latency out of "
                "the critical path for busy endpoints)\n");

    // Show the weighting working: first send (idle poll) vs steady
    // state (active poll).
    RigOptions base;
    base.pcaSpec.txPollIdle = sim::microseconds(24);
    std::printf("\nwith a 24 us idle poll, steady-state RTT is still "
                "%.1f us\n",
                roundTripUs(Fabric::AtmOc3, 40, 8, base));
    return 0;
}
