/**
 * @file
 * Shared rigs for the paper-reproduction benches.
 *
 * These harnesses measure *simulated* time: they print the same rows
 * and series the paper's figures and tables report, regenerated from
 * the model.
 */

#ifndef UNET_BENCH_HARNESS_HH
#define UNET_BENCH_HARNESS_HH

#include <cstdarg>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "atm/switch.hh"
#include "eth/hub.hh"
#include "eth/link.hh"
#include "eth/switch.hh"
#include "fault/attach.hh"
#include "obs/export.hh"
#include "unet/unet_atm.hh"
#include "unet/unet_fe.hh"

namespace unet::bench {

/**
 * Observability outputs shared by the figure benches: `--trace FILE`
 * writes a Perfetto trace_event JSON of the run's TraceSession,
 * `--metrics FILE` a flat JSON snapshot of the metrics registry.
 */
struct ObsOutputs
{
    const char *tracePath = nullptr;
    const char *metricsPath = nullptr;

    ObsOutputs(int argc, char **argv)
    {
        for (int i = 1; i + 1 < argc; ++i) {
            if (!std::strcmp(argv[i], "--trace"))
                tracePath = argv[i + 1];
            else if (!std::strcmp(argv[i], "--metrics"))
                metricsPath = argv[i + 1];
        }
    }

    bool requested() const { return tracePath || metricsPath; }

    /** Write whatever was requested; call after run(), before
     *  teardown. */
    void
    write(sim::Simulation &s) const
    {
        if (tracePath) {
#if UNET_TRACE
            if (auto *tr = s.trace()) {
                std::ofstream os(tracePath);
                obs::writePerfettoJson(os, *tr);
                std::printf("# trace: %zu spans -> %s\n", tr->size(),
                            tracePath);
            } else {
                std::printf("# --trace: no trace session enabled\n");
            }
#else
            std::printf("# --trace: tracing compiled out; rebuild with "
                        "-DUNET_TRACE=ON\n");
#endif
        }
        if (metricsPath) {
            std::ofstream os(metricsPath);
            s.metrics().writeJson(os);
            std::printf("# metrics -> %s\n", metricsPath);
        }
    }
};

/** Fabric selection for the raw (non-Split-C) rigs. */
enum class Fabric { FeHub, FeBay, FeFn100, AtmOc3, AtmTaxi };

inline const char *
fabricName(Fabric f)
{
    switch (f) {
      case Fabric::FeHub:
        return "FE hub";
      case Fabric::FeBay:
        return "FE Bay28115";
      case Fabric::FeFn100:
        return "FE FN100";
      case Fabric::AtmOc3:
        return "ATM OC-3c";
      case Fabric::AtmTaxi:
        return "ATM TAXI-140";
    }
    return "?";
}

/** Spec overrides for ablation rigs. */
struct RigOptions
{
    UNetFeSpec feSpec;
    nic::Pca200Spec pcaSpec;
    eth::SwitchSpec switchSpec = eth::SwitchSpec::bay28115();
    bool overrideSwitch = false;
};

/**
 * Two nodes on a chosen fabric with raw U-Net endpoints — the rig for
 * the Fig. 5 round-trip and Fig. 6 bandwidth measurements.
 *
 * Processes are created by the caller (they own the endpoints); wire()
 * connects them after construction.
 */
class RawPair
{
  public:
    RawPair(sim::Simulation &s, Fabric fabric, RigOptions opts = {})
        : s(s), fabric(fabric), opts(opts)
    {
        host::CpuSpec cpu = host::CpuSpec::pentium120();
        host::BusSpec bus = host::BusSpec::pci();
        hostA = std::make_unique<host::Host>(s, "A", cpu, bus);
        hostB = std::make_unique<host::Host>(s, "B", cpu, bus);

        switch (fabric) {
          case Fabric::FeHub:
            hub = std::make_unique<eth::Hub>(s);
            makeFe(*hub);
            break;
          case Fabric::FeBay:
            sw = std::make_unique<eth::Switch>(
                s, opts.overrideSwitch ? opts.switchSpec
                                       : eth::SwitchSpec::bay28115());
            makeFe(*sw);
            break;
          case Fabric::FeFn100:
            sw = std::make_unique<eth::Switch>(
                s, eth::SwitchSpec::fn100());
            makeFe(*sw);
            break;
          case Fabric::AtmOc3:
          case Fabric::AtmTaxi:
            makeAtm(fabric == Fabric::AtmOc3 ? atm::LinkSpec::oc3()
                                             : atm::LinkSpec::taxi140());
            break;
        }
    }

    /** Create endpoints owned by the given processes and connect. */
    void
    wire(sim::Process &proc_a, sim::Process &proc_b,
         EndpointConfig cfg = {})
    {
        epA = &unetA->createEndpoint(&proc_a, cfg);
        epB = &unetB->createEndpoint(&proc_b, cfg);
        if (feA) {
            UNetFe::connect(*feA, *epA, *feB, *epB, chanA, chanB);
        } else {
            UNetAtm::connect(*atmA, *epA, portA, *atmB, *epB, portB,
                             *signalling, chanA, chanB);
        }
    }

    /**
     * Arm @p plan on every custody boundary this rig has. Sites use
     * the canonical names with ".a"/".b" suffixes for the per-node
     * components (nic.fe.rx.a, atm.link.b.0, ...). The plan must be
     * declared *after* the Simulation: armed injectors register
     * metrics and must die first.
     */
    void
    attachFaults(fault::Plan &plan)
    {
        if (hub)
            fault::attach(plan, s, *hub);
        if (sw)
            fault::attach(plan, s, *sw);
        if (nicA)
            fault::attach(plan, s, *nicA, ".a");
        if (nicB)
            fault::attach(plan, s, *nicB, ".b");
        if (atmSw)
            fault::attach(plan, s, *atmSw);
        if (linkA)
            fault::attach(plan, s, *linkA, ".a");
        if (linkB)
            fault::attach(plan, s, *linkB, ".b");
        if (pcaA)
            fault::attach(plan, s, *pcaA, ".a");
        if (pcaB)
            fault::attach(plan, s, *pcaB, ".b");
    }

    /**
     * Connect two caller-created endpoints (A-side @p ep_a to B-side
     * @p ep_b) over the rig's fabric — the multi-endpoint analogue of
     * wire() for rigs that open more than one endpoint per host.
     */
    void
    connectExtra(Endpoint &ep_a, Endpoint &ep_b, ChannelId &chan_a,
                 ChannelId &chan_b)
    {
        if (feA) {
            UNetFe::connect(*feA, ep_a, *feB, ep_b, chan_a, chan_b);
        } else {
            UNetAtm::connect(*atmA, ep_a, portA, *atmB, ep_b, portB,
                             *signalling, chan_a, chan_b);
        }
    }

    /** The given side's NIC endpoint-residency cache. */
    vep::ResidencyCache &
    residency(int side)
    {
        if (feA)
            return (side ? *feB : *feA).residency();
        return (side ? *pcaB : *pcaA).residency();
    }

    UNet &unetOf(int side) { return side ? *unetB : *unetA; }
    Endpoint &ep(int side) { return side ? *epB : *epA; }
    ChannelId chan(int side) const { return side ? chanB : chanA; }
    host::Host &hostOf(int side) { return side ? *hostB : *hostA; }

    bool isAtm() const { return atmA != nullptr; }

    std::size_t
    maxMessage() const
    {
        // Sweep both fabrics over the same axis; the paper plots up to
        // the FE maximum (~1.5 KB).
        return UNetFe::maxMessage;
    }

  private:
    void
    makeFe(eth::Network &net)
    {
        nicA = std::make_unique<nic::Dc21140>(
            *hostA, net, eth::MacAddress::fromIndex(1));
        nicB = std::make_unique<nic::Dc21140>(
            *hostB, net, eth::MacAddress::fromIndex(2));
        auto fa = std::make_unique<UNetFe>(*hostA, *nicA, opts.feSpec);
        auto fb = std::make_unique<UNetFe>(*hostB, *nicB, opts.feSpec);
        feA = fa.get();
        feB = fb.get();
        unetA = std::move(fa);
        unetB = std::move(fb);
    }

    void
    makeAtm(atm::LinkSpec link_spec)
    {
        atmSw = std::make_unique<atm::Switch>(s);
        signalling = std::make_unique<atm::Signalling>(*atmSw);
        linkA = std::make_unique<atm::AtmLink>(s, link_spec);
        linkB = std::make_unique<atm::AtmLink>(s, link_spec);
        pcaA = std::make_unique<nic::Pca200>(*hostA, *linkA,
                                             opts.pcaSpec);
        pcaB = std::make_unique<nic::Pca200>(*hostB, *linkB,
                                             opts.pcaSpec);
        portA = atmSw->addPort(*linkA);
        portB = atmSw->addPort(*linkB);
        auto ua = std::make_unique<UNetAtm>(*hostA, *pcaA);
        auto ub = std::make_unique<UNetAtm>(*hostB, *pcaB);
        atmA = ua.get();
        atmB = ub.get();
        unetA = std::move(ua);
        unetB = std::move(ub);
    }

    sim::Simulation &s;
    Fabric fabric;
    RigOptions opts;
    std::unique_ptr<host::Host> hostA, hostB;
    std::unique_ptr<eth::Hub> hub;
    std::unique_ptr<eth::Switch> sw;
    std::unique_ptr<nic::Dc21140> nicA, nicB;
    std::unique_ptr<atm::Switch> atmSw;
    std::unique_ptr<atm::Signalling> signalling;
    std::unique_ptr<atm::AtmLink> linkA, linkB;
    std::unique_ptr<nic::Pca200> pcaA, pcaB;
    std::unique_ptr<UNet> unetA, unetB;
    UNetFe *feA = nullptr;
    UNetFe *feB = nullptr;
    UNetAtm *atmA = nullptr;
    UNetAtm *atmB = nullptr;
    std::size_t portA = 0, portB = 0;
    Endpoint *epA = nullptr;
    Endpoint *epB = nullptr;
    ChannelId chanA = invalidChannel, chanB = invalidChannel;
};

/**
 * Compose and post one raw U-Net message of @p size bytes.
 *
 * @p force_fragment keeps the send on the zero-copy buffer-area path
 * even for small messages — the only TX path the paper's U-Net/FE
 * has (inline sends are a U-Net/ATM single-cell feature).
 */
inline bool
rawSend(UNet &un, sim::Process &proc, Endpoint &ep, ChannelId chan,
        std::size_t size, std::uint32_t tx_buf_offset,
        bool force_fragment = false)
{
    SendDescriptor sd;
    sd.channel = chan;
    if (size <= un.inlineMax() && !force_fragment) {
        sd.isInline = true;
        sd.inlineLength = static_cast<std::uint32_t>(size);
    } else {
        sd.isInline = false;
        sd.fragmentCount = 1;
        sd.fragments[0] = {tx_buf_offset,
                           static_cast<std::uint32_t>(size)};
    }
    return un.send(proc, ep, sd);
}

/**
 * Measure the user-level round-trip time for @p size-byte messages
 * over @p fabric (median-free simple mean over @p rounds after one
 * warmup).
 */
inline double
roundTripUs(Fabric fabric, std::size_t size, int rounds = 8,
            RigOptions opts = {})
{
    sim::Simulation s;
    RawPair rig(s, fabric, opts);

    double total_us = 0;
    int measured = 0;

    sim::Process echo(s, "echo", [&](sim::Process &self) {
        auto &un = rig.unetOf(1);
        auto &ep = rig.ep(1);
        // Receive buffers for the non-inline path.
        for (int i = 0; i < 8; ++i)
            un.postFree(self, ep, {static_cast<std::uint32_t>(
                                       i * 2048),
                                   2048});
        auto &cpu = rig.hostOf(1).cpu();
        RecvDescriptor rd;
        for (int r = 0; r < rounds + 1; ++r) {
            if (!ep.wait(self, rd, sim::seconds(1)))
                return;
            // The application examines the message and composes the
            // reply in its buffer area: two real memcpys.
            cpu.busy(self, cpu.spec().memcpyTime(size));
            if (!rd.isSmall)
                for (std::uint8_t i = 0; i < rd.bufferCount; ++i)
                    un.postFree(self, ep,
                                {rd.buffers[i].offset, 2048});
            cpu.busy(self, cpu.spec().memcpyTime(size));
            rawSend(un, self, ep, rig.chan(1), size, 16384,
                    !rig.isAtm());
            un.flush(self, ep);
        }
    });

    sim::Process ping(s, "ping", [&](sim::Process &self) {
        auto &un = rig.unetOf(0);
        auto &ep = rig.ep(0);
        for (int i = 0; i < 8; ++i)
            un.postFree(self, ep, {static_cast<std::uint32_t>(
                                       i * 2048),
                                   2048});
        auto &cpu = rig.hostOf(0).cpu();
        RecvDescriptor rd;
        for (int r = 0; r < rounds + 1; ++r) {
            sim::Tick t0 = s.now();
            // Compose the message in the buffer area.
            cpu.busy(self, cpu.spec().memcpyTime(size));
            rawSend(un, self, ep, rig.chan(0), size, 16384,
                    !rig.isAtm());
            un.flush(self, ep);
            if (!ep.wait(self, rd, sim::seconds(1)))
                return;
            if (!rd.isSmall)
                for (std::uint8_t i = 0; i < rd.bufferCount; ++i)
                    un.postFree(self, ep,
                                {rd.buffers[i].offset, 2048});
            if (r > 0) { // skip warmup
                total_us += sim::toMicroseconds(s.now() - t0);
                ++measured;
            }
        }
    });

    rig.wire(ping, echo);
    echo.start();
    ping.start(sim::microseconds(5));
    s.run();
    return measured ? total_us / measured : -1.0;
}

#if UNET_TRACE
/**
 * roundTripUs() with a TraceSession enabled and custody stamped so the
 * spans of every measured round tile the round-trip interval exactly:
 * each side back-dates the next message's context to the instant the
 * previous custody ended (the measurement start for the first hop, the
 * receive-queue pop for the echo), recording the application turnaround
 * as an App span. The per-round custody durations therefore sum to the
 * measured RTT (tools/trace_report.py checks this).
 *
 * @p after runs before teardown with the live simulation (trace ring
 * and metrics intact) and the measured mean RTT in microseconds.
 */
inline double
roundTripTracedUs(
    Fabric fabric, std::size_t size, int rounds = 4, RigOptions opts = {},
    const std::function<void(sim::Simulation &, double)> &after = {})
{
    sim::Simulation s;
    s.enableTrace();
    RawPair rig(s, fabric, opts);

    double total_us = 0;
    int measured = 0;

    auto sendTraced = [&](UNet &un, sim::Process &self, Endpoint &ep,
                          ChannelId chan, sim::Tick handoff,
                          std::string_view app_track) {
        SendDescriptor sd;
        sd.channel = chan;
        if (size <= un.inlineMax() && rig.isAtm()) {
            sd.isInline = true;
            sd.inlineLength = static_cast<std::uint32_t>(size);
        } else {
            sd.isInline = false;
            sd.fragmentCount = 1;
            sd.fragments[0] = {16384, static_cast<std::uint32_t>(size)};
        }
        auto *tr = s.trace();
        tr->begin(sd.trace, handoff);
        // Application turnaround, from the previous custody end to this
        // post; advances the handoff so TxPost starts at the post.
        tr->hop(sd.trace, obs::SpanKind::App, app_track, s.now());
        return un.send(self, ep, sd);
    };

    sim::Process echo(s, "echo", [&](sim::Process &self) {
        auto &un = rig.unetOf(1);
        auto &ep = rig.ep(1);
        for (int i = 0; i < 8; ++i)
            un.postFree(self, ep,
                        {static_cast<std::uint32_t>(i * 2048), 2048});
        auto &cpu = rig.hostOf(1).cpu();
        RecvDescriptor rd;
        for (int r = 0; r < rounds + 1; ++r) {
            if (!ep.wait(self, rd, sim::seconds(1)))
                return;
            sim::Tick consumed = s.now();
            cpu.busy(self, cpu.spec().memcpyTime(size));
            if (!rd.isSmall)
                for (std::uint8_t i = 0; i < rd.bufferCount; ++i)
                    un.postFree(self, ep, {rd.buffers[i].offset, 2048});
            cpu.busy(self, cpu.spec().memcpyTime(size));
            sendTraced(un, self, ep, rig.chan(1), consumed, "B.app");
            un.flush(self, ep);
        }
    });

    sim::Process ping(s, "ping", [&](sim::Process &self) {
        auto &un = rig.unetOf(0);
        auto &ep = rig.ep(0);
        for (int i = 0; i < 8; ++i)
            un.postFree(self, ep,
                        {static_cast<std::uint32_t>(i * 2048), 2048});
        auto &cpu = rig.hostOf(0).cpu();
        RecvDescriptor rd;
        for (int r = 0; r < rounds + 1; ++r) {
            sim::Tick t0 = s.now();
            cpu.busy(self, cpu.spec().memcpyTime(size));
            sendTraced(un, self, ep, rig.chan(0), t0, "A.app");
            un.flush(self, ep);
            if (!ep.wait(self, rd, sim::seconds(1)))
                return;
            // Measured at the pop, where the reply's RxQueue span ends.
            if (r > 0) {
                total_us += sim::toMicroseconds(s.now() - t0);
                ++measured;
            }
            if (!rd.isSmall)
                for (std::uint8_t i = 0; i < rd.bufferCount; ++i)
                    un.postFree(self, ep, {rd.buffers[i].offset, 2048});
        }
    });

    rig.wire(ping, echo);
    echo.start();
    ping.start(sim::microseconds(5));
    s.run();

    double mean = measured ? total_us / measured : -1.0;
    if (after)
        after(s, mean);
    return mean;
}
#endif // UNET_TRACE

/**
 * Measure one-way streaming bandwidth in Mbit/s of payload for
 * @p size-byte messages over @p fabric.
 */
inline double
bandwidthMbps(Fabric fabric, std::size_t size, int messages = 400,
              RigOptions opts = {})
{
    sim::Simulation s;
    RawPair rig(s, fabric, opts);

    sim::Tick first_arrival = -1, last_arrival = -1;
    int delivered = 0;

    sim::Process sink(s, "sink", [&](sim::Process &self) {
        auto &un = rig.unetOf(1);
        auto &ep = rig.ep(1);
        for (int i = 0; i < 24; ++i)
            un.postFree(self, ep, {static_cast<std::uint32_t>(
                                       i * 2048),
                                   2048});
        RecvDescriptor rd;
        while (delivered < messages) {
            if (!ep.wait(self, rd, sim::milliseconds(200)))
                return; // stream dried up (drops); report what we saw
            if (first_arrival < 0)
                first_arrival = s.now();
            last_arrival = s.now();
            ++delivered;
            if (!rd.isSmall)
                for (std::uint8_t i = 0; i < rd.bufferCount; ++i)
                    un.postFree(self, ep,
                                {rd.buffers[i].offset, 2048});
        }
    });

    sim::Process source(s, "source", [&](sim::Process &self) {
        auto &un = rig.unetOf(0);
        auto &ep = rig.ep(0);
        // Rotate the TX buffer: the zero-copy contract forbids
        // re-posting a buffer that is still in flight, and with a
        // 64-deep send queue plus a 64-slot device ring up to 128
        // sends can be outstanding at once. The source never posts
        // receive buffers, so the whole area is available.
        std::uint32_t slot_bytes = 2048;
        while (slot_bytes < size)
            slot_bytes *= 2;
        const std::uint32_t slots = static_cast<std::uint32_t>(
            ep.buffers().size() / slot_bytes);
        for (int m = 0; m < messages; ++m) {
            std::uint32_t tx_off =
                (static_cast<std::uint32_t>(m) % slots) * slot_bytes;
            while (!rawSend(un, self, ep, rig.chan(0), size, tx_off,
                            !rig.isAtm())) {
                // Send queue full: give the device time to drain.
                self.delay(sim::microseconds(20));
                un.flush(self, ep);
            }
        }
        un.flush(self, ep);
        // Keep re-kicking until the queue drains.
        while (!rig.ep(0).sendQueue().empty()) {
            self.delay(sim::microseconds(50));
            un.flush(self, ep);
        }
    });

    rig.wire(source, sink);
    sink.start();
    source.start(sim::microseconds(5));
    s.run();

    if (delivered < 2 || last_arrival <= first_arrival)
        return 0.0;
    double bits = static_cast<double>(delivered - 1) *
        static_cast<double>(size) * 8.0;
    double secs = sim::toSeconds(last_arrival - first_arrival);
    return bits / secs / 1e6;
}

/**
 * Result collector for a figure sweep: one x-axis plus one series per
 * column (fabric). The vectors are reserved up front and reused across
 * collect passes — begin() clears but keeps capacity — so repeated
 * sweeps (e.g. wall-clock trials in bench/macro_wallclock) perform no
 * steady-state allocations, instead of reallocating every row at every
 * message-size step.
 */
class Sweep
{
  public:
    /** Start a (re)collection of @p series_count series, hinting
     *  @p points_hint points per series. Keeps prior capacity. */
    void
    begin(std::size_t series_count, std::size_t points_hint)
    {
        if (_series.size() < series_count)
            _series.resize(series_count);
        for (auto &s : _series) {
            s.clear();
            s.reserve(points_hint);
        }
        _xs.clear();
        _xs.reserve(points_hint);
    }

    /** Append the next x-axis point (message size). */
    void addPoint(std::size_t x) { _xs.push_back(x); }

    /** Append a value to series @p si at the current point. */
    void add(std::size_t si, double v) { _series[si].push_back(v); }

    std::size_t points() const { return _xs.size(); }
    std::size_t x(std::size_t i) const { return _xs[i]; }
    double value(std::size_t si, std::size_t i) const
    {
        return _series[si][i];
    }

  private:
    std::vector<std::size_t> _xs;
    std::vector<std::vector<double>> _series;
};

/** printf-style row helper. */
inline void
row(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::vprintf(fmt, args);
    va_end(args);
    std::printf("\n");
}

} // namespace unet::bench

#endif // UNET_BENCH_HARNESS_HH
