/**
 * @file
 * Figure 7: relative execution times of the six Split-C benchmarks,
 * normalized to the 2-node ATM cluster, split into computation (cpu)
 * and communication (net) parts.
 */

#include "bench/splitc_suite.hh"

using namespace unet;
using namespace unet::bench;

int
main(int argc, char **argv)
{
    bool full = argc > 1 && std::string(argv[1]) == "--full";
    SuiteScale scale = full ? SuiteScale::full() : SuiteScale{};

    std::printf("Figure 7: relative execution times "
                "(normalized to 2-node ATM; cpu/net split)\n\n");

    for (const auto &name : suiteBenchmarks()) {
        double baseline =
            runSuiteCell(name, true, 2, scale).seconds;
        std::printf("%s  (baseline 2-node ATM = 1.00 = %.3f s)\n",
                    name.c_str(), baseline);
        std::printf("  %-8s %8s %8s %8s %24s\n", "cluster", "rel",
                    "cpu", "net", "bar");
        for (int nodes : {2, 4, 8}) {
            for (bool atm : {true, false}) {
                SuiteResult r = runSuiteCell(name, atm, nodes, scale);
                double rel = r.seconds / baseline;
                double cpu_rel = r.cpuSeconds / baseline;
                double net_rel = r.netSeconds / baseline;
                // ASCII bar: '#' for cpu, '.' for net, 20 chars = 1.0.
                std::string bar(
                    static_cast<std::size_t>(cpu_rel * 20 + 0.5), '#');
                bar += std::string(
                    static_cast<std::size_t>(net_rel * 20 + 0.5), '.');
                std::printf("  %d %-6s %8.2f %8.2f %8.2f %-24s\n",
                            nodes, atm ? "ATM" : "FE", rel, cpu_rel,
                            net_rel, bar.c_str());
            }
        }
        std::printf("\n");
        std::fflush(stdout);
    }
    return 0;
}
