/**
 * @file
 * Ablation: the receive copy U-Net/FE cannot avoid.
 *
 * "The main benefit of the co-processor is to allow the network
 * interface to examine the packet header and DMA the data directly
 * into the correct user-space buffer, thereby eliminating a costly
 * copy." This bench turns the FE receive copy's cost off — modelling a
 * hypothetical header-splitting NIC — and reports latency and host
 * processor utilization.
 */

#include "bench/harness.hh"

using namespace unet;
using namespace unet::bench;

namespace {

/** Receiver kernel time consumed while sinking @p messages frames. */
double
rxKernelTimeUs(std::size_t size, bool charge_copy)
{
    RigOptions opts;
    opts.feSpec.chargeRxCopy = charge_copy;

    sim::Simulation s;
    RawPair rig(s, Fabric::FeBay, opts);
    const int messages = 50;
    int seen = 0;

    sim::Process sink(s, "sink", [&](sim::Process &self) {
        auto &un = rig.unetOf(1);
        auto &ep = rig.ep(1);
        for (int i = 0; i < 16; ++i)
            un.postFree(self, ep,
                        {static_cast<std::uint32_t>(i * 2048), 2048});
        RecvDescriptor rd;
        while (seen < messages &&
               ep.wait(self, rd, sim::milliseconds(50))) {
            ++seen;
            if (!rd.isSmall)
                for (std::uint8_t i = 0; i < rd.bufferCount; ++i)
                    un.postFree(self, ep,
                                {rd.buffers[i].offset, 2048});
        }
    });
    sim::Process source(s, "source", [&](sim::Process &self) {
        auto &un = rig.unetOf(0);
        for (int m = 0; m < messages; ++m) {
            while (!rawSend(un, self, rig.ep(0), rig.chan(0), size,
                            16384)) {
                self.delay(sim::microseconds(20));
                un.flush(self, rig.ep(0));
            }
        }
        un.flush(self, rig.ep(0));
    });
    rig.wire(source, sink);
    sink.start();
    source.start(sim::microseconds(5));
    s.run();
    return sim::toMicroseconds(rig.hostOf(1).cpu().kernelTime()) /
        messages;
}

} // namespace

int
main()
{
    std::printf("Ablation: receive copy vs hypothetical zero-copy "
                "receive (U-Net/FE)\n\n");
    std::printf("%8s | %12s %12s | %14s %14s\n", "bytes", "RTT copy",
                "RTT nocopy", "rx-kern copy", "rx-kern nocopy");
    RigOptions nocopy;
    nocopy.feSpec.chargeRxCopy = false;
    for (std::size_t size : {100, 200, 400, 800, 1400}) {
        std::printf("%8zu | %10.1fus %10.1fus | %12.2fus %12.2fus\n",
                    size, roundTripUs(Fabric::FeBay, size),
                    roundTripUs(Fabric::FeBay, size, 8, nocopy),
                    rxKernelTimeUs(size, true),
                    rxKernelTimeUs(size, false));
    }
    std::printf("\n(per-message receiver kernel time is the paper's "
                "'processor utilization during message receive')\n");
    return 0;
}
