/**
 * @file
 * Figure 4: Fast Ethernet reception timeline for 40- and 100-byte
 * messages.
 *
 * The 40-byte message rides the small-message optimization (copied
 * straight into the receive descriptor, ~4.1 us); the 100-byte message
 * allocates a free buffer and pays the copy slope (~5.6 us total,
 * 1.42 us per extra 100 bytes at the Pentium's 70 MB/s). The rows are
 * the Step spans the receiving kernel agent records into the
 * TraceSession; pass `--trace FILE` / `--metrics FILE` on the first
 * (40-byte) run to export the raw artifacts.
 */

#include "bench/harness.hh"

using namespace unet;
using namespace unet::bench;

namespace {

/** One labelled timeline row: (step name, cost in us). */
using Timeline = std::vector<std::pair<std::string, double>>;

Timeline
receiveOnce(std::size_t size, const ObsOutputs *outs = nullptr)
{
    sim::Simulation s;
    s.enableTrace();
    RawPair rig(s, Fabric::FeBay);

    sim::Process rx(s, "rx", [&](sim::Process &self) {
        auto &fe = static_cast<UNetFe &>(rig.unetOf(1));
        for (int i = 0; i < 4; ++i)
            fe.postFree(self, rig.ep(1),
                        {static_cast<std::uint32_t>(i * 2048), 2048});
        RecvDescriptor rd;
        rig.ep(1).wait(self, rd, sim::seconds(1));
    });
    sim::Process tx(s, "tx", [&](sim::Process &self) {
        rawSend(rig.unetOf(0), self, rig.ep(0), rig.chan(0), size,
                16384);
    });
    rig.wire(tx, rx);
    rx.start();
    tx.start(sim::microseconds(2));
    s.run();

    Timeline t;
#if UNET_TRACE
    // One message: the receiver's Step spans come out in order.
    auto *tr = s.trace();
    tr->forEach([&](const obs::Span &sp) {
        if (sp.kind == obs::SpanKind::Step &&
            tr->nameOf(sp.track) == "B.cpu")
            t.emplace_back(tr->nameOf(sp.label),
                           sim::toMicroseconds(sp.end - sp.start));
    });
#endif
    if (outs)
        outs->write(s);
    return t;
}

void
printTimeline(const char *title, const Timeline &steps)
{
    std::printf("%s\n", title);
    std::printf("%-52s %10s %10s\n", "step", "cost (us)", "cum (us)");
    double cum = 0;
    for (std::size_t i = 0; i < steps.size(); ++i) {
        cum += steps[i].second;
        std::printf("%2zu. %-48s %10.2f %10.2f\n", i + 1,
                    steps[i].first.c_str(), steps[i].second, cum);
    }
    std::printf("total handler time: %.2f us\n\n", cum);
}

double
total(const Timeline &steps)
{
    double sum = 0;
    for (const auto &[name, us] : steps)
        sum += us;
    return sum;
}

} // namespace

int
main(int argc, char **argv)
{
    ObsOutputs outs(argc, argv);

    std::printf("Figure 4: U-Net/FE reception timelines\n\n");
#if !UNET_TRACE
    std::printf("(tracing compiled out; rebuild with -DUNET_TRACE=ON "
                "to regenerate the timelines)\n");
#endif
    printTimeline("(a) 40-byte message — small-message path "
                  "(paper: ~4.1 us total)",
                  receiveOnce(40, &outs));
    printTimeline("(b) 100-byte message — buffer-allocation path "
                  "(paper: ~5.6 us total)",
                  receiveOnce(100));

    // The copy slope: +1.42 us per additional 100 bytes.
    double t100 = total(receiveOnce(100));
    double t500 = total(receiveOnce(500));
    std::printf("copy slope: %.2f us / 100 bytes  (paper: 1.42)\n",
                (t500 - t100) / 4.0);
    return 0;
}
