/**
 * @file
 * Figure 4: Fast Ethernet reception timeline for 40- and 100-byte
 * messages.
 *
 * The 40-byte message rides the small-message optimization (copied
 * straight into the receive descriptor, ~4.1 us); the 100-byte message
 * allocates a free buffer and pays the copy slope (~5.6 us total,
 * 1.42 us per extra 100 bytes at the Pentium's 70 MB/s memcpy).
 */

#include "bench/harness.hh"

using namespace unet;
using namespace unet::bench;

namespace {

UNetFe::StepTrace
receiveOnce(std::size_t size)
{
    sim::Simulation s;
    RawPair rig(s, Fabric::FeBay);
    UNetFe::StepTrace trace;

    sim::Process rx(s, "rx", [&](sim::Process &self) {
        auto &fe = static_cast<UNetFe &>(rig.unetOf(1));
        for (int i = 0; i < 4; ++i)
            fe.postFree(self, rig.ep(1),
                        {static_cast<std::uint32_t>(i * 2048), 2048});
        fe.setRxTrace(&trace);
        RecvDescriptor rd;
        rig.ep(1).wait(self, rd, sim::seconds(1));
        fe.setRxTrace(nullptr);
    });
    sim::Process tx(s, "tx", [&](sim::Process &self) {
        rawSend(rig.unetOf(0), self, rig.ep(0), rig.chan(0), size,
                16384);
    });
    rig.wire(tx, rx);
    rx.start();
    tx.start(sim::microseconds(2));
    s.run();
    return trace;
}

void
printTimeline(const char *title, const UNetFe::StepTrace &trace)
{
    std::printf("%s\n", title);
    std::printf("%-52s %10s %10s\n", "step", "cost (us)", "cum (us)");
    double cum = 0;
    for (std::size_t i = 0; i < trace.size(); ++i) {
        double us = sim::toMicroseconds(trace[i].second);
        cum += us;
        std::printf("%2zu. %-48s %10.2f %10.2f\n", i + 1,
                    trace[i].first.c_str(), us, cum);
    }
    std::printf("total handler time: %.2f us\n\n", cum);
}

} // namespace

int
main()
{
    std::printf("Figure 4: U-Net/FE reception timelines\n\n");
    printTimeline("(a) 40-byte message — small-message path "
                  "(paper: ~4.1 us total)",
                  receiveOnce(40));
    printTimeline("(b) 100-byte message — buffer-allocation path "
                  "(paper: ~5.6 us total)",
                  receiveOnce(100));

    // The copy slope: +1.42 us per additional 100 bytes.
    auto total = [](const UNetFe::StepTrace &t) {
        sim::Tick sum = 0;
        for (auto &[name, cost] : t)
            sum += cost;
        return sim::toMicroseconds(sum);
    };
    double t100 = total(receiveOnce(100));
    double t500 = total(receiveOnce(500));
    std::printf("copy slope: %.2f us / 100 bytes  (paper: 1.42)\n",
                (t500 - t100) / 4.0);
    return 0;
}
