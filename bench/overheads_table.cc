/**
 * @file
 * Section 4.4's headline overheads, measured from the model:
 *
 *  - null trap on the Pentium-120 ("under 1 us");
 *  - U-Net/FE send processor overhead (~4.2 us) and total send
 *    overhead (~5.4 us);
 *  - U-Net/ATM host send overhead (~1.5 us), i960 send (~10 us) and
 *    receive (~13 us) overheads.
 */

#include "bench/harness.hh"

using namespace unet;
using namespace unet::bench;

namespace {

/** Host processor time consumed by one send call. */
double
sendProcessorOverheadUs(Fabric fabric)
{
    sim::Simulation s;
    RawPair rig(s, fabric);
    sim::Tick busy = -1;
    sim::Process echo(s, "echo", [](sim::Process &) {});
    sim::Process tx(s, "tx", [&](sim::Process &self) {
        sim::Tick before = rig.hostOf(0).cpu().userTime();
        rawSend(rig.unetOf(0), self, rig.ep(0), rig.chan(0), 40, 16384,
                !rig.isAtm());
        busy = rig.hostOf(0).cpu().userTime() - before;
    });
    rig.wire(tx, echo);
    tx.start();
    s.run();
    return sim::toMicroseconds(busy);
}

/** Time from send() entry to the first bit on the wire — the paper's
 *  "total send overhead" (processor + device pipeline). */
double
totalSendOverheadUs(Fabric fabric)
{
    sim::Simulation s;
    RawPair rig(s, fabric);
    sim::Tick t0 = -1;
    sim::Process echo(s, "echo", [](sim::Process &) {});
    sim::Process tx(s, "tx", [&](sim::Process &self) {
        t0 = s.now();
        rawSend(rig.unetOf(0), self, rig.ep(0), rig.chan(0), 40, 16384,
                !rig.isAtm());
    });
    rig.wire(tx, echo);
    tx.start();
    s.run();
    auto &fe = static_cast<UNetFe &>(rig.unetOf(0));
    return sim::toMicroseconds(fe.nic().lastTxWireStart() - t0);
}

/** i960 busy time for one send / one receive of a 40-byte message. */
std::pair<double, double>
i960OverheadsUs()
{
    sim::Simulation s;
    RawPair rig(s, Fabric::AtmOc3);
    sim::Process rx(s, "rx", [&](sim::Process &self) {
        RecvDescriptor rd;
        rig.ep(1).wait(self, rd, sim::seconds(1));
    });
    sim::Process tx(s, "tx", [&](sim::Process &self) {
        rawSend(rig.unetOf(0), self, rig.ep(0), rig.chan(0), 40, 16384);
    });
    rig.wire(tx, rx);
    rx.start();
    tx.start();
    s.run();
    auto &atm_a = static_cast<UNetAtm &>(rig.unetOf(0));
    auto &atm_b = static_cast<UNetAtm &>(rig.unetOf(1));
    return {sim::toMicroseconds(atm_a.nic().i960().busyTime()),
            sim::toMicroseconds(atm_b.nic().i960().busyTime())};
}

} // namespace

int
main()
{
    std::printf("Section 4.4 overheads (40-byte message)\n");
    std::printf("%-44s %10s %10s\n", "metric", "paper", "measured");

    auto p120 = host::CpuSpec::pentium120();
    std::printf("%-44s %10s %9.2fus\n",
                "null trap (Pentium-120)", "<1 us",
                sim::toMicroseconds(p120.nullTrapCost()));

    std::printf("%-44s %10s %9.2fus\n",
                "U-Net/FE send processor overhead", "4.2 us",
                sendProcessorOverheadUs(Fabric::FeBay));
    std::printf("%-44s %10s %9.2fus\n",
                "U-Net/ATM host send overhead", "1.5 us",
                sendProcessorOverheadUs(Fabric::AtmOc3));

    auto [i960_tx, i960_rx] = i960OverheadsUs();
    std::printf("%-44s %10s %9.2fus\n", "i960 send overhead", "10 us",
                i960_tx);
    std::printf("%-44s %10s %9.2fus\n", "i960 receive overhead",
                "13 us", i960_rx);

    std::printf("%-44s %10s %9.2fus\n",
                "U-Net/FE total send (call-to-return)", "5.4 us",
                totalSendOverheadUs(Fabric::FeBay));
    std::printf("%-44s %10s %9.2fus\n",
                "U-Net/ATM total send (host+i960)", "11.5 us",
                sendProcessorOverheadUs(Fabric::AtmOc3) + i960_tx);
    return 0;
}
