/**
 * @file
 * Figure 5: application-to-application round-trip latency vs message
 * size for U-Net/FE (hub, Bay 28115, Cabletron FN100) and U-Net/ATM
 * (PCA-200 on OC-3c through an ASX-200).
 *
 * Paper anchors: 40-byte RTT of ~57 us (hub) to ~91 us (FN100) on FE
 * and ~89 us on ATM; slopes of ~25 us/100 B (FE) and ~17 us/100 B
 * (ATM); the ATM multi-cell cliff past 40 bytes (no single-cell
 * optimization: 130 us at 44 bytes rising to ~351 us at 1.5 KB).
 */

#include <vector>

#include "bench/harness.hh"

using namespace unet;
using namespace unet::bench;

int
main(int argc, char **argv)
{
    bool fine = argc > 1 && std::string(argv[1]) == "--fine";

    // `--trace FILE` / `--metrics FILE`: run one traced 40-byte round
    // trip per substrate class instead of the full sweep, exporting the
    // span timeline. Custody spans tile each round, so their durations
    // sum to the reported RTT (validated by tools/trace_report.py).
    ObsOutputs outs(argc, argv);
    if (outs.requested()) {
#if UNET_TRACE
        double rtt = roundTripTracedUs(
            Fabric::FeBay, 40, 4, {},
            [&](sim::Simulation &s, double mean) {
                outs.write(s);
                std::printf("traced 40B FE Bay28115 round trip: "
                            "%.2f us mean\n",
                            mean);
            });
        double atm = roundTripTracedUs(Fabric::AtmOc3, 40, 4, {});
        std::printf("traced 40B ATM OC-3c round trip:   %.2f us mean "
                    "(not exported)\n",
                    atm);
        return rtt > 0 && atm > 0 ? 0 : 1;
#else
        std::printf("tracing compiled out; rebuild with -DUNET_TRACE=ON "
                    "for --trace\n");
        return 1;
#endif
    }

    std::vector<std::size_t> sizes = {0,   8,   16,  24,  32,  40,
                                      44,  48,  64,  80,  96,  128,
                                      192, 256, 384, 512, 768, 1024,
                                      1280, 1494};
    if (fine)
        for (std::size_t v = 0; v <= 128; v += 4)
            sizes.push_back(v);

    const Fabric fabrics[] = {Fabric::FeHub, Fabric::FeBay,
                              Fabric::FeFn100, Fabric::AtmOc3};

    std::printf("Figure 5: round-trip latency (us) vs message size\n");
    std::printf("%8s", "bytes");
    for (Fabric f : fabrics)
        std::printf(" %14s", fabricName(f));
    std::printf("\n");

    Sweep sweep;
    sweep.begin(std::size(fabrics), sizes.size());
    for (std::size_t size : sizes) {
        sweep.addPoint(size);
        for (std::size_t fi = 0; fi < std::size(fabrics); ++fi)
            sweep.add(fi, roundTripUs(fabrics[fi], size));
    }

    for (std::size_t i = 0; i < sweep.points(); ++i) {
        std::printf("%8zu", sweep.x(i));
        for (std::size_t fi = 0; fi < std::size(fabrics); ++fi)
            std::printf(" %14.1f", sweep.value(fi, i));
        std::printf("\n");
    }

    // Headline anchors.
    std::printf("\nanchors (paper -> measured):\n");
    std::printf("  40B FE hub      57 us  -> %6.1f us\n",
                roundTripUs(Fabric::FeHub, 40));
    std::printf("  40B FE FN100    91 us  -> %6.1f us\n",
                roundTripUs(Fabric::FeFn100, 40));
    std::printf("  40B ATM OC-3c   89 us  -> %6.1f us\n",
                roundTripUs(Fabric::AtmOc3, 40));
    std::printf("  44B ATM OC-3c  130 us  -> %6.1f us  (multi-cell "
                "cliff)\n",
                roundTripUs(Fabric::AtmOc3, 44));
    std::printf("1494B ATM OC-3c ~351 us  -> %6.1f us\n",
                roundTripUs(Fabric::AtmOc3, 1494));
    double fe_slope = (roundTripUs(Fabric::FeHub, 1000) -
                       roundTripUs(Fabric::FeHub, 200)) / 8.0;
    double atm_slope = (roundTripUs(Fabric::AtmOc3, 1000) -
                        roundTripUs(Fabric::AtmOc3, 200)) / 8.0;
    std::printf("  FE slope        25 us/100B -> %4.1f\n", fe_slope);
    std::printf("  ATM slope       17 us/100B -> %4.1f\n", atm_slope);
    return 0;
}
