/**
 * @file
 * Table 1: execution times (seconds) for the six Split-C benchmarks on
 * 2/4/8 nodes of the Fast Ethernet (Pentium) and ATM (SPARCstation)
 * clusters.
 *
 * Absolute numbers depend on 1996-era CPU throughput calibrations; the
 * paper's qualitative claims are what this table must reproduce:
 * matrix multiply and the large-message sorts run faster on the ATM
 * cluster (bandwidth + SPARC floating point); the small-message sorts
 * run faster on Fast Ethernet (lower latency + Pentium integer).
 *
 * Pass --full for the paper's problem sizes (512 K keys per node,
 * 1024x1024 matrices); the default is scaled down for quick runs.
 */

#include "bench/splitc_suite.hh"

using namespace unet;
using namespace unet::bench;

int
main(int argc, char **argv)
{
    bool full = argc > 1 && std::string(argv[1]) == "--full";
    SuiteScale scale = full ? SuiteScale::full() : SuiteScale{};

    // Bisection helper: --cell "<name>" <nodes> <fe|atm> [keys]
    if (argc >= 5 && std::string(argv[1]) == "--cell") {
        std::string name = argv[2];
        int nodes = std::atoi(argv[3]);
        bool atm = std::string(argv[4]) == "atm";
        if (argc >= 6)
            scale.keysPerNode =
                static_cast<std::size_t>(std::atol(argv[5]));
        std::fprintf(stderr, "running cell %s %d %s...\n", name.c_str(),
                     nodes, atm ? "atm" : "fe");
        SuiteResult r = runSuiteCell(name, atm, nodes, scale);
        std::printf("%s nodes=%d %s: %.3f s cpu=%.3f net=%.3f "
                    "events=%llu %s\n",
                    name.c_str(), nodes, atm ? "atm" : "fe", r.seconds,
                    r.cpuSeconds, r.netSeconds,
                    static_cast<unsigned long long>(r.eventsFired),
                    r.verified ? "verified" : "FAILED");
        return r.verified ? 0 : 1;
    }

    std::printf("Table 1: Split-C benchmark execution times "
                "(simulated seconds)%s\n",
                full ? " [paper-size problems]" : " [scaled problems]");
    std::printf("%-12s %9s %9s %9s %9s %9s %9s\n", "benchmark",
                "2 FE", "2 ATM", "4 FE", "4 ATM", "8 FE", "8 ATM");

    for (const auto &name : suiteBenchmarks()) {
        std::printf("%-12s", name.c_str());
        for (int nodes : {2, 4, 8}) {
            for (bool atm : {false, true}) {
                SuiteResult r = runSuiteCell(name, atm, nodes, scale);
                std::printf(" %8.3f%s", r.seconds,
                            r.verified ? "" : "!");
            }
        }
        std::printf("\n");
        std::fflush(stdout);
    }
    std::printf("\n('!' marks a run whose output failed "
                "verification)\n");
    std::printf("expected shape: mm rows faster on ATM; *sm rows "
                "faster on FE.\n");
    std::printf("the *lg rows are bandwidth-bound only at large key "
                "counts: the ATM win\nappears from ~128K keys/node "
                "(see --full / EXPERIMENTS.md).\n");
    return 0;
}
