/**
 * @file
 * Wall-clock performance of the simulator itself on full paper-scale
 * workloads (host time, not simulated time): the Fig. 6 bandwidth
 * sweep and a scaled Table 1 Split-C cell. Emits machine-readable
 * results in the unet-bench-v1 JSON format consumed by
 * tools/bench_compare.py, so CI can fail on wall-clock regressions.
 *
 * Usage: macro_wallclock [output.json]   (default BENCH_macro_wallclock.json)
 */

#include <chrono>
#include <cstdio>
#include <string>

#include "bench/harness.hh"
#include "bench/splitc_suite.hh"

using namespace unet;
using namespace unet::bench;

namespace {

double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

/** One Fig.6-style bandwidth sweep; returns wall seconds. */
double
fig6SweepWall(Sweep &sweep)
{
    static const std::size_t sizes[] = {8,    16,   32,  40,   48,
                                        64,   88,   96,  128,  136,
                                        192,  256,  344, 384,  512,
                                        680,  768,  1024, 1200, 1344,
                                        1494};
    static const Fabric fabrics[] = {Fabric::FeHub, Fabric::FeBay,
                                     Fabric::AtmTaxi};
    auto t0 = std::chrono::steady_clock::now();
    sweep.begin(std::size(fabrics), std::size(sizes));
    for (std::size_t size : sizes) {
        sweep.addPoint(size);
        for (std::size_t fi = 0; fi < std::size(fabrics); ++fi)
            sweep.add(fi, bandwidthMbps(fabrics[fi], size));
    }
    return secondsSince(t0);
}

/** One scaled Table 1 cell on each fabric; returns wall seconds. */
double
table1CellWall()
{
    SuiteScale scale; // default scaled-down problem sizes
    auto t0 = std::chrono::steady_clock::now();
    runSuiteCell("mm 16x16", false, 4, scale);
    runSuiteCell("mm 16x16", true, 4, scale);
    return secondsSince(t0);
}

} // namespace

int
main(int argc, char **argv)
{
    const char *out_path =
        argc > 1 ? argv[1] : "BENCH_macro_wallclock.json";

    // Trial 0 warms code, allocator pools, and recycled buffers; the
    // reported figure is the best of the measured trials (least noise
    // from the machine, as wall-clock lower bounds are reproducible).
    Sweep sweep;
    double fig6_best = -1;
    for (int trial = 0; trial < 3; ++trial) {
        double wall = fig6SweepWall(sweep);
        if (trial == 0)
            continue;
        if (fig6_best < 0 || wall < fig6_best)
            fig6_best = wall;
    }

    double table1_best = -1;
    for (int trial = 0; trial < 3; ++trial) {
        double wall = table1CellWall();
        if (trial == 0)
            continue;
        if (table1_best < 0 || wall < table1_best)
            table1_best = wall;
    }

    std::printf("fig6_sweep_wall_seconds   %.3f\n", fig6_best);
    std::printf("table1_cell_wall_seconds  %.3f\n", table1_best);

    std::FILE *out = std::fopen(out_path, "w");
    if (!out) {
        std::fprintf(stderr, "cannot write %s\n", out_path);
        return 1;
    }
    std::fprintf(out, "{\n  \"format\": \"unet-bench-v1\",\n"
                      "  \"benchmarks\": [\n");
    std::fprintf(out,
                 "    {\"name\": \"fig6_sweep_wall_seconds\", "
                 "\"value\": %.4f, \"unit\": \"s\", "
                 "\"lower_is_better\": true},\n",
                 fig6_best);
    std::fprintf(out,
                 "    {\"name\": \"table1_cell_wall_seconds\", "
                 "\"value\": %.4f, \"unit\": \"s\", "
                 "\"lower_is_better\": true}\n",
                 table1_best);
    std::fprintf(out, "  ]\n}\n");
    std::fclose(out);
    std::printf("wrote %s\n", out_path);
    return 0;
}
