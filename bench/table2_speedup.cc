/**
 * @file
 * Table 2: speedup from 2 to 8 nodes for the ATM and Fast Ethernet
 * clusters.
 *
 * For matrix multiply the matrix size is constant, so the time drops
 * with nodes; for the sorts the keys *per node* are constant, so total
 * work grows and "speedup" is work-scaled:
 * (time2 * (8 nodes work / 2 nodes work)) / time8 = 4 * time2 / time8.
 */

#include "bench/splitc_suite.hh"

using namespace unet;
using namespace unet::bench;

int
main(int argc, char **argv)
{
    bool full = argc > 1 && std::string(argv[1]) == "--full";
    SuiteScale scale = full ? SuiteScale::full() : SuiteScale{};

    std::printf("Table 2: speedup from 2 to 8 nodes\n");
    std::printf("%-12s %9s %9s\n", "benchmark", "ATM", "FE");

    for (const auto &name : suiteBenchmarks()) {
        bool scaled_work = name.rfind("mm", 0) != 0;
        double factor = scaled_work ? 4.0 : 1.0;

        std::printf("%-12s", name.c_str());
        for (bool atm : {true, false}) {
            double t2 = runSuiteCell(name, atm, 2, scale).seconds;
            double t8 = runSuiteCell(name, atm, 8, scale).seconds;
            std::printf(" %9.2f", factor * t2 / t8);
        }
        std::printf("\n");
        std::fflush(stdout);
    }
    std::printf("\n(sorts keep keys/node constant: speedup is "
                "work-scaled by 4x)\n");
    return 0;
}
