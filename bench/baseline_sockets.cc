/**
 * @file
 * Baseline: traditional kernel sockets vs U-Net on identical hardware.
 *
 * The motivation table the paper builds on: direct user-level access
 * cuts an order of magnitude from small-message round trips compared
 * to the in-kernel UDP path (syscalls, double copies, protocol
 * processing, scheduler wakeups) — the configuration the Beowulf
 * cluster in related work used.
 */

#include "bench/harness.hh"
#include "sockets/udp_stack.hh"

using namespace unet;
using namespace unet::bench;

namespace {

double
udpRoundTripUs(std::size_t size, int rounds = 8)
{
    sim::Simulation s;
    eth::Switch sw(s, eth::SwitchSpec::bay28115());
    host::Host host_a(s, "a", host::CpuSpec::pentium120(),
                      host::BusSpec::pci());
    host::Host host_b(s, "b", host::CpuSpec::pentium120(),
                      host::BusSpec::pci());
    nic::Dc21140 nic_a(host_a, sw, eth::MacAddress::fromIndex(1));
    nic::Dc21140 nic_b(host_b, sw, eth::MacAddress::fromIndex(2));
    sockets::UdpStack stack_a(host_a, nic_a);
    sockets::UdpStack stack_b(host_b, nic_b);

    double total = 0;
    int measured = 0;

    sim::Process echo(s, "echo", [&](sim::Process &self) {
        auto &sock = stack_b.createSocket(&self, 7000);
        for (int r = 0; r < rounds + 1; ++r) {
            auto dg = sock.recvFrom(self, sim::seconds(1));
            if (!dg)
                return;
            sock.sendTo(self, dg->srcMac, dg->srcPort, dg->data);
        }
    });
    sim::Process ping(s, "ping", [&](sim::Process &self) {
        auto &sock = stack_a.createSocket(&self, 5000);
        std::vector<std::uint8_t> payload(size, 0x5A);
        for (int r = 0; r < rounds + 1; ++r) {
            sim::Tick t0 = s.now();
            sock.sendTo(self, stack_b.address(), 7000, payload);
            if (!sock.recvFrom(self, sim::seconds(1)))
                return;
            if (r > 0) {
                total += sim::toMicroseconds(s.now() - t0);
                ++measured;
            }
        }
    });

    echo.start();
    ping.start(sim::microseconds(5));
    s.run();
    return measured ? total / measured : -1;
}

double
udpBandwidthMbps(std::size_t size, int messages = 300)
{
    sim::Simulation s;
    eth::Switch sw(s, eth::SwitchSpec::bay28115());
    host::Host host_a(s, "a", host::CpuSpec::pentium120(),
                      host::BusSpec::pci());
    host::Host host_b(s, "b", host::CpuSpec::pentium120(),
                      host::BusSpec::pci());
    nic::Dc21140 nic_a(host_a, sw, eth::MacAddress::fromIndex(1));
    nic::Dc21140 nic_b(host_b, sw, eth::MacAddress::fromIndex(2));
    sockets::UdpStack stack_a(host_a, nic_a);
    sockets::UdpStack stack_b(host_b, nic_b);

    sim::Tick first = -1, last = -1;
    int got = 0;

    sim::Process sink(s, "sink", [&](sim::Process &self) {
        auto &sock = stack_b.createSocket(&self, 7000);
        while (got < messages) {
            auto dg = sock.recvFrom(self, sim::milliseconds(100));
            if (!dg)
                return;
            if (first < 0)
                first = s.now();
            last = s.now();
            ++got;
        }
    });
    sim::Process source(s, "source", [&](sim::Process &self) {
        auto &sock = stack_a.createSocket(&self, 5000);
        std::vector<std::uint8_t> payload(size, 0x5A);
        for (int m = 0; m < messages; ++m) {
            while (!sock.sendTo(self, stack_b.address(), 7000,
                                payload))
                self.delay(sim::microseconds(50));
        }
    });

    sink.start();
    source.start(sim::microseconds(5));
    s.run();
    if (got < 2 || last <= first)
        return 0;
    return (got - 1) * size * 8.0 / sim::toSeconds(last - first) / 1e6;
}

} // namespace

int
main()
{
    std::printf("Baseline: kernel UDP sockets vs U-Net/FE "
                "(Pentium-120, Bay 28115 switch)\n\n");
    std::printf("Round-trip latency (us)\n");
    std::printf("%8s %10s %10s %8s\n", "bytes", "sockets", "U-Net",
                "ratio");
    for (std::size_t size : {8, 40, 128, 512, 1024, 1400}) {
        double udp = udpRoundTripUs(size);
        double un = roundTripUs(Fabric::FeBay, size);
        std::printf("%8zu %10.1f %10.1f %7.1fx\n", size, udp, un,
                    udp / un);
    }

    std::printf("\nOne-way bandwidth (Mbit/s)\n");
    std::printf("%8s %10s %10s %8s\n", "bytes", "sockets", "U-Net",
                "ratio");
    for (std::size_t size : {40, 128, 512, 1024, 1400}) {
        double udp = udpBandwidthMbps(size);
        double un = bandwidthMbps(Fabric::FeBay, size, 300);
        std::printf("%8zu %10.1f %10.1f %7.1fx\n", size, udp, un,
                    un / udp);
    }
    std::printf("\n(U-Net's case: \"to reduce send and receive "
                "overheads ... even with small message sizes\")\n");
    return 0;
}
