/**
 * @file
 * Ablation: IPv4 encapsulation of U-Net/FE messages.
 *
 * The paper's scalability discussion: Ethernet MAC+port tags cannot
 * cross IP routers; "one solution would be to use a simple IPv4
 * encapsulation for U-Net messages; however, this would add
 * considerable communication overhead." This bench quantifies that
 * overhead: 20 header bytes per frame plus kernel header/checksum
 * work on both sides.
 */

#include "bench/harness.hh"

using namespace unet;
using namespace unet::bench;

int
main()
{
    RigOptions ipv4;
    ipv4.feSpec.ipv4Encapsulation = true;

    std::printf("Ablation: IPv4 encapsulation overhead "
                "(U-Net/FE, Bay 28115)\n\n");
    std::printf("%8s | %11s %11s %8s | %11s %11s\n", "bytes",
                "RTT raw", "RTT ipv4", "delta", "BW raw", "BW ipv4");
    for (std::size_t size : {8, 40, 128, 512, 1024, 1400}) {
        double rtt_raw = roundTripUs(Fabric::FeBay, size);
        double rtt_v4 = roundTripUs(Fabric::FeBay, size, 8, ipv4);
        double bw_raw = bandwidthMbps(Fabric::FeBay, size, 300);
        double bw_v4 = bandwidthMbps(Fabric::FeBay, size, 300, ipv4);
        std::printf("%8zu | %9.1fus %9.1fus %7.1f%% | %9.1fMb %9.1fMb\n",
                    size, rtt_raw, rtt_v4,
                    (rtt_v4 - rtt_raw) / rtt_raw * 100, bw_raw, bw_v4);
    }
    return 0;
}
