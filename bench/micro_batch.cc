/**
 * @file
 * Per-message sender overhead vs submission batch size, both NICs.
 *
 * One sender posts 256 40-byte messages through sendv() in batches of
 * 1/4/16/64 and we charge it the *simulated* time each sendv call
 * occupies the CPU — descriptor pushes plus, per batch, one kernel
 * trap + coalesced poll demand (U-Net/FE) or one PIO burst + doorbell
 * train (U-Net/ATM). The receiver drains with pollv on the other
 * host, and the sender waits for its queue to empty between batches
 * so every batch starts from the same quiescent state. The curve is
 * the point of the fast path: batch=1 must equal the scalar send cost
 * and larger batches must amortize the fixed per-trap/per-doorbell
 * cost toward the per-descriptor floor.
 *
 * Emits unet-bench-v1 JSON for tools/bench_compare.py, so CI fails if
 * the batched path loses its amortization.
 *
 * Usage: micro_batch [output.json]   (default BENCH_micro_batch.json)
 */

#include <cstdio>
#include <string>
#include <vector>

#include "bench/harness.hh"

using namespace unet;
using namespace unet::bench;

namespace {

constexpr std::size_t kMessageBytes = 40;
constexpr int kMessages = 256;

/**
 * Simulated sender occupancy per message, in nanoseconds, when the
 * sender posts in batches of @p batch over @p fabric.
 */
double
overheadPerMessageNs(Fabric fabric, std::size_t batch)
{
    sim::Simulation s;
    RawPair rig(s, fabric);

    int delivered = 0;
    sim::Tick occupancy = 0;

    sim::Process sink(s, "sink", [&](sim::Process &self) {
        auto &un = rig.unetOf(1);
        auto &ep = rig.ep(1);
        for (int i = 0; i < 32; ++i)
            un.postFree(self, ep,
                        {static_cast<std::uint32_t>(i * 2048), 2048});
        RecvDescriptor rd[64];
        while (delivered < kMessages) {
            RecvDescriptor first;
            if (!ep.wait(self, first, sim::milliseconds(200)))
                return; // stalled; report what was measured
            rd[0] = first;
            std::size_t got = 1 + un.pollv(ep, rd + 1, 63);
            for (std::size_t i = 0; i < got; ++i) {
                ++delivered;
                if (!rd[i].isSmall)
                    for (std::uint8_t b = 0; b < rd[i].bufferCount; ++b)
                        un.postFree(self, ep,
                                    {rd[i].buffers[b].offset, 2048});
            }
        }
    });

    sim::Process source(s, "source", [&](sim::Process &self) {
        auto &un = rig.unetOf(0);
        auto &ep = rig.ep(0);
        // The FE path is zero-copy from the buffer area: rotate 2 KB
        // slots round-robin over the whole 256 KB area (128 slots).
        // Buffer custody returns at the tx-complete reap, which can
        // trail the send queue going empty, so per-batch slot reuse
        // would trip the ownership tracker. ATM 40-byte sends go
        // inline.
        const std::uint32_t slots =
            static_cast<std::uint32_t>(ep.buffers().size() / 2048);
        SendDescriptor descs[64];
        for (int posted = 0; posted < kMessages;) {
            const std::size_t want = std::min<std::size_t>(
                batch, static_cast<std::size_t>(kMessages - posted));
            for (std::size_t k = 0; k < want; ++k) {
                SendDescriptor &sd = descs[k];
                sd = SendDescriptor{};
                sd.channel = rig.chan(0);
                if (rig.isAtm()) {
                    sd.isInline = true;
                    sd.inlineLength = kMessageBytes;
                } else {
                    sd.isInline = false;
                    sd.fragmentCount = 1;
                    sd.fragments[0] = {
                        ((static_cast<std::uint32_t>(posted) +
                          static_cast<std::uint32_t>(k)) %
                         slots) *
                            2048,
                        kMessageBytes};
                }
            }
            sim::Tick t0 = s.now();
            std::size_t accepted = un.sendv(self, ep, descs, want);
            occupancy += s.now() - t0;
            if (accepted != want) {
                std::fprintf(stderr,
                             "batch accepted %zu of %zu after drain\n",
                             accepted, want);
                return;
            }
            posted += static_cast<int>(want);
            // Quiesce: every batch pays its own trap/doorbell, and
            // the FE buffer slots come back before they are reused.
            do {
                self.delay(sim::microseconds(20));
                un.flush(self, ep);
            } while (!ep.sendQueue().empty());
        }
    });

    rig.wire(source, sink);
    sink.start();
    source.start(sim::microseconds(5));
    s.run();

    if (delivered < kMessages)
        return -1.0;
    // Ticks are picoseconds; report nanoseconds.
    return static_cast<double>(occupancy) /
        static_cast<double>(kMessages) / 1e3;
}

} // namespace

int
main(int argc, char **argv)
{
    const char *out_path = argc > 1 ? argv[1] : "BENCH_micro_batch.json";

    const std::size_t batches[] = {1, 4, 16, 64};
    struct Row
    {
        std::string name;
        double ns;
    };
    std::vector<Row> rows;

    std::printf("per-message sender overhead (simulated ns) vs batch "
                "size, %d x %zu-byte messages\n",
                kMessages, kMessageBytes);
    std::printf("%8s %14s %14s\n", "batch", "U-Net/FE", "U-Net/ATM");
    for (std::size_t b : batches) {
        double fe = overheadPerMessageNs(Fabric::FeBay, b);
        double atm = overheadPerMessageNs(Fabric::AtmOc3, b);
        std::printf("%8zu %14.1f %14.1f\n", b, fe, atm);
        if (fe < 0 || atm < 0) {
            std::fprintf(stderr, "measurement stalled\n");
            return 1;
        }
        rows.push_back({"fe_overhead_per_msg_batch" + std::to_string(b),
                        fe});
        rows.push_back({"atm_overhead_per_msg_batch" +
                            std::to_string(b),
                        atm});
    }

    std::FILE *out = std::fopen(out_path, "w");
    if (!out) {
        std::fprintf(stderr, "cannot write %s\n", out_path);
        return 1;
    }
    std::fprintf(out, "{\n  \"format\": \"unet-bench-v1\",\n"
                      "  \"benchmarks\": [\n");
    for (std::size_t i = 0; i < rows.size(); ++i)
        std::fprintf(out,
                     "    {\"name\": \"%s\", \"value\": %.1f, "
                     "\"unit\": \"ns\", \"lower_is_better\": true}%s\n",
                     rows[i].name.c_str(), rows[i].ns,
                     i + 1 < rows.size() ? "," : "");
    std::fprintf(out, "  ]\n}\n");
    std::fclose(out);
    std::printf("wrote %s\n", out_path);
    return 0;
}
