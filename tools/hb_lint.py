#!/usr/bin/env python3
"""Happens-before coverage lint for instrumented classes.

The happens-before auditor (src/check/hb/) can only see state that is
covered by a check::ContextGuard. A class that declares a guard is
*instrumented*: its shared state is audited for cross-shard races, and
its shardability classification in the `unet-hb --report` output is
only as trustworthy as the guard's coverage. The failure mode this
lint closes: someone adds a mutable member to an instrumented class,
forgets to route its accesses through a guard, and the auditor
silently under-reports — the object looks shard-local while the new
member races.

Rule: in any class that declares a check::ContextGuard member, every
non-static, non-const data member must carry one of

    // hb-guarded(<guard-member>)   state covered by that guard
    // hb-exempt(<why it needs no guard>)

on its declaration line or within the two preceding lines. The
hb-guarded form must name a guard member declared in the same class.
A bare annotation without a guard name / reason is itself an error.

Two stages:

 1. A regex stage (always runs, stdlib only) over src/: brace-matched
    class bodies, statement-level member extraction.
 2. A clang-query stage (runs when `clang-query` and a compilation
    database are available) that finds every ContextGuard field in
    the AST and cross-checks stage 1 saw the same instrumented
    classes — so a parsing miss in stage 1 is an error, not silent
    under-coverage.

Exit status: 0 when clean, 1 when any finding remains, 2 on usage
errors (or --require-ast with no clang-query).
"""

import argparse
import os
import re
import shutil
import subprocess
import sys

GUARD_DECL = re.compile(
    r"(?:check::)?ContextGuard\s+([_a-zA-Z]\w*)\s*[{;]"
)

ANNOTATION = re.compile(
    r"hb-(guarded|exempt)\(([^()]*)\)"
)

# Statement openers that are never data-member declarations.
NON_MEMBER = re.compile(
    r"^\s*(public|private|protected)\s*:"
    r"|^\s*(using|typedef|friend|template|static_assert|enum|class"
    r"|struct|union|return|if|for|while|switch|case|default|explicit"
    r"|virtual|operator|~|UNET_)\b"
)

LINE_COMMENT = re.compile(r"//.*$")
BLOCK_COMMENT = re.compile(r"/\*.*?\*/", re.DOTALL)
STRING = re.compile(r'"(?:[^"\\]|\\.)*"')


def strip_comments(text):
    """Blank comments and string literals, preserving line structure
    (strings could hold braces or semicolons)."""
    def blank(m):
        return re.sub(r"[^\n]", " ", m.group(0))

    text = BLOCK_COMMENT.sub(blank, text)
    lines = [LINE_COMMENT.sub("", line) for line in text.split("\n")]
    return [STRING.sub('""', line) for line in lines]


def strip_angles(text):
    """Remove balanced <...> groups so template argument lists (and the
    parentheses inside std::function<...>) cannot masquerade as call
    or parameter parentheses."""
    prev = None
    while prev != text:
        prev = text
        text = re.sub(r"<[^<>]*>", "", text)
    return text


def is_member_decl(stmt):
    """Heuristic: does this class-body statement declare a data member?

    Under-matching is acceptable (a missed member is not flagged);
    over-matching is not (a false positive blocks the build). The AST
    cross-check bounds how much stage 1 can silently miss.
    """
    if NON_MEMBER.search(stmt):
        return False
    flat = strip_angles(" ".join(stmt.split()))
    if not flat.endswith(";"):
        return False
    # Immutable state needs no ordering: nothing races on it.
    if re.search(r"\b(const|constexpr)\b", flat.split("=")[0]):
        return False
    # Statics are not per-instance audited state; the nondet lint and
    # code review own those (rare, and usually constexpr tables).
    if flat.startswith("static "):
        return False
    # Any parenthesis left after angle-stripping means a function
    # declaration or a paren-initialised member; both are out of
    # scope for the annotation rule.
    if "(" in flat:
        return False
    # Require a declarator: an identifier directly before the
    # terminating ';', or before an initialiser.
    return re.search(r"[_a-zA-Z]\w*\s*(\[[^\]]*\]\s*)?(=[^;]*|\{[^;]*\})?;$",
                     flat) is not None


def annotations_near(raw_lines, code_lines, start, end):
    """Annotations covering a statement spanning lines [start, end]
    (0-based, inclusive), or up to two comment-only lines directly
    above it. Lines above that hold code don't count — their
    annotation belongs to the previous member, and letting it bleed
    downward would silently cover a freshly added member below."""
    covered = list(range(start, end + 1))
    j = start - 1
    while j >= max(0, start - 2) and not code_lines[j].strip():
        covered.append(j)
        j -= 1
    found, malformed = [], []
    for j in covered:
        for m in ANNOTATION.finditer(raw_lines[j]):
            kind, arg = m.group(1), m.group(2).strip()
            if not arg:
                malformed.append((j + 1, kind))
            else:
                found.append((kind, arg))
    return found, malformed


class ClassScope:
    def __init__(self, name, depth):
        self.name = name
        self.depth = depth          # brace depth of the class body
        self.statements = []        # (text, start_line, end_line)
        self.guards = set()


def scan_file(path, rel, findings, instrumented_at):
    with open(path, encoding="utf-8", errors="replace") as f:
        text = f.read()
    raw_lines = text.split("\n")
    code_lines = strip_comments(text)

    depth = 0
    stack = []                      # innermost ClassScope last
    pending = None                  # class name awaiting its '{'
    stmt, stmt_start = "", 0
    init_depth = 0                  # inside a brace initializer

    def brace_is_initializer(text):
        """A '{' opens a member initializer (not a scope) when the
        statement so far is a plain declarator: ends in an identifier,
        '=', ']' or '>' and holds no parameter-list parentheses."""
        flat = strip_angles(text).rstrip()
        if not flat or "(" in flat or NON_MEMBER.search(flat):
            return False
        return flat[-1] == "=" or flat[-1] == "]" or flat[-1] == ">" \
            or flat[-1] == "," or re.search(r"[\w]$", flat)

    for idx, line in enumerate(code_lines):
        m = re.search(r"\b(class|struct)\s+([_a-zA-Z]\w*)", line)
        if m and ";" not in line.split(m.group(0))[-1].split("{")[0]:
            pending = m.group(2)
        for ch in line:
            if init_depth:
                # Inside a brace initializer: keep the text, track
                # nesting, and fall back to normal scanning at the
                # closing brace (the ';' then ends the statement).
                stmt += ch
                if ch == "{":
                    init_depth += 1
                elif ch == "}":
                    init_depth -= 1
                continue
            if ch == "{":
                if pending is None and stack \
                        and depth == stack[-1].depth \
                        and brace_is_initializer(stmt):
                    stmt += ch
                    init_depth = 1
                    continue
                if pending is not None:
                    stack.append(ClassScope(pending, depth + 1))
                    pending = None
                depth += 1
                stmt, stmt_start = "", idx
            elif ch == "}":
                depth -= 1
                while stack and depth < stack[-1].depth:
                    finish_class(stack.pop(), rel, raw_lines,
                                 code_lines, findings,
                                 instrumented_at)
                stmt, stmt_start = "", idx
            elif ch == ";":
                stmt += ";"
                if stack and depth == stack[-1].depth:
                    stack[-1].statements.append(
                        (stmt, stmt_start, idx))
                stmt, stmt_start = "", idx
            else:
                if not stmt.strip():
                    stmt_start = idx
                stmt += ch
        stmt += "\n"


def finish_class(scope, rel, raw_lines, code_lines, findings,
                 instrumented_at):
    for stmt, _, _ in scope.statements:
        g = GUARD_DECL.search(stmt)
        if g:
            scope.guards.add(g.group(1))
    if not scope.guards:
        return
    for stmt, start, end in scope.statements:
        if GUARD_DECL.search(stmt):
            instrumented_at.add((rel, start + 1))
            continue
        if not is_member_decl(stmt):
            continue
        near, malformed = annotations_near(raw_lines, code_lines,
                                           start, end)
        for line_no, kind in malformed:
            findings.append(
                (rel, line_no, "annotation",
                 f"hb-{kind} annotation without a "
                 + ("guard name" if kind == "guarded" else "reason"))
            )
        guarded = [arg for kind, arg in near if kind == "guarded"]
        exempt = [arg for kind, arg in near if kind == "exempt"]
        if not guarded and not exempt:
            findings.append(
                (rel, start + 1, "unannotated-member",
                 f"mutable member of instrumented class "
                 f"'{scope.name}' has neither hb-guarded(<guard>) "
                 f"nor hb-exempt(<reason>)")
            )
            continue
        for name in guarded:
            if name not in scope.guards:
                findings.append(
                    (rel, start + 1, "unknown-guard",
                     f"hb-guarded({name}) names no ContextGuard "
                     f"member of '{scope.name}' "
                     f"(has: {', '.join(sorted(scope.guards))})")
                )


def source_files(root):
    for dirpath, _, names in os.walk(os.path.join(root, "src")):
        for name in sorted(names):
            if name.endswith((".cc", ".hh", ".h")):
                yield os.path.join(dirpath, name)


def clang_query_stage(root, build_dir, instrumented_at, findings,
                      require):
    """Cross-check: every ContextGuard field the AST knows about must
    have been seen by the regex stage. Returns False only when
    @p require is set and the stage could not run."""
    tool = shutil.which("clang-query")
    ccdb = os.path.join(build_dir, "compile_commands.json")
    for missing, what in ((tool, "clang-query not installed"),
                          (os.path.isfile(ccdb), f"no {ccdb}")):
        if not missing:
            print("hb-lint: " + what + "; "
                  + ("AST stage REQUIRED but unavailable" if require
                     else "skipping AST cross-check (use "
                          "--require-ast to make this an error)"))
            return not require

    commands = [
        "set bind-root true",
        'match fieldDecl(hasType(cxxRecordDecl(hasName('
        '"ContextGuard"))))',
    ]
    files = [f for f in source_files(root) if f.endswith(".cc")]
    cmd = [tool, "-p", build_dir]
    for command in commands:
        cmd += ["-c", command]
    proc = subprocess.run(cmd + files, capture_output=True, text=True,
                          check=False)
    if proc.returncode != 0:
        sys.stderr.write(proc.stderr)
        print(f"hb-lint: clang-query failed (exit {proc.returncode});"
              " AST stage did not run")
        return False
    loc = re.compile(r"^(\S+?):(\d+):\d+: note:")
    seen = set()
    for line in proc.stdout.splitlines():
        m = loc.match(line)
        if not m:
            continue
        rel = os.path.relpath(m.group(1), root)
        key = (rel, int(m.group(2)))
        if key in seen or not rel.startswith("src/"):
            continue
        seen.add(key)
        if key not in instrumented_at:
            findings.append(
                (rel, key[1], "ast-mismatch",
                 "clang-query found a ContextGuard field the regex "
                 "stage missed; its class is not being linted")
            )
    return True


def main():
    parser = argparse.ArgumentParser(
        description="happens-before coverage lint (see module "
                    "docstring)"
    )
    parser.add_argument("--build-dir", default="build")
    parser.add_argument("--no-ast", action="store_true",
                        help="skip the clang-query cross-check")
    parser.add_argument("--require-ast", action="store_true",
                        help="fail (exit 2) when the clang-query "
                             "stage cannot run")
    args = parser.parse_args()
    if args.no_ast and args.require_ast:
        parser.error("--no-ast and --require-ast are contradictory")

    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    findings = []
    instrumented_at = set()
    ast_ok = True
    for path in source_files(root):
        scan_file(path, os.path.relpath(path, root), findings,
                  instrumented_at)
    if not args.no_ast:
        ast_ok = clang_query_stage(root, args.build_dir,
                                   instrumented_at, findings,
                                   args.require_ast)

    for rel, line_no, rule, message in sorted(findings):
        print(f"{rel}:{line_no}: [{rule}] {message}")
    if findings:
        print(f"hb-lint: {len(findings)} finding(s)")
        return 1
    if not ast_ok:
        return 2
    print(f"hb-lint: clean "
          f"({len(instrumented_at)} guard member(s) covered)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
