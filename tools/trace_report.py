#!/usr/bin/env python3
"""Analyze a TraceSession export and validate custody tiling.

Reads either exporter format:

* Perfetto trace_event JSON (``--trace FILE`` on the benches): complete
  ``ph:"X"`` events with ``ts``/``dur`` in microseconds, the message id
  in ``args.msg``, and ``cat`` distinguishing ``custody`` from
  ``detail`` spans.
* the CSV exporter (``msg_id,kind,custody,track,label,start_ps,...``).

Custody spans are a handoff chain: each hop records from where the
previous hop left the message to where it handed it on, so per message
they must tile the interval from first start to last end exactly — no
gaps (lost custody) and no overlaps (double-counted time). This script
checks that invariant, prints a per-hop summary, and, given
``--rtt-us``, checks that per-round custody sums match the round-trip
latency the bench reported.

Usage:
    trace_report.py TRACE [--rtt-us 58.4] [--tol-us 0.01]
"""

import argparse
import csv
import json
import sys
from collections import defaultdict


def load_spans(path):
    """Return a list of {msg, kind, custody, track, start, end} in us."""
    with open(path) as f:
        head = f.read(1)
        f.seek(0)
        if head == "{":
            return _from_perfetto(json.load(f))
        return _from_csv(f)


def _from_perfetto(doc):
    tracks = {}
    spans = []
    for ev in doc.get("traceEvents", []):
        if ev.get("ph") == "M" and ev.get("name") == "thread_name":
            tracks[ev["tid"]] = ev["args"]["name"]
        elif ev.get("ph") == "X":
            spans.append({
                "msg": ev["args"]["msg"],
                "kind": ev["args"]["kind"],
                "custody": ev.get("cat") == "custody",
                "track": ev["tid"],
                "start": float(ev["ts"]),
                "end": float(ev["ts"]) + float(ev["dur"]),
            })
    for s in spans:
        s["track"] = tracks.get(s["track"], str(s["track"]))
    return spans


def _from_csv(f):
    spans = []
    for row in csv.DictReader(f):
        spans.append({
            "msg": int(row["msg_id"]),
            "kind": row["kind"],
            "custody": row["custody"] == "1",
            "track": row["track"],
            "start": int(row["start_ps"]) / 1e6,
            "end": int(row["end_ps"]) / 1e6,
        })
    return spans


def check_tiling(spans, tol_us):
    """Validate the custody chain of every message. Returns (sums, errors):
    per-message custody-duration sums (us, keyed by msg id) and a list of
    human-readable violations."""
    by_msg = defaultdict(list)
    for s in spans:
        if s["custody"] and s["msg"] != 0:
            by_msg[s["msg"]].append(s)

    sums = {}
    errors = []
    for msg, chain in sorted(by_msg.items()):
        chain.sort(key=lambda s: s["start"])
        total = sum(s["end"] - s["start"] for s in chain)
        span = chain[-1]["end"] - chain[0]["start"]
        sums[msg] = total
        if abs(total - span) > tol_us:
            errors.append(
                f"msg {msg}: custody durations sum to {total:.3f} us "
                f"but the message lifetime is {span:.3f} us")
        for prev, cur in zip(chain, chain[1:]):
            delta = cur["start"] - prev["end"]
            if abs(delta) > tol_us:
                what = "gap" if delta > 0 else "overlap"
                errors.append(
                    f"msg {msg}: {abs(delta):.3f} us {what} between "
                    f"{prev['kind']} ({prev['track']}) and "
                    f"{cur['kind']} ({cur['track']})")
    return sums, errors


def hop_summary(spans):
    by_kind = defaultdict(list)
    for s in spans:
        by_kind[s["kind"]].append(s["end"] - s["start"])
    print(f"{'kind':<10} {'count':>6} {'mean_us':>9} {'min_us':>9} "
          f"{'max_us':>9}")
    for kind, durs in sorted(by_kind.items()):
        print(f"{kind:<10} {len(durs):>6} {sum(durs)/len(durs):>9.3f} "
              f"{min(durs):>9.3f} {max(durs):>9.3f}")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("trace", help="Perfetto JSON or CSV trace export")
    parser.add_argument("--rtt-us", type=float,
                        help="reported round-trip latency: per-round "
                             "(request+reply) custody sums must match")
    parser.add_argument("--tol-us", type=float, default=0.01,
                        help="tiling/RTT tolerance in us (default 0.01)")
    args = parser.parse_args()

    spans = load_spans(args.trace)
    if not spans:
        print(f"no spans in {args.trace}", file=sys.stderr)
        return 1
    custody = sum(1 for s in spans if s["custody"])
    print(f"{len(spans)} spans ({custody} custody), "
          f"{len({s['msg'] for s in spans if s['msg']})} messages\n")
    hop_summary(spans)

    sums, errors = check_tiling(spans, args.tol_us)
    print(f"\ncustody tiling: {len(sums)} messages checked, "
          f"{len(errors)} violation(s)")
    for line in errors:
        print("  " + line, file=sys.stderr)

    if args.rtt_us is not None:
        # Messages alternate request/reply; one round trip is one
        # consecutive pair (the bench back-dates each message's start to
        # the previous custody end, so the pair sums to the full RTT).
        ordered = [sums[m] for m in sorted(sums)]
        rounds = [a + b for a, b in zip(ordered[::2], ordered[1::2])]
        if not rounds:
            print("no complete rounds to compare", file=sys.stderr)
            return 1
        mean = sum(rounds) / len(rounds)
        delta = abs(mean - args.rtt_us)
        ok = delta <= max(args.tol_us, args.rtt_us * 1e-3)
        print(f"round-trip check: {len(rounds)} rounds, custody sums "
              f"mean {mean:.2f} us vs reported {args.rtt_us:.2f} us "
              f"({'ok' if ok else 'MISMATCH'})")
        if not ok:
            errors.append(f"custody mean {mean} != rtt {args.rtt_us}")

    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
