#!/usr/bin/env python3
"""Compare benchmark results against a committed baseline.

Understands two input formats:

* google-benchmark JSON (``--benchmark_out``): per-benchmark
  ``real_time`` (lower is better) and optional ``allocs_per_op`` /
  ``items_per_second`` counters.
* unet-bench-v1 JSON (emitted by ``bench/macro_wallclock``): a flat
  ``benchmarks`` list of ``{name, value, unit, lower_is_better}``.

Exit status is non-zero if any metric regresses by more than the
threshold (default 15%). Allocation counts are compared near-exactly:
the zero-allocation hot paths must stay zero, and a deliberate
heap-fallback bench must not silently grow.

Usage:
    bench_compare.py BASELINE CURRENT [--threshold 0.15]
    bench_compare.py BASELINE CURRENT --update
"""

import argparse
import json
import shutil
import sys

# Counters where larger is better (rates); everything else numeric is
# treated as lower-is-better (times).
HIGHER_IS_BETTER_SUFFIXES = ("_per_second",)

# Tolerance for allocation-count comparisons. Steady-state benches
# report ~1e-7 allocs/op of framework noise; anything below this is
# "zero" and anything drifting by more than this against baseline is a
# real change in allocation behaviour.
ALLOC_TOLERANCE = 0.01


def load(path):
    with open(path) as f:
        return json.load(f)


def metrics_of(doc):
    """Flatten a results document into {metric_name: (value, lower_is_better)}."""
    out = {}
    if doc.get("format") == "unet-bench-v1":
        for bench in doc.get("benchmarks", []):
            out[bench["name"]] = (
                float(bench["value"]),
                bool(bench.get("lower_is_better", True)),
            )
        return out
    # google-benchmark format
    for bench in doc.get("benchmarks", []):
        if bench.get("run_type") == "aggregate":
            continue
        name = bench["name"]
        if "real_time" in bench:
            out[name + "/real_time"] = (float(bench["real_time"]), True)
        for key, value in bench.items():
            if key in ("real_time", "cpu_time", "iterations",
                       "repetitions", "repetition_index",
                       "threads", "time_unit", "name", "run_name",
                       "run_type", "family_index",
                       "per_family_instance_index"):
                continue
            if isinstance(value, (int, float)):
                lower = not key.endswith(HIGHER_IS_BETTER_SUFFIXES)
                out[f"{name}/{key}"] = (float(value), lower)
    return out


def compare(baseline, current, threshold):
    failures = []
    base = metrics_of(baseline)
    cur = metrics_of(current)
    for name, (base_val, lower) in sorted(base.items()):
        if name not in cur:
            failures.append(f"MISSING  {name}: present in baseline, "
                            "absent in current results")
            continue
        cur_val, _ = cur[name]
        if name.endswith("/allocs_per_op"):
            if cur_val > base_val + ALLOC_TOLERANCE:
                failures.append(
                    f"ALLOC    {name}: {base_val:.4g} -> {cur_val:.4g} "
                    "allocations per op increased")
            else:
                print(f"ok       {name}: {base_val:.4g} -> {cur_val:.4g}")
            continue
        if base_val == 0:
            print(f"skip     {name}: baseline is 0")
            continue
        ratio = cur_val / base_val
        regressed = ratio > 1 + threshold if lower \
            else ratio < 1 - threshold
        delta_pct = (ratio - 1) * 100
        tag = "REGRESS " if regressed else "ok      "
        line = (f"{tag} {name}: {base_val:.4g} -> {cur_val:.4g} "
                f"({delta_pct:+.1f}%)")
        if regressed:
            failures.append(line)
        else:
            print(line)
    # A measured metric with no baseline entry fails too: otherwise a
    # key quietly dropped from the baseline file exempts that metric
    # from the gate forever. Record new benches with --update in the
    # same change that adds them.
    for name in sorted(set(cur) - set(base)):
        failures.append(
            f"UNBASED  {name}: {cur[name][0]:.4g} present in run but "
            "missing from baseline (record it with --update)")
    return failures


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", help="committed baseline JSON")
    parser.add_argument("current", help="freshly measured JSON")
    parser.add_argument("--threshold", type=float, default=0.15,
                        help="allowed fractional regression "
                             "(default 0.15 = 15%%)")
    parser.add_argument("--update", action="store_true",
                        help="overwrite the baseline with the current "
                             "results instead of comparing")
    args = parser.parse_args()

    if args.update:
        shutil.copyfile(args.current, args.baseline)
        print(f"updated {args.baseline} from {args.current}")
        return 0

    try:
        baseline = load(args.baseline)
    except FileNotFoundError:
        # A silently-skipped comparison reads as a pass in CI, which is
        # exactly how a perf gate rots: fail loudly instead.
        print(f"ERROR    no baseline at {args.baseline}; refusing to "
              "skip the comparison (record one with --update)",
              file=sys.stderr)
        return 1

    failures = compare(baseline, load(args.current), args.threshold)
    if failures:
        print(f"\n{len(failures)} regression(s) vs baseline "
              f"(threshold {args.threshold:.0%}):", file=sys.stderr)
        for line in failures:
            print("  " + line, file=sys.stderr)
        return 1
    print("\nall metrics within threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
