#!/usr/bin/env python3
"""Nondeterminism lint for the simulator sources.

The simulator promises bit-identical runs for identical inputs (see
DESIGN.md "Determinism model"), and the schedule-perturbation harness
(UNET_PERTURB) only proves robustness against *scheduling* choices.
This pass closes the other door: constructs whose behaviour depends on
process state the simulation does not control — wall clocks, the
process environment, unseeded RNGs, and container orderings derived
from heap addresses.

Two stages:

 1. A regex stage (always runs, stdlib only) over src/ — plus bench/
    and examples/ for the clock and RNG rules, which are wrong
    anywhere results are reported.
 2. A clang-query stage (runs when `clang-query` and a compilation
    database are available) that matches range-for loops whose range
    is an unordered container — the precise form of the regex
    approximation in rule `unordered-container`.

A finding is suppressed by an annotation on the same line or within
the two preceding lines:

    // nondet-ok(<rule>): <why this use is deterministic>

The reason is mandatory; an annotation without one is itself an error.

Exit status: 0 when clean, 1 when any unsuppressed finding remains,
2 on usage errors.
"""

import argparse
import os
import re
import shutil
import subprocess
import sys

# Rule name -> (compiled pattern, message). Patterns are matched per
# line after comment stripping (so commented-out code cannot trip the
# lint, and annotations cannot match themselves).
RULES = {
    "wall-clock": (
        re.compile(
            r"std::chrono::(system|steady|high_resolution)_clock"
            r"|\bgettimeofday\s*\("
            r"|\bclock_gettime\s*\("
            r"|\bstd::time\s*\("
            r"|[^:\w]time\s*\(\s*(NULL|nullptr|0)\s*\)"
        ),
        "wall-clock read: simulated time must come from sim::Simulation",
    ),
    "env-read": (
        re.compile(r"\b(std::)?(secure_)?getenv\s*\("),
        "environment read: process state the simulation does not control",
    ),
    "raw-rand": (
        # The lookbehinds keep the sanctioned seeded PRNG from
        # matching: calls like sim.random() and the accessor
        # declaration `Random &random()`.
        re.compile(
            r"(?<![\w.:>&])(std::)?srand\s*\("
            r"|(?<![\w.:>&])(std::)?rand\s*\(\s*\)"
            r"|\bdrand48\s*\(|\blrand48\s*\("
            r"|(?<![\w.:>&])random\s*\(\s*\)"
        ),
        "C PRNG: draw from a seeded sim::Random instead",
    ),
    "unseeded-engine": (
        re.compile(
            r"std::random_device"
            r"|std::(mt19937(_64)?|default_random_engine|minstd_rand0?)\b"
        ),
        "raw <random> engine: all draws must go through sim::Random "
        "so seeds are controlled in one place",
    ),
    "unordered-container": (
        re.compile(r"std::unordered_(map|set|multimap|multiset)\b"),
        "unordered container: iteration order is hash/address-"
        "dependent; use std::map/std::set or annotate why it is "
        "never iterated",
    ),
    "ptr-key-order": (
        re.compile(r"std::(map|set)\s*<[^<>,]*\*"),
        "pointer-keyed ordered container: iteration order follows "
        "heap addresses; key by a stable id or annotate why it is "
        "never iterated",
    ),
}

# Rules that also apply outside src/ (nondeterministic clocks and raw
# C PRNGs corrupt benchmark reports just as much as simulation
# results). Seeded <random> engines are fine in tests, so
# unseeded-engine stays src-only.
EVERYWHERE_RULES = {"wall-clock", "raw-rand"}

# Structural exemptions: (rule, path-prefix) pairs where the construct
# is the implementation of the sanctioned facility itself.
EXEMPT = {
    ("unseeded-engine", "src/sim/random.hh"),  # the seeded wrapper
    # The wall-clock harness exists to measure real elapsed time; its
    # output is a host-speed report, not a simulation result.
    ("wall-clock", "bench/macro_wallclock.cc"),
}

ANNOTATION = re.compile(r"nondet-ok\(([a-z-]+)\)(:\s*\S.*)?")

LINE_COMMENT = re.compile(r"//.*$")
BLOCK_COMMENT = re.compile(r"/\*.*?\*/", re.DOTALL)


def source_files(root, subdirs):
    for sub in subdirs:
        base = os.path.join(root, sub)
        for dirpath, _, names in os.walk(base):
            for name in sorted(names):
                if name.endswith((".cc", ".hh", ".h")):
                    yield os.path.join(dirpath, name)


def annotations_near(lines, idx):
    """Annotation rule names covering line idx (same line or the two
    lines above), plus any malformed annotations found there."""
    rules, malformed = set(), []
    for j in range(max(0, idx - 2), idx + 1):
        for m in ANNOTATION.finditer(lines[j]):
            if m.group(2) is None:
                malformed.append(j + 1)
            else:
                rules.add(m.group(1))
    return rules, malformed


def strip_comments(text):
    """Blank out comments, preserving line structure."""
    def blank(m):
        return re.sub(r"[^\n]", " ", m.group(0))

    text = BLOCK_COMMENT.sub(blank, text)
    return [LINE_COMMENT.sub("", line) for line in text.split("\n")]


def lint_file(path, rel, findings):
    with open(path, encoding="utf-8", errors="replace") as f:
        text = f.read()
    raw_lines = text.split("\n")
    code_lines = strip_comments(text)
    in_src = rel.startswith("src/")

    for idx, code in enumerate(code_lines):
        for rule, (pattern, message) in RULES.items():
            if not in_src and rule not in EVERYWHERE_RULES:
                continue
            if any(rel.startswith(p) for r, p in EXEMPT if r == rule):
                continue
            if not pattern.search(code):
                continue
            allowed, malformed = annotations_near(raw_lines, idx)
            for line_no in malformed:
                findings.append(
                    (rel, line_no, "annotation",
                     "nondet-ok annotation without a reason")
                )
            if rule in allowed:
                continue
            findings.append((rel, idx + 1, rule, message))


def clang_query_stage(root, build_dir, findings, require):
    """Precise unordered-iteration check.

    Returns True when the stage ran (or was legitimately skipped),
    False when @p require is set and the stage could not run — a
    missing tool must fail the build it was promised in, not silently
    drop coverage.
    """
    tool = shutil.which("clang-query")
    ccdb = os.path.join(build_dir, "compile_commands.json")
    if not tool:
        print("nondet-lint: clang-query not installed; "
              + ("AST stage REQUIRED but unavailable" if require
                 else "skipping AST stage (use --require-ast to make "
                      "this an error)"))
        return not require
    if not os.path.isfile(ccdb):
        print(f"nondet-lint: no {ccdb}; "
              + ("AST stage REQUIRED but unavailable" if require
                 else "skipping AST stage (use --require-ast to make "
                      "this an error)"))
        return not require

    # One clang-query command per -c flag: a single -c value holds
    # exactly one command, so "set ...\nmatch ..." in one flag is an
    # unknown-command error, not two commands.
    commands = [
        "set bind-root true",
        "match cxxForRangeStmt(hasRangeInit(expr(hasType(hasCanonical"
        "Type(hasDeclaration(namedDecl(matchesName("
        '"unordered_(map|set|multimap|multiset)"))))))))',
    ]
    files = [
        f for f in source_files(root, ["src"]) if f.endswith(".cc")
    ]
    cmd = [tool, "-p", build_dir]
    for command in commands:
        cmd += ["-c", command]
    proc = subprocess.run(
        cmd + files, capture_output=True, text=True, check=False,
    )
    if proc.returncode != 0:
        # Tool failure is not "zero findings" — surface it.
        sys.stderr.write(proc.stderr)
        print(f"nondet-lint: clang-query failed "
              f"(exit {proc.returncode}); AST stage did not run")
        return False
    # Matches print as "<path>:<line>:<col>: note: "root" binds here".
    loc = re.compile(r"^(\S+?):(\d+):\d+: note:")
    for line in proc.stdout.splitlines():
        m = loc.match(line)
        if not m:
            continue
        path, line_no = m.group(1), int(m.group(2))
        rel = os.path.relpath(path, root)
        try:
            with open(path, encoding="utf-8",
                      errors="replace") as f:
                raw_lines = f.read().split("\n")
            allowed, _ = annotations_near(raw_lines, line_no - 1)
        except OSError:
            allowed = set()
        if "unordered-container" not in allowed:
            findings.append(
                (rel, line_no, "unordered-container",
                 "range-for over an unordered container "
                 "(clang-query)")
            )


def main():
    parser = argparse.ArgumentParser(
        description="nondeterminism lint (see module docstring)"
    )
    parser.add_argument(
        "--build-dir", default="build",
        help="directory holding compile_commands.json for the "
             "clang-query stage",
    )
    parser.add_argument(
        "--no-ast", action="store_true",
        help="skip the clang-query stage even if available",
    )
    parser.add_argument(
        "--require-ast", action="store_true",
        help="fail (exit 2) when the clang-query stage cannot run, "
             "instead of skipping it; use in CI where the tool is "
             "expected to be installed",
    )
    args = parser.parse_args()
    if args.no_ast and args.require_ast:
        parser.error("--no-ast and --require-ast are contradictory")

    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    findings = []
    ast_ok = True
    for path in source_files(root, ["src", "bench", "examples",
                                    "tests"]):
        lint_file(path, os.path.relpath(path, root), findings)
    if not args.no_ast:
        ast_ok = clang_query_stage(root, args.build_dir, findings,
                                   args.require_ast)

    for rel, line_no, rule, message in sorted(findings):
        print(f"{rel}:{line_no}: [{rule}] {message}")
    if findings:
        print(f"nondet-lint: {len(findings)} finding(s)")
        return 1
    if not ast_ok:
        return 2
    print("nondet-lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
