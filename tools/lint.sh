#!/usr/bin/env bash
# Static-analysis driver: clang-tidy over the library sources and a
# clang-format style check. Each stage is skipped (with a notice, not
# a failure) when its tool is not installed, so the script works both
# in CI images with LLVM and in minimal local containers.
#
# Usage: tools/lint.sh [build-dir]
#   build-dir must contain compile_commands.json for the tidy stage
#   (configure with -DCMAKE_EXPORT_COMPILE_COMMANDS=ON); defaults to
#   ./build.

set -u
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
FAILED=0

SOURCES=$(find src bench examples -name '*.cc' | sort)
HEADERS=$(find src bench examples -name '*.hh' | sort)

# --- clang-format ----------------------------------------------------
if command -v clang-format >/dev/null 2>&1; then
    echo "== clang-format (dry run) =="
    # shellcheck disable=SC2086
    if ! clang-format --dry-run -Werror $SOURCES $HEADERS; then
        echo "clang-format: style violations found (run with -i to fix)"
        FAILED=1
    fi
else
    echo "clang-format not installed; skipping format check"
fi

# --- clang-tidy ------------------------------------------------------
if command -v clang-tidy >/dev/null 2>&1; then
    if [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
        echo "no $BUILD_DIR/compile_commands.json; configure with" \
             "-DCMAKE_EXPORT_COMPILE_COMMANDS=ON first"
        exit 1
    fi
    echo "== clang-tidy =="
    # shellcheck disable=SC2086
    if ! clang-tidy -p "$BUILD_DIR" --quiet $SOURCES; then
        FAILED=1
    fi
else
    echo "clang-tidy not installed; skipping tidy check"
fi

exit $FAILED
