#!/usr/bin/env bash
# Static-analysis driver: the nondeterminism lint, clang-tidy over all
# C++ sources (libraries, tests, benches, examples), and a
# clang-format style check. The clang stages are skipped (with a
# notice, not a failure) when their tool is not installed, so the
# script works both in CI images with LLVM and in minimal local
# containers; the nondeterminism lint needs only python3 and always
# runs.
#
# Usage: tools/lint.sh [build-dir]
#   build-dir must contain compile_commands.json for the tidy stage
#   (configure with -DCMAKE_EXPORT_COMPILE_COMMANDS=ON); defaults to
#   ./build.

set -u
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
FAILED=0

SOURCES=$(find src tests bench examples -name '*.cc' | sort)
HEADERS=$(find src tests bench examples -name '*.hh' | sort)

# --- nondeterminism lint ---------------------------------------------
echo "== nondeterminism lint =="
if ! python3 tools/nondet_lint.py --build-dir "$BUILD_DIR"; then
    FAILED=1
fi

# --- clang-format ----------------------------------------------------
if command -v clang-format >/dev/null 2>&1; then
    echo "== clang-format (dry run) =="
    # shellcheck disable=SC2086
    if ! clang-format --dry-run -Werror $SOURCES $HEADERS; then
        echo "clang-format: style violations found (run with -i to fix)"
        FAILED=1
    fi
else
    echo "clang-format not installed; skipping format check"
fi

# --- clang-tidy ------------------------------------------------------
if command -v clang-tidy >/dev/null 2>&1; then
    if [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
        echo "no $BUILD_DIR/compile_commands.json; configure with" \
             "-DCMAKE_EXPORT_COMPILE_COMMANDS=ON first"
        exit 1
    fi
    echo "== clang-tidy =="
    # clang-tidy exits zero on plain warnings, so scan the output:
    # any diagnostic fails the stage, exactly like a nonzero exit.
    TIDY_LOG=$(mktemp)
    # shellcheck disable=SC2086
    clang-tidy -p "$BUILD_DIR" --quiet $SOURCES 2>&1 | tee "$TIDY_LOG"
    TIDY_STATUS=${PIPESTATUS[0]}
    if [ "$TIDY_STATUS" -ne 0 ] ||
       grep -qE '(warning|error):' "$TIDY_LOG"; then
        FAILED=1
    fi
    rm -f "$TIDY_LOG"
else
    echo "clang-tidy not installed; skipping tidy check"
fi

exit $FAILED
