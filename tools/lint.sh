#!/usr/bin/env bash
# Static-analysis driver: the nondeterminism lint, clang-tidy over all
# C++ sources (libraries, tests, benches, examples), and a
# clang-format style check. The clang stages are skipped (with a
# notice, not a failure) when their tool is not installed, so the
# script works both in CI images with LLVM and in minimal local
# containers; the nondeterminism lint needs only python3 and always
# runs.
#
# Usage: tools/lint.sh [build-dir]
#   build-dir must contain compile_commands.json for the tidy stage
#   (configure with -DCMAKE_EXPORT_COMPILE_COMMANDS=ON); defaults to
#   ./build.
#
# By default a missing clang tool FAILS the run: CI images promise the
# tools, and a silent skip reads as "lint passed" while entire stages
# never ran. For minimal local containers without LLVM, set
# UNET_LINT_ALLOW_MISSING=1 to downgrade missing tools to a notice.

set -u
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
ALLOW_MISSING="${UNET_LINT_ALLOW_MISSING:-0}"
FAILED=0

missing_tool() {
    if [ "$ALLOW_MISSING" = "1" ]; then
        echo "$1 not installed; skipping (UNET_LINT_ALLOW_MISSING=1)"
    else
        echo "$1 not installed: stage SKIPPED — failing." \
             "Set UNET_LINT_ALLOW_MISSING=1 to permit."
        FAILED=1
    fi
}

SOURCES=$(find src tests bench examples -name '*.cc' | sort)
HEADERS=$(find src tests bench examples -name '*.hh' | sort)

# --- nondeterminism lint ---------------------------------------------
echo "== nondeterminism lint =="
NONDET_ARGS=(--build-dir "$BUILD_DIR")
if [ "$ALLOW_MISSING" != "1" ]; then
    # The clang-query AST stage must actually run, not silently skip.
    NONDET_ARGS+=(--require-ast)
fi
if ! python3 tools/nondet_lint.py "${NONDET_ARGS[@]}"; then
    FAILED=1
fi

# --- happens-before coverage lint ------------------------------------
echo "== happens-before coverage lint =="
HB_ARGS=(--build-dir "$BUILD_DIR")
if [ "$ALLOW_MISSING" != "1" ]; then
    # The clang-query cross-check bounds what the regex stage can
    # silently miss, so in CI it must actually run.
    HB_ARGS+=(--require-ast)
fi
if ! python3 tools/hb_lint.py "${HB_ARGS[@]}"; then
    FAILED=1
fi

# --- clang-format ----------------------------------------------------
if command -v clang-format >/dev/null 2>&1; then
    echo "== clang-format (dry run) =="
    # shellcheck disable=SC2086
    if ! clang-format --dry-run -Werror $SOURCES $HEADERS; then
        echo "clang-format: style violations found (run with -i to fix)"
        FAILED=1
    fi
else
    missing_tool clang-format
fi

# --- clang-tidy ------------------------------------------------------
if command -v clang-tidy >/dev/null 2>&1; then
    if [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
        echo "no $BUILD_DIR/compile_commands.json; configure with" \
             "-DCMAKE_EXPORT_COMPILE_COMMANDS=ON first"
        exit 1
    fi
    echo "== clang-tidy =="
    # Validate the .clang-tidy profile first: a typo in a check glob
    # (e.g. the concurrency-* group) silently matches nothing, so an
    # invalid config must be an error, not an empty run.
    if clang-tidy --help 2>/dev/null | grep -q verify-config; then
        if ! clang-tidy --verify-config; then
            echo "clang-tidy: .clang-tidy failed verification"
            FAILED=1
        fi
    fi
    if ! clang-tidy --list-checks 2>/dev/null |
         grep -q 'concurrency-mt-unsafe'; then
        echo "clang-tidy: concurrency-* checks unavailable in this" \
             "clang-tidy; the determinism profile cannot run"
        FAILED=1
    fi
    # clang-tidy exits zero on plain warnings, so scan the output:
    # any diagnostic fails the stage, exactly like a nonzero exit.
    TIDY_LOG=$(mktemp)
    # shellcheck disable=SC2086
    clang-tidy -p "$BUILD_DIR" --quiet $SOURCES 2>&1 | tee "$TIDY_LOG"
    TIDY_STATUS=${PIPESTATUS[0]}
    if [ "$TIDY_STATUS" -ne 0 ] ||
       grep -qE '(warning|error):' "$TIDY_LOG"; then
        FAILED=1
    fi
    rm -f "$TIDY_LOG"
else
    missing_tool clang-tidy
fi

exit $FAILED
