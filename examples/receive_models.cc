/**
 * @file
 * The three U-Net receive models, side by side.
 *
 * "The receive model supported by U-Net is either polling or
 * event-driven: the process can periodically check the status of the
 * receive queue, it can block waiting for the next message to arrive
 * (using a UNIX select call), or it can register a signal handler with
 * U-Net which is invoked when the receive queue becomes non-empty."
 *
 * This example receives a burst of messages under each model on a
 * U-Net/ATM endpoint and reports the latency/processor trade-off: a
 * tight poll sees messages fastest but burns the host CPU; blocking is
 * cheap but adds wake-up latency; the upcall amortizes one (expensive)
 * signal delivery over the whole burst.
 */

#include <cstdio>

#include "atm/switch.hh"
#include "unet/unet_atm.hh"

using namespace unet;

namespace {

constexpr int burst = 16;

struct Rig
{
    explicit Rig(sim::Simulation &s)
        : sw(s), signalling(sw), link_a(s), link_b(s),
          host_a(s, "sender", host::CpuSpec::sparc20(),
                 host::BusSpec::sbus()),
          host_b(s, "receiver", host::CpuSpec::sparc20(),
                 host::BusSpec::sbus()),
          nic_a(host_a, link_a), nic_b(host_b, link_b),
          unet_a(host_a, nic_a), unet_b(host_b, nic_b)
    {
        port_a = sw.addPort(link_a);
        port_b = sw.addPort(link_b);
    }

    atm::Switch sw;
    atm::Signalling signalling;
    atm::AtmLink link_a, link_b;
    host::Host host_a, host_b;
    nic::Pca200 nic_a, nic_b;
    UNetAtm unet_a, unet_b;
    std::size_t port_a = 0, port_b = 0;
};

void
runModel(const char *name,
         const std::function<void(Rig &, Endpoint *, sim::Process &,
                                  int &)> &receiver_body)
{
    sim::Simulation s;
    Rig rig(s);

    Endpoint *ep_a = nullptr;
    Endpoint *ep_b = nullptr;
    ChannelId chan_a = invalidChannel, chan_b = invalidChannel;
    int received = 0;
    sim::Tick send_start = 0;

    sim::Process rx(s, "rx", [&](sim::Process &self) {
        receiver_body(rig, ep_b, self, received);
    });
    sim::Process tx(s, "tx", [&](sim::Process &self) {
        send_start = s.now();
        for (int i = 0; i < burst; ++i) {
            SendDescriptor sd;
            sd.channel = chan_a;
            sd.isInline = true;
            sd.inlineLength = 16;
            sd.inlineData[0] = static_cast<std::uint8_t>(i);
            rig.unet_a.send(self, *ep_a, sd);
        }
    });

    ep_a = &rig.unet_a.createEndpoint(&tx, {});
    ep_b = &rig.unet_b.createEndpoint(&rx, {});
    UNetAtm::connect(rig.unet_a, *ep_a, rig.port_a, rig.unet_b, *ep_b,
                     rig.port_b, rig.signalling, chan_a, chan_b);

    rx.start();
    tx.start(sim::microseconds(10));
    s.run();

    std::printf("%-10s received %2d/%d in %7.1f us, receiver host CPU "
                "%7.1f us\n",
                name, received, burst,
                sim::toMicroseconds(s.now() - send_start),
                sim::toMicroseconds(rig.host_b.cpu().userTime()));
}

} // namespace

int
main()
{
    std::printf("U-Net receive models: %d-message burst over ATM\n\n",
                burst);

    runModel("polling", [](Rig &rig, Endpoint *ep, sim::Process &self,
                           int &received) {
        // Spin on the receive queue, charging the CPU per probe.
        RecvDescriptor rd;
        while (received < burst) {
            rig.host_b.cpu().busy(self, sim::nanoseconds(400));
            while (ep->poll(rd))
                ++received;
            if (received < burst)
                self.delay(sim::microseconds(1));
        }
    });

    runModel("blocking", [](Rig &rig, Endpoint *ep, sim::Process &self,
                            int &received) {
        // select()-style: sleep until the queue goes non-empty.
        RecvDescriptor rd;
        while (received < burst) {
            if (!ep->wait(self, rd, sim::milliseconds(10)))
                break;
            ++received;
            rig.host_b.cpu().busy(self, sim::nanoseconds(400));
        }
    });

    runModel("upcall", [](Rig &rig, Endpoint *ep, sim::Process &self,
                          int &received) {
        // Signal-handler style: one (costly) activation consumes every
        // pending message.
        ep->setUpcall(
            [&](const RecvDescriptor &) { ++received; },
            rig.unet_b.spec().upcallLatency);
        while (received < burst)
            self.delay(sim::microseconds(50));
        ep->setUpcall(nullptr, 0);
    });

    std::printf("\npolling is fastest but hottest; blocking is cool "
                "but pays wake-ups;\nthe upcall pays one signal "
                "delivery for the whole burst.\n");
    return 0;
}
