/**
 * @file
 * Active-message RPC over U-Net/ATM.
 *
 * A tiny remote-procedure service: a client on one SPARCstation calls
 * a "vector dot product" handler on a server across an ASX-200 switch.
 * The arguments ride in the four words of the request; the vectors ride
 * as payload; the reply handler delivers the result. Demonstrates
 * handlers, request/reply, and the reliability layer (a lossy channel
 * is simulated halfway through and the RPC still completes).
 */

#include <cstdio>

#include "am/active_messages.hh"
#include "atm/switch.hh"
#include "fault/fault.hh"
#include "unet/unet_atm.hh"

using namespace unet;
using namespace unet::am;

int
main()
{
    sim::Simulation s;

    host::Host server_host(s, "server", host::CpuSpec::sparc20(),
                           host::BusSpec::sbus());
    host::Host client_host(s, "client", host::CpuSpec::sparc20(),
                           host::BusSpec::sbus());
    atm::Switch sw(s);
    atm::Signalling signalling(sw);
    atm::AtmLink link_s(s, atm::LinkSpec::taxi140());
    atm::AtmLink link_c(s, atm::LinkSpec::taxi140());
    nic::Pca200 nic_s(server_host, link_s);
    nic::Pca200 nic_c(client_host, link_c);
    std::size_t port_s = sw.addPort(link_s);
    std::size_t port_c = sw.addPort(link_c);
    UNetAtm unet_s(server_host, nic_s);
    UNetAtm unet_c(client_host, nic_c);

    // Make life hard: drop the very first cell the client puts on the
    // wire. Its AAL5 frame never reassembles, so the first request is
    // lost and the reliability layer must retransmit it.
    fault::ModelSpec first_cell;
    first_cell.dropUnits = {0};
    fault::Injector wire_loss(s, "atm.link.client.0", first_cell, 7);
    link_c.setFaultInjector(&wire_loss, 0);

    Endpoint *ep_s = nullptr;
    Endpoint *ep_c = nullptr;
    ChannelId chan_s = invalidChannel, chan_c = invalidChannel;
    std::unique_ptr<ActiveMessages> am_s, am_c;

    constexpr HandlerId hDot = 10;
    constexpr HandlerId hResult = 11;
    bool done = false;

    sim::Process server(s, "server", [&](sim::Process &proc) {
        am_s->setHandler(hDot, [&](sim::Process &inner, Token tok,
                                   const Args &args,
                                   std::span<const std::uint8_t> data) {
            // Payload: two float vectors of args[0] elements each.
            auto n = args[0];
            auto *x = reinterpret_cast<const float *>(data.data());
            auto *y = x + n;
            float dot = 0;
            for (Word i = 0; i < n; ++i)
                dot += x[i] * y[i];
            std::printf("[server] dot of %u-element vectors = %.1f "
                        "(request id %u)\n",
                        n, static_cast<double>(dot), args[1]);
            Word bits;
            std::memcpy(&bits, &dot, 4);
            am_s->reply(inner, tok, hResult, {bits, args[1], 0, 0});
        });
        // Serve until the client is satisfied.
        am_s->pollUntil(proc, [&] { return done; },
                        sim::milliseconds(100));
        am_s->pollUntil(proc, [] { return false; },
                        sim::milliseconds(2));
    });

    sim::Process client(s, "client", [&](sim::Process &proc) {
        am_c->setHandler(hResult, [&](sim::Process &, Token,
                                      const Args &args,
                                      std::span<const std::uint8_t>) {
            float dot;
            std::memcpy(&dot, &args[0], 4);
            std::printf("[client] RPC %u returned %.1f at t=%.1f us\n",
                        args[1], static_cast<double>(dot),
                        sim::toMicroseconds(s.now()));
            done = true;
        });

        // Build the vectors: x = 1..16, y = all 2.0 -> dot = 272.
        const Word n = 16;
        std::vector<float> payload(2 * n);
        for (Word i = 0; i < n; ++i) {
            payload[i] = static_cast<float>(i + 1);
            payload[n + i] = 2.0f;
        }

        std::printf("[client] calling dot(x[16], y[16]) at t=%.1f "
                    "us\n",
                    sim::toMicroseconds(s.now()));
        am_c->request(proc, chan_c, hDot, {n, 7, 0, 0},
                      {reinterpret_cast<const std::uint8_t *>(
                           payload.data()),
                       payload.size() * 4});
        am_c->pollUntil(proc, [&] { return done; },
                        sim::milliseconds(100));
        std::printf("[wire]   cells dropped: %llu\n",
                    static_cast<unsigned long long>(
                        wire_loss.dropped()));
        std::printf("[client] retransmissions used: %llu\n",
                    static_cast<unsigned long long>(
                        am_c->retransmits()));
    });

    ep_s = &unet_s.createEndpoint(&server, {});
    ep_c = &unet_c.createEndpoint(&client, {});
    UNetAtm::connect(unet_s, *ep_s, port_s, unet_c, *ep_c, port_c,
                     signalling, chan_s, chan_c);
    am_s = std::make_unique<ActiveMessages>(unet_s, *ep_s);
    am_c = std::make_unique<ActiveMessages>(unet_c, *ep_c);
    am_s->openChannel(chan_s);
    am_c->openChannel(chan_c);

    server.start();
    client.start(sim::microseconds(10));
    s.run();

    std::printf("\n%s\n", done ? "RPC completed despite the loss."
                                : "RPC FAILED");
    return done ? 0 : 1;
}
