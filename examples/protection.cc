/**
 * @file
 * Protected multiplexing: several processes share one NIC safely.
 *
 * U-Net's whole point: "direct access to the network interface without
 * compromising protection". Two applications on the same host each get
 * their own endpoint (via the OS service, with resource limits); their
 * traffic is demultiplexed by port, a rogue process cannot send on an
 * endpoint it does not own, and per-process endpoint limits hold.
 */

#include <cstdio>
#include <cstring>

#include "eth/switch.hh"
#include "unet/os_service.hh"
#include "unet/unet_fe.hh"

using namespace unet;

int
main()
{
    sim::Simulation s;

    host::Host left(s, "left", host::CpuSpec::pentium120(),
                    host::BusSpec::pci());
    host::Host right(s, "right", host::CpuSpec::pentium120(),
                     host::BusSpec::pci());
    eth::Switch sw(s, eth::SwitchSpec::bay28115());
    nic::Dc21140 nic_l(left, sw, eth::MacAddress::fromIndex(1));
    nic::Dc21140 nic_r(right, sw, eth::MacAddress::fromIndex(2));
    UNetFe unet_l(left, nic_l);
    UNetFe unet_r(right, nic_r);

    OsLimits limits;
    limits.maxEndpointsPerProcess = 2;
    OsService os_l(unet_l, limits);
    OsService os_r(unet_r, limits);

    // Two independent apps on the left host, one receiver each on the
    // right host.
    Endpoint *ep_app1 = nullptr, *ep_app2 = nullptr;
    Endpoint *ep_rx1 = nullptr, *ep_rx2 = nullptr;
    ChannelId c_app1 = invalidChannel, c_rx1 = invalidChannel;
    ChannelId c_app2 = invalidChannel, c_rx2 = invalidChannel;

    auto say = [&](const char *who, const char *what) {
        std::printf("[%8.2f us] %-8s %s\n", sim::toMicroseconds(s.now()),
                    who, what);
    };

    auto sendText = [&](sim::Process &self, UNetFe &un, Endpoint &ep,
                        ChannelId chan, const char *text) {
        SendDescriptor sd;
        sd.channel = chan;
        sd.isInline = true;
        sd.inlineLength = static_cast<std::uint32_t>(std::strlen(text));
        std::memcpy(sd.inlineData.data(), text, sd.inlineLength);
        return un.send(self, ep, sd);
    };

    sim::Process app1(s, "app1", [&](sim::Process &self) {
        say("app1", "sending on its own endpoint");
        sendText(self, unet_l, *ep_app1, c_app1, "from app1");

        say("app1", "trying to hijack app2's endpoint...");
        bool ok = sendText(self, unet_l, *ep_app2, c_app2, "evil");
        std::printf("             -> send %s (protection faults so "
                    "far: %llu)\n",
                    ok ? "ACCEPTED (bug!)" : "REJECTED",
                    static_cast<unsigned long long>(
                        unet_l.protectionFaults()));

        say("app1", "trying to exceed its endpoint limit...");
        os_l.createEndpoint(self); // #2 (fine)
        Endpoint *third = os_l.createEndpoint(self);
        std::printf("             -> third endpoint %s\n",
                    third ? "GRANTED (bug!)" : "DENIED");
    });

    sim::Process app2(s, "app2", [&](sim::Process &self) {
        self.delay(sim::microseconds(50));
        say("app2", "sending on its own endpoint");
        sendText(self, unet_l, *ep_app2, c_app2, "from app2");
    });

    auto receiver = [&](const char *name, Endpoint **ep) {
        return [&, name, ep](sim::Process &self) {
            RecvDescriptor rd;
            while ((*ep)->wait(self, rd, sim::milliseconds(5))) {
                std::printf("[%8.2f us] %-8s received \"%.*s\"\n",
                            sim::toMicroseconds(s.now()), name,
                            static_cast<int>(rd.length),
                            reinterpret_cast<const char *>(
                                rd.inlineData.data()));
            }
        };
    };

    sim::Process rx1(s, "rx1", receiver("rx1", &ep_rx1));
    sim::Process rx2(s, "rx2", receiver("rx2", &ep_rx2));

    ep_app1 = os_l.createEndpoint(app1);
    ep_app2 = os_l.createEndpoint(app2);
    ep_rx1 = os_r.createEndpoint(rx1);
    ep_rx2 = os_r.createEndpoint(rx2);
    UNetFe::connect(unet_l, *ep_app1, unet_r, *ep_rx1, c_app1, c_rx1);
    UNetFe::connect(unet_l, *ep_app2, unet_r, *ep_rx2, c_app2, c_rx2);

    rx1.start();
    rx2.start();
    app1.start(sim::microseconds(10));
    app2.start(sim::microseconds(10));
    s.run();

    std::printf("\nprotection faults recorded: %llu (expected 1)\n",
                static_cast<unsigned long long>(
                    unet_l.protectionFaults()));
    return unet_l.protectionFaults() == 1 ? 0 : 1;
}
