/**
 * @file
 * A Split-C parallel sort on a four-node cluster.
 *
 * Runs the paper's sample-sort benchmark (small-message variant) on a
 * 4-node Pentium/Fast-Ethernet cluster and the large-message variant
 * on a 4-node SPARC/ATM cluster — the head-to-head the paper's
 * Section 5 is about — and prints execution time, the cpu/net split,
 * and verification results.
 */

#include <cstdio>

#include "apps/sample_sort.hh"
#include "cluster/cluster.hh"

using namespace unet;
using namespace unet::cluster;

namespace {

void
runOne(const char *title, Config cfg, bool large)
{
    sim::Simulation s;
    int nodes = cfg.nodes;
    Cluster c(s, std::move(cfg));

    apps::SampleConfig sort;
    sort.keysPerNode = 16384;
    sort.largeMessages = large;

    std::vector<apps::SampleStats> stats(
        static_cast<std::size_t>(nodes));
    sim::Tick elapsed =
        c.run([&](splitc::Runtime &rt, sim::Process &proc) {
            stats[static_cast<std::size_t>(rt.self())] =
                apps::runSampleSort(rt, proc, sort);
        });

    std::printf("%s (%s messages)\n", title, large ? "large" : "small");
    std::printf("  execution time: %.3f ms (simulated)\n",
                sim::toMilliseconds(elapsed));
    for (int i = 0; i < nodes; ++i) {
        auto &p = c.runtime(i).profile();
        auto &st = stats[static_cast<std::size_t>(i)];
        std::printf("  node %d: %6llu keys, cpu %.3f ms, net %.3f ms, "
                    "%s\n",
                    i,
                    static_cast<unsigned long long>(st.keysHeld),
                    sim::toMilliseconds(p.compute),
                    sim::toMilliseconds(p.comm),
                    st.verified ? "verified" : "FAILED");
    }
    std::printf("\n");
}

} // namespace

int
main()
{
    std::printf("Sample sort, 16K keys per node, 4 nodes\n\n");
    runOne("Pentium cluster / Fast Ethernet (Bay 28115)",
           Config::feCluster(4), false);
    runOne("SPARC cluster / ATM (ASX-200, TAXI-140)",
           Config::atmSplitC(4), true);
    return 0;
}
