/**
 * @file
 * Quickstart: two workstations, one switch, one message.
 *
 * Builds the smallest possible U-Net/FE system — two Pentium hosts
 * with DC21140 NICs on a Bay 28115 switch — creates an endpoint on
 * each, connects a channel, and sends a 13-byte message with the
 * zero-copy user-level path. Prints what happened and when.
 */

#include <cstdio>
#include <cstring>

#include "eth/switch.hh"
#include "unet/unet_fe.hh"

using namespace unet;

int
main()
{
    sim::Simulation s;

    // Hardware: two hosts, two NICs, one switch.
    host::Host alice(s, "alice", host::CpuSpec::pentium120(),
                     host::BusSpec::pci());
    host::Host bob(s, "bob", host::CpuSpec::pentium120(),
                   host::BusSpec::pci());
    eth::Switch sw(s, eth::SwitchSpec::bay28115());
    nic::Dc21140 nic_a(alice, sw, eth::MacAddress::fromIndex(1));
    nic::Dc21140 nic_b(bob, sw, eth::MacAddress::fromIndex(2));

    // The in-kernel U-Net implementation on each host.
    UNetFe unet_a(alice, nic_a);
    UNetFe unet_b(bob, nic_b);

    const char greeting[] = "hello, U-Net";

    Endpoint *ep_a = nullptr;
    Endpoint *ep_b = nullptr;
    ChannelId chan_a = invalidChannel, chan_b = invalidChannel;

    sim::Process receiver(s, "receiver", [&](sim::Process &self) {
        std::printf("[%7.2f us] receiver: blocking on the receive "
                    "queue (select-style)\n",
                    sim::toMicroseconds(s.now()));
        RecvDescriptor rd;
        if (!ep_b->wait(self, rd, sim::milliseconds(10))) {
            std::printf("receiver: timed out!\n");
            return;
        }
        std::printf("[%7.2f us] receiver: got %u bytes on channel %u "
                    "(small-message path: %s)\n",
                    sim::toMicroseconds(s.now()), rd.length,
                    rd.channel, rd.isSmall ? "yes" : "no");
        std::printf("            payload: \"%.*s\"\n",
                    static_cast<int>(rd.length),
                    reinterpret_cast<const char *>(
                        rd.inlineData.data()));
    });

    sim::Process sender(s, "sender", [&](sim::Process &self) {
        std::printf("[%7.2f us] sender: pushing descriptor + fast "
                    "trap\n",
                    sim::toMicroseconds(s.now()));
        SendDescriptor sd;
        sd.channel = chan_a;
        sd.isInline = true;
        sd.inlineLength = sizeof(greeting) - 1;
        std::memcpy(sd.inlineData.data(), greeting,
                    sd.inlineLength);
        unet_a.send(self, *ep_a, sd);
        std::printf("[%7.2f us] sender: send() returned "
                    "(%.2f us of processor time)\n",
                    sim::toMicroseconds(s.now()),
                    sim::toMicroseconds(alice.cpu().userTime()));
    });

    // OS-mediated setup: endpoints owned by each process, one channel.
    ep_a = &unet_a.createEndpoint(&sender, {});
    ep_b = &unet_b.createEndpoint(&receiver, {});
    UNetFe::connect(unet_a, *ep_a, unet_b, *ep_b, chan_a, chan_b);

    receiver.start();
    sender.start(sim::microseconds(5));
    s.run();

    std::printf("\nfinal simulated time: %.2f us; frames on the "
                "switch: %llu\n",
                sim::toMicroseconds(s.now()),
                static_cast<unsigned long long>(
                    sw.framesForwarded() + sw.framesFlooded()));
    return 0;
}
