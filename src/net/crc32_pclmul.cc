/**
 * @file
 * PCLMUL folding for the reflected IEEE 802.3 CRC-32.
 *
 * Follows Intel's "Fast CRC Computation for Generic Polynomials Using
 * PCLMULQDQ Instruction" (the same fold-by-4 schedule the Linux kernel
 * and zlib use): four 128-bit lanes each fold 64 input bytes per
 * iteration with two carry-less multiplies, then the lanes collapse to
 * 128 bits, to 64, and a Barrett reduction yields the 32-bit state.
 * The folding constants are x^k mod P for the reflected polynomial —
 * wrong constants produce wrong CRCs for *every* input, so the
 * bit-identity tests against slicing-by-8 pin them.
 *
 * The whole file is inert unless built with UNET_HWCRC on a GCC/Clang
 * x86-64 target; the function carries a target attribute instead of
 * global -mpclmul so the rest of the binary stays baseline-ISA.
 */

#include "net/crc32_pclmul.hh"

#if UNET_HWCRC && defined(__x86_64__) && defined(__GNUC__)

#include <immintrin.h>

namespace unet::net::detail {

bool
crc32PclmulAvailable()
{
    return __builtin_cpu_supports("pclmul") &&
           __builtin_cpu_supports("sse4.1");
}

namespace {

/** k1 = x^544 mod P, k2 = x^480 mod P: fold 512 bits forward. */
const std::uint64_t foldBy4[2] = {0x0154442bd4u, 0x01c6e41596u};

/** k3 = x^160 mod P, k4 = x^96 mod P: fold lane-to-lane / to 128. */
const std::uint64_t foldBy1[2] = {0x01751997d0u, 0x00ccaa009eu};

/** k5 = x^64 mod P: fold 128 bits to 64. */
const std::uint64_t fold64[2] = {0x0163cd6124u, 0};

/** Barrett constants: P' (low), mu (high). */
const std::uint64_t barrett[2] = {0x01db710641u, 0x01f7011641u};

} // namespace

__attribute__((target("pclmul,sse4.1"))) std::uint32_t
crc32FoldPclmul(std::uint32_t state, const std::uint8_t *p,
                std::size_t n)
{
    // Caller guarantees n >= 64 and n % 64 == 0.
    const __m128i k12 =
        _mm_loadu_si128(reinterpret_cast<const __m128i *>(foldBy4));

    __m128i a = _mm_loadu_si128(reinterpret_cast<const __m128i *>(p));
    __m128i b =
        _mm_loadu_si128(reinterpret_cast<const __m128i *>(p + 16));
    __m128i c =
        _mm_loadu_si128(reinterpret_cast<const __m128i *>(p + 32));
    __m128i d =
        _mm_loadu_si128(reinterpret_cast<const __m128i *>(p + 48));
    a = _mm_xor_si128(a, _mm_cvtsi32_si128(
                             static_cast<int>(state)));
    p += 64;
    n -= 64;

    while (n >= 64) {
        __m128i la = _mm_clmulepi64_si128(a, k12, 0x00);
        __m128i lb = _mm_clmulepi64_si128(b, k12, 0x00);
        __m128i lc = _mm_clmulepi64_si128(c, k12, 0x00);
        __m128i ld = _mm_clmulepi64_si128(d, k12, 0x00);
        a = _mm_clmulepi64_si128(a, k12, 0x11);
        b = _mm_clmulepi64_si128(b, k12, 0x11);
        c = _mm_clmulepi64_si128(c, k12, 0x11);
        d = _mm_clmulepi64_si128(d, k12, 0x11);
        a = _mm_xor_si128(
            _mm_xor_si128(a, la),
            _mm_loadu_si128(reinterpret_cast<const __m128i *>(p)));
        b = _mm_xor_si128(
            _mm_xor_si128(b, lb),
            _mm_loadu_si128(
                reinterpret_cast<const __m128i *>(p + 16)));
        c = _mm_xor_si128(
            _mm_xor_si128(c, lc),
            _mm_loadu_si128(
                reinterpret_cast<const __m128i *>(p + 32)));
        d = _mm_xor_si128(
            _mm_xor_si128(d, ld),
            _mm_loadu_si128(
                reinterpret_cast<const __m128i *>(p + 48)));
        p += 64;
        n -= 64;
    }

    // Collapse the four lanes into one 128-bit remainder.
    const __m128i k34 =
        _mm_loadu_si128(reinterpret_cast<const __m128i *>(foldBy1));
    __m128i lo = _mm_clmulepi64_si128(a, k34, 0x00);
    a = _mm_clmulepi64_si128(a, k34, 0x11);
    a = _mm_xor_si128(_mm_xor_si128(a, lo), b);
    lo = _mm_clmulepi64_si128(a, k34, 0x00);
    a = _mm_clmulepi64_si128(a, k34, 0x11);
    a = _mm_xor_si128(_mm_xor_si128(a, lo), c);
    lo = _mm_clmulepi64_si128(a, k34, 0x00);
    a = _mm_clmulepi64_si128(a, k34, 0x11);
    a = _mm_xor_si128(_mm_xor_si128(a, lo), d);

    // 128 -> 64 bits.
    const __m128i mask32 = _mm_setr_epi32(~0, 0, ~0, 0);
    __m128i t = _mm_clmulepi64_si128(a, k34, 0x10);
    a = _mm_xor_si128(_mm_srli_si128(a, 8), t);

    const __m128i k5 =
        _mm_loadu_si128(reinterpret_cast<const __m128i *>(fold64));
    t = _mm_srli_si128(a, 4);
    a = _mm_and_si128(a, mask32);
    a = _mm_clmulepi64_si128(a, k5, 0x00);
    a = _mm_xor_si128(a, t);

    // Barrett reduction to the final 32-bit state.
    const __m128i pm =
        _mm_loadu_si128(reinterpret_cast<const __m128i *>(barrett));
    t = _mm_and_si128(a, mask32);
    t = _mm_clmulepi64_si128(t, pm, 0x10);
    t = _mm_and_si128(t, mask32);
    t = _mm_clmulepi64_si128(t, pm, 0x00);
    a = _mm_xor_si128(a, t);
    return static_cast<std::uint32_t>(_mm_extract_epi32(a, 1));
}

} // namespace unet::net::detail

#else // !UNET_HWCRC || wrong arch/compiler

namespace unet::net::detail {

bool
crc32PclmulAvailable()
{
    return false;
}

std::uint32_t
crc32FoldPclmul(std::uint32_t state, const std::uint8_t *, std::size_t)
{
    return state; // unreachable: availability gate is false
}

} // namespace unet::net::detail

#endif
