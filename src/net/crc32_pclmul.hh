/**
 * @file
 * Internal interface between the CRC-32 dispatcher and the PCLMUL
 * folding translation unit (which alone is built around a target
 * attribute). Not part of the public net/ API — include net/crc32.hh.
 */

#ifndef UNET_NET_CRC32_PCLMUL_HH
#define UNET_NET_CRC32_PCLMUL_HH

#include <cstddef>
#include <cstdint>

#ifndef UNET_HWCRC
#define UNET_HWCRC 0
#endif

namespace unet::net::detail {

/** True when this build + host can run the folding kernel. */
bool crc32PclmulAvailable();

/**
 * Advance @p state over @p n bytes at @p p with PCLMUL folding.
 * Preconditions: n >= 64 and n % 64 == 0 (the dispatcher rounds down
 * and finishes the tail with the table path).
 */
std::uint32_t crc32FoldPclmul(std::uint32_t state,
                              const std::uint8_t *p, std::size_t n);

} // namespace unet::net::detail

#endif // UNET_NET_CRC32_PCLMUL_HH
