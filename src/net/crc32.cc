#include "net/crc32.hh"

#include <array>
#include <bit>
#include <cstring>

namespace unet::net {

namespace {

/** Reflected polynomial for CRC-32 (0x04C11DB7 bit-reversed). */
constexpr std::uint32_t reflectedPoly = 0xEDB88320u;

/**
 * Slicing-by-8 tables: tables[0] is the classic byte-at-a-time table;
 * tables[k][b] advances byte b through the CRC by k additional zero
 * bytes, letting the hot loop fold 8 input bytes per iteration with
 * eight independent table lookups.
 */
std::array<std::array<std::uint32_t, 256>, 8>
makeTables()
{
    std::array<std::array<std::uint32_t, 256>, 8> tables{};
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t c = i;
        for (int bit = 0; bit < 8; ++bit)
            c = (c & 1) ? (reflectedPoly ^ (c >> 1)) : (c >> 1);
        tables[0][i] = c;
    }
    for (std::size_t k = 1; k < 8; ++k)
        for (std::uint32_t i = 0; i < 256; ++i)
            tables[k][i] = (tables[k - 1][i] >> 8) ^
                tables[0][tables[k - 1][i] & 0xFF];
    return tables;
}

const std::array<std::array<std::uint32_t, 256>, 8> tables =
    makeTables();

} // namespace

std::uint32_t
crc32Update(std::uint32_t state, std::span<const std::uint8_t> data)
{
    const std::uint8_t *p = data.data();
    std::size_t n = data.size();
    if constexpr (std::endian::native == std::endian::little) {
        const auto &t = tables;
        while (n >= 8) {
            std::uint32_t lo;
            std::uint32_t hi;
            std::memcpy(&lo, p, 4);
            std::memcpy(&hi, p + 4, 4);
            lo ^= state;
            state = t[7][lo & 0xFF] ^ t[6][(lo >> 8) & 0xFF] ^
                t[5][(lo >> 16) & 0xFF] ^ t[4][lo >> 24] ^
                t[3][hi & 0xFF] ^ t[2][(hi >> 8) & 0xFF] ^
                t[1][(hi >> 16) & 0xFF] ^ t[0][hi >> 24];
            p += 8;
            n -= 8;
        }
    }
    for (; n > 0; ++p, --n)
        state = tables[0][(state ^ *p) & 0xFF] ^ (state >> 8);
    return state;
}

std::uint32_t
crc32(std::span<const std::uint8_t> data)
{
    return crc32Finish(crc32Update(0xFFFFFFFFu, data));
}

std::uint32_t
crc32Reference(std::span<const std::uint8_t> data)
{
    std::uint32_t state = 0xFFFFFFFFu;
    for (std::uint8_t byte : data) {
        state ^= byte;
        for (int bit = 0; bit < 8; ++bit)
            state = (state & 1) ? (reflectedPoly ^ (state >> 1))
                                : (state >> 1);
    }
    return state ^ 0xFFFFFFFFu;
}

} // namespace unet::net
