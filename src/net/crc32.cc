#include "net/crc32.hh"

#include <array>
#include <bit>
#include <cstdlib>
#include <cstring>
#include <string_view>

#include "net/crc32_pclmul.hh"

namespace unet::net {

namespace {

/** Reflected polynomial for CRC-32 (0x04C11DB7 bit-reversed). */
constexpr std::uint32_t reflectedPoly = 0xEDB88320u;

/**
 * Slicing-by-8 tables: tables[0] is the classic byte-at-a-time table;
 * tables[k][b] advances byte b through the CRC by k additional zero
 * bytes, letting the hot loop fold 8 input bytes per iteration with
 * eight independent table lookups.
 */
std::array<std::array<std::uint32_t, 256>, 8>
makeTables()
{
    std::array<std::array<std::uint32_t, 256>, 8> tables{};
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t c = i;
        for (int bit = 0; bit < 8; ++bit)
            c = (c & 1) ? (reflectedPoly ^ (c >> 1)) : (c >> 1);
        tables[0][i] = c;
    }
    for (std::size_t k = 1; k < 8; ++k)
        for (std::uint32_t i = 0; i < 256; ++i)
            tables[k][i] = (tables[k - 1][i] >> 8) ^
                tables[0][tables[k - 1][i] & 0xFF];
    return tables;
}

const std::array<std::array<std::uint32_t, 256>, 8> tables =
    makeTables();

std::uint32_t
crc32UpdateSoft(std::uint32_t state, const std::uint8_t *p,
                std::size_t n)
{
    if constexpr (std::endian::native == std::endian::little) {
        const auto &t = tables;
        while (n >= 8) {
            std::uint32_t lo;
            std::uint32_t hi;
            std::memcpy(&lo, p, 4);
            std::memcpy(&hi, p + 4, 4);
            lo ^= state;
            state = t[7][lo & 0xFF] ^ t[6][(lo >> 8) & 0xFF] ^
                t[5][(lo >> 16) & 0xFF] ^ t[4][lo >> 24] ^
                t[3][hi & 0xFF] ^ t[2][(hi >> 8) & 0xFF] ^
                t[1][(hi >> 16) & 0xFF] ^ t[0][hi >> 24];
            p += 8;
            n -= 8;
        }
    }
    for (; n > 0; ++p, --n)
        state = tables[0][(state ^ *p) & 0xFF] ^ (state >> 8);
    return state;
}

/**
 * The folding kernel needs >= 64 bytes to fill its four lanes; below
 * that the dispatch branch costs more than folding saves, so short
 * inputs (every ATM cell, most headers) stay on the tables
 * unconditionally.
 */
constexpr std::size_t hwMinBytes = 64;

Crc32Backend
resolveBackend()
{
#if UNET_HWCRC
    // Reproducibility kill-switch, read once per process like
    // UNET_PERTURB: forcing the software path lets a CI leg prove the
    // hardware path changes no observable result.
    // nondet-ok(env-read): one-shot backend pick; backends are
    // bit-identical, so the choice affects speed only.
    const char *env = std::getenv("UNET_CRC32"); // NOLINT(concurrency-mt-unsafe)
    if (env && std::string_view(env) == "soft")
        return Crc32Backend::software;
    if (detail::crc32PclmulAvailable())
        return Crc32Backend::pclmul;
#endif
    return Crc32Backend::software;
}

} // namespace

Crc32Backend
crc32Backend()
{
    static const Crc32Backend backend = resolveBackend();
    return backend;
}

const char *
crc32BackendName()
{
    return crc32Backend() == Crc32Backend::pclmul ? "pclmul"
                                                  : "software";
}

std::uint32_t
crc32UpdateWith(Crc32Backend backend, std::uint32_t state,
                std::span<const std::uint8_t> data)
{
    const std::uint8_t *p = data.data();
    std::size_t n = data.size();
    if (backend == Crc32Backend::pclmul && n >= hwMinBytes &&
        detail::crc32PclmulAvailable()) {
        std::size_t folded = n & ~std::size_t{63};
        state = detail::crc32FoldPclmul(state, p, folded);
        p += folded;
        n -= folded;
    }
    return crc32UpdateSoft(state, p, n);
}

std::uint32_t
crc32Update(std::uint32_t state, std::span<const std::uint8_t> data)
{
    return crc32UpdateWith(crc32Backend(), state, data);
}

std::uint32_t
crc32(std::span<const std::uint8_t> data)
{
    return crc32Finish(crc32Update(0xFFFFFFFFu, data));
}

std::uint32_t
crc32Reference(std::span<const std::uint8_t> data)
{
    std::uint32_t state = 0xFFFFFFFFu;
    for (std::uint8_t byte : data) {
        state ^= byte;
        for (int bit = 0; bit < 8; ++bit)
            state = (state & 1) ? (reflectedPoly ^ (state >> 1))
                                : (state >> 1);
    }
    return state ^ 0xFFFFFFFFu;
}

} // namespace unet::net
