#include "net/crc32.hh"

#include <array>

namespace unet::net {

namespace {

/** Reflected polynomial for CRC-32 (0x04C11DB7 bit-reversed). */
constexpr std::uint32_t reflectedPoly = 0xEDB88320u;

std::array<std::uint32_t, 256>
makeTable()
{
    std::array<std::uint32_t, 256> table{};
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t c = i;
        for (int bit = 0; bit < 8; ++bit)
            c = (c & 1) ? (reflectedPoly ^ (c >> 1)) : (c >> 1);
        table[i] = c;
    }
    return table;
}

const std::array<std::uint32_t, 256> table = makeTable();

} // namespace

std::uint32_t
crc32Update(std::uint32_t state, std::span<const std::uint8_t> data)
{
    for (std::uint8_t byte : data)
        state = table[(state ^ byte) & 0xFF] ^ (state >> 8);
    return state;
}

std::uint32_t
crc32(std::span<const std::uint8_t> data)
{
    return crc32Finish(crc32Update(0xFFFFFFFFu, data));
}

std::uint32_t
crc32Reference(std::span<const std::uint8_t> data)
{
    std::uint32_t state = 0xFFFFFFFFu;
    for (std::uint8_t byte : data) {
        state ^= byte;
        for (int bit = 0; bit < 8; ++bit)
            state = (state & 1) ? (reflectedPoly ^ (state >> 1))
                                : (state >> 1);
    }
    return state ^ 0xFFFFFFFFu;
}

} // namespace unet::net
