/**
 * @file
 * CRC-32 as used by IEEE 802.3 Ethernet and ATM AAL5.
 *
 * Both standards use the same reflected CRC-32 (polynomial 0x04C11DB7,
 * initial value 0xFFFFFFFF, final complement), so one implementation
 * serves the Ethernet FCS and the AAL5 trailer CRC. A table-driven fast
 * path is validated against a bitwise reference in the tests.
 *
 * On x86-64 hosts with carry-less multiply, long inputs take a PCLMUL
 * folding path (the SSE4.2 crc32 instruction computes CRC-32C, the
 * wrong polynomial, so folding is the only hardware option for this
 * CRC). Both backends are bit-identical by construction — the backend
 * choice can change speed, never results — and the pick is made once
 * per process: compile-time via the UNET_HWCRC CMake option,
 * run-time via UNET_CRC32=soft.
 */

#ifndef UNET_NET_CRC32_HH
#define UNET_NET_CRC32_HH

#include <cstdint>
#include <span>

namespace unet::net {

/** Which implementation serves long crc32Update inputs. */
enum class Crc32Backend : std::uint8_t {
    software, ///< slicing-by-8 tables (always available)
    pclmul,   ///< x86 carry-less-multiply folding
};

/** The backend the process resolved on first use (see file header). */
Crc32Backend crc32Backend();

/** Human-readable backend name ("software" / "pclmul"). */
const char *crc32BackendName();

/** Table-driven CRC-32 over @p data. */
std::uint32_t crc32(std::span<const std::uint8_t> data);

/** Incremental form: continue a CRC with more data.
 *
 * Start with state 0xFFFFFFFF; finish by complementing.
 */
std::uint32_t crc32Update(std::uint32_t state,
                          std::span<const std::uint8_t> data);

/**
 * Incremental update through a specific backend (tests and benchmarks
 * compare the two directly). Falls back to software when the requested
 * backend is unavailable on this host or compiled out.
 */
std::uint32_t crc32UpdateWith(Crc32Backend backend, std::uint32_t state,
                              std::span<const std::uint8_t> data);

/** Finalize an incremental CRC state. */
constexpr std::uint32_t
crc32Finish(std::uint32_t state)
{
    return state ^ 0xFFFFFFFFu;
}

/** Bit-at-a-time reference implementation (slow; for verification). */
std::uint32_t crc32Reference(std::span<const std::uint8_t> data);

} // namespace unet::net

#endif // UNET_NET_CRC32_HH
