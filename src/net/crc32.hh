/**
 * @file
 * CRC-32 as used by IEEE 802.3 Ethernet and ATM AAL5.
 *
 * Both standards use the same reflected CRC-32 (polynomial 0x04C11DB7,
 * initial value 0xFFFFFFFF, final complement), so one implementation
 * serves the Ethernet FCS and the AAL5 trailer CRC. A table-driven fast
 * path is validated against a bitwise reference in the tests.
 */

#ifndef UNET_NET_CRC32_HH
#define UNET_NET_CRC32_HH

#include <cstdint>
#include <span>

namespace unet::net {

/** Table-driven CRC-32 over @p data. */
std::uint32_t crc32(std::span<const std::uint8_t> data);

/** Incremental form: continue a CRC with more data.
 *
 * Start with state 0xFFFFFFFF; finish by complementing.
 */
std::uint32_t crc32Update(std::uint32_t state,
                          std::span<const std::uint8_t> data);

/** Finalize an incremental CRC state. */
constexpr std::uint32_t
crc32Finish(std::uint32_t state)
{
    return state ^ 0xFFFFFFFFu;
}

/** Bit-at-a-time reference implementation (slow; for verification). */
std::uint32_t crc32Reference(std::span<const std::uint8_t> data);

} // namespace unet::net

#endif // UNET_NET_CRC32_HH
