/**
 * @file
 * Parallel sample sort (the paper's `ssort` benchmark).
 *
 * "Instead of alternating computation and communication phases, the
 * sample sort algorithm uses a single key distribution phase. The
 * algorithm selects a fixed number of samples from keys on each node,
 * sorts all samples from all nodes on a single processor, and selects
 * splitters to determine which range of key values should be used on
 * each node. The splitters are broadcast to all nodes. The main
 * communication phase consists of sending each key to the appropriate
 * node based on splitter values. Finally, each node sorts its values
 * locally. The small-message version of the algorithm sends two values
 * per message while the large-message version transmits a single bulk
 * message."
 */

#ifndef UNET_APPS_SAMPLE_SORT_HH
#define UNET_APPS_SAMPLE_SORT_HH

#include <cstdint>

#include "splitc/runtime.hh"

namespace unet::apps {

/** Problem description. */
struct SampleConfig
{
    /** Keys per node (the paper: 512 K). */
    std::size_t keysPerNode = 512 * 1024;

    /** Samples taken per node. */
    std::size_t samplesPerNode = 64;

    /** Slack factor for the receive array (key imbalance headroom). */
    double recvSlack = 2.0;

    /** Large-message (bulk) or small-message (2 keys/msg) variant. */
    bool largeMessages = false;

    bool verify = true;
    std::uint64_t seed = 1;
};

/** Outcome of a run on one node. */
struct SampleStats
{
    bool verified = false;
    std::uint64_t keysSentRemote = 0;
    std::uint64_t messages = 0;
    std::uint64_t keysHeld = 0; ///< after redistribution
};

/** The SPMD benchmark body. */
SampleStats runSampleSort(splitc::Runtime &rt, sim::Process &proc,
                          const SampleConfig &config);

} // namespace unet::apps

#endif // UNET_APPS_SAMPLE_SORT_HH
