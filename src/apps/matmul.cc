#include "apps/matmul.hh"

#include <cstring>

#include "sim/logging.hh"

namespace unet::apps {

namespace {

/** Deterministic small-integer matrix entries (exact in doubles). */
double
elemA(std::size_t i, std::size_t j)
{
    return static_cast<double>((i * 31 + j * 17 + 3) % 7) - 3.0;
}

double
elemB(std::size_t i, std::size_t j)
{
    return static_cast<double>((i * 13 + j * 29 + 5) % 5) - 2.0;
}

} // namespace

MatmulStats
runMatmul(splitc::Runtime &rt, sim::Process &proc,
          const MatmulConfig &config)
{
    using splitc::HeapAddr;

    const std::size_t nb = config.blocksPerSide;
    const std::size_t b = config.blockSize;
    const std::size_t block_elems = b * b;
    const std::size_t block_bytes = block_elems * sizeof(double);
    const int P = rt.procs();
    const int self = rt.self();
    const std::size_t total_blocks = nb * nb;
    const std::size_t max_owned = (total_blocks + P - 1) / P;

    auto block_owner = [&](std::size_t bi, std::size_t bj) {
        return static_cast<int>((bi * nb + bj) % static_cast<std::size_t>(P));
    };
    auto local_index = [&](std::size_t bi, std::size_t bj) {
        return (bi * nb + bj) / static_cast<std::size_t>(P);
    };

    // Symmetric allocation of owned-block storage for A, B, C plus two
    // scratch blocks for fetched operands.
    HeapAddr base_a = rt.allocBytes(max_owned * block_bytes, 8);
    HeapAddr base_b = rt.allocBytes(max_owned * block_bytes, 8);
    HeapAddr base_c = rt.allocBytes(max_owned * block_bytes, 8);
    HeapAddr scratch_a = rt.allocBytes(block_bytes, 8);
    HeapAddr scratch_b = rt.allocBytes(block_bytes, 8);

    auto block_addr = [&](HeapAddr base, std::size_t bi,
                          std::size_t bj) {
        return base + static_cast<HeapAddr>(local_index(bi, bj) *
                                            block_bytes);
    };

    // Initialize owned blocks of A and B (and zero C).
    for (std::size_t bi = 0; bi < nb; ++bi) {
        for (std::size_t bj = 0; bj < nb; ++bj) {
            if (block_owner(bi, bj) != self)
                continue;
            auto *a = rt.localPtr<double>(block_addr(base_a, bi, bj));
            auto *bb = rt.localPtr<double>(block_addr(base_b, bi, bj));
            auto *c = rt.localPtr<double>(block_addr(base_c, bi, bj));
            for (std::size_t r = 0; r < b; ++r) {
                for (std::size_t col = 0; col < b; ++col) {
                    std::size_t gi = bi * b + r;
                    std::size_t gj = bj * b + col;
                    a[r * b + col] = elemA(gi, gj);
                    bb[r * b + col] = elemB(gi, gj);
                    c[r * b + col] = 0.0;
                }
            }
            rt.chargeIntOps(proc, 4 * block_elems); // init loop
        }
    }
    rt.barrier(proc);

    MatmulStats stats;
    auto *sa = rt.localPtr<double>(scratch_a);
    auto *sb = rt.localPtr<double>(scratch_b);

    // Compute every owned C block.
    for (std::size_t bi = 0; bi < nb; ++bi) {
        for (std::size_t bj = 0; bj < nb; ++bj) {
            if (block_owner(bi, bj) != self)
                continue;
            auto *c = rt.localPtr<double>(block_addr(base_c, bi, bj));
            for (std::size_t k = 0; k < nb; ++k) {
                // Fetch A(bi,k) and B(k,bj).
                int oa = block_owner(bi, k);
                int ob = block_owner(k, bj);
                rt.get(proc, oa, block_addr(base_a, bi, k), scratch_a,
                       static_cast<std::uint32_t>(block_bytes));
                rt.get(proc, ob, block_addr(base_b, k, bj), scratch_b,
                       static_cast<std::uint32_t>(block_bytes));
                rt.sync(proc);
                stats.blocksFetched += 2;

                // c += sa * sb (2 b^3 flops, actually performed).
                for (std::size_t r = 0; r < b; ++r) {
                    for (std::size_t kk = 0; kk < b; ++kk) {
                        double av = sa[r * b + kk];
                        const double *brow = &sb[kk * b];
                        double *crow = &c[r * b];
                        for (std::size_t col = 0; col < b; ++col)
                            crow[col] += av * brow[col];
                    }
                }
                rt.chargeFlops(proc,
                               2ull * block_elems * b);
            }
            ++stats.blocksComputed;
        }
    }
    rt.barrier(proc);

    // Checksum the distributed product.
    double local_sum = 0;
    for (std::size_t bi = 0; bi < nb; ++bi)
        for (std::size_t bj = 0; bj < nb; ++bj)
            if (block_owner(bi, bj) == self) {
                auto *c =
                    rt.localPtr<double>(block_addr(base_c, bi, bj));
                for (std::size_t e = 0; e < block_elems; ++e)
                    local_sum += c[e];
            }
    // Entries are exact small integers; the sum fits an int64.
    auto global = static_cast<std::int64_t>(rt.allReduceSum(
        proc, static_cast<std::uint64_t>(
                  static_cast<std::int64_t>(local_sum))));
    stats.checksum = global;

    if (config.verify) {
        // sum(C) = sum_k (sum_i A(i,k)) * (sum_j B(k,j)): O(N^2).
        const std::size_t n = config.matrixSide();
        double expect = 0;
        for (std::size_t k = 0; k < n; ++k) {
            double ra = 0, cb = 0;
            for (std::size_t i = 0; i < n; ++i)
                ra += elemA(i, k);
            for (std::size_t j = 0; j < n; ++j)
                cb += elemB(k, j);
            expect += ra * cb;
        }
        stats.verified =
            global == static_cast<std::int64_t>(expect);
        if (!stats.verified)
            UNET_WARN("matmul checksum mismatch: got ", global,
                      " want ", static_cast<std::int64_t>(expect));
    }
    return stats;
}

} // namespace unet::apps
