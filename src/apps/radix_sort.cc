#include "apps/radix_sort.hh"

#include <cstring>

#include "apps/keys.hh"
#include "sim/logging.hh"
#include "splitc/global_ptr.hh"

namespace unet::apps {

using splitc::GlobalPtr;
using splitc::HeapAddr;

RadixStats
runRadixSort(splitc::Runtime &rt, sim::Process &proc,
             const RadixConfig &config)
{
    const int P = rt.procs();
    const int self = rt.self();
    const std::size_t per_node = config.keysPerNode;
    const std::uint32_t bins = 1u << config.radixBits;
    const int passes = (32 + config.radixBits - 1) / config.radixBits;

    // Symmetric heap layout.
    HeapAddr keys_a = rt.alloc<std::uint32_t>(per_node);
    HeapAddr keys_b = rt.alloc<std::uint32_t>(per_node);
    HeapAddr gather =
        rt.alloc<std::uint64_t>(static_cast<std::size_t>(P) * bins);
    HeapAddr my_starts = rt.alloc<std::uint64_t>(bins);
    HeapAddr stage_counts = 0, stage = 0;
    if (config.largeMessages) {
        stage_counts = rt.alloc<std::uint64_t>(
            static_cast<std::size_t>(P));
        stage = rt.alloc<std::uint64_t>(
            static_cast<std::size_t>(P) * per_node);
    }

    // Local state shared with the small-message handler.
    struct State
    {
        std::uint32_t *next = nullptr;
        std::uint64_t recvCount = 0;
    };
    auto state = std::make_shared<State>();

    // Small-message handler: up to two (position, key) pairs in the
    // four word arguments — zero payload bytes.
    am::HandlerId h_keys = rt.registerHandler(
        [state, &rt](sim::Process &p, am::Token, const am::Args &args,
                     std::span<const std::uint8_t>) {
            state->next[args[0]] = args[1];
            ++state->recvCount;
            std::uint64_t ops = 2;
            if (args[2] != 0xFFFFFFFFu) {
                state->next[args[2]] = args[3];
                ++state->recvCount;
                ops += 2;
            }
            rt.chargeIntOps(p, ops);
        });

    // Initialize the local keys.
    auto initial = makeKeys(self, per_node, config.seed);
    std::memcpy(rt.heapPtr(keys_a), initial.data(),
                per_node * sizeof(std::uint32_t));
    std::uint64_t checksum0 =
        rt.allReduceSum(proc, keyChecksum(initial));

    RadixStats stats;
    HeapAddr cur_addr = keys_a, next_addr = keys_b;

    for (int pass = 0; pass < passes; ++pass) {
        const int shift = pass * config.radixBits;
        const std::uint32_t mask = bins - 1;
        auto *cur = rt.localPtr<std::uint32_t>(cur_addr);
        state->next = rt.localPtr<std::uint32_t>(next_addr);
        state->recvCount = 0;

        // Step 1: local histogram.
        std::vector<std::uint64_t> hist(bins, 0);
        for (std::size_t i = 0; i < per_node; ++i)
            ++hist[(cur[i] >> shift) & mask];
        rt.chargeIntOps(proc, 2 * per_node);

        // Step 2: global histogram -> per-(node,bin) start ranks,
        // computed on node 0.
        rt.writeBytes(
            proc, 0,
            gather + static_cast<HeapAddr>(self) * bins * 8,
            {reinterpret_cast<const std::uint8_t *>(hist.data()),
             bins * 8});
        rt.barrier(proc);
        if (self == 0) {
            auto *g = rt.localPtr<std::uint64_t>(gather);
            std::vector<std::uint64_t> starts(
                static_cast<std::size_t>(P) * bins);
            std::uint64_t running = 0;
            for (std::uint32_t bin = 0; bin < bins; ++bin) {
                for (int p = 0; p < P; ++p) {
                    starts[static_cast<std::size_t>(p) * bins + bin] =
                        running;
                    running +=
                        g[static_cast<std::size_t>(p) * bins + bin];
                }
            }
            rt.chargeIntOps(proc,
                            2ull * bins * static_cast<std::size_t>(P));
            for (int p = 0; p < P; ++p)
                rt.writeBytes(
                    proc, p, my_starts,
                    {reinterpret_cast<const std::uint8_t *>(
                         starts.data() +
                         static_cast<std::size_t>(p) * bins),
                     bins * 8});
        }
        rt.barrier(proc);

        std::vector<std::uint64_t> cursor(bins);
        std::memcpy(cursor.data(), rt.heapPtr(my_starts), bins * 8);

        // Step 3: key distribution.
        auto place_local = [&](std::uint64_t pos, std::uint32_t key) {
            state->next[pos] = key;
            ++state->recvCount;
        };

        if (!config.largeMessages) {
            // Two keys at a time as AM word arguments.
            struct Pair
            {
                std::uint32_t pos;
                std::uint32_t key;
            };
            std::vector<std::vector<Pair>> pending(
                static_cast<std::size_t>(P));
            for (std::size_t i = 0; i < per_node; ++i) {
                std::uint32_t key = cur[i];
                std::uint32_t bin = (key >> shift) & mask;
                std::uint64_t rank = cursor[bin]++;
                int dst = static_cast<int>(rank / per_node);
                auto pos = static_cast<std::uint32_t>(rank % per_node);
                rt.chargeIntOps(proc, 4);
                if (dst == self) {
                    place_local(pos, key);
                    continue;
                }
                auto &q = pending[static_cast<std::size_t>(dst)];
                q.push_back({pos, key});
                if (q.size() == 2) {
                    rt.requestTo(proc, dst, h_keys,
                                 {q[0].pos, q[0].key, q[1].pos,
                                  q[1].key});
                    ++stats.messages;
                    stats.keysSentRemote += 2;
                    q.clear();
                }
            }
            for (int dst = 0; dst < P; ++dst) {
                auto &q = pending[static_cast<std::size_t>(dst)];
                if (!q.empty()) {
                    rt.requestTo(proc, dst, h_keys,
                                 {q[0].pos, q[0].key, 0xFFFFFFFFu, 0});
                    ++stats.messages;
                    ++stats.keysSentRemote;
                    q.clear();
                }
            }
            // Every node receives exactly per_node keys per pass.
            rt.pollUntil(proc, [state, per_node] {
                return state->recvCount >= per_node;
            });
        } else {
            // One bulk message per destination.
            std::vector<std::vector<std::uint64_t>> outgoing(
                static_cast<std::size_t>(P));
            for (std::size_t i = 0; i < per_node; ++i) {
                std::uint32_t key = cur[i];
                std::uint32_t bin = (key >> shift) & mask;
                std::uint64_t rank = cursor[bin]++;
                int dst = static_cast<int>(rank / per_node);
                auto pos = static_cast<std::uint32_t>(rank % per_node);
                rt.chargeIntOps(proc, 4);
                if (dst == self) {
                    place_local(pos, key);
                    continue;
                }
                outgoing[static_cast<std::size_t>(dst)].push_back(
                    (static_cast<std::uint64_t>(pos) << 32) | key);
            }
            for (int dst = 0; dst < P; ++dst) {
                if (dst == self)
                    continue;
                const auto &q =
                    outgoing[static_cast<std::size_t>(dst)];
                std::uint64_t count = q.size();
                rt.writeBytes(
                    proc, dst,
                    stage_counts + static_cast<HeapAddr>(self) * 8,
                    {reinterpret_cast<const std::uint8_t *>(&count),
                     8});
                if (!q.empty()) {
                    rt.storeTo(
                        proc, dst,
                        stage + static_cast<HeapAddr>(
                                    static_cast<std::uint64_t>(self) *
                                    per_node * 8),
                        {reinterpret_cast<const std::uint8_t *>(
                             q.data()),
                         q.size() * 8});
                    ++stats.messages;
                    stats.keysSentRemote += q.size();
                }
            }
            rt.allStoreSync(proc);
            // Apply staged pairs.
            auto *counts = rt.localPtr<std::uint64_t>(stage_counts);
            for (int src = 0; src < P; ++src) {
                if (src == self)
                    continue;
                auto *pairs = rt.localPtr<std::uint64_t>(
                    stage + static_cast<HeapAddr>(
                                static_cast<std::uint64_t>(src) *
                                per_node * 8));
                for (std::uint64_t i = 0; i < counts[src]; ++i) {
                    place_local(pairs[i] >> 32,
                                static_cast<std::uint32_t>(pairs[i]));
                }
                rt.chargeIntOps(proc, 3 * counts[src]);
            }
            if (state->recvCount != per_node)
                UNET_PANIC("radix pass lost keys: have ",
                           state->recvCount, " want ", per_node);
        }
        rt.barrier(proc);
        std::swap(cur_addr, next_addr);
    }

    if (config.verify) {
        auto *sorted = rt.localPtr<std::uint32_t>(cur_addr);
        bool ok = true;
        for (std::size_t i = 1; i < per_node; ++i)
            if (sorted[i - 1] > sorted[i])
                ok = false;
        // Boundary with the right neighbour.
        if (self + 1 < P) {
            auto first = rt.read(
                proc, GlobalPtr<std::uint32_t>(self + 1, cur_addr));
            if (per_node > 0 && sorted[per_node - 1] > first)
                ok = false;
        }
        std::vector<std::uint32_t> mine(sorted, sorted + per_node);
        std::uint64_t checksum1 =
            rt.allReduceSum(proc, keyChecksum(mine));
        std::uint64_t all_ok =
            rt.allReduceSum(proc, ok ? 0u : 1u);
        stats.verified = all_ok == 0 && checksum0 == checksum1;
        rt.barrier(proc);
    }
    return stats;
}

} // namespace unet::apps
