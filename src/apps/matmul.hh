/**
 * @file
 * Blocked parallel matrix multiply (the paper's `mm` benchmark).
 *
 * "The matrix multiply application was run twice, once using matrices
 * of 8 by 8 blocks with 128 by 128 double floats in each block, and
 * once using 16 by 16 blocks with 16 by 16 double floats in each
 * block. The main loop ... repeatedly fetches a block from each of the
 * two matrices to be multiplied, performs the multiplication, and
 * stores the result locally."
 *
 * Blocks are distributed round-robin by global block index; fetches go
 * through Split-C bulk gets (the large messages that favour ATM's
 * higher bandwidth), and the arithmetic is charged at the host's
 * floating-point rate (where the SPARC beats the Pentium) *and*
 * actually performed, so the product can be verified.
 */

#ifndef UNET_APPS_MATMUL_HH
#define UNET_APPS_MATMUL_HH

#include <cstdint>

#include "splitc/runtime.hh"

namespace unet::apps {

/** Problem description. */
struct MatmulConfig
{
    /** Blocks per matrix side (the paper: 8 or 16). */
    std::size_t blocksPerSide = 8;

    /** Elements per block side (the paper: 128 or 16). */
    std::size_t blockSize = 128;

    /** Check the product against the analytic checksum. */
    bool verify = true;

    std::uint64_t seed = 1;

    std::size_t
    matrixSide() const
    {
        return blocksPerSide * blockSize;
    }

    /** The paper's mm 128x128 configuration (scaled by @p scale). */
    static MatmulConfig
    paper128(std::size_t scale_divisor = 1)
    {
        MatmulConfig c;
        c.blocksPerSide = 8;
        c.blockSize = 128 / scale_divisor;
        return c;
    }

    /** The paper's mm 16x16 configuration. */
    static MatmulConfig
    paper16()
    {
        MatmulConfig c;
        c.blocksPerSide = 16;
        c.blockSize = 16;
        return c;
    }
};

/** Outcome of a run on one node. */
struct MatmulStats
{
    bool verified = false;
    std::int64_t checksum = 0;
    std::uint64_t blocksComputed = 0;
    std::uint64_t blocksFetched = 0;
};

/**
 * The SPMD benchmark body. Call from every node of a cluster.
 * @return the node-local stats (checksum is the global one).
 */
MatmulStats runMatmul(splitc::Runtime &rt, sim::Process &proc,
                      const MatmulConfig &config);

} // namespace unet::apps

#endif // UNET_APPS_MATMUL_HH
