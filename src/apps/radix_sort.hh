/**
 * @file
 * Parallel radix sort (the paper's `rsort` benchmark).
 *
 * "The radix sort uses alternating phases of local sort and key
 * distribution involving irregular all-to-all communication. The
 * algorithm performs a fixed number of passes over the keys, one for
 * every digit in the radix. Each pass consists of three steps: first,
 * every processor computes a local histogram based on its set of local
 * keys; second, a global histogram is computed ... to determine the
 * rank of each key in the sorted array; and finally, every processor
 * sends each of its local keys to the appropriate processor based on
 * the key's rank."
 *
 * Two variants, as in the paper: the small-message version "transfers
 * two keys at a time" (each key pair rides in the four word arguments
 * of one Active Message — the traffic that rewards U-Net/FE's low
 * latency); the large-message version "sends one message containing
 * all relevant keys to every other processor" (bulk stores that reward
 * ATM's bandwidth).
 */

#ifndef UNET_APPS_RADIX_SORT_HH
#define UNET_APPS_RADIX_SORT_HH

#include <cstdint>
#include <vector>

#include "splitc/runtime.hh"

namespace unet::apps {

/** Problem description. */
struct RadixConfig
{
    /** Keys per node (the paper: 512 K). */
    std::size_t keysPerNode = 512 * 1024;

    /** Digit width; 8 bits = 4 passes over 32-bit keys. */
    int radixBits = 8;

    /** Large-message (bulk) or small-message (2 keys/msg) variant. */
    bool largeMessages = false;

    bool verify = true;
    std::uint64_t seed = 1;
};

/** Outcome of a run on one node. */
struct RadixStats
{
    bool verified = false;
    std::uint64_t keysSentRemote = 0;
    std::uint64_t messages = 0;
};

/** The SPMD benchmark body. */
RadixStats runRadixSort(splitc::Runtime &rt, sim::Process &proc,
                        const RadixConfig &config);

} // namespace unet::apps

#endif // UNET_APPS_RADIX_SORT_HH
