#include "apps/sample_sort.hh"

#include <algorithm>
#include <cstring>

#include "apps/keys.hh"
#include "sim/logging.hh"
#include "splitc/global_ptr.hh"

namespace unet::apps {

using splitc::HeapAddr;

SampleStats
runSampleSort(splitc::Runtime &rt, sim::Process &proc,
              const SampleConfig &config)
{
    const int P = rt.procs();
    const int self = rt.self();
    const std::size_t per_node = config.keysPerNode;
    const std::size_t s = config.samplesPerNode;
    const auto recv_cap = static_cast<std::size_t>(
        static_cast<double>(per_node) * config.recvSlack) + s + 16;

    // Symmetric heap layout.
    HeapAddr sample_gather =
        rt.alloc<std::uint32_t>(static_cast<std::size_t>(P) * s);
    HeapAddr splitters = rt.alloc<std::uint32_t>(
        static_cast<std::size_t>(P > 1 ? P - 1 : 1));
    HeapAddr recv_area = rt.alloc<std::uint32_t>(recv_cap);
    HeapAddr stage_counts = 0, stage = 0;
    if (config.largeMessages) {
        stage_counts =
            rt.alloc<std::uint64_t>(static_cast<std::size_t>(P));
        stage = rt.alloc<std::uint32_t>(
            static_cast<std::size_t>(P) * per_node);
    }

    struct State
    {
        std::uint32_t *recv = nullptr;
        std::size_t cursor = 0;
        std::size_t capacity = 0;
    };
    auto state = std::make_shared<State>();
    state->recv = rt.localPtr<std::uint32_t>(recv_area);
    state->capacity = recv_cap;

    // Small-message handler: up to two keys in the word arguments
    // (args[2] = number of keys).
    am::HandlerId h_keys = rt.registerHandler(
        [state, &rt](sim::Process &p, am::Token, const am::Args &args,
                     std::span<const std::uint8_t>) {
            for (am::Word i = 0; i < args[2]; ++i) {
                if (state->cursor >= state->capacity)
                    UNET_FATAL("sample sort receive overflow; raise "
                               "recvSlack");
                state->recv[state->cursor++] = args[i];
            }
            rt.chargeIntOps(p, 2 * args[2]);
        });

    auto keys = makeKeys(self, per_node, config.seed);
    std::uint64_t checksum0 =
        rt.allReduceSum(proc, keyChecksum(keys));

    SampleStats stats;

    // Phase 1: sampling. Evenly strided local samples to node 0.
    {
        std::vector<std::uint32_t> samples(s);
        for (std::size_t i = 0; i < s; ++i)
            samples[i] = keys[(i * per_node) / s];
        rt.chargeIntOps(proc, 2 * s);
        rt.writeBytes(
            proc, 0,
            sample_gather + static_cast<HeapAddr>(self) * s * 4,
            {reinterpret_cast<const std::uint8_t *>(samples.data()),
             s * 4});
    }
    rt.barrier(proc);

    // Phase 2: node 0 sorts the samples and broadcasts splitters.
    if (self == 0 && P > 1) {
        auto *all = rt.localPtr<std::uint32_t>(sample_gather);
        std::size_t count = static_cast<std::size_t>(P) * s;
        std::sort(all, all + count);
        rt.chargeIntOps(
            proc, static_cast<std::uint64_t>(
                      count * (64 - __builtin_clzll(count | 1)) * 2));
        auto *split = rt.localPtr<std::uint32_t>(splitters);
        for (int i = 1; i < P; ++i)
            split[i - 1] = all[static_cast<std::size_t>(i) * s];
    }
    rt.broadcastBytes(proc, 0, splitters,
                      static_cast<std::uint32_t>((P > 1 ? P - 1 : 1) *
                                                 4));

    // Phase 3: key distribution by splitter.
    auto *split = rt.localPtr<std::uint32_t>(splitters);
    auto dest_of = [&](std::uint32_t key) {
        // Binary search over P-1 splitters.
        int lo = 0, hi = P - 1;
        while (lo < hi) {
            int mid = (lo + hi) / 2;
            if (key < split[mid])
                hi = mid;
            else
                lo = mid + 1;
        }
        return lo;
    };

    if (!config.largeMessages) {
        std::vector<std::vector<std::uint32_t>> pending(
            static_cast<std::size_t>(P));
        for (std::size_t i = 0; i < per_node; ++i) {
            std::uint32_t key = keys[i];
            int dst = P > 1 ? dest_of(key) : 0;
            rt.chargeIntOps(
                proc,
                static_cast<std::uint64_t>(
                    2 + (32 - __builtin_clz(
                                  static_cast<unsigned>(P) | 1))));
            if (dst == self) {
                if (state->cursor >= state->capacity)
                    UNET_FATAL("sample sort receive overflow");
                state->recv[state->cursor++] = key;
                continue;
            }
            auto &q = pending[static_cast<std::size_t>(dst)];
            q.push_back(key);
            if (q.size() == 2) {
                rt.requestTo(proc, dst, h_keys, {q[0], q[1], 2, 0});
                ++stats.messages;
                stats.keysSentRemote += 2;
                q.clear();
            }
        }
        for (int dst = 0; dst < P; ++dst) {
            auto &q = pending[static_cast<std::size_t>(dst)];
            if (!q.empty()) {
                rt.requestTo(proc, dst, h_keys, {q[0], 0, 1, 0});
                ++stats.messages;
                ++stats.keysSentRemote;
            }
        }
        // Termination: exchange per-destination counts so everyone
        // knows how many keys to expect.
        std::vector<std::uint64_t> sent_to(
            static_cast<std::size_t>(P), 0);
        for (std::size_t i = 0; i < per_node; ++i)
            ++sent_to[static_cast<std::size_t>(
                P > 1 ? dest_of(keys[i]) : 0)];
        rt.allReduceSumVec(proc, sent_to.data(), sent_to.size());
        std::uint64_t expect = sent_to[static_cast<std::size_t>(self)];
        rt.pollUntil(proc, [state, expect] {
            return state->cursor >= expect;
        });
    } else {
        std::vector<std::vector<std::uint32_t>> outgoing(
            static_cast<std::size_t>(P));
        for (std::size_t i = 0; i < per_node; ++i) {
            std::uint32_t key = keys[i];
            int dst = P > 1 ? dest_of(key) : 0;
            rt.chargeIntOps(
                proc,
                static_cast<std::uint64_t>(
                    2 + (32 - __builtin_clz(
                                  static_cast<unsigned>(P) | 1))));
            if (dst == self) {
                state->recv[state->cursor++] = key;
                continue;
            }
            outgoing[static_cast<std::size_t>(dst)].push_back(key);
        }
        for (int dst = 0; dst < P; ++dst) {
            if (dst == self)
                continue;
            const auto &q = outgoing[static_cast<std::size_t>(dst)];
            std::uint64_t count = q.size();
            rt.writeBytes(
                proc, dst,
                stage_counts + static_cast<HeapAddr>(self) * 8,
                {reinterpret_cast<const std::uint8_t *>(&count), 8});
            if (!q.empty()) {
                rt.storeTo(proc, dst,
                           stage + static_cast<HeapAddr>(
                                       static_cast<std::uint64_t>(
                                           self) *
                                       per_node * 4),
                           {reinterpret_cast<const std::uint8_t *>(
                                q.data()),
                            q.size() * 4});
                ++stats.messages;
                stats.keysSentRemote += q.size();
            }
        }
        rt.allStoreSync(proc);
        auto *counts = rt.localPtr<std::uint64_t>(stage_counts);
        for (int src = 0; src < P; ++src) {
            if (src == self)
                continue;
            auto *vals = rt.localPtr<std::uint32_t>(
                stage + static_cast<HeapAddr>(
                            static_cast<std::uint64_t>(src) *
                            per_node * 4));
            for (std::uint64_t i = 0; i < counts[src]; ++i) {
                if (state->cursor >= state->capacity)
                    UNET_FATAL("sample sort receive overflow; raise "
                               "recvSlack");
                state->recv[state->cursor++] = vals[i];
            }
            rt.chargeIntOps(proc, 2 * counts[src]);
        }
    }
    rt.barrier(proc);

    // Phase 4: local sort.
    stats.keysHeld = state->cursor;
    std::sort(state->recv, state->recv + state->cursor);
    rt.chargeIntOps(
        proc,
        static_cast<std::uint64_t>(
            static_cast<double>(state->cursor) *
            (64 - __builtin_clzll(state->cursor | 1)) * 2));
    rt.barrier(proc);

    if (config.verify) {
        bool ok = true;
        for (std::size_t i = 1; i < state->cursor; ++i)
            if (state->recv[i - 1] > state->recv[i])
                ok = false;
        // Splitter invariants: everything I hold lies in my range.
        if (P > 1 && state->cursor > 0) {
            if (self < P - 1 &&
                state->recv[state->cursor - 1] >= split[self])
                ok = false;
            if (self > 0 && state->recv[0] < split[self - 1])
                ok = false;
        }
        std::vector<std::uint32_t> mine(state->recv,
                                        state->recv + state->cursor);
        std::uint64_t checksum1 =
            rt.allReduceSum(proc, keyChecksum(mine));
        std::uint64_t total =
            rt.allReduceSum(proc, state->cursor);
        std::uint64_t bad = rt.allReduceSum(proc, ok ? 0u : 1u);
        stats.verified = bad == 0 && checksum0 == checksum1 &&
            total == per_node * static_cast<std::size_t>(P);
    }
    return stats;
}

} // namespace unet::apps
