/**
 * @file
 * Deterministic workload generation for the sort benchmarks.
 *
 * "Both the radix and sample sort benchmarks sort an array of 32-bit
 * integers over all nodes. Each node has 512K keys with an arbitrary
 * distribution."
 */

#ifndef UNET_APPS_KEYS_HH
#define UNET_APPS_KEYS_HH

#include <cstdint>
#include <vector>

#include "sim/random.hh"

namespace unet::apps {

/** Generate @p count pseudo-random 32-bit keys for @p node. */
inline std::vector<std::uint32_t>
makeKeys(int node, std::size_t count, std::uint64_t seed)
{
    sim::Random rng(seed * 1000003 + static_cast<std::uint64_t>(node));
    std::vector<std::uint32_t> keys(count);
    for (auto &k : keys)
        k = rng.u32();
    return keys;
}

/** Sum of keys modulo 2^64 (order-independent checksum). */
inline std::uint64_t
keyChecksum(const std::vector<std::uint32_t> &keys)
{
    std::uint64_t sum = 0;
    for (auto k : keys)
        sum += k;
    return sum;
}

} // namespace unet::apps

#endif // UNET_APPS_KEYS_HH
