/**
 * @file
 * The U-Net architecture interface.
 *
 * UNet "virtualizes the network interface in such a way that ... every
 * application [has] the illusion of owning the interface". The two
 * implementations (UNetFe, UNetAtm) expose the same operations; they
 * differ in who services the queues (kernel trap handler vs NIC
 * firmware) and in what the doorbell costs the host processor.
 */

#ifndef UNET_UNET_UNET_HH
#define UNET_UNET_UNET_HH

#include <memory>
#include <string>
#include <vector>

#include "host/host.hh"
#include "sim/stats.hh"
#include "unet/endpoint.hh"
#include "unet/types.hh"
#include "unet/vep/vep.hh"

namespace unet {

/** Abstract U-Net instance on one host. */
class UNet
{
  public:
    explicit UNet(host::Host &host) : _host(host)
    {
        _table.guard().setLabel(host.name() + ".eptable");
    }
    virtual ~UNet() = default;

    UNet(const UNet &) = delete;
    UNet &operator=(const UNet &) = delete;

    /** Implementation name for reporting. */
    virtual std::string name() const = 0;

    /** Largest message that can travel inline in a descriptor (the
     *  small-message optimization threshold of this substrate). */
    virtual std::size_t inlineMax() const = 0;

    /** Largest single U-Net message on this substrate. */
    virtual std::size_t maxMessageBytes() const = 0;

    /**
     * Create an endpoint owned by @p owner. Called via the OS service
     * (a system call); applications do not call this directly.
     */
    virtual Endpoint &createEndpoint(const sim::Process *owner,
                                     const EndpointConfig &config) = 0;

    /**
     * Destroy @p ep: the implementation tears down its NIC-side state
     * (port/VCI demux entries, residency) and the table retires the
     * id. Destroying an endpoint with in-flight custody (a device ring
     * slot or the firmware mid-message) is a model bug and panics.
     * Called via the OS service, like createEndpoint.
     */
    void
    destroyEndpoint(Endpoint &ep)
    {
        onDestroyEndpoint(ep);
        _table.destroy(ep.id());
    }

    /**
     * Post a send: push @p desc onto the endpoint's send queue and ring
     * the implementation's doorbell (fast trap / PIO store), charging
     * the calling process its share of processor time.
     *
     * @return false if the descriptor was rejected (full queue, invalid
     *         channel, or protection fault).
     */
    virtual bool send(sim::Process &proc, Endpoint &ep,
                      const SendDescriptor &desc) = 0;

    /**
     * Batched submission: post @p n descriptors onto the endpoint's
     * send queue and ring the doorbell ONCE for the whole batch, so
     * the fixed per-operation cost (trap or PIO doorbell, service
     * kick) is amortized over the batch.
     *
     * Semantics:
     *  - sendv with n == 1 takes the exact scalar send() path — it is
     *    trace- and digest-identical by construction;
     *  - descriptors are accepted in order and submission stops at the
     *    first rejection (full send queue, invalid channel);
     *  - posting more descriptors than the send queue can ever hold is
     *    a programming error and panics (the batch could never be
     *    accepted — the caller's batching is broken, not backpressured).
     *
     * @return the number of descriptors accepted (0..n).
     */
    virtual std::size_t sendv(sim::Process &proc, Endpoint &ep,
                              const SendDescriptor *descs,
                              std::size_t n);

    /**
     * Batched completion: drain up to @p max receive descriptors from
     * @p ep in one call (one custody window instead of max). The
     * batch=1 case is semantically identical to Endpoint::poll().
     * @return the number of descriptors written to @p out.
     */
    std::size_t
    pollv(Endpoint &ep, RecvDescriptor *out, std::size_t max)
    {
        return ep.pollv(out, max);
    }

    /**
     * Hand a receive buffer to the free queue.
     * @return false if the free queue is full.
     */
    virtual bool postFree(sim::Process &proc, Endpoint &ep,
                          BufferRef buf) = 0;

    /**
     * Re-kick the servicing agent for descriptors still sitting in the
     * send queue (e.g. after device-ring backpressure). A no-op when
     * the queue is already being drained autonomously.
     */
    virtual void flush(sim::Process &proc, Endpoint &ep) = 0;

    /**
     * Number of posted send descriptors whose payload bytes have NOT
     * yet been read out of the buffer area (still in the send queue or
     * in a device ring). While this is non-zero, an application must
     * not overwrite buffer-area regions referenced by posted
     * descriptors — the contract any zero-copy interface imposes.
     */
    virtual std::size_t txBacklog(const Endpoint &ep) const = 0;

    host::Host &host() { return _host; }

    /** Sends rejected because the caller does not own the endpoint. */
    std::uint64_t protectionFaults() const { return _protFaults.value(); }

    /** Every endpoint on this instance (materialized and cold). */
    vep::EndpointTable &table() { return _table; }
    const vep::EndpointTable &table() const { return _table; }

  protected:
    /** Implementation hook run before the table retires the id. */
    virtual void onDestroyEndpoint(Endpoint &ep) { (void)ep; }

    /** Owner check shared by implementations. */
    bool
    checkOwner(const sim::Process &proc, const Endpoint &ep)
    {
        if (ep.owner() != &proc) {
            ++_protFaults;
            return false;
        }
        return true;
    }

    host::Host &_host;
    vep::EndpointTable _table;
    sim::Counter _protFaults;
};

/**
 * Reference sendv: a scalar-send loop (one doorbell per descriptor).
 * Implementations override it to coalesce the doorbell; they keep
 * these exact accept-in-order / stop-at-first-rejection semantics.
 */
inline std::size_t
UNet::sendv(sim::Process &proc, Endpoint &ep, const SendDescriptor *descs,
            std::size_t n)
{
    if (n > ep.sendQueue().capacity())
        UNET_PANIC("sendv of ", n, " descriptors exceeds the ",
                   ep.sendQueue().capacity(),
                   "-entry send queue window");
    std::size_t accepted = 0;
    while (accepted < n && send(proc, ep, descs[accepted]))
        ++accepted;
    return accepted;
}

} // namespace unet

#endif // UNET_UNET_UNET_HH
