/**
 * @file
 * The U-Net architecture interface.
 *
 * UNet "virtualizes the network interface in such a way that ... every
 * application [has] the illusion of owning the interface". The two
 * implementations (UNetFe, UNetAtm) expose the same operations; they
 * differ in who services the queues (kernel trap handler vs NIC
 * firmware) and in what the doorbell costs the host processor.
 */

#ifndef UNET_UNET_UNET_HH
#define UNET_UNET_UNET_HH

#include <memory>
#include <string>
#include <vector>

#include "host/host.hh"
#include "sim/stats.hh"
#include "unet/endpoint.hh"
#include "unet/types.hh"

namespace unet {

/** Abstract U-Net instance on one host. */
class UNet
{
  public:
    explicit UNet(host::Host &host) : _host(host) {}
    virtual ~UNet() = default;

    UNet(const UNet &) = delete;
    UNet &operator=(const UNet &) = delete;

    /** Implementation name for reporting. */
    virtual std::string name() const = 0;

    /** Largest message that can travel inline in a descriptor (the
     *  small-message optimization threshold of this substrate). */
    virtual std::size_t inlineMax() const = 0;

    /** Largest single U-Net message on this substrate. */
    virtual std::size_t maxMessageBytes() const = 0;

    /**
     * Create an endpoint owned by @p owner. Called via the OS service
     * (a system call); applications do not call this directly.
     */
    virtual Endpoint &createEndpoint(const sim::Process *owner,
                                     const EndpointConfig &config) = 0;

    /**
     * Post a send: push @p desc onto the endpoint's send queue and ring
     * the implementation's doorbell (fast trap / PIO store), charging
     * the calling process its share of processor time.
     *
     * @return false if the descriptor was rejected (full queue, invalid
     *         channel, or protection fault).
     */
    virtual bool send(sim::Process &proc, Endpoint &ep,
                      const SendDescriptor &desc) = 0;

    /**
     * Hand a receive buffer to the free queue.
     * @return false if the free queue is full.
     */
    virtual bool postFree(sim::Process &proc, Endpoint &ep,
                          BufferRef buf) = 0;

    /**
     * Re-kick the servicing agent for descriptors still sitting in the
     * send queue (e.g. after device-ring backpressure). A no-op when
     * the queue is already being drained autonomously.
     */
    virtual void flush(sim::Process &proc, Endpoint &ep) = 0;

    /**
     * Number of posted send descriptors whose payload bytes have NOT
     * yet been read out of the buffer area (still in the send queue or
     * in a device ring). While this is non-zero, an application must
     * not overwrite buffer-area regions referenced by posted
     * descriptors — the contract any zero-copy interface imposes.
     */
    virtual std::size_t txBacklog(const Endpoint &ep) const = 0;

    host::Host &host() { return _host; }

    /** Sends rejected because the caller does not own the endpoint. */
    std::uint64_t protectionFaults() const { return _protFaults.value(); }

    /** Endpoints created on this instance. */
    const std::vector<std::unique_ptr<Endpoint>> &
    endpoints() const
    {
        return _endpoints;
    }

  protected:
    /** Owner check shared by implementations. */
    bool
    checkOwner(const sim::Process &proc, const Endpoint &ep)
    {
        if (ep.owner() != &proc) {
            ++_protFaults;
            return false;
        }
        return true;
    }

    host::Host &_host;
    std::vector<std::unique_ptr<Endpoint>> _endpoints;
    sim::Counter _protFaults;
};

} // namespace unet

#endif // UNET_UNET_UNET_HH
