/**
 * @file
 * The operating-system service side of U-Net.
 *
 * "Creation of user endpoints and communication channels is managed by
 * the operating system ... to enforce protection boundaries between
 * processes and to properly manage system resources." The OS service
 * validates endpoint/channel system calls against per-process resource
 * limits and an authorization hook, and charges the (slow) system-call
 * path — connection setup is off the critical path by design.
 */

#ifndef UNET_UNET_OS_SERVICE_HH
#define UNET_UNET_OS_SERVICE_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/logging.hh"
#include "sim/process.hh"
#include "unet/unet.hh"

namespace unet {

/** Resource limits enforced per process. */
struct OsLimits
{
    std::size_t maxEndpointsPerProcess = 8;
    std::size_t maxChannelsPerEndpoint = 64;
};

/** Per-host endpoint/channel management service. */
class OsService
{
  public:
    /**
     * @param impl         The U-Net implementation on this host.
     * @param limits       Resource limits.
     * @param syscall_cost Processor time charged per management call
     *                     (a full system call, not the fast trap).
     */
    OsService(UNet &impl, OsLimits limits = {},
              sim::Tick syscall_cost = sim::microseconds(15))
        : impl(impl), limits(limits), syscallCost(syscall_cost)
    {}

    UNet &unet() { return impl; }

    /**
     * System call: create an endpoint owned by the calling process.
     * Fails (returns nullptr) if the per-process limit is exceeded.
     */
    Endpoint *
    createEndpoint(sim::Process &proc, const EndpointConfig &cfg = {})
    {
        chargeSyscall(proc);
        std::uint32_t &count = quotaSlot(proc.id());
        if (count >= limits.maxEndpointsPerProcess)
            return nullptr;
        ++count;
        EndpointConfig limited = cfg;
        limited.maxChannels = std::min(cfg.maxChannels,
                                       limits.maxChannelsPerEndpoint);
        return &impl.createEndpoint(&proc, limited);
    }

    /**
     * System call: tear down an endpoint owned by the calling process
     * and return its quota. The implementation detaches the endpoint
     * from the NIC (which panics if it still holds in-flight custody)
     * and retires its id.
     */
    void
    destroyEndpoint(sim::Process &proc, Endpoint &ep)
    {
        chargeSyscall(proc);
        if (ep.owner() && ep.owner() != &proc)
            UNET_PANIC("process ", proc.id(),
                       " destroying endpoint owned by process ",
                       ep.owner()->id());
        std::uint32_t &count = quotaSlot(proc.id());
        if (count == 0)
            UNET_PANIC("endpoint quota underflow for process ",
                       proc.id());
        --count;
        impl.destroyEndpoint(ep);
    }

    /**
     * Authorization hook consulted during channel creation: return
     * false to deny the requesting process access to the destination.
     * Default allows everything (a single-user cluster).
     */
    void
    setAuthorizer(std::function<bool(const sim::Process &,
                                     const Endpoint &)> fn)
    {
        authorizer = std::move(fn);
    }

    /** Run the authorization check for a channel request. */
    bool
    authorize(const sim::Process &proc, const Endpoint &ep) const
    {
        return !authorizer || authorizer(proc, ep);
    }

    /**
     * Charge one management system call to @p proc. Creation calls
     * issued during simulation set-up (outside any running process) are
     * free — they model boot-time configuration.
     */
    void
    chargeSyscall(sim::Process &proc)
    {
        if (sim::Process::current() == &proc)
            impl.host().cpu().busy(proc, syscallCost);
    }

  private:
    /** Per-process quota slot, grown on demand. Process ids are dense
     *  (a per-simulation counter), so a flat vector indexed by id
     *  replaces the old std::map: O(1) on the syscall path and no
     *  node churn when a serve rig opens hundreds of endpoints. */
    std::uint32_t &
    quotaSlot(std::uint64_t pid)
    {
        if (pid >= endpointCount.size())
            endpointCount.resize(pid + 1, 0);
        return endpointCount[static_cast<std::size_t>(pid)];
    }

    UNet &impl;
    OsLimits limits;
    sim::Tick syscallCost;
    /** Indexed by stable process id (not address: Process addresses
     *  vary across perturbation salts). */
    std::vector<std::uint32_t> endpointCount;
    std::function<bool(const sim::Process &, const Endpoint &)> authorizer;
};

} // namespace unet

#endif // UNET_UNET_OS_SERVICE_HH
