/**
 * @file
 * The operating-system service side of U-Net.
 *
 * "Creation of user endpoints and communication channels is managed by
 * the operating system ... to enforce protection boundaries between
 * processes and to properly manage system resources." The OS service
 * validates endpoint/channel system calls against per-process resource
 * limits and an authorization hook, and charges the (slow) system-call
 * path — connection setup is off the critical path by design.
 */

#ifndef UNET_UNET_OS_SERVICE_HH
#define UNET_UNET_OS_SERVICE_HH

#include <functional>
#include <map>

#include "sim/process.hh"
#include "unet/unet.hh"

namespace unet {

/** Resource limits enforced per process. */
struct OsLimits
{
    std::size_t maxEndpointsPerProcess = 8;
    std::size_t maxChannelsPerEndpoint = 64;
};

/** Per-host endpoint/channel management service. */
class OsService
{
  public:
    /**
     * @param impl         The U-Net implementation on this host.
     * @param limits       Resource limits.
     * @param syscall_cost Processor time charged per management call
     *                     (a full system call, not the fast trap).
     */
    OsService(UNet &impl, OsLimits limits = {},
              sim::Tick syscall_cost = sim::microseconds(15))
        : impl(impl), limits(limits), syscallCost(syscall_cost)
    {}

    UNet &unet() { return impl; }

    /**
     * System call: create an endpoint owned by the calling process.
     * Fails (returns nullptr) if the per-process limit is exceeded.
     */
    Endpoint *
    createEndpoint(sim::Process &proc, const EndpointConfig &cfg = {})
    {
        chargeSyscall(proc);
        auto &count = endpointCount[proc.id()];
        if (count >= limits.maxEndpointsPerProcess)
            return nullptr;
        ++count;
        EndpointConfig limited = cfg;
        limited.maxChannels = std::min(cfg.maxChannels,
                                       limits.maxChannelsPerEndpoint);
        return &impl.createEndpoint(&proc, limited);
    }

    /**
     * Authorization hook consulted during channel creation: return
     * false to deny the requesting process access to the destination.
     * Default allows everything (a single-user cluster).
     */
    void
    setAuthorizer(std::function<bool(const sim::Process &,
                                     const Endpoint &)> fn)
    {
        authorizer = std::move(fn);
    }

    /** Run the authorization check for a channel request. */
    bool
    authorize(const sim::Process &proc, const Endpoint &ep) const
    {
        return !authorizer || authorizer(proc, ep);
    }

    /**
     * Charge one management system call to @p proc. Creation calls
     * issued during simulation set-up (outside any running process) are
     * free — they model boot-time configuration.
     */
    void
    chargeSyscall(sim::Process &proc)
    {
        if (sim::Process::current() == &proc)
            impl.host().cpu().busy(proc, syscallCost);
    }

  private:
    UNet &impl;
    OsLimits limits;
    sim::Tick syscallCost;
    /** Per-process quota, keyed by stable process id (not address:
     *  Process addresses vary across perturbation salts). */
    std::map<std::uint64_t, std::size_t> endpointCount;
    std::function<bool(const sim::Process &, const Endpoint &)> authorizer;
};

} // namespace unet

#endif // UNET_UNET_OS_SERVICE_HH
