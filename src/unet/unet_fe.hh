/**
 * @file
 * U-Net over Fast Ethernet: the in-kernel implementation.
 *
 * "Although U-Net cannot be implemented directly on the Fast Ethernet
 * interface itself due to the lack of a programmable co-processor, the
 * kernel trap and interrupt handler timings demonstrate that the U-Net
 * model is well-suited to a low-overhead in-kernel implementation."
 *
 * Transmit: the application pushes a descriptor onto the endpoint's
 * send queue and issues a fast trap; the kernel service routine walks
 * the queue, builds an Ethernet+U-Net header in a kernel buffer, points
 * a DC21140 ring descriptor at (header, user buffer) — zero copy — and
 * issues a transmit poll demand. The per-step costs are the Figure 3
 * timeline, summing to ~4.2 us of processor overhead.
 *
 * Receive: the DC21140 interrupt handler demultiplexes on the one-byte
 * U-Net port in the header and copies the payload into the destination
 * endpoint's buffer area (or directly into the receive descriptor for
 * messages under 64 bytes). Per-step costs are the Figure 4 timeline:
 * ~4.1 us for a 40-byte message, plus 1.42 us per additional 100 bytes
 * of copy at the Pentium's 70 MB/s.
 */

#ifndef UNET_UNET_UNET_FE_HH
#define UNET_UNET_UNET_FE_HH

#include <array>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "nic/dc21140.hh"
#include "unet/unet.hh"

namespace unet {

/** Calibration constants for the kernel code paths. */
struct UNetFeSpec
{
    /** @name Figure 3: transmit trap steps (trap entry/exit come from
     *  the CpuSpec). @{ */
    sim::Tick txCheckParams = sim::nanoseconds(740);
    sim::Tick txEthHeaderSetup = sim::nanoseconds(370);
    sim::Tick txRingDescSetup = sim::nanoseconds(560);
    sim::Tick txPollDemand = sim::nanoseconds(920);
    sim::Tick txFreePrevRing = sim::nanoseconds(420);
    sim::Tick txFreePrevQueue = sim::nanoseconds(350);
    /** @} */

    /** @name Figure 4: receive interrupt steps. @{ */
    sim::Tick rxHandlerEntry = sim::nanoseconds(380);
    sim::Tick rxPollRing = sim::nanoseconds(520);
    sim::Tick rxDemux = sim::nanoseconds(480);
    sim::Tick rxInitDescr = sim::nanoseconds(600);
    sim::Tick rxAllocBuffer = sim::nanoseconds(710);
    sim::Tick rxInitDescrPtrs = sim::nanoseconds(550);
    sim::Tick rxBumpRing = sim::nanoseconds(400);
    sim::Tick rxReturn = sim::nanoseconds(400);
    /** @} */

    /** User-level cost of pushing a descriptor onto the send queue. */
    sim::Tick userDescriptorPush = sim::nanoseconds(200);

    /** User-level cost of posting a free buffer. */
    sim::Tick userFreePost = sim::nanoseconds(150);

    /** Signal-delivery latency for the upcall receive model. */
    sim::Tick upcallLatency = sim::microseconds(30);

    /** Endpoint virtualization: hot-set capacity in the kernel's
     *  pinned NIC-adjacent memory and page-in/out fault costs. */
    vep::VepSpec vep;

    /** EtherType carried by U-Net/FE frames. */
    std::uint16_t etherType = 0x88B5;

    /** @name Ablation knobs. @{ */

    /** Copy sub-64-byte messages straight into the receive descriptor
     *  (the paper's small-message optimization). */
    bool smallMessageOptimization = true;

    /** Charge the receive-path copy into the user buffer area. Turning
     *  this off models the zero-copy receive a co-processor enables
     *  ("eliminating a costly copy"). */
    bool chargeRxCopy = true;

    /** Encapsulate messages in IPv4 to cross routers (the paper's
     *  scalability fix, "however, this would add considerable
     *  communication overhead"). */
    bool ipv4Encapsulation = false;

    /** Extra kernel work per packet when IPv4 encapsulation is on
     *  (header build/parse + checksum). */
    sim::Tick ipv4Cost = sim::microseconds(2);

    /** @} */

    /** IPv4 header bytes added per frame when encapsulating. */
    static constexpr std::size_t ipv4HeaderBytes = 20;

    std::size_t
    extraHeaderBytes() const
    {
        return ipv4Encapsulation ? ipv4HeaderBytes : 0;
    }
};

/** The U-Net/FE kernel agent on one host. */
class UNetFe : public UNet
{
  public:
    /** Bytes of U-Net header inside the Ethernet payload:
     *  dst port, src port, 16-bit length, 2 reserved. A 40-byte message
     *  thus fills a 60-byte frame, as in the paper. */
    static constexpr std::size_t unetHeaderBytes = 6;

    /** Largest single message: the Ethernet payload minus our header
     *  (the paper quotes 1498 with its 2-byte minimum header; with the
     *  full 6-byte header the ceiling is 1494). */
    static constexpr std::size_t maxMessage =
        eth::Frame::maxPayload - unetHeaderBytes;

    UNetFe(host::Host &host, nic::Dc21140 &nic, UNetFeSpec spec = {});

    std::string name() const override { return "U-Net/FE"; }
    std::size_t inlineMax() const override { return smallMessageMax; }
    std::size_t maxMessageBytes() const override { return maxMessage; }

    Endpoint &createEndpoint(const sim::Process *owner,
                             const EndpointConfig &config) override;

    bool send(sim::Process &proc, Endpoint &ep,
              const SendDescriptor &desc) override;

    /**
     * Batched submission: one fast trap services the whole batch. The
     * kernel drains the send queue under a single trap-entry/exit pair
     * and issues ONE transmit poll demand after the last ring
     * descriptor is published, so the Figure-3 fixed costs (trap entry,
     * poll demand, trap exit) are paid once per batch instead of once
     * per message.
     */
    std::size_t sendv(sim::Process &proc, Endpoint &ep,
                      const SendDescriptor *descs,
                      std::size_t n) override;

    bool postFree(sim::Process &proc, Endpoint &ep,
                  BufferRef buf) override;

    void flush(sim::Process &proc, Endpoint &ep) override;

    /** Send-queue entries plus device-ring descriptors the DC21140 has
     *  not yet gathered (the ring is shared; the count is conservative
     *  across endpoints, which is safe for the zero-copy contract). */
    std::size_t txBacklog(const Endpoint &ep) const override;

    /** The U-Net port assigned to @p ep at creation. */
    PortId portOf(const Endpoint &ep) const;

    /** Register a channel to a remote (MAC, port) tag on @p ep. */
    ChannelId addChannelTo(Endpoint &ep, eth::MacAddress remote_mac,
                           PortId remote_port);

    /**
     * OS-service channel setup between two endpoints on two hosts:
     * registers tags on both sides and returns each side's channel id.
     */
    static void connect(UNetFe &a, Endpoint &ep_a, UNetFe &b,
                        Endpoint &ep_b, ChannelId &chan_a,
                        ChannelId &chan_b);

    const UNetFeSpec &spec() const { return _spec; }
    nic::Dc21140 &nic() { return _nic; }

    /** Endpoint hot set (residency, faults, pins). */
    vep::ResidencyCache &residency() { return _residency; }
    const vep::ResidencyCache &residency() const { return _residency; }

    /** @name Statistics. @{ */
    std::uint64_t messagesSent() const { return _sent.value(); }
    std::uint64_t messagesDelivered() const { return _delivered.value(); }
    std::uint64_t rxNoFreeBuffer() const { return _noFreeBuf.value(); }
    std::uint64_t rxUnknownPort() const { return _unknownPort.value(); }
    std::uint64_t rxNoChannel() const { return _noChannel.value(); }
    std::uint64_t rxBadFrame() const { return _badFrame.value(); }
    /** @} */

  private:
    /** Tear down port/demux/residency state before the id retires. */
    void onDestroyEndpoint(Endpoint &ep) override;

    /** send() once the descriptor carries its trace context. */
    bool sendImpl(sim::Process &proc, Endpoint &ep,
                  const SendDescriptor &desc);

    /** sendv() once every descriptor carries its trace context. */
    std::size_t sendvImpl(sim::Process &proc, Endpoint &ep,
                          const SendDescriptor *descs, std::size_t n);

    /**
     * Kernel service routine for the send queue (runs in the trap).
     * With @p coalesce the drain charges its accumulated cost in one
     * lump and issues a single poll demand after the last descriptor;
     * without it (the scalar path) each message is charged and kicked
     * individually, exactly as before batching existed.
     */
    void serviceSendQueue(sim::Process &proc, Endpoint &ep,
                          bool coalesce = false);

    /** DC21140 receive interrupt handler. */
    void rxInterrupt();

    /** Release ownership of a user fragment whose TX ring slot the
     *  device has completed (own bit cleared). */
    void reapTxSlot(std::size_t slot);

    /** Reap every completed TX ring slot. */
    void reapTx();

    /**
     * Account one modeled kernel step: advance the accumulated cost
     * and, when tracing, record a Step detail span at the position the
     * step occupies on the Figure 3/4 timeline (the accumulated cost is
     * charged to the CPU in one lump after the steps, so span @p msg's
     * wall placement is @p base + what accumulated before it).
     */
    void
    step(const obs::TraceContext &ctx, sim::Tick base, const char *stage,
         sim::Tick cost, sim::Tick &acc)
    {
#if UNET_TRACE
        if (auto *tr = _host.simulation().trace())
            tr->record(ctx.id, obs::SpanKind::Step, _trackCpu,
                       base + acc, base + acc + cost, stage);
#else
        (void)ctx;
        (void)base;
        (void)stage;
#endif
        acc += cost;
    }

    UNetFeSpec _spec;
    nic::Dc21140 &_nic;

    /** Per-endpoint state the kernel keeps. */
    struct EpState
    {
        Endpoint *ep = nullptr;
        PortId port = 0;
        /** (remote MAC << 8 | remote port) -> channel id, kept sorted
         *  by key: the rx demux binary-searches it, channel setup
         *  inserts into it. */
        std::vector<std::pair<std::uint64_t, ChannelId>> demux;
    };

    /** Keyed by Endpoint::id() — a stable integral key, so iteration
     *  order is schedule- and address-independent. std::map for node
     *  stability: portTable/epIndex hold pointers into the values. */
    std::map<std::size_t, EpState> epState;

    /** Flat id-keyed handles onto epState nodes for the hot paths:
     *  send-queue service indexes by Endpoint::id(), the rx interrupt
     *  demuxes by the one-byte U-Net port (the port space IS the
     *  array, so "unknown port" is a null entry, not a map miss). */
    std::vector<EpState *> epIndex;
    std::array<EpState *, 256> portTable{};
    std::size_t portsAssigned = 0;
    PortId nextPort = 0;

    /** Ports released by destroyed endpoints, reused LIFO. */
    std::vector<PortId> _freePorts;

    /** Which endpoints' kernel state is resident right now. */
    vep::ResidencyCache _residency;

    /** Kernel header buffers, one per TX ring slot. */
    std::vector<std::size_t> headerBufOffset;

    /** User fragment each TX ring slot references while the device owns
     *  it (ownership tracking: released when the slot completes). */
    std::vector<std::optional<std::pair<Endpoint *, BufferRef>>>
        txSlotFrag;

    /** Kernel receive buffers behind the device RX ring. */
    std::size_t kernelRxHead = 0;

    sim::Counter _sent;
    sim::Counter _delivered;
    sim::Counter _noFreeBuf;
    sim::Counter _unknownPort;
    sim::Counter _noChannel;
    sim::Counter _badFrame;

    /** Trace track for kernel-agent work on this host. */
    std::string _trackCpu;

    obs::MetricGroup _metrics;
};

} // namespace unet

#endif // UNET_UNET_UNET_FE_HH
