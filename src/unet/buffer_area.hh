/**
 * @file
 * Endpoint buffer areas.
 *
 * A buffer area is a pinned, contiguous region of host memory holding
 * message data. It is mapped into exactly one process ("the buffer
 * areas and message queues for distinct endpoints are disjoint") and
 * into the NIC's DMA space, so transmits are zero-copy. Management of
 * the space is entirely up to the application; U-Net only checks
 * bounds.
 */

#ifndef UNET_UNET_BUFFER_AREA_HH
#define UNET_UNET_BUFFER_AREA_HH

#include <span>

#include "host/memory.hh"
#include "unet/types.hh"

namespace unet {

/** A process's message-data region inside host memory. */
class BufferArea
{
  public:
    /**
     * Carve a buffer area out of @p memory.
     * @param memory Host memory arena.
     * @param bytes  Size of the area.
     */
    BufferArea(host::Memory &memory, std::size_t bytes)
        : memory(memory), base(memory.alloc(bytes, 64)), _size(bytes)
    {}

    std::size_t size() const { return _size; }

    /** Host-memory offset of the area (for DMA programming). */
    std::size_t baseOffset() const { return base; }

    /** True if @p ref lies entirely inside the area. */
    bool
    contains(BufferRef ref) const
    {
        return static_cast<std::size_t>(ref.offset) + ref.length <= _size;
    }

    /** Mutable view of a fragment (application composing a message). */
    std::span<std::uint8_t>
    span(BufferRef ref)
    {
        checkBounds(ref);
        return memory.region(base + ref.offset, ref.length);
    }

    /** Read-only view of a fragment. */
    std::span<const std::uint8_t>
    span(BufferRef ref) const
    {
        checkBounds(ref);
        return static_cast<const host::Memory &>(memory)
            .region(base + ref.offset, ref.length);
    }

    /** Copy @p data into the area at @p ref (app-side compose). */
    void
    write(BufferRef ref, std::span<const std::uint8_t> data)
    {
        if (data.size() > ref.length)
            UNET_PANIC("write larger than fragment");
        auto dst = span({ref.offset,
                         static_cast<std::uint32_t>(data.size())});
        std::copy(data.begin(), data.end(), dst.begin());
    }

  private:
    void
    checkBounds(BufferRef ref) const
    {
        if (!contains(ref))
            UNET_PANIC("buffer reference [", ref.offset, "+", ref.length,
                       "] outside ", _size, "-byte buffer area");
    }

    host::Memory &memory;
    std::size_t base;
    std::size_t _size;
};

} // namespace unet

#endif // UNET_UNET_BUFFER_AREA_HH
