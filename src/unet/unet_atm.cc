#include "unet/unet_atm.hh"

#include "check/access.hh"
#include "sim/logging.hh"

namespace unet {

UNetAtm::UNetAtm(host::Host &host, nic::Pca200 &nic, UNetAtmSpec spec)
    : UNet(host), _spec(spec), _nic(nic),
      _metrics(host.simulation().metrics(),
               host.simulation().metrics().uniquePrefix(
                   "host." + host.name() + ".unet.atm"))
{
    _metrics.counter("messagesPosted", _posted);
    _metrics.counter("protectionFaults", _protFaults);
}

Endpoint &
UNetAtm::createEndpoint(const sim::Process *owner,
                        const EndpointConfig &config)
{
    Endpoint &ep = _table.create(_host.simulation(), _host.memory(),
                                 config, owner);
    ep.labelGuards(_host.name() + ".ep" + std::to_string(ep.id()));
    // Command-queue registration: the driver tells the firmware about
    // the endpoint's queues and buffer area.
    _nic.attachEndpoint(&ep);
    return ep;
}

void
UNetAtm::onDestroyEndpoint(Endpoint &ep)
{
    _nic.detachEndpoint(ep);
}

bool
UNetAtm::send(sim::Process &proc, Endpoint &ep, const SendDescriptor &desc)
{
#if UNET_TRACE
    // Stamp untraced messages on the way in. The caller's descriptor is
    // const, so custody tracking rides on a copy.
    if (auto *tr = _host.simulation().trace(); tr && !desc.trace) {
        SendDescriptor traced = desc;
        tr->begin(traced.trace, _host.simulation().now());
        return sendImpl(proc, ep, traced);
    }
#endif
    return sendImpl(proc, ep, desc);
}

bool
UNetAtm::sendImpl(sim::Process &proc, Endpoint &ep,
                  const SendDescriptor &desc)
{
    check::assertCaller(proc, "UNetAtm::send");
    if (!checkOwner(proc, ep))
        return false;
    if (desc.totalLength() > maxMessage)
        UNET_PANIC("U-Net/ATM message of ", desc.totalLength(),
                   " bytes exceeds the AAL5 maximum");
    if (!ep.channelValid(desc.channel)) {
        UNET_WARN("U-Net/ATM: send on invalid channel ", desc.channel);
        return false;
    }

    // "the host stores the U-Net send descriptor into the i960-resident
    // transmit queue using a double-word store"
    _host.cpu().busy(proc, _spec.sendPost);
    ep.sendGuard().mutate("send");
    if (!ep.sendQueue().push(desc))
        return false;
    if (!desc.isInline)
        for (std::uint8_t i = 0; i < desc.fragmentCount; ++i)
            ep.ownership().postSend(desc.fragments[i]);
    ++_posted;
    _nic.doorbell(&ep);
    return true;
}

std::size_t
UNetAtm::sendv(sim::Process &proc, Endpoint &ep,
               const SendDescriptor *descs, std::size_t n)
{
    if (n > ep.sendQueue().capacity())
        UNET_PANIC("sendv of ", n, " descriptors exceeds the ",
                   ep.sendQueue().capacity(),
                   "-entry send queue window");
    if (n == 0)
        return 0;
    // Batch of one IS a scalar send: same code path, so it is trace-
    // and digest-identical by construction.
    if (n == 1)
        return send(proc, ep, descs[0]) ? 1 : 0;
#if UNET_TRACE
    if (auto *tr = _host.simulation().trace()) {
        std::vector<SendDescriptor> traced(descs, descs + n);
        for (auto &desc : traced)
            if (!desc.trace)
                tr->begin(desc.trace, _host.simulation().now());
        return sendvImpl(proc, ep, traced.data(), n);
    }
#endif
    return sendvImpl(proc, ep, descs, n);
}

std::size_t
UNetAtm::sendvImpl(sim::Process &proc, Endpoint &ep,
                   const SendDescriptor *descs, std::size_t n)
{
    check::assertCaller(proc, "UNetAtm::sendv");
    if (!checkOwner(proc, ep))
        return 0;
    for (std::size_t i = 0; i < n; ++i)
        if (descs[i].totalLength() > maxMessage)
            UNET_PANIC("U-Net/ATM message of ", descs[i].totalLength(),
                       " bytes exceeds the AAL5 maximum");
    // Like the scalar path, an invalid channel rejects before any cost
    // is charged; the burst stops at the first offender.
    std::size_t planned = 0;
    while (planned < n && ep.channelValid(descs[planned].channel))
        ++planned;
    if (planned < n)
        UNET_WARN("U-Net/ATM: sendv on invalid channel ",
                  descs[planned].channel);
    if (planned == 0)
        return 0;

    // One PIO burst into the i960-resident queue: full double-word
    // store cost for the head, write-combined follower stores after.
    _host.cpu().busy(proc,
                     _spec.sendPost +
                         static_cast<sim::Tick>(planned - 1) *
                             _spec.sendPostBatch);
    ep.sendGuard().mutate("sendv");
    std::size_t accepted = 0;
    while (accepted < planned &&
           ep.sendQueue().push(descs[accepted])) {
        const SendDescriptor &desc = descs[accepted];
        if (!desc.isInline)
            for (std::uint8_t i = 0; i < desc.fragmentCount; ++i)
                ep.ownership().postSend(desc.fragments[i]);
        ++_posted;
        ++accepted;
    }
    if (accepted)
        _nic.doorbellTrain(&ep, accepted);
    return accepted;
}

bool
UNetAtm::postFree(sim::Process &proc, Endpoint &ep, BufferRef buf)
{
    check::assertCaller(proc, "UNetAtm::postFree");
    if (!checkOwner(proc, ep))
        return false;
    if (!ep.buffers().contains(buf))
        UNET_PANIC("free buffer outside the endpoint buffer area");
    _host.cpu().busy(proc, _spec.freePost);
    ep.freeGuard().mutate("postFree");
    if (!ep.freeQueue().push(buf))
        return false;
    ep.ownership().postFree(buf);
    return true;
}

ChannelId
UNetAtm::addChannelTo(Endpoint &ep, atm::Vci vci)
{
    ChannelInfo info;
    info.vci = vci;
    ChannelId id = ep.addChannel(info);
    _nic.installVci(vci, &ep, id);
    return id;
}

void
UNetAtm::connect(UNetAtm &a, Endpoint &ep_a, std::size_t port_a,
                 UNetAtm &b, Endpoint &ep_b, std::size_t port_b,
                 atm::Signalling &signalling, ChannelId &chan_a,
                 ChannelId &chan_b)
{
    auto vc = signalling.connect(port_a, port_b);
    chan_a = a.addChannelTo(ep_a, vc.vciAtA);
    chan_b = b.addChannelTo(ep_b, vc.vciAtB);
}

void
UNetAtm::connectDirect(UNetAtm &a, Endpoint &ep_a, UNetAtm &b,
                       Endpoint &ep_b, atm::Vci vci, ChannelId &chan_a,
                       ChannelId &chan_b)
{
    chan_a = a.addChannelTo(ep_a, vci);
    chan_b = b.addChannelTo(ep_b, vci);
}

void
UNetAtm::connectFabric(UNetAtm &a, Endpoint &ep_a,
                       atm::Fabric::HostAttachment at_a, UNetAtm &b,
                       Endpoint &ep_b,
                       atm::Fabric::HostAttachment at_b,
                       atm::Fabric &fabric, ChannelId &chan_a,
                       ChannelId &chan_b)
{
    auto vc = fabric.connect(at_a, at_b);
    chan_a = a.addChannelTo(ep_a, vc.vciAtA);
    chan_b = b.addChannelTo(ep_b, vc.vciAtB);
}

} // namespace unet
