/**
 * @file
 * U-Net endpoints.
 *
 * An endpoint is "an application's handle into the network": a buffer
 * area plus send, receive, and free descriptor rings (Figure 1), and a
 * channel table filled in by the OS service. Endpoints are created
 * through the OS service and owned by exactly one process; protection
 * checks compare the calling process against the owner.
 *
 * The three receive models of the paper are supported: polling
 * (poll()), blocking (wait(), the "UNIX select" model), and upcalls
 * (setUpcall(), the signal-handler model, which consumes every pending
 * message per invocation to amortize the upcall cost).
 */

#ifndef UNET_UNET_ENDPOINT_HH
#define UNET_UNET_ENDPOINT_HH

#include <functional>
#include <vector>

#include "check/access.hh"
#include "check/ownership.hh"
#include "obs/metrics.hh"
#include "sim/process.hh"
#include "sim/simulation.hh"
#include "sim/stats.hh"
#include "unet/buffer_area.hh"
#include "unet/channel.hh"
#include "unet/queues.hh"
#include "unet/types.hh"

namespace unet {

/** One application's handle into the network. */
class Endpoint
{
  public:
    /**
     * Built by the OS service, not directly by applications.
     *
     * @param sim    Owning simulation.
     * @param memory Host memory the buffer area is pinned in.
     * @param config Queue depths and buffer-area size.
     * @param owner  Owning process (protection domain).
     * @param id     Endpoint index within its U-Net instance.
     */
    Endpoint(sim::Simulation &sim, host::Memory &memory,
             const EndpointConfig &config, const sim::Process *owner,
             std::size_t id);

    Endpoint(const Endpoint &) = delete;
    Endpoint &operator=(const Endpoint &) = delete;

    std::size_t id() const { return _id; }
    const sim::Process *owner() const { return _owner; }
    const EndpointConfig &config() const { return _config; }

    /** @name Figure-1 building blocks. @{ */
    Ring<SendDescriptor> &sendQueue() { return _sendQueue; }
    const Ring<SendDescriptor> &sendQueue() const { return _sendQueue; }
    Ring<RecvDescriptor> &recvQueue() { return _recvQueue; }
    Ring<BufferRef> &freeQueue() { return _freeQueue; }
    BufferArea &buffers() { return _buffers; }
    /** @} */

    /** Buffer-ownership state machine guarding the buffer area (a
     *  no-op object unless built with UNET_CHECK). */
    check::OwnershipTracker &ownership() { return _ownership; }

    /** @name Cross-fiber custody guards (no-ops unless UNET_CHECK).
     *
     * One guard per shared ring. Checked call sites (U-Net
     * implementations, NIC firmware models) open a
     * ContextGuard::Scope around their ring mutations; the guard
     * panics on access from a non-owning process fiber and on
     * mutation sequences interleaved across a yield.
     * @{ */
    check::ContextGuard &sendGuard() { return _sendGuard; }
    check::ContextGuard &recvGuard() { return _recvGuard; }
    check::ContextGuard &freeGuard() { return _freeGuard; }
    /** @} */

    /**
     * Name the ring guards for the shardability report, e.g.
     * "node0.ep0" -> "node0.ep0.sendq". Called by the owning U-Net
     * instance at creation; instance-distinct labels keep one
     * endpoint's rings from aggregating with another's.
     */
    void labelGuards(const std::string &prefix);

    /** Audit send/recv/free ring consistency now; panics on violation. */
    void auditRings() const;

    /** @name Channel table (maintained by the OS service). @{ */
    ChannelId addChannel(const ChannelInfo &info);
    const ChannelInfo &channel(ChannelId id) const;
    bool channelValid(ChannelId id) const;
    std::size_t channelCount() const { return channels.size(); }
    /** @} */

    /** @name Receive models. @{ */

    /** Non-blocking poll: pop the next receive descriptor if present. */
    bool poll(RecvDescriptor &out);

    /**
     * Batched poll: pop up to @p max receive descriptors in one call.
     * Per-descriptor effects (custody hop, ownership consume, audit
     * cadence) are identical to @p max scalar poll() calls; the saving
     * is one guard window and one call per batch.
     * @return the number of descriptors written to @p out.
     */
    std::size_t pollv(RecvDescriptor *out, std::size_t max);

    /**
     * Block until a message is available (select()-style), then pop it.
     * @return false if @p timeout expired first.
     */
    bool wait(sim::Process &proc, RecvDescriptor &out,
              sim::Tick timeout = sim::maxTick);

    /**
     * Register an upcall invoked when the receive queue becomes
     * non-empty. All pending messages are consumed in one activation.
     * @param latency models signal-delivery cost before the first
     *        message is handled.
     */
    void setUpcall(std::function<void(const RecvDescriptor &)> handler,
                   sim::Tick latency);

    /** Condition notified whenever the receive queue gains an entry. */
    sim::WaitChannel &rxAvailable() { return _rxAvailable; }

    /**
     * Servicer-side: push a receive descriptor and fire notifications.
     * @return false if the receive queue was full (message dropped).
     */
    bool deliver(const RecvDescriptor &desc);

    /** @} */

    /** Messages dropped because the receive queue was full. */
    std::uint64_t rxQueueDrops() const { return _rxQueueDrops.value(); }

  private:
    void scheduleUpcall();

    /** Count one queue operation; audit the rings every
     *  config.checkIntervalOps operations (UNET_CHECK builds). */
    void auditTick();

    // Layout: the members every poll/deliver touches (the sim handle,
    // the per-op scalars, then the recv ring) sit together at the
    // front; setup-time state (channel table, upcall plumbing) and the
    // guards trail. Rings embed their own hot-cursor-first layout (see
    // queues.hh).
    sim::Simulation &sim;           // hb-exempt(reference, set once)
    std::size_t opsSinceAudit = 0;  // hb-exempt(audit cadence, any context)
    sim::Tick upcallLatency = 0;    // hb-exempt(setup-time only)
    bool upcallPending = false;     // hb-guarded(_recvGuard)
    std::size_t _id;                // hb-exempt(const after ctor)
    const sim::Process *_owner;     // hb-exempt(const after ctor)
    EndpointConfig _config;         // hb-exempt(const after ctor)

    BufferArea _buffers;            // hb-guarded(_freeGuard)
    Ring<SendDescriptor> _sendQueue; // hb-guarded(_sendGuard)
    Ring<RecvDescriptor> _recvQueue; // hb-guarded(_recvGuard)
    Ring<BufferRef> _freeQueue;      // hb-guarded(_freeGuard)
    sim::WaitChannel _rxAvailable;   // hb-exempt(notify is a scheduler edge)
    check::OwnershipTracker _ownership; // hb-guarded(_freeGuard)
    check::ContextGuard _sendGuard{"endpoint send queue"};
    check::ContextGuard _recvGuard{"endpoint recv queue"};
    check::ContextGuard _freeGuard{"endpoint free queue"};

    std::vector<ChannelInfo> channels; // hb-exempt(setup-time only)
    // hb-exempt(setup-time only)
    std::function<void(const RecvDescriptor &)> upcall;

    sim::Counter _rxQueueDrops;     // hb-exempt(commutative metrics sink)

    /** Registered under "unet.ep<N>" (uniquified across instances);
     *  the prefix doubles as this endpoint's trace track. Declared
     *  last so it deregisters before the counters it references. */
    obs::MetricGroup _metrics;      // hb-exempt(registration RAII)
};

} // namespace unet

#endif // UNET_UNET_ENDPOINT_HH
