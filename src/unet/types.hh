/**
 * @file
 * U-Net architecture data types.
 *
 * These are the structures Figure 1 of the paper draws: message
 * descriptors that travel through the send, receive, and free queues of
 * an endpoint. They are shared by both implementations — the U-Net/FE
 * kernel agent and the U-Net/ATM i960 firmware manipulate the same
 * formats, differing only in where the queues live and who services
 * them.
 */

#ifndef UNET_UNET_TYPES_HH
#define UNET_UNET_TYPES_HH

#include <array>
#include <cstdint>

#include "obs/trace_ctx.hh"

namespace unet {

/** Index of a communication channel within an endpoint. */
using ChannelId = std::uint16_t;

/** An invalid channel id. */
constexpr ChannelId invalidChannel = 0xFFFF;

/** One-byte U-Net port ID (the FE demultiplexing tag). */
using PortId = std::uint8_t;

/**
 * Small-message threshold: a receive descriptor can hold the entire
 * message, avoiding buffer allocation ("As an optimization for small
 * messages ... a receive queue descriptor may hold an entire small
 * message"). U-Net/FE uses 64 bytes; U-Net/ATM single-cell messages are
 * at most 40 bytes of payload.
 */
constexpr std::size_t smallMessageMax = 64;

/** Largest U-Net/ATM single-cell message (48 - 8-byte AAL5 trailer). */
constexpr std::size_t singleCellMax = 40;

/** A fragment of an endpoint's buffer area. */
struct BufferRef
{
    std::uint32_t offset = 0;
    std::uint32_t length = 0;
};

/** Maximum scatter/gather fragments per message. */
constexpr std::size_t maxFragments = 4;

/**
 * Send-queue entry: the destination channel plus either buffer-area
 * fragments (zero-copy transmit — the DC21140 and the i960 DMA straight
 * from user space) or a small inline payload.
 */
struct SendDescriptor
{
    ChannelId channel = invalidChannel;

    /** True if the payload is carried inline in this descriptor. */
    bool isInline = false;

    /** Inline payload (valid when isInline). */
    std::array<std::uint8_t, smallMessageMax> inlineData{};
    std::uint32_t inlineLength = 0;

    /** Scatter list (valid when !isInline). */
    std::uint8_t fragmentCount = 0;
    std::array<BufferRef, maxFragments> fragments{};

    /** Message-trace custody state (empty unless tracing). */
    obs::TraceContext trace;

    /** Total message length in bytes. */
    std::uint32_t
    totalLength() const
    {
        if (isInline)
            return inlineLength;
        std::uint32_t n = 0;
        for (std::uint8_t i = 0; i < fragmentCount; ++i)
            n += fragments[i].length;
        return n;
    }
};

/**
 * Receive-queue entry: the source channel plus either the message
 * itself (small-message optimization) or pointers to the free-queue
 * buffers the data landed in.
 */
struct RecvDescriptor
{
    ChannelId channel = invalidChannel;
    std::uint32_t length = 0;

    /** True if the message is inline in the descriptor. */
    bool isSmall = false;

    std::array<std::uint8_t, smallMessageMax> inlineData{};

    std::uint8_t bufferCount = 0;
    std::array<BufferRef, maxFragments> buffers{};

    /** Message-trace custody state (empty unless tracing). */
    obs::TraceContext trace;
};

/** Default queue depths for an endpoint. */
struct EndpointConfig
{
    std::size_t sendQueueDepth = 64;
    std::size_t recvQueueDepth = 64;
    std::size_t freeQueueDepth = 64;
    std::size_t bufferAreaBytes = 256 * 1024;
    std::size_t maxChannels = 64;

    /** Audit the endpoint's rings every this many queue operations
     *  (UNET_CHECK builds only; 0 disables the periodic audit). */
    std::size_t checkIntervalOps = 64;
};

} // namespace unet

#endif // UNET_UNET_TYPES_HH
