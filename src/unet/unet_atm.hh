/**
 * @file
 * U-Net over ATM: the host-side driver for the PCA-200 firmware.
 *
 * With the U-Net architecture implemented *on* the adapter, the host's
 * role shrinks to posting descriptors: "to send a message, the host
 * stores the U-Net send descriptor into the i960-resident transmit
 * queue using a double-word store" — about 1.5 us of processor
 * overhead, versus 4.2 us for the U-Net/FE trap. Receives need no host
 * work at all until the application polls its (host-memory-resident)
 * receive queue. The price is the slow i960 in the latency path
 * (~10 us send, ~13 us receive).
 */

#ifndef UNET_UNET_UNET_ATM_HH
#define UNET_UNET_UNET_ATM_HH

#include <string>

#include "atm/fabric.hh"
#include "atm/switch.hh"
#include "nic/pca200.hh"
#include "unet/unet.hh"

namespace unet {

/** Host-side costs of the U-Net/ATM driver. */
struct UNetAtmSpec
{
    /** Total host processor overhead of posting a send ("about
     *  1.5 usec" on the SPARC, dominated by PIO across the bus). */
    sim::Tick sendPost = sim::microsecondsF(1.5);

    /** Host cost of each descriptor after the first in a sendv burst:
     *  the stores write-combine into one bus transaction train, so the
     *  per-descriptor PIO round-trip is paid once per burst. */
    sim::Tick sendPostBatch = sim::nanoseconds(600);

    /** Host cost of pushing a free buffer into NIC memory. */
    sim::Tick freePost = sim::nanoseconds(500);

    /** Signal-delivery latency for the upcall receive model. */
    sim::Tick upcallLatency = sim::microseconds(40);
};

/** The U-Net/ATM instance on one host. */
class UNetAtm : public UNet
{
  public:
    /** Largest single message: the AAL5 MTU ("the maximum packet size
     *  is 65 KBytes"). */
    static constexpr std::size_t maxMessage = atm::aal5::maxPdu;

    UNetAtm(host::Host &host, nic::Pca200 &nic, UNetAtmSpec spec = {});

    std::string name() const override { return "U-Net/ATM"; }
    std::size_t inlineMax() const override { return singleCellMax; }
    std::size_t maxMessageBytes() const override { return maxMessage; }

    Endpoint &createEndpoint(const sim::Process *owner,
                             const EndpointConfig &config) override;

    bool send(sim::Process &proc, Endpoint &ep,
              const SendDescriptor &desc) override;

    /**
     * Batched submission: the descriptors are stored into the
     * NIC-resident send queue as one PIO burst (first store at full
     * sendPost cost, followers at sendPostBatch) and the firmware is
     * handed ONE contiguous descriptor train — a single i960 poll
     * drains the whole batch, with followers read at the cheap
     * Pca200Spec::txPerMessageTrain rate.
     */
    std::size_t sendv(sim::Process &proc, Endpoint &ep,
                      const SendDescriptor *descs,
                      std::size_t n) override;

    bool postFree(sim::Process &proc, Endpoint &ep,
                  BufferRef buf) override;

    /** The firmware gathers payload bytes synchronously when it pops a
     *  descriptor, so the backlog is exactly the send queue. */
    std::size_t
    txBacklog(const Endpoint &ep) const override
    {
        return ep.sendQueue().size();
    }

    /** The i960 drains the send queue autonomously; a flush is just a
     *  doorbell in case the poll got descheduled. */
    void
    flush(sim::Process &proc, Endpoint &ep) override
    {
        if (checkOwner(proc, ep) && !ep.sendQueue().empty())
            _nic.doorbell(&ep);
    }

    /** Register a channel sending and receiving on local VCI @p vci. */
    ChannelId addChannelTo(Endpoint &ep, atm::Vci vci);

    /**
     * OS-service channel setup across an ATM switch: performs the
     * signalling (VCI allocation + route installation) and registers
     * the demux entries with both adapters.
     *
     * @param port_a/port_b are the switch ports the two hosts' links
     *        occupy.
     */
    static void connect(UNetAtm &a, Endpoint &ep_a, std::size_t port_a,
                        UNetAtm &b, Endpoint &ep_b, std::size_t port_b,
                        atm::Signalling &signalling, ChannelId &chan_a,
                        ChannelId &chan_b);

    /**
     * Channel setup over a direct (switchless) link: both sides share
     * one VCI.
     */
    static void connectDirect(UNetAtm &a, Endpoint &ep_a, UNetAtm &b,
                              Endpoint &ep_b, atm::Vci vci,
                              ChannelId &chan_a, ChannelId &chan_b);

    /**
     * Channel setup across a multi-switch fabric: the VC is routed
     * network-wide ("virtual circuits are established network-wide"),
     * so endpoints on different switches can talk — the scalability
     * edge the paper credits ATM with over U-Net/FE's flat MAC tags.
     */
    static void connectFabric(UNetAtm &a, Endpoint &ep_a,
                              atm::Fabric::HostAttachment at_a,
                              UNetAtm &b, Endpoint &ep_b,
                              atm::Fabric::HostAttachment at_b,
                              atm::Fabric &fabric, ChannelId &chan_a,
                              ChannelId &chan_b);

    const UNetAtmSpec &spec() const { return _spec; }
    nic::Pca200 &nic() { return _nic; }

    /** @name Statistics. @{ */
    std::uint64_t messagesPosted() const { return _posted.value(); }
    /** @} */

  private:
    /** Detach the endpoint from the firmware before the id retires. */
    void onDestroyEndpoint(Endpoint &ep) override;

    /** send() once the descriptor carries its trace context. */
    bool sendImpl(sim::Process &proc, Endpoint &ep,
                  const SendDescriptor &desc);

    /** sendv() once every descriptor carries its trace context. */
    std::size_t sendvImpl(sim::Process &proc, Endpoint &ep,
                          const SendDescriptor *descs, std::size_t n);

    UNetAtmSpec _spec;
    nic::Pca200 &_nic;
    sim::Counter _posted;

    obs::MetricGroup _metrics;
};

} // namespace unet

#endif // UNET_UNET_UNET_ATM_HH
