#include "unet/unet_fe.hh"

#include <algorithm>
#include <array>

#include "check/access.hh"
#include "check/hb/auditor.hh"
#include "sim/logging.hh"

namespace unet {

namespace {

std::uint64_t
tagKey(const eth::MacAddress &mac, PortId port)
{
    return (mac.toU64() << 8) | port;
}

} // namespace

UNetFe::UNetFe(host::Host &host, nic::Dc21140 &nic, UNetFeSpec spec)
    : UNet(host), _spec(spec), _nic(nic),
      _residency(host.simulation(), spec.vep,
                 "host." + host.name() + ".unet.vep"),
      _trackCpu(host.name() + ".cpu"),
      _metrics(host.simulation().metrics(),
               host.simulation().metrics().uniquePrefix(
                   "host." + host.name() + ".unet.fe"))
{
    _metrics.counter("messagesSent", _sent);
    _metrics.counter("messagesDelivered", _delivered);
    _metrics.counter("rxNoFreeBuffer", _noFreeBuf);
    _metrics.counter("rxUnknownPort", _unknownPort);
    _metrics.counter("rxNoChannel", _noChannel);
    _metrics.counter("rxBadFrame", _badFrame);
    _metrics.counter("protectionFaults", _protFaults);

    // Kernel header buffers: one per TX ring slot, large enough for the
    // Ethernet + U-Net headers plus an inline small message.
    const std::size_t header_buf_bytes =
        eth::Frame::headerBytes + unetHeaderBytes +
        _spec.extraHeaderBytes() + smallMessageMax;
    headerBufOffset.resize(nic.txRingSize());
    for (auto &off : headerBufOffset)
        off = host.memory().alloc(header_buf_bytes, 8);
    txSlotFrag.resize(nic.txRingSize());

    // Kernel receive buffers: pre-post the whole device RX ring
    // ("these are fixed buffers allocated by the device driver and are
    // used in FIFO order").
    for (std::size_t i = 0; i < nic.rxRingSize(); ++i) {
        auto &desc = nic.rxDesc(i);
        desc.bufOffset = static_cast<std::uint32_t>(
            host.memory().alloc(nic.spec().rxBufferBytes, 8));
        desc.bufLength =
            static_cast<std::uint32_t>(nic.spec().rxBufferBytes);
        desc.own = true;
    }

    nic.interrupt().connect([this] { rxInterrupt(); });
    // Eager reap: release a slot's fragment (and its endpoint pin) the
    // moment the device writes the completion back, instead of at the
    // next trap. Keeps pin windows tight so eviction is never blocked
    // by a frame that already left the wire.
    nic.onTxComplete([this](std::size_t slot) { reapTxSlot(slot); });
}

Endpoint &
UNetFe::createEndpoint(const sim::Process *owner,
                       const EndpointConfig &config)
{
    PortId port;
    if (!_freePorts.empty()) {
        port = _freePorts.back();
        _freePorts.pop_back();
    } else if (portsAssigned >= portTable.size()) {
        UNET_FATAL("U-Net/FE port space (one byte) exhausted");
    } else {
        port = nextPort++;
    }
    Endpoint *ep = &_table.create(_host.simulation(), _host.memory(),
                                  config, owner);
    ep->labelGuards(_host.name() + ".ep" + std::to_string(ep->id()));

    EpState &state = epState[ep->id()];
    state.ep = ep;
    state.port = port;
    ++portsAssigned;
    portTable[state.port] = &state;
    if (epIndex.size() <= ep->id())
        epIndex.resize(ep->id() + 1, nullptr);
    epIndex[ep->id()] = &state;
    // Creation pre-loads the state it just built (boot-time work, not
    // a fault): rigs that fit the hot set never page at all.
    _residency.warm(ep->id());
    return *ep;
}

void
UNetFe::onDestroyEndpoint(Endpoint &ep)
{
    auto it = epState.find(ep.id());
    if (it == epState.end())
        UNET_PANIC("endpoint not created by this U-Net/FE instance");
    for (const auto &record : txSlotFrag)
        if (record && record->first == &ep)
            UNET_FATAL("destroying endpoint ", ep.id(),
                       " with frames still in the device TX ring");
    // Panics if the endpoint still holds a pin (in-flight custody).
    _residency.remove(ep.id());
    EpState &state = it->second;
    portTable[state.port] = nullptr;
    _freePorts.push_back(state.port);
    --portsAssigned;
    epIndex[ep.id()] = nullptr;
    epState.erase(it);
}

PortId
UNetFe::portOf(const Endpoint &ep) const
{
    auto it = epState.find(ep.id());
    if (it == epState.end())
        UNET_PANIC("endpoint not created by this U-Net/FE instance");
    return it->second.port;
}

ChannelId
UNetFe::addChannelTo(Endpoint &ep, eth::MacAddress remote_mac,
                     PortId remote_port)
{
    auto it = epState.find(ep.id());
    if (it == epState.end())
        UNET_PANIC("endpoint not created by this U-Net/FE instance");

    ChannelInfo info;
    info.remoteMac = remote_mac;
    info.remotePort = remote_port;
    ChannelId id = ep.addChannel(info);
    auto &demux = it->second.demux;
    const std::uint64_t key = tagKey(remote_mac, remote_port);
    auto pos = std::lower_bound(
        demux.begin(), demux.end(), key,
        [](const auto &entry, std::uint64_t k) {
            return entry.first < k;
        });
    if (pos != demux.end() && pos->first == key)
        pos->second = id;
    else
        demux.insert(pos, {key, id});
    return id;
}

void
UNetFe::connect(UNetFe &a, Endpoint &ep_a, UNetFe &b, Endpoint &ep_b,
                ChannelId &chan_a, ChannelId &chan_b)
{
    chan_a = a.addChannelTo(ep_a, b._nic.address(), b.portOf(ep_b));
    chan_b = b.addChannelTo(ep_b, a._nic.address(), a.portOf(ep_a));
}

bool
UNetFe::send(sim::Process &proc, Endpoint &ep, const SendDescriptor &desc)
{
#if UNET_TRACE
    // Stamp untraced messages on the way in. The caller's descriptor is
    // const, so custody tracking rides on a copy.
    if (auto *tr = _host.simulation().trace(); tr && !desc.trace) {
        SendDescriptor traced = desc;
        tr->begin(traced.trace, _host.simulation().now());
        return sendImpl(proc, ep, traced);
    }
#endif
    return sendImpl(proc, ep, desc);
}

std::size_t
UNetFe::sendv(sim::Process &proc, Endpoint &ep,
              const SendDescriptor *descs, std::size_t n)
{
    if (n > ep.sendQueue().capacity())
        UNET_PANIC("sendv of ", n, " descriptors exceeds the ",
                   ep.sendQueue().capacity(),
                   "-entry send queue window");
    if (n == 0)
        return 0;
    // Batch of one IS a scalar send: same code path, so it is trace-
    // and digest-identical by construction.
    if (n == 1)
        return send(proc, ep, descs[0]) ? 1 : 0;
#if UNET_TRACE
    if (auto *tr = _host.simulation().trace()) {
        std::vector<SendDescriptor> traced(descs, descs + n);
        for (auto &desc : traced)
            if (!desc.trace)
                tr->begin(desc.trace, _host.simulation().now());
        return sendvImpl(proc, ep, traced.data(), n);
    }
#endif
    return sendvImpl(proc, ep, descs, n);
}

std::size_t
UNetFe::sendvImpl(sim::Process &proc, Endpoint &ep,
                  const SendDescriptor *descs, std::size_t n)
{
    check::assertCaller(proc, "UNetFe::sendv");
    if (!checkOwner(proc, ep))
        return 0;
    ep.sendGuard().mutate("sendv");
    for (std::size_t i = 0; i < n; ++i) {
        if (descs[i].totalLength() >
            maxMessage - _spec.extraHeaderBytes())
            UNET_PANIC("U-Net/FE message of ", descs[i].totalLength(),
                       " bytes exceeds the ",
                       maxMessage - _spec.extraHeaderBytes(),
                       "-byte maximum");
        if (!descs[i].isInline && descs[i].fragmentCount > 1)
            UNET_PANIC("U-Net/FE model supports one buffer fragment "
                       "per send (plus the kernel header)");
    }

    auto &cpu = _host.cpu();
    // The user still pushes each descriptor individually; only the
    // kernel-crossing costs are batched.
    cpu.busy(proc,
             static_cast<sim::Tick>(n) * _spec.userDescriptorPush);
    reapTx();
    std::size_t accepted = 0;
    while (accepted < n && ep.sendQueue().push(descs[accepted])) {
        const SendDescriptor &desc = descs[accepted];
        if (!desc.isInline)
            for (std::uint8_t i = 0; i < desc.fragmentCount; ++i)
                ep.ownership().postSend(desc.fragments[i]);
        ++accepted;
    }
    if (accepted == 0)
        return 0;

    // ONE fast trap for the whole batch; the service routine coalesces
    // the per-message poll demands into a single device kick.
    sim::Tick trap_acc = 0;
    step(descs[0].trace, _host.simulation().now(), "trap entry",
         cpu.spec().trapEntryCost, trap_acc);
    _host.trapEnter(proc);
    serviceSendQueue(proc, ep, /*coalesce=*/true);
    trap_acc = 0;
    step(descs[0].trace, _host.simulation().now(), "return from trap",
         cpu.spec().trapExitCost, trap_acc);
    _host.trapExit(proc);
    return accepted;
}

bool
UNetFe::sendImpl(sim::Process &proc, Endpoint &ep,
                 const SendDescriptor &desc)
{
    check::assertCaller(proc, "UNetFe::send");
    if (!checkOwner(proc, ep))
        return false;
    ep.sendGuard().mutate("send");
    if (desc.totalLength() > maxMessage - _spec.extraHeaderBytes())
        UNET_PANIC("U-Net/FE message of ", desc.totalLength(),
                   " bytes exceeds the ",
                   maxMessage - _spec.extraHeaderBytes(),
                   "-byte maximum");
    if (!desc.isInline && desc.fragmentCount > 1)
        UNET_PANIC("U-Net/FE model supports one buffer fragment per "
                   "send (plus the kernel header)");

    auto &cpu = _host.cpu();
    cpu.busy(proc, _spec.userDescriptorPush);
    // Release fragments whose ring slots have since completed, so a
    // legitimate re-post of the same buffer is not flagged below.
    reapTx();
    if (!ep.sendQueue().push(desc))
        return false;
    if (!desc.isInline)
        for (std::uint8_t i = 0; i < desc.fragmentCount; ++i)
            ep.ownership().postSend(desc.fragments[i]);

    // Fast trap into the kernel; the service routine runs in the
    // caller's context (this is host processor overhead, the U-Net/FE
    // trade-off).
    sim::Tick trap_acc = 0;
    step(desc.trace, _host.simulation().now(), "trap entry",
         cpu.spec().trapEntryCost, trap_acc);
    _host.trapEnter(proc);
    serviceSendQueue(proc, ep);
    trap_acc = 0;
    step(desc.trace, _host.simulation().now(), "return from trap",
         cpu.spec().trapExitCost, trap_acc);
    _host.trapExit(proc);
    return true;
}

void
UNetFe::serviceSendQueue(sim::Process &proc, Endpoint &ep, bool coalesce)
{
    // Shard attribution: the trap handler belongs to this host's
    // shard no matter whose context charged it here.
    check::hb::ScopedTaskDomain shard(_host.name());
    // The kernel drains the send queue in the caller's context; the
    // scope spans the drain (including its cpu.busy yields), so any
    // other context mutating the send queue mid-drain is flagged.
    check::ContextGuard::Scope scope(ep.sendGuard(),
                                     "kernel tx service");
    auto &cpu = _host.cpu();
    auto &mem = _host.memory();
    if (ep.id() >= epIndex.size() || !epIndex[ep.id()])
        UNET_PANIC("endpoint not created by this U-Net/FE instance");
    EpState &state = *epIndex[ep.id()];

    // Coalesced (sendv) drains accumulate every message's kernel cost
    // against one base tick and pay it — plus ONE poll demand — after
    // the last ring descriptor is published.
    const sim::Tick batch_base = _host.simulation().now();
    sim::Tick batch_acc = 0;
    std::size_t filled = 0;

    while (!ep.sendQueue().empty()) {
        // Stop (leaving descriptors queued) when the device ring is
        // full; a later trap retries them. This is the backpressure an
        // application sees as a slowly draining send queue.
        std::size_t slot = _nic.txTail();
        auto &ring_desc = _nic.txDesc(slot);
        if (ring_desc.own)
            break;

        SendDescriptor desc = *ep.sendQueue().pop();
        if (!desc.isInline && desc.fragmentCount == 1)
            ep.ownership().claimSend(desc.fragments[0]);
        const sim::Tick base =
            coalesce ? batch_base : _host.simulation().now();
        sim::Tick local = 0;
        sim::Tick &cost = coalesce ? batch_acc : local;

        // The kernel's per-endpoint state (port, demux table, queue
        // registration) must be resident before it can service the
        // endpoint; a miss pages it in from host memory. Re-checked
        // per message: the non-coalesced path yields in cpu.busy()
        // between messages, and a concurrent interrupt touching other
        // endpoints may have evicted this one meanwhile. Resident hits
        // cost zero and record no span — the fixed-endpoint fast path
        // is byte-identical.
        if (sim::Tick fault = _residency.touch(ep.id()))
            step(desc.trace, base, "page in endpoint state", fault,
                 cost);

        step(desc.trace, base, "check U-Net send parameters",
             _spec.txCheckParams, cost);
        if (!ep.channelValid(desc.channel)) {
            UNET_WARN("U-Net/FE: send on invalid channel ",
                      desc.channel, "; dropped");
            if (!desc.isInline && desc.fragmentCount == 1)
                ep.ownership().releaseSend(desc.fragments[0]);
            if (!coalesce)
                cpu.busy(proc, cost);
            continue;
        }
        const ChannelInfo &chan = ep.channel(desc.channel);

        step(desc.trace, base, "Ethernet header set-up",
             _spec.txEthHeaderSetup, cost);
        std::uint32_t msg_len = desc.totalLength();
        std::vector<std::uint8_t> header;
        header.reserve(eth::Frame::headerBytes + unetHeaderBytes +
                       _spec.extraHeaderBytes() + smallMessageMax);
        const auto &dst = chan.remoteMac.raw();
        const auto &src = _nic.address().raw();
        header.insert(header.end(), dst.begin(), dst.end());
        header.insert(header.end(), src.begin(), src.end());
        header.push_back(static_cast<std::uint8_t>(_spec.etherType >> 8));
        header.push_back(static_cast<std::uint8_t>(_spec.etherType));
        if (_spec.ipv4Encapsulation) {
            // IPv4 header (contents unmodeled; sizing and cost are).
            header.insert(header.end(), UNetFeSpec::ipv4HeaderBytes, 0);
            cost += _spec.ipv4Cost;
        }
        header.push_back(chan.remotePort);          // dst U-Net port
        header.push_back(state.port);               // src U-Net port
        header.push_back(static_cast<std::uint8_t>(msg_len >> 8));
        header.push_back(static_cast<std::uint8_t>(msg_len));
        header.push_back(0);
        header.push_back(0);

        if (desc.isInline) {
            // Small message: the kernel copies the payload into the
            // header buffer (it arrived inline in the descriptor).
            header.insert(header.end(), desc.inlineData.begin(),
                          desc.inlineData.begin() + desc.inlineLength);
            cost += cpu.spec().memcpyTime(desc.inlineLength);
        }
        mem.write(headerBufOffset[slot], header);

        step(desc.trace, base, "device send ring descriptor set-up",
             _spec.txRingDescSetup, cost);
        {
            // One descriptor fill is a single custody window: no yield
            // may occur between claiming the tail slot and publishing
            // it with own=true, or another trapping process could
            // interleave into the same slot. The scope closes before
            // the cpu.busy() below — once the tail is bumped, a second
            // process filling the next slot is legal.
            check::ContextGuard::Scope fill(_nic.txFillGuard(),
                                            "tx descriptor fill");
            // cpu.busy() above may have advanced simulated time, so
            // the slot could have completed a previous frame since the
            // reap at trap entry; release its fragment before reusing
            // the slot.
            reapTxSlot(slot);
            ring_desc.buf1Offset =
                static_cast<std::uint32_t>(headerBufOffset[slot]);
            ring_desc.buf1Length =
                static_cast<std::uint32_t>(header.size());
            if (!desc.isInline && desc.fragmentCount == 1) {
                BufferRef frag = desc.fragments[0];
                ring_desc.buf2Offset = static_cast<std::uint32_t>(
                    ep.buffers().baseOffset() + frag.offset);
                ring_desc.buf2Length = frag.length;
                txSlotFrag[slot] = {&ep, frag};
                // The device ring now references the endpoint's buffer
                // area: in-flight custody pins it against eviction
                // until the completion writeback reaps the slot.
                _residency.pin(ep.id());
            } else {
                ring_desc.buf2Length = 0;
                txSlotFrag[slot].reset();
            }
            ring_desc.transmitted = false;
            ring_desc.aborted = false;
            ring_desc.trace = desc.trace;
            ring_desc.own = true;
            _nic.bumpTxTail();
        }

        if (!coalesce)
            step(desc.trace, base, "issue poll demand",
                 _spec.txPollDemand, cost);
        step(desc.trace, base,
             "free send ring descriptor of previous message",
             _spec.txFreePrevRing, cost);
        step(desc.trace, base,
             "free U-Net send queue entry of previous message",
             _spec.txFreePrevQueue, cost);

        ++filled;
        ++_sent;
        if (coalesce)
            continue;
        // Charge the accumulated kernel time, then kick the device at
        // the point the poll demand lands.
        cpu.busy(proc, cost);
        _nic.pollDemand();
    }

    if (coalesce) {
        // One poll demand covers every descriptor published above (the
        // DC21140 walks the ring until it finds a slot it does not
        // own), so the 920 ns register write is paid once per batch.
        if (filled)
            step({}, batch_base, "issue poll demand (batched)",
                 _spec.txPollDemand, batch_acc);
        if (batch_acc)
            cpu.busy(proc, batch_acc);
        if (filled)
            _nic.pollDemand();
    }
}

void
UNetFe::reapTxSlot(std::size_t slot)
{
    // Completion reaping is host-shard work, whether reached from the
    // device's writeback event or a trap-time reapTx() sweep.
    check::hb::ScopedTaskDomain shard(_host.name());
    auto &record = txSlotFrag[slot];
    if (!record || _nic.txDesc(slot).own)
        return;
    record->first->ownership().releaseSend(record->second);
    _residency.unpin(record->first->id());
    record.reset();
}

void
UNetFe::reapTx()
{
    for (std::size_t i = 0; i < txSlotFrag.size(); ++i)
        reapTxSlot(i);
}

std::size_t
UNetFe::txBacklog(const Endpoint &ep) const
{
    std::size_t backlog = ep.sendQueue().size();
    // Ring descriptors still owned by the NIC may not have gathered
    // their buffers yet; counting them all is conservative but safe.
    for (std::size_t i = 0; i < _nic.txRingSize(); ++i)
        if (_nic.txDesc(i).own)
            ++backlog;
    return backlog;
}

void
UNetFe::flush(sim::Process &proc, Endpoint &ep)
{
    check::assertCaller(proc, "UNetFe::flush");
    if (!checkOwner(proc, ep))
        return;
    reapTx();
    if (ep.sendQueue().empty())
        return;
    _host.trapEnter(proc);
    serviceSendQueue(proc, ep);
    _host.trapExit(proc);
}

bool
UNetFe::postFree(sim::Process &proc, Endpoint &ep, BufferRef buf)
{
    check::assertCaller(proc, "UNetFe::postFree");
    if (!checkOwner(proc, ep))
        return false;
    if (!ep.buffers().contains(buf))
        UNET_PANIC("free buffer outside the endpoint buffer area");
    _host.cpu().busy(proc, _spec.userFreePost);
    ep.freeGuard().mutate("postFree");
    if (!ep.freeQueue().push(buf))
        return false;
    ep.ownership().postFree(buf);
    return true;
}

void
UNetFe::rxInterrupt()
{
    // The interrupt handler fires from a device-completion event whose
    // scheduling chain started on the *sender's* shard; everything it
    // touches from here down belongs to this host.
    check::hb::ScopedTaskDomain shard(_host.name());
    auto &cpu = _host.cpu();
    auto &mem = _host.memory();

    const sim::Tick base = _host.simulation().now();
    sim::Tick cost = 0;
    std::vector<std::function<void()>> effects;
    step({}, base, "interrupt handler entry", _spec.rxHandlerEntry,
         cost);

    while (true) {
        auto &ring_desc = _nic.rxDesc(kernelRxHead);
        if (!ring_desc.complete)
            break;
        // Capture the custody state before the slot is re-armed.
        obs::TraceContext ctx = ring_desc.trace;
        step(ctx, base, "poll device recv ring", _spec.rxPollRing, cost);

        auto raw = mem.read(ring_desc.bufOffset, ring_desc.frameLength);
        auto frame = eth::Frame::parse(raw);

        // Re-arm the ring slot right away (FIFO reuse).
        ring_desc.complete = false;
        ring_desc.own = true;
        kernelRxHead = (kernelRxHead + 1) % _nic.rxRingSize();

        std::size_t skip = _spec.extraHeaderBytes();
        if (_spec.ipv4Encapsulation)
            cost += _spec.ipv4Cost;
        if (!frame ||
            frame->payload.size() < unetHeaderBytes + skip) {
            ++_badFrame;
            continue;
        }

        PortId dst_port = frame->payload[skip + 0];
        PortId src_port = frame->payload[skip + 1];
        std::uint32_t msg_len =
            (static_cast<std::uint32_t>(frame->payload[skip + 2])
             << 8) |
            frame->payload[skip + 3];
        if (msg_len + unetHeaderBytes + skip > frame->payload.size()) {
            ++_badFrame;
            continue;
        }

        step(ctx, base, "demux to correct endpoint", _spec.rxDemux,
             cost);
        EpState *statep = portTable[dst_port];
        if (!statep) {
            ++_unknownPort;
            continue;
        }
        EpState &state = *statep;
        // The channel-tag table the demux searches next is part of the
        // endpoint's paged kernel state; a cold endpoint pays the
        // page-in before the handler can translate the tag. (Delivery
        // itself writes host-resident rings and buffers, so no pin is
        // needed beyond the handler.)
        if (sim::Tick fault = _residency.touch(state.ep->id()))
            step(ctx, base, "page in endpoint state", fault, cost);
        const std::uint64_t tag = tagKey(frame->src, src_port);
        auto cit = std::lower_bound(
            state.demux.begin(), state.demux.end(), tag,
            [](const auto &entry, std::uint64_t k) {
                return entry.first < k;
            });
        if (cit == state.demux.end() || cit->first != tag) {
            ++_noChannel;
            continue;
        }
        ChannelId chan = cit->second;
        Endpoint *ep = state.ep;

        std::vector<std::uint8_t> payload(
            frame->payload.begin() +
                static_cast<std::ptrdiff_t>(unetHeaderBytes + skip),
            frame->payload.begin() +
                static_cast<std::ptrdiff_t>(unetHeaderBytes + skip +
                                            msg_len));

        if (msg_len <= smallMessageMax &&
            _spec.smallMessageOptimization) {
            // "small messages (under 64 bytes) are copied directly into
            // the U-Net receive descriptor itself"
            step(ctx, base, "alloc+init U-Net recv descriptor",
                 _spec.rxInitDescr, cost);
            if (_spec.chargeRxCopy)
                step(ctx, base, "copy message",
                     cpu.spec().memcpyTime(msg_len), cost);
            RecvDescriptor rd;
            rd.channel = chan;
            rd.length = msg_len;
            rd.isSmall = true;
            std::copy(payload.begin(), payload.end(),
                      rd.inlineData.begin());
            effects.push_back([this, ep, rd, ctx]() mutable {
#if UNET_TRACE
                if (auto *tr = _host.simulation().trace())
                    tr->hop(ctx, obs::SpanKind::RxKernel, _trackCpu,
                            _host.simulation().now());
#endif
                rd.trace = ctx;
                if (ep->deliver(rd))
                    ++_delivered;
            });
        } else {
            step(ctx, base, "allocate U-Net recv buffer",
                 _spec.rxAllocBuffer, cost);
            // Return a claimed buffer to the free queue at its original
            // size; a buffer lost to a momentarily full queue leaves
            // the protection domain for good.
            auto recycle = [ep](BufferRef buf) {
                check::ContextGuard::Scope scope(
                    ep->freeGuard(), "kernel rx buffer recycle");
                if (ep->freeQueue().push(buf))
                    ep->ownership().unclaimRecv(buf);
                else
                    ep->ownership().releaseRecv(buf);
            };
            // Fill one or more free buffers. Keep the original
            // free-queue entries: the descriptor references may be
            // truncated to the message length, but drop paths must
            // recycle whole buffers.
            RecvDescriptor rd;
            rd.channel = chan;
            rd.length = msg_len;
            rd.isSmall = false;
            std::array<BufferRef, maxFragments> claimed{};
            std::uint32_t copied = 0;
            bool ok = true;
            while (copied < msg_len) {
                if (rd.bufferCount == maxFragments) {
                    ok = false;
                    break;
                }
                std::optional<BufferRef> buf;
                {
                    check::ContextGuard::Scope scope(
                        ep->freeGuard(), "kernel rx buffer claim");
                    buf = ep->freeQueue().pop();
                }
                if (!buf) {
                    ok = false;
                    break;
                }
                ep->ownership().claimRecv(*buf);
                claimed[rd.bufferCount] = *buf;
                std::uint32_t chunk =
                    std::min(buf->length, msg_len - copied);
                rd.buffers[rd.bufferCount++] = {buf->offset, chunk};
                copied += chunk;
            }
            if (!ok) {
                ++_noFreeBuf;
                // Return claimed buffers and drop the message.
                for (std::uint8_t i = 0; i < rd.bufferCount; ++i)
                    recycle(claimed[i]);
                continue;
            }
            step(ctx, base, "init descriptor buffer pointers",
                 _spec.rxInitDescrPtrs, cost);
            if (_spec.chargeRxCopy)
                step(ctx, base, "copy message",
                     cpu.spec().memcpyTime(msg_len), cost);
            effects.push_back([this, ep, rd, payload, claimed, recycle,
                               ctx]() mutable {
                std::uint32_t off = 0;
                for (std::uint8_t i = 0; i < rd.bufferCount; ++i) {
                    ep->ownership().rxWrite(rd.buffers[i]);
                    ep->buffers().write(
                        rd.buffers[i],
                        std::span(payload.data() + off,
                                  rd.buffers[i].length));
                    off += rd.buffers[i].length;
                }
#if UNET_TRACE
                if (auto *tr = _host.simulation().trace())
                    tr->hop(ctx, obs::SpanKind::RxKernel, _trackCpu,
                            _host.simulation().now());
#endif
                rd.trace = ctx;
                if (ep->deliver(rd)) {
                    ++_delivered;
                } else {
                    // Receive queue full: the message is lost, but the
                    // buffers must not leak with it.
                    for (std::uint8_t i = 0; i < rd.bufferCount; ++i)
                        recycle(claimed[i]);
                }
            });
        }
        step(ctx, base, "bump device recv ring", _spec.rxBumpRing, cost);
    }
    step({}, base, "return from interrupt", _spec.rxReturn, cost);

    cpu.runKernel(cost, [effects = std::move(effects)] {
        for (const auto &effect : effects)
            effect();
    });
}

} // namespace unet
