#include "unet/endpoint.hh"

namespace unet {

Endpoint::Endpoint(sim::Simulation &sim, host::Memory &memory,
                   const EndpointConfig &config,
                   const sim::Process *owner, std::size_t id)
    : sim(sim), _id(id), _owner(owner), _config(config),
      _buffers(memory, config.bufferAreaBytes),
      _sendQueue(config.sendQueueDepth),
      _recvQueue(config.recvQueueDepth),
      _freeQueue(config.freeQueueDepth),
      _ownership(config.bufferAreaBytes),
      _metrics(sim.metrics(), sim.metrics().uniquePrefix(
                                  "unet.ep" + std::to_string(id)))
{
    _metrics.counter("rxQueueDrops", _rxQueueDrops);
    // Custody: only the owning process's fiber (or the main/event
    // context — kernel agents, NIC firmware, harnesses) may touch the
    // shared rings.
    _sendGuard.bindOwner(owner);
    _recvGuard.bindOwner(owner);
    _freeGuard.bindOwner(owner);
}

void
Endpoint::labelGuards(const std::string &prefix)
{
    _sendGuard.setLabel(prefix + ".sendq");
    _recvGuard.setLabel(prefix + ".recvq");
    _freeGuard.setLabel(prefix + ".freeq");
}

void
Endpoint::auditRings() const
{
    _sendQueue.check();
    _recvQueue.check();
    _freeQueue.check();
}

void
Endpoint::auditTick()
{
#if defined(UNET_CHECK) && UNET_CHECK
    if (_config.checkIntervalOps == 0)
        return;
    if (++opsSinceAudit >= _config.checkIntervalOps) {
        opsSinceAudit = 0;
        auditRings();
    }
#endif
}

ChannelId
Endpoint::addChannel(const ChannelInfo &info)
{
    if (channels.size() >= _config.maxChannels)
        UNET_FATAL("endpoint ", _id, " exceeds its channel limit of ",
                   _config.maxChannels);
    channels.push_back(info);
    channels.back().valid = true;
    return static_cast<ChannelId>(channels.size() - 1);
}

const ChannelInfo &
Endpoint::channel(ChannelId id) const
{
    if (!channelValid(id))
        UNET_PANIC("invalid channel ", id, " on endpoint ", _id);
    return channels[id];
}

bool
Endpoint::channelValid(ChannelId id) const
{
    return id < channels.size() && channels[id].valid;
}

bool
Endpoint::poll(RecvDescriptor &out)
{
    check::ContextGuard::Scope scope(_recvGuard, "poll");
    auto desc = _recvQueue.pop();
    if (!desc)
        return false;
    out = *desc;
#if UNET_TRACE
    // The application consumes the message: close out its custody.
    if (auto *tr = sim.trace())
        tr->hop(out.trace, obs::SpanKind::RxQueue, _metrics.prefix(),
                sim.now());
#endif
    if (!out.isSmall)
        for (std::uint8_t i = 0; i < out.bufferCount; ++i)
            _ownership.consume(out.buffers[i]);
    auditTick();
    return true;
}

std::size_t
Endpoint::pollv(RecvDescriptor *out, std::size_t max)
{
    check::ContextGuard::Scope scope(_recvGuard, "pollv");
    std::size_t drained = 0;
    while (drained < max) {
        auto desc = _recvQueue.pop();
        if (!desc)
            break;
        out[drained] = *desc;
        RecvDescriptor &cur = out[drained];
#if UNET_TRACE
        if (auto *tr = sim.trace())
            tr->hop(cur.trace, obs::SpanKind::RxQueue,
                    _metrics.prefix(), sim.now());
#endif
        if (!cur.isSmall)
            for (std::uint8_t i = 0; i < cur.bufferCount; ++i)
                _ownership.consume(cur.buffers[i]);
        auditTick();
        ++drained;
    }
    return drained;
}

bool
Endpoint::wait(sim::Process &proc, RecvDescriptor &out, sim::Tick timeout)
{
    check::assertCaller(proc, "Endpoint::wait");
    _recvGuard.mutate("wait");
    while (true) {
        if (poll(out))
            return true;
        if (timeout == sim::maxTick) {
            proc.waitOn(_rxAvailable);
        } else {
            sim::Tick before = sim.now();
            if (!proc.waitOn(_rxAvailable, timeout))
                return poll(out); // one last check after the timeout
            timeout -= sim.now() - before;
            if (timeout < 0)
                timeout = 0;
        }
    }
}

void
Endpoint::setUpcall(std::function<void(const RecvDescriptor &)> handler,
                    sim::Tick latency)
{
    upcall = std::move(handler);
    upcallLatency = latency;
    if (upcall && !_recvQueue.empty())
        scheduleUpcall();
}

bool
Endpoint::deliver(const RecvDescriptor &desc)
{
    check::ContextGuard::Scope scope(_recvGuard, "deliver");
    if (!_recvQueue.push(desc)) {
        ++_rxQueueDrops;
        return false;
    }
    if (!desc.isSmall)
        for (std::uint8_t i = 0; i < desc.bufferCount; ++i)
            _ownership.deliver(desc.buffers[i]);
    auditTick();
    _rxAvailable.notifyAll();
    if (upcall)
        scheduleUpcall();
    return true;
}

void
Endpoint::scheduleUpcall()
{
    if (upcallPending)
        return;
    upcallPending = true;
    sim.scheduleIn(upcallLatency, [this] {
        upcallPending = false;
        // Consume all pending messages in a single activation.
        RecvDescriptor desc;
        while (!_recvQueue.empty()) {
            desc = *_recvQueue.pop();
#if UNET_TRACE
            if (auto *tr = sim.trace())
                tr->hop(desc.trace, obs::SpanKind::RxQueue,
                        _metrics.prefix(), sim.now());
#endif
            if (!desc.isSmall)
                for (std::uint8_t i = 0; i < desc.bufferCount; ++i)
                    _ownership.consume(desc.buffers[i]);
            upcall(desc);
        }
    });
}

} // namespace unet
