/**
 * @file
 * Fixed-capacity descriptor rings.
 *
 * U-Net message queues are bounded rings shared between the application
 * and the agent servicing them (kernel or NIC co-processor). A full
 * send queue pushes back on the sender; a full receive queue makes the
 * servicer drop messages (upper layers — Active Messages — retransmit).
 */

#ifndef UNET_UNET_QUEUES_HH
#define UNET_UNET_QUEUES_HH

#include <cstddef>
#include <optional>
#include <vector>

#include "sim/logging.hh"
#include "sim/perturb.hh"
#include "sim/stats.hh"

namespace unet {

/** A bounded FIFO ring of descriptors. */
template <typename T>
class Ring
{
  public:
    explicit Ring(std::size_t capacity)
        : _capacity(capacity), slots(capacity)
    {
        if (capacity == 0)
            UNET_PANIC("ring with zero capacity");
        // Third perturbation axis (ring slot-reuse offsets): under a
        // nonzero salt, start the cursors at a salted slot so each
        // logical push lands in a different physical slot per salt.
        // FIFO semantics and the check() invariants are unaffected —
        // only code wrongly keying behaviour off slot indices diverges.
        if (std::uint64_t s = sim::perturb::salt())
            head = tail = static_cast<std::size_t>(
                sim::perturb::mix(s, sim::perturb::nextRingSequence()) %
                _capacity);
    }

    std::size_t capacity() const { return _capacity; }
    std::size_t size() const { return count; }
    bool empty() const { return count == 0; }
    bool full() const { return count == _capacity; }

    /** Push a descriptor; @return false (and count it) if full. */
    bool
    push(const T &item)
    {
        if (full()) {
            ++_rejected;
            return false;
        }
        slots[tail] = item;
        tail = (tail + 1) % _capacity;
        ++count;
        ++_pushed;
        return true;
    }

    /** Pop the oldest descriptor, if any. */
    std::optional<T>
    pop()
    {
        if (empty())
            return std::nullopt;
        T item = std::move(slots[head]);
        // Scrub the vacated slot: a stale descriptor left behind is
        // exactly the kind of dangling buffer reference the ownership
        // checker exists to catch, and scrubbing makes any use of it
        // fail loudly instead of silently re-sending old data.
        slots[head] = T{};
        head = (head + 1) % _capacity;
        --count;
        ++_popped;
        return item;
    }

    /** Peek at the oldest descriptor; ring must not be empty. */
    const T &
    front() const
    {
        if (empty())
            UNET_PANIC("front() on empty ring");
        return slots[head];
    }

    /**
     * Audit the ring's internal consistency; panics on violation.
     * Shared-ring corruption (a servicer and an application disagreeing
     * about head/tail) is a protection failure, so the checker calls
     * this periodically on every endpoint ring.
     */
    void
    check() const
    {
        if (head >= _capacity || tail >= _capacity)
            UNET_PANIC("ring index out of range: head=", head,
                       " tail=", tail, " capacity=", _capacity);
        if (count > _capacity)
            UNET_PANIC("ring count ", count, " exceeds capacity ",
                       _capacity);
        if ((head + count) % _capacity != tail)
            UNET_PANIC("ring head/tail/count inconsistent: head=", head,
                       " tail=", tail, " count=", count,
                       " capacity=", _capacity);
        if (_pushed.value() - _popped.value() != count)
            UNET_PANIC("ring stats inconsistent: pushed=",
                       _pushed.value(), " popped=", _popped.value(),
                       " count=", count);
    }

    /** @name Statistics. @{ */
    std::uint64_t pushed() const { return _pushed.value(); }
    std::uint64_t popped() const { return _popped.value(); }
    std::uint64_t rejected() const { return _rejected.value(); }
    /** @} */

  private:
    // Layout: every push/pop reads _capacity and writes one cursor, so
    // the cursors and capacity share the leading cache line; the slot
    // storage pointer follows; the statistics counters (written but
    // never read on the hot path) trail.
    std::size_t _capacity;
    std::size_t head = 0;
    std::size_t tail = 0;
    std::size_t count = 0;
    std::vector<T> slots;
    sim::Counter _pushed;
    sim::Counter _popped;
    sim::Counter _rejected;
};

} // namespace unet

#endif // UNET_UNET_QUEUES_HH
