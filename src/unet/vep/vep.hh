/**
 * @file
 * Endpoint virtualization: paged NIC endpoint state with an LRU hot set.
 *
 * The paper caps U-Net endpoints at what fits in NIC memory (the
 * PCA-200 carries ~256KB; U-Net/FE burns one byte of port space per
 * endpoint). OpenURMA identifies exactly this per-connection NIC state
 * as the dominant scaling bottleneck in modern RDMA and fixes it by
 * decoupling connection state from the NIC. This subsystem is the
 * analogue for both U-Net substrates:
 *
 *  - an id-keyed EndpointTable owns every endpoint on a U-Net
 *    instance. Endpoints are either *materialized* (rings and buffer
 *    area allocated, traffic-capable) or *cold registrations* — a
 *    compact record proving the id exists, cheap enough to hold a
 *    million of (the scaling-curve tail);
 *
 *  - a per-NIC ResidencyCache decides which materialized endpoints'
 *    state sits "in NIC memory" right now. The hot set is bounded by a
 *    spec knob; a send doorbell or receive demux that touches a
 *    non-resident endpoint pays a modeled page-in latency (charged
 *    through the same cost discipline as every other knob), evicting
 *    the least-recently-touched unpinned endpoint to make room.
 *
 * Eviction safety: an endpoint with in-flight custody — a DC21140 ring
 * slot referencing its buffer area, an i960 mid-segmentation or
 * mid-reassembly — is *pinned* and never a victim. Evicting a pinned
 * endpoint is a model bug and panics.
 *
 * Determinism: LRU order is a monotone logical touch-sequence counter,
 * never an address or a wall clock, so victim choice is bit-identical
 * under every perturbation salt.
 */

#ifndef UNET_UNET_VEP_VEP_HH
#define UNET_UNET_VEP_VEP_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "check/access.hh"
#include "obs/metrics.hh"
#include "sim/simulation.hh"
#include "unet/endpoint.hh"

namespace unet::vep {

/** Sizing and cost knobs for one NIC's residency cache. */
struct VepSpec
{
    /**
     * Endpoints resident in NIC memory at once. The default is sized
     * from today's limits — larger than any fixed-endpoint rig in the
     * tree (the biggest is the serve rig's fan-in plus one), so a
     * configuration that never asks for more endpoints than a real
     * NIC held is fully resident and pays zero fault cost on a
     * byte-identical fast path.
     */
    std::size_t hotCapacity = 256;

    /**
     * Cost of paging one endpoint's NIC state in from host memory on a
     * demux/doorbell miss (descriptor block DMA + table fix-up),
     * charged to whoever hit the miss: the trap/interrupt handler on
     * U-Net/FE, the i960 on U-Net/ATM.
     */
    sim::Tick pageInLatency = sim::microseconds(25);

    /** Cost of writing the victim's state back to host memory. */
    sim::Tick pageOutLatency = sim::microseconds(8);
};

/**
 * Id-keyed owner of every endpoint on one U-Net instance.
 *
 * Ids are dense and stable (slot index, assigned at registration).
 * A slot is one of: cold (registered, no Endpoint object — its state
 * notionally lives paged out in host memory), materialized (live
 * Endpoint), or destroyed (id retired, never reused).
 */
class EndpointTable
{
  public:
    /** Materialize an endpoint and take ownership. */
    Endpoint &create(sim::Simulation &sim, host::Memory &memory,
                     const EndpointConfig &config,
                     const sim::Process *owner);

    /**
     * Register an endpoint id without materializing it (the cold tier:
     * a compact record, no rings, no buffer area). Scaling experiments
     * register the 1→10^6 tail this way.
     */
    std::size_t registerCold();

    /** Pre-size the slot vectors for @p n upcoming registrations. */
    void reserve(std::size_t n);

    /** The endpoint behind @p id, or nullptr when cold/destroyed. */
    Endpoint *
    get(std::size_t id) const
    {
        _guard.observe("demux lookup");
        return id < _slots.size() ? _slots[id].get() : nullptr;
    }

    /** Retire @p id: destroys the Endpoint if materialized. */
    void destroy(std::size_t id);

    bool
    known(std::size_t id) const
    {
        return id < _states.size() &&
               _states[id] != State::destroyed;
    }

    /** Ids ever issued (cold + materialized + destroyed). */
    std::size_t size() const { return _slots.size(); }
    /** Live Endpoint objects. */
    std::size_t materialized() const { return _materialized; }
    /** Cold registrations outstanding. */
    std::size_t cold() const { return _cold; }

    /** Shardability instrumentation over the slot/state vectors. */
    check::ContextGuard &guard() { return _guard; }

  private:
    enum class State : std::uint8_t { cold, live, destroyed };

    std::vector<std::unique_ptr<Endpoint>> _slots;   // hb-guarded(_guard)
    std::vector<State> _states;                      // hb-guarded(_guard)
    std::size_t _materialized = 0;                   // hb-guarded(_guard)
    std::size_t _cold = 0;                           // hb-guarded(_guard)

    /** Custody/HB instrumentation for the table (create, cold
     *  registration, destroy, demux lookups). */
    check::ContextGuard _guard{"endpoint table"};
};

/**
 * Per-NIC LRU hot set of endpoint ids resident "in NIC memory".
 *
 * touch() is the single fast-path entry: it returns the fault cost the
 * caller must charge (zero on a hit — the resident path is
 * byte-identical to the pre-virtualization code). pin()/unpin() bracket
 * in-flight custody windows; pinned endpoints are never victims.
 */
class ResidencyCache
{
  public:
    /**
     * @param sim           Simulation (pin-latency timestamps, metrics
     *                      registry).
     * @param spec          Capacity and fault costs.
     * @param metric_prefix Registry prefix, e.g. "host.a.unet.vep"
     *                      (made unique internally).
     */
    ResidencyCache(sim::Simulation &sim, const VepSpec &spec,
                   const std::string &metric_prefix);

    const VepSpec &spec() const { return _spec; }

    /**
     * Record a fast-path access to @p id. On a hit returns 0; on a
     * miss makes @p id resident — evicting the least-recently-touched
     * unpinned endpoint when the hot set is full — and returns the
     * page-in (+ page-out on eviction) cost for the caller to charge.
     */
    sim::Tick touch(std::size_t id);

    /**
     * Make @p id resident without counting a fault or returning a
     * cost: endpoint creation pre-loads the state it just built, the
     * way the driver pre-posts the RX ring at boot. Still evicts the
     * LRU unpinned resident when the hot set is full.
     */
    void warm(std::size_t id);

    bool
    resident(std::size_t id) const
    {
        return id < _entries.size() && _entries[id].resident;
    }

    /**
     * Open an in-flight custody window on @p id (must be resident):
     * the endpoint cannot be evicted until the matching unpin(). Pins
     * nest; the pin-latency histogram records the outermost window.
     */
    void pin(std::size_t id);
    void unpin(std::size_t id);

    /** Evict @p id now (panics if pinned); no-op when not resident. */
    void evict(std::size_t id);

    /** Forget @p id entirely (endpoint destroyed; panics if pinned). */
    void remove(std::size_t id);

    std::size_t residentCount() const { return _resident.size(); }
    std::size_t pinnedCount() const { return _pinnedCount; }
    std::uint64_t faults() const { return _faults.value(); }
    std::uint64_t evictions() const { return _evictions.value(); }
    std::uint64_t hits() const { return _hits.value(); }
    const obs::Histogram &pinLatencyNs() const { return _pinNs; }

    /**
     * Order-independent digest of (id, touch-sequence, pinned,
     * resident) for every resident entry — model-checker configs mix
     * this so two schedules with different hot-set contents never
     * collapse into one explored state.
     */
    std::uint64_t stateHash() const;

    /** Shardability instrumentation over the hot-set state. */
    check::ContextGuard &guard() { return _guard; }

  private:
    struct Entry
    {
        std::uint64_t lastTouch = 0;
        sim::Tick pinnedAt = 0;
        std::uint32_t pins = 0;
        bool resident = false;
    };

    Entry &entryFor(std::size_t id);

    /** Insert @p id into the hot set. @return true if a victim was
     *  evicted to make room. */
    bool insertResident(Entry &e, std::size_t id);

    sim::Simulation &_sim;                // hb-exempt(reference, set once)
    VepSpec _spec;                        // hb-exempt(const after ctor)
    std::vector<Entry> _entries;          // hb-guarded(_guard)
    /** Resident ids, unordered; eviction min-scans lastTouch. */
    std::vector<std::size_t> _resident;   // hb-guarded(_guard)
    std::uint64_t _touchSeq = 0;          // hb-guarded(_guard)
    std::size_t _pinnedCount = 0;         // hb-guarded(_guard)

    sim::Counter _faults;                 // hb-exempt(commutative metrics sink)
    sim::Counter _evictions;              // hb-exempt(commutative metrics sink)
    sim::Counter _hits;                   // hb-exempt(commutative metrics sink)
    obs::Histogram _pinNs;                // hb-exempt(commutative metrics sink)

    obs::MetricGroup _metrics;            // hb-exempt(registration RAII)

    /** Custody/HB instrumentation for the hot set (touch, warm, pin,
     *  evict — the paths the parallel plan must keep shard-local). */
    check::ContextGuard _guard{"endpoint residency cache"};
};

} // namespace unet::vep

#endif // UNET_UNET_VEP_VEP_HH
