#include "unet/vep/vep.hh"

#include "sim/logging.hh"

namespace unet::vep {

Endpoint &
EndpointTable::create(sim::Simulation &sim, host::Memory &memory,
                      const EndpointConfig &config,
                      const sim::Process *owner)
{
    _guard.mutate("materialize endpoint");
    const std::size_t id = _slots.size();
    _slots.push_back(std::make_unique<Endpoint>(sim, memory, config,
                                                owner, id));
    _states.push_back(State::live);
    ++_materialized;
    return *_slots.back();
}

std::size_t
EndpointTable::registerCold()
{
    _guard.mutate("register cold endpoint");
    const std::size_t id = _slots.size();
    _slots.emplace_back();
    _states.push_back(State::cold);
    ++_cold;
    return id;
}

void
EndpointTable::reserve(std::size_t n)
{
    _slots.reserve(_slots.size() + n);
    _states.reserve(_states.size() + n);
}

void
EndpointTable::destroy(std::size_t id)
{
    _guard.mutate("destroy endpoint");
    if (id >= _states.size() || _states[id] == State::destroyed)
        UNET_FATAL("destroying unknown endpoint id ", id);
    if (_states[id] == State::live) {
        _slots[id].reset();
        --_materialized;
    } else {
        --_cold;
    }
    _states[id] = State::destroyed;
}

ResidencyCache::ResidencyCache(sim::Simulation &sim, const VepSpec &spec,
                               const std::string &metric_prefix)
    : _sim(sim), _spec(spec),
      _metrics(sim.metrics(), sim.metrics().uniquePrefix(metric_prefix))
{
    // The unique metric prefix doubles as the shardability-report
    // label: instance-distinct and already host-scoped by convention.
    _guard.setLabel(_metrics.prefix());
    if (_spec.hotCapacity == 0)
        UNET_FATAL("residency cache needs room for at least one "
                   "endpoint");
    _metrics.counter("faults", _faults);
    _metrics.counter("evictions", _evictions);
    _metrics.counter("hits", _hits);
    _metrics.gauge("resident", [this] {
        return static_cast<double>(_resident.size());
    });
    _metrics.gauge("pinned", [this] {
        return static_cast<double>(_pinnedCount);
    });
    _metrics.histogram("pinLatencyNs", _pinNs);
}

ResidencyCache::Entry &
ResidencyCache::entryFor(std::size_t id)
{
    if (id >= _entries.size())
        _entries.resize(id + 1);
    return _entries[id];
}

bool
ResidencyCache::insertResident(Entry &e, std::size_t id)
{
    bool evicted = false;
    if (_resident.size() >= _spec.hotCapacity) {
        // LRU victim: smallest logical touch sequence among unpinned
        // residents. A linear min-scan over a bounded hot set, ordered
        // by counters only — schedule- and address-invariant.
        std::size_t victim_pos = _resident.size();
        std::uint64_t victim_touch = 0;
        for (std::size_t i = 0; i < _resident.size(); ++i) {
            const Entry &cand = _entries[_resident[i]];
            if (cand.pins)
                continue;
            if (victim_pos == _resident.size() ||
                cand.lastTouch < victim_touch) {
                victim_pos = i;
                victim_touch = cand.lastTouch;
            }
        }
        if (victim_pos == _resident.size())
            UNET_FATAL("endpoint residency cache full of pinned "
                       "endpoints (capacity ", _spec.hotCapacity,
                       "): every resident endpoint has in-flight "
                       "custody");
        _entries[_resident[victim_pos]].resident = false;
        _resident[victim_pos] = _resident.back();
        _resident.pop_back();
        ++_evictions;
        evicted = true;
    }
    e.resident = true;
    _resident.push_back(id);
    return evicted;
}

sim::Tick
ResidencyCache::touch(std::size_t id)
{
    _guard.mutate("touch");
    Entry &e = entryFor(id);
    e.lastTouch = ++_touchSeq;
    if (e.resident) {
        ++_hits;
        return 0;
    }
    ++_faults;
    sim::Tick cost = _spec.pageInLatency;
    if (insertResident(e, id))
        cost += _spec.pageOutLatency;
    return cost;
}

void
ResidencyCache::warm(std::size_t id)
{
    _guard.mutate("warm");
    Entry &e = entryFor(id);
    e.lastTouch = ++_touchSeq;
    if (e.resident)
        return;
    insertResident(e, id);
}

void
ResidencyCache::pin(std::size_t id)
{
    _guard.mutate("pin");
    Entry &e = entryFor(id);
    if (!e.resident)
        UNET_PANIC("pinning non-resident endpoint ", id,
                   " (touch it first)");
    if (e.pins++ == 0) {
        e.pinnedAt = _sim.now();
        ++_pinnedCount;
    }
}

void
ResidencyCache::unpin(std::size_t id)
{
    _guard.mutate("unpin");
    Entry &e = entryFor(id);
    if (e.pins == 0)
        UNET_PANIC("unpinning endpoint ", id, " with no pin held");
    if (--e.pins == 0) {
        --_pinnedCount;
        _pinNs.record(
            static_cast<std::uint64_t>(_sim.now() - e.pinnedAt) / 1000);
    }
}

void
ResidencyCache::evict(std::size_t id)
{
    _guard.mutate("evict");
    if (id >= _entries.size() || !_entries[id].resident)
        return;
    if (_entries[id].pins)
        UNET_FATAL("evicting endpoint ", id,
                   " with in-flight custody (", _entries[id].pins,
                   " pins held)");
    _entries[id].resident = false;
    for (std::size_t i = 0; i < _resident.size(); ++i) {
        if (_resident[i] == id) {
            _resident[i] = _resident.back();
            _resident.pop_back();
            break;
        }
    }
    ++_evictions;
}

void
ResidencyCache::remove(std::size_t id)
{
    _guard.mutate("remove");
    if (id >= _entries.size())
        return;
    if (_entries[id].pins)
        UNET_FATAL("removing endpoint ", id,
                   " with in-flight custody (", _entries[id].pins,
                   " pins held)");
    if (_entries[id].resident) {
        for (std::size_t i = 0; i < _resident.size(); ++i) {
            if (_resident[i] == id) {
                _resident[i] = _resident.back();
                _resident.pop_back();
                break;
            }
        }
    }
    _entries[id] = Entry{};
}

std::uint64_t
ResidencyCache::stateHash() const
{
    _guard.observe("state hash sweep");
    // Commutative mix (sum of per-entry hashes): the _resident vector's
    // internal order is a swap-erase artifact, not model state.
    std::uint64_t h = 0x9e3779b97f4a7c15ULL * (_resident.size() + 1);
    for (std::size_t id : _resident) {
        const Entry &e = _entries[id];
        std::uint64_t z = id * 0xbf58476d1ce4e5b9ULL;
        z ^= e.lastTouch + 0x94d049bb133111ebULL * (e.pins + 1);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        h += z ^ (z >> 31);
    }
    return h;
}

} // namespace unet::vep
