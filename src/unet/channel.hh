/**
 * @file
 * Communication channels and message tags.
 *
 * A channel joins a pair of endpoints and carries the substrate-specific
 * message tag: (MAC address, U-Net port) for Fast Ethernet, a VCI for
 * ATM. Applications obtain channels from the OS service, which performs
 * route discovery, signalling, and authorization; afterwards the channel
 * id indexes this table on every send and is reported on every receive.
 */

#ifndef UNET_UNET_CHANNEL_HH
#define UNET_UNET_CHANNEL_HH

#include "atm/cell.hh"
#include "eth/mac_address.hh"
#include "unet/types.hh"

namespace unet {

/** Per-endpoint channel table entry. */
struct ChannelInfo
{
    bool valid = false;

    /** @name U-Net/FE tag: destination interface + port. @{ */
    eth::MacAddress remoteMac;
    PortId remotePort = 0;
    /** @} */

    /** @name U-Net/ATM tag: VCI to send on (== VCI received on). @{ */
    atm::Vci vci = 0;
    /** @} */
};

} // namespace unet

#endif // UNET_UNET_CHANNEL_HH
