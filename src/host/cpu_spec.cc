#include "host/cpu_spec.hh"

namespace unet::host {

using namespace sim::literals;

sim::Tick
CpuSpec::memcpyTime(std::size_t bytes) const
{
    return memcpySetup +
        sim::serializationTime(static_cast<std::int64_t>(bytes),
                               memcpyBytesPerSec * 8.0);
}

CpuSpec
CpuSpec::pentium120()
{
    CpuSpec s;
    s.name = "Pentium-120";
    s.clockMhz = 120;
    // Fig. 3: trap overhead is ~20% of the 4.2 us send path; the paper
    // quotes "under 1 us for a null trap on a 120 MHz Pentium".
    s.trapEntryCost = 0.69_us;
    s.trapExitCost = 0.15_us;
    // "The latency between frame data arriving in memory and the
    // invocation of the interrupt handler is roughly 2 us."
    s.interruptDispatch = 2.0_us;
    s.interruptEntryCost = 0.38_us;  // Fig. 4 step 1
    s.interruptExitCost = 0.40_us;   // Fig. 4 step 7
    // "The Pentium memory-copy speed is about 70 Mbytes/sec"; the Fig. 4
    // copy slope of 1.42 us / 100 bytes matches 70 MB/s, and the
    // quoted 1.32 us to copy a 40-byte message implies ~0.75 us of
    // fixed memcpy overhead.
    s.memcpyBytesPerSec = 70e6;
    s.memcpySetup = 0.75_us;
    // Application-level throughput calibration: the Pentium wins integer
    // codes, the SPARC wins floating point (paper section 5.2).
    s.intOpCost = 9_ns;
    s.flopCost = 35_ns;
    s.pioStoreCost = 0.25_us;
    return s;
}

CpuSpec
CpuSpec::pentium90()
{
    CpuSpec s = pentium120();
    s.name = "Pentium-90";
    s.clockMhz = 90;
    const double scale = 120.0 / 90.0;
    s.trapEntryCost = static_cast<sim::Tick>(s.trapEntryCost * scale);
    s.trapExitCost = static_cast<sim::Tick>(s.trapExitCost * scale);
    s.interruptEntryCost =
        static_cast<sim::Tick>(s.interruptEntryCost * scale);
    s.interruptExitCost =
        static_cast<sim::Tick>(s.interruptExitCost * scale);
    s.memcpyBytesPerSec = 70e6 / scale;
    s.intOpCost = static_cast<sim::Tick>(s.intOpCost * scale);
    s.flopCost = static_cast<sim::Tick>(s.flopCost * scale);
    return s;
}

CpuSpec
CpuSpec::sparc20()
{
    CpuSpec s;
    s.name = "SPARCstation-20";
    s.clockMhz = 60;
    // The SPARC host only posts send descriptors (1.5 us PIO) and polls
    // receive queues; it never runs U-Net in the kernel, so trap costs
    // are the (slower) SunOS ones and barely matter.
    s.trapEntryCost = 2.0_us;
    s.trapExitCost = 1.0_us;
    s.interruptDispatch = 3.0_us;
    s.interruptEntryCost = 1.0_us;
    s.interruptExitCost = 1.0_us;
    s.memcpyBytesPerSec = 55e6;
    s.memcpySetup = 0.3_us;
    // SuperSPARC: weaker integer, stronger FP than the Pentium.
    s.intOpCost = 18_ns;
    s.flopCost = 17_ns;
    // "the host stores the U-Net send descriptor into the i960-resident
    // transmit queue using a double-word store": ~1.5 us processor
    // overhead total for a send.
    s.pioStoreCost = 0.37_us;
    return s;
}

CpuSpec
CpuSpec::sparc10()
{
    CpuSpec s = sparc20();
    s.name = "SPARCstation-10";
    s.clockMhz = 40;
    const double scale = 60.0 / 40.0;
    s.memcpyBytesPerSec = 55e6 / scale;
    s.intOpCost = static_cast<sim::Tick>(s.intOpCost * scale);
    s.flopCost = static_cast<sim::Tick>(s.flopCost * scale);
    return s;
}

} // namespace unet::host
