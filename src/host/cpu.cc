#include "host/cpu.hh"

#include "sim/logging.hh"

namespace unet::host {

Cpu::Cpu(sim::Simulation &sim, CpuSpec spec, std::string name)
    : sim(sim), _spec(std::move(spec)), _name(std::move(name))
{
}

void
Cpu::busy(sim::Process &proc, sim::Tick work)
{
    if (work < 0)
        UNET_PANIC("negative busy() on ", _name);
    if (computing)
        UNET_PANIC("two processes computing at once on ", _name,
                   " (single-CPU hosts only)");

    _userTime += work;
    if (work == 0)
        return;

    computing = &proc;
    computeEnd = sim.now() + work;
    // If kernel work is in flight right now, it pushes us back too.
    if (kernelBusyUntil > sim.now())
        computeEnd += kernelBusyUntil - sim.now();

    // Sleep until the (possibly moving) completion point.
    while (sim.now() < computeEnd)
        proc.delay(computeEnd - sim.now());

    computing = nullptr;
}

void
Cpu::runKernel(sim::Tick cost, std::function<void()> on_done)
{
    if (cost < 0)
        UNET_PANIC("negative kernel work on ", _name);

    sim::Tick start = std::max(sim.now(), kernelBusyUntil);
    kernelBusyUntil = start + cost;
    _kernelTime += cost;
    ++_kernelRuns;

    // Steal cycles from any in-flight user computation.
    if (computing)
        computeEnd += cost;

    if (on_done)
        sim.schedule(kernelBusyUntil, std::move(on_done));
}

} // namespace unet::host
