#include "host/bus.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace unet::host {

using namespace sim::literals;

BusSpec
BusSpec::pci()
{
    BusSpec s;
    s.name = "PCI";
    // 32-bit 33 MHz PCI peaks at 132 MB/s; sustained DMA is lower.
    s.bytesPerSec = 110e6;
    s.transactionSetup = 0.25_us;
    s.burstBytes = 96;
    s.perBurstOverhead = 40_ns;
    return s;
}

BusSpec
BusSpec::sbus()
{
    BusSpec s;
    s.name = "SBus";
    s.bytesPerSec = 45e6;
    s.transactionSetup = 0.6_us;
    s.burstBytes = 32;
    s.perBurstOverhead = 100_ns;
    return s;
}

Bus::Bus(sim::Simulation &sim, BusSpec spec)
    : sim(sim), _spec(std::move(spec))
{
    if (_spec.burstBytes == 0)
        UNET_FATAL("bus '", _spec.name, "' has zero burst size");
    if (_spec.bytesPerSec <= 0)
        UNET_FATAL("bus '", _spec.name, "' has no bandwidth");
}

sim::Tick
Bus::transferTime(std::size_t bytes) const
{
    if (bytes == 0)
        return _spec.transactionSetup;
    std::size_t bursts = (bytes + _spec.burstBytes - 1) / _spec.burstBytes;
    return _spec.transactionSetup +
        static_cast<sim::Tick>(bursts - 1) * _spec.perBurstOverhead +
        sim::serializationTime(static_cast<std::int64_t>(bytes),
                               _spec.bytesPerSec * 8.0);
}

void
Bus::charge(std::size_t bytes)
{
    sim::Tick start = std::max(sim.now(), busyUntil);
    busyUntil = start + transferTime(bytes);
    ++_transactions;
    _bytesMoved += bytes;
}

sim::Tick
Bus::estimateCompletion(std::size_t bytes) const
{
    return std::max(sim.now(), busyUntil) + transferTime(bytes);
}

} // namespace unet::host
