/**
 * @file
 * I/O bus model (PCI and SBus) with DMA transactions.
 *
 * Network interfaces are bus masters: they move frame/cell payloads
 * between host memory and on-board FIFOs via DMA. The bus serializes
 * transactions and charges a setup cost plus per-burst overhead plus
 * streaming time. The paper notes the PCA-200 DMAs "in 32-byte bursts on
 * the Sbus and 96-byte bursts on the PCI bus".
 */

#ifndef UNET_HOST_BUS_HH
#define UNET_HOST_BUS_HH

#include <cstdint>
#include <functional>
#include <string>

#include "sim/simulation.hh"
#include "sim/stats.hh"
#include "sim/time.hh"

namespace unet::host {

/** Static description of an I/O bus. */
struct BusSpec
{
    std::string name;

    /** Peak streaming bandwidth in bytes/second. */
    double bytesPerSec = 0;

    /** Fixed per-transaction cost (arbitration, address phase). */
    sim::Tick transactionSetup = 0;

    /** Burst granularity in bytes. */
    std::size_t burstBytes = 0;

    /** Re-arbitration overhead per burst after the first. */
    sim::Tick perBurstOverhead = 0;

    /** 32-bit 33 MHz PCI (96-byte bursts per the paper). */
    static BusSpec pci();

    /** SBus as on the SPARCstations (32-byte bursts). */
    static BusSpec sbus();
};

/** A host's I/O bus: a serial DMA resource. */
class Bus
{
  public:
    Bus(sim::Simulation &sim, BusSpec spec);

    const BusSpec &spec() const { return _spec; }

    /** Pure transfer time for @p bytes, ignoring queueing. */
    sim::Tick transferTime(std::size_t bytes) const;

    /**
     * Start a DMA of @p bytes. @p on_done fires when the last byte has
     * crossed the bus. Transactions queue behind each other. The
     * callback goes straight into the pooled event queue — no
     * std::function wrapper on the hot path.
     */
    template <typename F>
    void
    dma(std::size_t bytes, F &&on_done)
    {
        charge(bytes);
        if constexpr (requires { static_cast<bool>(on_done); }) {
            if (!static_cast<bool>(on_done))
                return;
        }
        sim.schedule(busyUntil, std::forward<F>(on_done));
    }

    /** DMA with no completion callback (charge the bus only). */
    void dma(std::size_t bytes, std::nullptr_t) { charge(bytes); }
    void dma(std::size_t bytes) { charge(bytes); }

    /**
     * When a DMA submitted now would complete (for pipelining
     * calculations); does not reserve the bus.
     */
    sim::Tick estimateCompletion(std::size_t bytes) const;

    /** @name Statistics. @{ */
    const sim::Counter &transactions() const { return _transactions; }
    std::uint64_t bytesMoved() const { return _bytesMoved; }
    /** @} */

  private:
    /** Queue @p bytes on the bus, advancing busyUntil. */
    void charge(std::size_t bytes);

    sim::Simulation &sim;
    BusSpec _spec;
    sim::Tick busyUntil = 0;
    sim::Counter _transactions;
    std::uint64_t _bytesMoved = 0;
};

} // namespace unet::host

#endif // UNET_HOST_BUS_HH
