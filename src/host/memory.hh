/**
 * @file
 * Host memory arena.
 *
 * A flat, bounds-checked byte array per host. Device descriptor rings,
 * kernel receive buffers, and U-Net endpoint buffer areas are carved out
 * of it with a bump allocator, so DMA targets are real bytes at real
 * offsets — a NIC writing outside its buffer trips a panic instead of
 * silently corrupting state.
 */

#ifndef UNET_HOST_MEMORY_HH
#define UNET_HOST_MEMORY_HH

#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "sim/logging.hh"
#include "sim/pool.hh"

namespace unet::host {

/** Byte-addressable host memory with a bump allocator. */
class Memory
{
  public:
    explicit Memory(std::size_t size = 4 * 1024 * 1024) : bytes(size)
    {
        // The arena is pooled across simulations (benchmark sweeps
        // construct hosts in bursts); a recycled buffer carries stale
        // contents, so restore the zeroed-memory contract here.
        std::memset(bytes.data(), 0, bytes.size());
    }

    std::size_t size() const { return bytes.size(); }

    /** Bytes still available for allocation. */
    std::size_t remaining() const { return bytes.size() - brk; }

    /**
     * Allocate @p len bytes aligned to @p align (a power of two).
     * @return the offset of the new region.
     */
    std::size_t
    alloc(std::size_t len, std::size_t align = 8)
    {
        if (align == 0 || (align & (align - 1)) != 0)
            UNET_PANIC("allocation alignment must be a power of two");
        std::size_t off = (brk + align - 1) & ~(align - 1);
        if (off + len > bytes.size())
            UNET_FATAL("host memory exhausted: need ", len, " bytes, ",
                       remaining(), " remain of ", bytes.size());
        brk = off + len;
        return off;
    }

    /** Bounds-checked view of [offset, offset+len). */
    std::span<std::uint8_t>
    region(std::size_t offset, std::size_t len)
    {
        if (offset + len > bytes.size())
            UNET_PANIC("memory access out of bounds: [", offset, ", ",
                       offset + len, ") of ", bytes.size());
        return {bytes.data() + offset, len};
    }

    /** Read-only bounds-checked view. */
    std::span<const std::uint8_t>
    region(std::size_t offset, std::size_t len) const
    {
        if (offset + len > bytes.size())
            UNET_PANIC("memory access out of bounds: [", offset, ", ",
                       offset + len, ") of ", bytes.size());
        return {bytes.data() + offset, len};
    }

    /** Copy @p data into memory at @p offset. */
    void
    write(std::size_t offset, std::span<const std::uint8_t> data)
    {
        auto dst = region(offset, data.size());
        std::memcpy(dst.data(), data.data(), data.size());
    }

    /** Copy @p len bytes out of memory at @p offset. */
    std::vector<std::uint8_t>
    read(std::size_t offset, std::size_t len) const
    {
        auto src = region(offset, len);
        return {src.begin(), src.end()};
    }

  private:
    sim::RecycledBuffer bytes;
    std::size_t brk = 0;
};

} // namespace unet::host

#endif // UNET_HOST_MEMORY_HH
