/**
 * @file
 * Host processor occupancy model.
 *
 * The CPU is a serial resource. Three kinds of work run on it:
 *
 *  - user computation, charged by a blocking Process via busy();
 *  - in-process kernel time (fast traps), also charged via busy();
 *  - asynchronous kernel work (interrupt handlers), submitted with
 *    runKernel() and serialized against other kernel work.
 *
 * Interrupt handlers steal cycles from whatever process computation is in
 * flight: an in-progress busy() is extended by the handler's cost. This
 * reproduces the paper's central U-Net/FE trade-off — low latency at the
 * price of host processor utilization during receives.
 */

#ifndef UNET_HOST_CPU_HH
#define UNET_HOST_CPU_HH

#include <functional>
#include <string>

#include "host/cpu_spec.hh"
#include "sim/process.hh"
#include "sim/simulation.hh"
#include "sim/stats.hh"

namespace unet::host {

/** A host processor instance. */
class Cpu
{
  public:
    Cpu(sim::Simulation &sim, CpuSpec spec, std::string name);

    const CpuSpec &spec() const { return _spec; }
    const std::string &name() const { return _name; }

    /**
     * Charge @p work ticks of processor time to the calling process,
     * blocking it. If interrupt handlers run meanwhile, the completion
     * point moves back by their cost.
     */
    void busy(sim::Process &proc, sim::Tick work);

    /**
     * Submit asynchronous kernel work (an interrupt handler body) of the
     * given cost. Kernel work is serialized: a second handler waits for
     * the first. @p on_done fires when the work completes; any effects
     * of the handler (queue updates, wakeups) belong there.
     */
    void runKernel(sim::Tick cost, std::function<void()> on_done);

    /** True if kernel work is executing or queued right now. */
    bool kernelBusy() const { return sim.now() < kernelBusyUntil; }

    /** @name Statistics. @{ */
    sim::Tick userTime() const { return _userTime; }
    sim::Tick kernelTime() const { return _kernelTime; }
    const sim::Counter &kernelRuns() const { return _kernelRuns; }
    /** @} */

  private:
    sim::Simulation &sim;
    CpuSpec _spec;
    std::string _name;

    /** Completion fence for serialized kernel work. */
    sim::Tick kernelBusyUntil = 0;

    /** The process currently inside busy(), if any. */
    sim::Process *computing = nullptr;

    /** When the current busy() will finish (moves back on interrupts). */
    sim::Tick computeEnd = 0;

    sim::Tick _userTime = 0;
    sim::Tick _kernelTime = 0;
    sim::Counter _kernelRuns;
};

} // namespace unet::host

#endif // UNET_HOST_CPU_HH
