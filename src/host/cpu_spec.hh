/**
 * @file
 * Cost models for the host processors used in the paper.
 *
 * The paper's experimental platforms are Pentium-90/120 PCs (U-Net/FE,
 * Linux) and SPARCstation 10/20s (U-Net/ATM, SunOS). All the published
 * overheads that drive the results — trap cost, interrupt dispatch
 * latency, memcpy bandwidth, relative integer vs floating-point
 * throughput — live here as calibration constants.
 */

#ifndef UNET_HOST_CPU_SPEC_HH
#define UNET_HOST_CPU_SPEC_HH

#include <cstdint>
#include <string>

#include "sim/time.hh"

namespace unet::host {

/** Static description of a host processor. */
struct CpuSpec
{
    /** Human-readable model name. */
    std::string name;

    /** Core clock in MHz (scales the published Pentium-120 costs). */
    double clockMhz = 0;

    /** Cost of entering the kernel through the fast trap gate. */
    sim::Tick trapEntryCost = 0;

    /** Cost of returning from the fast trap to user space. */
    sim::Tick trapExitCost = 0;

    /**
     * Latency from a device raising an interrupt (data already in host
     * memory) to the first instruction of the handler. The paper reports
     * roughly 2 us on the Pentium/Linux platform.
     */
    sim::Tick interruptDispatch = 0;

    /** Handler entry overhead (Fig. 4 step 1). */
    sim::Tick interruptEntryCost = 0;

    /** Return-from-interrupt overhead (Fig. 4 step 7). */
    sim::Tick interruptExitCost = 0;

    /** Kernel memcpy bandwidth (70 MB/s on the Pentium). */
    double memcpyBytesPerSec = 0;

    /** Fixed memcpy call overhead independent of size. */
    sim::Tick memcpySetup = 0;

    /** Average cost of one integer ALU operation in application code. */
    sim::Tick intOpCost = 0;

    /** Average cost of one floating-point operation in application code. */
    sim::Tick flopCost = 0;

    /** Cost of a programmed-I/O word store across the I/O bus. */
    sim::Tick pioStoreCost = 0;

    /** Time to copy @p bytes with the kernel memcpy. */
    sim::Tick memcpyTime(std::size_t bytes) const;

    /** Null trap round-trip (entry + exit), for reporting. */
    sim::Tick nullTrapCost() const { return trapEntryCost + trapExitCost; }

    /** @name The paper's four host platforms. @{ */
    static CpuSpec pentium120();
    static CpuSpec pentium90();
    static CpuSpec sparc20();
    static CpuSpec sparc10();
    /** @} */
};

} // namespace unet::host

#endif // UNET_HOST_CPU_SPEC_HH
