/**
 * @file
 * Device interrupt delivery.
 *
 * An InterruptLine connects a device to a handler registered by the
 * kernel. Asserting the line delivers the handler after the CPU's
 * dispatch latency (~2 us on the paper's Pentium/Linux platform).
 * Assertions while a delivery is pending coalesce into one delivery —
 * handlers are expected to drain their device rings, exactly as the
 * paper's U-Net/FE handler consumes all pending frames per interrupt.
 */

#ifndef UNET_HOST_INTERRUPTS_HH
#define UNET_HOST_INTERRUPTS_HH

#include <functional>
#include <string>

#include "host/cpu.hh"
#include "sim/logging.hh"
#include "sim/simulation.hh"
#include "sim/stats.hh"

namespace unet::host {

/** One device interrupt line wired to a CPU. */
class InterruptLine
{
  public:
    InterruptLine(sim::Simulation &sim, Cpu &cpu, std::string name)
        : sim(sim), cpu(cpu), _name(std::move(name))
    {}

    /** Register the handler (the kernel module does this once). */
    void
    connect(std::function<void()> handler)
    {
        this->handler = std::move(handler);
    }

    /** Device-side: raise the interrupt. */
    void
    assertLine()
    {
        ++_asserted;
        if (pending)
            return; // coalesced with the in-flight delivery
        if (!handler)
            UNET_PANIC("interrupt '", _name, "' asserted with no handler");
        pending = true;
        sim.scheduleIn(cpu.spec().interruptDispatch, [this] {
            pending = false;
            ++_delivered;
            handler();
        });
    }

    /** @name Statistics. @{ */
    std::uint64_t asserted() const { return _asserted.value(); }
    std::uint64_t delivered() const { return _delivered.value(); }
    /** @} */

  private:
    sim::Simulation &sim;
    Cpu &cpu;
    std::string _name;
    std::function<void()> handler;
    bool pending = false;
    sim::Counter _asserted;
    sim::Counter _delivered;
};

} // namespace unet::host

#endif // UNET_HOST_INTERRUPTS_HH
