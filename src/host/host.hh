/**
 * @file
 * One simulated workstation: CPU + memory + I/O bus + interrupt plumbing.
 *
 * A Host is the hardware a NIC plugs into and an operating-system module
 * (the U-Net/FE kernel agent or the U-Net/ATM device driver) runs on.
 */

#ifndef UNET_HOST_HOST_HH
#define UNET_HOST_HOST_HH

#include <memory>
#include <string>

#include "host/bus.hh"
#include "host/cpu.hh"
#include "host/cpu_spec.hh"
#include "host/interrupts.hh"
#include "host/memory.hh"
#include "sim/process.hh"
#include "sim/simulation.hh"

namespace unet::host {

/** A complete workstation node. */
class Host
{
  public:
    /**
     * @param sim      Owning simulation.
     * @param name     Diagnostic name ("node0").
     * @param cpu_spec Processor model.
     * @param bus_spec I/O bus model.
     * @param mem_size Host memory arena size in bytes.
     */
    Host(sim::Simulation &sim, std::string name, CpuSpec cpu_spec,
         BusSpec bus_spec, std::size_t mem_size = 8 * 1024 * 1024)
        : _sim(sim), _name(std::move(name)),
          _cpu(sim, std::move(cpu_spec), _name + ".cpu"),
          _bus(sim, std::move(bus_spec)), _memory(mem_size)
    {}

    Host(const Host &) = delete;
    Host &operator=(const Host &) = delete;

    sim::Simulation &simulation() { return _sim; }
    const std::string &name() const { return _name; }
    Cpu &cpu() { return _cpu; }
    Bus &bus() { return _bus; }
    Memory &memory() { return _memory; }

    /** Create an interrupt line wired to this host's CPU. */
    std::unique_ptr<InterruptLine>
    makeInterruptLine(const std::string &line_name)
    {
        return std::make_unique<InterruptLine>(
            _sim, _cpu, _name + "." + line_name);
    }

    /** Charge fast-trap entry to the calling process. */
    void
    trapEnter(sim::Process &proc)
    {
        _cpu.busy(proc, _cpu.spec().trapEntryCost);
    }

    /** Charge fast-trap exit to the calling process. */
    void
    trapExit(sim::Process &proc)
    {
        _cpu.busy(proc, _cpu.spec().trapExitCost);
    }

  private:
    sim::Simulation &_sim;
    std::string _name;
    Cpu _cpu;
    Bus _bus;
    Memory _memory;
};

} // namespace unet::host

#endif // UNET_HOST_HOST_HH
