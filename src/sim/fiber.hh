/**
 * @file
 * Cooperative user-level fibers built on ucontext.
 *
 * Fibers let application code in the simulator (ping-pong loops, Split-C
 * benchmarks) be written as blocking straight-line code. Exactly one
 * fiber runs at a time on a single OS thread; the event loop resumes a
 * fiber with run() and the fiber returns control with yield(). There is
 * no preemption and no shared-state race by construction.
 */

#ifndef UNET_SIM_FIBER_HH
#define UNET_SIM_FIBER_HH

#include <ucontext.h>

#include <cstddef>
#include <exception>
#include <functional>

#include "sim/pool.hh"

namespace unet::sim {

/**
 * A single cooperative fiber.
 *
 * The body runs on its own stack. run() switches into the fiber until it
 * either calls yield() or returns; finished() reports completion.
 * Destroying an unfinished fiber is allowed (its stack is simply freed),
 * but the body will not run further — destructors of locals on the fiber
 * stack do NOT execute, so bodies should not own resources across yields
 * unless the fiber is run to completion.
 */
class Fiber
{
  public:
    /**
     * @param body       Function executed on the fiber.
     * @param stack_size Stack size in bytes (default 256 KiB).
     */
    explicit Fiber(std::function<void()> body,
                   std::size_t stack_size = 256 * 1024);

    ~Fiber();

    Fiber(const Fiber &) = delete;
    Fiber &operator=(const Fiber &) = delete;

    /**
     * Switch into the fiber until it yields or finishes.
     * Must not be called from inside any fiber (no nesting) and must not
     * be called on a finished fiber.
     *
     * An exception escaping the body cannot unwind across the context
     * switch; it is captured on the fiber stack and rethrown here, in
     * the caller's context, after the fiber is marked finished.
     */
    void run();

    /**
     * Return control to the caller of run(). Must be called from inside
     * this fiber (i.e. from the currently running fiber).
     */
    static void yield();

    /** True once the body has returned. */
    bool finished() const { return done; }

    /** The fiber currently executing, or nullptr if in the main context. */
    static Fiber *current();

  private:
    static void trampoline();

    /** Verify the stack-overflow canary at the low end of the stack. */
    void checkCanary() const;

    std::function<void()> body;
    /** Pooled stack storage: acquired unzeroed from a per-thread free
     *  list and returned on destruction, so fiber churn does not pay
     *  an mmap + page-fault cycle per spawn. Stacks need no zeroing —
     *  makecontext overwrites what it uses. */
    RecycledBuffer stack;
    ucontext_t context;
    ucontext_t returnContext;
    bool started = false;
    bool done = false;
    /** Exception that escaped the body, rethrown by run(). */
    std::exception_ptr pendingException;

    /** @name ASan fiber-switch bookkeeping (unused without ASan).
     *
     * ASan shadows each fiber stack with a "fake stack"; every ucontext
     * switch must be bracketed by __sanitizer_start_switch_fiber /
     * __sanitizer_finish_switch_fiber or ASan attributes the fiber's
     * frames to the caller's stack and every fiber test false-positives.
     * @{ */
    void *asanFakeStack = nullptr;       ///< this fiber's fake stack
    const void *asanCallerStack = nullptr; ///< resuming context's stack
    std::size_t asanCallerSize = 0;
    /** @} */

    /** @name TSan fiber bookkeeping (unused without TSan).
     *
     * TSan likewise cannot follow a raw swapcontext: each fiber needs
     * its own TSan context (__tsan_create_fiber) and every switch must
     * be announced with __tsan_switch_to_fiber, or the race detector
     * attributes one fiber's accesses to another's vector clock and
     * floods the run with false reports.
     * @{ */
    void *tsanFiber = nullptr;  ///< this fiber's TSan context
    void *tsanCaller = nullptr; ///< TSan context run() switched from
    /** @} */
};

} // namespace unet::sim

#endif // UNET_SIM_FIBER_HH
