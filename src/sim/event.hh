/**
 * @file
 * The discrete-event queue at the heart of the simulator.
 *
 * Events are arbitrary callbacks scheduled at an absolute tick. Events
 * scheduled for the same tick fire in scheduling order (FIFO), which keeps
 * runs deterministic. Scheduled events can be cancelled through the
 * EventHandle returned at scheduling time.
 */

#ifndef UNET_SIM_EVENT_HH
#define UNET_SIM_EVENT_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <string>
#include <vector>

#include "sim/time.hh"

namespace unet::sim {

/**
 * A cancellable reference to a scheduled event.
 *
 * Handles are cheap to copy; cancelling an already-fired or
 * already-cancelled event is a harmless no-op. A default-constructed
 * handle refers to nothing.
 */
class EventHandle
{
  public:
    EventHandle() = default;

    /** True if this handle refers to an event that has not yet fired. */
    bool pending() const;

    /** Cancel the referenced event if it is still pending. */
    void cancel();

  private:
    friend class EventQueue;

    struct Record
    {
        Tick when = 0;
        std::uint64_t seq = 0;
        bool cancelled = false;
        bool fired = false;
        std::function<void()> action;
    };

    explicit EventHandle(std::shared_ptr<Record> rec)
        : record(std::move(rec))
    {}

    std::shared_ptr<Record> record;
};

/**
 * Priority queue of timed events plus the simulated clock.
 *
 * The clock only advances when events fire; scheduling in the past is a
 * simulator bug and panics.
 */
class EventQueue
{
  public:
    EventQueue() = default;

    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Tick now() const { return _now; }

    /** Number of events that have fired so far. */
    std::uint64_t firedCount() const { return _firedCount; }

    /** Number of events currently pending (including cancelled ones). */
    std::size_t pendingCount() const { return heap.size(); }

    /**
     * Schedule @p action to fire at absolute time @p when.
     *
     * @param when   Absolute tick; must be >= now().
     * @param action Callback invoked when the event fires.
     * @return a handle that can cancel the event.
     */
    EventHandle schedule(Tick when, std::function<void()> action);

    /** Schedule @p action to fire @p delay ticks from now. */
    EventHandle
    scheduleIn(Tick delay, std::function<void()> action)
    {
        return schedule(_now + delay, std::move(action));
    }

    /**
     * Fire the next pending event, advancing the clock to its time.
     * @return false if the queue was empty.
     */
    bool step();

    /** Run until the queue drains. @return the final simulated time. */
    Tick run();

    /**
     * Run until the queue drains or the clock would pass @p limit.
     * Events scheduled at exactly @p limit do fire.
     * @return the final simulated time.
     */
    Tick runUntil(Tick limit);

    /** True if no uncancelled event is pending. */
    bool empty() const;

  private:
    struct HeapEntry
    {
        Tick when;
        std::uint64_t seq;
        std::shared_ptr<EventHandle::Record> record;

        bool
        operator>(const HeapEntry &other) const
        {
            if (when != other.when)
                return when > other.when;
            return seq > other.seq;
        }
    };

    std::priority_queue<HeapEntry, std::vector<HeapEntry>,
                        std::greater<HeapEntry>> heap;

    Tick _now = 0;
    std::uint64_t nextSeq = 0;
    std::uint64_t _firedCount = 0;
};

} // namespace unet::sim

#endif // UNET_SIM_EVENT_HH
