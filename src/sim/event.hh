/**
 * @file
 * The discrete-event queue at the heart of the simulator.
 *
 * Events are arbitrary callbacks scheduled at an absolute tick. Events
 * scheduled for the same tick fire in scheduling order (FIFO), which keeps
 * runs deterministic. Scheduled events can be cancelled through the
 * EventHandle returned at scheduling time.
 *
 * Under the UNET_PERTURB run mode (sim/perturb.hh) the same-tick order
 * of events not annotated Order::dependent is deterministically
 * permuted per salt — the determinism auditor's race detector. Models
 * must produce identical simulated results under every salt.
 *
 * The queue is allocation-free in steady state: event records live in a
 * slab of fixed-size slots threaded on a free list, and callables whose
 * captures fit the small-buffer area (EventQueue::sboBytes) are stored
 * in-place in the record. Larger callables fall back to one heap
 * allocation each; heapCallableAllocs() counts them so benchmarks and
 * tests can assert the hot paths stay on the inline route. Handles carry
 * the record's schedule-time sequence number as a generation tag, so a
 * stale handle (its event fired or was cancelled, and the slot may have
 * been reused) is always a harmless no-op.
 */

#ifndef UNET_SIM_EVENT_HH
#define UNET_SIM_EVENT_HH

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/perturb.hh"
#include "sim/time.hh"

namespace unet::sim {

class EventQueue;
class Process;

/**
 * A cancellable reference to a scheduled event.
 *
 * Handles are cheap to copy; cancelling an already-fired or
 * already-cancelled event is a harmless no-op. A default-constructed
 * handle refers to nothing.
 */
class EventHandle
{
  public:
    EventHandle() = default;

    /** True if this handle refers to an event that has not yet fired. */
    bool pending() const;

    /** Cancel the referenced event if it is still pending. */
    void cancel();

  private:
    friend class EventQueue;

    EventHandle(EventQueue *queue, std::uint32_t slot, std::uint64_t seq)
        : queue(queue), slot(slot), seq(seq)
    {}

    EventQueue *queue = nullptr;
    std::uint32_t slot = 0;
    std::uint64_t seq = 0;
};

/**
 * Same-tick scheduling controller: the model checker's choice point.
 *
 * When installed on an EventQueue, every step() where more than one
 * event is eligible to fire first becomes an explicit decision: the
 * queue collects the eligible set — each pending Order::permutable
 * event at the minimum tick, plus the earliest-scheduled
 * Order::dependent event at that tick (firing a later dependent event
 * first would break the documented FIFO contract among dependents) —
 * sorts it by scheduling sequence number (so index 0 reproduces the
 * unperturbed FIFO schedule), and asks the arbiter which fires. The
 * schedule-space explorer in src/check/explore/ implements this
 * interface to enumerate interleavings; the salted tie-break keys are
 * bypassed entirely while an arbiter is installed.
 */
class ScheduleArbiter
{
  public:
    /** One eligible event at a choice point. */
    struct Candidate
    {
        Tick when;         ///< the minimum pending tick
        std::uint64_t seq; ///< schedule-time sequence number
        Order order;
    };

    virtual ~ScheduleArbiter() = default;

    /**
     * Choose which candidate fires next. Called only when at least two
     * events are eligible; @p candidates is sorted by seq ascending.
     * @return an index into @p candidates.
     */
    virtual std::size_t
    pick(Tick now, const std::vector<Candidate> &candidates) = 0;
};

/**
 * Observer of the scheduler's true ordering edges.
 *
 * Where ScheduleArbiter *decides* same-tick order, a TaskObserver
 * merely *watches* the edges that order work: an event's scheduling
 * context happens-before its firing, and a fiber's resume/suspend
 * brackets nest inside the event that resumed it. The happens-before
 * race auditor (src/check/hb/) implements this interface to maintain
 * vector clocks; the hooks are null-checked pointers, so an
 * uninstrumented run pays one branch per site.
 *
 * Hook contract: onEventScheduled() fires inside schedule(), in the
 * scheduling context; onEventFireBegin()/onEventFireEnd() bracket the
 * callback (End fires even when the callback throws); cancelled events
 * get onEventCancelled() instead of the fire pair. The fiber hooks
 * bracket Process::resume()'s transfer into the fiber and receive the
 * process so the observer can read its id and shard domain.
 */
class TaskObserver
{
  public:
    virtual ~TaskObserver() = default;

    virtual void onEventScheduled(std::uint64_t seq, Tick when,
                                  Order order) = 0;
    virtual void onEventFireBegin(std::uint64_t seq, Tick when,
                                  Order order) = 0;
    virtual void onEventFireEnd(std::uint64_t seq) = 0;
    virtual void onEventCancelled(std::uint64_t seq) = 0;

    virtual void onFiberResume(Process &proc) = 0;
    virtual void onFiberSuspend(Process &proc) = 0;
};

/**
 * Priority queue of timed events plus the simulated clock.
 *
 * The clock only advances when events fire; scheduling in the past is a
 * simulator bug and panics.
 */
class EventQueue
{
  public:
    /** Callables up to this capture size are stored in the record. */
    static constexpr std::size_t sboBytes = 64;

    EventQueue() = default;
    ~EventQueue();

    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Tick now() const { return _now; }

    /** Number of events that have fired so far. */
    std::uint64_t firedCount() const { return _firedCount; }

    /** Number of live (scheduled, uncancelled, unfired) events. */
    std::size_t pendingCount() const { return _livePending; }

    /**
     * Schedule @p action to fire at absolute time @p when.
     *
     * @param when   Absolute tick; must be >= now().
     * @param action Callback invoked when the event fires. Captures up
     *               to sboBytes are stored inline in a pooled record;
     *               larger ones cost one heap allocation.
     * @param order  Order::permutable (default) lets perturbation mode
     *               reorder this event within its tick; annotate
     *               Order::dependent only for documented intra-tick
     *               ordering contracts (see sim/perturb.hh).
     * @return a handle that can cancel the event.
     */
    template <typename F>
    EventHandle
    schedule(Tick when, F &&action, Order order = Order::permutable)
    {
        using Fn = std::decay_t<F>;
        if constexpr (requires { static_cast<bool>(action); }) {
            if (!static_cast<bool>(action))
                panicEmptyAction();
        }
        if (when < _now)
            panicPastEvent(when);

        std::uint32_t slot = allocSlot();
        Record &rec = recordAt(slot);
        rec.when = when;
        rec.seq = nextSeq++;
        rec.order = order;
        rec.state = Record::State::pending;
        if constexpr (sizeof(Fn) <= sboBytes &&
                      alignof(Fn) <= alignof(std::max_align_t)) {
            ::new (static_cast<void *>(rec.store))
                Fn(std::forward<F>(action));
            rec.call = &callInline<Fn>;
            rec.drop = std::is_trivially_destructible_v<Fn>
                ? nullptr : &dropInline<Fn>;
        } else {
            auto *fn = new Fn(std::forward<F>(action));
            ::new (static_cast<void *>(rec.store)) Fn *(fn);
            rec.call = &callHeap<Fn>;
            rec.drop = &dropHeap<Fn>;
            ++_heapCallableAllocs;
        }
        // The same-tick tie-break key. Unperturbed (or order-dependent)
        // events keep their sequence number: exact FIFO. Under a salt,
        // permutable events get a scrambled key, which permutes each
        // tick's firing order deterministically per salt.
        std::uint64_t key =
            (order == Order::dependent || _perturbSalt == 0)
                ? rec.seq
                : perturb::mix(_perturbSalt, rec.seq);
        pushHeap(HeapEntry{when, key, rec.seq, slot});
        ++_livePending;
        if (_taskObserver) [[unlikely]]
            _taskObserver->onEventScheduled(rec.seq, when, order);
        return EventHandle(this, slot, rec.seq);
    }

    /** Schedule @p action to fire @p delay ticks from now. */
    template <typename F>
    EventHandle
    scheduleIn(Tick delay, F &&action, Order order = Order::permutable)
    {
        return schedule(_now + delay, std::forward<F>(action), order);
    }

    /**
     * Fire the next pending event, advancing the clock to its time.
     * @return false if the queue was empty.
     */
    bool
    step()
    {
        if (_arbiter) [[unlikely]]
            return stepChoice();
        while (!heap.empty()) {
            HeapEntry entry = heap.front();
            popHeap();
            Record &rec = recordAt(entry.slot);
            if (rec.seq != entry.seq ||
                rec.state != Record::State::pending) {
                --_deadInHeap;
                continue;
            }
            fireEntry(entry);
            return true;
        }
        return false;
    }

    /** Run until the queue drains. @return the final simulated time. */
    Tick run();

    /**
     * Run until the queue drains or the clock would pass @p limit.
     * Events scheduled at exactly @p limit do fire.
     * @return the final simulated time.
     */
    Tick runUntil(Tick limit);

    /** True if no uncancelled event is pending. */
    bool empty() const { return _livePending == 0; }

    /** @name Schedule perturbation (determinism auditing). @{ */

    /** The active perturbation salt (0 = FIFO, no perturbation). */
    std::uint64_t perturbSalt() const { return _perturbSalt; }

    /**
     * Override the salt latched from perturb::salt() at construction.
     * Only legal while the queue is completely idle (nothing pending,
     * nothing fired): already-heaped entries carry keys computed under
     * the old salt.
     */
    void setPerturbSalt(std::uint64_t salt);

    /** @} */

    /** @name Model checking (src/check/explore/). @{ */

    /** The installed same-tick arbiter, or nullptr. */
    ScheduleArbiter *arbiter() const { return _arbiter; }

    /**
     * Install (or clear, with nullptr) the same-tick choice-point
     * arbiter. Takes effect on the next step(); while installed, the
     * salted tie-break keys are ignored and the arbiter alone decides
     * same-tick order.
     */
    void setArbiter(ScheduleArbiter *arbiter) { _arbiter = arbiter; }

    /** The installed ordering-edge observer, or nullptr. */
    TaskObserver *taskObserver() const { return _taskObserver; }

    /**
     * Install (or clear, with nullptr) the ordering-edge observer.
     * Composes with an arbiter: arbitrated fires report through the
     * same fireEntry() bracket as salted ones.
     */
    void setTaskObserver(TaskObserver *observer)
    {
        _taskObserver = observer;
    }

    /**
     * The multiset of live pending events as (when - now, order)
     * pairs, sorted. Feeds the explorer's state digests: sequence
     * numbers are deliberately excluded because they encode schedule
     * history, and two states reached by different interleavings must
     * digest equal when their futures are indistinguishable.
     */
    std::vector<std::pair<Tick, Order>> pendingProfile() const;

    /** @} */

    /** @name Pool introspection (perf tests and benchmarks). @{ */

    /** Record slots ever allocated (slab capacity, in records). */
    std::size_t poolCapacity() const { return chunks.size() * chunkRecords; }

    /** Callables too big for the inline area (each cost one heap
     *  allocation). */
    std::uint64_t heapCallableAllocs() const { return _heapCallableAllocs; }

    /** Times the heap was rebuilt to purge cancelled entries. */
    std::uint64_t compactions() const { return _compactions; }

    /** @} */

  private:
    friend class EventHandle;

    static constexpr std::size_t chunkRecords = 256;
    static constexpr std::uint32_t noSlot = ~std::uint32_t{0};

    /** One pooled event: timing, generation tag, and callable storage. */
    struct Record
    {
        enum class State : std::uint8_t { free, pending, firing };

        Tick when = 0;
        std::uint64_t seq = 0;       ///< doubles as the generation tag
        std::uint32_t nextFree = noSlot;
        State state = State::free;
        Order order = Order::permutable; ///< read at choice points
        void (*call)(Record &) = nullptr;
        void (*drop)(Record &) = nullptr;
        alignas(std::max_align_t) std::byte store[sboBytes];
    };

    struct HeapEntry
    {
        Tick when;
        std::uint64_t key; ///< same-tick tie-break (== seq unperturbed)
        std::uint64_t seq;
        std::uint32_t slot;
    };

    template <typename Fn>
    static void
    callInline(Record &rec)
    {
        (*std::launder(reinterpret_cast<Fn *>(rec.store)))();
    }

    template <typename Fn>
    static void
    dropInline(Record &rec)
    {
        std::launder(reinterpret_cast<Fn *>(rec.store))->~Fn();
    }

    template <typename Fn>
    static void
    callHeap(Record &rec)
    {
        (**std::launder(reinterpret_cast<Fn **>(rec.store)))();
    }

    template <typename Fn>
    static void
    dropHeap(Record &rec)
    {
        delete *std::launder(reinterpret_cast<Fn **>(rec.store));
    }

    Record &
    recordAt(std::uint32_t slot)
    {
        return chunks[slot / chunkRecords][slot % chunkRecords];
    }

    const Record &
    recordAt(std::uint32_t slot) const
    {
        return chunks[slot / chunkRecords][slot % chunkRecords];
    }

    /**
     * Min-heap order on (when, key, seq). Unperturbed, key == seq:
     * strict FIFO within a tick. Perturbed, permutable events carry a
     * salted key; seq breaks the (vanishingly rare) key collisions so
     * the schedule stays a total, reproducible order.
     */
    static bool
    laterThan(const HeapEntry &a, const HeapEntry &b)
    {
        if (a.when != b.when)
            return a.when > b.when;
        if (a.key != b.key)
            return a.key > b.key;
        return a.seq > b.seq;
    }

    [[noreturn]] static void panicEmptyAction();
    [[noreturn]] void panicPastEvent(Tick when) const;

    std::uint32_t
    allocSlot()
    {
        if (freeHead == noSlot)
            growPool();
        std::uint32_t slot = freeHead;
        freeHead = recordAt(slot).nextFree;
        return slot;
    }

    void
    releaseSlot(std::uint32_t slot)
    {
        Record &rec = recordAt(slot);
        rec.state = Record::State::free;
        rec.nextFree = freeHead;
        freeHead = slot;
    }

    /**
     * Releases a firing record on both exits: the callback's captures
     * are destroyed and the slot returns to the free list even when
     * the callback throws (panic-capture mode, sim/logging.hh).
     */
    struct FiringGuard
    {
        EventQueue &q;
        std::uint32_t slot;

        ~FiringGuard()
        {
            Record &rec = q.recordAt(slot);
            q.destroyAction(rec);
            q.releaseSlot(slot);
        }
    };

    /**
     * Closes the observer's fire bracket on both exits, so the
     * happens-before auditor's task stack stays balanced when a
     * callback throws (panic-capture mode). Declared after
     * FiringGuard in fireEntry(): the end hook runs before the
     * record's captures are destroyed.
     */
    struct ObserverFireGuard
    {
        TaskObserver *observer;
        std::uint64_t seq;

        ~ObserverFireGuard()
        {
            if (observer) [[unlikely]]
                observer->onEventFireEnd(seq);
        }
    };

    /** Advance the clock to @p entry and fire its record. */
    void
    fireEntry(const HeapEntry &entry)
    {
        Record &rec = recordAt(entry.slot);
        _now = entry.when;
        rec.state = Record::State::firing;
        --_livePending;
        ++_firedCount;
        // The slot stays off the free list while firing, so a callback
        // that schedules new events can never clobber the storage it is
        // executing from; its captures are destroyed after it returns
        // (or after an exception escapes it).
        FiringGuard guard{*this, entry.slot};
        ObserverFireGuard obsGuard{_taskObserver, entry.seq};
        if (_taskObserver) [[unlikely]]
            _taskObserver->onEventFireBegin(entry.seq, entry.when,
                                            rec.order);
        rec.call(rec);
    }

    void
    destroyAction(Record &rec)
    {
        // call/drop are left stale: every path that reads them first
        // checks the (seq, state) generation, and schedule() overwrites
        // them before arming a reused slot.
        if (rec.drop)
            rec.drop(rec);
    }

    /** Manual sift-up: inlines fully and writes the entry once. */
    void
    pushHeap(HeapEntry entry)
    {
        std::size_t i = heap.size();
        heap.push_back(entry);
        while (i > 0) {
            std::size_t parent = (i - 1) / 2;
            if (!laterThan(heap[parent], entry))
                break;
            heap[i] = heap[parent];
            i = parent;
        }
        heap[i] = entry;
    }

    /** Manual sift-down of the relocated tail entry. */
    void
    popHeap()
    {
        HeapEntry tail = heap.back();
        heap.pop_back();
        std::size_t n = heap.size();
        if (n == 0)
            return;
        std::size_t i = 0;
        for (;;) {
            std::size_t child = 2 * i + 1;
            if (child >= n)
                break;
            if (child + 1 < n && laterThan(heap[child], heap[child + 1]))
                ++child;
            if (!laterThan(tail, heap[child]))
                break;
            heap[i] = heap[child];
            i = child;
        }
        heap[i] = tail;
    }

    bool
    handlePending(std::uint32_t slot, std::uint64_t seq) const
    {
        if (slot >= poolCapacity())
            return false;
        const Record &rec = recordAt(slot);
        return rec.seq == seq && rec.state == Record::State::pending;
    }

    void
    cancelHandle(std::uint32_t slot, std::uint64_t seq)
    {
        if (!handlePending(slot, seq))
            return; // stale: fired, already cancelled, or slot reused
        if (_taskObserver) [[unlikely]]
            _taskObserver->onEventCancelled(seq);
        Record &rec = recordAt(slot);
        destroyAction(rec);
        releaseSlot(slot);
        --_livePending;
        // The heap entry stays behind (lazy deletion); it is skipped on
        // pop because the record's generation no longer matches.
        ++_deadInHeap;
        compactIfWorthwhile();
    }

    void growPool();
    void compactIfWorthwhile();

    /** The arbitrated slow path of step(): collect the eligible set at
     *  the minimum tick and fire the arbiter's choice. */
    bool stepChoice();

    /** Remove the entry at heap index @p i, restoring the heap
     *  property (replace with the tail, sift either direction). */
    void eraseHeapAt(std::size_t i);

    std::vector<std::unique_ptr<Record[]>> chunks;
    std::uint32_t freeHead = noSlot;
    std::vector<HeapEntry> heap;

    Tick _now = 0;
    ScheduleArbiter *_arbiter = nullptr;
    TaskObserver *_taskObserver = nullptr;
    std::uint64_t _perturbSalt = perturb::salt();
    std::uint64_t nextSeq = 0;
    std::uint64_t _firedCount = 0;
    std::size_t _livePending = 0;
    std::size_t _deadInHeap = 0;
    std::uint64_t _heapCallableAllocs = 0;
    std::uint64_t _compactions = 0;
};

inline bool
EventHandle::pending() const
{
    return queue && queue->handlePending(slot, seq);
}

inline void
EventHandle::cancel()
{
    if (queue)
        queue->cancelHandle(slot, seq);
}

/**
 * A reusable one-shot event owned by a model object.
 *
 * The callback is fixed at construction (one std::function set up once,
 * never per schedule); each scheduleAt()/scheduleIn() arms a fresh pooled
 * event that captures only a pointer to this object, so rescheduling on
 * a hot path is allocation-free. Re-arming while pending moves the event
 * (the old occurrence is cancelled). Not movable: the armed event points
 * back at this object.
 */
class MemberEvent
{
  public:
    /** @param order applied to every arming (see sim/perturb.hh). */
    template <typename F>
    MemberEvent(EventQueue &queue, F fn,
                Order order = Order::permutable)
        : queue(queue), fn(std::move(fn)), order(order)
    {}

    ~MemberEvent() { cancel(); }

    MemberEvent(const MemberEvent &) = delete;
    MemberEvent &operator=(const MemberEvent &) = delete;

    /** Arm (or move) the event to fire at absolute time @p when. */
    void
    scheduleAt(Tick when)
    {
        handle.cancel();
        handle = queue.schedule(when, Trampoline{this}, order);
    }

    /** Arm (or move) the event to fire @p delay ticks from now. */
    void scheduleIn(Tick delay) { scheduleAt(queue.now() + delay); }

    /** Disarm if pending. */
    void cancel() { handle.cancel(); }

    /** True while armed and unfired. */
    bool pending() const { return handle.pending(); }

  private:
    struct Trampoline
    {
        MemberEvent *event;
        void operator()() const { event->fn(); }
    };

    EventQueue &queue;
    std::function<void()> fn;
    Order order;
    EventHandle handle;
};

} // namespace unet::sim

#endif // UNET_SIM_EVENT_HH
