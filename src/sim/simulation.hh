/**
 * @file
 * Top-level simulation context: the event queue plus shared services.
 *
 * Every model component receives a Simulation& at construction. There are
 * no global singletons, so tests can run many independent simulations in
 * one binary.
 */

#ifndef UNET_SIM_SIMULATION_HH
#define UNET_SIM_SIMULATION_HH

#include <cstdint>
#include <functional>
#include <memory>

#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "sim/event.hh"
#include "sim/random.hh"
#include "sim/time.hh"

namespace unet::sim {

/** Shared simulation context: clock, event queue, and PRNG. */
class Simulation
{
  public:
    explicit Simulation(std::uint64_t seed = 1) : rng(seed) {}

    Simulation(const Simulation &) = delete;
    Simulation &operator=(const Simulation &) = delete;

    /** The event queue. */
    EventQueue &events() { return queue; }

    /** The shared deterministic PRNG. */
    Random &random() { return rng; }

    /** The metrics registry every component publishes into. */
    obs::Registry &metrics() { return registry; }
    const obs::Registry &metrics() const { return registry; }

    /**
     * The active trace session, or nullptr when tracing is disabled.
     * Hook sites test this pointer — that test is the entire runtime
     * cost of disabled tracing.
     */
    obs::TraceSession *trace() { return tracer.get(); }

    /** Turn on span recording (idempotent). @return the session. */
    obs::TraceSession &
    enableTrace(std::size_t capacity = 1 << 16)
    {
        if (!tracer)
            tracer = std::make_unique<obs::TraceSession>(capacity,
                                                         &registry);
        return *tracer;
    }

    /** Current simulated time. */
    Tick now() const { return queue.now(); }

    /** Schedule @p action at absolute time @p when. */
    template <typename F>
    EventHandle
    schedule(Tick when, F &&action, Order order = Order::permutable)
    {
        return queue.schedule(when, std::forward<F>(action), order);
    }

    /** Schedule @p action @p delay ticks from now. */
    template <typename F>
    EventHandle
    scheduleIn(Tick delay, F &&action, Order order = Order::permutable)
    {
        return queue.scheduleIn(delay, std::forward<F>(action), order);
    }

    /** Run to completion. @return final time. */
    Tick run() { return queue.run(); }

    /** Run until @p limit. @return final time. */
    Tick runUntil(Tick limit) { return queue.runUntil(limit); }

    /**
     * Allocate the next stable process id (Process::id()). Ids follow
     * construction order, which is part of the deterministic program —
     * unlike Process addresses, which vary with pool perturbation.
     */
    std::uint64_t nextProcessId() { return _nextProcessId++; }

    /**
     * Commutative fiber-progress accumulator: Process::resume() folds
     * a (process id, resume count) token in on every resume. Two
     * states that agree on time/events/metrics but differ in how far
     * each fiber has run disagree here, so schedule-space explorers
     * can mix it into their state digests. Addition keeps the sum
     * independent of resume interleaving order within a tick.
     */
    void noteFiberProgress(std::uint64_t token) { _fiberProgress += token; }
    std::uint64_t fiberProgress() const { return _fiberProgress; }

    /**
     * Commutative suspension-point accumulator: each fiber blocked
     * inside delay()/waitOn() holds a (process id, suspension kind)
     * token here for exactly the duration of the suspension
     * (Process::SuspendToken). fiberProgress() counts *how often* each
     * fiber has run; this digest captures *why* each suspended fiber
     * is parked — two states identical in time, pending events, and
     * resume counts can still differ in whether a fiber is sleeping or
     * awaiting a notify, and schedule-space pruning must not conflate
     * them (a notifyAll() resumes one and not the other). Addition
     * keeps the sum independent of suspension interleaving order.
     */
    void noteSuspendPoint(std::uint64_t token) { _suspendDigest += token; }
    void clearSuspendPoint(std::uint64_t token) { _suspendDigest -= token; }
    std::uint64_t suspensionDigest() const { return _suspendDigest; }

  private:
    EventQueue queue;
    std::uint64_t _nextProcessId = 0;
    std::uint64_t _fiberProgress = 0;
    std::uint64_t _suspendDigest = 0;
    Random rng;
    // registry before tracer: the session deregisters its trace.*
    // metrics in its destructor, so it must die first.
    obs::Registry registry;
    std::unique_ptr<obs::TraceSession> tracer;
};

} // namespace unet::sim

#endif // UNET_SIM_SIMULATION_HH
