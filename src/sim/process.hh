/**
 * @file
 * Blocking processes on top of fibers and the event queue.
 *
 * A Process runs a body function on a fiber. Inside the body, delay()
 * advances simulated time and waitOn() blocks until a WaitChannel is
 * notified (optionally with a timeout). This is the substrate on which
 * user applications — ping-pong loops, Split-C programs — are written as
 * ordinary sequential code.
 */

#ifndef UNET_SIM_PROCESS_HH
#define UNET_SIM_PROCESS_HH

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "sim/event.hh"
#include "sim/fiber.hh"
#include "sim/simulation.hh"
#include "sim/time.hh"

namespace unet::sim {

class Process;

/**
 * A condition processes can block on.
 *
 * notifyAll() wakes every currently-blocked process; each resumes at the
 * current tick, in the order it blocked. There is no stored "signal":
 * a notify with no waiters is lost, so callers must re-check their
 * predicate after waking (standard condition-variable discipline).
 */
class WaitChannel
{
  public:
    /** Wake all processes currently blocked on this channel. */
    void notifyAll();

    /** Number of processes currently blocked. */
    std::size_t waiterCount() const { return waiters.size(); }

  private:
    friend class Process;
    std::vector<Process *> waiters;
};

/**
 * A simulated thread of control.
 *
 * The body runs when start() is called (or after the given delay) and
 * interleaves with the rest of the simulation whenever it blocks.
 */
class Process
{
  public:
    /**
     * @param sim        Owning simulation.
     * @param name       Diagnostic name.
     * @param body       Code to run; receives this process.
     * @param stack_size Fiber stack in bytes (default 256 KiB); raise
     *                   it for deeply nested handler chains.
     */
    Process(Simulation &sim, std::string name,
            std::function<void(Process &)> body,
            std::size_t stack_size = 256 * 1024);

    ~Process();

    Process(const Process &) = delete;
    Process &operator=(const Process &) = delete;

    /** Begin execution @p delay ticks from now. */
    void start(Tick delay = 0);

    /** True once the body has returned. */
    bool finished() const { return fiber && fiber->finished(); }

    const std::string &name() const { return _name; }

    /**
     * Stable id, allocated from the owning simulation in construction
     * order. Use this — never the Process address — as a map key:
     * addresses vary across perturbation salts, ids do not.
     */
    std::uint64_t id() const { return _id; }

    /**
     * Declare which shard of the planned parallel simulation this
     * fiber belongs to (by convention the host name, or a "fabric.*"
     * name for switch/hub-side work). The happens-before auditor
     * treats unordered accesses from two *different* non-empty domains
     * as latent cross-shard races; an unbound fiber (empty domain) is
     * a benign wildcard. Purely diagnostic — no simulation behavior
     * reads it.
     */
    void bindShardDomain(std::string domain)
    {
        _shardDomain = std::move(domain);
    }
    const std::string &shardDomain() const { return _shardDomain; }

    Simulation &simulation() { return sim; }

    /** The process currently executing, or nullptr. */
    static Process *current();

    /**
     * @name Blocking operations — only callable from inside the body.
     * @{
     */

    /** Advance simulated time by @p d while "running". */
    void delay(Tick d);

    /** Block until @p ch is notified. */
    void waitOn(WaitChannel &ch);

    /**
     * Block until @p ch is notified or @p timeout elapses.
     * @return true if notified, false on timeout.
     */
    bool waitOn(WaitChannel &ch, Tick timeout);

    /** Yield to other same-tick activity and resume immediately. */
    void yieldNow();

    /** @} */

  private:
    friend class WaitChannel;

    /** Resume the fiber from the event loop. */
    void resume();

    /** Yield out of the fiber back to the event loop. */
    void suspend();

    /**
     * Why the fiber is currently suspended, as a digest token mixed
     * into Simulation::suspensionDigest() (0 while running/unstarted).
     * Distinct suspension reasons at the same point of progress —
     * delay() vs waitOn() with a timeout — leave identical event
     * queues and resume counters; this token is what still tells them
     * apart in the explorer's pruning digest.
     */
    enum SuspendKind : std::uint64_t
    {
        suspendDelay = 1,
        suspendWait = 2,
        suspendWaitTimeout = 3,
    };

    /** RAII suspension-point token around a suspend() call. */
    class SuspendToken
    {
      public:
        SuspendToken(Process &p, SuspendKind kind);
        ~SuspendToken();

        SuspendToken(const SuspendToken &) = delete;
        SuspendToken &operator=(const SuspendToken &) = delete;

      private:
        Process &p;
        std::uint64_t token;
    };

    Simulation &sim;
    std::string _name;
    std::uint64_t _id;
    std::string _shardDomain;
    std::function<void(Process &)> body;
    std::size_t stackSize;
    std::unique_ptr<Fiber> fiber;
    bool started = false;
    std::uint64_t _resumeCount = 0;

    // Wakeup bookkeeping for waitOn with timeout.
    bool wokenByNotify = false;
    EventHandle timeoutEvent;
};

} // namespace unet::sim

#endif // UNET_SIM_PROCESS_HH
