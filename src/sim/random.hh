/**
 * @file
 * Deterministic pseudo-random numbers for the simulator.
 *
 * All stochastic behaviour (Ethernet backoff, workload key generation,
 * loss injection) draws from a seeded Random instance so that runs are
 * reproducible bit-for-bit.
 */

#ifndef UNET_SIM_RANDOM_HH
#define UNET_SIM_RANDOM_HH

#include <cstdint>
#include <random>

namespace unet::sim {

/** A seeded PRNG with the handful of draws the simulator needs. */
class Random
{
  public:
    explicit Random(std::uint64_t seed = 1) : engine(seed) {}

    /** Re-seed the generator. */
    void seed(std::uint64_t s) { engine.seed(s); }

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t
    uniform(std::int64_t lo, std::int64_t hi)
    {
        std::uniform_int_distribution<std::int64_t> dist(lo, hi);
        return dist(engine);
    }

    /** Uniform 32-bit value. */
    std::uint32_t
    u32()
    {
        return static_cast<std::uint32_t>(engine());
    }

    /** Uniform 64-bit value. */
    std::uint64_t u64() { return engine(); }

    /** Uniform double in [0, 1). */
    double
    uniform01()
    {
        std::uniform_real_distribution<double> dist(0.0, 1.0);
        return dist(engine);
    }

    /** Bernoulli draw with probability @p p of true. */
    bool
    chance(double p)
    {
        return uniform01() < p;
    }

    /** Exponentially distributed value with the given mean. */
    double
    exponential(double mean)
    {
        std::exponential_distribution<double> dist(1.0 / mean);
        return dist(engine);
    }

    /** Access the raw engine (for std::shuffle and friends). */
    std::mt19937_64 &raw() { return engine; }

  private:
    std::mt19937_64 engine;
};

} // namespace unet::sim

#endif // UNET_SIM_RANDOM_HH
