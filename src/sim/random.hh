/**
 * @file
 * Deterministic pseudo-random numbers for the simulator.
 *
 * All stochastic behaviour (Ethernet backoff, workload key generation,
 * loss injection) draws from a seeded Random instance so that runs are
 * reproducible bit-for-bit.
 */

#ifndef UNET_SIM_RANDOM_HH
#define UNET_SIM_RANDOM_HH

#include <cmath>
#include <cstdint>
#include <random>

namespace unet::sim {

/** A seeded PRNG with the handful of draws the simulator needs. */
class Random
{
  public:
    explicit Random(std::uint64_t seed = 1) : engine(seed) {}

    /** Re-seed the generator. */
    void seed(std::uint64_t s) { engine.seed(s); }

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t
    uniform(std::int64_t lo, std::int64_t hi)
    {
        std::uniform_int_distribution<std::int64_t> dist(lo, hi);
        return dist(engine);
    }

    /** Uniform 32-bit value. */
    std::uint32_t
    u32()
    {
        return static_cast<std::uint32_t>(engine());
    }

    /** Uniform 64-bit value. */
    std::uint64_t u64() { return engine(); }

    /** Uniform double in [0, 1). */
    double
    uniform01()
    {
        std::uniform_real_distribution<double> dist(0.0, 1.0);
        return dist(engine);
    }

    /** Bernoulli draw with probability @p p of true. */
    bool
    chance(double p)
    {
        return uniform01() < p;
    }

    /** Exponentially distributed value with the given mean. */
    double
    exponential(double mean)
    {
        std::exponential_distribution<double> dist(1.0 / mean);
        return dist(engine);
    }

    /**
     * Exponentially distributed inter-arrival gap in ticks, for
     * deterministic Poisson arrival processes.
     *
     * Uses an explicit inverse-CDF transform over one raw engine draw
     * rather than std::exponential_distribution, whose draw count per
     * variate is implementation-defined: the stream is a pure function
     * of the seed, so load generators stay bit-stable across library
     * versions and under UNET_PERTURB (the salt permutes same-tick
     * event order, never PRNG streams). Returns at least 1 tick so an
     * arrival process always makes forward progress.
     */
    std::int64_t
    exponentialTicks(std::int64_t meanTicks)
    {
        // (engine() >> 11) * 2^-53 is uniform on [0, 1); flip it to
        // (0, 1] so log() never sees zero.
        double u =
            1.0 - std::ldexp(static_cast<double>(engine() >> 11), -53);
        double gap = -static_cast<double>(meanTicks) * std::log(u);
        // ~36.7 * mean caps the tail (probability ~1e-16 per draw);
        // keeps the cast below well-defined for any sane mean.
        double cap = static_cast<double>(meanTicks) * 53.0 * 0.6931471805599453;
        if (gap > cap)
            gap = cap;
        auto ticks = static_cast<std::int64_t>(gap);
        return ticks < 1 ? 1 : ticks;
    }

    /** Access the raw engine (for std::shuffle and friends). */
    std::mt19937_64 &raw() { return engine; }

  private:
    std::mt19937_64 engine;
};

} // namespace unet::sim

#endif // UNET_SIM_RANDOM_HH
