/**
 * @file
 * Schedule-perturbation run mode (the dynamic half of the determinism
 * auditor).
 *
 * A run of the simulator is supposed to be a pure function of its seed:
 * same-tick events fire in scheduling order, pools recycle
 * deterministically, and nothing observes host addresses or wall-clock
 * time. Nothing *enforces* that, though — a model that accidentally
 * depends on same-tick insertion order, or keys behaviour off a pointer
 * value, produces bit-identical runs every time and passes every golden
 * test while being one refactor away from irreproducibility.
 *
 * Perturbation mode makes such latent order dependencies fail loudly:
 * with a nonzero perturbation salt,
 *
 *  - the EventQueue permutes the firing order of same-tick events that
 *    are not annotated Order::dependent (a seeded, deterministic
 *    permutation — every salt yields one reproducible schedule);
 *  - the event-record pool threads its free lists in a salted order, so
 *    record slot numbers differ between salts;
 *  - the RecycledBuffer pool (fiber stacks, host memory arenas) picks
 *    among reusable blocks pseudo-randomly and pads fresh allocations,
 *    so data-structure addresses differ between salts.
 *
 * A model with no hidden order/address dependence produces *identical
 * simulated results* (ticks, metrics, traces) under every salt; the
 * determinism suites assert exactly that. Any digest divergence across
 * salts is a reproducibility bug — the cooperative-scheduling analogue
 * of a data race.
 *
 * The salt is process-wide (pools are per-thread, and benches need to
 * be perturbable without code changes): it is read once from the
 * UNET_PERTURB environment variable, and tests override it around
 * simulation construction with Perturb::ScopedSalt. An EventQueue
 * latches the salt at construction time.
 */

#ifndef UNET_SIM_PERTURB_HH
#define UNET_SIM_PERTURB_HH

#include <cstdint>

namespace unet::sim {

/** Whether a scheduled event tolerates same-tick reordering. */
enum class Order : std::uint8_t {
    /**
     * Default: the event does not care where in its tick it fires
     * relative to other same-tick events. Perturbation mode is free to
     * permute it — if results change, the annotation (or the model) is
     * wrong.
     */
    permutable,
    /**
     * The event is part of a documented intra-tick ordering contract
     * (e.g. WaitChannel's FIFO wakeup fairness). Order-dependent events
     * keep exact scheduling order among themselves under every salt.
     * Annotate sparingly: every dependent event is exempted from the
     * race detector.
     */
    dependent,
};

/** Process-wide perturbation-salt plumbing. */
namespace perturb {

/**
 * The active salt; 0 means perturbation is off. Initialised from the
 * UNET_PERTURB environment variable (unset/empty/"0" = off) on first
 * use.
 */
std::uint64_t salt();

/** Override the process salt (tests). @return the previous salt. */
std::uint64_t setSalt(std::uint64_t salt);

/**
 * Mix a sequence number (or any counter) with a salt into a
 * well-scrambled 64-bit key (splitmix64 finalizer). mix(0, n) is NOT
 * the identity; callers gate on salt() themselves when the unperturbed
 * value must be the counter itself.
 */
constexpr std::uint64_t
mix(std::uint64_t salt, std::uint64_t n)
{
    std::uint64_t z = n + salt * 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

/**
 * Per-process counter distinguishing successive ring constructions
 * (the third perturbation axis: ring slot-reuse offsets). Each
 * unet::Ring built under a nonzero salt starts its head/tail cursor at
 * mix(salt, nextRingSequence()) % capacity instead of slot 0, so the
 * physical slot that serves a given logical push differs between salts.
 * Anything keying behaviour off a ring slot index (rather than ring
 * contents) then diverges across salts and trips the digest check.
 */
std::uint64_t nextRingSequence();

/** RAII salt override for tests: restores the previous salt. */
class ScopedSalt
{
  public:
    explicit ScopedSalt(std::uint64_t salt) : previous(setSalt(salt)) {}
    ~ScopedSalt() { setSalt(previous); }

    ScopedSalt(const ScopedSalt &) = delete;
    ScopedSalt &operator=(const ScopedSalt &) = delete;

  private:
    std::uint64_t previous;
};

} // namespace perturb

} // namespace unet::sim

#endif // UNET_SIM_PERTURB_HH
