#include "sim/logging.hh"

#include <cstdlib>
#include <iostream>
#include <stdexcept>

namespace unet::sim {

namespace {

LogLevel globalLevel = LogLevel::Warnings;

thread_local bool panicThrowsEnabled = false;

} // namespace

PanicException::PanicException(const char *file, int line,
                               const std::string &msg)
    : std::runtime_error(detail::format("panic: ", msg, "\n  at ", file,
                                        ":", line)),
      _file(file), _line(line), _message(msg)
{}

void
setPanicThrows(bool enabled)
{
    panicThrowsEnabled = enabled;
}

bool
panicThrows()
{
    return panicThrowsEnabled;
}

void
setLogLevel(LogLevel level)
{
    globalLevel = level;
}

LogLevel
logLevel()
{
    return globalLevel;
}

namespace detail {

void
panicImpl(const char *file, int line, const std::string &msg)
{
    if (panicThrowsEnabled)
        throw PanicException(file, line, msg);
    std::cerr << "panic: " << msg << "\n  at " << file << ":" << line
              << std::endl;
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::cerr << "fatal: " << msg << "\n  at " << file << ":" << line
              << std::endl;
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    if (globalLevel >= LogLevel::Warnings)
        std::cerr << "warn: " << msg << std::endl;
}

void
informImpl(const std::string &msg)
{
    if (globalLevel >= LogLevel::Info)
        std::cout << "info: " << msg << std::endl;
}

void
debugImpl(const std::string &msg)
{
    if (globalLevel >= LogLevel::Debug)
        std::cout << "debug: " << msg << std::endl;
}

} // namespace detail

} // namespace unet::sim
