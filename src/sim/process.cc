#include "sim/process.hh"

#include <algorithm>

#include "sim/logging.hh"
#include "sim/perturb.hh"

namespace unet::sim {

namespace {

thread_local Process *currentProcess = nullptr;

} // namespace

void
WaitChannel::notifyAll()
{
    // Swap out the waiter list first: a woken process may immediately
    // block on this channel again and must not be woken twice.
    std::vector<Process *> woken;
    woken.swap(waiters);
    for (Process *p : woken) {
        p->wokenByNotify = true;
        p->timeoutEvent.cancel();
        // Order::dependent: "each resumes ... in the order it blocked"
        // is this class's documented fairness contract, so the wakeup
        // events are exempt from schedule perturbation.
        p->simulation().scheduleIn(0, [p] { p->resume(); },
                                   Order::dependent);
    }
}

Process::Process(Simulation &sim, std::string name,
                 std::function<void(Process &)> body,
                 std::size_t stack_size)
    : sim(sim), _name(std::move(name)), _id(sim.nextProcessId()),
      body(std::move(body)), stackSize(stack_size)
{
    if (!this->body)
        UNET_PANIC("process '", _name, "' constructed with empty body");
}

Process::~Process() = default;

Process *
Process::current()
{
    return currentProcess;
}

void
Process::start(Tick delay)
{
    if (started)
        UNET_PANIC("process '", _name, "' started twice");
    started = true;
    fiber = std::make_unique<Fiber>([this] { body(*this); }, stackSize);
    sim.scheduleIn(delay, [this] { resume(); });
}

void
Process::resume()
{
    if (fiber->finished())
        UNET_PANIC("resuming finished process '", _name, "'");
    // Pure-history progress token: (id, nth-resume), mixed so distinct
    // processes and distinct resume counts land far apart.
    sim.noteFiberProgress(perturb::mix(_id, ++_resumeCount));
    TaskObserver *observer = sim.events().taskObserver();
    if (observer) [[unlikely]]
        observer->onFiberResume(*this);
    Process *prev = currentProcess;
    currentProcess = this;
    try {
        fiber->run();
    } catch (...) {
        // A captured panic from the fiber body (see Fiber::run) keeps
        // propagating toward the explorer's run loop; restore the
        // current-process slot on the way through.
        currentProcess = prev;
        if (observer) [[unlikely]]
            observer->onFiberSuspend(*this);
        throw;
    }
    currentProcess = prev;
    if (observer) [[unlikely]]
        observer->onFiberSuspend(*this);
}

Process::SuspendToken::SuspendToken(Process &p, SuspendKind kind)
    : p(p), token(perturb::mix(p._id, kind))
{
    p.sim.noteSuspendPoint(token);
}

Process::SuspendToken::~SuspendToken()
{
    p.sim.clearSuspendPoint(token);
}

void
Process::suspend()
{
    Fiber::yield();
}

void
Process::delay(Tick d)
{
    if (currentProcess != this)
        UNET_PANIC("delay() called from outside process '", _name, "'");
    if (d < 0)
        UNET_PANIC("negative delay in process '", _name, "'");
    sim.scheduleIn(d, [this] { resume(); });
    SuspendToken tok(*this, suspendDelay);
    suspend();
}

void
Process::waitOn(WaitChannel &ch)
{
    if (currentProcess != this)
        UNET_PANIC("waitOn() called from outside process '", _name, "'");
    wokenByNotify = false;
    ch.waiters.push_back(this);
    SuspendToken tok(*this, suspendWait);
    suspend();
}

bool
Process::waitOn(WaitChannel &ch, Tick timeout)
{
    if (currentProcess != this)
        UNET_PANIC("waitOn() called from outside process '", _name, "'");
    wokenByNotify = false;
    ch.waiters.push_back(this);
    timeoutEvent = sim.scheduleIn(timeout, [this, &ch] {
        // Timed out: remove ourselves from the waiter list and resume.
        auto &w = ch.waiters;
        w.erase(std::remove(w.begin(), w.end(), this), w.end());
        resume();
    });
    {
        SuspendToken tok(*this, suspendWaitTimeout);
        suspend();
    }
    timeoutEvent.cancel();
    return wokenByNotify;
}

void
Process::yieldNow()
{
    delay(0);
}

} // namespace unet::sim
