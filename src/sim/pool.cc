#include "sim/pool.hh"

#include <memory>

#include "sim/perturb.hh"

namespace unet::sim {

namespace {

/** Retired buffers awaiting reuse, matched by exact (usable) size. */
struct PooledBlock
{
    std::unique_ptr<unsigned char[]> base;
    std::size_t size;
    std::size_t pad;
};

thread_local std::vector<PooledBlock> blockPool;

/** Retention cap: enough for a simulation's worth of fibers and
 *  arenas without holding the whole high-water mark forever. */
constexpr std::size_t blockPoolMax = 32;

/** Monotonic draw counter for the salted acquisition decisions. */
thread_local std::uint64_t acquireCount = 0;

/** Salted pad for a fresh allocation: 0..31 cache lines. Keeps the
 *  usable area max_align-compatible (64 is a multiple of 16). */
std::size_t
saltedPad(std::uint64_t salt)
{
    if (salt == 0)
        return 0;
    return 64 * (perturb::mix(salt, ++acquireCount) % 32);
}

} // namespace

RecycledBuffer::RecycledBuffer(std::size_t size) : bytes(size)
{
    const std::uint64_t salt = perturb::salt();

    // Collect the reusable candidates (exact size match).
    std::size_t matches = 0;
    for (const PooledBlock &block : blockPool)
        matches += block.size == size;

    if (matches > 0) {
        // Unperturbed: newest match (LIFO keeps pages warm). Salted: a
        // deterministic pseudo-random pick, so block/address pairing
        // differs between salts.
        std::size_t wanted = salt == 0
            ? 0
            : perturb::mix(salt, ++acquireCount) % matches;
        for (std::size_t i = blockPool.size(); i-- > 0;) {
            if (blockPool[i].size != size)
                continue;
            if (wanted-- == 0) {
                base = blockPool[i].base.release();
                mem = base + blockPool[i].pad;
                blockPool.erase(blockPool.begin() +
                                static_cast<std::ptrdiff_t>(i));
                return;
            }
        }
    }

    std::size_t pad = saltedPad(salt);
    base = new unsigned char[size + pad];
    mem = base + pad;
}

RecycledBuffer::~RecycledBuffer()
{
    if (blockPool.size() < blockPoolMax)
        blockPool.push_back({std::unique_ptr<unsigned char[]>(base),
                             bytes,
                             static_cast<std::size_t>(mem - base)});
    else
        delete[] base;
}

} // namespace unet::sim
