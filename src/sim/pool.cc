#include "sim/pool.hh"

#include <memory>

namespace unet::sim {

namespace {

/** Retired buffers awaiting reuse, matched by exact size. */
struct PooledBlock
{
    std::unique_ptr<unsigned char[]> mem;
    std::size_t size;
};

thread_local std::vector<PooledBlock> blockPool;

/** Retention cap: enough for a simulation's worth of fibers and
 *  arenas without holding the whole high-water mark forever. */
constexpr std::size_t blockPoolMax = 32;

} // namespace

RecycledBuffer::RecycledBuffer(std::size_t size) : bytes(size)
{
    for (std::size_t i = blockPool.size(); i-- > 0;) {
        if (blockPool[i].size == size) {
            mem = blockPool[i].mem.release();
            blockPool.erase(blockPool.begin() +
                            static_cast<std::ptrdiff_t>(i));
            return;
        }
    }
    mem = new unsigned char[size];
}

RecycledBuffer::~RecycledBuffer()
{
    if (blockPool.size() < blockPoolMax)
        blockPool.push_back(
            {std::unique_ptr<unsigned char[]>(mem), bytes});
    else
        delete[] mem;
}

} // namespace unet::sim
