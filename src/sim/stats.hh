/**
 * @file
 * Lightweight statistics containers used across the stack.
 *
 * Components expose named Counter and Accumulator members; benches and
 * tests read them directly. A StatGroup gives a component a flat
 * name -> value dump for reporting.
 */

#ifndef UNET_SIM_STATS_HH
#define UNET_SIM_STATS_HH

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <map>
#include <string>
#include <vector>

namespace unet::sim {

/** A monotonically increasing event count. */
class Counter
{
  public:
    Counter &operator++() { ++count; return *this; }
    Counter &operator+=(std::uint64_t n) { count += n; return *this; }

    std::uint64_t value() const { return count; }
    void reset() { count = 0; }

  private:
    std::uint64_t count = 0;
};

/** Running min/max/mean/variance over a stream of samples. */
class Accumulator
{
  public:
    /** Record one sample. */
    void
    sample(double x)
    {
        ++n;
        double delta = x - meanVal;
        meanVal += delta / static_cast<double>(n);
        m2 += delta * (x - meanVal);
        minVal = std::min(minVal, x);
        maxVal = std::max(maxVal, x);
        sumVal += x;
    }

    std::uint64_t count() const { return n; }
    double sum() const { return sumVal; }
    double mean() const { return n ? meanVal : 0.0; }
    double min() const { return n ? minVal : 0.0; }
    double max() const { return n ? maxVal : 0.0; }

    /** Sample variance (n-1 denominator). */
    double
    variance() const
    {
        return n > 1 ? m2 / static_cast<double>(n - 1) : 0.0;
    }

    double stddev() const { return std::sqrt(variance()); }

    void
    reset()
    {
        n = 0;
        meanVal = m2 = sumVal = 0.0;
        minVal = std::numeric_limits<double>::infinity();
        maxVal = -std::numeric_limits<double>::infinity();
    }

  private:
    std::uint64_t n = 0;
    double meanVal = 0.0;
    double m2 = 0.0;
    double sumVal = 0.0;
    double minVal = std::numeric_limits<double>::infinity();
    double maxVal = -std::numeric_limits<double>::infinity();
};

/** Fixed-bucket histogram over [lo, hi) with under/overflow buckets. */
class Histogram
{
  public:
    Histogram(double lo, double hi, std::size_t buckets)
        : low(lo), high(hi), counts(buckets + 2, 0)
    {}

    void
    sample(double x)
    {
        acc.sample(x);
        std::size_t idx;
        if (x < low) {
            idx = 0;
        } else if (x >= high) {
            idx = counts.size() - 1;
        } else {
            double frac = (x - low) / (high - low);
            idx = 1 + static_cast<std::size_t>(
                frac * static_cast<double>(counts.size() - 2));
        }
        ++counts[idx];
    }

    std::uint64_t underflow() const { return counts.front(); }
    std::uint64_t overflow() const { return counts.back(); }
    std::uint64_t bucket(std::size_t i) const { return counts.at(i + 1); }
    std::size_t buckets() const { return counts.size() - 2; }
    const Accumulator &summary() const { return acc; }

  private:
    double low;
    double high;
    std::vector<std::uint64_t> counts;
    Accumulator acc;
};

/** Flat name -> value map a component can publish for reporting. */
class StatGroup
{
  public:
    void set(const std::string &name, double v) { values[name] = v; }
    double
    get(const std::string &name) const
    {
        auto it = values.find(name);
        return it == values.end() ? 0.0 : it->second;
    }
    const std::map<std::string, double> &all() const { return values; }

  private:
    std::map<std::string, double> values;
};

} // namespace unet::sim

#endif // UNET_SIM_STATS_HH
