/**
 * @file
 * Status and error reporting in the gem5 idiom.
 *
 * panic()  — an internal invariant was violated: a simulator bug.
 *            Aborts (dumps core / enters the debugger).
 * fatal()  — the simulation cannot continue because of a user error
 *            (bad configuration, invalid arguments). Exits with code 1.
 * warn()   — something is modelled approximately or looks suspicious but
 *            the run continues.
 * inform() — normal operating messages.
 */

#ifndef UNET_SIM_LOGGING_HH
#define UNET_SIM_LOGGING_HH

#include <sstream>
#include <string>

namespace unet::sim {

/** Verbosity levels for the message sink. */
enum class LogLevel { Silent, Warnings, Info, Debug };

/** Set the global verbosity (default: Warnings). */
void setLogLevel(LogLevel level);

/** Current global verbosity. */
LogLevel logLevel();

namespace detail {

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);
void debugImpl(const std::string &msg);

/** Concatenate a parameter pack into a string via operator<<. */
template <typename... Args>
std::string
format(Args &&...args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

} // namespace detail

} // namespace unet::sim

/** Report a simulator bug and abort. */
#define UNET_PANIC(...)                                                     \
    ::unet::sim::detail::panicImpl(__FILE__, __LINE__,                      \
        ::unet::sim::detail::format(__VA_ARGS__))

/** Report a user error and exit(1). */
#define UNET_FATAL(...)                                                     \
    ::unet::sim::detail::fatalImpl(__FILE__, __LINE__,                      \
        ::unet::sim::detail::format(__VA_ARGS__))

/** Report a suspicious condition; the run continues. */
#define UNET_WARN(...)                                                      \
    ::unet::sim::detail::warnImpl(::unet::sim::detail::format(__VA_ARGS__))

/** Report normal status. */
#define UNET_INFORM(...)                                                    \
    ::unet::sim::detail::informImpl(                                        \
        ::unet::sim::detail::format(__VA_ARGS__))

/** Developer-level tracing, compiled in but gated by LogLevel::Debug. */
#define UNET_DEBUG(...)                                                     \
    ::unet::sim::detail::debugImpl(::unet::sim::detail::format(__VA_ARGS__))

#endif // UNET_SIM_LOGGING_HH
