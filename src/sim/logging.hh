/**
 * @file
 * Status and error reporting in the gem5 idiom.
 *
 * panic()  — an internal invariant was violated: a simulator bug.
 *            Aborts (dumps core / enters the debugger).
 * fatal()  — the simulation cannot continue because of a user error
 *            (bad configuration, invalid arguments). Exits with code 1.
 * warn()   — something is modelled approximately or looks suspicious but
 *            the run continues.
 * inform() — normal operating messages.
 */

#ifndef UNET_SIM_LOGGING_HH
#define UNET_SIM_LOGGING_HH

#include <sstream>
#include <stdexcept>
#include <string>

namespace unet::sim {

/**
 * Thrown by UNET_PANIC instead of aborting while panic capture is
 * enabled (setPanicThrows). The schedule-space explorer uses this to
 * turn an invariant violation inside one explored interleaving into a
 * reportable counterexample rather than tearing the process down.
 */
class PanicException : public std::runtime_error
{
  public:
    PanicException(const char *file, int line, const std::string &msg);

    /** Source location of the violated invariant. */
    const char *file() const { return _file; }
    int line() const { return _line; }

    /** The panic message without the location suffix. */
    const std::string &message() const { return _message; }

  private:
    const char *_file;
    int _line;
    std::string _message;
};

/**
 * Enable or disable panic capture on this thread. While enabled,
 * UNET_PANIC throws PanicException instead of printing and aborting.
 * Default off: a panic in normal runs must still dump core at the
 * point of the bug. UNET_FATAL is unaffected (user errors are not
 * explorable schedules).
 */
void setPanicThrows(bool enabled);

/** True while panic capture is enabled on this thread. */
bool panicThrows();

/** RAII panic-capture scope (restores the previous setting). */
class ScopedPanicThrows
{
  public:
    explicit ScopedPanicThrows(bool enabled = true)
        : previous(panicThrows())
    {
        setPanicThrows(enabled);
    }

    ~ScopedPanicThrows() { setPanicThrows(previous); }

    ScopedPanicThrows(const ScopedPanicThrows &) = delete;
    ScopedPanicThrows &operator=(const ScopedPanicThrows &) = delete;

  private:
    bool previous;
};

/** Verbosity levels for the message sink. */
enum class LogLevel { Silent, Warnings, Info, Debug };

/** Set the global verbosity (default: Warnings). */
void setLogLevel(LogLevel level);

/** Current global verbosity. */
LogLevel logLevel();

namespace detail {

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);
void debugImpl(const std::string &msg);

/** Concatenate a parameter pack into a string via operator<<. */
template <typename... Args>
std::string
format(Args &&...args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

} // namespace detail

} // namespace unet::sim

/** Report a simulator bug and abort. */
#define UNET_PANIC(...)                                                     \
    ::unet::sim::detail::panicImpl(__FILE__, __LINE__,                      \
        ::unet::sim::detail::format(__VA_ARGS__))

/** Report a user error and exit(1). */
#define UNET_FATAL(...)                                                     \
    ::unet::sim::detail::fatalImpl(__FILE__, __LINE__,                      \
        ::unet::sim::detail::format(__VA_ARGS__))

/** Report a suspicious condition; the run continues. */
#define UNET_WARN(...)                                                      \
    ::unet::sim::detail::warnImpl(::unet::sim::detail::format(__VA_ARGS__))

/** Report normal status. */
#define UNET_INFORM(...)                                                    \
    ::unet::sim::detail::informImpl(                                        \
        ::unet::sim::detail::format(__VA_ARGS__))

/** Developer-level tracing, compiled in but gated by LogLevel::Debug. */
#define UNET_DEBUG(...)                                                     \
    ::unet::sim::detail::debugImpl(::unet::sim::detail::format(__VA_ARGS__))

#endif // UNET_SIM_LOGGING_HH
