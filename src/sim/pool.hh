/**
 * @file
 * Allocation-recycling containers for simulation hot paths.
 *
 * SlotRing is a FIFO ring whose slots stay alive across reuse: popping
 * the front only advances the head index, so the element object (and any
 * heap capacity it owns, e.g. a payload std::vector) is recycled by the
 * next assignment into that slot. In steady state — once the ring has
 * grown to the workload's high-water mark — pushing and popping perform
 * zero allocations.
 */

#ifndef UNET_SIM_POOL_HH
#define UNET_SIM_POOL_HH

#include <cstddef>
#include <utility>
#include <vector>

namespace unet::sim {

/** FIFO ring with live, capacity-retaining slots. */
template <typename T>
class SlotRing
{
  public:
    bool empty() const { return _count == 0; }
    std::size_t size() const { return _count; }
    std::size_t capacity() const { return slots.size(); }

    /**
     * Append a slot and return it for assignment. The returned object
     * is a recycled previous occupant (or default-constructed on first
     * use), so vector-backed members keep their capacity.
     */
    T &
    pushSlot()
    {
        if (_count == slots.size())
            grow();
        T &slot = slots[(head + _count) & (slots.size() - 1)];
        ++_count;
        return slot;
    }

    /** The oldest element. Undefined when empty. */
    T &front() { return slots[head]; }
    const T &front() const { return slots[head]; }

    /** The @p i-th oldest element (0 == front). Undefined past size. */
    T &at(std::size_t i) { return slots[(head + i) & (slots.size() - 1)]; }

    /** Retire the oldest element, leaving its slot alive for reuse. */
    void
    popFront()
    {
        head = (head + 1) & (slots.size() - 1);
        --_count;
    }

  private:
    void
    grow()
    {
        std::size_t cap = slots.empty() ? 8 : slots.size() * 2;
        std::vector<T> bigger(cap);
        for (std::size_t i = 0; i < _count; ++i)
            bigger[i] = std::move(slots[(head + i) & (slots.size() - 1)]);
        slots.swap(bigger);
        head = 0;
    }

    std::vector<T> slots;
    std::size_t head = 0;
    std::size_t _count = 0;
};

/**
 * A large byte buffer drawn from a per-thread recycling pool.
 *
 * Fiber stacks and host memory arenas are allocated in bursts (a fresh
 * simulation per benchmark sweep point) and sit at sizes where glibc
 * serves them straight from mmap: every churn cycle then pays an mmap,
 * a page fault per touched page, and an munmap. Recycling the buffers
 * keeps the pages mapped and warm across simulations.
 *
 * The storage is NOT zeroed on acquisition — callers that need zeroed
 * contents (e.g. host::Memory) must clear it themselves.
 *
 * Under the UNET_PERTURB run mode (sim/perturb.hh) acquisition is
 * address-salted: reuse picks pseudo-randomly among the pooled blocks
 * and fresh allocations carry a salted leading pad, so fiber stacks
 * and arenas land at different addresses under different salts. Code
 * whose simulated behaviour leaks host addresses (pointer-keyed
 * iteration, hashing a pointer into a decision) then diverges between
 * salts and is caught by the determinism suites.
 */
class RecycledBuffer
{
  public:
    explicit RecycledBuffer(std::size_t size);
    ~RecycledBuffer();

    RecycledBuffer(const RecycledBuffer &) = delete;
    RecycledBuffer &operator=(const RecycledBuffer &) = delete;

    unsigned char *data() { return mem; }
    const unsigned char *data() const { return mem; }
    std::size_t size() const { return bytes; }

  private:
    unsigned char *mem;  ///< usable storage (= base + salted pad)
    unsigned char *base; ///< allocation origin, owned
    std::size_t bytes;   ///< usable size (excludes the pad)
};

} // namespace unet::sim

#endif // UNET_SIM_POOL_HH
