#include "sim/fiber.hh"

#include "sim/logging.hh"

namespace unet::sim {

namespace {

thread_local Fiber *currentFiber = nullptr;

} // namespace

Fiber::Fiber(std::function<void()> body, std::size_t stack_size)
    : body(std::move(body)), stack(stack_size)
{
    if (!this->body)
        UNET_PANIC("fiber constructed with empty body");
}

Fiber::~Fiber() = default;

Fiber *
Fiber::current()
{
    return currentFiber;
}

void
Fiber::trampoline()
{
    Fiber *self = currentFiber;
    self->body();
    self->done = true;
    // Return to whoever ran us; swapcontext back out of the fiber.
    currentFiber = nullptr;
    swapcontext(&self->context, &self->returnContext);
}

void
Fiber::run()
{
    if (done)
        UNET_PANIC("run() on a finished fiber");
    if (currentFiber)
        UNET_PANIC("nested Fiber::run() is not supported");

    if (!started) {
        if (getcontext(&context) != 0)
            UNET_PANIC("getcontext failed");
        context.uc_stack.ss_sp = stack.data();
        context.uc_stack.ss_size = stack.size();
        context.uc_link = nullptr;
        makecontext(&context, reinterpret_cast<void (*)()>(&trampoline), 0);
        started = true;
    }

    currentFiber = this;
    swapcontext(&returnContext, &context);
    currentFiber = nullptr;
}

void
Fiber::yield()
{
    Fiber *self = currentFiber;
    if (!self)
        UNET_PANIC("Fiber::yield() outside any fiber");
    currentFiber = nullptr;
    swapcontext(&self->context, &self->returnContext);
    currentFiber = self;
}

} // namespace unet::sim
