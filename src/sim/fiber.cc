#include "sim/fiber.hh"

#include <algorithm>
#include <utility>

#include "sim/logging.hh"

/*
 * ASan cannot follow raw ucontext switches: it tracks a "fake stack"
 * per execution context, and an unannotated swapcontext() leaves it
 * pointed at the old stack — poisoning every subsequent fiber frame.
 * The __sanitizer_{start,finish}_switch_fiber pair, called around each
 * switch, keeps the shadow state consistent. The calls compile away
 * entirely in non-ASan builds.
 */
#if defined(__SANITIZE_ADDRESS__)
#define UNET_ASAN_FIBERS 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define UNET_ASAN_FIBERS 1
#endif
#endif

#ifdef UNET_ASAN_FIBERS
#include <sanitizer/common_interface_defs.h>
#endif

/*
 * TSan has the same blindness with its own cure: every fiber gets a
 * TSan context, and __tsan_switch_to_fiber is called immediately
 * before each swapcontext. Without it TSan attributes one fiber's
 * accesses to another's vector clock and every cross-fiber hand-off
 * looks like a race.
 */
#if defined(__SANITIZE_THREAD__)
#define UNET_TSAN_FIBERS 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define UNET_TSAN_FIBERS 1
#endif
#endif

#ifdef UNET_TSAN_FIBERS
#include <sanitizer/tsan_interface.h>
#endif

namespace unet::sim {

namespace {

thread_local Fiber *currentFiber = nullptr;

#if defined(UNET_CHECK) && UNET_CHECK
/** Byte pattern seeded at the overflow end of every fiber stack. */
constexpr unsigned char canaryByte = 0xA5;
constexpr std::size_t canaryBytes = 64;
#endif

inline void
asanStartSwitch([[maybe_unused]] void **fake_stack_save,
                [[maybe_unused]] const void *bottom,
                [[maybe_unused]] std::size_t size)
{
#ifdef UNET_ASAN_FIBERS
    __sanitizer_start_switch_fiber(fake_stack_save, bottom, size);
#endif
}

inline void
asanFinishSwitch([[maybe_unused]] void *fake_stack_save,
                 [[maybe_unused]] const void **bottom_old,
                 [[maybe_unused]] std::size_t *size_old)
{
#ifdef UNET_ASAN_FIBERS
    __sanitizer_finish_switch_fiber(fake_stack_save, bottom_old,
                                    size_old);
#endif
}

inline void *
tsanCreateFiber()
{
#ifdef UNET_TSAN_FIBERS
    return __tsan_create_fiber(0);
#else
    return nullptr;
#endif
}

inline void
tsanDestroyFiber([[maybe_unused]] void *fiber)
{
#ifdef UNET_TSAN_FIBERS
    if (fiber)
        __tsan_destroy_fiber(fiber);
#endif
}

inline void *
tsanCurrentFiber()
{
#ifdef UNET_TSAN_FIBERS
    return __tsan_get_current_fiber();
#else
    return nullptr;
#endif
}

inline void
tsanSwitchTo([[maybe_unused]] void *fiber)
{
#ifdef UNET_TSAN_FIBERS
    __tsan_switch_to_fiber(fiber, 0);
#endif
}

} // namespace

Fiber::Fiber(std::function<void()> body, std::size_t stack_size)
    : body(std::move(body)), stack(stack_size)
{
    if (!this->body)
        UNET_PANIC("fiber constructed with empty body");
    tsanFiber = tsanCreateFiber();
#if defined(UNET_CHECK) && UNET_CHECK
    // The stack grows down from stack.data() + size; an overflow tramples
    // the low end first. Seed it so checkCanary() can tell.
    std::fill_n(stack.data(),
                std::min(canaryBytes, stack.size() / 4), canaryByte);
#endif
}

Fiber::~Fiber() { tsanDestroyFiber(tsanFiber); }

Fiber *
Fiber::current()
{
    return currentFiber;
}

void
Fiber::checkCanary() const
{
#if defined(UNET_CHECK) && UNET_CHECK
    std::size_t n = std::min(canaryBytes, stack.size() / 4);
    for (std::size_t i = 0; i < n; ++i) {
        if (stack.data()[i] != canaryByte)
            UNET_PANIC("fiber stack overflow: canary byte ", i, " of ",
                       n, " clobbered (stack size ", stack.size(),
                       " bytes)");
    }
#endif
}

void
Fiber::trampoline()
{
    Fiber *self = currentFiber;
    // Complete the switch that entered this fiber; remember the caller's
    // stack so yield()/death can annotate the switch back.
    asanFinishSwitch(nullptr, &self->asanCallerStack,
                     &self->asanCallerSize);
    // An exception must not unwind across swapcontext: capture it here
    // on the fiber stack and let run() rethrow it in the caller's
    // context.
    try {
        self->body();
    } catch (...) {
        self->pendingException = std::current_exception();
    }
    self->done = true;
    // Return to whoever ran us; swapcontext back out of the fiber.
    // A null fake-stack pointer tells ASan this fiber is dying so its
    // fake stack can be freed.
    currentFiber = nullptr;
    asanStartSwitch(nullptr, self->asanCallerStack,
                    self->asanCallerSize);
    tsanSwitchTo(self->tsanCaller);
    swapcontext(&self->context, &self->returnContext);
}

void
Fiber::run()
{
    if (done)
        UNET_PANIC("run() on a finished fiber");
    if (currentFiber)
        UNET_PANIC("nested Fiber::run() is not supported");

    if (!started) {
        if (getcontext(&context) != 0)
            UNET_PANIC("getcontext failed");
        context.uc_stack.ss_sp = stack.data();
        context.uc_stack.ss_size = stack.size();
        context.uc_link = nullptr;
        makecontext(&context, reinterpret_cast<void (*)()>(&trampoline), 0);
        started = true;
    }

    currentFiber = this;
    void *main_fake = nullptr;
    asanStartSwitch(&main_fake, stack.data(), stack.size());
    tsanCaller = tsanCurrentFiber();
    tsanSwitchTo(tsanFiber);
    swapcontext(&returnContext, &context);
    asanFinishSwitch(main_fake, nullptr, nullptr);
    currentFiber = nullptr;
    checkCanary();
    if (pendingException)
        std::rethrow_exception(std::exchange(pendingException, nullptr));
}

void
Fiber::yield()
{
    Fiber *self = currentFiber;
    if (!self)
        UNET_PANIC("Fiber::yield() outside any fiber");
    currentFiber = nullptr;
    asanStartSwitch(&self->asanFakeStack, self->asanCallerStack,
                    self->asanCallerSize);
    tsanSwitchTo(self->tsanCaller);
    swapcontext(&self->context, &self->returnContext);
    asanFinishSwitch(self->asanFakeStack, &self->asanCallerStack,
                     &self->asanCallerSize);
    currentFiber = self;
}

} // namespace unet::sim
