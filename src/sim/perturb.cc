#include "sim/perturb.hh"

#include <atomic>
#include <cstdlib>

namespace unet::sim::perturb {

namespace {

std::uint64_t
envSalt()
{
    // Read once per process; the simulator itself must never consult
    // the environment after startup.
    // nondet-ok(env-read): getenv is a fixed process input, not a
    // source of nondeterminism across runs with the same environment.
    const char *env = std::getenv("UNET_PERTURB"); // NOLINT(concurrency-mt-unsafe)
    if (!env || !*env)
        return 0;
    char *end = nullptr;
    unsigned long long value = std::strtoull(env, &end, 0);
    if (end == env || (end && *end != '\0'))
        return 0;
    return static_cast<std::uint64_t>(value);
}

std::atomic<std::uint64_t> &
slot()
{
    static std::atomic<std::uint64_t> s{envSalt()};
    return s;
}

} // namespace

std::uint64_t
salt()
{
    return slot().load(std::memory_order_relaxed);
}

std::uint64_t
setSalt(std::uint64_t salt)
{
    return slot().exchange(salt, std::memory_order_relaxed);
}

std::uint64_t
nextRingSequence()
{
    // Thread-local so parallel test shards stay independent; the
    // counter only differentiates rings within one simulation anyway.
    thread_local std::uint64_t counter = 0;
    return counter++;
}

} // namespace unet::sim::perturb
