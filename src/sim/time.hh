/**
 * @file
 * Simulated time for the discrete-event kernel.
 *
 * Ticks are signed 64-bit picoseconds, giving sub-bit-time resolution at
 * 100 Mbps / 155 Mbps line rates and a maximum simulated horizon of about
 * 106 days, far beyond any experiment in this repository.
 */

#ifndef UNET_SIM_TIME_HH
#define UNET_SIM_TIME_HH

#include <cstdint>

namespace unet::sim {

/** Simulated time in picoseconds. */
using Tick = std::int64_t;

/** The maximum representable tick; used as "never". */
constexpr Tick maxTick = INT64_MAX;

/** Construct a tick count from picoseconds. */
constexpr Tick
picoseconds(std::int64_t t)
{
    return t;
}

/** Construct a tick count from nanoseconds. */
constexpr Tick
nanoseconds(std::int64_t t)
{
    return t * 1000;
}

/** Construct a tick count from microseconds. */
constexpr Tick
microseconds(std::int64_t t)
{
    return t * 1000 * 1000;
}

/** Construct a tick count from milliseconds. */
constexpr Tick
milliseconds(std::int64_t t)
{
    return t * 1000 * 1000 * 1000;
}

/** Construct a tick count from seconds. */
constexpr Tick
seconds(std::int64_t t)
{
    return t * 1000 * 1000 * 1000 * 1000;
}

/** Convert a (possibly fractional) microsecond count to ticks. */
constexpr Tick
microsecondsF(double t)
{
    return static_cast<Tick>(t * 1e6);
}

/** Convert a (possibly fractional) nanosecond count to ticks. */
constexpr Tick
nanosecondsF(double t)
{
    return static_cast<Tick>(t * 1e3);
}

/** Convert ticks to fractional microseconds (for reporting). */
constexpr double
toMicroseconds(Tick t)
{
    return static_cast<double>(t) / 1e6;
}

/** Convert ticks to fractional milliseconds (for reporting). */
constexpr double
toMilliseconds(Tick t)
{
    return static_cast<double>(t) / 1e9;
}

/** Convert ticks to fractional seconds (for reporting). */
constexpr double
toSeconds(Tick t)
{
    return static_cast<double>(t) / 1e12;
}

/**
 * Time needed to serialize @p bytes onto a medium running at
 * @p bits_per_sec. Rounded to the nearest tick.
 */
constexpr Tick
serializationTime(std::int64_t bytes, double bits_per_sec)
{
    return static_cast<Tick>(static_cast<double>(bytes) * 8.0 * 1e12 /
                             bits_per_sec + 0.5);
}

namespace literals {

constexpr Tick operator""_ps(unsigned long long t)
{ return picoseconds(static_cast<std::int64_t>(t)); }

constexpr Tick operator""_ns(unsigned long long t)
{ return nanoseconds(static_cast<std::int64_t>(t)); }

constexpr Tick operator""_us(unsigned long long t)
{ return microseconds(static_cast<std::int64_t>(t)); }

constexpr Tick operator""_ms(unsigned long long t)
{ return milliseconds(static_cast<std::int64_t>(t)); }

constexpr Tick operator""_s(unsigned long long t)
{ return seconds(static_cast<std::int64_t>(t)); }

constexpr Tick operator""_us(long double t)
{ return microsecondsF(static_cast<double>(t)); }

constexpr Tick operator""_ns(long double t)
{ return nanosecondsF(static_cast<double>(t)); }

} // namespace literals

} // namespace unet::sim

#endif // UNET_SIM_TIME_HH
