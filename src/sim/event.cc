#include "sim/event.hh"

#include "sim/logging.hh"

namespace unet::sim {

bool
EventHandle::pending() const
{
    return record && !record->cancelled && !record->fired;
}

void
EventHandle::cancel()
{
    if (record)
        record->cancelled = true;
}

EventHandle
EventQueue::schedule(Tick when, std::function<void()> action)
{
    if (when < _now)
        UNET_PANIC("event scheduled in the past: when=", when,
                   " now=", _now);
    if (!action)
        UNET_PANIC("event scheduled with empty action");

    auto rec = std::make_shared<EventHandle::Record>();
    rec->when = when;
    rec->seq = nextSeq++;
    rec->action = std::move(action);
    heap.push(HeapEntry{when, rec->seq, rec});
    return EventHandle(std::move(rec));
}

bool
EventQueue::step()
{
    while (!heap.empty()) {
        HeapEntry entry = heap.top();
        heap.pop();
        if (entry.record->cancelled)
            continue;

        _now = entry.when;
        entry.record->fired = true;
        ++_firedCount;

        // Move the action out so self-rescheduling callbacks can't
        // invalidate the storage we're executing from.
        auto action = std::move(entry.record->action);
        action();
        return true;
    }
    return false;
}

Tick
EventQueue::run()
{
    while (step()) {
    }
    return _now;
}

Tick
EventQueue::runUntil(Tick limit)
{
    while (!heap.empty()) {
        // Skip over cancelled entries without advancing time.
        if (heap.top().record->cancelled) {
            heap.pop();
            continue;
        }
        if (heap.top().when > limit)
            break;
        step();
    }
    if (_now < limit && heap.empty())
        return _now;
    if (_now < limit)
        _now = limit;
    return _now;
}

bool
EventQueue::empty() const
{
    // Cancelled events may linger in the heap; scan lazily via a copy of
    // the top is not possible with priority_queue, so treat any entry as
    // potentially live unless everything is cancelled. For exactness we
    // walk the underlying container through a const reference.
    if (heap.empty())
        return true;
    // priority_queue gives no iteration; approximate by checking top.
    // Cancelled tops are purged by step()/runUntil(), so "empty" here
    // means "no entries at all".
    return false;
}

} // namespace unet::sim
