#include "sim/event.hh"

#include <algorithm>
#include <array>

#include "sim/logging.hh"

namespace unet::sim {

EventQueue::~EventQueue()
{
    // Destroy the callables of still-pending events; cancelled and fired
    // slots were already cleaned when they were released.
    while (!heap.empty()) {
        HeapEntry entry = heap.front();
        popHeap();
        Record &rec = recordAt(entry.slot);
        if (rec.seq == entry.seq && rec.state == Record::State::pending) {
            destroyAction(rec);
            rec.state = Record::State::free;
        }
    }
}

void
EventQueue::panicEmptyAction()
{
    UNET_PANIC("event scheduled with empty action");
}

void
EventQueue::panicPastEvent(Tick when) const
{
    UNET_PANIC("event scheduled in the past: when=", when, " now=", _now);
}

void
EventQueue::setPerturbSalt(std::uint64_t salt)
{
    if (_livePending != 0 || _firedCount != 0 || !heap.empty())
        UNET_PANIC("setPerturbSalt on a non-idle queue: heaped entries "
                   "carry keys computed under the old salt");
    _perturbSalt = salt;
}

void
EventQueue::growPool()
{
    // Grow the slab by one chunk and thread it onto the free list. In
    // perturbation mode the threading order is a salted permutation:
    // record slot numbers (and so record addresses) then differ
    // between salts, which trips anything keying behaviour off them.
    auto base = static_cast<std::uint32_t>(poolCapacity());
    chunks.push_back(std::make_unique<Record[]>(chunkRecords));
    std::array<std::uint32_t, chunkRecords> order;
    for (std::size_t i = 0; i < chunkRecords; ++i)
        order[i] = static_cast<std::uint32_t>(i);
    if (_perturbSalt != 0) {
        for (std::size_t i = chunkRecords - 1; i > 0; --i) {
            std::size_t j = static_cast<std::size_t>(
                perturb::mix(_perturbSalt, (base + i) * 2654435761u) %
                (i + 1));
            std::swap(order[i], order[j]);
        }
    }
    for (std::size_t i = chunkRecords; i-- > 0;) {
        Record &rec = chunks.back()[order[i]];
        rec.nextFree = freeHead;
        freeHead = base + order[i];
    }
}

void
EventQueue::compactIfWorthwhile()
{
    // Rebuild only once dead entries dominate: below that, lazy pops
    // absorb them for free. The floor avoids thrashing tiny queues.
    if (heap.size() < 64 || _deadInHeap * 2 <= heap.size())
        return;
    std::erase_if(heap, [this](const HeapEntry &entry) {
        const Record &rec = recordAt(entry.slot);
        return rec.seq != entry.seq ||
            rec.state != Record::State::pending;
    });
    std::make_heap(heap.begin(), heap.end(), laterThan);
    _deadInHeap = 0;
    ++_compactions;
}

bool
EventQueue::stepChoice()
{
    // Purge stale entries so the true minimum tick is on top.
    while (!heap.empty()) {
        const HeapEntry &top = heap.front();
        const Record &rec = recordAt(top.slot);
        if (rec.seq != top.seq || rec.state != Record::State::pending) {
            popHeap();
            --_deadInHeap;
            continue;
        }
        break;
    }
    if (heap.empty())
        return false;

    const Tick when = heap.front().when;

    // Gather the eligible set: every live permutable entry at the
    // minimum tick, plus the earliest-scheduled dependent entry there
    // (later dependents must wait behind it — the FIFO contract). The
    // heap array is scanned linearly; explored configs are small.
    struct Eligible
    {
        ScheduleArbiter::Candidate candidate;
        std::size_t heapIndex;
    };
    std::vector<Eligible> eligible;
    std::size_t depIndex = heap.size();
    std::uint64_t depSeq = ~std::uint64_t{0};
    for (std::size_t i = 0; i < heap.size(); ++i) {
        const HeapEntry &entry = heap[i];
        if (entry.when != when)
            continue;
        const Record &rec = recordAt(entry.slot);
        if (rec.seq != entry.seq || rec.state != Record::State::pending)
            continue;
        if (rec.order == Order::dependent) {
            if (entry.seq < depSeq) {
                depSeq = entry.seq;
                depIndex = i;
            }
        } else {
            eligible.push_back(
                {{when, entry.seq, Order::permutable}, i});
        }
    }
    if (depIndex != heap.size())
        eligible.push_back({{when, depSeq, Order::dependent}, depIndex});

    // Canonical presentation: seq ascending, so candidate 0 is the
    // choice the unperturbed FIFO schedule would make.
    std::sort(eligible.begin(), eligible.end(),
              [](const Eligible &a, const Eligible &b) {
                  return a.candidate.seq < b.candidate.seq;
              });

    std::size_t chosen = 0;
    if (eligible.size() > 1) {
        std::vector<ScheduleArbiter::Candidate> candidates;
        candidates.reserve(eligible.size());
        for (const Eligible &e : eligible)
            candidates.push_back(e.candidate);
        chosen = _arbiter->pick(when, candidates);
        if (chosen >= eligible.size())
            UNET_PANIC("arbiter picked candidate ", chosen, " of ",
                       eligible.size());
    }

    HeapEntry entry = heap[eligible[chosen].heapIndex];
    eraseHeapAt(eligible[chosen].heapIndex);
    fireEntry(entry);
    return true;
}

void
EventQueue::eraseHeapAt(std::size_t i)
{
    HeapEntry tail = heap.back();
    heap.pop_back();
    if (i == heap.size())
        return;
    // Sift the relocated tail entry toward the root, then toward the
    // leaves; at most one direction actually moves it.
    while (i > 0) {
        std::size_t parent = (i - 1) / 2;
        if (!laterThan(heap[parent], tail))
            break;
        heap[i] = heap[parent];
        i = parent;
    }
    std::size_t n = heap.size();
    for (;;) {
        std::size_t child = 2 * i + 1;
        if (child >= n)
            break;
        if (child + 1 < n && laterThan(heap[child], heap[child + 1]))
            ++child;
        if (!laterThan(tail, heap[child]))
            break;
        heap[i] = heap[child];
        i = child;
    }
    heap[i] = tail;
}

std::vector<std::pair<Tick, Order>>
EventQueue::pendingProfile() const
{
    std::vector<std::pair<Tick, Order>> profile;
    profile.reserve(_livePending);
    for (const HeapEntry &entry : heap) {
        const Record &rec = recordAt(entry.slot);
        if (rec.seq != entry.seq || rec.state != Record::State::pending)
            continue;
        profile.emplace_back(entry.when - _now, rec.order);
    }
    std::sort(profile.begin(), profile.end());
    return profile;
}

Tick
EventQueue::run()
{
    while (step()) {
    }
    return _now;
}

Tick
EventQueue::runUntil(Tick limit)
{
    while (!heap.empty()) {
        // Purge dead entries without advancing time.
        const HeapEntry &top = heap.front();
        const Record &rec = recordAt(top.slot);
        if (rec.seq != top.seq || rec.state != Record::State::pending) {
            popHeap();
            --_deadInHeap;
            continue;
        }
        if (top.when > limit)
            break;
        step();
    }
    if (_now < limit && heap.empty())
        return _now;
    if (_now < limit)
        _now = limit;
    return _now;
}

} // namespace unet::sim
