/**
 * @file
 * Trace and metrics exporters.
 *
 * Three views of one TraceSession:
 *  - writePerfettoJson(): Chrome trace_event format ("X" complete
 *    events, one tid per track) loadable in ui.perfetto.dev or
 *    chrome://tracing;
 *  - writeCsv(): flat rows for ad-hoc analysis (tools/trace_report.py);
 *  - writeSummary(): a terminal table of per-kind count/mean/p50/p90/p99.
 *
 * Metrics snapshots go through Registry::writeJson().
 */

#ifndef UNET_OBS_EXPORT_HH
#define UNET_OBS_EXPORT_HH

#include <iosfwd>

namespace unet::obs {

class TraceSession;

/** Chrome/Perfetto trace_event JSON; timestamps in microseconds. */
void writePerfettoJson(std::ostream &os, const TraceSession &tr);

/** CSV: msg_id,kind,custody,track,label,start_ps,end_ps,dur_ps. */
void writeCsv(std::ostream &os, const TraceSession &tr);

/** Human-readable per-kind duration summary. */
void writeSummary(std::ostream &os, const TraceSession &tr);

} // namespace unet::obs

#endif // UNET_OBS_EXPORT_HH
