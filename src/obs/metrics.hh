/**
 * @file
 * Hierarchical metrics registry.
 *
 * Components register their stats under dotted paths
 * (`host.A.nic.pca200.cellsSent`) instead of growing one accessor method
 * per stat. The registry stores *pointers* to the live counters, so
 * reads always see current values and registration is free on the hot
 * path. A MetricGroup gives a component RAII registration: everything it
 * registered disappears when the component is destroyed.
 *
 * Three metric flavours:
 *  - counter: a `sim::Counter` owned by the component;
 *  - gauge: a callback returning a double (for derived/occupancy stats);
 *  - histogram: an `obs::Histogram` (log-bucketed, p50/p90/p99).
 *
 * This header depends only on header-only sim/ types so the obs library
 * sits *below* unet_sim in the link order (sim::Simulation owns a
 * Registry).
 */

#ifndef UNET_OBS_METRICS_HH
#define UNET_OBS_METRICS_HH

#include <algorithm>
#include <array>
#include <bit>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <limits>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "sim/stats.hh"

namespace unet::obs {

/**
 * Log-bucketed histogram over unsigned samples.
 *
 * Bucket b >= 1 covers [2^(b-1), 2^b); bucket 0 holds exact zeros.
 * Quantiles interpolate linearly inside the bucket and are clamped to
 * the observed [min, max], which is plenty for latency reporting
 * (p50/p90/p99 to within a factor well under 2 anywhere on the range).
 * Recording is O(1) and allocation-free.
 */
class Histogram
{
  public:
    void
    record(std::uint64_t x)
    {
        ++_count;
        _sum += x;
        _min = std::min(_min, x);
        _max = std::max(_max, x);
        ++_buckets[bucketOf(x)];
    }

    std::uint64_t count() const { return _count; }
    std::uint64_t sum() const { return _sum; }
    std::uint64_t min() const { return _count ? _min : 0; }
    std::uint64_t max() const { return _count ? _max : 0; }

    double
    mean() const
    {
        return _count ? static_cast<double>(_sum) /
                            static_cast<double>(_count)
                      : 0.0;
    }

    /** Interpolated quantile; @p q in [0, 1]. */
    double
    quantile(double q) const
    {
        if (_count == 0)
            return 0.0;
        double target = q * static_cast<double>(_count);
        std::uint64_t cum = 0;
        for (std::size_t b = 0; b < _buckets.size(); ++b) {
            if (_buckets[b] == 0)
                continue;
            double here = static_cast<double>(_buckets[b]);
            if (static_cast<double>(cum) + here >= target) {
                double lo = b == 0 ? 0.0
                                   : std::ldexp(1.0, static_cast<int>(b) - 1);
                double hi = b == 0 ? 0.0 : lo * 2.0;
                double frac = std::max(
                    0.0, (target - static_cast<double>(cum)) / here);
                double v = lo + frac * (hi - lo);
                return std::clamp(v, static_cast<double>(min()),
                                  static_cast<double>(max()));
            }
            cum += _buckets[b];
        }
        return static_cast<double>(max());
    }

    void
    reset()
    {
        _buckets.fill(0);
        _count = _sum = _max = 0;
        _min = std::numeric_limits<std::uint64_t>::max();
    }

  private:
    static std::size_t
    bucketOf(std::uint64_t x)
    {
        return x == 0 ? 0 : static_cast<std::size_t>(std::bit_width(x));
    }

    std::array<std::uint64_t, 65> _buckets{};
    std::uint64_t _count = 0;
    std::uint64_t _sum = 0;
    std::uint64_t _min = std::numeric_limits<std::uint64_t>::max();
    std::uint64_t _max = 0;
};

/**
 * The registry: dotted path -> live metric.
 *
 * Registration keeps a pointer to the caller's stat object; use
 * MetricGroup so the entry is removed before the stat dies. Paths are
 * unique — register through uniquePrefix() when several instances of a
 * component coexist.
 */
class Registry
{
  public:
    using GaugeFn = std::function<double()>;

    /**
     * Structural-access hook for the happens-before auditor
     * (src/check/hb/): fires on every registration, removal, and
     * whole-registry sweep with (operation, is-mutation). A hook
     * rather than a check::ContextGuard member because obs sits
     * *below* the check library in the link order; the auditor owns
     * the guard and forwards. Null (the default) costs one branch.
     */
    using AuditHook = std::function<void(const char *op, bool write)>;

    void setAuditHook(AuditHook hook) { _auditHook = std::move(hook); }

    void addCounter(std::string path, const sim::Counter *c);
    void addGauge(std::string path, GaugeFn fn);
    void addHistogram(std::string path, const Histogram *h);
    void remove(const std::string &path);

    /**
     * Reserve an instance prefix: returns @p base the first time,
     * "base#2", "base#3", ... afterwards.
     */
    std::string uniquePrefix(const std::string &base);

    bool has(std::string_view path) const;

    /**
     * Read one metric. Histogram paths read their sample count; the
     * derived stats are addressable as `path.p50`, `path.mean`, etc.
     * Unknown paths read 0.
     */
    double value(std::string_view path) const;

    /**
     * Flatten everything into sorted (path, value) pairs. Histograms
     * expand to .count/.sum/.mean/.min/.max/.p50/.p90/.p99.
     */
    std::vector<std::pair<std::string, double>> dump() const;

    /** The dump() as one flat JSON object. */
    void writeJson(std::ostream &os) const;

    std::size_t size() const { return _entries.size(); }

  private:
    struct Entry
    {
        const sim::Counter *counter = nullptr;
        const Histogram *hist = nullptr;
        GaugeFn gauge;
    };

    void add(std::string path, Entry e);

    void
    audit(const char *op, bool write) const
    {
        if (_auditHook)
            _auditHook(op, write);
    }

    std::map<std::string, Entry, std::less<>> _entries;
    std::map<std::string, int, std::less<>> _prefixes;
    AuditHook _auditHook;
};

/**
 * RAII handle tying a component's registrations to its lifetime.
 *
 * Declare it *after* the counters it registers so it deregisters first
 * during destruction. Non-copyable, non-movable: the registry holds
 * pointers into the owning component.
 */
class MetricGroup
{
  public:
    MetricGroup(Registry &reg, std::string prefix)
        : _reg(&reg), _prefix(std::move(prefix))
    {}

    MetricGroup(const MetricGroup &) = delete;
    MetricGroup &operator=(const MetricGroup &) = delete;

    ~MetricGroup()
    {
        for (const auto &p : _paths)
            _reg->remove(p);
    }

    const std::string &prefix() const { return _prefix; }

    void
    counter(std::string_view name, const sim::Counter &c)
    {
        _reg->addCounter(path(name), &c);
    }

    void
    gauge(std::string_view name, Registry::GaugeFn fn)
    {
        _reg->addGauge(path(name), std::move(fn));
    }

    void
    histogram(std::string_view name, const Histogram &h)
    {
        _reg->addHistogram(path(name), &h);
    }

  private:
    std::string
    path(std::string_view name)
    {
        std::string p = _prefix;
        p += '.';
        p += name;
        _paths.push_back(p);
        return p;
    }

    Registry *_reg;
    std::string _prefix;
    std::vector<std::string> _paths;
};

} // namespace unet::obs

#endif // UNET_OBS_METRICS_HH
