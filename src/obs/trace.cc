#include "obs/trace.hh"

namespace unet::obs {

const char *
spanKindName(SpanKind k)
{
    switch (k) {
      case SpanKind::App:
        return "App";
      case SpanKind::TxPost:
        return "TxPost";
      case SpanKind::TxNic:
        return "TxNic";
      case SpanKind::TxFw:
        return "TxFw";
      case SpanKind::Wire:
        return "Wire";
      case SpanKind::RxKernel:
        return "RxKernel";
      case SpanKind::RxFw:
        return "RxFw";
      case SpanKind::RxQueue:
        return "RxQueue";
      case SpanKind::AmHandler:
        return "AmHandler";
      case SpanKind::Step:
        return "Step";
      case SpanKind::Fault:
        return "Fault";
      case SpanKind::Count:
        break;
    }
    return "?";
}

bool
isCustody(SpanKind k)
{
    switch (k) {
      case SpanKind::App:
      case SpanKind::TxPost:
      case SpanKind::TxNic:
      case SpanKind::TxFw:
      case SpanKind::Wire:
      case SpanKind::RxKernel:
      case SpanKind::RxFw:
      case SpanKind::RxQueue:
        return true;
      default:
        return false;
    }
}

TraceSession::TraceSession(std::size_t capacity, Registry *reg)
    : _cap(capacity ? capacity : 1)
{
    _ring.resize(_cap);
    _names.emplace_back(); // index 0: the empty name
    if (reg) {
        _metrics.emplace(*reg, reg->uniquePrefix("trace"));
        _metrics->counter("messages", _messages);
        _metrics->counter("spans", _spans);
        _metrics->gauge("droppedSpans", [this] {
            return static_cast<double>(dropped());
        });
        for (std::size_t k = 0;
             k < static_cast<std::size_t>(SpanKind::Count); ++k) {
            _metrics->histogram(
                std::string("span.") +
                    spanKindName(static_cast<SpanKind>(k)) + ".ns",
                _kindHist[k]);
        }
    }
}

std::uint16_t
TraceSession::name(std::string_view s)
{
    auto it = _nameIds.find(s);
    if (it != _nameIds.end())
        return it->second;
    auto idx = static_cast<std::uint16_t>(_names.size());
    _names.emplace_back(s);
    _nameIds.emplace(_names.back(), idx);
    return idx;
}

void
TraceSession::record(std::uint64_t id, SpanKind kind, std::uint16_t track,
                     sim::Tick start, sim::Tick end, std::uint16_t label)
{
    Span &s = _ring[static_cast<std::size_t>(_written % _cap)];
    s.id = id;
    s.kind = kind;
    s.track = track;
    s.start = start;
    s.end = end;
    s.label = label;
    ++_written;
    ++_spans;
    sim::Tick dur = end > start ? end - start : 0;
    _kindHist[static_cast<std::size_t>(kind)].record(
        static_cast<std::uint64_t>(dur / 1000));
}

std::vector<Span>
TraceSession::snapshot() const
{
    std::vector<Span> out;
    out.reserve(size());
    forEach([&](const Span &s) { out.push_back(s); });
    return out;
}

void
TraceSession::clear()
{
    _written = 0;
}

} // namespace unet::obs
