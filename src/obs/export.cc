#include "obs/export.hh"

#include <iomanip>
#include <ostream>
#include <set>

#include "obs/trace.hh"

namespace unet::obs {

void
writePerfettoJson(std::ostream &os, const TraceSession &tr)
{
    os << "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
    bool first = true;
    auto emit = [&](auto &&writeBody) {
        if (!first)
            os << ",";
        first = false;
        os << "\n";
        writeBody();
    };

    // Track rows as named "threads" so the UI labels each timeline.
    std::set<std::uint16_t> tracks;
    tr.forEach([&](const Span &s) { tracks.insert(s.track); });
    for (std::uint16_t t : tracks) {
        emit([&] {
            os << "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":0,"
               << "\"tid\":" << t << ",\"args\":{\"name\":\""
               << tr.nameOf(t) << "\"}}";
        });
    }

    std::streamsize prec = os.precision();
    os << std::setprecision(15);
    tr.forEach([&](const Span &s) {
        emit([&] {
            const char *kind = spanKindName(s.kind);
            const std::string &label = tr.nameOf(s.label);
            os << "{\"ph\":\"X\",\"name\":\""
               << (label.empty() ? kind : label.c_str())
               << "\",\"cat\":\""
               << (isCustody(s.kind) ? "custody" : "detail")
               << "\",\"pid\":0,\"tid\":" << s.track << ",\"ts\":"
               << static_cast<double>(s.start) / 1e6 << ",\"dur\":"
               << static_cast<double>(s.end - s.start) / 1e6
               << ",\"args\":{\"msg\":" << s.id << ",\"kind\":\"" << kind
               << "\"}}";
        });
    });
    os << std::setprecision(static_cast<int>(prec));
    os << "\n]}\n";
}

void
writeCsv(std::ostream &os, const TraceSession &tr)
{
    os << "msg_id,kind,custody,track,label,start_ps,end_ps,dur_ps\n";
    tr.forEach([&](const Span &s) {
        os << s.id << "," << spanKindName(s.kind) << ","
           << (isCustody(s.kind) ? 1 : 0) << "," << tr.nameOf(s.track)
           << "," << tr.nameOf(s.label) << "," << s.start << "," << s.end
           << "," << (s.end - s.start) << "\n";
    });
}

void
writeSummary(std::ostream &os, const TraceSession &tr)
{
    os << "trace: " << tr.messages() << " messages, " << tr.recorded()
       << " spans";
    if (tr.dropped())
        os << " (" << tr.dropped() << " dropped: ring full)";
    os << "\n";
    os << "  " << std::left << std::setw(10) << "kind" << std::right
       << std::setw(8) << "count" << std::setw(11) << "mean_us"
       << std::setw(11) << "p50_us" << std::setw(11) << "p90_us"
       << std::setw(11) << "p99_us" << "\n";
    for (std::size_t k = 0; k < static_cast<std::size_t>(SpanKind::Count);
         ++k) {
        const Histogram &h = tr.kindHistogram(static_cast<SpanKind>(k));
        if (h.count() == 0)
            continue;
        os << "  " << std::left << std::setw(10)
           << spanKindName(static_cast<SpanKind>(k)) << std::right
           << std::setw(8) << h.count() << std::fixed
           << std::setprecision(3) << std::setw(11) << h.mean() / 1e3
           << std::setw(11) << h.quantile(0.5) / 1e3 << std::setw(11)
           << h.quantile(0.9) / 1e3 << std::setw(11)
           << h.quantile(0.99) / 1e3 << "\n";
        os.unsetf(std::ios::fixed);
    }
}

} // namespace unet::obs
