/**
 * @file
 * Ring-buffered span recorder for per-message timelines.
 *
 * A TraceSession owns a fixed-capacity ring of Span records (allocated
 * once at enable time — no steady-state allocation) plus an interned
 * name table for tracks (timeline rows, e.g. "A.cpu") and labels
 * (fine-grained step names). When the ring fills, the oldest spans are
 * overwritten flight-recorder style and counted as dropped.
 *
 * Span taxonomy (see DESIGN.md §11):
 *  - custody spans (isCustody()) tile the message lifetime end to end:
 *    App, TxPost, TxNic / TxFw, Wire, RxKernel / RxFw, RxQueue;
 *  - detail spans (Step, AmHandler) annotate work *within* custody
 *    spans and are excluded from latency sums.
 */

#ifndef UNET_OBS_TRACE_HH
#define UNET_OBS_TRACE_HH

#include <array>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.hh"
#include "obs/trace_ctx.hh"
#include "sim/time.hh"

namespace unet::obs {

/** What a span measures; custody kinds partition the message lifetime. */
enum class SpanKind : std::uint8_t {
    App,       ///< application thinking/turnaround time (bench-recorded)
    TxPost,    ///< send() posted -> descriptor reaches NIC/firmware
    TxNic,     ///< FE NIC: descriptor fetch + DMA -> first bit on wire
    TxFw,      ///< ATM i960: doorbell -> last cell on the wire
    Wire,      ///< serialization + hub/switch/fabric + receive DMA
    RxKernel,  ///< FE kernel agent: rx interrupt -> delivered to endpoint
    RxFw,      ///< ATM i960: reassembly -> delivered to endpoint
    RxQueue,   ///< sitting in the endpoint recv queue until consumed
    AmHandler, ///< detail: active-message handler dispatch
    Step,      ///< detail: one modeled cost step (Figure 3/4 rows)
    Fault,     ///< detail: an injected fault hit this message
    Count
};

const char *spanKindName(SpanKind k);

/** True for kinds that tile the message lifetime (sum to latency). */
bool isCustody(SpanKind k);

/** One recorded interval on one track. */
struct Span
{
    std::uint64_t id = 0; ///< message id; 0 = not tied to a message
    sim::Tick start = 0;
    sim::Tick end = 0;
    SpanKind kind = SpanKind::App;
    std::uint16_t track = 0; ///< name-table index of the timeline row
    std::uint16_t label = 0; ///< name-table index; 0 = use kind name
};

/** The span recorder. Created via sim::Simulation::enableTrace(). */
class TraceSession
{
  public:
    /**
     * @param capacity ring size in spans (allocated up front).
     * @param reg      registry to publish trace.* metrics into.
     */
    explicit TraceSession(std::size_t capacity = 1 << 16,
                          Registry *reg = nullptr);

    TraceSession(const TraceSession &) = delete;
    TraceSession &operator=(const TraceSession &) = delete;

    /** Allocate a fresh message id (never 0). */
    std::uint64_t
    newMessageId()
    {
        ++_messages;
        return _nextId++;
    }

    /** Intern @p s; returns a stable index (0 is the empty name). */
    std::uint16_t name(std::string_view s);

    const std::string &nameOf(std::uint16_t idx) const
    {
        return _names[idx];
    }

    /** Record one span. */
    void record(std::uint64_t id, SpanKind kind, std::uint16_t track,
                sim::Tick start, sim::Tick end, std::uint16_t label = 0);

    /** Convenience: intern the track/label names on the fly. */
    void
    record(std::uint64_t id, SpanKind kind, std::string_view track,
           sim::Tick start, sim::Tick end, std::string_view label = {})
    {
        record(id, kind, name(track), start, end,
               label.empty() ? 0 : name(label));
    }

#if UNET_TRACE
    /** Stamp a fresh id onto @p ctx with custody starting now. */
    void
    begin(TraceContext &ctx, sim::Tick now)
    {
        ctx.id = newMessageId();
        ctx.handoff = now;
    }

    /**
     * Custody handoff: record [ctx.handoff, now] on @p track and
     * advance the handoff point. No-op for untraced messages.
     */
    void
    hop(TraceContext &ctx, SpanKind kind, std::string_view track,
        sim::Tick now, std::string_view label = {})
    {
        if (!ctx)
            return;
        record(ctx.id, kind, name(track), ctx.handoff, now,
               label.empty() ? 0 : name(label));
        ctx.handoff = now;
    }
#endif

    /** Spans currently retained (<= capacity). */
    std::size_t
    size() const
    {
        return _written < _cap ? static_cast<std::size_t>(_written)
                               : _cap;
    }

    std::size_t capacity() const { return _cap; }

    /** Total spans ever recorded. */
    std::uint64_t recorded() const { return _written; }

    /** Spans overwritten because the ring filled. */
    std::uint64_t
    dropped() const
    {
        return _written > _cap ? _written - _cap : 0;
    }

    std::uint64_t messages() const { return _messages.value(); }

    /** Visit retained spans oldest-first. */
    template <typename F>
    void
    forEach(F &&f) const
    {
        if (_written <= _cap) {
            for (std::uint64_t i = 0; i < _written; ++i)
                f(_ring[static_cast<std::size_t>(i)]);
        } else {
            std::size_t head = static_cast<std::size_t>(_written % _cap);
            for (std::size_t i = 0; i < _cap; ++i)
                f(_ring[(head + i) % _cap]);
        }
    }

    /** Copy of the retained spans, oldest-first. */
    std::vector<Span> snapshot() const;

    /** Per-kind duration distribution (nanoseconds). */
    const Histogram &
    kindHistogram(SpanKind k) const
    {
        return _kindHist[static_cast<std::size_t>(k)];
    }

    /** Drop all retained spans (name table and ids survive). */
    void clear();

  private:
    std::vector<Span> _ring;
    std::size_t _cap;
    std::uint64_t _written = 0;
    std::uint64_t _nextId = 1;

    std::map<std::string, std::uint16_t, std::less<>> _nameIds;
    std::vector<std::string> _names;

    std::array<Histogram, static_cast<std::size_t>(SpanKind::Count)>
        _kindHist;
    sim::Counter _messages;
    sim::Counter _spans;

    std::optional<MetricGroup> _metrics;
};

} // namespace unet::obs

#endif // UNET_OBS_TRACE_HH
