/**
 * @file
 * Run digests for determinism auditing.
 *
 * A digest is a 64-bit FNV-1a hash folded over everything a run is
 * supposed to reproduce bit-for-bit: event ticks, metric values, trace
 * spans. The determinism suites run the same workload under several
 * UNET_PERTURB salts (see sim/perturb.hh) and assert the digests are
 * identical — any hidden dependence on same-tick scheduling order or
 * host addresses shows up as a digest mismatch, with the offending
 * metric findable by diffing the two dumps.
 *
 * Doubles are mixed by bit pattern, not formatting, so the digest is
 * exact (and distinguishes -0.0 from 0.0 — if a metric's sign flips
 * between salts, that is a real divergence).
 */

#ifndef UNET_OBS_DIGEST_HH
#define UNET_OBS_DIGEST_HH

#include <bit>
#include <cstdint>
#include <string_view>

#include "obs/metrics.hh"

namespace unet::obs {

/** Incremental 64-bit FNV-1a over heterogeneous values. */
class Digest
{
  public:
    Digest &
    mix(std::string_view s)
    {
        for (unsigned char c : s)
            step(c);
        step(0xff); // length delimiter: mix("ab","c") != mix("a","bc")
        return *this;
    }

    Digest &
    mix(std::uint64_t v)
    {
        for (int i = 0; i < 8; ++i)
            step(static_cast<unsigned char>(v >> (8 * i)));
        return *this;
    }

    Digest &mix(std::int64_t v)
    {
        return mix(static_cast<std::uint64_t>(v));
    }

    Digest &
    mix(double v)
    {
        return mix(std::bit_cast<std::uint64_t>(v));
    }

    /** Fold every element of a range (of mixable values). */
    template <typename Range>
    Digest &
    mixRange(const Range &range)
    {
        for (const auto &v : range)
            mix(v);
        return *this;
    }

    std::uint64_t value() const { return h; }

  private:
    void
    step(unsigned char byte)
    {
        h ^= byte;
        h *= 0x100000001b3ULL;
    }

    std::uint64_t h = 0xcbf29ce484222325ULL;
};

/**
 * Digest of a full metrics registry: every (path, value) pair of
 * dump(), in its sorted order. Two runs with equal digests agree on
 * every counter, gauge, and histogram stat.
 */
inline std::uint64_t
digestOf(const Registry &registry)
{
    Digest d;
    for (const auto &[path, value] : registry.dump())
        d.mix(path).mix(value);
    return d.value();
}

} // namespace unet::obs

#endif // UNET_OBS_DIGEST_HH
