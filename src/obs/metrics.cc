#include "obs/metrics.hh"

#include <cassert>
#include <ostream>

namespace unet::obs {

void
Registry::add(std::string path, Entry e)
{
    audit("register metric", /*write=*/true);
    // Colliding registrations indicate a component that should have used
    // uniquePrefix(); the later registration wins so the registry never
    // points at a stale object.
    auto it = _entries.find(path);
    if (it != _entries.end())
        it->second = std::move(e);
    else
        _entries.emplace(std::move(path), std::move(e));
}

void
Registry::addCounter(std::string path, const sim::Counter *c)
{
    assert(c != nullptr);
    Entry e;
    e.counter = c;
    add(std::move(path), std::move(e));
}

void
Registry::addGauge(std::string path, GaugeFn fn)
{
    assert(fn);
    Entry e;
    e.gauge = std::move(fn);
    add(std::move(path), std::move(e));
}

void
Registry::addHistogram(std::string path, const Histogram *h)
{
    assert(h != nullptr);
    Entry e;
    e.hist = h;
    add(std::move(path), std::move(e));
}

void
Registry::remove(const std::string &path)
{
    audit("remove metric", /*write=*/true);
    _entries.erase(path);
}

std::string
Registry::uniquePrefix(const std::string &base)
{
    int n = ++_prefixes[base];
    if (n == 1)
        return base;
    return base + "#" + std::to_string(n);
}

bool
Registry::has(std::string_view path) const
{
    return _entries.find(path) != _entries.end();
}

namespace {

double
histStat(const Histogram &h, std::string_view stat)
{
    if (stat == "count")
        return static_cast<double>(h.count());
    if (stat == "sum")
        return static_cast<double>(h.sum());
    if (stat == "mean")
        return h.mean();
    if (stat == "min")
        return static_cast<double>(h.min());
    if (stat == "max")
        return static_cast<double>(h.max());
    if (stat == "p50")
        return h.quantile(0.50);
    if (stat == "p90")
        return h.quantile(0.90);
    if (stat == "p99")
        return h.quantile(0.99);
    if (stat == "p999")
        return h.quantile(0.999);
    return 0.0;
}

} // namespace

double
Registry::value(std::string_view path) const
{
    auto it = _entries.find(path);
    if (it != _entries.end()) {
        const Entry &e = it->second;
        if (e.counter)
            return static_cast<double>(e.counter->value());
        if (e.gauge)
            return e.gauge();
        if (e.hist)
            return static_cast<double>(e.hist->count());
        return 0.0;
    }
    // Histogram derived stat: "<hist-path>.<stat>".
    auto dot = path.rfind('.');
    if (dot != std::string_view::npos) {
        auto base = _entries.find(path.substr(0, dot));
        if (base != _entries.end() && base->second.hist)
            return histStat(*base->second.hist, path.substr(dot + 1));
    }
    return 0.0;
}

std::vector<std::pair<std::string, double>>
Registry::dump() const
{
    static constexpr const char *histStats[] = {
        "count", "sum", "mean", "min", "max", "p50", "p90", "p99",
        "p999",
    };
    audit("dump sweep", /*write=*/false);
    std::vector<std::pair<std::string, double>> out;
    out.reserve(_entries.size());
    for (const auto &[path, e] : _entries) {
        if (e.hist) {
            for (const char *stat : histStats)
                out.emplace_back(path + "." + stat,
                                 histStat(*e.hist, stat));
        } else {
            out.emplace_back(path, value(path));
        }
    }
    return out;
}

void
Registry::writeJson(std::ostream &os) const
{
    os << "{";
    bool first = true;
    for (const auto &[path, v] : dump()) {
        if (!first)
            os << ",";
        first = false;
        // Paths are dotted identifiers; no JSON escaping needed.
        os << "\n  \"" << path << "\": " << v;
    }
    os << "\n}\n";
}

} // namespace unet::obs
