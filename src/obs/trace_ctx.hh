/**
 * @file
 * The trace context that travels with a message.
 *
 * Custody-handoff tracing: a TraceContext is stamped onto a message when
 * the application posts it and is copied along with the message through
 * every queue, descriptor, frame, and cell it passes through. Each
 * custody transfer records the span [ctx.handoff, now] and advances
 * ctx.handoff to now, so a message's custody spans *partition* the
 * interval from send-post to final consumption — their durations sum
 * exactly to the end-to-end latency, even when hardware stages overlap.
 *
 * With UNET_TRACE=0 the context collapses to an empty struct and every
 * hook site compiles away; with UNET_TRACE=1 but no TraceSession enabled
 * the hooks cost one pointer test.
 */

#ifndef UNET_OBS_TRACE_CTX_HH
#define UNET_OBS_TRACE_CTX_HH

#include <cstdint>

#include "sim/time.hh"

#ifndef UNET_TRACE
#define UNET_TRACE 1
#endif

namespace unet::obs {

#if UNET_TRACE

/** Per-message trace state; id 0 means "not traced". */
struct TraceContext
{
    std::uint64_t id = 0;
    sim::Tick handoff = 0;

    explicit operator bool() const { return id != 0; }
};

#else

/** Tracing compiled out: no state, always false. */
struct TraceContext
{
    explicit operator bool() const { return false; }
};

#endif

} // namespace unet::obs

#endif // UNET_OBS_TRACE_CTX_HH
