#include "cluster/cluster.hh"

#include "sim/logging.hh"

namespace unet::cluster {

Config
Config::feCluster(int nodes, NetKind sw, bool paper_hosts)
{
    Config c;
    c.net = sw;
    c.nodes = nodes;
    c.bus = host::BusSpec::pci();
    if (paper_hosts) {
        // "one 90 MHz and seven 120 MHz Pentium workstations"
        c.cpus = {host::CpuSpec::pentium90(),
                  host::CpuSpec::pentium120()};
    } else {
        c.cpus = {host::CpuSpec::pentium120()};
    }
    return c;
}

Config
Config::atmSplitC(int nodes, bool paper_hosts)
{
    Config c;
    c.net = NetKind::Atm;
    c.nodes = nodes;
    c.bus = host::BusSpec::sbus();
    c.atmLink = atm::LinkSpec::taxi140();
    if (paper_hosts) {
        // "4 SPARCStation 20s and 4 SPARCStation 10s": the first half
        // of any cluster size gets SS20s.
        c.cpus.clear();
        for (int i = 0; i < nodes; ++i)
            c.cpus.push_back(i < (nodes + 1) / 2
                                 ? host::CpuSpec::sparc20()
                                 : host::CpuSpec::sparc10());
    } else {
        c.cpus = {host::CpuSpec::sparc20()};
    }
    return c;
}

Config
Config::atmPca200(int nodes)
{
    Config c;
    c.net = NetKind::Atm;
    c.nodes = nodes;
    c.bus = host::BusSpec::pci();
    c.atmLink = atm::LinkSpec::oc3();
    c.cpus = {host::CpuSpec::pentium120()};
    return c;
}

Cluster::Cluster(sim::Simulation &sim, Config cfg)
    : sim(sim), config(std::move(cfg))
{
    if (config.nodes < 1)
        UNET_FATAL("cluster needs at least one node");
    if (config.cpus.empty())
        UNET_FATAL("cluster config has no CPU specs");

    // Fabric first.
    eth::Network *fe_net = nullptr;
    switch (config.net) {
      case NetKind::FeHub:
        hub = std::make_unique<eth::Hub>(sim, config.hub);
        fe_net = hub.get();
        break;
      case NetKind::FeBay28115:
        ethSwitch = std::make_unique<eth::Switch>(
            sim, eth::SwitchSpec::bay28115());
        fe_net = ethSwitch.get();
        break;
      case NetKind::FeFn100:
        ethSwitch = std::make_unique<eth::Switch>(
            sim, eth::SwitchSpec::fn100());
        fe_net = ethSwitch.get();
        break;
      case NetKind::Atm:
        atmSwitch = std::make_unique<atm::Switch>(sim,
                                                  config.atmSwitch);
        signalling = std::make_unique<atm::Signalling>(*atmSwitch);
        break;
    }

    // Nodes.
    for (int i = 0; i < config.nodes; ++i) {
        auto node = std::make_unique<Node>();
        const host::CpuSpec &cpu =
            config.cpus[std::min<std::size_t>(
                static_cast<std::size_t>(i), config.cpus.size() - 1)];
        node->host = std::make_unique<host::Host>(
            sim, "node" + std::to_string(i), cpu, config.bus);

        if (config.net == NetKind::Atm) {
            node->link = std::make_unique<atm::AtmLink>(
                sim, config.atmLink);
            node->nicAtm = std::make_unique<nic::Pca200>(
                *node->host, *node->link);
            atmPorts.push_back(atmSwitch->addPort(*node->link));
            node->unet = std::make_unique<UNetAtm>(*node->host,
                                                   *node->nicAtm);
        } else {
            node->nicFe = std::make_unique<nic::Dc21140>(
                *node->host, *fe_net,
                eth::MacAddress::fromIndex(
                    static_cast<std::uint32_t>(i + 1)));
            node->unet = std::make_unique<UNetFe>(*node->host,
                                                  *node->nicFe);
        }
        nodes.push_back(std::move(node));
    }

    // Processes (endpoint owners), endpoints, runtimes.
    for (int i = 0; i < config.nodes; ++i) {
        Node &node = *nodes[i];
        node.proc = std::make_unique<sim::Process>(
            sim, "spmd" + std::to_string(i),
            [this, i](sim::Process &p) {
                mainFn(*nodes[i]->runtime, p);
                nodes[i]->finishedAt = p.simulation().now();
            },
            config.stackBytes);
        node.endpoint = &node.unet->createEndpoint(node.proc.get(),
                                                   config.endpoint);
        node.runtime = std::make_unique<splitc::Runtime>(
            *node.unet, *node.endpoint, i, config.nodes,
            config.heapBytes, config.am);
        node.runtime->bindOwner(node.proc.get());
    }

    // Full mesh of channels.
    for (int i = 0; i < config.nodes; ++i) {
        for (int j = i + 1; j < config.nodes; ++j) {
            ChannelId ci = invalidChannel, cj = invalidChannel;
            if (config.net == NetKind::Atm) {
                UNetAtm::connect(
                    static_cast<UNetAtm &>(*nodes[i]->unet),
                    *nodes[i]->endpoint, atmPorts[i],
                    static_cast<UNetAtm &>(*nodes[j]->unet),
                    *nodes[j]->endpoint, atmPorts[j], *signalling, ci,
                    cj);
            } else {
                UNetFe::connect(
                    static_cast<UNetFe &>(*nodes[i]->unet),
                    *nodes[i]->endpoint,
                    static_cast<UNetFe &>(*nodes[j]->unet),
                    *nodes[j]->endpoint, ci, cj);
            }
            nodes[i]->runtime->setChannel(j, ci);
            nodes[j]->runtime->setChannel(i, cj);
        }
    }
}

Cluster::~Cluster() = default;

sim::Tick
Cluster::run(std::function<void(splitc::Runtime &, sim::Process &)> main)
{
    if (ran)
        UNET_FATAL("a Cluster can run one SPMD program; build another");
    ran = true;
    mainFn = std::move(main);

    sim::Tick start = sim.now();
    for (auto &node : nodes)
        node->proc->start();
    if (config.simTimeLimit > 0)
        sim.runUntil(start + config.simTimeLimit);
    else
        sim.run();

    sim::Tick finish = start;
    bool all_done = true;
    for (auto &node : nodes)
        all_done = all_done && node->proc->finished();
    if (!all_done) {
        for (auto &node : nodes) {
            auto &am = node->runtime->am();
            std::fprintf(stderr,
                         "  %s: finished=%d sent=%llu recv=%llu "
                         "retx=%llu dead=%llu sendq=%zu recvq=%zu\n",
                         node->proc->name().c_str(),
                         node->proc->finished() ? 1 : 0,
                         static_cast<unsigned long long>(am.sent()),
                         static_cast<unsigned long long>(
                             am.received()),
                         static_cast<unsigned long long>(
                             am.retransmits()),
                         static_cast<unsigned long long>(
                             am.deadChannels()),
                         node->endpoint->sendQueue().size(),
                         node->endpoint->recvQueue().size());
        }
        UNET_FATAL("SPMD program did not finish",
                   config.simTimeLimit
                       ? " within the simulated-time watchdog"
                       : " (event queue drained: deadlock)");
    }
    for (auto &node : nodes)
        finish = std::max(finish, node->finishedAt);
    return finish - start;
}

} // namespace unet::cluster
