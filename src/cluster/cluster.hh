/**
 * @file
 * One-call construction of the paper's experimental platforms.
 *
 * "The Fast Ethernet experimental platform consists of a cluster of one
 * 90 MHz and seven 120 MHz Pentium workstations running Linux and
 * connected by a Bay Networks 28115 16-port switch ... while the ATM
 * experimental platform consists of a cluster of 4 SPARCStation 20s and
 * 4 SPARCStation 10s ... connected by a Fore ASX-200 switch to a
 * 140 Mbps ATM network."
 *
 * A Cluster builds N hosts with their NICs, network fabric, U-Net
 * instances, endpoints, Active Messages, Split-C runtimes, and a full
 * mesh of channels, then runs an SPMD program on every node.
 */

#ifndef UNET_CLUSTER_CLUSTER_HH
#define UNET_CLUSTER_CLUSTER_HH

#include <functional>
#include <memory>
#include <vector>

#include "atm/switch.hh"
#include "eth/hub.hh"
#include "eth/link.hh"
#include "eth/switch.hh"
#include "splitc/runtime.hh"
#include "unet/unet_atm.hh"
#include "unet/unet_fe.hh"

namespace unet::cluster {

/** Which fabric connects the nodes. */
enum class NetKind {
    FeHub,      ///< 100BaseTX repeater hub (shared medium)
    FeBay28115, ///< Bay Networks 28115 16-port switch
    FeFn100,    ///< Cabletron FastNet-100 8-port switch
    Atm,        ///< FORE ASX-200 cell switch
};

/** Cluster recipe. */
struct Config
{
    NetKind net = NetKind::FeBay28115;
    int nodes = 2;

    /** Per-node CPUs; if fewer entries than nodes, the last repeats. */
    std::vector<host::CpuSpec> cpus{host::CpuSpec::pentium120()};

    host::BusSpec bus = host::BusSpec::pci();
    atm::LinkSpec atmLink = atm::LinkSpec::oc3();
    atm::SwitchSpec atmSwitch = atm::SwitchSpec::asx200();
    eth::HubSpec hub;

    std::size_t heapBytes = 24 * 1024 * 1024;
    EndpointConfig endpoint = deepQueues();
    am::AmSpec am;

    /** SPMD meshes keep many channels busy at once; size the U-Net
     *  queues for the full-fan-in case. */
    static EndpointConfig
    deepQueues()
    {
        EndpointConfig ep;
        ep.sendQueueDepth = 256;
        ep.recvQueueDepth = 256;
        ep.freeQueueDepth = 128;
        return ep;
    }

    /** Fiber stack per node process. */
    std::size_t stackBytes = 4 * 1024 * 1024;

    /** Watchdog: abort the run (with per-node diagnostics) if the SPMD
     *  program has not finished after this much *simulated* time.
     *  0 disables the watchdog. */
    sim::Tick simTimeLimit = 0;

    /** The paper's FE cluster: one Pentium-90 plus Pentium-120s. */
    static Config feCluster(int nodes,
                            NetKind sw = NetKind::FeBay28115,
                            bool paper_hosts = true);

    /** The paper's Split-C ATM cluster: SS20s + SS10s, SBus SBA-200,
     *  140 Mbps TAXI, ASX-200. */
    static Config atmSplitC(int nodes, bool paper_hosts = true);

    /** The latency/bandwidth rig: Pentiums with PCI PCA-200s on
     *  OC-3c. */
    static Config atmPca200(int nodes);
};

/** A fully wired cluster. */
class Cluster
{
  public:
    Cluster(sim::Simulation &sim, Config config);
    ~Cluster();

    Cluster(const Cluster &) = delete;
    Cluster &operator=(const Cluster &) = delete;

    int size() const { return config.nodes; }
    sim::Simulation &simulation() { return sim; }

    splitc::Runtime &runtime(int i) { return *nodes.at(i)->runtime; }
    host::Host &hostOf(int i) { return *nodes.at(i)->host; }
    UNet &unetOf(int i) { return *nodes.at(i)->unet; }
    Endpoint &endpointOf(int i) { return *nodes.at(i)->endpoint; }

    /**
     * Run @p main as an SPMD program on every node. Can be called once
     * per cluster. @return simulated time from start to the last
     * node's completion.
     */
    sim::Tick
    run(std::function<void(splitc::Runtime &, sim::Process &)> main);

  private:
    struct Node
    {
        std::unique_ptr<host::Host> host;
        std::unique_ptr<atm::AtmLink> link;   ///< ATM only
        std::unique_ptr<nic::Dc21140> nicFe;  ///< FE only
        std::unique_ptr<nic::Pca200> nicAtm;  ///< ATM only
        std::unique_ptr<UNet> unet;
        Endpoint *endpoint = nullptr;
        std::unique_ptr<splitc::Runtime> runtime;
        std::unique_ptr<sim::Process> proc;
        sim::Tick finishedAt = 0;
    };

    sim::Simulation &sim;
    Config config;

    // Fabric (one of these is populated).
    std::unique_ptr<eth::Hub> hub;
    std::unique_ptr<eth::Switch> ethSwitch;
    std::unique_ptr<atm::Switch> atmSwitch;
    std::unique_ptr<atm::Signalling> signalling;
    std::vector<std::size_t> atmPorts;

    std::vector<std::unique_ptr<Node>> nodes;
    std::function<void(splitc::Runtime &, sim::Process &)> mainFn;
    bool ran = false;
};

} // namespace unet::cluster

#endif // UNET_CLUSTER_CLUSTER_HH
