#include "check/ownership.hh"

#include "sim/logging.hh"
#include "sim/perturb.hh"

namespace unet::check {

const char *
name(BufState state)
{
    switch (state) {
      case BufState::TxPosted:
        return "posted-to-send";
      case BufState::TxAgent:
        return "agent-owned (tx gather)";
      case BufState::RxPosted:
        return "rx-posted (free queue)";
      case BufState::RxAgent:
        return "agent-owned (rx fill)";
      case BufState::Delivered:
        return "delivered";
    }
    return "unknown";
}

#if defined(UNET_CHECK) && UNET_CHECK

void
OwnershipTracker::checkBounds(BufferRef ref, const char *op) const
{
    if (static_cast<std::size_t>(ref.offset) + ref.length > areaBytes)
        UNET_PANIC(op, ": descriptor [", ref.offset, "+", ref.length,
                   "] outside the ", areaBytes, "-byte buffer area");
}

void
OwnershipTracker::checkNoOverlap(BufferRef ref, const char *op) const
{
    std::uint32_t end = ref.offset + ref.length;
    auto it = regions.upper_bound(ref.offset);
    if (it != regions.begin()) {
        auto prev = std::prev(it);
        if (prev->first + prev->second.length > ref.offset)
            UNET_PANIC(op, ": [", ref.offset, "+", ref.length,
                       "] overlaps region [", prev->first, "+",
                       prev->second.length, "] in state ",
                       name(prev->second.state));
    }
    if (it != regions.end() && it->first < end)
        UNET_PANIC(op, ": [", ref.offset, "+", ref.length,
                   "] overlaps region [", it->first, "+",
                   it->second.length, "] in state ",
                   name(it->second.state));
}

OwnershipTracker::Region *
OwnershipTracker::findExact(BufferRef ref)
{
    auto it = regions.find(ref.offset);
    return it == regions.end() ? nullptr : &it->second;
}

OwnershipTracker::Region *
OwnershipTracker::findContaining(BufferRef ref)
{
    auto it = regions.upper_bound(ref.offset);
    if (it == regions.begin())
        return nullptr;
    --it;
    if (it->first + it->second.length <
        static_cast<std::size_t>(ref.offset) + ref.length)
        return nullptr;
    return &it->second;
}

void
OwnershipTracker::transition(BufferRef ref, BufState from, BufState to,
                             const char *op)
{
    Region *region = findExact(ref);
    if (!region)
        return; // posted outside the tracked API (boot-time / tests)
    if (region->state != from)
        UNET_PANIC(op, ": region [", ref.offset, "+", region->length,
                   "] is ", name(region->state), ", expected ",
                   name(from));
    if (ref.length > region->length)
        UNET_PANIC(op, ": reference [", ref.offset, "+", ref.length,
                   "] exceeds the ", region->length,
                   "-byte region posted there");
    region->state = to;
}

void
OwnershipTracker::postSend(BufferRef ref)
{
    if (ref.length == 0)
        return;
    checkBounds(ref, "postSend");
    checkNoOverlap(ref, "postSend");
    regions[ref.offset] = {ref.length, BufState::TxPosted};
}

void
OwnershipTracker::postFree(BufferRef ref)
{
    if (ref.length == 0)
        return;
    checkBounds(ref, "postFree");
    checkNoOverlap(ref, "postFree");
    regions[ref.offset] = {ref.length, BufState::RxPosted};
}

void
OwnershipTracker::claimSend(BufferRef ref)
{
    transition(ref, BufState::TxPosted, BufState::TxAgent, "claimSend");
}

void
OwnershipTracker::releaseSend(BufferRef ref)
{
    Region *region = findExact(ref);
    if (!region)
        return;
    if (region->state != BufState::TxPosted &&
        region->state != BufState::TxAgent)
        UNET_PANIC("releaseSend: region [", ref.offset, "+",
                   region->length, "] is ", name(region->state));
    regions.erase(ref.offset);
}

void
OwnershipTracker::claimRecv(BufferRef ref)
{
    transition(ref, BufState::RxPosted, BufState::RxAgent, "claimRecv");
}

void
OwnershipTracker::unclaimRecv(BufferRef ref)
{
    transition(ref, BufState::RxAgent, BufState::RxPosted,
               "unclaimRecv");
}

void
OwnershipTracker::releaseRecv(BufferRef ref)
{
    Region *region = findExact(ref);
    if (!region)
        return;
    if (region->state != BufState::RxAgent)
        UNET_PANIC("releaseRecv: region [", ref.offset, "+",
                   region->length, "] is ", name(region->state));
    regions.erase(ref.offset);
}

void
OwnershipTracker::rxWrite(BufferRef ref)
{
    if (ref.length == 0)
        return;
    checkBounds(ref, "rxWrite");
    Region *region = findContaining(ref);
    if (!region)
        return; // buffer never went through the tracked API
    if (region->state != BufState::RxAgent)
        UNET_PANIC("rxWrite: receive data written into [", ref.offset,
                   "+", ref.length, "] which is ", name(region->state));
}

void
OwnershipTracker::deliver(BufferRef ref)
{
    transition(ref, BufState::RxAgent, BufState::Delivered, "deliver");
}

void
OwnershipTracker::consume(BufferRef ref)
{
    Region *region = findExact(ref);
    if (!region)
        return;
    if (region->state != BufState::Delivered)
        UNET_PANIC("consume: region [", ref.offset, "+", region->length,
                   "] is ", name(region->state), ", expected delivered");
    // The application regains the whole posted buffer, including any
    // tail the message did not fill.
    regions.erase(ref.offset);
}

std::size_t
OwnershipTracker::bytesIn(BufState state) const
{
    std::size_t total = 0;
    for (const auto &[offset, region] : regions)
        if (region.state == state)
            total += region.length;
    return total;
}

void
OwnershipTracker::audit() const
{
    std::uint64_t prev_end = 0;
    for (const auto &[offset, region] : regions) {
        if (offset < prev_end)
            UNET_PANIC("ownership audit: region [", offset, "+",
                       region.length, "] overlaps the previous region "
                       "ending at ", prev_end);
        if (offset + region.length > areaBytes)
            UNET_PANIC("ownership audit: region [", offset, "+",
                       region.length, "] exceeds the ", areaBytes,
                       "-byte buffer area");
        prev_end = offset + region.length;
    }
}

std::uint64_t
OwnershipTracker::stateHash() const
{
    // regions is ordered by offset, so this is schedule-independent.
    std::uint64_t h = sim::perturb::mix(0x6f776e, areaBytes);
    for (const auto &[offset, region] : regions)
        h = sim::perturb::mix(
            h, (static_cast<std::uint64_t>(offset) << 32) ^
                   (static_cast<std::uint64_t>(region.length) << 8) ^
                   static_cast<std::uint64_t>(region.state));
    return h;
}

#endif // UNET_CHECK

} // namespace unet::check
