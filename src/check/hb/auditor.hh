/**
 * @file
 * Happens-before race auditor for the fiber/event core.
 *
 * The simulator is cooperatively scheduled: one context runs at a
 * time, so nothing ever races in the OS sense. The planned parallel
 * discrete-event backend (ROADMAP) breaks that guarantee — shards run
 * concurrently and only *scheduler edges* order work across them. This
 * auditor answers, on today's serial runs, the question that plan
 * depends on: which guarded state is provably ordered by scheduler
 * edges, and which pairs of accesses merely happen to be serialized by
 * the single-threaded event loop?
 *
 * Mechanism: a vector-clock happens-before analysis in the style of
 * dynamic race detectors (ThreadSanitizer/FastTrack), driven by the
 * scheduler's true ordering edges via sim::TaskObserver:
 *
 *  - schedule -> fire: an event is ordered after the context that
 *    scheduled it (this one edge also covers WaitChannel::notifyAll
 *    and Process::delay, both of which wake fibers through scheduled
 *    resume events);
 *  - fiber resume/suspend: a fiber task is ordered after the event
 *    that resumed it, and the event's remaining code is ordered after
 *    the fiber's yield (synchronous call nesting);
 *  - same-tick FIFO: Order::dependent events at one tick fire in
 *    scheduling order by documented contract, so each is ordered
 *    after the previous dependent event of that tick;
 *  - boot/harness: the main context is ordered after every event that
 *    has already fired (the run loop returns before harness code
 *    inspects state).
 *
 * Clocks use chain decomposition: every task extends an existing
 * chain when it is ordered after that chain's current tail, so clock
 * width tracks the number of genuinely concurrent contexts, not the
 * number of tasks. Each fiber keeps a persistent chain.
 *
 * Access instrumentation rides on the PR-5 ContextGuard custody plane:
 * every mutate()/observe()/Scope on a guard records the calling
 * task's clock, shard domain, and call site into the guard's shadow
 * state (last writer, last reader per chain). An access pair that is
 * (a) unordered by the edges above and (b) tagged with two different
 * non-empty shard domains is a latent cross-shard race: under the
 * parallel plan those two contexts live on different threads with no
 * synchronization between them. Races carry both source locations and
 * the active UNET_PERTURB salt, so a flagged schedule is replayable.
 *
 * Shard domains come from two sources: Process::bindShardDomain for
 * fibers, and ScopedTaskDomain retags at servicing entry points
 * (kernel trap/interrupt handlers, NIC firmware, hub/switch fabric).
 * Untagged contexts (empty domain) are benign wildcards — boot code
 * and fixtures touch everything by design.
 */

#ifndef UNET_CHECK_HB_AUDITOR_HH
#define UNET_CHECK_HB_AUDITOR_HH

#include <cstdint>
#include <map>
#include <set>
#include <source_location>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/event.hh"

namespace unet::sim {
class Simulation;
}

namespace unet::check {
class ContextGuard;
}

namespace unet::check::hb {

/** Ordering-edge kinds, as a bitmask (report classification). */
enum Edge : unsigned
{
    edgeBoot = 1u << 0,     ///< main/harness context
    edgeSchedule = 1u << 1, ///< event schedule -> fire
    edgeFiber = 1u << 2,    ///< fiber suspend/resume bracket
    edgeFifo = 1u << 3,     ///< same-tick Order::dependent FIFO
    edgeCall = 1u << 4,     ///< synchronous cross-domain entry
};

/** The set bits of @p mask as sorted edge names. */
std::vector<std::string> edgeNames(unsigned mask);

/** One recorded access site. */
struct AccessSite
{
    const char *op = "";
    const char *file = "";
    unsigned line = 0;
};

/** One flagged unordered cross-domain access pair. */
struct RaceRecord
{
    std::string object;       ///< guard label
    const char *kind = "";    ///< "write/write" or "read/write"
    std::string firstDomain;  ///< shard domain of the earlier access
    std::string secondDomain; ///< shard domain of the later access
    AccessSite first;
    AccessSite second;
    std::uint64_t salt = 0; ///< UNET_PERTURB salt, for replay
};

/** Aggregated per-object classification for the shardability report. */
struct ObjectSummary
{
    std::set<std::string> domains; ///< non-empty shard domains seen
    unsigned edges = 0;            ///< Edge mask over all accesses
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t races = 0;
    bool classifyOnly = false; ///< race checking suppressed (see cc)
};

#if defined(UNET_CHECK) && UNET_CHECK

/** Vector clock: chain id -> epoch. */
using VectorClock = std::map<std::uint32_t, std::uint64_t>;

/**
 * The auditor itself. Construct one per simulation (it installs
 * itself as the queue's TaskObserver and as the thread's current
 * auditor); run the workload; read races() and objects(). At most one
 * auditor may be live per thread.
 */
class Auditor : public sim::TaskObserver
{
  public:
    explicit Auditor(sim::Simulation &sim);
    ~Auditor() override;

    Auditor(const Auditor &) = delete;
    Auditor &operator=(const Auditor &) = delete;

    /** The live auditor on this thread, or nullptr (guard hooks). */
    static Auditor *current();

    /** @name sim::TaskObserver — the scheduler's ordering edges. @{ */
    void onEventScheduled(std::uint64_t seq, sim::Tick when,
                          sim::Order order) override;
    void onEventFireBegin(std::uint64_t seq, sim::Tick when,
                          sim::Order order) override;
    void onEventFireEnd(std::uint64_t seq) override;
    void onEventCancelled(std::uint64_t seq) override;
    void onFiberResume(sim::Process &proc) override;
    void onFiberSuspend(sim::Process &proc) override;
    /** @} */

    /** Guard plane: one instrumented access (see noteGuardAccess). */
    void recordAccess(const ContextGuard &guard, const char *op,
                      bool write, const std::source_location &site);

    /** Guard plane: drop shadow state for a dying guard. */
    void guardDestroyed(const ContextGuard &guard);

    /** Flagged races, in detection order. */
    const std::vector<RaceRecord> &races() const { return _races; }

    /** Per-object classification, keyed by guard label (sorted). */
    const std::map<std::string, ObjectSummary> &objects() const
    {
        return _objects;
    }

    /** Number of clock chains allocated (diagnostic). */
    std::size_t chainCount() const { return _chainTail.size(); }

  private:
    friend class ScopedTaskDomain;

    /** One live execution context (event task or fiber slice). */
    struct TaskCtx
    {
        VectorClock clock;
        std::uint32_t chain = 0;
        std::string domain;
        unsigned edges = edgeBoot;
    };

    /** Clock snapshot taken when an event was scheduled. */
    struct Snapshot
    {
        VectorClock clock;
        std::string domain;
        std::uint32_t chain = 0;
    };

    /** Persistent per-fiber clock state across suspensions. */
    struct FiberState
    {
        VectorClock clock;
        std::uint32_t chain = 0;
        bool chainAssigned = false;
    };

    /** One shadowed access (FastTrack-style last writer/readers). */
    struct Access
    {
        std::uint32_t chain = 0;
        std::uint64_t epoch = 0;
        std::string domain;
        AccessSite site;
    };

    /** Shadow state for one guard. */
    struct Shadow
    {
        std::string label;
        Access lastWrite;
        bool hasWrite = false;
        std::map<std::uint32_t, Access> readers; ///< per chain
    };

    TaskCtx &top() { return _stack.back(); }
    static void join(VectorClock &into, const VectorClock &from);
    std::uint32_t pickChain(const VectorClock &clock,
                            std::uint32_t preferred);
    void advance(TaskCtx &t);
    void flagRace(ObjectSummary &obj, const std::string &label,
                  const char *kind, const Access &prev,
                  const Access &cur);
    void recordRegistryAccess(const char *op, bool write);

    sim::Simulation &_sim;
    std::vector<TaskCtx> _stack;
    std::map<std::uint64_t, Snapshot> _snaps; ///< pending events, by seq
    std::map<std::uint32_t, std::uint64_t> _chainTail;
    std::map<std::uint64_t, FiberState> _fibers; ///< by process id
    std::uint32_t _nextChain = 1;

    // Same-tick FIFO contract among Order::dependent events.
    sim::Tick _lastDepTick = 0;
    VectorClock _lastDepClock;
    bool _haveDep = false;

    // Guard shadows are looked up by object identity on the access
    // hot path and never iterated (the report walks the deterministic
    // Enrolled<ContextGuard> list and the label-keyed _objects map).
    // nondet-ok(unordered-container): keyed by pointer, never iterated
    std::unordered_map<const ContextGuard *, Shadow> _shadow;

    std::map<std::string, ObjectSummary> _objects;
    std::vector<RaceRecord> _races;
    std::set<std::string> _raceKeys; ///< site-pair dedup
};

/**
 * RAII shard-domain retag for the current task: servicing entry
 * points (trap handlers, interrupt handlers, NIC firmware, fabric
 * models) run in whatever context scheduled them, but *belong* to a
 * shard. Retagging from one non-empty domain to a different one also
 * records an edgeCall crossing — the synchronous entry the parallel
 * backend must turn into a message.
 */
class ScopedTaskDomain
{
  public:
    explicit ScopedTaskDomain(const std::string &domain);
    ~ScopedTaskDomain();

    ScopedTaskDomain(const ScopedTaskDomain &) = delete;
    ScopedTaskDomain &operator=(const ScopedTaskDomain &) = delete;

  private:
    Auditor *_auditor;
    std::string _saved;
};

/** ContextGuard hook bodies (called from check/access.cc). */
void noteGuardAccess(const ContextGuard &guard, const char *op,
                     bool write, const std::source_location &site);
void noteGuardDestroyed(const ContextGuard &guard);

#else // !UNET_CHECK

/** No-op stand-ins so product entry points need no #ifdefs. */
class Auditor
{
  public:
    explicit Auditor(sim::Simulation &) {}

    Auditor(const Auditor &) = delete;
    Auditor &operator=(const Auditor &) = delete;

    static Auditor *current() { return nullptr; }

    const std::vector<RaceRecord> &
    races() const
    {
        static const std::vector<RaceRecord> empty;
        return empty;
    }

    const std::map<std::string, ObjectSummary> &
    objects() const
    {
        static const std::map<std::string, ObjectSummary> empty;
        return empty;
    }

    std::size_t chainCount() const { return 0; }
};

class ScopedTaskDomain
{
  public:
    explicit ScopedTaskDomain(const std::string &) {}

    ScopedTaskDomain(const ScopedTaskDomain &) = delete;
    ScopedTaskDomain &operator=(const ScopedTaskDomain &) = delete;
};

#endif // UNET_CHECK

} // namespace unet::check::hb

#endif // UNET_CHECK_HB_AUDITOR_HH
