#include "check/hb/auditor.hh"

#include <utility>

namespace unet::check::hb {

std::vector<std::string>
edgeNames(unsigned mask)
{
    // Sorted by name so report output is canonical.
    std::vector<std::string> names;
    if (mask & edgeBoot)
        names.push_back("boot");
    if (mask & edgeCall)
        names.push_back("call");
    if (mask & edgeFiber)
        names.push_back("fiber");
    if (mask & edgeFifo)
        names.push_back("fifo");
    if (mask & edgeSchedule)
        names.push_back("schedule");
    return names;
}

} // namespace unet::check::hb

#if defined(UNET_CHECK) && UNET_CHECK

#include "check/access.hh"
#include "sim/logging.hh"
#include "sim/perturb.hh"
#include "sim/process.hh"
#include "sim/simulation.hh"

namespace unet::check::hb {

namespace {

thread_local Auditor *currentAuditor = nullptr;

} // namespace

Auditor *
Auditor::current()
{
    return currentAuditor;
}

Auditor::Auditor(sim::Simulation &sim) : _sim(sim)
{
    if (currentAuditor)
        UNET_PANIC("happens-before auditor: one per thread (a "
                   "previous Auditor is still live)");
    if (sim.events().taskObserver())
        UNET_PANIC("happens-before auditor: the event queue already "
                   "has a TaskObserver");
    currentAuditor = this;
    sim.events().setTaskObserver(this);

    // The metrics registry is instrumented classify-only: counters
    // are commutative sinks whose parallel-DES plan is per-shard
    // registries merged deterministically at the end of a quantum, so
    // unordered cross-domain updates are by-design, not races. The
    // domain set still lands in the shardability report.
    _objects["metrics.registry"].classifyOnly = true;
    sim.metrics().setAuditHook([this](const char *op, bool write) {
        recordRegistryAccess(op, write);
    });

    // Bottom of the context stack: the boot/harness context, chain 0.
    // Every finished event merges its clock here (the run loop
    // returns before harness code inspects state), so main-context
    // accesses are ordered after everything that already fired.
    TaskCtx boot;
    boot.chain = 0;
    boot.clock[0] = 0;
    boot.edges = edgeBoot;
    _stack.push_back(std::move(boot));
    _chainTail[0] = 0;
}

Auditor::~Auditor()
{
    _sim.events().setTaskObserver(nullptr);
    _sim.metrics().setAuditHook({});
    currentAuditor = nullptr;
}

void
Auditor::join(VectorClock &into, const VectorClock &from)
{
    for (const auto &[chain, epoch] : from) {
        auto [it, inserted] = into.try_emplace(chain, epoch);
        if (!inserted && it->second < epoch)
            it->second = epoch;
    }
}

std::uint32_t
Auditor::pickChain(const VectorClock &clock, std::uint32_t preferred)
{
    // A task may extend chain c when it is ordered after c's current
    // tail — its joined clock covers the tail epoch exactly. Prefer
    // the scheduling parent's chain (keeps fiber -> resume-event ->
    // fiber sequences on one chain), else reuse any extendable chain,
    // else open a new one.
    auto extendable = [&](std::uint32_t c) {
        auto it = clock.find(c);
        return it != clock.end() && it->second == _chainTail.at(c);
    };
    if (_chainTail.count(preferred) && extendable(preferred))
        return preferred;
    for (const auto &[c, tail] : _chainTail) {
        (void)tail;
        if (extendable(c))
            return c;
    }
    return _nextChain++;
}

void
Auditor::advance(TaskCtx &t)
{
    t.clock[t.chain] = ++_chainTail[t.chain];
}

void
Auditor::onEventScheduled(std::uint64_t seq, sim::Tick when,
                          sim::Order order)
{
    (void)when;
    (void)order;
    const TaskCtx &t = top();
    _snaps.emplace(seq, Snapshot{t.clock, t.domain, t.chain});
}

void
Auditor::onEventFireBegin(std::uint64_t seq, sim::Tick when,
                          sim::Order order)
{
    TaskCtx t;
    t.edges = edgeSchedule;
    std::uint32_t preferred = 0;
    if (auto it = _snaps.find(seq); it != _snaps.end()) {
        t.clock = std::move(it->second.clock);
        t.domain = std::move(it->second.domain);
        preferred = it->second.chain;
        _snaps.erase(it);
    }
    if (order == sim::Order::dependent) {
        // Same-tick FIFO contract: dependent events at one tick fire
        // in scheduling order, so this event is ordered after the
        // previous dependent event of the tick even when their
        // scheduling contexts were unrelated.
        if (_haveDep && _lastDepTick == when) {
            join(t.clock, _lastDepClock);
            t.edges |= edgeFifo;
        }
    }
    t.chain = pickChain(t.clock, preferred);
    advance(t);
    if (order == sim::Order::dependent) {
        _lastDepTick = when;
        _lastDepClock = t.clock;
        _haveDep = true;
    }
    _stack.push_back(std::move(t));
}

void
Auditor::onEventFireEnd(std::uint64_t seq)
{
    (void)seq;
    if (_stack.size() < 2)
        UNET_PANIC("happens-before auditor: unbalanced event end");
    TaskCtx done = std::move(_stack.back());
    _stack.pop_back();
    // Synchronous-return edge: the parent context (another event's
    // frame, or the boot loop) continues after this task finished.
    join(top().clock, done.clock);
}

void
Auditor::onEventCancelled(std::uint64_t seq)
{
    _snaps.erase(seq);
}

void
Auditor::onFiberResume(sim::Process &proc)
{
    FiberState &f = _fibers[proc.id()];
    if (!f.chainAssigned) {
        f.chain = _nextChain++;
        f.chainAssigned = true;
        _chainTail[f.chain] = 0;
    }
    // Resume edge: the fiber is ordered after the task resuming it.
    join(f.clock, top().clock);
    TaskCtx t;
    t.chain = f.chain;
    t.clock = std::move(f.clock);
    t.domain = proc.shardDomain();
    t.edges = edgeFiber;
    advance(t);
    _stack.push_back(std::move(t));
}

void
Auditor::onFiberSuspend(sim::Process &proc)
{
    if (_stack.size() < 2)
        UNET_PANIC("happens-before auditor: unbalanced fiber suspend");
    TaskCtx done = std::move(_stack.back());
    _stack.pop_back();
    // Yield edge: the resuming task's remaining code runs after the
    // fiber suspended (synchronous call nesting).
    join(top().clock, done.clock);
    _fibers[proc.id()].clock = std::move(done.clock);
}

void
Auditor::recordAccess(const ContextGuard &guard, const char *op,
                      bool write, const std::source_location &site)
{
    const TaskCtx &t = top();
    ObjectSummary &obj = _objects[guard.label()];
    if (!t.domain.empty())
        obj.domains.insert(t.domain);
    obj.edges |= t.edges;
    if (write)
        ++obj.writes;
    else
        ++obj.reads;

    Shadow &s = _shadow[&guard];
    s.label = guard.label();

    Access cur;
    cur.chain = t.chain;
    cur.epoch = t.clock.at(t.chain);
    cur.domain = t.domain;
    cur.site = AccessSite{op, site.file_name(),
                          static_cast<unsigned>(site.line())};

    // A pair races when it is (a) unordered by scheduler edges and
    // (b) tagged with two different non-empty shard domains: the
    // parallel backend would run the two accesses on different
    // threads with nothing ordering them.
    auto ordered = [&](const Access &prev) {
        auto it = t.clock.find(prev.chain);
        return it != t.clock.end() && it->second >= prev.epoch;
    };
    auto races = [&](const Access &prev) {
        return !prev.domain.empty() && !cur.domain.empty() &&
               prev.domain != cur.domain && !ordered(prev);
    };

    if (!obj.classifyOnly) {
        if (write) {
            if (s.hasWrite && races(s.lastWrite))
                flagRace(obj, s.label, "write/write", s.lastWrite,
                         cur);
            for (const auto &[chain, r] : s.readers) {
                (void)chain;
                if (races(r))
                    flagRace(obj, s.label, "read/write", r, cur);
            }
            s.lastWrite = cur;
            s.hasWrite = true;
            s.readers.clear();
        } else {
            if (s.hasWrite && races(s.lastWrite))
                flagRace(obj, s.label, "read/write", s.lastWrite,
                         cur);
            Access &slot = s.readers[cur.chain];
            if (slot.epoch <= cur.epoch)
                slot = cur;
        }
    }
}

void
Auditor::flagRace(ObjectSummary &obj, const std::string &label,
                  const char *kind, const Access &prev,
                  const Access &cur)
{
    // Dedup by (object, kind, both sites): a racy poll loop should
    // read as one finding, not one per iteration.
    std::string key = label;
    key += '|';
    key += kind;
    key += '|';
    key += prev.site.file;
    key += ':';
    key += std::to_string(prev.site.line);
    key += '|';
    key += cur.site.file;
    key += ':';
    key += std::to_string(cur.site.line);
    if (!_raceKeys.insert(key).second)
        return;

    RaceRecord r;
    r.object = label;
    r.kind = kind;
    r.firstDomain = prev.domain;
    r.secondDomain = cur.domain;
    r.first = prev.site;
    r.second = cur.site;
    r.salt = sim::perturb::salt();
    _races.push_back(std::move(r));
    ++obj.races;
}

void
Auditor::recordRegistryAccess(const char *op, bool write)
{
    (void)op;
    const TaskCtx &t = top();
    ObjectSummary &obj = _objects["metrics.registry"];
    if (!t.domain.empty())
        obj.domains.insert(t.domain);
    obj.edges |= t.edges;
    if (write)
        ++obj.writes;
    else
        ++obj.reads;
}

void
Auditor::guardDestroyed(const ContextGuard &guard)
{
    _shadow.erase(&guard);
}

ScopedTaskDomain::ScopedTaskDomain(const std::string &domain)
    : _auditor(Auditor::current())
{
    if (!_auditor)
        return;
    Auditor::TaskCtx &t = _auditor->top();
    _saved = t.domain;
    if (!_saved.empty() && _saved != domain)
        t.edges |= edgeCall;
    t.domain = domain;
}

ScopedTaskDomain::~ScopedTaskDomain()
{
    if (!_auditor)
        return;
    _auditor->top().domain = _saved;
}

void
noteGuardAccess(const ContextGuard &guard, const char *op, bool write,
                const std::source_location &site)
{
    if (Auditor *a = Auditor::current())
        a->recordAccess(guard, op, write, site);
}

void
noteGuardDestroyed(const ContextGuard &guard)
{
    if (Auditor *a = Auditor::current())
        a->guardDestroyed(guard);
}

} // namespace unet::check::hb

#endif // UNET_CHECK
