#include "check/hb/topos.hh"

#include <memory>
#include <span>

#include "am/active_messages.hh"
#include "check/hb/report.hh"
#include "eth/hub.hh"
#include "eth/link.hh"
#include "fault/attach.hh"
#include "fault/fault.hh"
#include "serve/rig.hh"
#include "sim/logging.hh"
#include "unet/unet_fe.hh"
#include "unet/vep/vep.hh"

namespace unet::check::hb {

namespace {

/** One Fast Ethernet node: host + DC21140 + in-kernel U-Net. */
struct FeNode
{
    FeNode(sim::Simulation &s, eth::Network &net, int index)
        : host(s, "node" + std::to_string(index),
               host::CpuSpec::pentium120(), host::BusSpec::pci()),
          nic(host, net,
              eth::MacAddress::fromIndex(
                  static_cast<std::uint32_t>(index + 1))),
          unet(host, nic, {})
    {}

    host::Host host;
    nic::Dc21140 nic;
    UNetFe unet;
};

/** Post one single-fragment send on the U-Net/FE TX path. */
bool
postSend(UNet &un, sim::Process &proc, Endpoint &ep, ChannelId chan,
         std::uint32_t offset, std::uint32_t len)
{
    SendDescriptor sd;
    sd.channel = chan;
    sd.isInline = false;
    sd.fragmentCount = 1;
    sd.fragments[0] = {offset, len};
    return un.send(proc, ep, sd);
}

EndpointConfig
smallEndpoint()
{
    EndpointConfig cfg;
    cfg.sendQueueDepth = 8;
    cfg.recvQueueDepth = 8;
    cfg.freeQueueDepth = 8;
    cfg.bufferAreaBytes = 32 * 1024;
    return cfg;
}

/** Harvest the auditor's product after a run. */
TopoResult
harvest(const Auditor &auditor, const std::string &name)
{
    TopoResult r;
    r.races = auditor.races();
    r.objects = auditor.objects();
    r.report = reportString(auditor, name);
    r.reportVerbose = reportString(auditor, name, /*verbose=*/true);
    r.chains = auditor.chainCount();
    return r;
}

// ----------------------------------------------------------------- fig5

/** Two-node ping-pong over a hub: the Figure 5 latency rig, with both
 *  application fibers bound to their hosts' shard domains. */
TopoResult
runFig5()
{
    constexpr int rounds = 2;
    sim::Simulation s;
    eth::Hub hub(s);
    FeNode a(s, hub, 0), b(s, hub, 1);
    Endpoint *epA = nullptr, *epB = nullptr;
    ChannelId chanA = invalidChannel, chanB = invalidChannel;

    sim::Process ping(s, "ping", [&](sim::Process &self) {
        RecvDescriptor rd;
        for (int r = 0; r < rounds; ++r) {
            if (!postSend(a.unet, self, *epA, chanA, 16384, 48))
                UNET_PANIC("hb fig5: ping send refused");
            a.unet.flush(self, *epA);
            if (!epA->wait(self, rd, sim::seconds(1)))
                UNET_PANIC("hb fig5: ping timed out");
        }
    });
    sim::Process echo(s, "echo", [&](sim::Process &self) {
        RecvDescriptor rd;
        for (int r = 0; r < rounds; ++r) {
            if (!epB->wait(self, rd, sim::seconds(1)))
                UNET_PANIC("hb fig5: echo timed out");
            if (!postSend(b.unet, self, *epB, chanB, 16384,
                          rd.length))
                UNET_PANIC("hb fig5: echo send refused");
            b.unet.flush(self, *epB);
        }
    });
    ping.bindShardDomain(a.host.name());
    echo.bindShardDomain(b.host.name());

    epA = &a.unet.createEndpoint(&ping, smallEndpoint());
    epB = &b.unet.createEndpoint(&echo, smallEndpoint());
    UNetFe::connect(a.unet, *epA, b.unet, *epB, chanA, chanB);

    Auditor auditor(s);
    echo.start();
    ping.start(sim::microseconds(5));
    s.run();
    if (!ping.finished() || !echo.finished())
        UNET_PANIC("hb fig5: rig deadlocked");
    return harvest(auditor, "fig5");
}

// ---------------------------------------------------------------- fault

/** Bidirectional AM traffic with a planted drop burst on the A->B
 *  direction: the fault-scenario reference topology. Go-Back-N
 *  retransmission timers and crossing ACK traffic exercise the
 *  schedule-edge model far harder than the clean ping-pong. */
TopoResult
runFault()
{
    static constexpr std::uint32_t messages = 3;
    sim::Simulation s;
    eth::FullDuplexLink link(s);
    FeNode a(s, link, 0), b(s, link, 1);
    Endpoint *epA = nullptr, *epB = nullptr;
    ChannelId chanA = invalidChannel, chanB = invalidChannel;
    std::unique_ptr<am::ActiveMessages> amA, amB;
    std::vector<am::Word> received[2];

    auto body = [&](sim::Process &p, int side) {
        am::ActiveMessages &am = side == 0 ? *amA : *amB;
        ChannelId chan = side == 0 ? chanA : chanB;
        for (std::uint32_t i = 0; i < messages; ++i)
            if (!am.request(p, chan, 1, {i, 0, 0, 0}))
                UNET_PANIC("hb fault: request refused");
        if (!am.drain(p, sim::seconds(1)))
            UNET_PANIC("hb fault: drain timed out");
        if (!am.pollUntil(
                p,
                [&received, side] {
                    return received[side].size() >= messages;
                },
                sim::seconds(1)))
            UNET_PANIC("hb fault: receive timed out");
        // Let the final ACK flush so the peer's drain succeeds.
        am.pollUntil(p, [] { return false; }, sim::milliseconds(2));
    };
    sim::Process procA(s, "A", [&](sim::Process &p) { body(p, 0); });
    sim::Process procB(s, "B", [&](sim::Process &p) { body(p, 1); });
    procA.bindShardDomain(a.host.name());
    procB.bindShardDomain(b.host.name());

    EndpointConfig cfg = smallEndpoint();
    cfg.sendQueueDepth = 16;
    cfg.recvQueueDepth = 16;
    cfg.freeQueueDepth = 16;
    cfg.bufferAreaBytes = 64 * 1024;
    epA = &a.unet.createEndpoint(&procA, cfg);
    epB = &b.unet.createEndpoint(&procB, cfg);
    UNetFe::connect(a.unet, *epA, b.unet, *epB, chanA, chanB);

    amA = std::make_unique<am::ActiveMessages>(a.unet, *epA);
    amB = std::make_unique<am::ActiveMessages>(b.unet, *epB);
    amA->openChannel(chanA);
    amB->openChannel(chanB);
    amA->setHandler(
        1, [&](sim::Process &, am::Token, const am::Args &args,
               std::span<const std::uint8_t>) {
            received[0].push_back(args[0]);
        });
    amB->setHandler(
        1, [&](sim::Process &, am::Token, const am::Args &args,
               std::span<const std::uint8_t>) {
            received[1].push_back(args[0]);
        });

    // Deterministic burst: the 2nd and 3rd frames crossing A->B are
    // dropped. Declared before attach, destroyed after the sim.
    fault::Plan plan;
    plan.model("eth.link.0").dropUnits = {1, 2};
    fault::attach(plan, s, link);

    Auditor auditor(s);
    procA.start(sim::microseconds(5));
    procB.start(sim::microseconds(5));
    s.run();
    if (!procA.finished() || !procB.finished())
        UNET_PANIC("hb fault: rig deadlocked");
    if (amA->retransmits() == 0)
        UNET_PANIC("hb fault: the drop burst was never exercised");
    return harvest(auditor, "fault");
}

// ---------------------------------------------------------------- serve

/** A small serving cluster from the RPC plane: two clients fan into
 *  one server across the Bay-28115 switch model. */
TopoResult
runServe()
{
    serve::RigSpec spec;
    spec.nic = serve::NicKind::Fe;
    spec.clients = 2;
    serve::ServeRig rig(spec);

    serve::Workload w;
    w.closedLoop = true;
    w.requestsPerClient = 4;
    w.window = 1;

    Auditor auditor(rig.simulation());
    serve::RunResult res = rig.run(w);
    if (!res.finished)
        UNET_PANIC("hb serve: rig did not quiesce");
    if (res.completed == 0)
        UNET_PANIC("hb serve: no request completed");
    return harvest(auditor, "serve");
}

// ----------------------------------------------------------- planted-ww

/** Two fibers on different shard domains write one ResidencyCache
 *  with no scheduler edge between them: the canonical write/write
 *  cross-shard race the parallel backend would hit. */
TopoResult
runPlantedWw()
{
    sim::Simulation s;
    vep::ResidencyCache cache(s, {}, "planted.vep");

    sim::Process writerA(s, "writerA", [&](sim::Process &) {
        // hb planted: unordered cross-shard write #1
        cache.touch(1);
    });
    sim::Process writerB(s, "writerB", [&](sim::Process &) {
        // hb planted: unordered cross-shard write #2
        cache.touch(2);
    });
    writerA.bindShardDomain("shardA");
    writerB.bindShardDomain("shardB");

    Auditor auditor(s);
    // Both start events are scheduled from the boot context before
    // either ran, so neither fiber's clock covers the other: the two
    // touches are concurrent under the happens-before model even
    // though the serial event loop runs them 5us apart.
    writerA.start(sim::microseconds(5));
    writerB.start(sim::microseconds(10));
    s.run();
    return harvest(auditor, "planted-ww");
}

// ----------------------------------------------------------- planted-rw

/** A foreign-shard monitor fiber peeks an endpoint send ring that the
 *  owning node's kernel path wrote: a read/write cross-shard race on
 *  a Figure-1 ring. */
TopoResult
runPlantedRw()
{
    sim::Simulation s;
    eth::Hub hub(s);
    FeNode a(s, hub, 0), b(s, hub, 1);
    Endpoint *epA = nullptr, *epB = nullptr;
    ChannelId chanA = invalidChannel, chanB = invalidChannel;

    sim::Process ping(s, "ping", [&](sim::Process &self) {
        RecvDescriptor rd;
        if (!postSend(a.unet, self, *epA, chanA, 16384, 48))
            UNET_PANIC("hb planted-rw: send refused");
        a.unet.flush(self, *epA);
        if (!epA->wait(self, rd, sim::seconds(1)))
            UNET_PANIC("hb planted-rw: ping timed out");
    });
    sim::Process echo(s, "echo", [&](sim::Process &self) {
        RecvDescriptor rd;
        if (!epB->wait(self, rd, sim::seconds(1)))
            UNET_PANIC("hb planted-rw: echo timed out");
        if (!postSend(b.unet, self, *epB, chanB, 16384, rd.length))
            UNET_PANIC("hb planted-rw: echo send refused");
        b.unet.flush(self, *epB);
    });
    // The monitor belongs to a different shard and reads the ring
    // without any ordering edge to node0's writes (its start event
    // predates all of them). observe() is deliberate: a foreign READ
    // is not a custody violation, only a sharding hazard — exactly
    // the class the custody plane alone cannot catch.
    sim::Process spy(s, "spy", [&](sim::Process &) {
        // hb planted: unordered cross-shard read of node0's send ring
        epA->sendGuard().observe("spy ring peek");
    });
    ping.bindShardDomain(a.host.name());
    echo.bindShardDomain(b.host.name());
    spy.bindShardDomain("monitor");

    epA = &a.unet.createEndpoint(&ping, smallEndpoint());
    epB = &b.unet.createEndpoint(&echo, smallEndpoint());
    UNetFe::connect(a.unet, *epA, b.unet, *epB, chanA, chanB);

    Auditor auditor(s);
    echo.start();
    ping.start(sim::microseconds(5));
    spy.start(sim::microseconds(400));
    s.run();
    if (!ping.finished() || !echo.finished() || !spy.finished())
        UNET_PANIC("hb planted-rw: rig deadlocked");
    return harvest(auditor, "planted-rw");
}

const std::vector<Topo> &
topoTable()
{
    static const std::vector<Topo> topos = {
        {"fig5", "two-node FE ping-pong over a hub", false},
        {"fault", "AM Go-Back-N recovery under a drop burst", false},
        {"serve", "two RPC clients fanning into one server", false},
        {"planted-ww",
         "planted write/write race on a ResidencyCache", true},
        {"planted-rw",
         "planted read/write race on an endpoint send ring", true},
    };
    return topos;
}

} // namespace

const std::vector<Topo> &
topologies()
{
    return topoTable();
}

const Topo *
findTopo(const std::string &name)
{
    for (const Topo &t : topoTable())
        if (t.name == name)
            return &t;
    return nullptr;
}

TopoResult
runTopo(const std::string &name)
{
    if (name == "fig5")
        return runFig5();
    if (name == "fault")
        return runFault();
    if (name == "serve")
        return runServe();
    if (name == "planted-ww")
        return runPlantedWw();
    if (name == "planted-rw")
        return runPlantedRw();
    UNET_FATAL("unknown hb topology '", name,
               "' (see unet-hb --list)");
}

} // namespace unet::check::hb
