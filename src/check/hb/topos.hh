/**
 * @file
 * Audited topologies for the happens-before race auditor.
 *
 * Each topology is a small closed rig — nodes, processes, traffic —
 * run start-to-finish under an Auditor with every process bound to a
 * shard domain. Three are clean reference topologies (the auditor
 * must report zero races on them); two carry planted cross-shard
 * races proving the detector actually fires, with both access sites
 * attributed:
 *
 *   fig5        two-node FE ping-pong over a hub (the Figure 5 rig)
 *   fault       bidirectional AM traffic over a lossy full-duplex
 *               link; Go-Back-N recovery under a planted drop burst
 *   serve       a small RPC serving cluster (clients -> switch ->
 *               server) from the serving plane
 *   planted-ww  two fibers on different shard domains write one
 *               ResidencyCache with no ordering edge between them
 *   planted-rw  a foreign-shard fiber peeks an endpoint send ring
 *               that the owning node's shard wrote (read/write)
 */

#ifndef UNET_CHECK_HB_TOPOS_HH
#define UNET_CHECK_HB_TOPOS_HH

#include <string>
#include <vector>

#include "check/hb/auditor.hh"

namespace unet::check::hb {

/** What one audited topology run produced. */
struct TopoResult
{
    std::vector<RaceRecord> races;
    std::map<std::string, ObjectSummary> objects;
    std::string report;        ///< canonical shardability report
    std::string reportVerbose; ///< + counts and salt (non-canonical)
    std::size_t chains = 0;    ///< clock chains the run needed
};

/** One registered topology. */
struct Topo
{
    std::string name;
    std::string summary;
    /** True when the topology carries a planted race (the auditor is
     *  expected to fire; a clean result is a detector failure). */
    bool planted = false;
};

/** All registered topologies, in a fixed order. */
const std::vector<Topo> &topologies();

/** Look up one topology by name; nullptr when unknown. */
const Topo *findTopo(const std::string &name);

/** Build, audit, and run @p name to completion. Panics on unknown
 *  names (callers route through findTopo first). */
TopoResult runTopo(const std::string &name);

} // namespace unet::check::hb

#endif // UNET_CHECK_HB_TOPOS_HH
