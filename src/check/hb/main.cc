/**
 * @file
 * unet-hb: command-line front end for the happens-before race auditor
 * and shardability analysis.
 *
 *   unet-hb --list
 *   unet-hb fig5 --report fig5-shardability.json
 *   unet-hb serve --report - --verbose
 *   unet-hb planted-ww            (expected to exit 1)
 *   unet-hb fig5 --salt 3         (replay under a perturbation salt)
 *
 * Exit status: 0 when the topology ran race-free, 1 when the auditor
 * flagged at least one cross-shard race, 2 on usage errors or when the
 * build has UNET_CHECK disabled.
 */

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>

#include "check/hb/report.hh"
#include "check/hb/topos.hh"
#include "sim/perturb.hh"

namespace hb = unet::check::hb;

namespace {

int
usage(std::ostream &os, int status)
{
    os << "usage: unet-hb <topology> [options]\n"
          "       unet-hb --list\n"
          "\n"
          "options:\n"
          "  --report F   write the shardability report to F "
          "(\"-\" = stdout)\n"
          "  --verbose    add access counts and the active salt to "
          "the report\n"
          "  --salt N     run under UNET_PERTURB salt N (replay a "
          "flagged race)\n";
    return status;
}

int
listTopos()
{
    for (const hb::Topo &t : hb::topologies())
        std::cout << t.name << (t.planted ? "  [planted race]" : "")
                  << "\n    " << t.summary << "\n";
    return 0;
}

void
printSite(const hb::AccessSite &site, const std::string &domain)
{
    std::cerr << "    " << site.op << " [" << domain << "] at "
              << site.file << ":" << site.line << "\n";
}

} // namespace

int
main(int argc, char **argv)
{
#if !defined(UNET_CHECK) || !UNET_CHECK
    (void)argc;
    (void)argv;
    std::cerr << "unet-hb: this build has UNET_CHECK disabled; "
                 "reconfigure with -DUNET_CHECK=ON\n";
    return 2;
#else
    std::string topoName;
    std::string reportPath;
    bool verbose = false;
    std::uint64_t salt = 0;
    bool haveSalt = false;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--help" || arg == "-h")
            return usage(std::cout, 0);
        if (arg == "--list")
            return listTopos();
        if (arg == "--verbose") {
            verbose = true;
            continue;
        }
        if (arg == "--report" || arg == "--salt" || arg == "--topo") {
            if (i + 1 >= argc) {
                std::cerr << "unet-hb: " << arg
                          << " needs an argument\n";
                return usage(std::cerr, 2);
            }
            std::string value = argv[++i];
            if (arg == "--report") {
                reportPath = value;
            } else if (arg == "--topo") {
                topoName = value;
            } else {
                char *end = nullptr;
                salt = std::strtoull(value.c_str(), &end, 10);
                if (!end || *end != '\0' || end == value.c_str()) {
                    std::cerr << "unet-hb: bad salt '" << value
                              << "'\n";
                    return 2;
                }
                haveSalt = true;
            }
            continue;
        }
        if (!arg.empty() && arg[0] == '-') {
            std::cerr << "unet-hb: unknown option " << arg << "\n";
            return usage(std::cerr, 2);
        }
        if (!topoName.empty()) {
            std::cerr << "unet-hb: one topology per run (got '"
                      << topoName << "' and '" << arg << "')\n";
            return 2;
        }
        topoName = arg;
    }

    if (topoName.empty())
        return usage(std::cerr, 2);
    const hb::Topo *topo = hb::findTopo(topoName);
    if (!topo) {
        std::cerr << "unet-hb: unknown topology '" << topoName
                  << "' (try --list)\n";
        return 2;
    }

    hb::TopoResult result;
    {
        // Scoped so a --salt override does not leak into atexit paths.
        std::unique_ptr<unet::sim::perturb::ScopedSalt> scoped;
        if (haveSalt)
            scoped = std::make_unique<unet::sim::perturb::ScopedSalt>(
                salt);
        result = hb::runTopo(topoName);
    }

    if (!reportPath.empty()) {
        const std::string &text =
            verbose ? result.reportVerbose : result.report;
        if (reportPath == "-") {
            std::cout << text;
        } else {
            std::ofstream out(reportPath);
            if (!out) {
                std::cerr << "unet-hb: cannot write " << reportPath
                          << "\n";
                return 2;
            }
            out << text;
        }
    }

    if (result.races.empty()) {
        std::cerr << "unet-hb: " << topoName << ": no races ("
                  << result.objects.size() << " objects audited, "
                  << result.chains << " clock chains)\n";
        if (topo->planted) {
            std::cerr << "unet-hb: " << topoName
                      << " carries a PLANTED race the auditor failed "
                         "to flag\n";
            return 2;
        }
        return 0;
    }

    std::cerr << "unet-hb: " << topoName << ": " << result.races.size()
              << " cross-shard race(s)\n";
    for (const hb::RaceRecord &race : result.races) {
        std::cerr << "  " << race.kind << " race on '" << race.object
                  << "'\n";
        printSite(race.first, race.firstDomain);
        printSite(race.second, race.secondDomain);
        std::cerr << "    replay: UNET_PERTURB=" << race.salt
                  << " unet-hb " << topoName << "\n";
    }
    return 1;
#endif
}
