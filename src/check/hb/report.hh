/**
 * @file
 * Shardability report over an Auditor's observations.
 *
 * The report is the auditor's machine-readable product: for one
 * topology run, every instrumented object classified by how it could
 * live under the planned parallel-DES backend:
 *
 *  - "shard-local":  accessed under exactly one shard domain — the
 *    object can live wholly inside that shard with no cross-shard
 *    ordering needed;
 *  - "cross-shard":  accessed under two or more domains — the object
 *    needs either partitioning or an explicit ordering protocol; its
 *    edge set says which scheduler edges currently order it;
 *  - "main-context": only ever touched from untagged contexts (boot,
 *    harness, fixtures) — setup state, not a sharding concern;
 *  - "idle":         a live guard the run never touched (enumerated
 *    via check::Enrolled so coverage gaps are visible, not silent).
 *
 * The canonical form is byte-stable across UNET_PERTURB salts for
 * race-free topologies: objects sort by label, domains and edge names
 * sort lexicographically, and volatile values (access counts, the
 * salt) are excluded — they land in the optional verbose section
 * only. CI diffs the canonical bytes across salts 1..5.
 */

#ifndef UNET_CHECK_HB_REPORT_HH
#define UNET_CHECK_HB_REPORT_HH

#include <iosfwd>
#include <string>

#include "check/hb/auditor.hh"

namespace unet::check::hb {

/** Classification of one object for the shardability report. */
const char *classify(const ObjectSummary &obj);

/**
 * Write the canonical JSON report for @p auditor to @p os.
 * @p topology names the run ("fig5", "serve", ...). With @p verbose,
 * a non-canonical "verbose" section with access counts and the active
 * salt is appended (excluded from the canonical/stable form).
 */
void writeReport(const Auditor &auditor, const std::string &topology,
                 std::ostream &os, bool verbose = false);

/** The canonical report as a string (tests diff this across salts). */
std::string reportString(const Auditor &auditor,
                         const std::string &topology,
                         bool verbose = false);

} // namespace unet::check::hb

#endif // UNET_CHECK_HB_REPORT_HH
