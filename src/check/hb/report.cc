#include "check/hb/report.hh"

#include <map>
#include <ostream>
#include <set>
#include <sstream>
#include <string_view>

#include "check/access.hh"
#include "sim/perturb.hh"

namespace unet::check::hb {

namespace {

/** Minimal JSON string escape (labels and paths are tame). */
std::string
jsonEscape(std::string_view s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        out += c;
    }
    return out;
}

/**
 * Trim an absolute source path to its repo-relative tail so reports
 * are comparable across checkouts (source_location::file_name gives
 * whatever the compiler was invoked with).
 */
std::string_view
trimPath(std::string_view path)
{
    for (std::string_view root : {"/src/", "/tests/", "/tools/"}) {
        auto pos = path.find(root);
        if (pos != std::string_view::npos)
            return path.substr(pos + 1);
    }
    return path;
}

void
writeSite(std::ostream &os, const std::string &domain,
          const AccessSite &site)
{
    os << "{\"domain\": \"" << jsonEscape(domain) << "\", \"op\": \""
       << jsonEscape(site.op) << "\", \"site\": \""
       << jsonEscape(trimPath(site.file)) << ':' << site.line
       << "\"}";
}

} // namespace

const char *
classify(const ObjectSummary &obj)
{
    if (obj.domains.size() > 1)
        return "cross-shard";
    if (obj.domains.size() == 1)
        return "shard-local";
    if (obj.reads + obj.writes > 0)
        return "main-context";
    return "idle";
}

void
writeReport(const Auditor &auditor, const std::string &topology,
            std::ostream &os, bool verbose)
{
    // Start from the accessed objects, then add idle entries for
    // every live guard the run never touched — a coverage gap should
    // be visible in the report, not silently absent. Labels dedup
    // through the set (several unlabeled guards share a description).
    std::map<std::string, const ObjectSummary *> rows;
    for (const auto &[label, obj] : auditor.objects())
        rows.emplace(label, &obj);
#if defined(UNET_CHECK) && UNET_CHECK
    static const ObjectSummary idleSummary;
    ContextGuard::forEachEnrolled([&](const ContextGuard &g) {
        rows.emplace(g.label(), &idleSummary);
    });
#endif

    std::map<std::string_view, std::size_t> byClass;
    os << "{\n";
    os << "  \"schema\": \"unet-hb-shardability-v1\",\n";
    os << "  \"topology\": \"" << jsonEscape(topology) << "\",\n";
    os << "  \"objects\": [";
    bool first = true;
    for (const auto &[label, obj] : rows) {
        const char *cls = classify(*obj);
        ++byClass[cls];
        os << (first ? "" : ",") << "\n    {\"object\": \""
           << jsonEscape(label) << "\", \"class\": \"" << cls
           << "\", \"domains\": [";
        first = false;
        bool firstDom = true;
        for (const auto &d : obj->domains) {
            os << (firstDom ? "" : ", ") << '"' << jsonEscape(d)
               << '"';
            firstDom = false;
        }
        os << "], \"edges\": [";
        bool firstEdge = true;
        for (const auto &e : edgeNames(obj->edges)) {
            os << (firstEdge ? "" : ", ") << '"' << e << '"';
            firstEdge = false;
        }
        os << "], \"classify_only\": "
           << (obj->classifyOnly ? "true" : "false")
           << ", \"races\": " << obj->races << "}";
    }
    os << "\n  ],\n";

    os << "  \"races\": [";
    first = true;
    for (const auto &r : auditor.races()) {
        os << (first ? "" : ",") << "\n    {\"object\": \""
           << jsonEscape(r.object) << "\", \"kind\": \"" << r.kind
           << "\", \"first\": ";
        first = false;
        writeSite(os, r.firstDomain, r.first);
        os << ", \"second\": ";
        writeSite(os, r.secondDomain, r.second);
        os << "}";
    }
    os << "\n  ],\n";

    os << "  \"summary\": {\"objects\": " << rows.size()
       << ", \"cross_shard\": " << byClass["cross-shard"]
       << ", \"shard_local\": " << byClass["shard-local"]
       << ", \"main_context\": " << byClass["main-context"]
       << ", \"idle\": " << byClass["idle"]
       << ", \"races\": " << auditor.races().size() << "}";

    if (verbose) {
        // Non-canonical: counts and the salt vary run to run, so
        // they stay out of the byte-stable form above.
        os << ",\n  \"verbose\": {\"salt\": " << sim::perturb::salt()
           << ", \"chains\": " << auditor.chainCount()
           << ", \"counts\": {";
        first = true;
        for (const auto &[label, obj] : auditor.objects()) {
            os << (first ? "" : ", ") << '"' << jsonEscape(label)
               << "\": {\"reads\": " << obj.reads
               << ", \"writes\": " << obj.writes << '}';
            first = false;
        }
        os << "}}";
    }
    os << "\n}\n";
}

std::string
reportString(const Auditor &auditor, const std::string &topology,
             bool verbose)
{
    std::ostringstream os;
    writeReport(auditor, topology, os, verbose);
    return os.str();
}

} // namespace unet::check::hb
