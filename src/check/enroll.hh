/**
 * @file
 * Global checker enrollment.
 *
 * The per-object checkers (check::CreditWindow, check::OwnershipTracker)
 * are endpoint- or channel-scoped: each instance audits its own little
 * state machine and knows nothing about the others. The schedule-space
 * explorer (src/check/explore/) needs the *global* view — "every credit
 * window in the simulation is within bounds", "no buffer region
 * anywhere is in an illegal state" — evaluated after every exploration
 * step, without the configs having to hand-register each checker they
 * transitively construct.
 *
 * Enrolled<T> is that lift: a CRTP base that threads every live T onto
 * a thread-local intrusive list. T::forEachEnrolled() then visits all
 * live instances. Thread-local (not process-global) because parallel
 * test shards each run their own simulations; everything in a
 * simulation lives on one thread by construction.
 *
 * Enrollment makes the derived class non-movable and non-copyable —
 * acceptable for the checkers, which live inside node-stable containers
 * (std::map values, members of heap-allocated state blocks). When
 * UNET_CHECK is 0 the base is empty and imposes nothing.
 */

#ifndef UNET_CHECK_ENROLL_HH
#define UNET_CHECK_ENROLL_HH

#include <cstddef>

namespace unet::check {

#if defined(UNET_CHECK) && UNET_CHECK

/** Intrusive thread-local registry of all live instances of T. */
template <typename T>
class Enrolled
{
  public:
    /** Visit every live T on this thread, in unspecified order. The
     *  callback must not construct or destroy instances of T. */
    template <typename F>
    static void
    forEachEnrolled(F &&fn)
    {
        for (Enrolled *e = head(); e; e = e->next)
            fn(static_cast<const T &>(*e));
    }

    /** Number of live instances on this thread. */
    static std::size_t
    enrolledCount()
    {
        std::size_t n = 0;
        for (Enrolled *e = head(); e; e = e->next)
            ++n;
        return n;
    }

  protected:
    Enrolled()
    {
        next = head();
        if (next)
            next->prev = this;
        head() = this;
    }

    ~Enrolled()
    {
        if (prev)
            prev->next = next;
        else
            head() = next;
        if (next)
            next->prev = prev;
    }

    Enrolled(const Enrolled &) = delete;
    Enrolled &operator=(const Enrolled &) = delete;

  private:
    static Enrolled *&
    head()
    {
        thread_local Enrolled *h = nullptr;
        return h;
    }

    Enrolled *next = nullptr;
    Enrolled *prev = nullptr;
};

#else // !UNET_CHECK

/** Empty stand-in: no list, no size cost beyond the empty base. */
template <typename T>
class Enrolled
{
  public:
    template <typename F>
    static void forEachEnrolled(F &&)
    {}

    static std::size_t enrolledCount() { return 0; }
};

#endif // UNET_CHECK

} // namespace unet::check

#endif // UNET_CHECK_ENROLL_HH
