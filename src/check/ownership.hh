/**
 * @file
 * Buffer-ownership invariant checking.
 *
 * The paper's protection claim is that the application and the agent
 * servicing its queues (kernel trap handler or NIC firmware) share a
 * buffer area without being able to corrupt each other. This tracker
 * models who owns each region of an endpoint's buffer area and panics
 * on illegal transitions — a double-posted send fragment, a free-queue
 * buffer freed while the agent is filling it, an out-of-bounds
 * descriptor — which would otherwise silently pass every timing test.
 *
 * Lifecycle (one region at a time; regions are disjoint by
 * construction):
 *
 *     app-owned (untracked)
 *       --postSend-->  TxPosted   --claimSend-->  TxAgent
 *       TxPosted/TxAgent --releaseSend--> app-owned
 *       --postFree-->  RxPosted   --claimRecv-->  RxAgent
 *       RxAgent --deliver--> Delivered --consume--> app-owned
 *       RxAgent --unclaimRecv--> RxPosted      (agent drop path)
 *       RxAgent --releaseRecv--> app-owned     (buffer lost to a full
 *                                               free queue)
 *
 * Application-side entry points (postSend, postFree) are strict: any
 * overlap with a tracked region panics. Agent-side transitions are
 * lenient about *untracked* regions — test harnesses and boot-time code
 * legitimately stuff rings directly — but strict about wrong-state
 * regions, which is where real corruption shows up.
 *
 * Compiled to no-ops when UNET_CHECK is 0 (see the top-level
 * CMakeLists.txt option).
 */

#ifndef UNET_CHECK_OWNERSHIP_HH
#define UNET_CHECK_OWNERSHIP_HH

#include <cstddef>
#include <cstdint>
#include <map>

#include "check/enroll.hh"
#include "unet/types.hh"

namespace unet::check {

/** Who holds a tracked buffer-area region. */
enum class BufState : std::uint8_t {
    TxPosted,  ///< fragment of a descriptor in the send queue
    TxAgent,   ///< send payload being gathered by the servicing agent
    RxPosted,  ///< buffer in the free queue, available for receives
    RxAgent,   ///< claimed by the agent for an incoming message
    Delivered, ///< referenced by a descriptor in the receive queue
};

/** Human-readable state name for diagnostics. */
const char *name(BufState state);

#if defined(UNET_CHECK) && UNET_CHECK

/**
 * Per-buffer-area ownership state machine.
 *
 * Enrolled in the global registry (check/enroll.hh): the explorer's
 * oracle sweeps every live tracker for global buffer-ownership
 * legality after each step. Enrollment makes trackers non-copyable;
 * they live inside Endpoint, which is already pinned.
 */
class OwnershipTracker : public Enrolled<OwnershipTracker>
{
  public:
    /** @param area_bytes Size of the buffer area being guarded. */
    explicit OwnershipTracker(std::size_t area_bytes)
        : areaBytes(area_bytes)
    {}

    /** @name Application-side transitions (strict). @{ */

    /** A send descriptor fragment entered the send queue. */
    void postSend(BufferRef ref);

    /** A buffer entered the free queue. */
    void postFree(BufferRef ref);

    /** @} */

    /** @name Agent-side transitions (lenient about untracked refs). @{ */

    /** The agent popped the descriptor; payload gather is in progress. */
    void claimSend(BufferRef ref);

    /** The agent has fully read the payload out of the region. */
    void releaseSend(BufferRef ref);

    /** The agent popped @p ref from the free queue for an rx message. */
    void claimRecv(BufferRef ref);

    /** Drop path: the agent returned @p ref to the free queue. */
    void unclaimRecv(BufferRef ref);

    /** The buffer could not be returned (full free queue); it leaves
     *  the protection domain entirely. */
    void releaseRecv(BufferRef ref);

    /** The agent is writing message data into @p ref. */
    void rxWrite(BufferRef ref);

    /** A receive descriptor referencing @p ref entered the rx queue. */
    void deliver(BufferRef ref);

    /** @} */

    /** The application popped the receive descriptor owning @p ref. */
    void consume(BufferRef ref);

    /** Number of regions currently tracked (leak detection in tests). */
    std::size_t tracked() const { return regions.size(); }

    /** Bytes in a given state across all tracked regions. */
    std::size_t bytesIn(BufState state) const;

    /** Global legality sweep: every tracked region in bounds and the
     *  regions mutually disjoint. Panics on violation (the explorer's
     *  oracle calls this on every enrolled tracker after each step). */
    void audit() const;

    /** Digest of the full region table for explorer state hashing. */
    std::uint64_t stateHash() const;

  private:
    struct Region
    {
        std::uint32_t length = 0;
        BufState state = BufState::TxPosted;
    };

    /** Panic unless [ref) is inside the buffer area. */
    void checkBounds(BufferRef ref, const char *op) const;

    /** Panic if [ref) overlaps any tracked region. */
    void checkNoOverlap(BufferRef ref, const char *op) const;

    /** Region starting exactly at ref.offset, or nullptr. */
    Region *findExact(BufferRef ref);

    /** Region whose range fully contains [ref), or nullptr. */
    Region *findContaining(BufferRef ref);

    /** Exact-offset region in @p from, moved to @p to; no-op when
     *  untracked, panic when tracked in another state. */
    void transition(BufferRef ref, BufState from, BufState to,
                    const char *op);

    std::size_t areaBytes;

    /** Disjoint tracked regions, keyed by start offset. */
    std::map<std::uint32_t, Region> regions;
};

#else // !UNET_CHECK

/** No-op stand-in so call sites need no #ifdefs. */
class OwnershipTracker : public Enrolled<OwnershipTracker>
{
  public:
    explicit OwnershipTracker(std::size_t) {}

    void postSend(BufferRef) {}
    void postFree(BufferRef) {}
    void claimSend(BufferRef) {}
    void releaseSend(BufferRef) {}
    void claimRecv(BufferRef) {}
    void unclaimRecv(BufferRef) {}
    void releaseRecv(BufferRef) {}
    void rxWrite(BufferRef) {}
    void deliver(BufferRef) {}
    void consume(BufferRef) {}
    std::size_t tracked() const { return 0; }
    std::size_t bytesIn(BufState) const { return 0; }
    void audit() const {}
    std::uint64_t stateHash() const { return 0; }
};

#endif // UNET_CHECK

} // namespace unet::check

#endif // UNET_CHECK_OWNERSHIP_HH
