/**
 * @file
 * Cross-fiber access checking for cooperatively shared state.
 *
 * The simulator's concurrency model is cooperative: one fiber (or the
 * event loop) runs at a time, so there are no data races in the OS
 * sense. What CAN go wrong is the cooperative analogue — state shared
 * between an application fiber and the agent servicing it (kernel trap
 * handler, NIC firmware model, DMA completion events) mutated by a
 * context that doesn't hold custody:
 *
 *  - a process fiber touching the rings of an endpoint owned by a
 *    *different* process (a protection violation the paper's
 *    architecture exists to prevent);
 *  - an API entry point handed process A as the claimed caller while
 *    actually running on process B's fiber (impersonation — the
 *    protection checks then validate the wrong process);
 *  - a mutation sequence interleaved across contexts: a fiber yields
 *    halfway through updating shared ring/descriptor state and another
 *    context re-enters it mid-update.
 *
 * ContextGuard is the shadow state for one shared structure. It is
 * advisory (the structure doesn't route its accesses through the
 * guard; checked call sites do), cheap — a thread-local read and a
 * pointer compare per check — and compiles to a completely empty
 * object when UNET_CHECK is OFF.
 *
 * Custody model, matching the ownership tracker's lenient/strict
 * split: the *main/event context* (event callbacks, kernel agents,
 * test harnesses) may always touch guarded state — agents legitimately
 * service every endpoint, and harnesses stuff rings directly. A
 * *process fiber* may only touch state whose guard it owns; unbound
 * guards (no owner recorded) are lenient for boot-time and fixture
 * code.
 */

#ifndef UNET_CHECK_ACCESS_HH
#define UNET_CHECK_ACCESS_HH

#include <source_location>
#include <string>

#include "check/enroll.hh"

namespace unet::sim {
class Process;
}

namespace unet::check {

#if defined(UNET_CHECK) && UNET_CHECK

/**
 * Shadow custody state for one cooperatively shared structure.
 *
 * Besides the custody checks below, every guard doubles as an
 * instrumentation point for the happens-before race auditor
 * (src/check/hb/): when an Auditor is attached, each mutate()/
 * observe()/Scope records the calling context's vector clock and
 * source location against this guard's shadow state, and unordered
 * cross-domain access pairs are flagged as latent cross-shard races.
 * Enrollment (check/enroll.hh) lets the shardability report enumerate
 * every live guard, including ones a run never touched.
 */
class ContextGuard : public Enrolled<ContextGuard>
{
  public:
    /** @param what Static description of the guarded structure (a
     *  string literal; the guard stores only the pointer). */
    explicit ContextGuard(const char *what) : what(what), _label(what) {}

    ~ContextGuard();

    ContextGuard(const ContextGuard &) = delete;
    ContextGuard &operator=(const ContextGuard &) = delete;

    /**
     * Name this guard for the shardability report. Instance-unique
     * labels ("node0.ep0.sendq") aggregate better than the static
     * description; unset, the description is the label.
     */
    void setLabel(std::string label) { _label = std::move(label); }
    const std::string &label() const { return _label; }

    /**
     * Record the owning process. Mutations from any *other* process
     * fiber then panic. nullptr (the default) leaves the guard
     * lenient: only interleaving is checked.
     */
    void bindOwner(const sim::Process *owner) { _owner = owner; }
    const sim::Process *owner() const { return _owner; }

    /**
     * Check a single mutation of the guarded structure. Panics when
     * the calling context is a process fiber that is not the bound
     * owner. The main/event context always passes (agents and
     * harnesses hold custody by construction). The defaulted
     * source_location captures the *call site*, which the
     * happens-before auditor reports as the access site of a race.
     */
    void mutate(const char *op,
                std::source_location site =
                    std::source_location::current()) const;

    /**
     * Record a read of the guarded structure for the happens-before
     * auditor (read/write race pairs). No custody check: reads from
     * the wrong context are not a protection violation in the
     * cooperative model, only a sharding hazard.
     */
    void observe(const char *op,
                 std::source_location site =
                     std::source_location::current()) const;

    /**
     * RAII span of exclusive access for multi-step mutations. Entering
     * a scope while another *context* is still inside one on the same
     * guard panics: that is a mutation sequence interleaved across a
     * yield — the cooperative equivalent of a data race. Same-context
     * re-entry is fine (nested calls on one fiber cannot race
     * themselves).
     */
    class Scope
    {
      public:
        Scope(ContextGuard &guard, const char *op,
              std::source_location site =
                  std::source_location::current());
        ~Scope();

        Scope(const Scope &) = delete;
        Scope &operator=(const Scope &) = delete;

      private:
        ContextGuard &guard;
    };

  private:
    friend class Scope;

    [[noreturn]] void panicForeign(const char *op) const;
    [[noreturn]] void panicInterleaved(const char *op) const;

    const char *what;
    std::string _label;
    const sim::Process *_owner = nullptr;

    // Scope bookkeeping: the context currently inside a Scope (the
    // running fiber, nullptr for main/event), the op that entered it,
    // and the nesting depth.
    const void *holder = nullptr;
    const char *holderOp = nullptr;
    int depth = 0;
};

/**
 * Verify an API entry point's claimed caller: when running on a
 * process fiber, the claimed process must BE that fiber's process.
 * Called from the main context (harness/boot code acting on a
 * process's behalf) it passes. Panics on impersonation.
 */
void assertCaller(const sim::Process &claimed, const char *op);

#else // !UNET_CHECK

/** No-op stand-in so call sites need no #ifdefs. */
class ContextGuard
{
  public:
    explicit ContextGuard(const char *) {}

    ContextGuard(const ContextGuard &) = delete;
    ContextGuard &operator=(const ContextGuard &) = delete;

    void bindOwner(const sim::Process *) {}
    const sim::Process *owner() const { return nullptr; }
    void setLabel(const std::string &) {}
    const std::string &
    label() const
    {
        static const std::string empty;
        return empty;
    }
    void mutate(const char *) const {}
    void observe(const char *) const {}

    class Scope
    {
      public:
        Scope(ContextGuard &, const char *) {}
    };
};

inline void assertCaller(const sim::Process &, const char *) {}

#endif // UNET_CHECK

} // namespace unet::check

#endif // UNET_CHECK_ACCESS_HH
