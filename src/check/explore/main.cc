/**
 * @file
 * unet-explore: command-line front end for the model checker.
 *
 *   unet-explore --list
 *   unet-explore fig5
 *   unet-explore retransmit --max-depth 12 --max-width 3
 *   unet-explore demux --replay-out demux.replay
 *   unet-explore --replay demux.replay
 *
 * Exit status: 0 when the explored space (or replayed schedule) holds
 * every invariant, 1 on a violation, 2 on usage or I/O errors.
 */

#include <cstdlib>
#include <iostream>
#include <string>

#include "check/explore/explore.hh"
#include "check/explore/replay.hh"

namespace explore = unet::check::explore;

namespace {

int
usage(std::ostream &os, int status)
{
    os << "usage: unet-explore <config> [options]\n"
          "       unet-explore --replay <file>\n"
          "       unet-explore --list\n"
          "\n"
          "options:\n"
          "  --salt N          construction perturbation salt "
          "(default 0)\n"
          "  --max-runs N      stop after N schedules\n"
          "  --max-steps N     per-run event bound (default 2^20)\n"
          "  --max-depth N     stop branching past N choice points\n"
          "  --max-width N     explore at most N branches per choice "
          "point\n"
          "  --sampling-salt N pick which branches survive "
          "--max-width\n"
          "  --no-prune        disable state-digest pruning\n"
          "  --keep-going      collect all violations, not just the "
          "first\n"
          "  --replay-out F    write the first violation to F\n";
    return status;
}

bool
parseCount(const char *text, std::uint64_t &out)
{
    char *end = nullptr;
    out = std::strtoull(text, &end, 10);
    return end && *end == '\0' && end != text;
}

int
listConfigs()
{
    for (const explore::Config *config : explore::configs())
        std::cout << config->name() << "\n    "
                  << config->description() << "\n";
    return 0;
}

int
replayFile(const std::string &path)
{
    auto replay = explore::loadReplay(path);
    if (!replay) {
        std::cerr << "unet-explore: cannot parse replay file " << path
                  << "\n";
        return 2;
    }
    const explore::Config *config =
        explore::findConfig(replay->config);
    if (!config) {
        std::cerr << "unet-explore: replay names unknown config '"
                  << replay->config << "'\n";
        return 2;
    }
    std::cout << "replaying " << replay->schedule.size()
              << "-decision schedule of config '" << replay->config
              << "' (salt " << replay->configSalt << ")\n";
    explore::RunOutcome out = explore::runSchedule(
        *config, replay->schedule, replay->configSalt);
    if (out.violated) {
        std::cout << "reproduced after " << out.steps
                  << " events:\n  " << out.message << "\n";
        return 1;
    }
    std::cout << "schedule ran clean (" << out.steps
              << " events, end digest " << std::hex << out.digest
              << std::dec << ")\n";
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string config_name;
    std::string replay_path;
    std::string replay_out;
    explore::Options options;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto value = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::cerr << "unet-explore: " << arg
                          << " needs a value\n";
                std::exit(2);
            }
            return argv[++i];
        };
        std::uint64_t n = 0;
        if (arg == "--help" || arg == "-h") {
            return usage(std::cout, 0);
        } else if (arg == "--list") {
            return listConfigs();
        } else if (arg == "--replay") {
            replay_path = value();
        } else if (arg == "--replay-out") {
            replay_out = value();
        } else if (arg == "--salt" && parseCount(value(), n)) {
            options.configSalt = n;
        } else if (arg == "--max-runs" && parseCount(value(), n)) {
            options.bounds.maxRuns = n;
        } else if (arg == "--max-steps" && parseCount(value(), n)) {
            options.bounds.maxStepsPerRun = n;
        } else if (arg == "--max-depth" && parseCount(value(), n)) {
            options.bounds.maxChoiceDepth = n;
        } else if (arg == "--max-width" && parseCount(value(), n)) {
            options.bounds.maxBranchWidth = n;
        } else if (arg == "--sampling-salt" && parseCount(value(), n)) {
            options.bounds.samplingSalt = n;
        } else if (arg == "--no-prune") {
            options.prune = false;
        } else if (arg == "--keep-going") {
            options.stopAtFirstViolation = false;
        } else if (!arg.empty() && arg[0] != '-' &&
                   config_name.empty()) {
            config_name = arg;
        } else {
            std::cerr << "unet-explore: bad argument '" << arg
                      << "'\n";
            return usage(std::cerr, 2);
        }
    }

    if (!replay_path.empty())
        return replayFile(replay_path);
    if (config_name.empty())
        return usage(std::cerr, 2);

    const explore::Config *config = explore::findConfig(config_name);
    if (!config) {
        std::cerr << "unet-explore: unknown config '" << config_name
                  << "' (try --list)\n";
        return 2;
    }

    std::cout << "exploring '" << config->name()
              << "': " << config->description() << "\n";
    explore::Result res = explore::explore(*config, options);

    std::cout << "runs " << res.runs << ", pruned " << res.prunedRuns
              << ", choice points " << res.choicePoints
              << ", widest " << res.maxEligible << ", deferred "
              << res.deferredBranches << "\n";
    std::cout << (res.complete
                      ? "schedule space exhausted"
                      : "exploration bounded (not exhaustive)")
              << "\n";

    if (res.violations.empty()) {
        std::cout << "no violations\n";
        return 0;
    }

    for (const explore::Violation &v : res.violations)
        std::cout << "violation in run " << v.runIndex << " ("
                  << v.schedule.size() << " decisions):\n  "
                  << v.message << "\n";
    if (!replay_out.empty()) {
        const explore::Violation &v = res.violations.front();
        if (explore::saveReplay(replay_out, config->name(),
                                options.configSalt, v.message,
                                v.schedule))
            std::cout << "replay written to " << replay_out << "\n";
        else
            std::cerr << "unet-explore: cannot write " << replay_out
                      << "\n";
    }
    return 1;
}
