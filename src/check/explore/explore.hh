/**
 * @file
 * Schedule-space model checking.
 *
 * The perturbation plane (sim/perturb.hh) samples same-tick orderings
 * with a salted tie-break; this module enumerates them. An explorer
 * run replaces the salt with an explicit ScheduleArbiter: whenever two
 * or more permutable events are eligible at the same tick, the run
 * either follows a forced prefix of recorded decisions or takes the
 * FIFO default and enqueues every alternative as a new prefix to
 * explore. Each complete schedule is executed exactly once — a
 * schedule re-runs only the prefix that uniquely identifies it (the
 * decisions up to its last non-default pick) and defaults from there.
 *
 * Soundness of the state-digest pruning: a run that inserts digest D
 * at a free choice point continues its full expansion from D (default
 * path executed, every alternative enqueued), so any later run
 * reaching a state with digest D can stop — the subtree is already
 * covered. Digests are consulted only in the free region (at choice
 * depth >= the forced prefix length); consulting them during the
 * forced prefix would abort the very replay that covers the subtree.
 *
 * Invariant oracles run after every event: the global sweep walks all
 * enrolled CreditWindow and OwnershipTracker instances (check/
 * enroll.hh) — credit conservation and buffer-ownership legality
 * across every endpoint in the simulation, not per-endpoint — and
 * each closed config adds its own checkStep()/checkEnd() assertions
 * (ring bounds, exactly-once / in-order delivery). Violations arrive
 * as PanicException (sim/logging.hh) and carry the full decision
 * schedule, which serializes to a replay file (replay.hh) that
 * re-executes the exact interleaving.
 */

#ifndef UNET_CHECK_EXPLORE_EXPLORE_HH
#define UNET_CHECK_EXPLORE_EXPLORE_HH

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "obs/digest.hh"
#include "sim/simulation.hh"

namespace unet::check::explore {

/** One recorded pick at a choice point. */
struct Decision
{
    std::uint64_t step = 0; ///< events fired before this choice
    sim::Tick when = 0;     ///< simulated time of the choice point
    std::size_t width = 0;  ///< number of eligible candidates
    std::size_t index = 0;  ///< chosen candidate (0 = FIFO default)
    std::uint64_t seq = 0;  ///< schedule seq of the chosen event
};

/** A complete or partial interleaving, as its choice-point picks. */
using Schedule = std::vector<Decision>;

/**
 * One instantiation of a closed configuration: the simulation plus its
 * invariant oracles. Destroyed and rebuilt for every explored run.
 */
class ConfigInstance
{
  public:
    virtual ~ConfigInstance() = default;

    /** The simulation whose event queue the explorer drives. */
    virtual sim::Simulation &simulation() = 0;

    /** Invariants that must hold after every event. Panic on
     *  violation (UNET_PANIC; the explorer converts it into a
     *  counterexample). */
    virtual void checkStep() {}

    /** End-state invariants, evaluated once the queue drains:
     *  exactly-once / in-order delivery, credits returned, rings
     *  empty. */
    virtual void checkEnd() {}

    /** Fold config-specific progress state into the pruning digest.
     *  Anything two *semantically different* states could share must
     *  be mixed in here, or pruning will conflate them. */
    virtual void mixState(obs::Digest &digest) const { (void)digest; }
};

/** A named closed configuration the explorer can instantiate. */
class Config
{
  public:
    virtual ~Config() = default;

    virtual const char *name() const = 0;
    virtual const char *description() const = 0;
    virtual std::unique_ptr<ConfigInstance> make() const = 0;
};

/** Exploration bounds; 0 means unbounded. */
struct Bounds
{
    /** Maximum runs (complete schedules) to execute. */
    std::uint64_t maxRuns = 0;

    /** Per-run event cap — a run exceeding it is reported as a
     *  violation (livelock within the bound). */
    std::uint64_t maxStepsPerRun = 1u << 20;

    /** Choice points beyond this depth stop branching (the run
     *  continues on defaults; skipped alternatives are counted in
     *  Result::deferredBranches). */
    std::size_t maxChoiceDepth = 0;

    /** Maximum branches explored per choice point, default included.
     *  When a point is wider, the explored alternatives are a
     *  deterministic sample: a salted rotation of the alternative
     *  list, so different samplingSalts cover different subsets. */
    std::size_t maxBranchWidth = 0;

    /** Selects which alternatives survive maxBranchWidth sampling. */
    std::uint64_t samplingSalt = 1;
};

struct Options
{
    Bounds bounds;

    /** Prune runs whose state digest was already fully expanded. */
    bool prune = true;

    /** Stop at the first violation (default) or keep exploring.
     *  Note: with pruning on, exploration after a violation is
     *  slightly under-approximate — the aborted run's subtree is
     *  marked covered up to the abort point. */
    bool stopAtFirstViolation = true;

    /** Perturbation salt applied while constructing the config
     *  (ring slot-reuse offsets); 0 = canonical layout. */
    std::uint64_t configSalt = 0;
};

/** A failing interleaving. */
struct Violation
{
    std::string message;
    std::uint64_t runIndex = 0;
    Schedule schedule;
};

struct Result
{
    std::uint64_t runs = 0;          ///< complete schedules executed
    std::uint64_t prunedRuns = 0;    ///< runs cut by the digest set
    std::uint64_t choicePoints = 0;  ///< arbiter invocations
    std::uint64_t deferredBranches = 0; ///< alternatives skipped by bounds
    std::size_t maxEligible = 0;     ///< widest choice point seen
    bool complete = false;           ///< schedule space exhausted
    std::vector<Violation> violations;
};

/** Explore @p config's same-tick schedule space. */
Result explore(const Config &config, const Options &options = {});

/** Outcome of a single (replayed or salted) run. */
struct RunOutcome
{
    bool violated = false;
    std::string message; ///< panic text when violated
    Schedule schedule;   ///< decisions actually taken
    std::uint64_t steps = 0;
    std::uint64_t digest = 0; ///< end-state digest (determinism checks)
};

/**
 * Re-execute one exact interleaving: every choice point is forced to
 * the recorded pick, verified against the recorded (when, width, seq).
 * Divergence — the run not reproducing the recorded choice points —
 * is itself reported as a violation.
 */
RunOutcome runSchedule(const Config &config, const Schedule &schedule,
                       std::uint64_t config_salt = 0,
                       std::uint64_t max_steps = 1u << 20);

/**
 * Run once under the perturbation plane's salted tie-break (no
 * arbiter) — what a regular UNET_PERTURB test run would execute.
 */
RunOutcome runSalted(const Config &config, std::uint64_t salt,
                     std::uint64_t max_steps = 1u << 20);

/** All registered closed configs. */
const std::vector<const Config *> &configs();

/** Look up a config by name; nullptr when unknown. */
const Config *findConfig(std::string_view name);

} // namespace unet::check::explore

#endif // UNET_CHECK_EXPLORE_EXPLORE_HH
